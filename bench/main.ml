(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the extensions listed in DESIGN.md.

   Usage: main.exe [--figure ID]... [--scale S] [--quick] [--jobs N]
                   [--json FILE] [--gate FILE] [--gate-hierarchy FILE]
                   [--gate-mesh FILE]
                   [--telemetry FILE] [--telemetry-format prom|json|report]
     IDs: accuracy 8 9 10 11 12 13 14 15 16 17 baseline loss micro store
          degraded collect hierarchy mesh parallel diagnose bundle all
   --jobs adds an extra domain count to the parallel figure's 1/2/4 grid.
   Default: everything, at time_scale 0.1 (stage durations shrunk 10x;
   service times, think times and all rates untouched, so shapes match the
   paper's full-length runs).

   --telemetry emits a self-profile of the pipeline's own metrics (metric
   catalogue in docs/TELEMETRY.md) alongside the tables, including a
   pt_bench_figure_seconds{figure=...} wall-time histogram per figure.

   --json emits a machine-readable summary: per-figure wall seconds plus
   the key scalar results each figure chooses to publish (see
   record_scalar below), so CI can diff bench runs without scraping
   tables.

   --gate FILE compares the fresh store figure's ingest throughput
   against the committed reference in FILE (BENCH_store.json) and exits
   non-zero on regression — the `make bench-gate` CI stage. *)

module S = Tiersim.Scenario
module Workload = Tiersim.Workload
module Faults = Tiersim.Faults
module Metrics = Tiersim.Metrics
module Service = Tiersim.Service
module Correlator = Core.Correlator
module Accuracy = Core.Accuracy
module Pattern = Core.Pattern
module Aggregate = Core.Aggregate
module Latency = Core.Latency
module Report = Core.Report
module Nesting = Core.Nesting
module Transform = Core.Transform
module ST = Simnet.Sim_time

module Json = Telemetry.Json

let time_scale = ref 0.1
let quick = ref false
let telemetry_out = ref None
let telemetry_format = ref `Prom
let json_out = ref None
let jobs_override = ref None
let gate_file = ref None
let gate_hierarchy_file = ref None
let gate_mesh_file = ref None

(* ---- machine-readable results (--json) ---- *)

(* Figures publish their headline numbers here; the driver folds them into
   the --json document under figures.<name>.results.<key>. *)
let scalars : (string * (string * Json.t)) list ref = ref []
let figure_seconds : (string * float) list ref = ref []
let record_scalar ~figure key value = scalars := (figure, (key, value)) :: !scalars
let record_float ~figure key v = record_scalar ~figure key (Json.Float v)
let record_int ~figure key v = record_scalar ~figure key (Json.Int v)

let emit_json file =
  let figures =
    List.map
      (fun (name, seconds) ->
        let results =
          List.rev !scalars
          |> List.filter_map (fun (fig, kv) ->
                 if String.equal fig name then Some kv else None)
        in
        ( name,
          Json.Obj
            (("seconds", Json.Float seconds)
            :: (if results = [] then [] else [ ("results", Json.Obj results) ])) ))
      (List.rev !figure_seconds)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Int 1);
        ("harness", Json.String "precisetracer-bench");
        ("time_scale", Json.Float !time_scale);
        ("quick", Json.Bool !quick);
        ("figures", Json.Obj figures);
      ]
  in
  let body = Json.to_string ~indent:true doc ^ "\n" in
  if String.equal file "-" then print_string body
  else begin
    match open_out file with
    | oc ->
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
        Printf.printf "bench results written to %s\n" file
    | exception Sys_error msg ->
        Printf.eprintf "cannot write bench results: %s\n" msg;
        exit 1
  end

(* ---- ingest-throughput gate (--gate) ---- *)

(* Timing on shared CI hosts is noisy; the gate exists to catch a real
   regression (the native path silently falling back to record-at-a-time
   work), not scheduler jitter, so it allows the fresh figure to dip to
   this fraction of the committed reference before failing. *)
let gate_slack = 0.5

let run_gate file =
  let fresh =
    List.fold_left
      (fun acc (fig, (key, v)) ->
        match acc with
        | Some _ -> acc
        | None ->
            if String.equal fig "store" && String.equal key "ingest_records_per_s" then
              match v with
              | Json.Float f -> Some f
              | Json.Int i -> Some (float_of_int i)
              | _ -> None
            else None)
      None !scalars
  in
  let reference =
    let ( let* ) = Option.bind in
    let* body =
      match In_channel.with_open_bin file In_channel.input_all with
      | body -> Some body
      | exception Sys_error _ -> None
    in
    let* doc = Result.to_option (Json.of_string body) in
    let* figures = Json.member "figures" doc in
    let* store = Json.member "store" figures in
    let* results = Json.member "results" store in
    let* v = Json.member "ingest_records_per_s" results in
    match v with
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  match (fresh, reference) with
  | None, _ ->
      Printf.eprintf "bench gate: no fresh store figure (run with --figure store)\n";
      exit 1
  | _, None ->
      Printf.eprintf "bench gate: cannot read ingest_records_per_s from %s\n" file;
      exit 1
  | Some fresh, Some reference ->
      let floor = gate_slack *. reference in
      if fresh < floor then begin
        Printf.eprintf
          "bench gate: ingest regression — %.0f records/s is below %.0f (%.0f%% of the \
           committed %.0f in %s)\n"
          fresh floor (100.0 *. gate_slack) reference file;
        exit 1
      end
      else
        Printf.printf
          "bench gate: ingest %.0f records/s >= %.0f (%.0f%% of committed %.0f) — ok\n" fresh
          floor (100.0 *. gate_slack) reference

(* The hierarchy gate is not a timing gate: the simulation is deterministic,
   so the feed-volume reduction and the digest identity must hold exactly.
   It fails when the root's ingest reduction drops below the 3x target (or
   well below the committed reference) or when the hierarchical digest stops
   matching the monolithic correlator. *)
let hierarchy_reduction_target = 3.0

let run_hierarchy_gate file =
  let fresh key =
    List.fold_left
      (fun acc (fig, (k, v)) ->
        match acc with
        | Some _ -> acc
        | None -> if String.equal fig "hierarchy" && String.equal k key then Some v else None)
      None !scalars
  in
  let as_float = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let reference =
    let ( let* ) = Option.bind in
    let* body =
      match In_channel.with_open_bin file In_channel.input_all with
      | body -> Some body
      | exception Sys_error _ -> None
    in
    let* doc = Result.to_option (Json.of_string body) in
    let* figures = Json.member "figures" doc in
    let* fig = Json.member "hierarchy" figures in
    let* results = Json.member "results" fig in
    as_float (Json.member "root_reduction" results)
  in
  match (as_float (fresh "root_reduction"), fresh "identical", reference) with
  | None, _, _ | _, None, _ ->
      Printf.eprintf
        "bench gate: no fresh hierarchy figure (run with --figure hierarchy)\n";
      exit 1
  | _, _, None ->
      Printf.eprintf "bench gate: cannot read root_reduction from %s\n" file;
      exit 1
  | Some reduction, Some identical, Some reference ->
      let floor = Float.max hierarchy_reduction_target (gate_slack *. reference) in
      if not (match identical with Json.Bool b -> b | _ -> false) then begin
        Printf.eprintf
          "bench gate: hierarchical digest no longer matches the monolithic correlator\n";
        exit 1
      end
      else if reduction < floor then begin
        Printf.eprintf
          "bench gate: root feed-volume reduction %.1fx is below %.1fx (target %.1fx, \
           committed %.1fx in %s)\n"
          reduction floor hierarchy_reduction_target reference file;
        exit 1
      end
      else
        Printf.printf
          "bench gate: root feed-volume reduction %.1fx >= %.1fx, digest identical — ok\n"
          reduction floor

(* The mesh gate is correctness-first, like the hierarchy gate: the
   simulation is deterministic, so every scenario preset must correlate
   at or above the accuracy floor, the faultless control must produce
   zero false positives, and the serial and sharded correlations must
   stay byte-identical. The committed reference (BENCH_mesh.json) guards
   against a preset silently degrading across changes: fresh accuracy may
   not drop more than [mesh_accuracy_slack] below it. *)
let mesh_accuracy_floor = 0.95
let mesh_accuracy_slack = 0.02

let run_mesh_gate file =
  let fresh key =
    List.fold_left
      (fun acc (fig, (k, v)) ->
        match acc with
        | Some _ -> acc
        | None -> if String.equal fig "mesh" && String.equal k key then Some v else None)
      None !scalars
  in
  let as_float = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let reference_results =
    let ( let* ) = Option.bind in
    let* body =
      match In_channel.with_open_bin file In_channel.input_all with
      | body -> Some body
      | exception Sys_error _ -> None
    in
    let* doc = Result.to_option (Json.of_string body) in
    let* figures = Json.member "figures" doc in
    let* fig = Json.member "mesh" figures in
    Json.member "results" fig
  in
  let fail fmt = Printf.eprintf ("bench gate: " ^^ fmt ^^ "\n") in
  let ok = ref true in
  List.iter
    (fun preset ->
      let acc_key = "accuracy_" ^ preset in
      match as_float (fresh acc_key) with
      | None ->
          fail "no fresh mesh figure for preset %s (run with --figure mesh)" preset;
          ok := false
      | Some accuracy ->
          let reference =
            Option.bind reference_results (fun r -> as_float (Json.member acc_key r))
          in
          let floor =
            match reference with
            | Some r -> Float.max mesh_accuracy_floor (r -. mesh_accuracy_slack)
            | None -> mesh_accuracy_floor
          in
          if accuracy < floor then begin
            fail "mesh preset %s: accuracy %.4f below %.4f%s" preset accuracy floor
              (match reference with
              | Some r -> Printf.sprintf " (committed %.4f in %s)" r file
              | None -> "");
            ok := false
          end;
          (match fresh ("identical_" ^ preset) with
          | Some (Json.Bool true) -> ()
          | _ ->
              fail "mesh preset %s: serial and sharded correlations differ" preset;
              ok := false))
    Mesh.Presets.names;
  (match as_float (fresh "fp_control") with
  | Some 0.0 -> ()
  | Some fp ->
      fail "mesh control run reported %.0f false positives (must be 0)" fp;
      ok := false
  | None ->
      fail "no fresh mesh control figure (run with --figure mesh)";
      ok := false);
  if Option.is_none reference_results then begin
    fail "cannot read mesh results from %s" file;
    ok := false
  end;
  if not !ok then exit 1;
  Printf.printf
    "bench gate: all %d mesh presets at or above %.2f accuracy, control clean, digests \
     identical — ok\n"
    (List.length Mesh.Presets.names)
    mesh_accuracy_floor

(* ---- memoised scenario runs and correlations ---- *)

let outcomes : (S.spec, S.outcome) Hashtbl.t = Hashtbl.create 64

let run spec =
  match Hashtbl.find_opt outcomes spec with
  | Some o -> o
  | None ->
      let o = S.run spec in
      Hashtbl.replace outcomes spec o;
      o

let correlations : (S.spec * int, Correlator.result) Hashtbl.t = Hashtbl.create 64

let correlate ?(window = ST.ms 10) spec =
  let key = (spec, ST.span_ns window) in
  match Hashtbl.find_opt correlations key with
  | Some r -> r
  | None ->
      let outcome = run spec in
      let cfg = Correlator.config ~transform:outcome.S.transform ~window () in
      let r = Correlator.correlate cfg outcome.S.logs in
      Hashtbl.replace correlations key r;
      r

let base_spec () = { S.default with S.time_scale = !time_scale }

let clients_grid () =
  if !quick then [ 100; 400; 700; 1000 ]
  else [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ]

(* The ViewItem-like pattern: the most frequent pattern that visits the
   database twice (ViewItem is its dominant class). *)
let viewitem_pattern result =
  let patterns = Pattern.classify result.Correlator.cags in
  let visits_db_twice p =
    List.length (String.split_on_char '>' p.Pattern.name |> List.filter (String.equal "mysqld"))
    >= 2
  in
  match List.find_opt visits_db_twice patterns with
  | Some p -> p
  | None -> List.hd patterns

let paper_components =
  [ "httpd2httpd"; "httpd2java"; "java2httpd"; "java2java"; "java2mysqld"; "mysqld2java";
    "mysqld2mysqld" ]

let component_row avg =
  let pcts = Aggregate.component_percentages avg in
  List.map
    (fun label ->
      let v =
        List.fold_left
          (fun acc (c, v) -> if String.equal (Latency.component_label c) label then v else acc)
          0.0 pcts
      in
      Report.cell_pct v)
    paper_components

(* ---- table (5.2): accuracy ---- *)

let bench_accuracy () =
  let t =
    Report.table ~title:"Table (5.2): path accuracy across configurations"
      ~columns:
        [ "mix"; "clients"; "window"; "skew"; "noise"; "requests"; "paths"; "accuracy"; "FP"; "FN" ]
  in
  let base = base_spec () in
  let cases =
    List.map (fun c -> ({ base with S.clients = c }, ST.ms 10)) [ 100; 400; 700; 1000 ]
    @ List.map (fun w -> ({ base with S.clients = 300 }, w)) [ ST.ms 1; ST.ms 100; ST.sec 10 ]
    @ List.map
        (fun skew_ms -> ({ base with S.clients = 300; skew = ST.ms skew_ms }, ST.ms 2))
        [ 1; 100; 500 ]
    @ [
        ({ base with S.clients = 300; mix = Workload.Default }, ST.ms 10);
        ({ base with S.clients = 300; noise = S.Paper_noise { db_connections = 4 } }, ST.ms 2);
        ( {
            base with
            S.clients = 300;
            noise = S.Paper_noise { db_connections = 4 };
            skew = ST.ms 200;
          },
          ST.ms 2 );
      ]
  in
  List.iter
    (fun (spec, window) ->
      let outcome = run spec in
      let result = correlate ~window spec in
      let verdict = Accuracy.check ~ground_truth:outcome.S.ground_truth result.Correlator.cags in
      Report.add_row t
        [
          Workload.mix_to_string spec.S.mix;
          Report.cell_int spec.S.clients;
          Report.cell_span window;
          Report.cell_span spec.S.skew;
          (match spec.S.noise with S.No_noise -> "no" | S.Paper_noise _ -> "yes");
          Report.cell_int verdict.Accuracy.total_requests;
          Report.cell_int (List.length result.Correlator.cags);
          Report.cell_pct verdict.Accuracy.accuracy;
          Report.cell_int verdict.false_positives;
          Report.cell_int verdict.false_negatives;
        ])
    cases;
  Report.print t

(* ---- Fig. 8 ---- *)

let bench_fig8 () =
  let t =
    Report.table ~title:"Fig. 8: serviced requests vs concurrent clients (Browse_only)"
      ~columns:[ "clients"; "requests"; "throughput (req/s)" ]
  in
  List.iter
    (fun clients ->
      let outcome = run { (base_spec ()) with S.clients } in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int (Metrics.total_recorded outcome.S.metrics);
          Report.cell_float ~decimals:1 outcome.S.summary.Metrics.throughput_rps;
        ])
    (clients_grid ());
  Report.print t

(* ---- Fig. 9 ---- *)

let bench_fig9 () =
  let t =
    Report.table ~title:"Fig. 9: correlation time vs serviced requests (window 10 ms)"
      ~columns:[ "clients"; "requests"; "activities"; "correlation time (s)"; "us/request" ]
  in
  List.iter
    (fun clients ->
      let spec = { (base_spec ()) with S.clients } in
      let outcome = run spec in
      let result = correlate spec in
      let n = List.length result.Correlator.cags in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int n;
          Report.cell_int outcome.S.activity_count;
          Report.cell_float ~decimals:4 result.correlation_time;
          Report.cell_float ~decimals:2 (result.correlation_time /. float_of_int (max 1 n) *. 1e6);
        ])
    (clients_grid ());
  Report.print t

(* ---- Figs. 10-11 ---- *)

let window_grid () =
  if !quick then [ ST.ms 1; ST.sec 1 ]
  else [ ST.ms 1; ST.ms 10; ST.ms 100; ST.sec 1; ST.sec 10; ST.sec 100 ]

let bench_fig10_11 () =
  let t10 =
    Report.table ~title:"Fig. 10: correlation time vs sliding window size"
      ~columns:[ "clients"; "window"; "correlation time (s)" ]
  in
  let t11 =
    Report.table ~title:"Fig. 11: correlator memory vs sliding window size"
      ~columns:[ "clients"; "window"; "peak records"; "approx MB" ]
  in
  List.iter
    (fun clients ->
      let spec = { (base_spec ()) with S.clients } in
      List.iter
        (fun window ->
          let result = correlate ~window spec in
          Report.add_row t10
            [
              Report.cell_int clients;
              Report.cell_span window;
              Report.cell_float ~decimals:4 result.Correlator.correlation_time;
            ];
          Report.add_row t11
            [
              Report.cell_int clients;
              Report.cell_span window;
              Report.cell_int result.peak_memory_proxy;
              Report.cell_float ~decimals:2
                (float_of_int result.memory_bytes_estimate /. 1048576.0);
            ])
        (window_grid ()))
    [ 200; 500; 800 ];
  Report.print t10;
  Report.print t11

(* ---- Figs. 12-13 ---- *)

let bench_fig12_13 () =
  let t12 =
    Report.table ~title:"Fig. 12: throughput, tracing disabled vs enabled"
      ~columns:[ "clients"; "disabled (req/s)"; "enabled (req/s)"; "overhead" ]
  in
  let t13 =
    Report.table ~title:"Fig. 13: average response time, tracing disabled vs enabled"
      ~columns:[ "clients"; "disabled (ms)"; "enabled (ms)"; "increase" ]
  in
  let max_tp = ref 0.0 and max_rt = ref 0.0 in
  List.iter
    (fun clients ->
      let on = run { (base_spec ()) with S.clients } in
      let off = run { (base_spec ()) with S.clients; tracing = false } in
      let tp_on = on.S.summary.Metrics.throughput_rps in
      let tp_off = off.S.summary.Metrics.throughput_rps in
      let rt_on = on.S.summary.Metrics.mean_rt_s *. 1e3 in
      let rt_off = off.S.summary.Metrics.mean_rt_s *. 1e3 in
      let tp_drop = if tp_off > 0.0 then (tp_off -. tp_on) /. tp_off else 0.0 in
      let rt_incr = if rt_off > 0.0 then (rt_on -. rt_off) /. rt_off else 0.0 in
      if tp_drop > !max_tp then max_tp := tp_drop;
      if rt_incr > !max_rt then max_rt := rt_incr;
      Report.add_row t12
        [
          Report.cell_int clients;
          Report.cell_float ~decimals:1 tp_off;
          Report.cell_float ~decimals:1 tp_on;
          Report.cell_pct tp_drop;
        ];
      Report.add_row t13
        [
          Report.cell_int clients;
          Report.cell_float ~decimals:1 rt_off;
          Report.cell_float ~decimals:1 rt_on;
          Report.cell_pct rt_incr;
        ])
    (clients_grid ());
  Report.print t12;
  Report.print t13;
  Printf.printf
    "max throughput overhead %.1f%% (paper: 3.7%%); max RT increase %.1f%% (paper: <30%%)\n\n"
    (100.0 *. !max_tp) (100.0 *. !max_rt)

(* ---- Fig. 14 ---- *)

let bench_fig14 () =
  let t =
    Report.table ~title:"Fig. 14: correlation time with and without noise (window 2 ms)"
      ~columns:
        [ "clients"; "activities"; "noise activities"; "no_noise (s)"; "noise (s)"; "accuracy" ]
  in
  let clients_list = if !quick then [ 100; 500 ] else [ 100; 300; 500; 700; 900 ] in
  List.iter
    (fun clients ->
      let clean_spec = { (base_spec ()) with S.clients } in
      let noisy_spec =
        { (base_spec ()) with S.clients; noise = S.Paper_noise { db_connections = 4 } }
      in
      let clean = correlate ~window:(ST.ms 2) clean_spec in
      let noisy = correlate ~window:(ST.ms 2) noisy_spec in
      let noisy_outcome = run noisy_spec in
      let clean_outcome = run clean_spec in
      let verdict =
        Accuracy.check ~ground_truth:noisy_outcome.S.ground_truth noisy.Correlator.cags
      in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int clean_outcome.S.activity_count;
          Report.cell_int (noisy_outcome.S.activity_count - clean_outcome.S.activity_count);
          Report.cell_float ~decimals:4 clean.Correlator.correlation_time;
          Report.cell_float ~decimals:4 noisy.Correlator.correlation_time;
          Report.cell_pct verdict.Accuracy.accuracy;
        ])
    clients_list;
  Report.print t

(* ---- Fig. 15 ---- *)

let bench_fig15 () =
  let t =
    Report.table
      ~title:"Fig. 15: latency percentages of components, ViewItem-like path (MaxThreads=40)"
      ~columns:("clients" :: paper_components)
  in
  List.iter
    (fun clients ->
      let result = correlate { (base_spec ()) with S.clients } in
      let avg = Aggregate.of_pattern (viewitem_pattern result) in
      Report.add_row t (Report.cell_int clients :: component_row avg))
    [ 500; 600; 700; 800 ];
  Report.print t

(* ---- Fig. 16 ---- *)

let bench_fig16 () =
  let t =
    Report.table ~title:"Fig. 16: performance for MaxThreads 40 vs 250"
      ~columns:[ "clients"; "TP_MT40"; "TP_MT250"; "RT_MT40 (ms)"; "RT_MT250 (ms)" ]
  in
  List.iter
    (fun clients ->
      let mt40 = run { (base_spec ()) with S.clients } in
      let mt250 = run { (base_spec ()) with S.clients; max_threads = 250 } in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_float ~decimals:1 mt40.S.summary.Metrics.throughput_rps;
          Report.cell_float ~decimals:1 mt250.S.summary.Metrics.throughput_rps;
          Report.cell_float ~decimals:1 (mt40.S.summary.Metrics.mean_rt_s *. 1e3);
          Report.cell_float ~decimals:1 (mt250.S.summary.Metrics.mean_rt_s *. 1e3);
        ])
    (clients_grid ());
  Report.print t

(* ---- Fig. 17 ---- *)

let bench_fig17 () =
  let t =
    Report.table
      ~title:"Fig. 17: latency percentages for normal and abnormal cases (300 clients)"
      ~columns:("case" :: paper_components)
  in
  let base = { (base_spec ()) with S.clients = 300 } in
  let cases =
    [
      ("normal", base);
      ("EJB_Delay", { base with S.faults = [ Faults.ejb_delay ] });
      ("Database_Lock", { base with S.faults = [ Faults.database_lock ] });
      ("EJB_Network", { base with S.faults = [ Faults.ejb_network ] });
    ]
  in
  let profiles =
    List.map
      (fun (name, spec) ->
        let result = correlate spec in
        let avg = Aggregate.of_pattern (viewitem_pattern result) in
        Report.add_row t (name :: component_row avg);
        (name, avg))
      cases
  in
  Report.print t;
  (* And run the paper's diagnosis methodology on each abnormal case. *)
  match profiles with
  | (_, normal) :: abnormal ->
      List.iter
        (fun (name, avg) ->
          let report = Core.Analysis.diagnose ~baseline:normal ~observed:avg in
          Format.printf "diagnosis for %s:@." name;
          (match report.Core.Analysis.suspects with
          | s :: _ ->
              Format.printf "  prime suspect: %s (%s)@."
                (Core.Analysis.subject_label s.Core.Analysis.subject)
                s.reason
          | [] -> Format.printf "  no suspect found@.");
          Format.printf "@.")
        abnormal
  | [] -> ()

(* ---- ext-1: nesting baseline ---- *)

let bench_baseline () =
  let t =
    Report.table
      ~title:"ext-1: PreciseTracer vs black-box baselines (nesting = Project5/WAP5-style,               DPM = pairwise causality graph)"
      ~columns:
        [ "clients"; "requests"; "precisetracer"; "nesting"; "nesting w/ 400ms skew";
          "dpm paths"; "dpm phantoms" ]
  in
  let clients_list = if !quick then [ 1; 150 ] else [ 1; 50; 150; 300 ] in
  List.iter
    (fun clients ->
      let spec = { (base_spec ()) with S.clients } in
      let outcome = run spec in
      let precise =
        Accuracy.check ~ground_truth:outcome.S.ground_truth (correlate spec).Correlator.cags
      in
      let nesting_of spec =
        let outcome = run spec in
        let prepared = Transform.apply outcome.S.transform outcome.S.logs in
        (Nesting.score ~ground_truth:outcome.ground_truth (Nesting.infer prepared))
          .Accuracy.accuracy
      in
      let dpm_stats =
        let prepared = Transform.apply outcome.S.transform outcome.S.logs in
        Core.Dpm.evaluate ~max_paths:100_000 ~ground_truth:outcome.ground_truth
          (Core.Dpm.build prepared)
      in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int precise.Accuracy.total_requests;
          Report.cell_pct precise.accuracy;
          Report.cell_pct (nesting_of spec);
          Report.cell_pct (nesting_of { spec with S.skew = ST.ms 400 });
          Printf.sprintf "%d%s" dpm_stats.Core.Dpm.paths_found
            (if dpm_stats.truncated then "+" else "");
          Report.cell_int dpm_stats.phantom_paths;
        ])
    clients_list;
  Report.print t

(* ---- ext-2: loss ---- *)

let bench_loss () =
  let t =
    Report.table ~title:"ext-2: activity loss vs deformed CAGs (300 clients)"
      ~columns:[ "loss rate"; "finished"; "deformed"; "accuracy"; "deformed share" ]
  in
  let spec = { (base_spec ()) with S.clients = 300 } in
  let outcome = run spec in
  List.iter
    (fun p ->
      let rng = Simnet.Rng.create ~seed:99 in
      let logs = Trace.Loss.drop ~rng ~p outcome.S.logs in
      let cfg = Correlator.config ~transform:outcome.S.transform () in
      let result = Correlator.correlate cfg logs in
      let verdict = Accuracy.check ~ground_truth:outcome.ground_truth result.Correlator.cags in
      let finished = List.length result.Correlator.cags in
      let deformed = List.length result.deformed in
      Report.add_row t
        [
          Report.cell_pct p;
          Report.cell_int finished;
          Report.cell_int deformed;
          Report.cell_pct verdict.Accuracy.accuracy;
          Report.cell_pct (float_of_int deformed /. float_of_int (max 1 (finished + deformed)));
        ])
    [ 0.0; 0.001; 0.005; 0.02; 0.05 ];
  Report.print t

(* ---- ext-6: mechanism ablations ---- *)

let bench_ablation () =
  let t =
    Report.table
      ~title:
        "ext-7: what each ranker mechanism buys (300 clients; Rule 1 and promotion          disabled in turn)"
      ~columns:
        [ "variant"; "accuracy"; "FP"; "FN"; "noise discards"; "forced discards"; "promotions" ]
  in
  (* Noise plus skew with a tiny window is the regime where every
     mechanism earns its keep (promotions resolve receive-blocked heads). *)
  let spec =
    {
      (base_spec ()) with
      S.clients = 300;
      noise = S.Paper_noise { db_connections = 4 };
      skew = ST.ms 200;
    }
  in
  let outcome = run spec in
  let variants =
    [
      ("full algorithm", Core.Ranker.no_ablation);
      ("no Rule 1", { Core.Ranker.disable_rule1 = true; disable_promotion = false });
      ("no promotion", { Core.Ranker.disable_rule1 = false; disable_promotion = true });
      ("neither", { Core.Ranker.disable_rule1 = true; disable_promotion = true });
    ]
  in
  List.iter
    (fun (name, ablation) ->
      let cfg =
        Correlator.config ~transform:outcome.S.transform ~window:(ST.ms 2) ~ablation ()
      in
      let result = Correlator.correlate cfg outcome.S.logs in
      let verdict = Accuracy.check ~ground_truth:outcome.S.ground_truth result.Correlator.cags in
      let rs = result.ranker_stats in
      Report.add_row t
        [
          name;
          Report.cell_pct verdict.Accuracy.accuracy;
          Report.cell_int verdict.false_positives;
          Report.cell_int verdict.false_negatives;
          Report.cell_int rs.Core.Ranker.noise_discarded;
          Report.cell_int rs.forced_discards;
          Report.cell_int rs.promotions;
        ])
    variants;
  Report.print t

(* ---- ext-4: skew estimation and corrected latency percentages ---- *)

let bench_skewfix () =
  let t =
    Report.table
      ~title:
        "ext-4: interaction latency percentages under 400 ms skew, raw vs skew-corrected          (300 clients; 0-skew run as reference)"
      ~columns:("variant" :: paper_components)
  in
  let spec_skewed = { (base_spec ()) with S.clients = 300; skew = ST.ms 400 } in
  let spec_clean = { (base_spec ()) with S.clients = 300 } in
  let result_skewed = correlate spec_skewed in
  let result_clean = correlate spec_clean in
  let est = Core.Skew_estimator.estimate result_skewed.Correlator.cags in
  let profile breakdown_of result =
    let pattern = viewitem_pattern result in
    let sums = Hashtbl.create 8 in
    let n = ref 0 in
    List.iter
      (fun cag ->
        incr n;
        List.iter
          (fun (c, span) ->
            let key = Latency.component_label c in
            let v = ST.span_to_float_s span in
            Hashtbl.replace sums key (v +. Option.value ~default:0.0 (Hashtbl.find_opt sums key)))
          (breakdown_of cag))
      pattern.Pattern.cags;
    let total = Hashtbl.fold (fun _ v acc -> acc +. v) sums 0.0 in
    List.map
      (fun label ->
        Report.cell_pct (Option.value ~default:0.0 (Hashtbl.find_opt sums label) /. total))
      paper_components
  in
  Report.add_row t ("raw (400ms skew)" :: profile Latency.breakdown result_skewed);
  Report.add_row t
    ("corrected (400ms skew)"
    :: profile (Core.Skew_estimator.corrected_breakdown est) result_skewed);
  Report.add_row t ("reference (no skew)" :: profile Latency.breakdown result_clean);
  Report.print t;
  Format.printf "estimated clock offsets (truth: web1 +0, app1 +400ms, db1 -400ms):@.";
  List.iter
    (fun e ->
      Format.printf "  %-8s %+10.3f ms (%d pairs)@." e.Core.Skew_estimator.host
        (ST.span_to_float_s e.offset *. 1e3)
        e.pairs_used)
    (Core.Skew_estimator.offsets est);
  Format.printf "@."

(* ---- ext-5: online correlation lag ---- *)

let bench_online () =
  let t =
    Report.table
      ~title:"ext-5: online vs offline correlation (replayed feed, 10 ms window)"
      ~columns:
        [ "clients"; "paths offline"; "paths online"; "identical"; "emitted before close" ]
  in
  List.iter
    (fun clients ->
      let spec = { (base_spec ()) with S.clients } in
      let outcome = run spec in
      let offline = correlate spec in
      let cfg = Correlator.config ~transform:outcome.S.transform () in
      let hosts = List.map Trace.Log.hostname outcome.S.logs in
      let online = Core.Online.create ~config:cfg ~hosts () in
      let merged =
        List.concat_map Trace.Log.to_list outcome.S.logs
        |> List.stable_sort Trace.Activity.compare_by_time
      in
      List.iter (Core.Online.observe online) merged;
      let before_close = List.length (Core.Online.paths online) in
      Core.Online.finish online;
      let online_paths = Core.Online.paths online in
      let identical =
        List.length online_paths = List.length offline.Correlator.cags
        && List.for_all2
             (fun a b ->
               String.equal (Pattern.signature_of a) (Pattern.signature_of b))
             offline.Correlator.cags online_paths
      in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int (List.length offline.Correlator.cags);
          Report.cell_int (List.length online_paths);
          (if identical then "yes" else "NO");
          Report.cell_pct
            (float_of_int before_close /. float_of_int (max 1 (List.length online_paths)));
        ])
    (if !quick then [ 100; 500 ] else [ 100; 300; 500 ]);
  Report.print t

(* ---- ext-10: degraded feed (straggler eviction & backpressure) ---- *)

let bench_degraded () =
  let clients = if !quick then 120 else 300 in
  (* app1's probe goes dark mid-run: a scaled 300 s into the run, well past
     the up-ramp and well before the natural end, so roughly half the feed
     arrives with one stream permanently silent. *)
  let silence = ST.span_scale !time_scale (ST.ms 300_000) in
  let spec =
    {
      (base_spec ()) with
      S.clients;
      faults = [ Faults.host_silence ~host:"app1" ~after:silence ];
    }
  in
  let outcome = run spec in
  let cfg = Correlator.config ~transform:outcome.S.transform () in
  let hosts = List.map Trace.Log.hostname outcome.S.logs in
  let merged =
    List.concat_map Trace.Log.to_list outcome.S.logs
    |> List.stable_sort Trace.Activity.compare_by_time
  in
  let replay ?straggler_timeout ?max_buffered () =
    let online =
      Core.Online.create ~config:cfg ~hosts ?straggler_timeout ?max_buffered ()
    in
    let peak = ref 0 in
    List.iter
      (fun a ->
        Core.Online.observe online a;
        peak := max !peak (Core.Online.pending online))
      merged;
    let live = List.length (Core.Online.paths online) in
    Core.Online.finish online;
    (online, live, !peak)
  in
  let t =
    Report.table
      ~title:"ext-10: degraded feed (app1 silent mid-run, 10 ms window)"
      ~columns:
        [
          "mode"; "paths"; "emitted live"; "peak pending"; "deformed"; "evicted";
          "backpressure";
        ]
  in
  let row label (online, live, peak) =
    let s = Core.Online.ranker_stats online in
    let paths = Core.Online.paths online in
    let deformed = List.length (List.filter Core.Cag.is_deformed paths) in
    Report.add_row t
      [
        label;
        Report.cell_int (List.length paths);
        Report.cell_int live;
        Report.cell_int peak;
        Report.cell_int deformed;
        Report.cell_int s.Core.Ranker.stragglers_evicted;
        Report.cell_int s.Core.Ranker.backpressure_pops;
      ];
    (List.length paths, live, peak, deformed)
  in
  let _, live0, peak0, _ = row "wait forever" (replay ()) in
  let paths1, live1, peak1, deformed1 =
    row "straggler timeout 500 ms" (replay ~straggler_timeout:(ST.ms 500) ())
  in
  let _, _, peak2, _ = row "max buffered 500" (replay ~max_buffered:500 ()) in
  Report.print t;
  record_int ~figure:"degraded" "paths" paths1;
  record_int ~figure:"degraded" "live_no_eviction" live0;
  record_int ~figure:"degraded" "live_with_timeout" live1;
  record_int ~figure:"degraded" "peak_pending_no_eviction" peak0;
  record_int ~figure:"degraded" "peak_pending_with_timeout" peak1;
  record_int ~figure:"degraded" "peak_pending_max_buffered" peak2;
  record_int ~figure:"degraded" "deformed_with_timeout" deformed1

(* ---- ext-12: in-band collection plane (agents, wire, collector) ---- *)

let bench_collect () =
  let clients = if !quick then 120 else 300 in
  let spec = { (base_spec ()) with S.clients } in
  (* Out-of-band baseline: probes append to per-host logs that the offline
     correlator reads for free after the run ends. *)
  let baseline = run spec in
  let in_band ~batch =
    let reg = Telemetry.Registry.create () in
    let deploy = ref None in
    let config =
      { Collect.Deploy.default_config with Collect.Deploy.batch_records = batch }
    in
    let outcome =
      S.run
        ~before_run:(fun svc ->
          deploy := Some (Collect.Deploy.install ~telemetry:reg ~config svc))
        ~after_run:(fun _ -> Collect.Deploy.finish (Option.get !deploy))
        spec
    in
    (outcome, Option.get !deploy, reg)
  in
  let lag_of reg =
    match
      Telemetry.Registry.(find_sample (snapshot reg) "pt_collect_delivery_lag_seconds")
    with
    | Some (Telemetry.Registry.Hist h) when h.count > 0 -> (h.p50, h.p90, h.p99)
    | _ -> (0.0, 0.0, 0.0)
  in
  let t =
    Report.table
      ~title:
        (Printf.sprintf
           "ext-12: in-band collection plane (%d clients, batch-size sweep)" clients)
      ~columns:
        [
          "batch"; "frames"; "bytes/record"; "retransmits"; "lag p50 ms"; "lag p90 ms";
          "lag p99 ms"; "identical";
        ]
  in
  (* Small batches bind before the 50 ms flush interval does, so the sweep
     exposes the per-frame overhead; 256 is the agent default. *)
  let batches = if !quick then [ 8; 32; 256 ] else [ 8; 32; 64; 256 ] in
  let default_batch = 256 in
  let headline = ref None in
  List.iter
    (fun batch ->
      let outcome, deploy, reg = in_band ~batch in
      let frames, bytes, retransmits =
        List.fold_left
          (fun (f, b, r) agent ->
            let s = Collect.Agent.stats agent in
            ( f + s.Collect.Agent.frames_shipped,
              b + s.Collect.Agent.bytes_shipped,
              r + s.Collect.Agent.retransmits ))
          (0, 0, 0)
          (Collect.Deploy.agents deploy)
      in
      let delivered =
        Collect.Collector.delivered_records (Collect.Deploy.collector deploy)
      in
      let p50, p90, p99 = lag_of reg in
      (* Byte-identical to the offline correlator run over this same run's
         logs: the acceptance criterion of the collection plane. *)
      let online_paths = Core.Online.paths (Collect.Deploy.online deploy) in
      let cfg = Correlator.config ~transform:outcome.S.transform () in
      let offline = Correlator.correlate cfg outcome.S.logs in
      let sigs cags = List.sort compare (List.map Pattern.signature_of cags) in
      let identical = sigs online_paths = sigs offline.Correlator.cags in
      Report.add_row t
        [
          Report.cell_int batch;
          Report.cell_int frames;
          Report.cell_float ~decimals:1
            (float_of_int bytes /. float_of_int (max 1 delivered));
          Report.cell_int retransmits;
          Report.cell_float ~decimals:2 (p50 *. 1e3);
          Report.cell_float ~decimals:2 (p90 *. 1e3);
          Report.cell_float ~decimals:2 (p99 *. 1e3);
          (if identical then "yes" else "NO");
        ];
      record_int ~figure:"collect" (Printf.sprintf "frames_batch%d" batch) frames;
      record_float ~figure:"collect"
        (Printf.sprintf "bytes_per_record_batch%d" batch)
        (float_of_int bytes /. float_of_int (max 1 delivered));
      if batch = default_batch then headline := Some (outcome, p50, p90, p99, identical))
    batches;
  Report.print t;
  let outcome, p50, p90, p99, identical = Option.get !headline in
  let c =
    Report.table
      ~title:"ext-12: shipping overhead, in-band vs out-of-band"
      ~columns:[ "mode"; "throughput rps"; "mean rt ms" ]
  in
  Report.add_row c
    [
      "out-of-band";
      Report.cell_float ~decimals:1 baseline.S.summary.Metrics.throughput_rps;
      Report.cell_float ~decimals:2 (baseline.S.summary.Metrics.mean_rt_s *. 1e3);
    ];
  Report.add_row c
    [
      Printf.sprintf "in-band (batch %d)" default_batch;
      Report.cell_float ~decimals:1 outcome.S.summary.Metrics.throughput_rps;
      Report.cell_float ~decimals:2 (outcome.S.summary.Metrics.mean_rt_s *. 1e3);
    ];
  Report.print c;
  record_float ~figure:"collect" "lag_p50_ms" (p50 *. 1e3);
  record_float ~figure:"collect" "lag_p90_ms" (p90 *. 1e3);
  record_float ~figure:"collect" "lag_p99_ms" (p99 *. 1e3);
  record_scalar ~figure:"collect" "identical" (Json.Bool identical);
  record_float ~figure:"collect" "throughput_out_of_band_rps"
    baseline.S.summary.Metrics.throughput_rps;
  record_float ~figure:"collect" "throughput_in_band_rps"
    outcome.S.summary.Metrics.throughput_rps;
  record_float ~figure:"collect" "mean_rt_out_of_band_ms"
    (baseline.S.summary.Metrics.mean_rt_s *. 1e3);
  record_float ~figure:"collect" "mean_rt_in_band_ms"
    (outcome.S.summary.Metrics.mean_rt_s *. 1e3)

(* ---- ext-16: hierarchical scale-out correlation ---- *)

let bench_hierarchy () =
  let module P = Collect.Hierarchy in
  (* The §5.3.3 noisy environment: unfilterable db-side chatter is exactly
     what the per-level reduction exists for, so the cluster carries it. *)
  let noisy base = { base with S.noise = S.Paper_noise { db_connections = 2 } } in
  let cluster =
    if !quick then
      { S.base = noisy { S.default with S.clients = 12; time_scale = 0.02; seed = 5 };
        S.replicas = 4 }
    else { S.default_cluster with S.base = noisy S.default_cluster.S.base }
  in
  let shards = min P.default_config.P.shards cluster.S.replicas in
  let plane =
    P.create ~telemetry:(Telemetry.Registry.create ())
      ~config:{ P.default_config with P.shards }
      cluster
  in
  let co = S.run_cluster ~before_replica:(P.install plane) cluster in
  let report = P.finish plane in
  (* Flat-funnel baseline: the same cluster re-run with raw (Deploy) agents;
     the sum of their shipped bytes is what a single flat root would have to
     ingest over the wire. *)
  let flat_bytes =
    let reg = Telemetry.Registry.create () in
    let deploys = ref [] in
    let (_ : S.cluster_outcome) =
      S.run_cluster
        ~before_replica:(fun _ svc ->
          deploys := Collect.Deploy.install ~telemetry:reg svc :: !deploys)
        ~after_replica:(fun _ _ -> Collect.Deploy.finish (List.hd !deploys))
        cluster
    in
    List.fold_left
      (fun acc d ->
        List.fold_left
          (fun acc a -> acc + (Collect.Agent.stats a).Collect.Agent.bytes_shipped)
          acc (Collect.Deploy.agents d))
      0 !deploys
  in
  let raw_bytes = String.length (Trace.Binary_format.encode co.S.all_logs) in
  let mono =
    let cfg = Correlator.config ~transform:co.S.cluster_transform () in
    Correlator.correlate cfg co.S.all_logs
  in
  let identical = String.equal report.P.digest (Core.Hierarchy.digest_result mono) in
  let flat = float_of_int flat_bytes in
  let level0_reduction = flat /. float_of_int (max 1 report.P.agent_bytes_shipped) in
  let root_reduction = flat /. float_of_int (max 1 report.P.root_ingest_bytes) in
  let t =
    Report.table
      ~title:
        (Printf.sprintf
           "ext-16: hierarchical correlation tree (%d replicas / %d hosts, %d shards, \
            noisy)"
           cluster.S.replicas (List.length co.S.hosts) shards)
      ~columns:[ "feed"; "bytes"; "vs flat funnel" ]
  in
  Report.add_row t
    [ "flat funnel -> root (raw frames)"; Report.cell_int flat_bytes; "1.0x" ];
  Report.add_row t
    [
      "level 0 -> 1 (partial frames)";
      Report.cell_int report.P.agent_bytes_shipped;
      Printf.sprintf "%.1fx" level0_reduction;
    ];
  Report.add_row t
    [
      "level 1 -> root (PTH1 paths)";
      Report.cell_int report.P.root_ingest_bytes;
      Printf.sprintf "%.1fx" root_reduction;
    ];
  Report.add_row t
    [
      "(offline archive, for scale)";
      Report.cell_int raw_bytes;
      Printf.sprintf "%.1fx" (flat /. float_of_int (max 1 raw_bytes));
    ];
  Report.print t;
  let s =
    Report.table
      ~title:"ext-16: per-shard ownership (no component sees the full feed)"
      ~columns:[ "shard"; "replicas"; "paths"; "ingest records"; "PTH1 bytes" ]
  in
  List.iter
    (fun (sh : P.shard_report) ->
      Report.add_row s
        [
          Report.cell_int sh.P.shard_id;
          String.concat "," (List.map string_of_int sh.P.shard_replicas);
          Report.cell_int sh.P.paths_finished;
          Report.cell_int sh.P.ingest_records;
          Report.cell_int sh.P.output_bytes;
        ])
    report.P.shard_reports;
  Report.print s;
  Printf.printf
    "root splice vs monolithic correlator over the intact feed: %s (%d paths, %d \
     deformed)\n\n"
    (if identical then "byte-identical digests" else "DIGESTS DIFFER")
    (List.length report.P.finished)
    (List.length report.P.deformed);
  record_int ~figure:"hierarchy" "replicas" cluster.S.replicas;
  record_int ~figure:"hierarchy" "hosts" (List.length co.S.hosts);
  record_int ~figure:"hierarchy" "shards" shards;
  record_int ~figure:"hierarchy" "paths" (List.length report.P.finished);
  record_int ~figure:"hierarchy" "flat_funnel_bytes" flat_bytes;
  record_int ~figure:"hierarchy" "agent_shipped_bytes" report.P.agent_bytes_shipped;
  record_int ~figure:"hierarchy" "root_ingest_bytes" report.P.root_ingest_bytes;
  record_float ~figure:"hierarchy" "level0_reduction" level0_reduction;
  record_float ~figure:"hierarchy" "root_reduction" root_reduction;
  record_scalar ~figure:"hierarchy" "identical" (Json.Bool identical)

(* ---- ext-8: trace format sizes ---- *)

let bench_formats () =
  let t =
    Report.table ~title:"ext-8: trace log formats (text vs binary)"
      ~columns:
        [ "clients"; "activities"; "text bytes"; "binary bytes"; "ratio"; "decode ok" ]
  in
  List.iter
    (fun clients ->
      let outcome = run { (base_spec ()) with S.clients } in
      let collection = outcome.S.logs in
      let text =
        List.fold_left
          (fun acc log ->
            List.fold_left
              (fun acc a -> acc + String.length (Trace.Raw_format.to_line a) + 1)
              acc (Trace.Log.to_list log))
          0 collection
      in
      let encoded = Trace.Binary_format.encode collection in
      let ok =
        match Trace.Binary_format.decode encoded with
        | Ok loaded -> Trace.Log.total loaded = Trace.Log.total collection
        | Error _ -> false
      in
      Report.add_row t
        [
          Report.cell_int clients;
          Report.cell_int outcome.S.activity_count;
          Report.cell_int text;
          Report.cell_int (String.length encoded);
          Report.cell_float ~decimals:1 (float_of_int text /. float_of_int (String.length encoded));
          (if ok then "yes" else "NO");
        ])
    (if !quick then [ 100 ] else [ 100; 300; 500 ]);
  Report.print t

(* ---- ext-9: segmented store (lib/store) ---- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let top_names n patterns =
  List.filteri (fun i _ -> i < n) patterns |> List.map (fun p -> p.Pattern.name)

let bench_store () =
  let clients = if !quick then 150 else 300 in
  let spec = { (base_spec ()) with S.clients } in
  let outcome = run spec in
  let collection = outcome.S.logs in
  let correlate_cfg = Correlator.config ~transform:outcome.S.transform () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pt-bench-store-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Ingest throughput: stream the run into segments, no reduction. The
     native row is the headline — arenas are pre-built outside the timer,
     the shape in which a live probe/collector feed already arrives — and
     the record-path row keeps the text-era cost visible for comparison. *)
  let arenas = Trace.Arena.of_collection collection in
  (* Best of five passes per path: the first pass pays cold caches and
     allocator growth the steady-state ingest path never sees again, and
     the host's scheduling jitter swamps a single pass. *)
  let ingest_with label feed =
    let stats = ref None and secs = ref infinity in
    for _ = 1 to 5 do
      rm_rf dir;
      (* Settle the heap outside the timed region: the scenario build above
         leaves major-GC debt that would otherwise be collected mid-pass. *)
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      let writer = Store.Writer.create ~roll_records:4096 ~dir () in
      feed writer;
      let wstats = Store.Writer.close writer in
      let ingest_s = Unix.gettimeofday () -. t0 in
      if ingest_s < !secs then begin
        secs := ingest_s;
        stats := Some wstats
      end
    done;
    (label, Option.get !stats, !secs)
  in
  let runs =
    [
      ingest_with "records (legacy)" (fun w -> Store.Writer.ingest w collection);
      ingest_with "native arenas" (fun w -> Store.Writer.ingest_native w arenas);
    ]
  in
  let t_ingest =
    Report.table ~title:"ext-9a: store ingest throughput (no reduction, best of 5 passes)"
      ~columns:[ "path"; "records"; "segments"; "bytes"; "seconds"; "records/s"; "MB/s" ]
  in
  let per_s = Hashtbl.create 4 in
  List.iter
    (fun (label, (wstats : Store.Writer.stats), ingest_s) ->
      let records_per_s = float_of_int wstats.Store.Writer.records_in /. ingest_s in
      let mb_per_s = float_of_int wstats.Store.Writer.bytes_out /. ingest_s /. 1048576.0 in
      Hashtbl.replace per_s label (records_per_s, mb_per_s);
      Report.add_row t_ingest
        [
          label;
          Report.cell_int wstats.Store.Writer.records_in;
          Report.cell_int wstats.Store.Writer.segments;
          Report.cell_int wstats.Store.Writer.bytes_out;
          Report.cell_float ~decimals:4 ingest_s;
          Report.cell_float ~decimals:0 records_per_s;
          Report.cell_float ~decimals:2 mb_per_s;
        ])
    runs;
  Report.print t_ingest;
  let _, wstats, _ = List.nth runs 1 in
  let native_per_s, native_mb_per_s = Hashtbl.find per_s "native arenas" in
  let legacy_per_s, _ = Hashtbl.find per_s "records (legacy)" in
  record_int ~figure:"store" "ingest_records" wstats.Store.Writer.records_in;
  record_int ~figure:"store" "ingest_segments" wstats.Store.Writer.segments;
  record_float ~figure:"store" "ingest_records_per_s" native_per_s;
  record_float ~figure:"store" "ingest_mb_per_s" native_mb_per_s;
  record_float ~figure:"store" "ingest_legacy_records_per_s" legacy_per_s;
  (* Query latency: whole store vs a narrow window the manifest can prune. *)
  let manifest =
    match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e
  in
  let min_ts, max_ts =
    List.fold_left
      (fun (lo, hi) (m : Store.Segment.meta) ->
        (min lo m.Store.Segment.min_ts_ns, max hi m.Store.Segment.max_ts_ns))
      (max_int, min_int) manifest.Store.Manifest.segments
  in
  let span = max_ts - min_ts in
  let narrow =
    Store.Query.predicate
      ~since_ns:(min_ts + (span * 45 / 100))
      ~until_ns:(min_ts + (span * 55 / 100))
      ()
  in
  let query p =
    match Store.Query.run ~dir p with Ok r -> r | Error e -> failwith e
  in
  let _, full_stats = query Store.Query.all in
  let _, narrow_stats = query narrow in
  let t_query =
    Report.table ~title:"ext-9b: query latency (manifest pruning)"
      ~columns:[ "query"; "segments scanned"; "records returned"; "ms" ]
  in
  List.iter
    (fun (name, (st : Store.Query.stats)) ->
      Report.add_row t_query
        [
          name;
          Printf.sprintf "%d/%d" st.Store.Query.segments_scanned st.segments_total;
          Report.cell_int st.records_returned;
          Report.cell_float ~decimals:3 (st.seconds *. 1e3);
        ])
    [ ("full range", full_stats); ("mid 10% window", narrow_stats) ];
  Report.print t_query;
  record_float ~figure:"store" "query_full_ms" (full_stats.Store.Query.seconds *. 1e3);
  record_float ~figure:"store" "query_narrow_ms" (narrow_stats.Store.Query.seconds *. 1e3);
  record_int ~figure:"store" "query_narrow_segments_scanned"
    narrow_stats.Store.Query.segments_scanned;
  record_int ~figure:"store" "query_segments_total" narrow_stats.Store.Query.segments_total;
  (* Reduction grid: bytes ratio vs top-3 pattern fidelity. *)
  let baseline = Correlator.correlate correlate_cfg collection in
  let baseline_top = top_names 3 (Pattern.classify baseline.Correlator.cags) in
  let t_red =
    Report.table
      ~title:"ext-9c: request-level reduction — byte ratio vs top-3 pattern fidelity"
      ~columns:
        [ "policy"; "requests kept"; "bytes"; "ratio"; "top-3 ranks"; "reduce (s)" ]
  in
  List.iter
    (fun policy_s ->
      let policy =
        match Store.Policy.of_string policy_s with Ok p -> p | Error e -> failwith e
      in
      let t0 = Unix.gettimeofday () in
      let reduced, rstats =
        Store.Reduce.apply ~correlate:correlate_cfg ~policy collection
      in
      let reduce_s = Unix.gettimeofday () -. t0 in
      let result = Correlator.correlate correlate_cfg reduced in
      let top = top_names 3 (Pattern.classify result.Correlator.cags) in
      let fidelity =
        List.length top = List.length baseline_top
        && List.for_all2 String.equal top baseline_top
      in
      let ratio = Store.Reduce.ratio rstats in
      Report.add_row t_red
        [
          policy_s;
          Printf.sprintf "%d/%d" rstats.Store.Reduce.requests_kept
            rstats.Store.Reduce.requests_total;
          Report.cell_int rstats.Store.Reduce.bytes_after;
          Printf.sprintf "%.1fx" ratio;
          (if fidelity then "kept" else "CHANGED");
          Report.cell_float ~decimals:4 reduce_s;
        ];
      let slug =
        String.map (function 'a' .. 'z' | '0' .. '9' as c -> c | _ -> '_') policy_s
      in
      record_float ~figure:"store" (Printf.sprintf "reduction_%s_ratio" slug) ratio;
      record_int ~figure:"store"
        (Printf.sprintf "reduction_%s_top3_kept" slug)
        (if fidelity then 1 else 0))
    [ "causal"; "causal,sample=0.5@1"; "causal,sample=0.25@1"; "causal,sample=0.1@1" ];
  Report.print t_red

(* ---- ext-11: domain-parallel sharded correlation ---- *)

let bench_parallel () =
  (* Low concurrency leaves request-quiescent gaps in the feed — the
     regime where epoch sharding engages. Heavily overlapped workloads
     (accuracy/fig-9 grids) collapse to one epoch by design. *)
  let clients = if !quick then 6 else 10 in
  let spec = { (base_spec ()) with S.clients } in
  let outcome = run spec in
  let cfg = Correlator.config ~transform:outcome.S.transform () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, serial_s = time (fun () -> Correlator.correlate cfg outcome.S.logs) in
  let serial_digest = Core.Shard.digest serial in
  (* The native path starts from packed arenas — the shape the collection
     plane delivers — so its serial row shows the binary hot path's win
     and its sharded rows must still digest-match the record-path serial. *)
  let arenas = Trace.Arena.of_collection outcome.S.logs in
  let native_serial, native_serial_s =
    time (fun () -> Correlator.correlate_arena cfg arenas)
  in
  let native_serial_equal =
    String.equal (Core.Shard.digest native_serial) serial_digest
  in
  let plan = Core.Shard.plan cfg outcome.S.logs in
  let epochs = Array.length (Core.Shard.epoch_ranges plan) in
  let t =
    Report.table
      ~title:
        (Printf.sprintf
           "ext-11: sharded correlation speedup (%d epochs from %d cut candidates; host has \
            %d domain(s))"
           epochs
           (Core.Shard.cut_candidates plan)
           (Domain.recommended_domain_count ()))
      ~columns:[ "path"; "jobs"; "seconds"; "speedup vs serial"; "output vs serial" ]
  in
  Report.add_row t
    [ "records"; "serial"; Report.cell_float ~decimals:4 serial_s; "1.00"; "reference" ];
  Report.add_row t
    [
      "native";
      "serial";
      Report.cell_float ~decimals:4 native_serial_s;
      Report.cell_float ~decimals:2 (serial_s /. native_serial_s);
      (if native_serial_equal then "identical" else "DIVERGED");
    ];
  let grid =
    [ 1; 2; 4 ]
    @ (match !jobs_override with Some j when not (List.mem j [ 1; 2; 4 ]) -> [ j ] | _ -> [])
  in
  List.iter
    (fun jobs ->
      let result, secs = time (fun () -> Core.Shard.correlate ~jobs cfg outcome.S.logs) in
      let equal = String.equal (Core.Shard.digest result) serial_digest in
      let nresult, nsecs =
        time (fun () -> Core.Shard.correlate_arena ~jobs cfg arenas)
      in
      let nequal = String.equal (Core.Shard.digest nresult) serial_digest in
      Report.add_row t
        [
          "records";
          Report.cell_int jobs;
          Report.cell_float ~decimals:4 secs;
          Report.cell_float ~decimals:2 (serial_s /. secs);
          (if equal then "identical" else "DIVERGED");
        ];
      Report.add_row t
        [
          "native";
          Report.cell_int jobs;
          Report.cell_float ~decimals:4 nsecs;
          Report.cell_float ~decimals:2 (serial_s /. nsecs);
          (if nequal then "identical" else "DIVERGED");
        ];
      record_float ~figure:"parallel" (Printf.sprintf "seconds_jobs_%d" jobs) secs;
      record_float ~figure:"parallel"
        (Printf.sprintf "speedup_jobs_%d" jobs)
        (serial_s /. secs);
      record_int ~figure:"parallel"
        (Printf.sprintf "serial_equal_jobs_%d" jobs)
        (if equal then 1 else 0);
      record_float ~figure:"parallel" (Printf.sprintf "native_seconds_jobs_%d" jobs) nsecs;
      record_int ~figure:"parallel"
        (Printf.sprintf "native_serial_equal_jobs_%d" jobs)
        (if nequal then 1 else 0))
    grid;
  Report.print t;
  record_float ~figure:"parallel" "seconds_serial" serial_s;
  record_float ~figure:"parallel" "native_seconds_serial" native_serial_s;
  record_int ~figure:"parallel" "native_serial_equal" (if native_serial_equal then 1 else 0);
  record_int ~figure:"parallel" "epochs" epochs;
  record_int ~figure:"parallel" "cut_candidates" (Core.Shard.cut_candidates plan);
  record_int ~figure:"parallel" "host_domains" (Domain.recommended_domain_count ())

(* ---- ext: streaming diagnosis scored across the fault matrix ---- *)

let bench_diagnose () =
  let clients = if !quick then 60 else 150 in
  let scale = !time_scale *. if !quick then 0.5 else 1.0 in
  let cases =
    [
      ("control", None);
      ("ejb-delay", Some Faults.ejb_delay);
      ("db-lock", Some Faults.database_lock);
      ("ejb-network", Some Faults.ejb_network);
    ]
  in
  let t =
    Report.table
      ~title:
        (Printf.sprintf
           "ext-13: streaming diagnosis over the in-band feed, fault injected mid-run \
            (%d clients)"
           clients)
      ~columns:
        [ "case"; "paths"; "verdicts"; "first culprit"; "correct"; "ttd (s)"; "false alarms" ]
  in
  let correct = ref 0 in
  let faulted = ref 0 in
  List.iter
    (fun (label, fault) ->
      let spec =
        {
          (base_spec ()) with
          S.name = label;
          clients;
          time_scale = scale;
          faults = Option.to_list fault;
        }
      in
      let reg = Telemetry.Registry.create () in
      let r = Diagnose.Live.run ~telemetry:reg spec in
      let s = r.Diagnose.Live.score in
      (match fault with
      | Some _ ->
          incr faulted;
          if s.Diagnose.Verdict.correct then incr correct
      | None -> ());
      Report.add_row t
        [
          label;
          Report.cell_int r.Diagnose.Live.paths_fed;
          Report.cell_int s.Diagnose.Verdict.verdicts_total;
          Option.value s.Diagnose.Verdict.first_culprit ~default:"-";
          (if s.Diagnose.Verdict.correct then "yes" else "NO");
          (match s.Diagnose.Verdict.time_to_detection_s with
          | Some ttd -> Report.cell_float ~decimals:1 ttd
          | None -> "-");
          Report.cell_int s.Diagnose.Verdict.false_alarms;
        ];
      record_int ~figure:"diagnose"
        (Printf.sprintf "false_alarms_%s" label)
        s.Diagnose.Verdict.false_alarms;
      record_int ~figure:"diagnose"
        (Printf.sprintf "correct_%s" label)
        (if s.Diagnose.Verdict.correct then 1 else 0);
      match s.Diagnose.Verdict.time_to_detection_s with
      | Some ttd -> record_float ~figure:"diagnose" (Printf.sprintf "ttd_s_%s" label) ttd
      | None -> ())
    cases;
  Report.print t;
  record_float ~figure:"diagnose" "accuracy"
    (float_of_int !correct /. float_of_int (max 1 !faulted))

(* ---- ext-14: single-file trace bundles (lib/bundle) ---- *)

(* The offline diagnose culprit: most frequent observed pattern the
   baseline also saw, compared share-against-share (§5.4). `bundle diff`
   must blame the same subject from the packed profiles alone. *)
let diagnose_culprit baseline_result fault_result =
  let base_patterns = Pattern.classify baseline_result.Correlator.cags in
  let obs_patterns = Pattern.classify fault_result.Correlator.cags in
  let find name =
    List.find_opt (fun p -> String.equal p.Pattern.name name) base_patterns
  in
  let rec pick = function
    | [] -> None
    | o :: rest -> (
        match find o.Pattern.name with Some b -> Some (b, o) | None -> pick rest)
  in
  match pick obs_patterns with
  | None -> None
  | Some (b, o) -> (
      let report =
        Core.Analysis.diagnose
          ~baseline:(Aggregate.of_pattern b)
          ~observed:(Aggregate.of_pattern o)
      in
      match report.Core.Analysis.suspects with
      | s :: _ -> Some (Core.Analysis.subject_label s.Core.Analysis.subject)
      | [] -> None)

let bench_bundle () =
  let clients = if !quick then 100 else 200 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pt-bench-bundle-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let control_spec = { (base_spec ()) with S.name = "control"; clients } in
  let control = run control_spec in
  let config = Correlator.config ~transform:control.S.transform () in
  let pack name spec =
    let outcome = run spec in
    let path = Filename.concat dir (name ^ ".ptz") in
    let t0 = Unix.gettimeofday () in
    match
      Bundle.Pack.pack ~roll_records:4096 ~config
        ~source:(`Logs outcome.S.logs) ~path ()
    with
    | Error e -> failwith e
    | Ok summary -> (path, summary, Unix.gettimeofday () -. t0)
  in
  let control_path, summary, pack_s = pack "control" control_spec in
  (* Pack throughput and bundle size vs the same records as a raw store. *)
  let records_per_s = float_of_int summary.Bundle.Pack.records /. pack_s in
  let overhead =
    float_of_int summary.Bundle.Pack.bytes
    /. float_of_int (max 1 summary.Bundle.Pack.store_bytes)
  in
  let t_pack =
    Report.table ~title:"ext-14a: bundle pack (control run)"
      ~columns:
        [ "records"; "paths"; "back-links"; "bundle bytes"; "store bytes"; "overhead";
          "pack (s)"; "records/s" ]
  in
  Report.add_row t_pack
    [
      Report.cell_int summary.Bundle.Pack.records;
      Report.cell_int summary.Bundle.Pack.cags;
      Report.cell_int summary.Bundle.Pack.links;
      Report.cell_int summary.Bundle.Pack.bytes;
      Report.cell_int summary.Bundle.Pack.store_bytes;
      Printf.sprintf "%.2fx" overhead;
      Report.cell_float ~decimals:4 pack_s;
      Report.cell_float ~decimals:0 records_per_s;
    ];
  Report.print t_pack;
  record_int ~figure:"bundle" "pack_records" summary.Bundle.Pack.records;
  record_int ~figure:"bundle" "pack_links" summary.Bundle.Pack.links;
  record_int ~figure:"bundle" "unresolved_links" summary.Bundle.Pack.unresolved_links;
  record_int ~figure:"bundle" "bundle_bytes" summary.Bundle.Pack.bytes;
  record_float ~figure:"bundle" "pack_records_per_s" records_per_s;
  record_float ~figure:"bundle" "store_overhead_ratio" overhead;
  (* Cold open: walk a request and query the embedded store from scratch. *)
  let cold f =
    let t0 = Unix.gettimeofday () in
    (match Bundle.Reader.open_file control_path with
    | Error e -> failwith e
    | Ok reader -> f reader);
    Unix.gettimeofday () -. t0
  in
  let walk_s =
    cold (fun reader ->
        match Bundle.Walk.view reader () with
        | Ok _ -> ()
        | Error e -> failwith e)
  in
  let query_s =
    cold (fun reader ->
        match Bundle.Reader.query reader Store.Query.all with
        | Ok _ -> ()
        | Error e -> failwith e)
  in
  record_float ~figure:"bundle" "cold_walk_ms" (walk_s *. 1e3);
  record_float ~figure:"bundle" "cold_query_ms" (query_s *. 1e3);
  (* Fault matrix: `bundle diff control fault` must blame the same subject
     as the offline diagnose pipeline. *)
  let t_diff =
    Report.table
      ~title:"ext-14b: bundle diff vs diagnose across the fault matrix"
      ~columns:
        [ "case"; "bundle bytes"; "pack (s)"; "diff (s)"; "diff culprit";
          "diagnose culprit"; "agree" ]
  in
  let control_result = correlate control_spec in
  List.iter
    (fun (label, fault) ->
      let spec =
        { (base_spec ()) with S.name = label; clients; faults = [ fault ] }
      in
      let path, fsummary, fpack_s = pack label spec in
      let t0 = Unix.gettimeofday () in
      let diff_culprit =
        match (Bundle.Reader.open_file control_path, Bundle.Reader.open_file path) with
        | Ok a, Ok b -> (
            match Bundle.Diff.diff a b with
            | Ok d ->
                Option.map
                  (fun (s : Core.Analysis.suspect) ->
                    Core.Analysis.subject_label s.Core.Analysis.subject)
                  d.Bundle.Diff.culprit
            | Error e -> failwith e)
        | Error e, _ | _, Error e -> failwith e
      in
      let diff_s = Unix.gettimeofday () -. t0 in
      let expected = diagnose_culprit control_result (correlate spec) in
      let agree =
        match (diff_culprit, expected) with
        | Some a, Some b -> String.equal a b
        | None, None -> true
        | _ -> false
      in
      Report.add_row t_diff
        [
          label;
          Report.cell_int fsummary.Bundle.Pack.bytes;
          Report.cell_float ~decimals:4 fpack_s;
          Report.cell_float ~decimals:4 diff_s;
          Option.value diff_culprit ~default:"-";
          Option.value expected ~default:"-";
          (if agree then "yes" else "NO");
        ];
      record_float ~figure:"bundle" (Printf.sprintf "cold_diff_ms_%s" label) (diff_s *. 1e3);
      record_int ~figure:"bundle"
        (Printf.sprintf "diff_agrees_%s" label)
        (if agree then 1 else 0))
    [
      ("ejb-delay", Faults.ejb_delay);
      ("db-lock", Faults.database_lock);
      ("ejb-network", Faults.ejb_network);
    ];
  Report.print t_diff

(* ---- bechamel micro-benchmarks ---- *)

let micro_tests () =
  let spec = { (base_spec ()) with S.clients = 100; time_scale = 0.02 } in
  let outcome = run spec in
  let prepared = Transform.apply outcome.S.transform outcome.S.logs in
  let correlate_once () =
    let engine = Core.Cag_engine.create () in
    let ranker =
      Core.Ranker.create ~window:(ST.ms 10)
        ~has_mmap_send:(Core.Cag_engine.has_mmap_send engine)
        prepared
    in
    let rec loop () =
      match Core.Ranker.rank ranker with
      | None -> ()
      | Some a ->
          Core.Cag_engine.step engine a;
          loop ()
    in
    loop ();
    Core.Cag_engine.finished engine
  in
  let cags = correlate_once () in
  let one_line =
    Trace.Raw_format.to_line (List.concat_map Trace.Log.to_list prepared |> List.hd)
  in
  let open Bechamel in
  [
    Test.make ~name:"correlate-trace" (Staged.stage (fun () -> ignore (correlate_once ())));
    Test.make ~name:"pattern-signature"
      (Staged.stage (fun () -> ignore (Pattern.signature_of (List.hd cags))));
    Test.make ~name:"classify-patterns" (Staged.stage (fun () -> ignore (Pattern.classify cags)));
    Test.make ~name:"critical-path"
      (Staged.stage (fun () -> ignore (Latency.critical_path (List.hd cags))));
    Test.make ~name:"raw-parse"
      (Staged.stage (fun () -> ignore (Trace.Raw_format.of_line one_line)));
  ]

let bench_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"kernel" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== bechamel micro-benchmarks (ns/run, OLS) ==";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f\n" name est
      | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
    results;
  print_newline ()

(* ---- mesh: adversarial scenario presets + correlation throughput ---- *)

let bench_mesh () =
  let jobs = Option.value !jobs_override ~default:2 in
  (* The presets are deterministic and quick at any --scale, so the same
     numbers land in BENCH_mesh.json on every machine — the mesh gate
     compares them exactly, not within a timing slack. *)
  let t =
    Report.table
      ~title:
        (Printf.sprintf "ext-17: mesh scenario presets (seed %d, %d-way shard check)"
           Mesh.Presets.default_seed jobs)
      ~columns:
        [ "preset"; "accuracy"; "fp"; "paths"; "patterns"; "retries"; "records"; "sharded=" ]
  in
  List.iter
    (fun name ->
      let r = Mesh.Presets.run ~jobs name in
      Report.add_row t
        [
          name;
          Report.cell_float ~decimals:4 r.Mesh.Presets.accuracy;
          Report.cell_int r.false_positives;
          Report.cell_int r.paths;
          Report.cell_int r.patterns;
          Report.cell_int r.retries;
          Report.cell_int r.records;
          (if r.sharded_identical then "yes" else "NO");
        ];
      record_float ~figure:"mesh" ("accuracy_" ^ name) r.accuracy;
      record_scalar ~figure:"mesh" ("identical_" ^ name) (Json.Bool r.sharded_identical);
      if String.equal name "control" then begin
        record_int ~figure:"mesh" "fp_control" r.false_positives;
        record_int ~figure:"mesh" "patterns_control" r.patterns
      end;
      if String.equal name "cascading_failure" then
        record_int ~figure:"mesh" "retries_cascading" r.retries)
    Mesh.Presets.names;
  Report.print t;
  (* Correlation throughput as the DAG widens: random declarative meshes
     with a fixed workload, correlated serially. *)
  let sweep = if !quick then [ 4; 8 ] else [ 4; 6; 8; 12 ] in
  let s =
    Report.table ~title:"ext-17: correlation throughput vs mesh width (serial)"
      ~columns:[ "tiers"; "hosts"; "records"; "paths"; "corr ms"; "records/s" ]
  in
  List.iter
    (fun tiers ->
      let spec = Mesh.Spec.random ~tiers ~seed:21 () in
      let spec = { spec with Mesh.Spec.clients = 12; requests_per_client = 6 } in
      let b, sc = Mesh.Runtime.run ~jobs:1 spec in
      let secs = sc.Mesh.Runtime.result.Core.Correlator.correlation_time in
      let throughput = float_of_int sc.records /. Float.max 1e-9 secs in
      Report.add_row s
        [
          Report.cell_int tiers;
          Report.cell_int (List.length b.Mesh.Runtime.hostnames);
          Report.cell_int sc.records;
          Report.cell_int (List.length sc.result.Core.Correlator.cags);
          Report.cell_float ~decimals:2 (secs *. 1e3);
          Report.cell_int (int_of_float throughput);
        ];
      record_float ~figure:"mesh"
        (Printf.sprintf "records_per_s_%dt" tiers)
        throughput)
    sweep;
  Report.print s

(* ---- driver ---- *)

let all_figures =
  [
    ("accuracy", bench_accuracy);
    ("8", bench_fig8);
    ("9", bench_fig9);
    ("10", bench_fig10_11);
    ("12", bench_fig12_13);
    ("14", bench_fig14);
    ("15", bench_fig15);
    ("16", bench_fig16);
    ("17", bench_fig17);
    ("baseline", bench_baseline);
    ("loss", bench_loss);
    ("ablation", bench_ablation);
    ("formats", bench_formats);
    ("skewfix", bench_skewfix);
    ("online", bench_online);
    ("degraded", bench_degraded);
    ("collect", bench_collect);
    ("hierarchy", bench_hierarchy);
    ("mesh", bench_mesh);
    ("store", bench_store);
    ("parallel", bench_parallel);
    ("diagnose", bench_diagnose);
    ("bundle", bench_bundle);
    ("micro", bench_micro);
  ]

let resolve = function
  | "11" -> Some ("10", bench_fig10_11)
  | "13" -> Some ("12", bench_fig12_13)
  | id -> List.find_opt (fun (name, _) -> String.equal name id) all_figures

let () =
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--figure" :: id :: rest ->
        (match resolve id with
        | Some f -> selected := f :: !selected
        | None when String.equal id "all" -> selected := List.rev all_figures @ !selected
        | None -> Printf.eprintf "unknown figure %S\n" id);
        parse rest
    | "--scale" :: s :: rest ->
        time_scale := float_of_string s;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--jobs" :: j :: rest ->
        jobs_override := Some (max 1 (int_of_string j));
        parse rest
    | "--telemetry" :: file :: rest ->
        telemetry_out := Some file;
        parse rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--gate" :: file :: rest ->
        gate_file := Some file;
        parse rest
    | "--gate-hierarchy" :: file :: rest ->
        gate_hierarchy_file := Some file;
        parse rest
    | "--gate-mesh" :: file :: rest ->
        gate_mesh_file := Some file;
        parse rest
    | "--telemetry-format" :: fmt :: rest ->
        (match fmt with
        | "prom" -> telemetry_format := `Prom
        | "json" -> telemetry_format := `Json
        | "report" -> telemetry_format := `Report
        | _ -> Printf.eprintf "unknown telemetry format %S (prom|json|report)\n" fmt);
        parse rest
    | arg :: rest ->
        Printf.eprintf "unknown argument %S\n" arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let figures =
    match List.rev !selected with
    | [] -> all_figures
    | fs ->
        let seen = Hashtbl.create 8 in
        List.filter
          (fun (name, _) ->
            if Hashtbl.mem seen name then false
            else begin
              Hashtbl.replace seen name ();
              true
            end)
          fs
  in
  Printf.printf
    "PreciseTracer evaluation harness (time_scale %.2f%s). Shapes are comparable to the paper; \
     absolute numbers are not (simulated substrate).\n\n"
    !time_scale
    (if !quick then ", quick grids" else "");
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      Telemetry.Registry.(
        time default ~labels:[ ("figure", name) ] "pt_bench_figure_seconds" f);
      figure_seconds := (name, Unix.gettimeofday () -. t0) :: !figure_seconds)
    figures;
  (match !json_out with None -> () | Some file -> emit_json file);
  (match !gate_file with None -> () | Some file -> run_gate file);
  (match !gate_hierarchy_file with None -> () | Some file -> run_hierarchy_gate file);
  (match !gate_mesh_file with None -> () | Some file -> run_mesh_gate file);
  match !telemetry_out with
  | None -> ()
  | Some file ->
      let families = Telemetry.Registry.(snapshot default) in
      let body =
        match !telemetry_format with
        | `Prom -> Telemetry.Export.to_prometheus families
        | `Json -> Telemetry.Export.to_json_string families ^ "\n"
        | `Report -> Core.Telemetry_report.render families
      in
      if String.equal file "-" then print_string body
      else begin
        match open_out file with
        | oc ->
            Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
            Printf.printf "telemetry self-profile written to %s\n" file
        | exception Sys_error msg ->
            Printf.eprintf "cannot write telemetry: %s\n" msg;
            exit 1
      end
