# Minimal CI entry points. `make ci` is what a pipeline should run.

.PHONY: all build test test-parallel fmt bench-quick bench-gate bundle-gate ci clean

all: build

build:
	dune build

test: build
	dune runtest

# The suite again with two worker domains, so every ?jobs/?pool code path
# (sharded correlation, parallel segment scans and reduction) runs
# genuinely parallel in CI even where tests default to PT_JOBS unset.
test-parallel: build
	PT_JOBS=2 dune runtest --force

# A fast bench smoke: the store, degraded-feed, collection-plane,
# hierarchical-correlation, sharded-correlation, diagnosis and bundle
# figures on quick grids, with the machine-readable summary CI can diff
# (BENCH.json is untracked output; the BENCH_*.json files in the repo
# are committed reference runs).
bench-quick: build
	dune exec bench/main.exe -- --quick --figure store --figure degraded --figure collect --figure hierarchy --figure mesh --figure parallel --figure diagnose --figure bundle --json BENCH.json

# Regression gates: run the store and hierarchy figures fresh. The store
# gate compares native-arena ingest throughput against the committed
# reference run (BENCH_store.json) and fails below half of it — wide
# enough to absorb shared-host timing noise, tight enough to catch a
# real hot-path regression. The hierarchy gate is deterministic: the
# root's feed-volume reduction must stay at or above the 3x target (and
# half the committed BENCH_hierarchy.json figure), and the hierarchical
# digest must stay byte-identical to the monolithic correlator's. The
# mesh gate is deterministic too: every scenario preset must correlate
# at or above 0.95 accuracy (and within 0.02 of the committed
# BENCH_mesh.json), the faultless control must stay free of false
# positives, and serial/sharded correlation must stay byte-identical.
bench-gate: build
	dune exec bench/main.exe -- --quick --figure store --figure hierarchy --figure mesh --gate BENCH_store.json --gate-hierarchy BENCH_hierarchy.json --gate-mesh BENCH_mesh.json

# Bundle round-trip gate: record a control and a faulted run as PTZ1
# bundles, then exercise every reader path — info (container framing),
# query (embedded-store pruning), walk (back-link resolution) and diff
# (culprit naming) — so a bundle written by HEAD is always readable by
# HEAD.
bundle-gate: build
	rm -rf _bundle_gate && mkdir -p _bundle_gate
	dune exec bin/precisetracer.exe -- simulate -c 60 --scale 0.05 --seed 11 --bundle _bundle_gate/control.ptz
	dune exec bin/precisetracer.exe -- simulate -c 60 --scale 0.05 --seed 11 --fault ejb-delay --bundle _bundle_gate/fault.ptz
	dune exec bin/precisetracer.exe -- bundle info _bundle_gate/control.ptz
	dune exec bin/precisetracer.exe -- bundle query _bundle_gate/control.ptz --since-ms 500
	dune exec bin/precisetracer.exe -- bundle walk _bundle_gate/control.ptz
	dune exec bin/precisetracer.exe -- bundle diff _bundle_gate/control.ptz _bundle_gate/fault.ptz
	rm -rf _bundle_gate

# Formatting check is advisory: the container does not ship ocamlformat,
# so skip (with a note) when the tool is absent rather than failing CI.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt build test test-parallel bench-quick bench-gate bundle-gate

clean:
	dune clean
