# Minimal CI entry points. `make ci` is what a pipeline should run.

.PHONY: all build test fmt ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Formatting check is advisory: the container does not ship ocamlformat,
# so skip (with a note) when the tool is absent rather than failing CI.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt build test

clean:
	dune clean
