# Minimal CI entry points. `make ci` is what a pipeline should run.

.PHONY: all build test fmt bench-quick ci clean

all: build

build:
	dune build

test: build
	dune runtest

# A fast bench smoke: the store and degraded-feed figures on quick grids,
# with the machine-readable summary CI can diff (BENCH.json is untracked
# output; BENCH_store.json in the repo is a committed reference run).
bench-quick: build
	dune exec bench/main.exe -- --quick --figure store --figure degraded --json BENCH.json

# Formatting check is advisory: the container does not ship ocamlformat,
# so skip (with a note) when the tool is absent rather than failing CI.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt build test bench-quick

clean:
	dune clean
