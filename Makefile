# Minimal CI entry points. `make ci` is what a pipeline should run.

.PHONY: all build test test-parallel fmt bench-quick ci clean

all: build

build:
	dune build

test: build
	dune runtest

# The suite again with two worker domains, so every ?jobs/?pool code path
# (sharded correlation, parallel segment scans and reduction) runs
# genuinely parallel in CI even where tests default to PT_JOBS unset.
test-parallel: build
	PT_JOBS=2 dune runtest --force

# A fast bench smoke: the store, degraded-feed, collection-plane and
# sharded-correlation figures on quick grids, with the machine-readable
# summary CI can diff (BENCH.json is untracked output; BENCH_store.json,
# BENCH_collect.json and BENCH_parallel.json in the repo are committed
# reference runs).
bench-quick: build
	dune exec bench/main.exe -- --quick --figure store --figure degraded --figure collect --figure parallel --figure diagnose --json BENCH.json

# Formatting check is advisory: the container does not ship ocamlformat,
# so skip (with a note) when the tool is absent rather than failing CI.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt build test test-parallel bench-quick

clean:
	dune clean
