(* The precisetracer command-line tool.

   Subcommands:
     simulate   run the simulated three-tier testbed, optionally saving
                per-node TCP_TRACE files or streaming a segmented store
     correlate  turn a directory of trace files (text, binary or a
                segmented store) into causal paths
     evaluate   simulate + correlate + score against the oracle, or
                correlate + score saved traces (--from)
     diagnose   compare a suspect configuration against a healthy baseline
                and print the suspected components
     store      ingest | query | compact | stat on segmented trace stores
     bundle     pack | info | walk | query | diff on single-file PTZ1
                recordings
     mesh       run a declarative microservice-mesh scenario preset
                end-to-end and score the correlator against its oracle *)

module S = Tiersim.Scenario
module Workload = Tiersim.Workload
module Faults = Tiersim.Faults
module Metrics = Tiersim.Metrics
module ST = Simnet.Sim_time
open Cmdliner

(* ---- shared options ---- *)

let clients =
  Arg.(value & opt int 300 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent emulated clients.")

let mix =
  let parse s =
    match Workload.mix_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected Browse_only or Default")
  in
  let print ppf m = Format.pp_print_string ppf (Workload.mix_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) Workload.Browse_only
    & info [ "mix" ] ~docv:"MIX" ~doc:"Workload mix: Browse_only or Default.")

let max_threads =
  Arg.(
    value & opt int 40
    & info [ "max-threads" ] ~docv:"N" ~doc:"App-server thread pool size (JBoss MaxThreads).")

let time_scale =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~docv:"F"
        ~doc:"Stage-duration scale; 1.0 reproduces the paper's 10.5-minute runs.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let skew_ms =
  Arg.(
    value & opt int 0
    & info [ "skew-ms" ] ~docv:"MS" ~doc:"Cross-node clock skew magnitude, milliseconds.")

let noise =
  Arg.(
    value & flag
    & info [ "noise" ]
        ~doc:
          "Add the paper's noise environment: rlogin/ssh chatter plus mysql clients on the \
           service database.")

let faults =
  let fault =
    Arg.enum
      [
        ("ejb-delay", Faults.ejb_delay);
        ("db-lock", Faults.database_lock);
        ("ejb-network", Faults.ejb_network);
        ("host-silence", Faults.host_silence ~host:"app1" ~after:(ST.sec 15));
        ( "agent-crash",
          Faults.agent_crash ~host:"app1" ~after:(ST.sec 15)
            ~restart_after:(Some (ST.sec 5)) );
      ]
  in
  Arg.(
    value & opt_all fault []
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:
          "Inject a performance problem: $(b,ejb-delay), $(b,db-lock), $(b,ejb-network), \
           $(b,host-silence) (app1's probe goes dark 15 virtual seconds in), or \
           $(b,agent-crash) (app1's collection agent dies 15 virtual seconds in and \
           restarts 5 seconds later; only meaningful with $(b,--collect)). Repeatable.")

let window_ms =
  Arg.(
    value & opt float 10.0
    & info [ "window-ms" ] ~docv:"MS" ~doc:"Correlator sliding-window size, milliseconds.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for sharded correlation and store segment scans. Defaults to the \
           $(b,PT_JOBS) environment variable, else the machine's recommended domain count. \
           Output is identical at any value.")

let jobs_of = function Some j -> max 1 j | None -> Parallel.Pool.default_jobs ()

let fault_onset_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "fault-onset" ] ~docv:"MS"
        ~doc:
          "Hold the injected faults back until $(docv) virtual milliseconds into the run \
           (default: active from the start). $(b,diagnose --live) defaults this to the \
           middle of the runtime session.")

let spec_of clients mix max_threads time_scale seed skew_ms noise faults fault_onset_ms =
  {
    S.default with
    S.clients;
    mix;
    max_threads;
    time_scale;
    seed;
    skew = ST.ms skew_ms;
    noise = (if noise then S.Paper_noise { db_connections = 4 } else S.No_noise);
    faults;
    fault_onset = Option.map (fun ms -> ST.span_of_float_s (ms /. 1e3)) fault_onset_ms;
  }

let spec_term =
  Term.(
    const spec_of $ clients $ mix $ max_threads $ time_scale $ seed $ skew_ms $ noise $ faults
    $ fault_onset_ms)

let window_of ms = ST.span_of_float_s (ms /. 1e3)

let policy_conv =
  let parse s =
    match Store.Policy.of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Cmdliner.Arg.conv (parse, Store.Policy.pp)

(* Load traces from DIR, whatever their format: a segmented store (has a
   MANIFEST.json), binary PTB1 files (recognised by magic, any filename)
   and/or per-node *.trace text files — mixed contents are merged. *)
let load_traces ?jobs dir =
  if Store.Manifest.exists ~dir then
    match Store.Query.run ?jobs ~dir Store.Query.all with
    | Ok (logs, _) -> Ok logs
    | Error e -> Error e
  else
    match Sys.readdir dir with
    | exception Sys_error e -> Error e
    | entries -> (
        Array.sort String.compare entries;
        let binaries =
          Array.to_list entries
          |> List.filter (fun f ->
                 Trace.Binary_format.is_binary_file ~path:(Filename.concat dir f))
        in
        let rec load_bins acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest -> (
              match Trace.Binary_format.load ~path:(Filename.concat dir f) with
              | Ok c -> load_bins (c :: acc) rest
              | Error e -> Error (Printf.sprintf "%s: %s" f e))
        in
        match load_bins [] binaries with
        | Error e -> Error e
        | Ok bins -> (
            let has_text =
              Array.exists (fun f -> Filename.check_suffix f ".trace") entries
            in
            let texts =
              if has_text then
                match Trace.Log.load ~dir with Ok c -> Ok [ c ] | Error e -> Error e
              else Ok []
            in
            match texts with
            | Error e -> Error e
            | Ok texts -> (
                match bins @ texts with
                | [] ->
                    Error
                      (Printf.sprintf
                         "no traces in %s (expected a store MANIFEST.json, PTB1 files or \
                          *.trace files)"
                         dir)
                | collections -> Ok (Store.Query.merge collections))))

(* ---- telemetry self-profile ---- *)

let telemetry_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write the pipeline's own metrics (correlator, simnet, probe; see docs/TELEMETRY.md) \
           to $(docv) after the run; \"-\" writes to stdout.")

let telemetry_format =
  Arg.(
    value
    & opt (enum [ ("prom", `Prom); ("json", `Json); ("report", `Report) ]) `Prom
    & info [ "telemetry-format" ] ~docv:"FORMAT"
        ~doc:
          "Self-profile format: $(b,prom) (Prometheus text exposition), $(b,json), or \
           $(b,report) (human-readable tables).")

let write_telemetry file format =
  match file with
  | None -> ()
  | Some file ->
      let families = Telemetry.Registry.(snapshot default) in
      let body =
        match format with
        | `Prom -> Telemetry.Export.to_prometheus families
        | `Json -> Telemetry.Export.to_json_string families ^ "\n"
        | `Report -> Core.Telemetry_report.render families
      in
      if String.equal file "-" then print_string body
      else begin
        match open_out file with
        | oc ->
            Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
            Format.printf "telemetry written to %s@." file
        | exception Sys_error msg ->
            Format.eprintf "cannot write telemetry: %s@." msg;
            exit 1
      end

(* ---- bundle packing shared by simulate/correlate/bundle pack ---- *)

let bundle_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle" ] ~docv:"FILE"
        ~doc:
          "Also pack the run into a single-file PTZ1 bundle at $(docv): the raw store, the \
           correlated causal paths with back-links to their records, and the pattern \
           profiles (see docs/BUNDLE.md).")

let scenario_json (spec : S.spec) =
  let open Core.Json in
  Obj
    [
      ("clients", Int spec.S.clients);
      ("mix", String (Workload.mix_to_string spec.S.mix));
      ("max_threads", Int spec.S.max_threads);
      ("time_scale", Float spec.S.time_scale);
      ("seed", Int spec.S.seed);
      ("skew_ns", Int (ST.span_ns spec.S.skew));
      ( "noise",
        match spec.S.noise with
        | S.No_noise -> Null
        | S.Paper_noise { db_connections } -> Obj [ ("db_connections", Int db_connections) ] );
      ("faults", Int (List.length spec.S.faults));
      ( "fault_onset_ns",
        match spec.S.fault_onset with None -> Null | Some s -> Int (ST.span_ns s) );
    ]

let pack_bundle ?telemetry ?scenario ?jobs ~config ~source path =
  match Bundle.Pack.pack ?telemetry ?scenario ?jobs ~config ~source ~path () with
  | Ok summary -> Format.printf "%a@." Bundle.Pack.pp_summary summary
  | Error e ->
      Format.eprintf "cannot pack bundle: %s@." e;
      exit 1

(* ---- simulate ---- *)

let print_summary outcome =
  let s = outcome.S.summary in
  Format.printf "completed %d requests over the whole run; runtime session: %a@."
    (Metrics.total_recorded outcome.S.metrics)
    Metrics.pp_summary s;
  Format.printf "captured %d activities on %d nodes@." outcome.S.activity_count
    (List.length outcome.S.logs)

let print_collect d =
  let online = Collect.Deploy.online d in
  let paths = Core.Online.paths online in
  let flagged = List.length (List.filter Core.Cag.is_deformed paths) in
  Format.printf "collect: %d causal paths online (%d flagged deformed, %d unfinished)@."
    (List.length paths) flagged
    (List.length (Core.Online.deformed online));
  List.iter
    (fun agent ->
      let s = Collect.Agent.stats agent in
      Format.printf
        "  agent %s: observed %d, reduced %d, dropped %d, shipped %d frames (%d \
         retransmits, %d bytes), acked %d records over %d connection%s@."
        (Collect.Agent.host agent) s.Collect.Agent.observed s.Collect.Agent.reduced
        (Collect.Agent.dropped_total s) s.Collect.Agent.frames_shipped
        s.Collect.Agent.retransmits s.Collect.Agent.bytes_shipped
        s.Collect.Agent.acked_records s.Collect.Agent.connections
        (if s.Collect.Agent.connections = 1 then "" else "s"))
    (Collect.Deploy.agents d);
  let collector = Collect.Deploy.collector d in
  List.iter
    (fun (host, (hs : Collect.Collector.host_stats)) ->
      Format.printf
        "  collector<-%s: %d frames / %d records delivered, %d duplicates, %d skipped@."
        host hs.Collect.Collector.delivered_frames hs.Collect.Collector.delivered_records
        hs.Collect.Collector.duplicate_frames hs.Collect.Collector.skipped_frames)
    (Collect.Collector.stats collector);
  match
    Telemetry.Registry.(find_sample (snapshot default)) "pt_collect_delivery_lag_seconds"
  with
  | Some (Telemetry.Registry.Hist h) when h.count > 0 ->
      Format.printf "  delivery lag: p50 %.1f ms, p90 %.1f ms, p99 %.1f ms@."
        (h.p50 *. 1e3) (h.p90 *. 1e3) (h.p99 *. 1e3)
  | _ -> ()

let print_cluster_summary (co : S.cluster_outcome) =
  let requests =
    List.fold_left (fun acc o -> acc + Metrics.total_recorded o.S.metrics) 0 co.S.outcomes
  in
  let activities = List.fold_left (fun acc o -> acc + o.S.activity_count) 0 co.S.outcomes in
  Format.printf "cluster: %d replicas / %d traced hosts, %d requests completed, %d \
                 activities captured@."
    co.S.cluster.S.replicas (List.length co.S.hosts) requests activities

let print_hierarchy (report : Collect.Hierarchy.report) =
  let module P = Collect.Hierarchy in
  Format.printf "hierarchy: %d causal paths at the root (%d deformed)@."
    (List.length report.P.finished)
    (List.length report.P.deformed);
  Format.printf "  root digest %s@." report.P.digest;
  Format.printf
    "  level 0: %d records observed, %d removed before framing (%d coalesced, %d local \
     flows, %d fallbacks), %d boundary entries, %d bytes shipped@."
    report.P.agent_observed report.P.agent_reduced report.P.partial_coalesced
    report.P.partial_local_flows report.P.partial_fallbacks report.P.boundary_entries
    report.P.agent_bytes_shipped;
  List.iter
    (fun (sh : P.shard_report) ->
      Format.printf
        "  shard %d <- replicas [%s]: %d paths (%d deformed) from %d reduced records, %d \
         boundary entries, %d PTH1 bytes to root@."
        sh.P.shard_id
        (String.concat "," (List.map string_of_int sh.P.shard_replicas))
        sh.P.paths_finished sh.P.paths_deformed sh.P.ingest_records
        sh.P.shard_boundary_entries sh.P.output_bytes)
    report.P.shard_reports;
  Format.printf "  root ingest: %d PTH1 bytes" report.P.root_ingest_bytes;
  if report.P.root_ingest_bytes > 0 then
    Format.printf " (%.1fx below the %d wire bytes level 1 ingested)"
      (float_of_int report.P.agent_bytes_shipped /. float_of_int report.P.root_ingest_bytes)
      report.P.agent_bytes_shipped;
  Format.printf "@."

let simulate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Save per-node TCP_TRACE files into $(docv).")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Save one compact binary file (traces.ptb) instead of per-node text files.")
  in
  let store_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Stream the captured activities into a segmented trace store at $(docv) \
             (segments + MANIFEST.json; see docs/STORE.md).")
  in
  let store_policy =
    Arg.(
      value
      & opt policy_conv Store.Policy.none
      & info [ "store-policy" ] ~docv:"POLICY"
          ~doc:
            "Online reduction policy for --store, e.g. $(b,causal,sample=0.25@7). \
             Default $(b,none) (keep everything).")
  in
  let segment_records =
    Arg.(
      value & opt int 65536
      & info [ "segment-records" ] ~docv:"N"
          ~doc:"Roll a new store segment every $(docv) buffered activities.")
  in
  let collect =
    Arg.(
      value & flag
      & info [ "collect" ]
          ~doc:
            "Run the in-band collection plane: one agent per traced host ships the probe's \
             records over the simulated network to a central collector feeding an online \
             correlation (see docs/COLLECT.md). Shipping consumes the same NICs and CPUs \
             as the service.")
  in
  let collect_batch =
    Arg.(
      value & opt int Collect.Agent.default_config.Collect.Agent.batch_records
      & info [ "collect-batch" ] ~docv:"N" ~doc:"Agent frame size: records per PTC1 frame.")
  in
  let collect_buffer =
    Arg.(
      value & opt int Collect.Agent.default_config.Collect.Agent.max_spool_records
      & info [ "collect-buffer" ] ~docv:"N"
          ~doc:"Agent buffer bound: records held (batch + encode queue + spool) before \
                the overflow policy engages.")
  in
  let collect_overflow =
    Arg.(
      value
      & opt (enum [ ("drop-oldest", Collect.Agent.Drop_oldest); ("block", Collect.Agent.Block) ])
          Collect.Agent.Drop_oldest
      & info [ "collect-overflow" ] ~docv:"POLICY"
          ~doc:
            "Agent overflow policy: $(b,drop-oldest) evicts the oldest unshipped frames, \
             $(b,block) drops incoming records.")
  in
  let agent_policy =
    Arg.(
      value
      & opt policy_conv Store.Policy.none
      & info [ "agent-policy" ] ~docv:"POLICY"
          ~doc:
            "Agent-local reduction applied before shipping, e.g. \
             $(b,causal,sample=0.25@7). Default $(b,none) (ship everything).")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Scale the testbed out to $(docv) independent service replicas ($(docv) x 3 \
             traced hosts, the cluster preset). Above 1 this requires the hierarchical \
             plane: $(b,--collect-shards) or $(b,--agent-correlate).")
  in
  let collect_shards =
    Arg.(
      value & opt int 0
      & info [ "collect-shards" ] ~docv:"N"
          ~doc:
            "Run the hierarchical collection plane with $(docv) level-1 collector shards: \
             per-host agents partial-correlate before shipping, each shard correlates a \
             partition of the entry connections, and the root splices the shards' PTH1 \
             path feeds (see docs/COLLECT.md). Implies $(b,--agent-correlate).")
  in
  let agent_correlate =
    Arg.(
      value & flag
      & info [ "agent-correlate" ]
          ~doc:
            "Run the agent-local partial-correlation pass (hierarchy level 0) on every \
             traced host: prefilter, coalesce runs, resolve same-host flows, and ship \
             reduced frames with an unresolved-boundary table. Without \
             $(b,--collect-shards) a single level-1 shard is used.")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ] ~docv:"PRESET"
          ~doc:
            "Simulate a declarative microservice-mesh preset (see $(b,precisetracer mesh \
             --list)) instead of the three-tier testbed. Only $(b,--seed), $(b,-o) and \
             $(b,--binary) apply; use the $(b,mesh) subcommand to also correlate and \
             score.")
  in
  let run spec out binary store_dir store_policy segment_records collect collect_batch
      collect_buffer collect_overflow agent_policy replicas collect_shards agent_correlate
      bundle_out topology tfile tformat =
    let hierarchical = collect_shards > 0 || agent_correlate in
    (match topology with
    | None -> ()
    | Some preset ->
        if
          collect || hierarchical || replicas > 1
          || Option.is_some store_dir
          || Option.is_some bundle_out
        then begin
          Format.eprintf
            "--topology runs the mesh simulator and supports only --seed, -o and \
             --binary; use the mesh subcommand to correlate and score@.";
          exit 1
        end;
        (match Mesh.Presets.spec_of ~seed:spec.S.seed preset with
        | None ->
            Format.eprintf
              "--topology %s: not a declarative mesh preset (try: %s)@." preset
              (String.concat ", "
                 (List.filter
                    (fun n -> Mesh.Presets.spec_of ~seed:0 n <> None)
                    Mesh.Presets.names));
            exit 1
        | Some mspec ->
            let b = Mesh.Runtime.build mspec in
            Simnet.Engine.run b.Mesh.Runtime.engine;
            let logs = Trace.Probe.logs b.Mesh.Runtime.probe in
            Format.printf
              "mesh %s: %d requests completed, %d activities captured on %d hosts@."
              preset
              (Trace.Ground_truth.count b.Mesh.Runtime.gt)
              (Trace.Probe.activity_count b.Mesh.Runtime.probe)
              (List.length b.Mesh.Runtime.hostnames);
            Format.printf "served:";
            List.iter
              (fun (h, n) -> Format.printf " %s=%d" h n)
              (Mesh.Runtime.served b);
            Format.printf "@.";
            (match out with
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                if binary then
                  Trace.Binary_format.save logs ~path:(Filename.concat dir "traces.ptb")
                else Trace.Log.save logs ~dir;
                Trace.Ground_truth.save b.Mesh.Runtime.gt
                  ~path:(Filename.concat dir "ground_truth.txt");
                Format.printf "%s and ground_truth.txt written to %s@."
                  (if binary then "traces.ptb" else "trace files")
                  dir;
                (* The generic correlate command defaults its entry
                   endpoint to the RUBiS web tier; mesh topologies listen
                   elsewhere, so tell the user what to pass. *)
                (match b.Mesh.Runtime.entries with
                | e :: _ ->
                    Format.printf "correlate with: precisetracer correlate %s --entry %a@."
                      dir Simnet.Address.pp_endpoint e
                | [] -> ())
            | None -> ());
            write_telemetry tfile tformat;
            exit 0));
    if replicas < 1 then begin
      Format.eprintf "--replicas must be at least 1@.";
      exit 1
    end;
    if collect_shards < 0 then begin
      Format.eprintf "--collect-shards must be at least 1@.";
      exit 1
    end;
    if replicas > 1 && not hierarchical then begin
      Format.eprintf
        "--replicas above 1 needs the hierarchical plane: add --collect-shards N or \
         --agent-correlate@.";
      exit 1
    end;
    if hierarchical then begin
      if collect || Option.is_some store_dir || Option.is_some bundle_out then begin
        Format.eprintf
          "--collect-shards/--agent-correlate run their own collection plane and cannot \
           be combined with --collect, --store or --bundle@.";
        exit 1
      end;
      if not (Store.Policy.is_none agent_policy) then begin
        Format.eprintf
          "--agent-policy does not apply under --agent-correlate: the partial-correlation \
           pass is the agent-local reduction@.";
        exit 1
      end;
      let shards = if collect_shards > 0 then collect_shards else 1 in
      let cluster = { S.base = spec; S.replicas } in
      let agent =
        {
          Collect.Agent.default_config with
          Collect.Agent.batch_records = collect_batch;
          max_spool_records = collect_buffer;
          overflow = collect_overflow;
        }
      in
      let config =
        { Collect.Hierarchy.default_config with Collect.Hierarchy.shards; agent }
      in
      let plane = Collect.Hierarchy.create ~config cluster in
      let co = S.run_cluster ~before_replica:(Collect.Hierarchy.install plane) cluster in
      let report = Collect.Hierarchy.finish plane in
      print_cluster_summary co;
      print_hierarchy report;
      (match out with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          if binary then
            Trace.Binary_format.save co.S.all_logs
              ~path:(Filename.concat dir "traces.ptb")
          else Trace.Log.save co.S.all_logs ~dir;
          Format.printf "%s written to %s@."
            (if binary then "traces.ptb" else "trace files")
            dir
      | None -> ());
      write_telemetry tfile tformat
    end
    else begin
    let deploy = ref None in
    let writer = ref None in
    let before_run svc =
      if collect then begin
        Option.iter
          (fun dir ->
            let correlate =
              Core.Correlator.config ~transform:(Tiersim.Service.transform_config svc) ()
            in
            writer :=
              Some
                (Store.Writer.create ~policy:store_policy ~correlate
                   ~roll_records:segment_records ~dir ()))
          store_dir;
        let config =
          {
            Collect.Deploy.default_config with
            Collect.Deploy.batch_records = collect_batch;
            max_spool_records = collect_buffer;
            overflow = collect_overflow;
            policy = agent_policy;
          }
        in
        deploy := Some (Collect.Deploy.install ~config ?writer:!writer svc)
      end
    in
    let after_run _ = Option.iter Collect.Deploy.finish !deploy in
    let outcome = S.run ~before_run ~after_run spec in
    print_summary outcome;
    (match out with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        if binary then
          Trace.Binary_format.save outcome.S.logs ~path:(Filename.concat dir "traces.ptb")
        else Trace.Log.save outcome.S.logs ~dir;
        Trace.Ground_truth.save outcome.S.ground_truth
          ~path:(Filename.concat dir "ground_truth.txt");
        Format.printf "%s and ground_truth.txt written to %s@."
          (if binary then "traces.ptb" else "trace files")
          dir
    | None -> ());
    Option.iter print_collect !deploy;
    (match (store_dir, !writer) with
    | Some dir, Some w ->
        (* --collect --store: the writer was fed in-band by the collector *)
        let stats = Store.Writer.close w in
        Trace.Ground_truth.save outcome.S.ground_truth
          ~path:(Filename.concat dir "ground_truth.txt");
        Format.printf "store %s: %a@." dir Store.Writer.pp_stats stats
    | Some dir, None ->
        let correlate = Core.Correlator.config ~transform:outcome.S.transform () in
        let writer =
          Store.Writer.create ~policy:store_policy ~correlate
            ~roll_records:segment_records ~dir ()
        in
        Store.Writer.ingest writer outcome.S.logs;
        let stats = Store.Writer.close writer in
        Trace.Ground_truth.save outcome.S.ground_truth
          ~path:(Filename.concat dir "ground_truth.txt");
        Format.printf "store %s: %a@." dir Store.Writer.pp_stats stats
    | None, _ -> ());
    Option.iter
      (fun path ->
        let config = Core.Correlator.config ~transform:outcome.S.transform () in
        pack_bundle ~scenario:(scenario_json spec) ~config
          ~source:(`Logs outcome.S.logs) path)
      bundle_out;
    write_telemetry tfile tformat
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the simulated three-tier testbed.")
    Term.(
      const run $ spec_term $ out $ binary $ store_out $ store_policy $ segment_records
      $ collect $ collect_batch $ collect_buffer $ collect_overflow $ agent_policy
      $ replicas $ collect_shards $ agent_correlate $ bundle_out_arg $ topology
      $ telemetry_file $ telemetry_format)

(* ---- correlate ---- *)

let transform_of_entry entry =
  Core.Transform.config ~entry_points:[ entry ]
    ~drop_programs:[ "rlogin"; "rlogind"; "ssh"; "sshd"; "mysql" ]
    ()

let correlate_logs ?jobs ~window ~entry logs =
  Core.Shard.correlate ?jobs
    (Core.Correlator.config ~transform:(transform_of_entry entry) ~window ())
    logs

(* Replay saved logs through the online pipeline: merge them into one
   arrival-ordered feed and observe record by record, as a live collector
   would. *)
let correlate_online ~window ~entry ?straggler_timeout ?max_buffered logs =
  let config = Core.Correlator.config ~transform:(transform_of_entry entry) ~window () in
  let hosts = List.map Trace.Log.hostname logs in
  let live = ref 0 in
  let peak_pending = ref 0 in
  let online =
    Core.Online.create ~config ~hosts ?straggler_timeout ?max_buffered
      ~on_path:(fun _ -> incr live)
      ()
  in
  let feed =
    List.stable_sort Trace.Activity.compare_by_time (List.concat_map Trace.Log.to_list logs)
  in
  List.iter
    (fun a ->
      Core.Online.observe online a;
      peak_pending := max !peak_pending (Core.Online.pending online))
    feed;
  let live_before_close = !live in
  Core.Online.finish online;
  (online, live_before_close, !peak_pending)

let print_online (online, live, peak_pending) =
  let open Core in
  let paths = Online.paths online in
  let flagged = List.length (List.filter Cag.is_deformed paths) in
  Format.printf
    "%d causal paths online, %d emitted live before close (%d flagged deformed, %d \
     unfinished); peak pending %d@."
    (List.length paths) live flagged
    (List.length (Online.deformed online))
    peak_pending;
  let rs = Online.ranker_stats online in
  Format.printf
    "ranker: %d candidates, %d noise discarded, %d resorted; stragglers %d evicted / %d \
     resynced; %d backpressure pops@."
    rs.Ranker.candidates rs.noise_discarded rs.resorted rs.stragglers_evicted
    rs.straggler_resyncs rs.backpressure_pops;
  (match List.filter (fun (_, n) -> n > 0) rs.Ranker.quarantined with
  | [] -> ()
  | q ->
      Format.printf "quarantined:%s@."
        (String.concat ""
           (List.map
              (fun (r, n) -> Printf.sprintf " %s=%d" (Ranker.reject_reason_to_string r) n)
              q)));
  let patterns = Pattern.classify paths in
  List.iter (fun p -> Format.printf "  %a@." Pattern.pp p) patterns

let print_correlation result =
  let open Core in
  Format.printf "%d causal paths (%d deformed) in %.3f s; peak memory ~%.1f MB@."
    (List.length result.Correlator.cags)
    (List.length result.Correlator.deformed)
    result.Correlator.correlation_time
    (float_of_int result.Correlator.memory_bytes_estimate /. 1048576.0);
  let rs = result.Correlator.ranker_stats in
  Format.printf "ranker: %d candidates, %d noise discarded, %d promotions@." rs.Ranker.candidates
    rs.noise_discarded rs.promotions;
  let patterns = Pattern.classify result.Correlator.cags in
  List.iter (fun p -> Format.printf "  %a@." Pattern.pp p) patterns;
  match patterns with
  | p :: _ ->
      Format.printf "@.%a@." Aggregate.pp (Aggregate.of_pattern p);
      Format.printf "@.%a@." Aggregate.pp_tails p
  | [] -> ()

let entry_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ ip; port ] -> (
        match (Simnet.Address.ip_of_string ip, int_of_string_opt port) with
        | ip, Some port -> Ok (Simnet.Address.endpoint ip port)
        | exception Invalid_argument m -> Error (`Msg m)
        | _, None -> Error (`Msg "bad port"))
    | _ -> Error (`Msg "expected IP:PORT")
  in
  let print ppf e = Simnet.Address.pp_endpoint ppf e in
  Arg.(
    value
    & opt (conv (parse, print))
        (Simnet.Address.endpoint (Simnet.Address.ip_of_string "10.0.1.1") 80)
    & info [ "entry" ] ~docv:"IP:PORT" ~doc:"The service's entry endpoint (the web tier).")

let correlate_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory of traces: a segmented store, binary PTB1 files (auto-detected by \
             magic) and/or *.trace text files.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Export all causal paths as JSON to $(docv).")
  in
  let show =
    Arg.(
      value & opt int 0
      & info [ "show" ] ~docv:"N" ~doc:"Render the first $(docv) causal paths as swimlanes.")
  in
  let online =
    Arg.(
      value & flag
      & info [ "online" ]
          ~doc:
            "Replay the traces through the online correlator (one merged arrival-ordered \
             feed) instead of the offline batch pipeline.")
  in
  let straggler_timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "straggler-timeout" ] ~docv:"MS"
          ~doc:
            "Online: evict a stream from the commit wait set once it falls more than $(docv) \
             virtual milliseconds behind the feed watermark, so a silent host cannot stall \
             the pipeline.")
  in
  let max_buffered =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-buffered" ] ~docv:"N"
          ~doc:
            "Online: bound held records at $(docv); past it the oldest window is \
             force-resolved instead of waiting for input.")
  in
  let run dir window_ms entry jobs json_out show online straggler_timeout_ms max_buffered
      bundle_out tfile tformat =
    let jobs = jobs_of jobs in
    match load_traces ~jobs dir with
    | Error e -> `Error (false, e)
    | Ok logs ->
        Format.printf "loaded %d activities from %d nodes@." (Trace.Log.total logs)
          (List.length logs);
        let window = window_of window_ms in
        let cags =
          if online then begin
            let ((t, _, _) as run) =
              correlate_online ~window ~entry
                ?straggler_timeout:(Option.map window_of straggler_timeout_ms)
                ?max_buffered logs
            in
            print_online run;
            Core.Online.paths t
          end
          else begin
            let result = correlate_logs ~jobs ~window ~entry logs in
            print_correlation result;
            result.Core.Correlator.cags
          end
        in
        List.iteri
          (fun i cag -> if i < show then Format.printf "@.%s" (Core.Cag_render.render cag))
          cags;
        (match json_out with
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Core.Json.to_string ~indent:true (Core.Cag_export.paths_to_json cags)));
            Format.printf "@.paths exported to %s@." file
        | None -> ());
        (* score against a saved oracle when one sits next to the traces *)
        let gt_path = Filename.concat dir "ground_truth.txt" in
        if Sys.file_exists gt_path then begin
          match Trace.Ground_truth.load ~path:gt_path with
          | Ok gt ->
              let verdict = Core.Accuracy.check ~ground_truth:gt cags in
              Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict
          | Error e -> Format.printf "@.could not read %s: %s@." gt_path e
        end;
        Option.iter
          (fun path ->
            let config =
              Core.Correlator.config ~transform:(transform_of_entry entry) ~window ()
            in
            pack_bundle ~jobs ~config ~source:(`Logs logs) path)
          bundle_out;
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "correlate" ~doc:"Correlate saved trace files into causal paths.")
    Term.(
      ret
        (const run $ dir $ window_ms $ entry_arg $ jobs_arg $ json_out $ show $ online
       $ straggler_timeout_ms $ max_buffered $ bundle_out_arg $ telemetry_file
       $ telemetry_format))

(* ---- evaluate ---- *)

let evaluate_cmd =
  let from =
    Arg.(
      value
      & opt (some dir) None
      & info [ "from" ] ~docv:"DIR"
          ~doc:
            "Skip the simulation: correlate saved traces from $(docv) (trace files or a \
             segmented store) and score them against $(docv)/ground_truth.txt.")
  in
  let run spec window_ms from entry jobs tfile tformat =
    let jobs = jobs_of jobs in
    match from with
    | Some dir -> (
        match load_traces ~jobs dir with
        | Error e -> `Error (false, e)
        | Ok logs -> (
            Format.printf "loaded %d activities from %d nodes@." (Trace.Log.total logs)
              (List.length logs);
            let result = correlate_logs ~jobs ~window:(window_of window_ms) ~entry logs in
            print_correlation result;
            let gt_path = Filename.concat dir "ground_truth.txt" in
            match Trace.Ground_truth.load ~path:gt_path with
            | Error e ->
                `Error (false, Printf.sprintf "cannot score %s: %s" gt_path e)
            | Ok gt ->
                let verdict =
                  Core.Accuracy.check ~ground_truth:gt result.Core.Correlator.cags
                in
                Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict;
                write_telemetry tfile tformat;
                `Ok ()))
    | None ->
        let outcome = S.run spec in
        print_summary outcome;
        let cfg =
          Core.Correlator.config ~transform:outcome.S.transform
            ~window:(window_of window_ms) ()
        in
        let result = Core.Shard.correlate ~jobs cfg outcome.S.logs in
        print_correlation result;
        let verdict =
          Core.Accuracy.check ~ground_truth:outcome.S.ground_truth
            result.Core.Correlator.cags
        in
        Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict;
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:
         "Simulate, correlate, and score accuracy against the oracle — or score saved \
          traces with --from.")
    Term.(
      ret
        (const run $ spec_term $ window_ms $ from $ entry_arg $ jobs_arg $ telemetry_file
       $ telemetry_format))

(* ---- diagnose ---- *)

let write_json_file path j =
  let body = Core.Json.to_string ~indent:true j ^ "\n" in
  if String.equal path "-" then print_string body
  else begin
    match open_out path with
    | oc ->
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
        Format.printf "json written to %s@." path
    | exception Sys_error msg ->
        Format.eprintf "cannot write json: %s@." msg;
        exit 1
  end

let report_to_json ~pattern (report : Core.Analysis.report) =
  let delta (d : Core.Analysis.delta) =
    Core.Json.Obj
      [
        ("component", Core.Json.String (Core.Latency.component_label d.Core.Analysis.comp));
        ("baseline_pct", Core.Json.Float d.Core.Analysis.baseline_pct);
        ("observed_pct", Core.Json.Float d.Core.Analysis.observed_pct);
        ("change_pp", Core.Json.Float d.Core.Analysis.change_pp);
      ]
  in
  let suspect (s : Core.Analysis.suspect) =
    Core.Json.Obj
      [
        ("subject", Core.Json.String (Core.Analysis.subject_label s.Core.Analysis.subject));
        ("severity", Core.Json.Float s.Core.Analysis.severity);
        ("reason", Core.Json.String s.Core.Analysis.reason);
      ]
  in
  Core.Json.Obj
    [
      ("mode", Core.Json.String "offline");
      ("pattern", Core.Json.String pattern);
      ("deltas", Core.Json.List (List.map delta report.Core.Analysis.deltas));
      ("suspects", Core.Json.List (List.map suspect report.Core.Analysis.suspects));
    ]

let diagnose_cmd =
  let baseline_clients =
    Arg.(
      value & opt int 300
      & info [ "baseline-clients" ] ~docv:"N"
          ~doc:"Client count of the healthy baseline run (offline mode).")
  in
  let pattern_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pattern" ] ~docv:"NAME"
          ~doc:
            "Pattern to diagnose, by tier-route name (e.g. \
             $(b,httpd>java>mysqld>java>httpd)). Default: the most frequent pattern \
             present in both runs.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Streaming mode: run one scenario with the in-band collection plane, inject \
             the faults mid-run, and watch the online path feed with the streaming \
             detector — verdicts print as they fire, then the run is scored against the \
             injected ground truth (see docs/DIAGNOSE.md).")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the structured result (report, or verdicts + score) to $(docv); \
                \"-\" writes to stdout.")
  in
  let baseline_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Live mode: arm the detector with this saved baseline instead of learning one \
             from the run's healthy up-ramp.")
  in
  let save_baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-baseline" ] ~docv:"FILE"
          ~doc:"Live mode: save the baseline the detector ran with (for later --baseline).")
  in
  let share_threshold =
    Arg.(
      value
      & opt float Diagnose.Detector.default_config.Diagnose.Detector.share_threshold
      & info [ "share-threshold" ] ~docv:"F"
          ~doc:"Live mode: minimum latency-share drift severity that fires a verdict.")
  in
  let run_offline spec baseline_clients pattern_name json tfile tformat =
    let classify_run spec =
      let outcome = S.run spec in
      let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
      let result = Core.Correlator.correlate cfg outcome.S.logs in
      Core.Pattern.classify result.Core.Correlator.cags
    in
    let base_patterns =
      classify_run
        { spec with S.clients = baseline_clients; faults = []; fault_onset = None; max_threads = 250 }
    in
    let obs_patterns = classify_run spec in
    let find_by_name name = List.find_opt (fun p -> String.equal p.Core.Pattern.name name) in
    let picked =
      match pattern_name with
      | Some name -> (
          match (find_by_name name base_patterns, find_by_name name obs_patterns) with
          | Some b, Some o -> Ok (name, b, o)
          | None, _ -> Error (Printf.sprintf "pattern %S absent from the baseline run" name)
          | _, None -> Error (Printf.sprintf "pattern %S absent from the observed run" name))
      | None ->
          (* Most frequent observed pattern that the baseline run also saw
             (classify orders by descending population). *)
          let rec pick = function
            | [] -> Error "no pattern present in both runs"
            | o :: rest -> (
                match find_by_name o.Core.Pattern.name base_patterns with
                | Some b -> Ok (o.Core.Pattern.name, b, o)
                | None -> pick rest)
          in
          pick obs_patterns
    in
    match picked with
    | Error e -> `Error (false, e)
    | Ok (name, b, o) ->
        let report =
          Core.Analysis.diagnose
            ~baseline:(Core.Aggregate.of_pattern b)
            ~observed:(Core.Aggregate.of_pattern o)
        in
        (* With --json - the human report moves to stderr so stdout stays
           machine-parseable. *)
        let hum = if json = Some "-" then Format.err_formatter else Format.std_formatter in
        Format.fprintf hum "pattern %s: %d baseline paths vs %d observed paths@." name
          (Core.Pattern.count b) (Core.Pattern.count o);
        Format.fprintf hum "%a@." Core.Analysis.pp_report report;
        Option.iter (fun f -> write_json_file f (report_to_json ~pattern:name report)) json;
        write_telemetry tfile tformat;
        `Ok ()
  in
  let run_live spec json baseline_file save_baseline share_threshold tfile tformat =
    let loaded =
      match baseline_file with
      | None -> Ok None
      | Some path -> (
          match Diagnose.Baseline.load ~path with
          | Ok b -> Ok (Some b)
          | Error e -> Error e)
    in
    match loaded with
    | Error e -> `Error (false, e)
    | Ok baseline ->
        let config =
          let d = { Diagnose.Detector.default_config with Diagnose.Detector.share_threshold } in
          match baseline with
          | Some _ -> d
          | None ->
              (* Learning inline: freeze at the end of the up-ramp. *)
              {
                d with
                Diagnose.Detector.freeze_after =
                  Some (fst (S.runtime_session ~time_scale:spec.S.time_scale));
              }
        in
        let hum = if json = Some "-" then Format.err_formatter else Format.std_formatter in
        let r =
          Diagnose.Live.run ~config ?baseline
            ~on_verdict:(fun v -> Format.fprintf hum "%a@." Diagnose.Detector.pp_verdict v)
            spec
        in
        Format.fprintf hum "@.%d paths watched in-band, %d verdicts@." r.Diagnose.Live.paths_fed
          (List.length r.Diagnose.Live.verdicts);
        Format.fprintf hum "%a@." Diagnose.Verdict.pp_score r.Diagnose.Live.score;
        (match (save_baseline, r.Diagnose.Live.baseline) with
        | Some path, Some bl -> (
            match Diagnose.Baseline.save bl ~path with
            | Ok () -> Format.fprintf hum "baseline saved to %s@." path
            | Error e ->
                Format.eprintf "cannot save baseline: %s@." e;
                exit 1)
        | Some _, None -> Format.eprintf "no baseline learned; nothing saved@."
        | None, _ -> ());
        Option.iter
          (fun f ->
            write_json_file f
              (Core.Json.Obj
                 [
                   ("mode", Core.Json.String "live");
                   ( "verdicts",
                     Core.Json.List
                       (List.map Diagnose.Detector.verdict_to_json r.Diagnose.Live.verdicts) );
                   ("score", Diagnose.Verdict.score_to_json r.Diagnose.Live.score);
                   ("paths_fed", Core.Json.Int r.Diagnose.Live.paths_fed);
                 ]))
          json;
        write_telemetry tfile tformat;
        `Ok ()
  in
  let run spec live baseline_clients pattern_name json baseline_file save_baseline
      share_threshold tfile tformat =
    if live then run_live spec json baseline_file save_baseline share_threshold tfile tformat
    else run_offline spec baseline_clients pattern_name json tfile tformat
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Find the component responsible for a performance problem: compare a suspect run \
          against a healthy baseline (offline), or watch a live run's in-band path feed \
          with the streaming detector (--live).")
    Term.(
      ret
        (const run $ spec_term $ live $ baseline_clients $ pattern_arg $ json_file
       $ baseline_file $ save_baseline $ share_threshold $ telemetry_file $ telemetry_format))

(* ---- store ---- *)

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"STORE" ~doc:"Store directory (holds MANIFEST.json and segments).")

let store_ingest_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"SRC"
          ~doc:"Source trace directory (text, binary or another store; auto-detected).")
  in
  let dest =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "store" ] ~docv:"DIR" ~doc:"Destination store directory.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Store.Policy.none
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Reduction policy: comma-separated terms among $(b,causal), \
             $(b,drop=prog1+prog2), $(b,head=N), $(b,sample=P@SEED), \
             $(b,budget=BYTES_PER_S@SEED). Default $(b,none).")
  in
  let segment_records =
    Arg.(
      value & opt int 65536
      & info [ "segment-records" ] ~docv:"N"
          ~doc:"Roll a new segment every $(docv) activities.")
  in
  let run src dest policy segment_records window_ms entry tfile tformat =
    match load_traces src with
    | Error e -> `Error (false, e)
    | Ok logs ->
        let transform =
          Core.Transform.config ~entry_points:[ entry ]
            ~drop_programs:[ "rlogin"; "rlogind"; "ssh"; "sshd"; "mysql" ]
            ()
        in
        let correlate =
          Core.Correlator.config ~transform ~window:(window_of window_ms) ()
        in
        let writer =
          Store.Writer.create ~policy ~correlate ~roll_records:segment_records ~dir:dest ()
        in
        Store.Writer.ingest writer logs;
        let stats = Store.Writer.close writer in
        let gt_src = Filename.concat src "ground_truth.txt" in
        if Sys.file_exists gt_src && not (String.equal src dest) then begin
          match Trace.Ground_truth.load ~path:gt_src with
          | Ok gt -> Trace.Ground_truth.save gt ~path:(Filename.concat dest "ground_truth.txt")
          | Error _ -> ()
        end;
        Format.printf "ingested into %s: %a@." dest Store.Writer.pp_stats stats;
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "ingest" ~doc:"Stream a trace directory into a segmented store, reducing online.")
    Term.(
      ret
        (const run $ src $ dest $ policy $ segment_records $ window_ms $ entry_arg
       $ telemetry_file $ telemetry_format))

let since_until_args =
  let since =
    Arg.(
      value
      & opt (some float) None
      & info [ "since-ms" ] ~docv:"MS"
          ~doc:"Keep only activities at or after $(docv) (virtual milliseconds).")
  in
  let until =
    Arg.(
      value
      & opt (some float) None
      & info [ "until-ms" ] ~docv:"MS"
          ~doc:"Keep only activities at or before $(docv) (virtual milliseconds).")
  in
  (since, until)

let predicate_of since_ms until_ms hosts =
  let ns_of ms = int_of_float (ms *. 1e6) in
  Store.Query.predicate
    ?since_ns:(Option.map ns_of since_ms)
    ?until_ns:(Option.map ns_of until_ms)
    ?hosts:(match hosts with [] -> None | hs -> Some hs)
    ()

let store_query_cmd =
  let since, until = since_until_args in
  let hosts =
    Arg.(
      value & opt_all string []
      & info [ "host" ] ~docv:"HOST" ~doc:"Keep only this node's log. Repeatable.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Write the matching activities to $(docv)/traces.ptb (binary).")
  in
  let run dir since_ms until_ms hosts jobs out tfile tformat =
    match Store.Query.run ~jobs:(jobs_of jobs) ~dir (predicate_of since_ms until_ms hosts) with
    | Error e -> `Error (false, e)
    | Ok (logs, stats) ->
        Format.printf "%a@." Store.Query.pp_stats stats;
        List.iter
          (fun log ->
            Format.printf "  %-10s %d activities@." (Trace.Log.hostname log)
              (Trace.Log.length log))
          logs;
        (match out with
        | Some odir ->
            if not (Sys.file_exists odir) then Sys.mkdir odir 0o755;
            Trace.Binary_format.save logs ~path:(Filename.concat odir "traces.ptb");
            Format.printf "written to %s/traces.ptb@." odir
        | None -> ());
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Time-range/host query over a store; cold segments are pruned via the manifest.")
    Term.(
      ret
        (const run $ store_dir_arg $ since $ until $ hosts $ jobs_arg $ out $ telemetry_file
       $ telemetry_format))

let store_compact_cmd =
  let min_records =
    Arg.(
      value & opt int 8192
      & info [ "min-records" ] ~docv:"N"
          ~doc:"Merge adjacent runs of segments smaller than $(docv) records.")
  in
  let retain =
    Arg.(
      value
      & opt (some float) None
      & info [ "retain-ms" ] ~docv:"MS"
          ~doc:
            "Retention window: delete segments entirely older than $(docv) virtual \
             milliseconds before the store's newest activity.")
  in
  let run dir min_records retain tfile tformat =
    let retain_ns = Option.map (fun ms -> int_of_float (ms *. 1e6)) retain in
    match Store.Compact.run ?retain_ns ~min_records ~dir () with
    | Error e -> `Error (false, e)
    | Ok stats ->
        Format.printf "%a@." Store.Compact.pp_stats stats;
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "compact" ~doc:"Merge small segments and apply retention.")
    Term.(
      ret (const run $ store_dir_arg $ min_records $ retain $ telemetry_file $ telemetry_format))

let store_stat_cmd =
  let run dir =
    match Store.Manifest.load ~dir with
    | Error e -> `Error (false, e)
    | Ok manifest ->
        let t =
          Core.Report.table ~title:(Printf.sprintf "store %s" dir)
            ~columns:
              [ "id"; "records"; "bytes"; "raw records"; "raw bytes"; "from (s)"; "to (s)";
                "hosts"; "policy" ]
        in
        List.iter
          (fun (m : Store.Segment.meta) ->
            Core.Report.add_row t
              [
                Core.Report.cell_int m.Store.Segment.id;
                Core.Report.cell_int m.records;
                Core.Report.cell_int m.bytes;
                Core.Report.cell_int m.raw_records;
                Core.Report.cell_int m.raw_bytes;
                Printf.sprintf "%.3f" (float_of_int m.min_ts_ns /. 1e9);
                Printf.sprintf "%.3f" (float_of_int m.max_ts_ns /. 1e9);
                String.concat "+" m.hosts;
                m.policy;
              ])
          manifest.Store.Manifest.segments;
        Core.Report.print t;
        let raw_bytes =
          List.fold_left
            (fun acc (m : Store.Segment.meta) -> acc + m.Store.Segment.raw_bytes)
            0 manifest.Store.Manifest.segments
        in
        let bytes = Store.Manifest.total_bytes manifest in
        Format.printf "%d segments, %d records, %d payload bytes (%.1fx reduction)@."
          (List.length manifest.Store.Manifest.segments)
          (Store.Manifest.total_records manifest)
          bytes
          (if bytes = 0 then 1.0 else float_of_int raw_bytes /. float_of_int bytes);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Describe a store from its manifest alone (no payload decoding).")
    Term.(ret (const run $ store_dir_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Segmented trace store operations (see docs/STORE.md).")
    [ store_ingest_cmd; store_query_cmd; store_compact_cmd; store_stat_cmd ]

(* ---- bundle ---- *)

let bundle_file_arg ~at ~docv =
  Arg.(
    required
    & pos at (some file) None
    & info [] ~docv ~doc:"A PTZ1 bundle file (see docs/BUNDLE.md).")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON to $(docv).")

let write_json_out file json =
  Option.iter
    (fun file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Core.Json.to_string ~indent:true json);
          output_char oc '\n');
      Format.printf "written to %s@." file)
    file

let bundle_pack_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"SRC"
          ~doc:
            "Source directory: a segmented store (embedded verbatim, keeping its \
             segmentation) or any trace directory (text/binary; cut into synthetic \
             segments).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Bundle file to write.")
  in
  let embed_telemetry =
    Arg.(
      value & flag
      & info [ "embed-telemetry" ]
          ~doc:
            "Embed a snapshot of the packer's own metrics as a $(b,telemetry) section. Off \
             by default so that repacking the same input stays byte-identical.")
  in
  let run src out window_ms entry jobs embed_telemetry =
    let jobs = jobs_of jobs in
    let config =
      Core.Correlator.config ~transform:(transform_of_entry entry) ~window:(window_of window_ms)
        ()
    in
    let source =
      if Store.Manifest.exists ~dir:src then Ok (`Store_dir src)
      else Result.map (fun logs -> `Logs logs) (load_traces ~jobs src)
    in
    match source with
    | Error e -> `Error (false, e)
    | Ok source ->
        let telemetry =
          if embed_telemetry then Some Telemetry.Registry.(snapshot default) else None
        in
        pack_bundle ?telemetry ~jobs ~config ~source out;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Pack a store or trace directory into a single-file PTZ1 bundle.")
    Term.(
      ret (const run $ src $ out $ window_ms $ entry_arg $ jobs_arg $ embed_telemetry))

let bundle_info_cmd =
  let run path =
    match Bundle.Reader.open_file path with
    | Error e -> `Error (false, e)
    | Ok reader ->
        let sections = Bundle.Reader.sections reader in
        let t = Core.Report.table ~title:path ~columns:[ "section"; "offset"; "bytes" ] in
        List.iter
          (fun (s : Bundle.Container.section) ->
            Core.Report.add_row t
              [
                s.Bundle.Container.name;
                Core.Report.cell_int s.Bundle.Container.pos;
                Core.Report.cell_int s.Bundle.Container.len;
              ])
          sections;
        Core.Report.print t;
        (match Bundle.Reader.summary_json reader with
        | Some summary -> Format.printf "%s@." (Core.Json.to_string ~indent:true summary)
        | None -> ());
        (match Bundle.Reader.profiles reader with
        | Ok profiles ->
            List.iter
              (fun (p : Bundle.Codec.profile) ->
                Format.printf "  %-48s %6d paths  mean %8.3f ms@." p.Bundle.Codec.name
                  p.Bundle.Codec.count
                  (p.Bundle.Codec.mean_total_s *. 1e3))
              profiles
        | Error e -> Format.printf "  (patterns unavailable: %s)@." e);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a bundle: sections, packer summary, pattern profiles.")
    Term.(ret (const run $ bundle_file_arg ~at:0 ~docv:"BUNDLE"))

let bundle_walk_cmd =
  let cag_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "id" ] ~docv:"N" ~doc:"Walk the causal path with id $(docv).")
  in
  let pattern =
    Arg.(
      value
      & opt (some string) None
      & info [ "pattern" ] ~docv:"NAME"
          ~doc:"Walk a member of pattern $(docv) (default: the most frequent pattern).")
  in
  let index =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"I" ~doc:"Which member of the pattern to walk (default 0).")
  in
  let run path cag_id pattern index json_file =
    match Bundle.Reader.open_file path with
    | Error e -> `Error (false, e)
    | Ok reader -> (
        match Bundle.Walk.view reader ?cag_id ?pattern ?index () with
        | Error e -> `Error (false, e)
        | Ok view ->
            Format.printf "%a@." Bundle.Walk.pp view;
            write_json_out json_file (Bundle.Walk.to_json view);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "walk"
       ~doc:
         "Step one request's causal path tier by tier: per-hop latency shares plus the raw \
          records behind every hop.")
    Term.(
      ret
        (const run $ bundle_file_arg ~at:0 ~docv:"BUNDLE" $ cag_id $ pattern $ index
       $ json_out_arg))

let bundle_query_cmd =
  let since, until = since_until_args in
  let hosts =
    Arg.(
      value & opt_all string []
      & info [ "host" ] ~docv:"HOST" ~doc:"Keep only this node's log. Repeatable.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Write the matching activities to $(docv)/traces.ptb (binary).")
  in
  let run path since_ms until_ms hosts jobs out =
    match Bundle.Reader.open_file path with
    | Error e -> `Error (false, e)
    | Ok reader -> (
        match
          Bundle.Reader.query ~jobs:(jobs_of jobs) reader (predicate_of since_ms until_ms hosts)
        with
        | Error e -> `Error (false, e)
        | Ok (logs, stats) ->
            Format.printf "%a@." Store.Query.pp_stats stats;
            List.iter
              (fun log ->
                Format.printf "  %-10s %d activities@." (Trace.Log.hostname log)
                  (Trace.Log.length log))
              logs;
            (match out with
            | Some odir ->
                if not (Sys.file_exists odir) then Sys.mkdir odir 0o755;
                Trace.Binary_format.save logs ~path:(Filename.concat odir "traces.ptb");
                Format.printf "written to %s/traces.ptb@." odir
            | None -> ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Time-range/host query over a bundle's embedded store: the same manifest pruning \
          as a directory store, decoding segments in place.")
    Term.(
      ret
        (const run $ bundle_file_arg ~at:0 ~docv:"BUNDLE" $ since $ until $ hosts $ jobs_arg
       $ out))

let bundle_diff_cmd =
  let run path_a path_b json_file =
    match (Bundle.Reader.open_file path_a, Bundle.Reader.open_file path_b) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok a, Ok b -> (
        match Bundle.Diff.diff a b with
        | Error e -> `Error (false, e)
        | Ok d ->
            Format.printf "%a@." Bundle.Diff.pp d;
            write_json_out json_file (Bundle.Diff.to_json d);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bundles (baseline vs observed): pattern-mix drift, per-pattern \
          latency-share deltas, and the culprit subject.")
    Term.(
      ret
        (const run
        $ bundle_file_arg ~at:0 ~docv:"BASELINE"
        $ bundle_file_arg ~at:1 ~docv:"OBSERVED"
        $ json_out_arg))

let bundle_cmd =
  Cmd.group
    (Cmd.info "bundle"
       ~doc:"Single-file PTZ1 trace recordings: pack, inspect, walk, query, diff.")
    [ bundle_pack_cmd; bundle_info_cmd; bundle_walk_cmd; bundle_query_cmd; bundle_diff_cmd ]

(* ---- mesh ---- *)

let mesh_report_json (r : Mesh.Presets.report) =
  let open Core.Json in
  Obj
    [
      ("preset", String r.Mesh.Presets.preset);
      ("seed", Int r.seed);
      ("accuracy", Float r.accuracy);
      ("correct", Int r.correct);
      ("total_requests", Int r.total_requests);
      ("false_positives", Int r.false_positives);
      ("false_negatives", Int r.false_negatives);
      ("paths", Int r.paths);
      ("patterns", Int r.patterns);
      ("records", Int r.records);
      ("retries", Int r.retries);
      ("cache_hits", Int r.cache_hits);
      ("cache_misses", Int r.cache_misses);
      ("async_jobs", Int r.async_jobs);
      ("served", Obj (List.map (fun (h, n) -> (h, Int n)) r.served));
      ("digest", String r.digest);
      ("sharded_identical", Bool r.sharded_identical);
      ("correlation_time_s", Float r.correlation_time);
    ]

let mesh_cmd =
  let preset_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PRESET"
          ~doc:"Scenario preset to run; omit (or pass $(b,--list)) to list them.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the available presets.")
  in
  let mesh_seed =
    Arg.(
      value
      & opt int Mesh.Presets.default_seed
      & info [ "seed" ] ~docv:"N" ~doc:"Random seed (skews, workload, topology).")
  in
  let mesh_jobs =
    Arg.(
      value & opt int 2
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sharded correlation pass whose digest is checked \
             against the serial one. Output is identical at any value.")
  in
  let mesh_window_ms =
    Arg.(
      value & opt float 5.0
      & info [ "window-ms" ] ~docv:"MS" ~doc:"Correlator sliding-window size, milliseconds.")
  in
  let describe = function
    | "control" -> "the healthy reference graph (faultless baseline)"
    | "cascading_failure" -> "slow db + retry policies: timeout-driven duplicate flows"
    | "hotspot_key" -> "key skew: one guaranteed-miss hot key hammers db partition db2"
    | "canary_slow_version" -> "one api replica runs 6x slow behind the load balancer"
    | "thundering_herd" -> "synchronized client burst into a slow async worker"
    | "random" -> "seeded random synchronous call tree (unconstrained topology)"
    | "random_mesh" -> "seeded random declarative DAG with caches and fan-out"
    | _ -> ""
  in
  let run preset list seed jobs window_ms json_file =
    match (preset, list) with
    | None, _ | _, true ->
        List.iter
          (fun n -> Format.printf "%-22s %s@." n (describe n))
          Mesh.Presets.names;
        `Ok ()
    | Some preset, false ->
        if not (List.mem preset Mesh.Presets.names) then
          `Error
            ( false,
              Printf.sprintf "unknown preset %s (try: %s)" preset
                (String.concat ", " Mesh.Presets.names) )
        else begin
          let window = ST.us (int_of_float (window_ms *. 1000.)) in
          let r = Mesh.Presets.run ~window ~jobs ~seed preset in
          Format.printf "%a@." Mesh.Presets.pp_report r;
          (match r.Mesh.Presets.served with
          | [] -> ()
          | served ->
              Format.printf "served:";
              List.iter (fun (h, n) -> Format.printf " %s=%d" h n) served;
              Format.printf "@.");
          write_json_out json_file (mesh_report_json r);
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "mesh"
       ~doc:
         "Run a declarative microservice-mesh scenario preset end-to-end: simulate the \
          service DAG, correlate its traces (serial and sharded) and score the derived \
          paths against the built-in oracle (see docs/MESH.md).")
    Term.(
      ret
        (const run $ preset_arg $ list_flag $ mesh_seed $ mesh_jobs $ mesh_window_ms
       $ json_out_arg))

let () =
  let info =
    Cmd.info "precisetracer" ~version:Version.version
      ~doc:"Precise request tracing for multi-tier services of black boxes (DSN 2009), reproduced."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd;
            correlate_cmd;
            evaluate_cmd;
            diagnose_cmd;
            store_cmd;
            bundle_cmd;
            mesh_cmd;
          ]))
