(* The precisetracer command-line tool.

   Subcommands:
     simulate   run the simulated three-tier testbed, optionally saving
                per-node TCP_TRACE files
     correlate  turn a directory of trace files into causal paths
     evaluate   simulate + correlate + score against the oracle
     diagnose   compare a suspect configuration against a healthy baseline
                and print the suspected components *)

module S = Tiersim.Scenario
module Workload = Tiersim.Workload
module Faults = Tiersim.Faults
module Metrics = Tiersim.Metrics
module ST = Simnet.Sim_time
open Cmdliner

(* ---- shared options ---- *)

let clients =
  Arg.(value & opt int 300 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent emulated clients.")

let mix =
  let parse s =
    match Workload.mix_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected Browse_only or Default")
  in
  let print ppf m = Format.pp_print_string ppf (Workload.mix_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) Workload.Browse_only
    & info [ "mix" ] ~docv:"MIX" ~doc:"Workload mix: Browse_only or Default.")

let max_threads =
  Arg.(
    value & opt int 40
    & info [ "max-threads" ] ~docv:"N" ~doc:"App-server thread pool size (JBoss MaxThreads).")

let time_scale =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~docv:"F"
        ~doc:"Stage-duration scale; 1.0 reproduces the paper's 10.5-minute runs.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let skew_ms =
  Arg.(
    value & opt int 0
    & info [ "skew-ms" ] ~docv:"MS" ~doc:"Cross-node clock skew magnitude, milliseconds.")

let noise =
  Arg.(
    value & flag
    & info [ "noise" ]
        ~doc:
          "Add the paper's noise environment: rlogin/ssh chatter plus mysql clients on the \
           service database.")

let faults =
  let fault =
    Arg.enum
      [
        ("ejb-delay", Faults.ejb_delay);
        ("db-lock", Faults.database_lock);
        ("ejb-network", Faults.ejb_network);
      ]
  in
  Arg.(
    value & opt_all fault []
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:
          "Inject a performance problem: $(b,ejb-delay), $(b,db-lock) or $(b,ejb-network). \
           Repeatable.")

let window_ms =
  Arg.(
    value & opt float 10.0
    & info [ "window-ms" ] ~docv:"MS" ~doc:"Correlator sliding-window size, milliseconds.")

let spec_of clients mix max_threads time_scale seed skew_ms noise faults =
  {
    S.default with
    S.clients;
    mix;
    max_threads;
    time_scale;
    seed;
    skew = ST.ms skew_ms;
    noise = (if noise then S.Paper_noise { db_connections = 4 } else S.No_noise);
    faults;
  }

let spec_term =
  Term.(
    const spec_of $ clients $ mix $ max_threads $ time_scale $ seed $ skew_ms $ noise $ faults)

let window_of ms = ST.span_of_float_s (ms /. 1e3)

(* ---- telemetry self-profile ---- *)

let telemetry_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write the pipeline's own metrics (correlator, simnet, probe; see docs/TELEMETRY.md) \
           to $(docv) after the run; \"-\" writes to stdout.")

let telemetry_format =
  Arg.(
    value
    & opt (enum [ ("prom", `Prom); ("json", `Json); ("report", `Report) ]) `Prom
    & info [ "telemetry-format" ] ~docv:"FORMAT"
        ~doc:
          "Self-profile format: $(b,prom) (Prometheus text exposition), $(b,json), or \
           $(b,report) (human-readable tables).")

let write_telemetry file format =
  match file with
  | None -> ()
  | Some file ->
      let families = Telemetry.Registry.(snapshot default) in
      let body =
        match format with
        | `Prom -> Telemetry.Export.to_prometheus families
        | `Json -> Telemetry.Export.to_json_string families ^ "\n"
        | `Report -> Core.Telemetry_report.render families
      in
      if String.equal file "-" then print_string body
      else begin
        match open_out file with
        | oc ->
            Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
            Format.printf "telemetry written to %s@." file
        | exception Sys_error msg ->
            Format.eprintf "cannot write telemetry: %s@." msg;
            exit 1
      end

(* ---- simulate ---- *)

let print_summary outcome =
  let s = outcome.S.summary in
  Format.printf "completed %d requests over the whole run; runtime session: %a@."
    (Metrics.total_recorded outcome.S.metrics)
    Metrics.pp_summary s;
  Format.printf "captured %d activities on %d nodes@." outcome.S.activity_count
    (List.length outcome.S.logs)

let simulate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Save per-node TCP_TRACE files into $(docv).")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Save one compact binary file (traces.ptb) instead of per-node text files.")
  in
  let run spec out binary tfile tformat =
    let outcome = S.run spec in
    print_summary outcome;
    (match out with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        if binary then
          Trace.Binary_format.save outcome.S.logs ~path:(Filename.concat dir "traces.ptb")
        else Trace.Log.save outcome.S.logs ~dir;
        Trace.Ground_truth.save outcome.S.ground_truth
          ~path:(Filename.concat dir "ground_truth.txt");
        Format.printf "%s and ground_truth.txt written to %s@."
          (if binary then "traces.ptb" else "trace files")
          dir
    | None -> ());
    write_telemetry tfile tformat
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the simulated three-tier testbed.")
    Term.(const run $ spec_term $ out $ binary $ telemetry_file $ telemetry_format)

(* ---- correlate ---- *)

let correlate_logs ~window ~entry logs =
  let transform =
    Core.Transform.config ~entry_points:[ entry ]
      ~drop_programs:[ "rlogin"; "rlogind"; "ssh"; "sshd"; "mysql" ]
      ()
  in
  Core.Correlator.correlate (Core.Correlator.config ~transform ~window ()) logs

let print_correlation result =
  let open Core in
  Format.printf "%d causal paths (%d deformed) in %.3f s; peak memory ~%.1f MB@."
    (List.length result.Correlator.cags)
    (List.length result.Correlator.deformed)
    result.Correlator.correlation_time
    (float_of_int result.Correlator.memory_bytes_estimate /. 1048576.0);
  let rs = result.Correlator.ranker_stats in
  Format.printf "ranker: %d candidates, %d noise discarded, %d promotions@." rs.Ranker.candidates
    rs.noise_discarded rs.promotions;
  let patterns = Pattern.classify result.Correlator.cags in
  List.iter (fun p -> Format.printf "  %a@." Pattern.pp p) patterns;
  match patterns with
  | p :: _ ->
      Format.printf "@.%a@." Aggregate.pp (Aggregate.of_pattern p);
      Format.printf "@.%a@." Aggregate.pp_tails p
  | [] -> ()

let entry_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ ip; port ] -> (
        match (Simnet.Address.ip_of_string ip, int_of_string_opt port) with
        | ip, Some port -> Ok (Simnet.Address.endpoint ip port)
        | exception Invalid_argument m -> Error (`Msg m)
        | _, None -> Error (`Msg "bad port"))
    | _ -> Error (`Msg "expected IP:PORT")
  in
  let print ppf e = Simnet.Address.pp_endpoint ppf e in
  Arg.(
    value
    & opt (conv (parse, print))
        (Simnet.Address.endpoint (Simnet.Address.ip_of_string "10.0.1.1") 80)
    & info [ "entry" ] ~docv:"IP:PORT" ~doc:"The service's entry endpoint (the web tier).")

let correlate_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Directory of .trace files.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Export all causal paths as JSON to $(docv).")
  in
  let show =
    Arg.(
      value & opt int 0
      & info [ "show" ] ~docv:"N" ~doc:"Render the first $(docv) causal paths as swimlanes.")
  in
  let load_traces dir =
    let binary = Filename.concat dir "traces.ptb" in
    if Sys.file_exists binary then Trace.Binary_format.load ~path:binary
    else Trace.Log.load ~dir
  in
  let run dir window_ms entry json_out show tfile tformat =
    match load_traces dir with
    | Error e -> `Error (false, e)
    | Ok logs ->
        Format.printf "loaded %d activities from %d nodes@." (Trace.Log.total logs)
          (List.length logs);
        let result = correlate_logs ~window:(window_of window_ms) ~entry logs in
        print_correlation result;
        List.iteri
          (fun i cag ->
            if i < show then Format.printf "@.%s" (Core.Cag_render.render cag))
          result.Core.Correlator.cags;
        (match json_out with
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Core.Json.to_string ~indent:true
                     (Core.Cag_export.paths_to_json result.Core.Correlator.cags)));
            Format.printf "@.paths exported to %s@." file
        | None -> ());
        (* score against a saved oracle when one sits next to the traces *)
        let gt_path = Filename.concat dir "ground_truth.txt" in
        if Sys.file_exists gt_path then begin
          match Trace.Ground_truth.load ~path:gt_path with
          | Ok gt ->
              let verdict = Core.Accuracy.check ~ground_truth:gt result.Core.Correlator.cags in
              Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict
          | Error e -> Format.printf "@.could not read %s: %s@." gt_path e
        end;
        write_telemetry tfile tformat;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "correlate" ~doc:"Correlate saved trace files into causal paths.")
    Term.(
      ret
        (const run $ dir $ window_ms $ entry_arg $ json_out $ show $ telemetry_file
       $ telemetry_format))

(* ---- evaluate ---- *)

let evaluate_cmd =
  let run spec window_ms tfile tformat =
    let outcome = S.run spec in
    print_summary outcome;
    let cfg =
      Core.Correlator.config ~transform:outcome.S.transform ~window:(window_of window_ms) ()
    in
    let result = Core.Correlator.correlate cfg outcome.S.logs in
    print_correlation result;
    let verdict =
      Core.Accuracy.check ~ground_truth:outcome.S.ground_truth result.Core.Correlator.cags
    in
    Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict;
    write_telemetry tfile tformat
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Simulate, correlate, and score accuracy against the oracle.")
    Term.(const run $ spec_term $ window_ms $ telemetry_file $ telemetry_format)

(* ---- diagnose ---- *)

let diagnose_cmd =
  let baseline_clients =
    Arg.(
      value & opt int 300
      & info [ "baseline-clients" ] ~docv:"N" ~doc:"Client count of the healthy baseline run.")
  in
  let run spec baseline_clients tfile tformat =
    let viewitem_avg spec =
      let outcome = S.run spec in
      let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
      let result = Core.Correlator.correlate cfg outcome.S.logs in
      let patterns = Core.Pattern.classify result.Core.Correlator.cags in
      let two_db p =
        List.length
          (String.split_on_char '>' p.Core.Pattern.name |> List.filter (String.equal "mysqld"))
        >= 2
      in
      let p = match List.find_opt two_db patterns with Some p -> p | None -> List.hd patterns in
      Core.Aggregate.of_pattern p
    in
    let baseline =
      viewitem_avg { spec with S.clients = baseline_clients; faults = []; max_threads = 250 }
    in
    let observed = viewitem_avg spec in
    Format.printf "%a@." Core.Analysis.pp_report (Core.Analysis.diagnose ~baseline ~observed);
    write_telemetry tfile tformat
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Compare the given configuration's latency-percentage profile against a healthy \
          baseline and rank suspect components.")
    Term.(const run $ spec_term $ baseline_clients $ telemetry_file $ telemetry_format)

let () =
  let info =
    Cmd.info "precisetracer" ~version:"1.0.0"
      ~doc:"Precise request tracing for multi-tier services of black boxes (DSN 2009), reproduced."
  in
  exit (Cmd.eval (Cmd.group info [ simulate_cmd; correlate_cmd; evaluate_cmd; diagnose_cmd ]))
