(* Tests for the hierarchical scale-out correlation tree (PR 9): the
   PTBT boundary codec, the agent-local partial-correlation pass, the
   PTH1 shard-to-root codec, the canonical root splice, the collector's
   horizon-jump replay fix, determinism fixes in the detector and skew
   estimator, and the closed-loop cluster where no component sees the
   full feed yet the root's digest is byte-identical to a monolithic
   correlator over the intact logs. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Boundary = Trace.Boundary
module Frame = Collect.Frame
module Wire = Collect.Wire
module Collector = Collect.Collector
module Plane = Collect.Hierarchy
module Scenario = Tiersim.Scenario
module Service = Tiersim.Service
module Engine = Simnet.Engine
module Node = Simnet.Node
module Tcp = Simnet.Tcp
module Address = Simnet.Address
module ST = Simnet.Sim_time
module R = Telemetry.Registry

let qtest = QCheck_alcotest.to_alcotest

(* ---- PTBT boundary-table codec ---- *)

let arbitrary_boundary =
  let open QCheck.Gen in
  let entry =
    int_range 0 0xFFFF >>= fun a ->
    int_range 0 0xFFFF >>= fun b ->
    int_range 1 65_535 >>= fun sport ->
    int_range 1 65_535 >>= fun dport ->
    int_range 0 1000 >>= fun out_rows ->
    int_range 0 1_000_000 >>= fun out_bytes ->
    int_range 0 1000 >>= fun in_rows ->
    int_range 0 1_000_000 >>= fun in_bytes ->
    return
      {
        Boundary.src_ip = a;
        src_port = sport;
        dst_ip = b;
        dst_port = dport;
        out_rows;
        out_bytes;
        in_rows;
        in_bytes;
      }
  in
  QCheck.make
    ~print:(fun t -> Printf.sprintf "%d entries" (List.length t))
    (list_size (int_range 0 40) entry)

let prop_boundary_roundtrip =
  QCheck.Test.make ~name:"PTBT round-trips" ~count:200 arbitrary_boundary (fun t ->
      match Boundary.decode (Boundary.encode t) with
      | Ok t' -> t = t'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_boundary_corrupt () =
  let bytes =
    Boundary.encode
      [
        {
          Boundary.src_ip = 7;
          src_port = 80;
          dst_ip = 9;
          dst_port = 4040;
          out_rows = 3;
          out_bytes = 900;
          in_rows = 0;
          in_bytes = 0;
        };
      ]
  in
  (match Boundary.decode (String.sub bytes 0 (String.length bytes - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated table decoded");
  (match Boundary.decode (bytes ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  match Boundary.decode ("XXXX" ^ String.sub bytes 4 (String.length bytes - 4)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted"

(* ---- a small monolithic run to feed the codec/splice tests ---- *)

let small_outcome =
  lazy
    (Scenario.run
       { Scenario.default with Scenario.clients = 25; time_scale = 0.02; seed = 11 })

let small_result =
  lazy
    (let o = Lazy.force small_outcome in
     Core.Correlator.correlate
       (Core.Correlator.config ~transform:o.Scenario.transform ())
       o.Scenario.logs)

(* ---- PTH1 shard-to-root codec ---- *)

let test_pth1_roundtrip () =
  let r = Lazy.force small_result in
  let all = r.Core.Correlator.cags @ r.Core.Correlator.deformed in
  Alcotest.(check bool) "run produced paths" true (List.length r.Core.Correlator.cags > 50);
  let message = Core.Hierarchy.encode_paths all in
  let decoded =
    match Core.Hierarchy.decode_paths message with
    | Ok cags -> cags
    | Error e -> Alcotest.failf "PTH1 decode failed: %s" e
  in
  Alcotest.(check int) "path count survives" (List.length all) (List.length decoded);
  List.iter
    (fun c ->
      match Core.Cag.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "decoded CAG invalid: %s" e)
    decoded;
  let fin, dfm = List.partition Core.Cag.is_finished decoded in
  Alcotest.(check string) "digest survives the wire"
    (Core.Hierarchy.digest_result r)
    (Core.Hierarchy.digest ~finished:fin ~deformed:dfm)

let test_pth1_corrupt () =
  let r = Lazy.force small_result in
  let message = Core.Hierarchy.encode_paths r.Core.Correlator.cags in
  (match Core.Hierarchy.decode_paths (String.sub message 0 (String.length message / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated message decoded");
  match Core.Hierarchy.decode_paths (message ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

(* ---- canonical splice: hierarchical = monolithic at any shard count ---- *)

let prop_splice_invariance =
  (* Scatter the monolithic result's paths over k shards any way at all;
     the canonical splice must reproduce the monolithic digest. *)
  let arb =
    QCheck.make
      ~print:(fun (k, salt) -> Printf.sprintf "shards=%d salt=%d" k salt)
      QCheck.Gen.(pair (int_range 1 16) (int_range 0 1_000_000))
  in
  QCheck.Test.make ~name:"splice is shard-count invariant" ~count:30 arb
    (fun (k, salt) ->
      let r = Lazy.force small_result in
      let buckets = Array.make k [] in
      List.iteri
        (fun i c -> buckets.(abs (i + salt) mod k) <- c :: buckets.(abs (i + salt) mod k))
        r.Core.Correlator.cags;
      let spliced = Core.Hierarchy.splice (Array.to_list buckets) in
      let deformed = r.Core.Correlator.deformed in
      String.equal
        (Core.Hierarchy.digest ~finished:spliced ~deformed)
        (Core.Hierarchy.digest_result r))

(* ---- agent-local partial correlation: identity on the reduced feed ---- *)

let test_partial_identity () =
  let o = Lazy.force small_outcome in
  let cfg = Core.Correlator.config ~transform:o.Scenario.transform () in
  let arenas = Trace.Arena.of_collection o.Scenario.logs in
  let p = Core.Partial.create (Core.Partial.config ~transform:o.Scenario.transform ()) in
  let reduced = List.map (Core.Partial.reduce p) arenas in
  List.iter
    (fun (r : Core.Partial.result) ->
      Alcotest.(check bool) "no budget fallback" false r.Core.Partial.fallback)
    reduced;
  let coalesced =
    List.fold_left (fun acc r -> acc + r.Core.Partial.rows_coalesced) 0 reduced
  in
  let boundary =
    List.fold_left (fun acc r -> acc + List.length r.Core.Partial.boundary) 0 reduced
  in
  Alcotest.(check bool) "coalescing happened" true (coalesced > 0);
  Alcotest.(check bool) "boundary entries shipped" true (boundary > 0);
  let raw = Core.Correlator.correlate_arena cfg arenas in
  let red =
    Core.Correlator.correlate_arena cfg (List.map (fun r -> r.Core.Partial.arena) reduced)
  in
  Alcotest.(check string) "reduced feed correlates identically"
    (Core.Hierarchy.digest_result raw)
    (Core.Hierarchy.digest_result red);
  (* the reduction is real *)
  let rows l = List.fold_left (fun acc a -> acc + Trace.Arena.length a) 0 l in
  Alcotest.(check bool) "fewer rows after reduction" true
    (rows (List.map (fun (r : Core.Partial.result) -> r.Core.Partial.arena) reduced)
    < rows arenas)

let test_partial_local_flow_resolution () =
  (* A loopback pair: both directions of one flow inside one host. The
     partial pass resolves it locally — it never reaches the boundary
     table — while the half-seen cross-host flow does. *)
  let loop = H.flow "10.0.5.1" 40000 "10.0.5.1" 99 in
  let cross = H.flow "10.0.5.1" 41000 "10.0.6.1" 80 in
  let client = H.ctx ~host:"solo" ~program:"client" ~pid:1 ~tid:1 () in
  let server = H.ctx ~host:"solo" ~program:"server" ~pid:2 ~tid:2 () in
  let rows =
    [
      H.act ~kind:Activity.Send ~ts:1_000 ~ctx:client ~flow:loop ~size:64;
      H.act ~kind:Activity.Receive ~ts:2_000 ~ctx:server ~flow:loop ~size:64;
      H.act ~kind:Activity.Send ~ts:3_000 ~ctx:client ~flow:cross ~size:128;
    ]
  in
  let arena = Trace.Arena.of_log (Trace.Log.of_list ~hostname:"solo" rows) in
  let transform =
    Core.Transform.config
      ~entry_points:[ Simnet.Address.endpoint (Simnet.Address.ip_of_string "10.0.9.9") 80 ]
      ()
  in
  let p = Core.Partial.create (Core.Partial.config ~transform ()) in
  let r = Core.Partial.reduce p arena in
  Alcotest.(check bool) "no fallback" false r.Core.Partial.fallback;
  Alcotest.(check int) "loopback flow resolved locally" 1 r.Core.Partial.local_flows;
  Alcotest.(check int) "only the cross-host flow is boundary" 1
    (List.length r.Core.Partial.boundary);
  let e = List.hd r.Core.Partial.boundary in
  Alcotest.(check int) "boundary saw one outbound row" 1 e.Trace.Boundary.out_rows;
  Alcotest.(check int) "boundary saw its bytes" 128 e.Trace.Boundary.out_bytes;
  Alcotest.(check int) "no inbound rows on the half-seen flow" 0 e.Trace.Boundary.in_rows

let test_partial_budget_fallback () =
  let o = Lazy.force small_outcome in
  let p =
    Core.Partial.create
      (Core.Partial.config ~transform:o.Scenario.transform ~max_flows:1 ())
  in
  let arenas = Trace.Arena.of_collection o.Scenario.logs in
  let reduced = List.map (Core.Partial.reduce p) arenas in
  Alcotest.(check bool) "tiny budget forces raw fallback" true
    (List.exists (fun (r : Core.Partial.result) -> r.Core.Partial.fallback) reduced);
  List.iter
    (fun (r : Core.Partial.result) ->
      if r.Core.Partial.fallback then begin
        Alcotest.(check int) "fallback ships every row" r.Core.Partial.rows_in
          (Trace.Arena.length r.Core.Partial.arena);
        Alcotest.(check int) "fallback ships no boundary" 0
          (List.length r.Core.Partial.boundary)
      end)
    reduced

(* ---- collector: horizon-jump replay (the PR 9 bugfix) ---- *)

let test_collector_horizon_jump_replays_pending () =
  (* Frames 2 and 3 arrive out of order while seq 1 is missing; then a
     frame with oldest=4 announces that seq 1 was evicted at the agent.
     The fix: stashed frames 2 and 3 below the new horizon are real
     deliveries and must be replayed in seq order — only seq 1 is a
     permanent loss. *)
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let wire = Wire.create stack in
  let cnode =
    Node.create ~engine ~hostname:"collect1" ~ip:(Address.ip_of_string "10.0.0.9")
      ~cores:2 ()
  in
  let anode =
    Node.create ~engine ~hostname:"web1" ~ip:(Address.ip_of_string "10.0.0.1") ~cores:2 ()
  in
  let sink = ref [] in
  let reg = R.create () in
  let collector =
    Collector.create ~telemetry:reg
      ~on_activity:(fun a -> sink := a :: !sink)
      ~wire ~node:cnode ~port:7441 ()
  in
  let frame ~seq ~oldest i =
    let payload =
      Frame.encode_payload ~host:"web1"
        [
          H.act ~kind:Activity.Send ~ts:(1_000_000 * (i + 1))
            ~ctx:(H.ctx ~host:"web1" ()) ~flow:H.web_app_flow ~size:(100 + i);
        ]
    in
    Frame.encode ~seq ~oldest ~host:"web1" ~watermark:(ST.of_ns (1_000_000 * (i + 1)))
      ~payload
  in
  let stream =
    String.concat ""
      [
        frame ~seq:0 ~oldest:0 0;
        frame ~seq:2 ~oldest:0 2;
        frame ~seq:3 ~oldest:0 3;
        frame ~seq:4 ~oldest:4 4;
      ]
  in
  let proc = Node.spawn anode ~program:"fakeagent" in
  Tcp.connect stack ~node:anode ~proc ~dst:(Collector.endpoint collector)
    ~k:(fun sock -> Wire.send wire sock ~proc stream ~k:(fun () -> ()));
  Engine.run engine;
  (match Collector.stats collector with
  | [ ("web1", hs) ] ->
      Alcotest.(check int) "stashed frames replayed, not leaked" 4
        hs.Collector.delivered_frames;
      Alcotest.(check int) "only the evicted seq is skipped" 1
        hs.Collector.skipped_frames;
      Alcotest.(check int) "no duplicates" 0 hs.Collector.duplicate_frames;
      Alcotest.(check int) "horizon advanced past the batch" 5 hs.Collector.next_seq;
      (* accounting invariant: every sent seq is delivered, duplicate or
         skipped — nothing residual below the horizon *)
      Alcotest.(check int) "delivered + duplicates + skipped = seqs"
        hs.Collector.next_seq
        (hs.Collector.delivered_frames + hs.Collector.duplicate_frames
       + hs.Collector.skipped_frames)
  | other -> Alcotest.failf "unexpected host stats (%d hosts)" (List.length other));
  (* the replayed frames arrive in seq order: record sizes 100,102,103,104 *)
  let sizes =
    List.rev_map (fun (a : Activity.t) -> a.Activity.message.Activity.size) !sink
  in
  Alcotest.(check (list int)) "delivery order is seq order" [ 100; 102; 103; 104 ] sizes

(* ---- determinism: detector's multi-new-pattern tick ---- *)

(* One correlated three-tier request ending at [base + 9ms] (the
   baseline pattern), and a two-tier variant whose renamed app program
   makes a signature the baseline has never seen. *)
let mk_three_tier ~base () =
  let engine, _ = H.correlate_raw (H.logs_of_request ~base ()) in
  List.hd (Core.Cag_engine.finished engine)

let mk_novel ~program ~base () =
  let app_ctx = H.ctx ~host:"app" ~program ~pid:20 ~tid:21 () in
  let w =
    [
      H.act ~kind:Activity.Begin ~ts:base ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:400;
      H.act ~kind:Activity.Send ~ts:(base + 1_000_000) ~ctx:H.web_ctx ~flow:H.web_app_flow
        ~size:500;
      H.act ~kind:Activity.Receive ~ts:(base + 4_000_000) ~ctx:H.web_ctx
        ~flow:H.app_web_flow ~size:900;
      H.act ~kind:Activity.End_ ~ts:(base + 5_000_000) ~ctx:H.web_ctx
        ~flow:H.web_client_flow ~size:1000;
    ]
  in
  let a =
    [
      H.act ~kind:Activity.Receive ~ts:(base + 2_000_000) ~ctx:app_ctx ~flow:H.web_app_flow
        ~size:500;
      H.act ~kind:Activity.Send ~ts:(base + 3_000_000) ~ctx:app_ctx ~flow:H.app_web_flow
        ~size:900;
    ]
  in
  let logs =
    [ Trace.Log.of_list ~hostname:"web" w; Trace.Log.of_list ~hostname:"app" a ]
  in
  let engine, _ = H.correlate_raw logs in
  List.hd (Core.Cag_engine.finished engine)

let test_detector_new_patterns_sorted () =
  (* Two novel patterns cross the mix threshold in the SAME check (the
     first one after the mix ring fills). Their verdicts must come out
     in sorted signature order — not hash-table order. *)
  let module D = Diagnose.Detector in
  let cfg =
    {
      D.default_config with
      D.warmup_paths = 40;
      mix_window = 20;
      mix_min_frequency = 0.1;
      mix_tolerance = 0.9 (* keep Pattern_shift out of the way *);
    }
  in
  let det = D.create ~config:cfg ~telemetry:(R.create ()) () in
  let t = ref 0 in
  let next () =
    let b = !t in
    t := b + 20_000_000;
    b
  in
  let verdicts = ref [] in
  let feed cags = List.iter (fun c -> verdicts := !verdicts @ D.observe det c) cags in
  feed (List.init 40 (fun _ -> mk_three_tier ~base:(next ()) ()));
  (* 24 post-warmup paths; both novel patterns reach 2/20 of the ring
     well before the first full-ring check fires. *)
  feed
    (List.init 24 (fun i ->
         match i with
         | 5 | 6 -> mk_novel ~program:"tomcat" ~base:(next ()) ()
         | 11 | 12 -> mk_novel ~program:"jetty" ~base:(next ()) ()
         | _ -> mk_three_tier ~base:(next ()) ()));
  let news =
    List.filter_map
      (fun v -> if v.D.kind = D.Pattern_new then v.D.pattern else None)
      !verdicts
  in
  let expected =
    List.map
      (fun program ->
        let c = mk_novel ~program ~base:(next ()) () in
        (Core.Pattern.signature_of c, Core.Pattern.name_of c))
      [ "tomcat"; "jetty" ]
    |> List.sort compare
    |> List.map snd
  in
  Alcotest.(check (list string)) "both fire, in signature order" expected news

(* ---- determinism: skew estimator BFS over a cyclic pair graph ---- *)

let test_skew_estimator_order_independent () =
  let r = Lazy.force small_result in
  let cags = r.Core.Correlator.cags in
  let a = Core.Skew_estimator.estimate cags in
  let b = Core.Skew_estimator.estimate (List.rev cags) in
  let show e =
    List.map
      (fun (o : Core.Skew_estimator.estimate) ->
        Printf.sprintf "%s=%d/%d" o.Core.Skew_estimator.host
          (ST.span_ns o.Core.Skew_estimator.offset)
          o.Core.Skew_estimator.pairs_used)
      (Core.Skew_estimator.offsets e)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "offsets independent of discovery order" (show a)
    (show b)

(* ---- the closed loop: cluster, shards, root splice ---- *)

let test_cluster_hierarchy_matches_monolithic () =
  (* The paper's noisy environment (§5.3.3): rlogin/ssh chatter plus
     mysql clients hammering the service's own database — the feed the
     level-0 prefilter and the shard correlators must shed. *)
  let cluster =
    {
      Scenario.base =
        {
          Scenario.default with
          Scenario.clients = 12;
          time_scale = 0.02;
          seed = 5;
          noise = Scenario.Paper_noise { db_connections = 2 };
        };
      replicas = 4;
    }
  in
  let reg = R.create () in
  let plane =
    Plane.create ~telemetry:reg
      ~config:{ Plane.default_config with Plane.shards = 3 }
      cluster
  in
  let co = Scenario.run_cluster ~before_replica:(Plane.install plane) cluster in
  let report = Plane.finish plane in
  (* level-0 agents really reduced and resolved locally *)
  Alcotest.(check bool) "partial coalescing happened" true (report.Plane.partial_coalesced > 0);
  Alcotest.(check int) "no budget fallbacks" 0 report.Plane.partial_fallbacks;
  Alcotest.(check bool) "boundary tables shipped" true (report.Plane.boundary_entries > 0);
  (* level-1 sharding: every shard worked, none saw the whole feed *)
  Alcotest.(check int) "three shards" 3 (List.length report.Plane.shard_reports);
  List.iter
    (fun (s : Plane.shard_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d completed paths" s.Plane.shard_id)
        true (s.Plane.paths_finished > 0);
      Alcotest.(check bool)
        (Printf.sprintf "shard %d saw a strict subset" s.Plane.shard_id)
        true
        (s.Plane.ingest_records < report.Plane.delivered_records))
    report.Plane.shard_reports;
  (* Feed volume: re-run the same cluster with flat raw-shipping agents
     (the Deploy plane) — what a single funnel's root would ingest — and
     compare against the PTH1 bytes the hierarchy's root reads. *)
  let deploys = ref [] in
  let flat_reg = R.create () in
  let _flat =
    Scenario.run_cluster
      ~before_replica:(fun _ svc ->
        deploys := Collect.Deploy.install ~telemetry:flat_reg svc :: !deploys)
      cluster
  in
  List.iter Collect.Deploy.finish !deploys;
  let flat_bytes =
    List.fold_left
      (fun acc d ->
        List.fold_left
          (fun a ag -> a + (Collect.Agent.stats ag).Collect.Agent.bytes_shipped)
          acc (Collect.Deploy.agents d))
      0 !deploys
  in
  Alcotest.(check bool) "root ingests >=3x less than a flat funnel" true
    (report.Plane.root_ingest_bytes * 3 <= flat_bytes);
  Alcotest.(check bool) "level 0 already ships less than raw agents" true
    (report.Plane.agent_bytes_shipped < flat_bytes);
  let raw_bytes = String.length (Trace.Binary_format.encode co.Scenario.all_logs) in
  Alcotest.(check bool) "root ingest is below even the one-shot raw archive" true
    (report.Plane.root_ingest_bytes * 3 <= raw_bytes);
  (* identity: the spliced root result is byte-identical to one
     monolithic correlator over the intact cluster logs *)
  let mono =
    Core.Correlator.correlate
      (Core.Correlator.config ~transform:co.Scenario.cluster_transform ())
      co.Scenario.all_logs
  in
  Alcotest.(check int) "path population matches"
    (List.length mono.Core.Correlator.cags)
    (List.length report.Plane.finished);
  Alcotest.(check string) "hierarchical digest = monolithic digest"
    (Core.Hierarchy.digest_result mono) report.Plane.digest;
  (* collection accounting stayed clean end to end *)
  List.iter
    (fun a ->
      let s = Collect.Agent.stats a in
      Alcotest.(check int)
        (Printf.sprintf "%s: observed = reduced + dropped + acked + spooled + queued"
           (Collect.Agent.host a))
        s.Collect.Agent.observed
        (s.Collect.Agent.reduced + Collect.Agent.dropped_total s
       + s.Collect.Agent.acked_records + s.Collect.Agent.spooled_records
       + s.Collect.Agent.queued_records))
    (Plane.agents plane);
  List.init cluster.Scenario.replicas (fun i -> i)
  |> List.iter (fun i ->
         match Plane.collector plane i with
         | None -> Alcotest.failf "replica %d has no collector" i
         | Some c ->
             List.iter
               (fun (host, (hs : Collector.host_stats)) ->
                 Alcotest.(check int)
                   (Printf.sprintf "%s: delivered + duplicates + skipped = seqs" host)
                   hs.Collector.next_seq
                   (hs.Collector.delivered_frames + hs.Collector.duplicate_frames
                  + hs.Collector.skipped_frames);
                 Alcotest.(check int)
                   (Printf.sprintf "%s: nothing lost in a clean run" host)
                   0 hs.Collector.skipped_frames)
               (Collector.stats c))

let () =
  Alcotest.run "hierarchy"
    [
      ( "boundary",
        [ qtest prop_boundary_roundtrip; Alcotest.test_case "corrupt tables rejected" `Quick test_boundary_corrupt ] );
      ( "pth1",
        [
          Alcotest.test_case "round-trip preserves the digest" `Quick test_pth1_roundtrip;
          Alcotest.test_case "corrupt messages rejected" `Quick test_pth1_corrupt;
        ] );
      ("splice", [ qtest prop_splice_invariance ]);
      ( "partial",
        [
          Alcotest.test_case "reduced feed correlates identically" `Quick
            test_partial_identity;
          Alcotest.test_case "loopback flows resolve locally" `Quick
            test_partial_local_flow_resolution;
          Alcotest.test_case "flow budget falls back to raw" `Quick
            test_partial_budget_fallback;
        ] );
      ( "collector",
        [
          Alcotest.test_case "horizon jump replays stashed frames" `Quick
            test_collector_horizon_jump_replays_pending;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "new-pattern verdicts in signature order" `Quick
            test_detector_new_patterns_sorted;
          Alcotest.test_case "skew offsets independent of edge order" `Quick
            test_skew_estimator_order_independent;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "hierarchical = monolithic on 4 replicas" `Slow
            test_cluster_hierarchy_matches_monolithic;
        ] );
    ]
