(* Tests for the TCP_TRACE layer: activities, raw format, logs, probe,
   noise, loss, ground truth. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Raw_format = Trace.Raw_format
module Log = Trace.Log
module Probe = Trace.Probe
module Ground_truth = Trace.Ground_truth
module Loss = Trace.Loss
module Sim_time = Simnet.Sim_time
module Rng = Simnet.Rng

let qtest = QCheck_alcotest.to_alcotest

(* ---- Activity ---- *)

let test_kind_priority () =
  let open Activity in
  Alcotest.(check (list int)) "BEGIN<SEND<END<RECEIVE" [ 0; 1; 2; 3 ]
    (List.map kind_priority [ Begin; Send; End_; Receive ])

let test_kind_strings () =
  List.iter
    (fun k ->
      match Activity.kind_of_string (Activity.kind_to_string k) with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (Activity.equal_kind k k')
      | None -> Alcotest.fail "kind roundtrip")
    [ Activity.Begin; Activity.End_; Activity.Send; Activity.Receive ];
  Alcotest.(check bool) "unknown" true (Activity.kind_of_string "NOPE" = None)

let test_compare_by_time () =
  let a = H.act ~kind:Activity.Send ~ts:5 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1 in
  let b = H.act ~kind:Activity.Send ~ts:9 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1 in
  Alcotest.(check bool) "earlier first" true (Activity.compare_by_time a b < 0);
  let c = H.act ~kind:Activity.Begin ~ts:5 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1 in
  Alcotest.(check bool) "tie broken by kind priority" true (Activity.compare_by_time c a < 0)

let test_context_equality () =
  let c1 = H.ctx ~host:"h" ~program:"p" ~pid:1 ~tid:2 () in
  let c2 = H.ctx ~host:"h" ~program:"p" ~pid:1 ~tid:2 () in
  let c3 = H.ctx ~host:"h" ~program:"p" ~pid:1 ~tid:3 () in
  Alcotest.(check bool) "equal" true (Activity.equal_context c1 c2);
  Alcotest.(check bool) "tid distinguishes" false (Activity.equal_context c1 c3);
  Alcotest.(check int) "hash consistent" (Activity.hash_context c1) (Activity.hash_context c2)

(* ---- Raw format ---- *)

let sample_activity =
  H.act ~kind:Activity.Send ~ts:123_456_789 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:552

let test_raw_line () =
  Alcotest.(check string) "format matches the paper's layout"
    "123456789 web httpd 10 10 SEND 10.0.1.1:41000-10.0.2.1:8009 552"
    (Raw_format.to_line sample_activity)

let test_raw_roundtrip () =
  match Raw_format.of_line (Raw_format.to_line sample_activity) with
  | Ok a -> Alcotest.(check bool) "equal" true (Activity.equal a sample_activity)
  | Error e -> Alcotest.fail e

let test_raw_errors () =
  let bad =
    [
      "";
      "only three fields here";
      "x web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:2 5";
      "1 web httpd 10 10 NOPE 1.1.1.1:1-2.2.2.2:2 5";
      "1 web httpd 10 10 SEND 1.1.1:1-2.2.2.2:2 5";
      "1 web httpd 10 10 SEND 1.1.1.1:x-2.2.2.2:2 5";
      "1 web httpd 10 10 SEND 1.1.1.1:1+2.2.2.2:2 5";
      "1 web httpd ten 10 SEND 1.1.1.1:1-2.2.2.2:2 5";
      "1 web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:2 five";
    ]
  in
  List.iter
    (fun line ->
      match Raw_format.of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    bad

(* OCaml's [int_of_string] admits radix prefixes and underscore
   separators; none of these are valid TCP_TRACE integer fields, and a
   lenient parser would silently misread e.g. a corrupted timestamp
   column. One regression test per non-canonical form, each exercised in
   an integer field of every position class (timestamp, pid/tid, port,
   message size) plus the dotted-quad octets. *)
let reject_line line =
  match Raw_format.of_line line with
  | Ok a -> Alcotest.failf "accepted %S as %s" line (Format.asprintf "%a" Activity.pp a)
  | Error _ -> ()

let lines_with n =
  [
    Printf.sprintf "%s web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:2 5" n;
    Printf.sprintf "1 web httpd %s 10 SEND 1.1.1.1:1-2.2.2.2:2 5" n;
    Printf.sprintf "1 web httpd 10 %s SEND 1.1.1.1:1-2.2.2.2:2 5" n;
    Printf.sprintf "1 web httpd 10 10 SEND 1.1.1.1:%s-2.2.2.2:2 5" n;
    Printf.sprintf "1 web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:%s 5" n;
    Printf.sprintf "1 web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:2 %s" n;
  ]

let test_raw_rejects_hex () = List.iter reject_line (lines_with "0x1f")
let test_raw_rejects_octal () = List.iter reject_line (lines_with "0o17")
let test_raw_rejects_binary_literal () = List.iter reject_line (lines_with "0b11")
let test_raw_rejects_underscores () = List.iter reject_line (lines_with "1_000")

let test_ip_rejects_noncanonical_octets () =
  List.iter
    (fun s ->
      match Simnet.Address.ip_of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "ip_of_string accepted %S" s)
    [ "0x1f.2.3.4"; "1.0o17.3.4"; "1.2.0b11.4"; "1.2.3.1_0"; "1.2.3.256"; "1.2.3.-1" ]

let test_raw_rejects_out_of_range_ports () =
  reject_line "1 web httpd 10 10 SEND 1.1.1.1:99999-2.2.2.2:2 5";
  reject_line "1 web httpd 10 10 SEND 1.1.1.1:1-2.2.2.2:65536 5";
  (match Raw_format.of_line "1 web httpd 10 10 SEND 1.1.1.1:99999-2.2.2.2:2 5" with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S names the sender port" msg)
        true
        (H.contains msg "sender port")
  | Ok _ -> Alcotest.fail "out-of-range port accepted");
  (* the boundary values are valid *)
  match Raw_format.of_line "1 web httpd 10 10 SEND 1.1.1.1:65535-2.2.2.2:0 5" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "boundary ports rejected: %s" e

let arbitrary_activity =
  let open QCheck.Gen in
  let kind = oneofl [ Activity.Begin; Activity.End_; Activity.Send; Activity.Receive ] in
  let octet = int_range 0 255 in
  let gen =
    kind >>= fun kind ->
    int_range 0 1_000_000_000 >>= fun ts ->
    oneofl [ "web1"; "app1"; "db9" ] >>= fun host ->
    oneofl [ "httpd"; "java"; "mysqld"; "x" ] >>= fun program ->
    int_range 1 65_535 >>= fun pid ->
    int_range 1 65_535 >>= fun tid ->
    quad octet octet octet octet >>= fun (a, b, c, d) ->
    int_range 1 65_535 >>= fun sport ->
    int_range 1 65_535 >>= fun dport ->
    int_range 1 1_000_000 >>= fun size ->
    let flow =
      H.flow (Printf.sprintf "%d.%d.%d.%d" a b c d) sport
        (Printf.sprintf "%d.%d.%d.%d" d c b a) dport
    in
    return (H.act ~kind ~ts ~ctx:(H.ctx ~host ~program ~pid ~tid ()) ~flow ~size)
  in
  QCheck.make ~print:(Format.asprintf "%a" Activity.pp) gen

let prop_raw_roundtrip =
  QCheck.Test.make ~name:"raw format print/parse is the identity" ~count:500
    arbitrary_activity (fun a ->
      match Raw_format.of_line (Raw_format.to_line a) with
      | Ok a' -> Activity.equal a a'
      | Error _ -> false)

(* ---- Log ---- *)

let test_log_append_order () =
  let log = Log.create ~hostname:"n" in
  Log.append log (H.act ~kind:Activity.Send ~ts:1 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1);
  Log.append log (H.act ~kind:Activity.Send ~ts:1 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:2);
  Log.append log (H.act ~kind:Activity.Send ~ts:5 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:3);
  Alcotest.(check int) "length" 3 (Log.length log);
  match
    Log.append log (H.act ~kind:Activity.Send ~ts:2 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:4)
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "regression accepted"

let test_log_of_list_sorts () =
  let acts =
    [
      H.act ~kind:Activity.Send ~ts:9 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1;
      H.act ~kind:Activity.Send ~ts:3 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:2;
    ]
  in
  let log = Log.of_list ~hostname:"n" acts in
  let ts = List.map (fun a -> Sim_time.to_ns a.Activity.timestamp) (Log.to_list log) in
  Alcotest.(check (list int)) "sorted" [ 3; 9 ] ts

let test_log_save_load () =
  let dir = Filename.temp_file "pt" "" in
  Sys.remove dir;
  let collection = H.logs_of_request () in
  Log.save collection ~dir;
  (match Log.load ~dir with
  | Ok loaded ->
      Alcotest.(check int) "same node count" (List.length collection) (List.length loaded);
      Alcotest.(check int) "same total" (Log.total collection) (Log.total loaded);
      let by_host = List.sort (fun a b -> String.compare (Log.hostname a) (Log.hostname b)) in
      let collection = by_host collection and loaded = by_host loaded in
      List.iter2
        (fun a b ->
          Alcotest.(check string) "hostname" (Log.hostname a) (Log.hostname b);
          List.iter2
            (fun x y -> Alcotest.(check bool) "activity" true (Activity.equal x y))
            (Log.to_list a) (Log.to_list b))
        collection loaded
  | Error e -> Alcotest.fail e);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_map_activities () =
  let collection = H.logs_of_request () in
  let only_sends =
    Log.map_activities
      (fun a -> if Activity.equal_kind a.Activity.kind Activity.Send then Some a else None)
      collection
  in
  Alcotest.(check int) "four sends" 4 (Log.total only_sends)

(* ---- Probe ---- *)

let traced_run ?only ?(enable = true) () =
  let engine = Simnet.Engine.create () in
  let stack = Simnet.Tcp.create_stack ~engine in
  let node name ip skew =
    Simnet.Node.create ~engine ~hostname:name ~ip:(Simnet.Address.ip_of_string ip) ~cores:1
      ~clock:(Simnet.Clock.create ~skew ())
      ()
  in
  let a = node "alpha" "10.0.0.1" (Sim_time.ms 7) in
  let b = node "beta" "10.0.0.2" Sim_time.span_zero in
  let probe = Probe.attach ~stack ?only () in
  if enable then Probe.enable probe;
  let server = Simnet.Node.spawn b ~program:"server" in
  Simnet.Tcp.listen stack b ~port:9000 ~accept:(fun sock ->
      Simnet.Tcp.recv stack sock ~proc:server ~max:4096 ~k:(fun _ -> ()));
  let client = Simnet.Node.spawn a ~program:"client" in
  Simnet.Tcp.connect stack ~node:a ~proc:client
    ~dst:(Simnet.Address.endpoint (Simnet.Node.ip b) 9000)
    ~k:(fun sock -> Simnet.Tcp.send stack sock ~proc:client ~size:77 ~k:(fun () -> ()));
  Simnet.Engine.run engine;
  probe

let test_probe_records () =
  let probe = traced_run () in
  Alcotest.(check int) "two activities" 2 (Probe.activity_count probe);
  let logs = Probe.logs probe in
  Alcotest.(check (list string)) "hosts" [ "alpha"; "beta" ] (List.map Log.hostname logs);
  let alpha = List.hd logs in
  match Log.to_list alpha with
  | [ a ] ->
      Alcotest.(check bool) "send kind" true (Activity.equal_kind a.Activity.kind Activity.Send);
      Alcotest.(check bool) "timestamp reflects 7ms skew" true
        (Sim_time.to_ns a.Activity.timestamp >= 7_000_000)
  | _ -> Alcotest.fail "expected one activity on alpha"

let test_probe_disabled () =
  let probe = traced_run ~enable:false () in
  Alcotest.(check int) "nothing logged" 0 (Probe.activity_count probe)

let test_probe_only_filter () =
  let probe = traced_run ~only:[ "beta" ] () in
  let logs = Probe.logs probe in
  Alcotest.(check (list string)) "only beta" [ "beta" ] (List.map Log.hostname logs);
  Alcotest.(check int) "one activity" 1 (Probe.activity_count probe)

(* ---- Loss ---- *)

let test_loss_none_and_all () =
  let collection = H.logs_of_request () in
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "p=0 drops nothing" (Log.total collection)
    (Log.total (Loss.drop ~rng ~p:0.0 collection));
  Alcotest.(check int) "p=1 drops all" 0 (Log.total (Loss.drop ~rng ~p:1.0 collection))

let test_loss_kind () =
  let collection = H.logs_of_request () in
  let rng = Rng.create ~seed:1 in
  let dropped = Loss.drop_kind ~rng ~p:1.0 ~kind:Activity.Receive collection in
  let kinds = List.concat_map Log.to_list dropped |> List.map (fun a -> a.Activity.kind) in
  Alcotest.(check bool) "no receives left" true
    (not (List.exists (Activity.equal_kind Activity.Receive) kinds));
  Alcotest.(check int) "others kept" 6 (List.length kinds)

let activities_of collection = List.concat_map Log.to_list collection

let test_loss_kind_preserves_others () =
  let collection = H.logs_of_request () in
  let count_kind k coll =
    activities_of coll
    |> List.filter (fun a -> Activity.equal_kind a.Activity.kind k)
    |> List.length
  in
  let before k = count_kind k collection in
  let rng = Rng.create ~seed:5 in
  let dropped = Loss.drop_kind ~rng ~p:1.0 ~kind:Activity.Send collection in
  Alcotest.(check int) "sends gone" 0 (count_kind Activity.Send dropped);
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "%s untouched" (Activity.kind_to_string k))
        (before k) (count_kind k dropped))
    [ Activity.Begin; Activity.End_; Activity.Receive ]

let test_loss_deterministic () =
  let spec =
    { Tiersim.Scenario.default with Tiersim.Scenario.clients = 5; time_scale = 0.02 }
  in
  let collection = (Tiersim.Scenario.run spec).Tiersim.Scenario.logs in
  let survivors drop =
    let rng = Rng.create ~seed:77 in
    activities_of (drop ~rng collection)
  in
  let same a b = List.length a = List.length b && List.for_all2 Activity.equal a b in
  Alcotest.(check bool) "drop: same seed, same survivors" true
    (same (survivors (Loss.drop ~p:0.3)) (survivors (Loss.drop ~p:0.3)));
  Alcotest.(check bool) "drop_kind: same seed, same survivors" true
    (same
       (survivors (Loss.drop_kind ~p:0.5 ~kind:Activity.Receive))
       (survivors (Loss.drop_kind ~p:0.5 ~kind:Activity.Receive)))

let prop_loss_rate =
  QCheck.Test.make ~name:"loss rate roughly honoured" ~count:20
    QCheck.(int_range 0 100)
    (fun pct ->
      let p = float_of_int pct /. 100.0 in
      let acts =
        List.init 2000 (fun i ->
            H.act ~kind:Activity.Send ~ts:i ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1)
      in
      let collection = [ Log.of_list ~hostname:"n" acts ] in
      let rng = Rng.create ~seed:(pct + 1) in
      let kept = Log.total (Loss.drop ~rng ~p collection) in
      let expected = 2000.0 *. (1.0 -. p) in
      abs_float (float_of_int kept -. expected) < 120.0)

(* ---- Binary format ---- *)

let text_size collection =
  List.fold_left
    (fun acc log ->
      List.fold_left
        (fun acc a -> acc + String.length (Raw_format.to_line a) + 1)
        acc (Log.to_list log))
    0 collection

let test_binary_roundtrip () =
  let outcome =
    Tiersim.Scenario.run
      { Tiersim.Scenario.default with Tiersim.Scenario.clients = 10; time_scale = 0.02 }
  in
  let collection = outcome.Tiersim.Scenario.logs in
  match Trace.Binary_format.decode (Trace.Binary_format.encode collection) with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Alcotest.(check int) "log count" (List.length collection) (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "hostname" (Log.hostname a) (Log.hostname b);
          Alcotest.(check int) "length" (Log.length a) (Log.length b);
          List.iter2
            (fun x y -> Alcotest.(check bool) "activity" true (Activity.equal x y))
            (Log.to_list a) (Log.to_list b))
        collection loaded

let test_binary_smaller_than_text () =
  let outcome =
    Tiersim.Scenario.run
      { Tiersim.Scenario.default with Tiersim.Scenario.clients = 30; time_scale = 0.02 }
  in
  let collection = outcome.Tiersim.Scenario.logs in
  let binary = String.length (Trace.Binary_format.encode collection) in
  let text = text_size collection in
  Alcotest.(check bool)
    (Printf.sprintf "binary %d < text %d / 3" binary text)
    true
    (binary * 3 < text)

let test_binary_rejects_corruption () =
  let collection = H.logs_of_request () in
  let encoded = Trace.Binary_format.encode collection in
  (match Trace.Binary_format.decode "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Trace.Binary_format.decode (String.sub encoded 0 (String.length encoded / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation accepted");
  (match Trace.Binary_format.decode (encoded ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Trace.Binary_format.decode encoded with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_binary_file_io () =
  let collection = H.logs_of_request () in
  let path = Filename.temp_file "pt" ".ptb" in
  Trace.Binary_format.save collection ~path;
  (match Trace.Binary_format.load ~path with
  | Ok loaded -> Alcotest.(check int) "total" (Log.total collection) (Log.total loaded)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip on arbitrary activities" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 30) arbitrary_activity)
    (fun acts ->
      let collection = [ Log.of_list ~hostname:"n1" acts ] in
      match Trace.Binary_format.decode (Trace.Binary_format.encode collection) with
      | Ok [ loaded ] ->
          List.for_all2 Activity.equal (Log.to_list (List.hd collection)) (Log.to_list loaded)
      | Ok _ | Error _ -> false)

(* A multi-host collection generator for the format property tests: the
   single-log shape above misses the cross-log string/context/flow table
   sharing, which is where interning bugs would live. *)
let arbitrary_collection =
  let open QCheck.Gen in
  let gen =
    int_range 0 3 >>= fun hosts ->
    let host_gen i =
      list_size (int_range 0 25) (QCheck.gen arbitrary_activity) >>= fun acts ->
      return (Log.of_list ~hostname:(Printf.sprintf "node%d" i) acts)
    in
    let rec build i acc =
      if i >= hosts then return (List.rev acc)
      else host_gen i >>= fun log -> build (i + 1) (log :: acc)
    in
    build 0 []
  in
  QCheck.make
    ~print:(fun c ->
      String.concat ";"
        (List.map (fun l -> Printf.sprintf "%s:%d" (Log.hostname l) (Log.length l)) c))
    gen

let collection_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         String.equal (Log.hostname x) (Log.hostname y)
         && Log.length x = Log.length y
         && List.for_all2 Activity.equal (Log.to_list x) (Log.to_list y))
       a b

let prop_binary_collection_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip on randomized collections" ~count:100
    arbitrary_collection (fun collection ->
      match Trace.Binary_format.decode (Trace.Binary_format.encode collection) with
      | Ok loaded -> collection_equal collection loaded
      | Error _ -> false)

let corpus_encoding () =
  Trace.Binary_format.encode (H.logs_of_request ())

let test_binary_truncation_corpus () =
  let encoded = corpus_encoding () in
  let n = String.length encoded in
  for len = 4 to n - 1 do
    match Trace.Binary_format.decode (String.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "prefix of %d/%d bytes decoded" len n
    | Error msg ->
        if not (H.contains msg "offset") then
          Alcotest.failf "truncation at %d: error %S names no offset" len msg
    | exception e ->
        Alcotest.failf "truncation at %d raised %s" len (Printexc.to_string e)
  done

let test_binary_byte_flip_corpus () =
  let encoded = corpus_encoding () in
  let n = String.length encoded in
  List.iter
    (fun mask ->
      for i = 0 to n - 1 do
        let b = Bytes.of_string encoded in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
        match Trace.Binary_format.decode (Bytes.to_string b) with
        | Ok _ -> ()  (* flips in sizes/ports can still decode; that's fine *)
        | Error msg ->
            (* Magic damage is reported as a non-PTB1 file; everything past
               the magic must name the failing offset. *)
            if i >= 4 && not (H.contains msg "offset") then
              Alcotest.failf "flip %#x at %d: error %S names no offset" mask i msg
        | exception e ->
            Alcotest.failf "flip %#x at %d raised %s" mask i (Printexc.to_string e)
      done)
    [ 0x01; 0x80; 0xFF ]

let test_binary_truncated_file_load () =
  let collection = H.logs_of_request () in
  let path = Filename.temp_file "pt" ".ptb" in
  Trace.Binary_format.save collection ~path;
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 7)));
  (match Trace.Binary_format.load ~path with
  | Ok _ -> Alcotest.fail "truncated file loaded"
  | Error msg ->
      Alcotest.(check bool) "error names an offset" true (H.contains msg "offset"));
  Sys.remove path

(* ---- Native (arena) codec path ---- *)

module Arena = Trace.Arena

let test_put_uvarint_negative () =
  let buf = Buffer.create 8 in
  (match Trace.Binary_format.put_uvarint buf (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative varint accepted");
  (match Trace.Binary_format.put_uvarint buf min_int with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "min_int varint accepted");
  Trace.Binary_format.put_uvarint buf 0;
  Trace.Binary_format.put_uvarint buf max_int;
  Alcotest.(check bool) "valid values still encode" true (Buffer.length buf > 0)

let arena_rows a =
  List.init (Arena.length a) (fun i ->
      (Arena.kind_code a i, Arena.ts a i, Arena.ctx_id a i, Arena.flow_id a i, Arena.size a i))

let arenas_equal xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun x y -> String.equal (Arena.hostname x) (Arena.hostname y) && arena_rows x = arena_rows y)
       xs ys

let prop_native_roundtrip =
  QCheck.Test.make ~name:"native decode(encode) is structurally the identity" ~count:100
    arbitrary_collection (fun collection ->
      let arenas = Arena.of_collection collection in
      match Trace.Binary_format.decode_native (Trace.Binary_format.encode_native arenas) with
      | Ok loaded -> arenas_equal arenas loaded
      | Error _ -> false)

let prop_native_bytes_match_legacy =
  QCheck.Test.make ~name:"encode_native bytes equal record-list encode bytes" ~count:100
    arbitrary_collection (fun collection ->
      String.equal
        (Trace.Binary_format.encode collection)
        (Trace.Binary_format.encode_native (Arena.of_collection collection)))

let prop_text_native_text_stable =
  (* Text import -> native codec roundtrip -> text export must be
     byte-stable: the arena path may not perturb a single rendered
     field. *)
  QCheck.Test.make ~name:"text import -> native -> text export is byte-stable" ~count:100
    arbitrary_collection (fun collection ->
      let text_of c =
        String.concat "\n"
          (List.concat_map (fun l -> List.map Raw_format.to_line (Log.to_list l)) c)
      in
      let imported =
        List.map
          (fun l ->
            let acts =
              List.map
                (fun a ->
                  match Raw_format.of_line (Raw_format.to_line a) with
                  | Ok a -> a
                  | Error e -> failwith e)
                (Log.to_list l)
            in
            Log.of_list ~hostname:(Log.hostname l) acts)
          collection
      in
      let arenas = Arena.of_collection imported in
      match Trace.Binary_format.decode_native (Trace.Binary_format.encode_native arenas) with
      | Error _ -> false
      | Ok loaded -> String.equal (text_of collection) (text_of (Arena.to_collection loaded)))

(* Native corruption corpora: same never-raise guarantee as the
   record-list decoder, with every reported offset in bounds. *)
let error_offset_in_bounds n msg =
  (* errors read "... offset %d..." — extract the integer after the
     first "offset " occurrence *)
  let marker = "offset " in
  let rec find i =
    if i + String.length marker > String.length msg then None
    else if String.sub msg i (String.length marker) = marker then Some (i + String.length marker)
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some start ->
      let stop = ref start in
      while !stop < String.length msg && msg.[!stop] >= '0' && msg.[!stop] <= '9' do
        incr stop
      done;
      !stop > start
      &&
      let off = int_of_string (String.sub msg start (!stop - start)) in
      off >= 0 && off <= n

let test_native_truncation_corpus () =
  let encoded = corpus_encoding () in
  let n = String.length encoded in
  for len = 4 to n - 1 do
    match Trace.Binary_format.decode_native (String.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "native: prefix of %d/%d bytes decoded" len n
    | Error msg ->
        if not (error_offset_in_bounds len msg) then
          Alcotest.failf "native truncation at %d: error %S has no in-bounds offset" len msg
    | exception e ->
        Alcotest.failf "native truncation at %d raised %s" len (Printexc.to_string e)
  done

let test_native_byte_flip_corpus () =
  let encoded = corpus_encoding () in
  let n = String.length encoded in
  List.iter
    (fun mask ->
      for i = 0 to n - 1 do
        let b = Bytes.of_string encoded in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
        match Trace.Binary_format.decode_native (Bytes.to_string b) with
        | Ok _ -> () (* flips in sizes/ports can still decode; that's fine *)
        | Error msg ->
            if i >= 4 && not (error_offset_in_bounds n msg) then
              Alcotest.failf "native flip %#x at %d: error %S has no in-bounds offset" mask i msg
        | exception e ->
            Alcotest.failf "native flip %#x at %d raised %s" mask i (Printexc.to_string e)
      done)
    [ 0x01; 0x80; 0xFF ]

(* ---- Ground truth ---- *)

let test_gt_lifecycle () =
  let gt = Ground_truth.create () in
  Ground_truth.begin_visit gt ~id:1 ~kind:"ViewItem" ~context:H.web_ctx
    ~ts:(Sim_time.of_ns 10);
  Ground_truth.begin_visit gt ~id:1 ~kind:"ViewItem" ~context:H.app_ctx
    ~ts:(Sim_time.of_ns 20);
  Ground_truth.end_visit gt ~id:1 ~context:H.app_ctx ~ts:(Sim_time.of_ns 30);
  Ground_truth.end_visit gt ~id:1 ~context:H.web_ctx ~ts:(Sim_time.of_ns 40);
  Alcotest.(check int) "not completed yet" 0 (Ground_truth.count gt);
  Ground_truth.complete gt ~id:1;
  Alcotest.(check int) "completed" 1 (Ground_truth.count gt);
  match Ground_truth.requests gt with
  | [ r ] ->
      Alcotest.(check int) "id" 1 r.Ground_truth.id;
      Alcotest.(check string) "kind" "ViewItem" r.kind;
      Alcotest.(check int) "two visits" 2 (List.length r.visits);
      let first = List.hd r.visits in
      Alcotest.(check bool) "first visit is web" true
        (Activity.equal_context first.Ground_truth.context H.web_ctx);
      Alcotest.(check int) "interval end" 40 (Sim_time.to_ns first.end_ts)
  | _ -> Alcotest.fail "one request expected"

let test_gt_repeat_visits () =
  let gt = Ground_truth.create () in
  Ground_truth.begin_visit gt ~id:2 ~kind:"X" ~context:H.db_ctx ~ts:(Sim_time.of_ns 100);
  Ground_truth.end_visit gt ~id:2 ~context:H.db_ctx ~ts:(Sim_time.of_ns 150);
  (* A second query on the same context extends the interval but keeps the
     earliest begin. *)
  Ground_truth.begin_visit gt ~id:2 ~kind:"X" ~context:H.db_ctx ~ts:(Sim_time.of_ns 200);
  Ground_truth.end_visit gt ~id:2 ~context:H.db_ctx ~ts:(Sim_time.of_ns 250);
  Ground_truth.complete gt ~id:2;
  match Ground_truth.requests gt with
  | [ { Ground_truth.visits = [ v ]; _ } ] ->
      Alcotest.(check int) "begin kept" 100 (Sim_time.to_ns v.Ground_truth.begin_ts);
      Alcotest.(check int) "end extended" 250 (Sim_time.to_ns v.end_ts)
  | _ -> Alcotest.fail "one merged visit expected"

let test_gt_errors () =
  let gt = Ground_truth.create () in
  (match Ground_truth.end_visit gt ~id:9 ~context:H.web_ctx ~ts:Sim_time.zero with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown request accepted");
  match Ground_truth.complete gt ~id:9 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown completion accepted"

let () =
  Alcotest.run "trace"
    [
      ( "activity",
        [
          Alcotest.test_case "kind priority" `Quick test_kind_priority;
          Alcotest.test_case "kind strings" `Quick test_kind_strings;
          Alcotest.test_case "compare_by_time" `Quick test_compare_by_time;
          Alcotest.test_case "context equality" `Quick test_context_equality;
        ] );
      ( "raw_format",
        [
          Alcotest.test_case "line layout" `Quick test_raw_line;
          Alcotest.test_case "roundtrip" `Quick test_raw_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick test_raw_errors;
          Alcotest.test_case "hex literals rejected" `Quick test_raw_rejects_hex;
          Alcotest.test_case "octal literals rejected" `Quick test_raw_rejects_octal;
          Alcotest.test_case "binary literals rejected" `Quick test_raw_rejects_binary_literal;
          Alcotest.test_case "underscored literals rejected" `Quick test_raw_rejects_underscores;
          Alcotest.test_case "ip octet forms rejected" `Quick test_ip_rejects_noncanonical_octets;
          Alcotest.test_case "port range enforced" `Quick test_raw_rejects_out_of_range_ports;
          qtest prop_raw_roundtrip;
        ] );
      ( "log",
        [
          Alcotest.test_case "append enforces order" `Quick test_log_append_order;
          Alcotest.test_case "of_list sorts" `Quick test_log_of_list_sorts;
          Alcotest.test_case "save/load roundtrip" `Quick test_log_save_load;
          Alcotest.test_case "map_activities" `Quick test_map_activities;
        ] );
      ( "probe",
        [
          Alcotest.test_case "records with local clocks" `Quick test_probe_records;
          Alcotest.test_case "disabled logs nothing" `Quick test_probe_disabled;
          Alcotest.test_case "host filter" `Quick test_probe_only_filter;
        ] );
      ( "loss",
        [
          Alcotest.test_case "p=0 and p=1" `Quick test_loss_none_and_all;
          Alcotest.test_case "kind-selective" `Quick test_loss_kind;
          Alcotest.test_case "other kinds untouched" `Quick test_loss_kind_preserves_others;
          Alcotest.test_case "seed-deterministic" `Quick test_loss_deterministic;
          qtest prop_loss_rate;
        ] );
      ( "binary_format",
        [
          Alcotest.test_case "roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "compression vs text" `Quick test_binary_smaller_than_text;
          Alcotest.test_case "corruption rejected" `Quick test_binary_rejects_corruption;
          Alcotest.test_case "file io" `Quick test_binary_file_io;
          Alcotest.test_case "truncation corpus" `Quick test_binary_truncation_corpus;
          Alcotest.test_case "byte-flip corpus" `Quick test_binary_byte_flip_corpus;
          Alcotest.test_case "truncated file load" `Quick test_binary_truncated_file_load;
          qtest prop_binary_roundtrip;
          qtest prop_binary_collection_roundtrip;
        ] );
      ( "native_format",
        [
          Alcotest.test_case "put_uvarint rejects negatives" `Quick test_put_uvarint_negative;
          Alcotest.test_case "truncation corpus (native)" `Quick test_native_truncation_corpus;
          Alcotest.test_case "byte-flip corpus (native)" `Quick test_native_byte_flip_corpus;
          qtest prop_native_roundtrip;
          qtest prop_native_bytes_match_legacy;
          qtest prop_text_native_text_stable;
        ] );
      ( "ground_truth",
        [
          Alcotest.test_case "lifecycle" `Quick test_gt_lifecycle;
          Alcotest.test_case "repeat visits merge" `Quick test_gt_repeat_visits;
          Alcotest.test_case "errors" `Quick test_gt_errors;
        ] );
    ]
