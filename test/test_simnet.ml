(* Unit and property tests for the discrete-event simulation substrate. *)

module Sim_time = Simnet.Sim_time
module Rng = Simnet.Rng
module Event_queue = Simnet.Event_queue
module Engine = Simnet.Engine
module Clock = Simnet.Clock
module Address = Simnet.Address
module Cpu = Simnet.Cpu
module Link = Simnet.Link
module Node = Simnet.Node
module Tcp = Simnet.Tcp
module Messaging = Simnet.Messaging

let qtest = QCheck_alcotest.to_alcotest

(* ---- Sim_time ---- *)

let test_time_arithmetic () =
  let t = Sim_time.add Sim_time.zero (Sim_time.ms 5) in
  Alcotest.(check int) "5ms in ns" 5_000_000 (Sim_time.to_ns t);
  let d = Sim_time.diff t Sim_time.zero in
  Alcotest.(check int) "diff" 5_000_000 (Sim_time.span_ns d);
  Alcotest.(check int) "sec" 1_000_000_000 (Sim_time.span_ns (Sim_time.sec 1));
  Alcotest.(check int) "us" 1_000 (Sim_time.span_ns (Sim_time.us 1));
  Alcotest.(check int) "scale" 2_500_000 (Sim_time.span_ns (Sim_time.span_scale 0.5 (Sim_time.ms 5)))

let test_time_of_float () =
  Alcotest.(check int) "1.5s" 1_500_000_000 (Sim_time.span_ns (Sim_time.span_of_float_s 1.5));
  Alcotest.(check (float 1e-12)) "roundtrip" 0.25
    (Sim_time.span_to_float_s (Sim_time.span_of_float_s 0.25))

let test_time_compare () =
  let a = Sim_time.of_ns 5 and b = Sim_time.of_ns 9 in
  Alcotest.(check bool) "lt" true Sim_time.(a < b);
  Alcotest.(check bool) "le" true Sim_time.(a <= a);
  Alcotest.(check bool) "max" true (Sim_time.equal (Sim_time.max a b) b);
  Alcotest.(check bool) "min" true (Sim_time.equal (Sim_time.min a b) a)

let test_time_pp () =
  let s = Format.asprintf "%a" Sim_time.pp (Sim_time.of_ns 1_234_567_890) in
  Alcotest.(check string) "pp" "1.234567890s" s;
  let s = Format.asprintf "%a" Sim_time.pp_span (Sim_time.us 12) in
  Alcotest.(check string) "pp_span" "12us" s

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let root = Rng.create ~seed:7 in
  let a1 = Rng.split root "a" and a2 = Rng.split root "a" in
  let b = Rng.split root "b" in
  Alcotest.(check int) "same label same stream" (Rng.int a1 1_000_000) (Rng.int a2 1_000_000);
  (* Different labels should (overwhelmingly) differ somewhere early. *)
  let differs = ref false in
  let a3 = Rng.split root "a" in
  for _ = 1 to 20 do
    if Rng.int a3 1_000_000 <> Rng.int b 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different labels differ" true !differs

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (abs_float (mean -. 5.0) < 0.25)

let test_rng_weighted () =
  let rng = Rng.create ~seed:3 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let k = Rng.weighted rng [ ("a", 0.8); ("b", 0.2) ] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  Alcotest.(check bool) "a ~ 80%" true (a > 7_500 && a < 8_500)

let prop_positive_normal_positive =
  QCheck.Test.make ~name:"positive_normal_span is positive" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, mean_ns) ->
      let rng = Rng.create ~seed in
      Sim_time.span_ns
        (Rng.positive_normal_span rng ~mean:(Sim_time.ns mean_ns) ~rel_std:0.5)
      > 0)

let prop_uniform_span_bounds =
  QCheck.Test.make ~name:"uniform_span stays within bounds" ~count:500
    QCheck.(triple small_int (int_range 0 1000) (int_range 0 1000))
    (fun (seed, a, b) ->
      let lo = Sim_time.ns (min a b) and hi = Sim_time.ns (max a b) in
      let rng = Rng.create ~seed in
      let d = Rng.uniform_span rng ~lo ~hi in
      Sim_time.span_ns d >= min a b && Sim_time.span_ns d <= max a b)

let test_rng_pareto_heavy_tail () =
  let rng = Rng.create ~seed:5 in
  let n = 5000 in
  let above = ref 0 in
  for _ = 1 to n do
    if Rng.pareto rng ~shape:1.2 ~scale:1.0 > 5.0 then incr above
  done;
  (* P(X > 5) = 5^-1.2 ~ 0.145 *)
  Alcotest.(check bool) "tail mass near 14.5%" true (!above > 500 && !above < 1000);
  (* and every draw is at least the scale *)
  for _ = 1 to 100 do
    Alcotest.(check bool) "x >= scale" true (Rng.pareto rng ~shape:2.0 ~scale:3.0 >= 3.0)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:6 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = Array.init 50 (fun i -> i));
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

(* ---- Event_queue ---- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:(Sim_time.of_ns 30) "c");
  ignore (Event_queue.add q ~time:(Sim_time.of_ns 10) "a");
  ignore (Event_queue.add q ~time:(Sim_time.of_ns 20) "b");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "-" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ p1; p2; p3 ];
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let t = Sim_time.of_ns 5 in
  ignore (Event_queue.add q ~time:t "first");
  ignore (Event_queue.add q ~time:t "second");
  ignore (Event_queue.add q ~time:t "third");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "-" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    [ p1; p2; p3 ]

let test_queue_cancel () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:(Sim_time.of_ns 1) "a");
  let h = Event_queue.add q ~time:(Sim_time.of_ns 2) "b" in
  ignore (Event_queue.add q ~time:(Sim_time.of_ns 3) "c");
  Event_queue.cancel q h;
  Alcotest.(check int) "live count" 2 (Event_queue.length q);
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "-" in
  let p1 = pop () in
  let p2 = pop () in
  Alcotest.(check (list string)) "skips cancelled" [ "a"; "c" ] [ p1; p2 ];
  (* double cancel is a no-op *)
  Event_queue.cancel q h;
  Alcotest.(check int) "still zero" 0 (Event_queue.length q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops in time order" ~count:200
    QCheck.(list (int_range 0 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:(Sim_time.of_ns t) t)) times;
      let rec drain acc =
        match Event_queue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* ---- Engine ---- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let trace = ref [] in
  let note tag () = trace := tag :: !trace in
  ignore (Engine.schedule_after e ~delay:(Sim_time.ms 2) (note "b"));
  ignore (Engine.schedule_after e ~delay:(Sim_time.ms 1) (note "a"));
  ignore (Engine.schedule_after e ~delay:(Sim_time.ms 3) (note "c"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !trace);
  Alcotest.(check int) "clock at last event" 3_000_000 (Sim_time.to_ns (Engine.now e))

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule_after e ~delay:(Sim_time.ms 1) (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Engine.schedule_after e ~delay:(Sim_time.ms 1) (fun () ->
                fired := "inner" :: !fired))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  Alcotest.(check int) "events fired" 2 (Engine.events_fired e)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_after e ~delay:(Sim_time.ms i) (fun () -> incr count))
  done;
  Engine.run_until e (Sim_time.add Sim_time.zero (Sim_time.ms 5));
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check int) "clock parked at stop" 5_000_000 (Sim_time.to_ns (Engine.now e));
  Alcotest.(check int) "pending" 5 (Engine.pending e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule_after e ~delay:(Sim_time.ms 1) (fun () -> fired := true) in
  Engine.cancel e timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule_after e ~delay:(Sim_time.ms 1) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument
       "Engine.schedule_at: 0.000000000s is in the past (now 0.001000000s)")
    (fun () -> ignore (Engine.schedule_at e ~time:Sim_time.zero (fun () -> ())))

let test_engine_cancel_after_fire () =
  let e = Engine.create () in
  let timer = Engine.schedule_after e ~delay:(Sim_time.ms 1) (fun () -> ()) in
  Engine.run e;
  (* cancelling a fired timer is a harmless no-op *)
  Engine.cancel e timer;
  Alcotest.(check int) "no pending" 0 (Engine.pending e)

(* ---- Clock ---- *)

let test_clock_skew_drift () =
  let c = Clock.create ~skew:(Sim_time.ms 10) ~drift_ppm:100.0 () in
  let g = Sim_time.of_ns 1_000_000_000 in
  let l = Clock.local_of_global c g in
  (* 1s + 10ms skew + 100ppm * 1s = 1s + 10ms + 100us *)
  Alcotest.(check int) "local" 1_010_100_000 (Sim_time.to_ns l);
  let back = Clock.global_of_local c l in
  Alcotest.(check bool) "inverse within 1ns" true
    (abs (Sim_time.to_ns back - Sim_time.to_ns g) <= 1)

let test_clock_monotone () =
  let c = Clock.create ~skew:(Sim_time.ms (-500)) ~drift_ppm:(-200.0) () in
  let prev = ref min_int in
  for i = 0 to 1000 do
    let l = Sim_time.to_ns (Clock.local_of_global c (Sim_time.of_ns (i * 1_000_000))) in
    Alcotest.(check bool) "monotone" true (l >= !prev);
    prev := l
  done

(* ---- Address ---- *)

let test_ip_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Address.ip_to_string (Address.ip_of_string s)))
    [ "0.0.0.0"; "10.0.1.2"; "255.255.255.255"; "192.168.13.254" ]

let test_ip_invalid () =
  List.iter
    (fun s ->
      match Address.ip_of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "1.2.3"; "1.2.3.4.5"; "a.b.c.d"; "256.1.1.1"; "-1.0.0.0"; "" ]

let test_flow_reverse () =
  let f = Test_helpers.Helpers.flow "1.2.3.4" 10 "5.6.7.8" 20 in
  let r = Address.reverse f in
  Alcotest.(check bool) "reverse twice" true (Address.flow_equal f (Address.reverse r));
  Alcotest.(check bool) "differs" false (Address.flow_equal f r);
  Alcotest.(check string) "pp" "1.2.3.4:10-5.6.7.8:20" (Format.asprintf "%a" Address.pp_flow f)

(* ---- Cpu ---- *)

let run_cpu_jobs ~cores ~jobs =
  let e = Engine.create () in
  let cpu = Cpu.create ~engine:e ~cores () in
  let finish_times = Array.make (List.length jobs) Sim_time.zero in
  List.iteri
    (fun i (at, work) ->
      ignore
        (Engine.schedule_at e ~time:(Sim_time.of_ns at) (fun () ->
             Cpu.submit cpu ~work:(Sim_time.ns work) (fun () ->
                 finish_times.(i) <- Engine.now e))))
    jobs;
  Engine.run e;
  Array.map Sim_time.to_ns finish_times

let test_cpu_single_job () =
  let finish = run_cpu_jobs ~cores:1 ~jobs:[ (0, 1_000_000) ] in
  Alcotest.(check int) "1ms job on idle core" 1_000_000 finish.(0)

let test_cpu_processor_sharing () =
  (* Two equal jobs on one core, started together: both finish at 2x. *)
  let finish = run_cpu_jobs ~cores:1 ~jobs:[ (0, 1_000_000); (0, 1_000_000) ] in
  Alcotest.(check bool) "both near 2ms" true
    (abs (finish.(0) - 2_000_000) < 10 && abs (finish.(1) - 2_000_000) < 10)

let test_cpu_two_cores_no_contention () =
  let finish = run_cpu_jobs ~cores:2 ~jobs:[ (0, 1_000_000); (0, 1_000_000) ] in
  Alcotest.(check bool) "parallel" true
    (abs (finish.(0) - 1_000_000) < 10 && abs (finish.(1) - 1_000_000) < 10)

let test_cpu_three_jobs_two_cores () =
  (* 3 equal jobs, 2 cores, PS: rate 2/3 each -> finish at 1.5x. *)
  let finish = run_cpu_jobs ~cores:2 ~jobs:[ (0, 1_000_000); (0, 1_000_000); (0, 1_000_000) ] in
  Array.iter
    (fun f -> Alcotest.(check bool) "1.5ms" true (abs (f - 1_500_000) < 10))
    finish

let test_cpu_staggered () =
  (* Job B arrives halfway through job A on one core. A has 0.5ms left, now
     shared: A finishes at 0.5 + 1.0 = 1.5ms; B (1ms work) at 2ms. *)
  let finish = run_cpu_jobs ~cores:1 ~jobs:[ (0, 1_000_000); (500_000, 1_000_000) ] in
  Alcotest.(check bool) "A at 1.5ms" true (abs (finish.(0) - 1_500_000) < 20);
  Alcotest.(check bool) "B at 2ms" true (abs (finish.(1) - 2_000_000) < 20)

let test_cpu_utilization () =
  let e = Engine.create () in
  let cpu = Cpu.create ~engine:e ~cores:2 () in
  Cpu.submit cpu ~work:(Sim_time.ms 1) (fun () -> ());
  Engine.run e;
  (* 1ms of work over 1ms wall on 2 cores = 50%. *)
  Alcotest.(check (float 0.01)) "util" 0.5 (Cpu.utilization cpu);
  Alcotest.(check int) "active" 0 (Cpu.active_jobs cpu)

let test_cpu_zero_work () =
  let e = Engine.create () in
  let cpu = Cpu.create ~engine:e ~cores:1 () in
  let fired = ref false in
  Cpu.submit cpu ~work:Sim_time.span_zero (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "zero work completes" true !fired

let prop_cpu_work_conserved =
  QCheck.Test.make ~name:"cpu conserves total work" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (int_range 1_000 2_000_000))
    (fun works ->
      let e = Engine.create () in
      let cpu = Cpu.create ~engine:e ~cores:2 () in
      List.iter (fun w -> Cpu.submit cpu ~work:(Sim_time.ns w) (fun () -> ())) works;
      Engine.run e;
      let total = List.fold_left ( + ) 0 works in
      let busy = Sim_time.span_ns (Cpu.busy_core_time cpu) in
      abs (busy - total) < 16 * List.length works)

(* ---- Link ---- *)

let test_link_serialization () =
  let e = Engine.create () in
  let link =
    Link.create ~engine:e ~bandwidth_bps:8e6 (* 1 byte/us *)
      ~propagation:(Sim_time.us 100) ()
  in
  let t1 = ref Sim_time.zero and t2 = ref Sim_time.zero in
  Link.transmit link ~size:1000 (fun () -> t1 := Engine.now e);
  Link.transmit link ~size:1000 (fun () -> t2 := Engine.now e);
  Engine.run e;
  (* First: 1000us tx + 100us prop; second queues behind: 2000 + 100. *)
  Alcotest.(check int) "first" 1_100_000 (Sim_time.to_ns !t1);
  Alcotest.(check int) "second" 2_100_000 (Sim_time.to_ns !t2);
  Alcotest.(check int) "bytes" 2000 (Link.bytes_sent link)

let test_link_bandwidth_change () =
  let e = Engine.create () in
  let link = Link.create ~engine:e ~bandwidth_bps:8e6 ~propagation:Sim_time.span_zero () in
  Link.set_bandwidth_bps link 8e5;
  let t = ref Sim_time.zero in
  Link.transmit link ~size:100 (fun () -> t := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "10x slower" 1_000_000 (Sim_time.to_ns !t)

let test_link_zero_size () =
  let e = Engine.create () in
  let link = Link.create ~engine:e ~bandwidth_bps:8e6 ~propagation:(Sim_time.us 100) () in
  let t = ref Sim_time.zero in
  Link.transmit link ~size:0 (fun () -> t := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "propagation only" 100_000 (Sim_time.to_ns !t)

let test_node_fresh_ids () =
  let e = Engine.create () in
  let n =
    Node.create ~engine:e ~hostname:"x" ~ip:(Address.ip_of_string "1.1.1.1") ~cores:1 ()
  in
  let p1 = Node.spawn n ~program:"a" in
  let p2 = Node.spawn n ~program:"a" in
  Alcotest.(check bool) "distinct pids" true (p1.Simnet.Proc.pid <> p2.Simnet.Proc.pid);
  Alcotest.(check bool) "main thread tid = pid" true (p1.Simnet.Proc.tid = p1.Simnet.Proc.pid);
  let t1 = Node.spawn_thread n ~of_:p1 in
  Alcotest.(check bool) "thread shares pid" true (t1.Simnet.Proc.pid = p1.Simnet.Proc.pid);
  Alcotest.(check bool) "thread has own tid" true (t1.Simnet.Proc.tid <> p1.Simnet.Proc.tid);
  let port1 = Node.fresh_port n in
  let port2 = Node.fresh_port n in
  Alcotest.(check bool) "ephemeral ports distinct" true (port1 <> port2 && port1 >= 32768)

let test_ip_int_roundtrip () =
  List.iter
    (fun s ->
      let ip = Address.ip_of_string s in
      Alcotest.(check bool) "int roundtrip" true
        (Address.ip_equal ip (Address.ip_of_int (Address.ip_to_int ip))))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255" ];
  match Address.ip_of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative ip accepted"

(* ---- Tcp + Messaging ---- *)

let two_nodes () =
  let e = Engine.create () in
  let stack = Tcp.create_stack ~engine:e in
  let mk name ip =
    Node.create ~engine:e ~hostname:name ~ip:(Address.ip_of_string ip) ~cores:2 ()
  in
  (e, stack, mk "alpha" "10.0.0.1", mk "beta" "10.0.0.2")

let test_tcp_connect_and_send () =
  let e, stack, a, b = two_nodes () in
  let server = Node.spawn b ~program:"server" in
  let got = ref [] in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      let rec loop () =
        Tcp.recv stack sock ~proc:server ~max:4096 ~k:(fun n ->
            if n > 0 then begin
              got := n :: !got;
              loop ()
            end)
      in
      loop ());
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock -> Tcp.send stack sock ~proc:client ~size:1234 ~k:(fun () -> ()));
  Engine.run e;
  Alcotest.(check (list int)) "delivered" [ 1234 ] !got

let test_tcp_syscall_observer () =
  let e, stack, a, b = two_nodes () in
  let events = ref [] in
  Tcp.add_observer stack (fun sc ->
      events := (sc.Tcp.kind, sc.Tcp.size, Node.hostname sc.Tcp.node) :: !events);
  let server = Node.spawn b ~program:"server" in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      Tcp.recv stack sock ~proc:server ~max:4096 ~k:(fun _ -> ()));
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock -> Tcp.send stack sock ~proc:client ~size:100 ~k:(fun () -> ()));
  Engine.run e;
  let events = List.rev !events in
  Alcotest.(check int) "two syscalls" 2 (List.length events);
  (match events with
  | [ (k1, s1, h1); (k2, s2, h2) ] ->
      Alcotest.(check bool) "send first" true (k1 = Tcp.Syscall_send);
      Alcotest.(check bool) "recv second" true (k2 = Tcp.Syscall_recv);
      Alcotest.(check int) "send size" 100 s1;
      Alcotest.(check int) "recv size" 100 s2;
      Alcotest.(check string) "sender host" "alpha" h1;
      Alcotest.(check string) "receiver host" "beta" h2
  | _ -> Alcotest.fail "expected 2 events");
  Alcotest.(check int) "stack count" 2 (Tcp.syscall_count stack)

let test_tcp_recv_coalesces () =
  (* Two sends arriving before the receiver reads coalesce into one recv. *)
  let e, stack, a, b = two_nodes () in
  let server = Node.spawn b ~program:"server" in
  let got = ref [] in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      ignore
        (Engine.schedule_after e ~delay:(Sim_time.ms 50) (fun () ->
             Tcp.recv stack sock ~proc:server ~max:10_000 ~k:(fun n -> got := n :: !got))))
  ;
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock ->
      Tcp.send stack sock ~proc:client ~size:300 ~k:(fun () ->
          Tcp.send stack sock ~proc:client ~size:200 ~k:(fun () -> ())));
  Engine.run e;
  Alcotest.(check (list int)) "coalesced" [ 500 ] !got

let test_tcp_recv_respects_max () =
  let e, stack, a, b = two_nodes () in
  let server = Node.spawn b ~program:"server" in
  let got = ref [] in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      ignore
        (Engine.schedule_after e ~delay:(Sim_time.ms 50) (fun () ->
             let rec loop () =
               Tcp.recv stack sock ~proc:server ~max:150 ~k:(fun n ->
                   if n > 0 then begin
                     got := n :: !got;
                     if List.fold_left ( + ) 0 !got < 500 then loop ()
                   end)
             in
             loop ())));
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock -> Tcp.send stack sock ~proc:client ~size:500 ~k:(fun () -> ()));
  Engine.run e;
  Alcotest.(check (list int)) "chunked by max" [ 50; 150; 150; 150 ] !got

let test_tcp_eof () =
  let e, stack, a, b = two_nodes () in
  let server = Node.spawn b ~program:"server" in
  let eof = ref false in
  let data = ref 0 in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      let rec loop () =
        Tcp.recv stack sock ~proc:server ~max:4096 ~k:(fun n ->
            if n = 0 then eof := true
            else begin
              data := !data + n;
              loop ()
            end)
      in
      loop ());
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock ->
      Tcp.send stack sock ~proc:client ~size:100 ~k:(fun () -> Tcp.close stack sock));
  Engine.run e;
  Alcotest.(check int) "data before eof" 100 !data;
  Alcotest.(check bool) "eof seen" true !eof

let test_tcp_no_listener () =
  let _, stack, a, _ = two_nodes () in
  let client = Node.spawn a ~program:"client" in
  match
    Tcp.connect stack ~node:a ~proc:client
      ~dst:(Address.endpoint (Address.ip_of_string "9.9.9.9") 1)
      ~k:(fun _ -> ())
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_tcp_double_bind () =
  let _, stack, _, b = two_nodes () in
  Tcp.listen stack b ~port:7000 ~accept:(fun _ -> ());
  (match Tcp.listen stack b ~port:7000 ~accept:(fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument");
  Tcp.unlisten stack b ~port:7000;
  Tcp.listen stack b ~port:7000 ~accept:(fun _ -> ())

let test_tcp_overhead_delays_continuation () =
  let e, stack, a, b = two_nodes () in
  Tcp.set_syscall_overhead stack (fun _ _ -> Sim_time.us 50);
  let server = Node.spawn b ~program:"server" in
  Tcp.listen stack b ~port:7000 ~accept:(fun _ -> ());
  let client = Node.spawn a ~program:"client" in
  let sent_at = ref Sim_time.zero in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock ->
      let before = Engine.now e in
      Tcp.send stack sock ~proc:client ~size:10 ~k:(fun () ->
          sent_at := Sim_time.add Sim_time.zero (Sim_time.diff (Engine.now e) before)));
  Engine.run e;
  ignore server;
  Alcotest.(check int) "50us overhead" 50_000 (Sim_time.to_ns !sent_at)

let test_messaging_roundtrip () =
  let e, stack, a, b = two_nodes () in
  let messaging = Messaging.create stack in
  let server = Node.spawn b ~program:"server" in
  let sizes = ref [] in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      let rec loop () =
        Messaging.recv_message messaging sock ~proc:server
          ~k:(fun (m : Messaging.msg) ->
            if m.size > 0 then begin
              sizes := m.size :: !sizes;
              loop ()
            end)
          ()
      in
      loop ());
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock ->
      Messaging.send_message messaging sock ~proc:client ~size:20_000 ~chunk:8192
        ~k:(fun () ->
          Messaging.send_message messaging sock ~proc:client ~size:100 ~k:(fun () -> ()) ())
        ());
  Engine.run e;
  Alcotest.(check (list int)) "whole messages" [ 100; 20_000 ] !sizes

let test_messaging_payload () =
  let e, stack, a, b = two_nodes () in
  let messaging = Messaging.create stack in
  let server = Node.spawn b ~program:"server" in
  let seen = ref None in
  Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
      Messaging.recv_message messaging sock ~proc:server
        ~k:(fun (m : Messaging.msg) -> seen := m.payload)
        ());
  let client = Node.spawn a ~program:"client" in
  Tcp.connect stack ~node:a ~proc:client
    ~dst:(Address.endpoint (Node.ip b) 7000)
    ~k:(fun sock ->
      Messaging.send_message messaging sock ~proc:client ~size:64
        ~payload:(Tiersim.Service.Http_request (Tiersim.Workload.sample_kind
             (Rng.create ~seed:1) ~kind:"ViewItem" ~id:99))
        ~k:(fun () -> ())
        ());
  Engine.run e;
  match !seen with
  | Some (Tiersim.Service.Http_request plan) ->
      Alcotest.(check int) "payload id" 99 plan.Tiersim.Workload.id
  | _ -> Alcotest.fail "payload lost"

let prop_messaging_chunks =
  QCheck.Test.make ~name:"messaging reassembles any (size, chunk, buf)" ~count:100
    QCheck.(triple (int_range 1 100_000) (int_range 1 9000) (int_range 1 9000))
    (fun (size, chunk, buf) ->
      let e, stack, a, b = two_nodes () in
      let messaging = Messaging.create stack in
      let server = Node.spawn b ~program:"server" in
      let got = ref (-1) in
      Tcp.listen stack b ~port:7000 ~accept:(fun sock ->
          Messaging.recv_message messaging sock ~proc:server ~buf
            ~k:(fun (m : Messaging.msg) -> got := m.size)
            ());
      let client = Node.spawn a ~program:"client" in
      Tcp.connect stack ~node:a ~proc:client
        ~dst:(Address.endpoint (Node.ip b) 7000)
        ~k:(fun sock ->
          Messaging.send_message messaging sock ~proc:client ~size ~chunk ~k:(fun () -> ()) ());
      Engine.run e;
      !got = size)

let () =
  Alcotest.run "simnet"
    [
      ( "sim_time",
        [
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "float conversion" `Quick test_time_of_float;
          Alcotest.test_case "comparisons" `Quick test_time_compare;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted;
          Alcotest.test_case "pareto tail" `Quick test_rng_pareto_heavy_tail;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          qtest prop_positive_normal_positive;
          qtest prop_uniform_span_bounds;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO on ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_queue_cancel;
          qtest prop_queue_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past scheduling rejected" `Quick test_engine_past_raises;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
        ] );
      ( "clock",
        [
          Alcotest.test_case "skew and drift" `Quick test_clock_skew_drift;
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
        ] );
      ( "address",
        [
          Alcotest.test_case "ip roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "ip invalid" `Quick test_ip_invalid;
          Alcotest.test_case "ip int codec" `Quick test_ip_int_roundtrip;
          Alcotest.test_case "flow reverse" `Quick test_flow_reverse;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "single job" `Quick test_cpu_single_job;
          Alcotest.test_case "processor sharing" `Quick test_cpu_processor_sharing;
          Alcotest.test_case "two cores parallel" `Quick test_cpu_two_cores_no_contention;
          Alcotest.test_case "three jobs two cores" `Quick test_cpu_three_jobs_two_cores;
          Alcotest.test_case "staggered arrival" `Quick test_cpu_staggered;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "zero work" `Quick test_cpu_zero_work;
          qtest prop_cpu_work_conserved;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "bandwidth change" `Quick test_link_bandwidth_change;
          Alcotest.test_case "zero-size payload" `Quick test_link_zero_size;
          Alcotest.test_case "node id allocation" `Quick test_node_fresh_ids;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect and send" `Quick test_tcp_connect_and_send;
          Alcotest.test_case "syscall observer" `Quick test_tcp_syscall_observer;
          Alcotest.test_case "recv coalesces" `Quick test_tcp_recv_coalesces;
          Alcotest.test_case "recv respects max" `Quick test_tcp_recv_respects_max;
          Alcotest.test_case "eof after close" `Quick test_tcp_eof;
          Alcotest.test_case "no listener" `Quick test_tcp_no_listener;
          Alcotest.test_case "double bind" `Quick test_tcp_double_bind;
          Alcotest.test_case "syscall overhead" `Quick test_tcp_overhead_delays_continuation;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "roundtrip" `Quick test_messaging_roundtrip;
          Alcotest.test_case "payload" `Quick test_messaging_payload;
          qtest prop_messaging_chunks;
        ] );
    ]
