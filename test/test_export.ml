(* Tests for the tooling surface: JSON emission, CAG export, swimlane
   rendering, and oracle persistence. *)

module H = Test_helpers.Helpers
module Json = Core.Json
module Report = Core.Report
module Cag_export = Core.Cag_export
module Cag_render = Core.Cag_render
module Ground_truth = Trace.Ground_truth
module ST = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

let one_cag () =
  let engine, _ = H.correlate_raw (H.logs_of_request ()) in
  List.hd (Core.Cag_engine.finished engine)

(* ---- Json ---- *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Float 1.5));
  Alcotest.(check string) "integral float" "3.0" (Json.to_string (Json.Float 3.0));
  Alcotest.(check string) "nan becomes null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_escaping () =
  Alcotest.(check string) "quotes" {|"a\"b"|} (Json.escape_string {|a"b|});
  Alcotest.(check string) "backslash" {|"a\\b"|} (Json.escape_string {|a\b|});
  Alcotest.(check string) "newline" {|"a\nb"|} (Json.escape_string "a\nb");
  Alcotest.(check string) "control" "\"a\\u0001b\"" (Json.escape_string "a\001b")

let test_json_compound () =
  let j = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("e", Json.List []) ] in
  Alcotest.(check string) "compact" {|{"xs":[1,2],"e":[]}|} (Json.to_string j);
  let pretty = Json.to_string ~indent:true j in
  Alcotest.(check bool) "indented has newlines" true (H.contains pretty "\n  \"xs\"")

let prop_json_no_raw_control_chars =
  QCheck.Test.make ~name:"escaped strings contain no raw control chars" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 40))
    (fun s ->
      let e = Json.escape_string s in
      let ok = ref true in
      String.iteri
        (fun i c -> if i > 0 && i < String.length e - 1 && Char.code c < 0x20 then ok := false)
        e;
      !ok)

(* ---- Report CSV ---- *)

let test_csv_plain () =
  let t = Report.table ~title:"t" ~columns:[ "a"; "b" ] in
  Report.add_row t [ "1"; "2" ];
  Alcotest.(check string) "no quoting needed" "a,b\n1,2\n" (Report.to_csv t)

let test_csv_escaping () =
  let t = Report.table ~title:"t" ~columns:[ "name"; "value" ] in
  Report.add_row t [ "has,comma"; "plain" ];
  Report.add_row t [ "has\"quote"; "has\nnewline" ];
  Report.add_row t [ "has\rcr"; "m{le=\"0.1\",x=\"a,b\"}" ];
  let csv = Report.to_csv t in
  let expected =
    "name,value\n\"has,comma\",plain\n\"has\"\"quote\",\"has\nnewline\"\n\"has\rcr\",\"m{le=\"\"0.1\"\",x=\"\"a,b\"\"}\"\n"
  in
  Alcotest.(check string) "RFC 4180 quoting" expected csv

(* A toy CSV reader implementing the quoting rules, to prove round-trip. *)
let parse_csv s =
  let rows = ref [] and row = ref [] and cell = Buffer.create 16 in
  let n = String.length s in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then closed := true
          else if s.[!i] = '"' then
            if !i + 1 < n && s.[!i + 1] = '"' then begin
              Buffer.add_char cell '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char cell s.[!i];
            incr i
          end
        done;
        decr i
    | ',' -> flush_cell ()
    | '\n' -> flush_row ()
    | c -> Buffer.add_char cell c);
    incr i
  done;
  if Buffer.length cell > 0 || !row <> [] then flush_row ();
  List.rev !rows

let test_csv_roundtrip () =
  let cells =
    [ [ "plain"; "a,b"; "q\"uote" ]; [ "nl\nnl"; "cr\rcr"; "both\"\n,\"" ] ]
  in
  let t = Report.table ~title:"t" ~columns:[ "c1"; "c2"; "c3" ] in
  List.iter (Report.add_row t) cells;
  Alcotest.(check (list (list string)))
    "parses back to the same cells"
    ([ "c1"; "c2"; "c3" ] :: cells)
    (parse_csv (Report.to_csv t))

(* ---- Cag_export ---- *)

let test_export_schema () =
  let cag = one_cag () in
  match Cag_export.cag_to_json cag with
  | Json.Obj fields ->
      let get k = List.assoc k fields in
      Alcotest.(check bool) "finished" true (get "finished" = Json.Bool true);
      (match get "vertices" with
      | Json.List vs -> Alcotest.(check int) "vertex count" (Core.Cag.size cag) (List.length vs)
      | _ -> Alcotest.fail "vertices not a list");
      (match get "edges" with
      | Json.List es ->
          Alcotest.(check int) "edge count"
            (List.length (Core.Cag.edges cag))
            (List.length es)
      | _ -> Alcotest.fail "edges not a list");
      (match get "route" with
      | Json.String r -> Alcotest.(check string) "route" "httpd>java>mysqld>java>httpd" r
      | _ -> Alcotest.fail "route not a string")
  | _ -> Alcotest.fail "not an object"

let test_export_edge_indices_valid () =
  let cag = one_cag () in
  match Cag_export.cag_to_json cag with
  | Json.Obj fields -> (
      let n = Core.Cag.size cag in
      match List.assoc "edges" fields with
      | Json.List es ->
          List.iter
            (fun e ->
              match e with
              | Json.Obj ef -> (
                  match (List.assoc "from" ef, List.assoc "to" ef) with
                  | Json.Int f, Json.Int t ->
                      Alcotest.(check bool) "indices in range" true
                        (f >= 0 && f < n && t >= 0 && t < n && f < t)
                  | _ -> Alcotest.fail "bad edge fields")
              | _ -> Alcotest.fail "edge not an object")
            es
      | _ -> Alcotest.fail "edges not a list")
  | _ -> Alcotest.fail "not an object"

let test_export_pattern_summary () =
  let cag = one_cag () in
  let patterns = Core.Pattern.classify [ cag; cag ] in
  match Cag_export.pattern_summary_to_json patterns with
  | Json.List [ Json.Obj fields ] ->
      Alcotest.(check bool) "paths = 2" true (List.assoc "paths" fields = Json.Int 2);
      (match List.assoc "latency_percentages" fields with
      | Json.Obj pcts -> Alcotest.(check int) "7 components" 7 (List.length pcts)
      | _ -> Alcotest.fail "no profile")
  | _ -> Alcotest.fail "expected one pattern"

(* ---- Cag_render ---- *)

let test_render_lanes () =
  let cag = one_cag () in
  let out = Cag_render.render ~width:40 cag in
  let lines = String.split_on_char '\n' out in
  (* header + 3 lanes + scale + trailing empty *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  Alcotest.(check bool) "web lane" true (H.contains out "web/httpd[10]");
  Alcotest.(check bool) "app lane" true (H.contains out "app/java[21]");
  Alcotest.(check bool) "db lane" true (H.contains out "db/mysqld[31]");
  Alcotest.(check bool) "begin marker" true (H.contains out "B");
  Alcotest.(check bool) "end marker" true (H.contains out "E");
  (* BEGIN must be the first marker on the web lane *)
  let web_line = List.find (fun l -> H.contains l "web/httpd") lines in
  let first_letter =
    String.to_seq web_line
    |> Seq.filter (fun c -> c = 'B' || c = 'S' || c = 'R' || c = 'E')
    |> Seq.uncons
  in
  match first_letter with
  | Some ('B', _) -> ()
  | _ -> Alcotest.fail "web lane must start at BEGIN"

let test_render_width_clamped () =
  let cag = one_cag () in
  let out = Cag_render.render ~width:1 cag in
  Alcotest.(check bool) "non-empty at minimal width" true (String.length out > 0)

let test_render_with_skew_correction () =
  (* Under skew, app lane letters can land outside the web lane's span;
     with correction the receive of the app tier must sit between the
     web tier's send and receive columns. *)
  let logs = H.logs_of_request ~askew:300_000_000 () in
  let engine, _ = H.correlate_raw logs in
  let cag = List.hd (Core.Cag_engine.finished engine) in
  let est = Core.Skew_estimator.estimate [ cag ] in
  let corrected = Cag_render.render ~width:60 ~skew:est cag in
  (* crude check: in the corrected rendering, the app lane's first R is not
     in the last 10 columns (where raw skew would push it) *)
  let lines = String.split_on_char '\n' corrected in
  let app_line = List.find (fun l -> H.contains l "app/java") lines in
  (match String.index_opt app_line 'R' with
  | Some i -> Alcotest.(check bool) "R inside the span" true (i < String.length app_line - 10)
  | None -> Alcotest.fail "no R on app lane");
  ignore (Cag_render.render cag)

(* ---- Ground_truth persistence ---- *)

let test_gt_save_load_roundtrip () =
  let gt = Ground_truth.create () in
  Ground_truth.begin_visit gt ~id:3 ~kind:"ViewItem" ~context:H.web_ctx ~ts:(ST.of_ns 100);
  Ground_truth.end_visit gt ~id:3 ~context:H.web_ctx ~ts:(ST.of_ns 900);
  Ground_truth.begin_visit gt ~id:3 ~kind:"ViewItem" ~context:H.app_ctx ~ts:(ST.of_ns 200);
  Ground_truth.end_visit gt ~id:3 ~context:H.app_ctx ~ts:(ST.of_ns 800);
  Ground_truth.complete gt ~id:3;
  Ground_truth.begin_visit gt ~id:7 ~kind:"PutBid" ~context:H.web_ctx ~ts:(ST.of_ns 2000);
  Ground_truth.end_visit gt ~id:7 ~context:H.web_ctx ~ts:(ST.of_ns 2500);
  Ground_truth.complete gt ~id:7;
  let path = Filename.temp_file "gt" ".txt" in
  Ground_truth.save gt ~path;
  (match Ground_truth.load ~path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Alcotest.(check int) "count" 2 (Ground_truth.count loaded);
      let rs = Ground_truth.requests loaded in
      let orig = Ground_truth.requests gt in
      List.iter2
        (fun (a : Ground_truth.request) (b : Ground_truth.request) ->
          Alcotest.(check int) "id" a.id b.id;
          Alcotest.(check string) "kind" a.kind b.kind;
          List.iter2
            (fun (va : Ground_truth.visit) (vb : Ground_truth.visit) ->
              Alcotest.(check bool) "context" true
                (Trace.Activity.equal_context va.context vb.context);
              Alcotest.(check int) "begin" (ST.to_ns va.begin_ts) (ST.to_ns vb.begin_ts);
              Alcotest.(check int) "end" (ST.to_ns va.end_ts) (ST.to_ns vb.end_ts))
            a.visits b.visits)
        orig rs);
  Sys.remove path

let test_gt_load_errors () =
  let path = Filename.temp_file "gt" ".txt" in
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "visit h p 1 1 0 0\n";
  (match Ground_truth.load ~path with
  | Error e -> Alcotest.(check bool) "visit before request" true (H.contains e "before any")
  | Ok _ -> Alcotest.fail "accepted orphan visit");
  write "request x ViewItem\n";
  (match Ground_truth.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad id");
  write "garbage line\n";
  (match Ground_truth.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  Sys.remove path

let test_gt_full_cycle_accuracy () =
  (* simulate -> save oracle -> reload -> score saved correlation: the
     CLI's offline workflow. *)
  let outcome =
    Tiersim.Scenario.run
      { Tiersim.Scenario.default with Tiersim.Scenario.clients = 10; time_scale = 0.02 }
  in
  let path = Filename.temp_file "gt" ".txt" in
  Ground_truth.save outcome.Tiersim.Scenario.ground_truth ~path;
  match Ground_truth.load ~path with
  | Error e -> Alcotest.fail e
  | Ok gt ->
      let cfg = Core.Correlator.config ~transform:outcome.transform () in
      let result = Core.Correlator.correlate cfg outcome.logs in
      let verdict = Core.Accuracy.check ~ground_truth:gt result.Core.Correlator.cags in
      Alcotest.(check (float 0.0)) "100% through the file" 1.0 verdict.Core.Accuracy.accuracy;
      Sys.remove path

let () =
  Alcotest.run "export"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "compound" `Quick test_json_compound;
          qtest prop_json_no_raw_control_chars;
        ] );
      ( "report_csv",
        [
          Alcotest.test_case "plain" `Quick test_csv_plain;
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "cag_export",
        [
          Alcotest.test_case "schema" `Quick test_export_schema;
          Alcotest.test_case "edge indices" `Quick test_export_edge_indices_valid;
          Alcotest.test_case "pattern summary" `Quick test_export_pattern_summary;
        ] );
      ( "cag_render",
        [
          Alcotest.test_case "lanes" `Quick test_render_lanes;
          Alcotest.test_case "width clamped" `Quick test_render_width_clamped;
          Alcotest.test_case "skew-corrected" `Quick test_render_with_skew_correction;
        ] );
      ( "ground_truth_files",
        [
          Alcotest.test_case "roundtrip" `Quick test_gt_save_load_roundtrip;
          Alcotest.test_case "load errors" `Quick test_gt_load_errors;
          Alcotest.test_case "full offline cycle" `Quick test_gt_full_cycle_accuracy;
        ] );
    ]
