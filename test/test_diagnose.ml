(* Tests for the streaming performance-debugging plane (lib/diagnose):
   baseline learning and JSON round-trip, the streaming detector's alarm
   classes (share drift, pattern mix, latency shift, throughput drop)
   with their hysteresis, the ground-truth scorer, and one live
   end-to-end run per polarity (fault / control). *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Baseline = Diagnose.Baseline
module Detector = Diagnose.Detector
module Verdict = Diagnose.Verdict
module Analysis = Core.Analysis
module Faults = Tiersim.Faults
module S = Tiersim.Scenario
module ST = Simnet.Sim_time

(* ---- synthetic path streams ---- *)

(* One correlated three-tier request ending at [base + 9ms * stretch].
   [db_extra] lengthens the db tier's internal share (and the total
   duration) by shifting everything at or after the db reply; [stretch]
   scales every offset uniformly, changing the duration but not one
   share point. *)
let mk_cag ?(db_extra = ST.span_zero) ?(stretch = 1) ~base () =
  let w, a, d = H.simple_request ~base:0 () in
  let shift (x : Activity.t) =
    let off = ST.to_ns x.Activity.timestamp * stretch in
    let ts = ST.add (ST.of_ns (base + off)) ST.span_zero in
    let ts =
      if off >= 5_000_000 * stretch then ST.add ts db_extra else ts
    in
    { x with Activity.timestamp = ts }
  in
  let logs =
    [
      Trace.Log.of_list ~hostname:"web" (List.map shift w);
      Trace.Log.of_list ~hostname:"app" (List.map shift a);
      Trace.Log.of_list ~hostname:"db" (List.map shift d);
    ]
  in
  let engine, _ = H.correlate_raw logs in
  List.hd (Core.Cag_engine.finished engine)

(* A two-tier request (no db hop): a second, shorter pattern. [program]
   renames the app tier, which changes the signature — handy for
   synthesising a pattern the baseline has never seen. *)
let mk_short_cag ?(program = "java") ~base () =
  let app_ctx = H.ctx ~host:"app" ~program ~pid:20 ~tid:21 () in
  let w =
    [
      H.act ~kind:Activity.Begin ~ts:base ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:400;
      H.act ~kind:Activity.Send ~ts:(base + 1_000_000) ~ctx:H.web_ctx ~flow:H.web_app_flow
        ~size:500;
      H.act ~kind:Activity.Receive ~ts:(base + 4_000_000) ~ctx:H.web_ctx
        ~flow:H.app_web_flow ~size:900;
      H.act ~kind:Activity.End_ ~ts:(base + 5_000_000) ~ctx:H.web_ctx
        ~flow:H.web_client_flow ~size:1000;
    ]
  in
  let a =
    [
      H.act ~kind:Activity.Receive ~ts:(base + 2_000_000) ~ctx:app_ctx ~flow:H.web_app_flow
        ~size:500;
      H.act ~kind:Activity.Send ~ts:(base + 3_000_000) ~ctx:app_ctx ~flow:H.app_web_flow
        ~size:900;
    ]
  in
  let logs =
    [ Trace.Log.of_list ~hostname:"web" w; Trace.Log.of_list ~hostname:"app" a ]
  in
  let engine, _ = H.correlate_raw logs in
  List.hd (Core.Cag_engine.finished engine)

let detector ?baseline config =
  Detector.create ~config ?baseline ~telemetry:(Telemetry.Registry.create ()) ()

let feed det cags = List.concat_map (Detector.observe det) cags

let healthy n ~from ~spacing = List.init n (fun i -> mk_cag ~base:(from + (i * spacing)) ())

let kinds vs = List.map (fun v -> v.Detector.kind) vs

(* ---- baseline ---- *)

let test_baseline_round_trip () =
  let cags =
    healthy 40 ~from:0 ~spacing:20_000_000
    @ List.init 10 (fun i -> mk_short_cag ~base:(800_000_000 + (i * 20_000_000)) ())
  in
  let bl = Baseline.of_paths cags in
  Alcotest.(check int) "paths" 50 bl.Baseline.total_paths;
  Alcotest.(check int) "patterns" 2 (List.length bl.Baseline.patterns);
  let top = List.hd bl.Baseline.patterns in
  Alcotest.(check string) "dominant pattern" "httpd>java>mysqld>java>httpd"
    top.Baseline.name;
  Alcotest.(check (float 1e-9)) "frequency" 0.8 top.Baseline.frequency;
  Alcotest.(check (float 1e-6)) "mean duration" 0.009 top.Baseline.mean_duration_s;
  let sum = Array.fold_left ( +. ) 0.0 top.Baseline.shares in
  Alcotest.(check (float 1e-6)) "shares sum to 1" 1.0 sum;
  Alcotest.(check bool) "throughput learned" true (bl.Baseline.throughput_rps > 0.0);
  let path = Filename.temp_file "pt_baseline" ".json" in
  (match Baseline.save bl ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  let bl' =
    match Baseline.load ~path with
    | Ok b -> b
    | Error e -> Alcotest.failf "load: %s" e
  in
  Sys.remove path;
  Alcotest.(check int) "total round-trips" bl.Baseline.total_paths bl'.Baseline.total_paths;
  Alcotest.(check (float 1e-9)) "throughput round-trips" bl.Baseline.throughput_rps
    bl'.Baseline.throughput_rps;
  List.iter2
    (fun (p : Baseline.pattern_profile) (p' : Baseline.pattern_profile) ->
      Alcotest.(check string) "signature" p.Baseline.signature p'.Baseline.signature;
      Alcotest.(check int) "count" p.Baseline.count p'.Baseline.count;
      Alcotest.(check (float 1e-9)) "frequency" p.Baseline.frequency p'.Baseline.frequency;
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-9)) "share" v p'.Baseline.shares.(i))
        p.Baseline.shares)
    bl.Baseline.patterns bl'.Baseline.patterns

let test_baseline_rejects_bad_json () =
  (match Baseline.of_json (Core.Json.Obj [ ("format", Core.Json.String "nope") ]) with
  | Ok _ -> Alcotest.fail "accepted an unknown format tag"
  | Error e -> Alcotest.(check bool) "names the tag" true (String.length e > 0));
  match Baseline.load ~path:"/nonexistent/pt_baseline.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

let test_baseline_sliding_window () =
  (* Capacity keeps only the most recent paths: early outliers age out. *)
  let drifted = List.init 30 (fun i -> mk_cag ~db_extra:(ST.ms 9) ~base:(i * 20_000_000) ()) in
  let fresh = healthy 50 ~from:600_000_000 ~spacing:20_000_000 in
  let bl = Baseline.of_paths ~capacity:50 (drifted @ fresh) in
  Alcotest.(check int) "window holds capacity" 50 bl.Baseline.total_paths;
  Alcotest.(check int) "one pattern" 1 (List.length bl.Baseline.patterns);
  let top = List.hd bl.Baseline.patterns in
  Alcotest.(check (float 1e-6)) "drifted paths aged out" 0.009 top.Baseline.mean_duration_s

(* ---- detector: share drift ---- *)

let small_config =
  {
    Detector.default_config with
    Detector.warmup_paths = 30;
    window = 10;
    min_window = 10;
  }

let test_warmup_smaller_than_window () =
  (* Arming is governed by warmup_paths even when it is smaller than the
     judging window; judging starts as soon as min_window fills. *)
  let cfg =
    { Detector.default_config with Detector.warmup_paths = 20; window = 80; min_window = 10 }
  in
  let det = detector cfg in
  let vs = feed det (healthy 20 ~from:0 ~spacing:20_000_000) in
  Alcotest.(check int) "quiet during warmup" 0 (List.length vs);
  Alcotest.(check bool) "armed after warmup" true (Detector.warmed det);
  let drifted =
    List.init 40 (fun i -> mk_cag ~db_extra:(ST.ms 9) ~base:(400_000_000 + (i * 20_000_000)) ())
  in
  let vs = feed det drifted in
  let drifts =
    List.filter (fun v -> v.Detector.kind = Detector.Share_drift) vs
  in
  (match drifts with
  | [] -> Alcotest.fail "no share-drift verdict for a 9ms db regression"
  | v :: _ -> (
      match v.Detector.culprit with
      | Some (Analysis.Tier "mysqld") -> ()
      | Some s -> Alcotest.failf "wrong culprit: %s" (Analysis.subject_label s)
      | None -> Alcotest.fail "share drift without a culprit"));
  Alcotest.(check int) "paths counted" 60 (Detector.paths_seen det)

let test_single_path_pattern_is_quiet () =
  (* A pattern seen once during warmup must neither crash the detector
     nor fire mix alarms (it is below mix_min_frequency). *)
  let cfg = { small_config with Detector.warmup_paths = 31; mix_window = 20 } in
  let det = detector cfg in
  let warm =
    healthy 30 ~from:0 ~spacing:20_000_000 @ [ mk_short_cag ~base:620_000_000 () ]
  in
  let vs = feed det warm in
  Alcotest.(check int) "quiet warmup" 0 (List.length vs);
  let vs = feed det (healthy 40 ~from:700_000_000 ~spacing:20_000_000) in
  Alcotest.(check int) "steady stream stays quiet" 0 (List.length vs)

let test_hysteresis_rearm_after_recovery () =
  let det = detector small_config in
  let t = ref 0 in
  let stream n mk = List.init n (fun _ -> let b = !t in t := b + 20_000_000; mk b) in
  let vvs = ref [] in
  let run n mk = vvs := !vvs @ feed det (stream n mk) in
  run 30 (fun b -> mk_cag ~base:b ());
  run 30 (fun b -> mk_cag ~db_extra:(ST.ms 9) ~base:b ());
  let after_first = List.length (kinds !vvs) in
  Alcotest.(check int) "one alert per sustained excursion" 1 after_first;
  run 40 (fun b -> mk_cag ~base:b ());
  run 30 (fun b -> mk_cag ~db_extra:(ST.ms 9) ~base:b ());
  let drifts =
    List.filter
      (fun v ->
        v.Detector.kind = Detector.Share_drift
        && match v.Detector.culprit with
           | Some (Analysis.Tier "mysqld") -> true
           | _ -> false)
      !vvs
  in
  Alcotest.(check int) "re-armed after recovery, fired again" 2 (List.length drifts)

let test_no_false_alarms_on_steady_stream () =
  let det = detector small_config in
  let t = ref 0 in
  let cags =
    List.init 230 (fun i ->
        (* deterministic spacing jitter, 15..25ms *)
        let b = !t in
        t := b + 15_000_000 + (i * 7 mod 11) * 1_000_000;
        mk_cag ~base:b ())
  in
  let vs = feed det cags in
  Alcotest.(check int) "faultless stream, zero verdicts" 0 (List.length vs)

(* ---- detector: pattern mix ---- *)

let test_mix_vanished_and_new () =
  let cfg =
    { small_config with Detector.warmup_paths = 40; window = 30; min_window = 30; mix_window = 20 }
  in
  let det = detector cfg in
  let t = ref 0 in
  let next () = let b = !t in t := b + 20_000_000; b in
  (* warmup: half three-tier, half two-tier *)
  let warm =
    List.init 40 (fun i ->
        if i mod 2 = 0 then mk_cag ~base:(next ()) () else mk_short_cag ~base:(next ()) ())
  in
  ignore (feed det warm);
  (* judged stream: the two-tier pattern is gone, a new program appears *)
  let stream =
    List.init 30 (fun i ->
        if i mod 2 = 0 then mk_cag ~base:(next ()) ()
        else mk_short_cag ~program:"tomcat" ~base:(next ()) ())
  in
  let vs = feed det stream in
  let has k = List.mem k (kinds vs) in
  Alcotest.(check bool) "vanished fired" true (has Detector.Pattern_vanished);
  Alcotest.(check bool) "new-pattern fired" true (has Detector.Pattern_new);
  let vanished =
    List.find (fun v -> v.Detector.kind = Detector.Pattern_vanished) vs
  in
  Alcotest.(check (option string)) "names the vanished pattern"
    (Some "httpd>java>httpd") vanished.Detector.pattern;
  let novel = List.find (fun v -> v.Detector.kind = Detector.Pattern_new) vs in
  Alcotest.(check (option string)) "names the new pattern"
    (Some "httpd>tomcat>httpd") novel.Detector.pattern;
  (* hysteresis: sustained, so each fires exactly once *)
  Alcotest.(check int) "vanished fires once" 1
    (List.length (List.filter (( = ) Detector.Pattern_vanished) (kinds vs)));
  Alcotest.(check int) "new fires once" 1
    (List.length (List.filter (( = ) Detector.Pattern_new) (kinds vs)))

(* ---- detector: latency shift ---- *)

let test_latency_shift_without_share_drift () =
  (* Stretching every component uniformly keeps the share profile intact:
     only the latency-shift detector may fire, and the verdict carries no
     misleading share culprit. *)
  let det = detector small_config in
  ignore (feed det (healthy 30 ~from:0 ~spacing:20_000_000));
  let slow =
    List.init 15 (fun i -> mk_cag ~stretch:3 ~base:(600_000_000 + (i * 20_000_000)) ())
  in
  let vs = feed det slow in
  Alcotest.(check bool) "latency shift fired" true
    (List.mem Detector.Latency_shift (kinds vs));
  Alcotest.(check int) "no share drift" 0
    (List.length (List.filter (( = ) Detector.Share_drift) (kinds vs)));
  let v = List.find (fun v -> v.Detector.kind = Detector.Latency_shift) vs in
  Alcotest.(check bool) "observed above baseline" true
    (v.Detector.observed_value > 2.0 *. v.Detector.baseline_value)

(* ---- detector: throughput ---- *)

let test_throughput_drop () =
  let cfg = { small_config with Detector.throughput_window_s = 1.0 } in
  let det = detector cfg in
  ignore (feed det (healthy 30 ~from:0 ~spacing:10_000_000));
  (* 100 paths/s learned; the stream collapses to 5/s *)
  let slow = healthy 30 ~from:600_000_000 ~spacing:200_000_000 in
  let vs = feed det slow in
  let drops = List.filter (( = ) Detector.Throughput_drop) (kinds vs) in
  Alcotest.(check int) "one drop verdict while sustained" 1 (List.length drops)

(* ---- scorer ---- *)

let mk_verdict ?(culprit = None) ~at_s () =
  {
    Detector.at = ST.add ST.zero (ST.span_of_float_s at_s);
    kind = Detector.Share_drift;
    pattern = Some "httpd>java>mysqld>java>httpd";
    culprit;
    baseline_value = 0.0;
    observed_value = 0.15;
    reason = "synthetic";
    paths_seen = 100;
  }

let test_scorer_mapping () =
  let reg = Telemetry.Registry.create () in
  let onset = ST.add ST.zero (ST.span_of_float_s 8.0) in
  let hit = mk_verdict ~culprit:(Some (Analysis.Tier "java")) ~at_s:10.0 () in
  let s = Verdict.score ~telemetry:reg ~fault:Faults.ejb_delay ~onset [ hit ] in
  Alcotest.(check bool) "detected" true s.Verdict.detected;
  Alcotest.(check bool) "correct culprit" true s.Verdict.correct;
  Alcotest.(check (option (float 1e-9))) "ttd" (Some 2.0) s.Verdict.time_to_detection_s;
  Alcotest.(check (option string)) "culprit label" (Some "tier java")
    s.Verdict.first_culprit;
  Alcotest.(check int) "no false alarms" 0 s.Verdict.false_alarms;
  (* same verdict, wrong fault: detected but not correct *)
  let s = Verdict.score ~telemetry:reg ~fault:Faults.database_lock ~onset [ hit ] in
  Alcotest.(check bool) "detected" true s.Verdict.detected;
  Alcotest.(check bool) "tier java does not explain a db lock" false s.Verdict.correct;
  (* network fault accepts both the tier network and adjacent interactions *)
  let net c = Verdict.score ~telemetry:reg ~fault:Faults.ejb_network ~onset [ mk_verdict ~culprit:(Some c) ~at_s:9.0 () ] in
  Alcotest.(check bool) "tier_network java accepted" true
    (net (Analysis.Tier_network "java")).Verdict.correct;
  Alcotest.(check bool) "adjacent interaction accepted" true
    (net (Analysis.Interaction { src = "mysqld"; dst = "java" })).Verdict.correct;
  Alcotest.(check bool) "unrelated interaction rejected" false
    (net (Analysis.Interaction { src = "httpd"; dst = "httpd" })).Verdict.correct;
  (* pre-onset verdicts are false alarms *)
  let early = mk_verdict ~culprit:(Some (Analysis.Tier "java")) ~at_s:5.0 () in
  let s = Verdict.score ~telemetry:reg ~fault:Faults.ejb_delay ~onset [ early; hit ] in
  Alcotest.(check int) "early verdict is a false alarm" 1 s.Verdict.false_alarms;
  Alcotest.(check bool) "still correct" true s.Verdict.correct;
  (* control runs: any verdict is a false alarm and sinks correctness *)
  let s = Verdict.score ~telemetry:reg [ hit ] in
  Alcotest.(check bool) "control with verdicts is incorrect" false s.Verdict.correct;
  Alcotest.(check int) "all false alarms" 1 s.Verdict.false_alarms;
  let s = Verdict.score ~telemetry:reg [] in
  Alcotest.(check bool) "silent control is correct" true s.Verdict.correct

(* ---- live end to end ---- *)

let live_spec name faults =
  { S.default with S.name; clients = 50; time_scale = 0.05; faults }

let test_live_detects_mid_run_fault () =
  let reg = Telemetry.Registry.create () in
  let r = Diagnose.Live.run ~telemetry:reg (live_spec "live-ejb" [ Faults.ejb_delay ]) in
  let s = r.Diagnose.Live.score in
  Alcotest.(check bool) "paths watched" true (r.Diagnose.Live.paths_fed > 100);
  Alcotest.(check bool) "baseline learned" true
    (Option.is_some r.Diagnose.Live.baseline);
  Alcotest.(check bool) "detected" true s.Verdict.detected;
  Alcotest.(check bool) "correct culprit" true s.Verdict.correct;
  Alcotest.(check (option string)) "names the app tier" (Some "tier java")
    s.Verdict.first_culprit;
  Alcotest.(check int) "no false alarms" 0 s.Verdict.false_alarms;
  Alcotest.(check bool) "ttd reported" true
    (Option.is_some s.Verdict.time_to_detection_s);
  (* every detector decision reports into the diagnosis telemetry *)
  let families = Telemetry.Registry.snapshot reg in
  (match Telemetry.Registry.find_sample families "pt_diagnose_paths_total" with
  | Some (Telemetry.Registry.Counter n) ->
      Alcotest.(check bool) "paths counted" true (n > 0)
  | _ -> Alcotest.fail "pt_diagnose_paths_total missing");
  let has_alert =
    List.exists
      (fun (f : Telemetry.Registry.family) ->
        String.equal f.Telemetry.Registry.name "pt_diagnose_alerts_total"
        && f.Telemetry.Registry.samples <> [])
      families
  in
  Alcotest.(check bool) "alerts counted with labels" true has_alert

let test_live_control_is_silent () =
  let reg = Telemetry.Registry.create () in
  let r = Diagnose.Live.run ~telemetry:reg (live_spec "live-control" []) in
  let s = r.Diagnose.Live.score in
  Alcotest.(check int) "zero verdicts" 0 (List.length r.Diagnose.Live.verdicts);
  Alcotest.(check bool) "control scored correct" true s.Verdict.correct;
  Alcotest.(check int) "zero false alarms" 0 s.Verdict.false_alarms

let () =
  Alcotest.run "diagnose"
    [
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "bad json rejected" `Quick test_baseline_rejects_bad_json;
          Alcotest.test_case "sliding window" `Quick test_baseline_sliding_window;
        ] );
      ( "detector",
        [
          Alcotest.test_case "warmup smaller than window" `Quick
            test_warmup_smaller_than_window;
          Alcotest.test_case "single-path pattern quiet" `Quick
            test_single_path_pattern_is_quiet;
          Alcotest.test_case "hysteresis re-arms after recovery" `Quick
            test_hysteresis_rearm_after_recovery;
          Alcotest.test_case "steady stream, zero verdicts" `Quick
            test_no_false_alarms_on_steady_stream;
          Alcotest.test_case "mix: vanished and new patterns" `Quick
            test_mix_vanished_and_new;
          Alcotest.test_case "latency shift without share drift" `Quick
            test_latency_shift_without_share_drift;
          Alcotest.test_case "throughput drop" `Quick test_throughput_drop;
        ] );
      ( "scorer",
        [ Alcotest.test_case "fault-to-culprit mapping" `Quick test_scorer_mapping ] );
      ( "live",
        [
          Alcotest.test_case "mid-run fault named live" `Quick
            test_live_detects_mid_run_fault;
          Alcotest.test_case "faultless control silent" `Quick
            test_live_control_is_silent;
        ] );
    ]
