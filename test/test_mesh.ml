(* End-to-end tests for the declarative mesh subsystem: the adversarial
   scenario presets must correlate at paper-grade accuracy (serial and
   sharded byte-identically) while actually exhibiting their advertised
   pattern mix — retried duplicate flows, cache hit/miss branching, a hot
   partition, a slow canary, a synchronized herd — and the accuracy
   property must hold at exactly 1.0 over random DAG topologies with
   concurrent fan-out and cache branching, not just sequential trees. *)

module P = Mesh.Presets
module Spec = Mesh.Spec
module Runtime = Mesh.Runtime
module ST = Simnet.Sim_time
module GT = Trace.Ground_truth

let qtest = QCheck_alcotest.to_alcotest
let run name = P.run ~jobs:2 name

let check_quality ?(floor = 0.95) (r : P.report) =
  if r.P.accuracy < floor then
    Alcotest.failf "%s: accuracy %.4f below %.2f (%d/%d, fp %d, fn %d)" r.preset
      r.accuracy floor r.correct r.total_requests r.false_positives
      r.false_negatives;
  Alcotest.(check bool) (r.preset ^ ": serial == sharded") true r.sharded_identical

let test_control () =
  let r = run "control" in
  check_quality ~floor:1.0 r;
  Alcotest.(check int) "faultless control: no false positives" 0 r.false_positives;
  Alcotest.(check int) "no retries without faults" 0 r.retries;
  Alcotest.(check bool) "cache hits seen" true (r.cache_hits > 0);
  Alcotest.(check bool) "cache misses seen" true (r.cache_misses > 0);
  Alcotest.(check bool) "async jobs acked" true (r.async_jobs > 0);
  Alcotest.(check bool) "hit/miss paths give several patterns" true (r.patterns >= 2)

let test_cascading_failure () =
  let r = run "cascading_failure" in
  check_quality r;
  Alcotest.(check bool) "timeouts fired retries" true (r.retries > 0);
  (* A retried duplicate flow lands a second visit on the same host
     (fresh connection, fresh context) inside one correlated path. *)
  let spec = Option.get (P.spec_of ~seed:P.default_seed "cascading_failure") in
  let _, s = Runtime.run ~jobs:1 spec in
  let has_duplicate_host cag =
    let visits = Core.Accuracy.visits_of_cag cag in
    let hosts = List.map (fun (v : GT.visit) -> v.context.Trace.Activity.host) visits in
    List.length hosts > List.length (List.sort_uniq compare hosts)
  in
  Alcotest.(check bool) "some path carries a retried duplicate flow" true
    (List.exists has_duplicate_host s.Runtime.result.Core.Correlator.cags)

let test_hotspot_key () =
  let r = run "hotspot_key" in
  check_quality r;
  Alcotest.(check bool) "skew forces misses past hits" true
    (r.cache_misses > r.cache_hits);
  let served h = try List.assoc h r.served with Not_found -> 0 in
  (* hot key 93 -> partition 93 mod 2 = 1 -> host db2. *)
  Alcotest.(check bool) "db2 is the hot partition" true
    (served "db2" > 2 * served "db1")

let test_canary_slow_version () =
  let r = run "canary_slow_version" in
  check_quality r;
  let served h = try List.assoc h r.served with Not_found -> 0 in
  Alcotest.(check bool) "round-robin reaches every api replica" true
    (served "api1" > 0 && served "api2" > 0 && served "api3" > 0);
  (* The canary (api replica 2 = host api3) runs 6x slow: its oracle
     visit durations must dominate a healthy replica's. *)
  let spec = Option.get (P.spec_of ~seed:P.default_seed "canary_slow_version") in
  let b, _ = Runtime.run ~jobs:1 spec in
  let mean_visit host =
    let tot = ref 0.0 and n = ref 0 in
    List.iter
      (fun (req : GT.request) ->
        List.iter
          (fun (v : GT.visit) ->
            if String.equal v.context.Trace.Activity.host host then begin
              tot := !tot +. ST.span_to_float_s (ST.diff v.end_ts v.begin_ts);
              incr n
            end)
          req.visits)
      (GT.requests b.Runtime.gt);
    if !n = 0 then 0.0 else !tot /. float_of_int !n
  in
  let healthy = mean_visit "api1" and canary = mean_visit "api3" in
  if not (canary > 2.0 *. healthy) then
    Alcotest.failf "canary not visibly slow: api3 mean %.6fs vs api1 mean %.6fs"
      canary healthy

let test_thundering_herd () =
  let r = run "thundering_herd" in
  check_quality r;
  let spec = Option.get (P.spec_of ~seed:P.default_seed "thundering_herd") in
  Alcotest.(check bool) "every request's job reaches the worker" true
    (r.async_jobs >= spec.Spec.clients * spec.Spec.requests_per_client);
  let b, _ = Runtime.run ~jobs:1 spec in
  (* Every client fires at the same instant: the first wave's entry
     visits all begin within a few milliseconds of each other. *)
  let begins =
    List.filter_map
      (fun (req : GT.request) ->
        match req.GT.visits with [] -> None | v :: _ -> Some v.GT.begin_ts)
      (GT.requests b.Runtime.gt)
    |> List.sort ST.compare
  in
  let wave = List.filteri (fun i _ -> i < spec.Spec.clients) begins in
  match (wave, List.rev wave) with
  | first :: _, last :: _ ->
      let spread_ms = ST.span_to_float_s (ST.diff last first) *. 1e3 in
      if spread_ms > 10.0 then
        Alcotest.failf "herd not synchronized: first-wave spread %.2f ms" spread_ms
  | _ -> Alcotest.fail "no requests recorded"

let test_random_presets_perfect () =
  List.iter
    (fun name ->
      let r = run name in
      check_quality ~floor:1.0 r;
      Alcotest.(check int) (name ^ ": no false positives") 0 r.false_positives)
    [ "random"; "random_mesh" ]

(* ---- spec validation ---- *)

let mini ~tiers =
  {
    Spec.name = "mini";
    entry = "gw";
    tiers;
    clients = 1;
    requests_per_client = 1;
    think_mean = ST.ms 1;
    sync_start = false;
    keys = 100;
    request_size = 64;
    chunk = 4096;
    faults = [];
    seed = 1;
  }

let rejects what spec =
  match Spec.validate spec with
  | () -> Alcotest.failf "%s: validation should have failed" what
  | exception Invalid_argument _ -> ()

let test_validation () =
  rejects "cycle"
    (mini
       ~tiers:
         [
           Spec.tier "gw" ~calls:[ Spec.group [ "a" ] ];
           Spec.tier "a" ~calls:[ Spec.group [ "b" ] ];
           Spec.tier "b" ~calls:[ Spec.group [ "a" ] ];
         ]);
  rejects "call to entry"
    (mini
       ~tiers:
         [
           Spec.tier "gw" ~calls:[ Spec.group [ "a" ] ];
           Spec.tier "a" ~calls:[ Spec.group [ "gw" ] ];
         ]);
  rejects "self call" (mini ~tiers:[ Spec.tier "gw" ~calls:[ Spec.group [ "gw" ] ] ]);
  rejects "undeclared target"
    (mini ~tiers:[ Spec.tier "gw" ~calls:[ Spec.group [ "x" ] ] ]);
  rejects "cache with calls"
    (mini
       ~tiers:
         [
           Spec.tier "gw" ~calls:[ Spec.group [ "c" ] ];
           Spec.tier "c"
             ~role:(Spec.Cache { hit_ratio = 0.5; backing = "d"; backing_retry = None })
             ~calls:[ Spec.group [ "d" ] ];
           Spec.tier "d";
         ]);
  (* the reference preset itself must validate *)
  Spec.validate (Option.get (P.spec_of ~seed:1 "control"))

let test_verdict_expectations () =
  let module V = Diagnose.Verdict in
  let module A = Core.Analysis in
  let accepts fault subject =
    match V.expectation_of fault with
    | None -> false
    | Some e -> e.V.accepts subject
  in
  let f = Tiersim.Faults.tier_slow ~tier:"db" ~factor:10.0 in
  Alcotest.(check bool) "tier_slow names its tier" true (accepts f (A.Tier "db"));
  Alcotest.(check bool) "tier_slow rejects others" false (accepts f (A.Tier "api"));
  let f = Tiersim.Faults.replica_slow ~tier:"api" ~replica:2 ~factor:6.0 in
  Alcotest.(check bool) "replica_slow names its tier" true (accepts f (A.Tier "api"));
  let f = Tiersim.Faults.key_skew ~tier:"db" ~hot_key:93 ~share:0.8 in
  Alcotest.(check bool) "key_skew names the partitioned tier" true
    (accepts f (A.Tier "db"));
  Alcotest.(check bool) "key_skew accepts interactions into it" true
    (accepts f (A.Interaction { src = "cache"; dst = "db" }))

let test_shared_naming () =
  (* One allocation scheme: the cluster presets and the mesh agree on
     replica-suffix hostnames through Tiersim.Naming. *)
  Alcotest.(check (list string))
    "cluster hostnames" [ "web1"; "app1"; "db1" ]
    (Tiersim.Service.replica_server_hostnames ~replica:0);
  Alcotest.(check string) "mesh replica host" "api3"
    (Tiersim.Naming.replica_host ~tier:"api" ~index:2);
  let b = Runtime.build (Option.get (P.spec_of ~seed:1 "control")) in
  Alcotest.(check bool) "mesh hosts use the shared scheme" true
    (List.mem "api3" b.Runtime.hostnames && List.mem "db2" b.Runtime.hostnames)

(* ---- properties ---- *)

let prop_random_meshes_perfect =
  QCheck.Test.make
    ~name:"100% accuracy on random DAGs with concurrency and caches" ~count:15
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let spec = Spec.random ~seed () in
      (* the generator must actually produce the stress patterns *)
      let has_concurrent =
        List.exists
          (fun (t : Spec.tier) ->
            List.exists
              (fun (g : Spec.call_group) ->
                g.mode = Spec.Concurrent && List.length g.targets >= 2)
              t.calls)
          spec.Spec.tiers
      in
      let _, s = Runtime.run ~jobs:1 spec in
      has_concurrent
      && s.Runtime.verdict.Core.Accuracy.accuracy = 1.0
      && s.verdict.false_positives = 0
      && s.result.Core.Correlator.deformed = [])

let prop_presets_hold_across_seeds =
  QCheck.Test.make ~name:"presets stay above the gate floor at any seed" ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed ->
      List.for_all
        (fun name ->
          let r = P.run ~jobs:2 ~seed name in
          r.P.accuracy >= 0.95 && r.sharded_identical)
        [ "cascading_failure"; "hotspot_key"; "canary_slow_version" ])

let () =
  Alcotest.run "mesh"
    [
      ( "presets",
        [
          Alcotest.test_case "control: perfect and clean" `Quick test_control;
          Alcotest.test_case "cascading failure: retry storms" `Quick
            test_cascading_failure;
          Alcotest.test_case "hotspot key: one partition hammered" `Quick
            test_hotspot_key;
          Alcotest.test_case "canary: one slow replica behind the lb" `Quick
            test_canary_slow_version;
          Alcotest.test_case "thundering herd: synchronized burst" `Quick
            test_thundering_herd;
          Alcotest.test_case "random presets correlate perfectly" `Quick
            test_random_presets_perfect;
        ] );
      ( "spec",
        [
          Alcotest.test_case "validation rejects bad graphs" `Quick test_validation;
          Alcotest.test_case "verdict expectations for mesh faults" `Quick
            test_verdict_expectations;
          Alcotest.test_case "shared naming scheme" `Quick test_shared_naming;
        ] );
      ( "properties",
        [ qtest prop_random_meshes_perfect; qtest prop_presets_hold_across_seeds ] );
    ]
