(* Tests for the analysis layer: critical-path latency, patterns, average
   causal paths, accuracy scoring, profile diagnosis and reports. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Cag = Core.Cag
module Latency = Core.Latency
module Pattern = Core.Pattern
module Aggregate = Core.Aggregate
module Accuracy = Core.Accuracy
module Analysis = Core.Analysis
module Report = Core.Report
module Ground_truth = Trace.Ground_truth
module Sim_time = Simnet.Sim_time

let one_cag ?base ?askew ?dskew () =
  let logs = H.logs_of_request ?base ?askew ?dskew () in
  let engine, _ = H.correlate_raw logs in
  match Core.Cag_engine.finished engine with
  | [ cag ] -> cag
  | _ -> Alcotest.fail "expected one CAG"

(* ---- Latency ---- *)

let test_critical_path_chain () =
  let cag = one_cag () in
  let hops = Latency.critical_path cag in
  let labels = List.map (fun h -> Latency.component_label h.Latency.comp) hops in
  Alcotest.(check (list string)) "the paper's hop sequence"
    [
      "httpd2httpd"; "httpd2java"; "java2java"; "java2mysqld"; "mysqld2mysqld";
      "mysqld2java"; "java2java"; "java2httpd"; "httpd2httpd";
    ]
    labels

let test_breakdown_sums_to_duration () =
  let cag = one_cag () in
  let parts = Latency.breakdown cag in
  let total = List.fold_left (fun acc (_, s) -> acc + Sim_time.span_ns s) 0 parts in
  Alcotest.(check int) "telescoping sum" (Sim_time.span_ns (Cag.duration cag)) total

let test_breakdown_sums_under_skew () =
  (* Cross-node skews cancel along round trips; the sum stays skew-free. *)
  let cag = one_cag ~askew:123_000 ~dskew:(-456_000) () in
  let parts = Latency.breakdown cag in
  let total = List.fold_left (fun acc (_, s) -> acc + Sim_time.span_ns s) 0 parts in
  Alcotest.(check int) "still telescopes" (Sim_time.span_ns (Cag.duration cag)) total

let test_percentages_sum_to_one () =
  let cag = one_cag () in
  let pcts = Latency.percentages (Latency.breakdown cag) in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 pcts in
  Alcotest.(check (float 1e-9)) "100%" 1.0 total

let test_normalize_programs () =
  let cag = one_cag () in
  let normalize p = if String.equal p "mysqld" then "db" else p in
  let hops = Latency.critical_path ~normalize cag in
  let has_db =
    List.exists (fun h -> String.equal (Latency.component_label h.Latency.comp) "java2db") hops
  in
  Alcotest.(check bool) "normalized label" true has_db

let test_unfinished_rejected () =
  let root =
    Cag.Builder.fresh_vertex
      (H.act ~kind:Activity.Begin ~ts:0 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1)
  in
  let cag = Cag.Builder.create ~cag_id:99 root in
  match Latency.critical_path cag with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unfinished CAG accepted"

(* ---- Pattern ---- *)

let test_isomorphic_same_signature () =
  let a = one_cag ~base:0 () in
  let b = one_cag ~base:50_000_000 () in
  Alcotest.(check string) "same signature" (Pattern.signature_of a) (Pattern.signature_of b)

let test_pattern_name () =
  let cag = one_cag () in
  Alcotest.(check string) "route" "httpd>java>mysqld>java>httpd" (Pattern.name_of cag)

let test_different_shapes_different_patterns () =
  (* Drop the db call: web->app->web only. *)
  let w =
    [
      H.act ~kind:Activity.Begin ~ts:0 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:400;
      H.act ~kind:Activity.Send ~ts:1_000 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:500;
      H.act ~kind:Activity.Receive ~ts:8_000 ~ctx:H.web_ctx ~flow:H.app_web_flow ~size:2000;
      H.act ~kind:Activity.End_ ~ts:9_000 ~ctx:H.web_ctx ~flow:H.web_client_flow ~size:2400;
    ]
  in
  let a =
    [
      H.act ~kind:Activity.Receive ~ts:2_000 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:500;
      H.act ~kind:Activity.Send ~ts:7_000 ~ctx:H.app_ctx ~flow:H.app_web_flow ~size:2000;
    ]
  in
  let logs = [ Trace.Log.of_list ~hostname:"web" w; Trace.Log.of_list ~hostname:"app" a ] in
  let engine, _ = H.correlate_raw logs in
  let short = List.hd (Core.Cag_engine.finished engine) in
  let long = one_cag () in
  Alcotest.(check bool) "different signatures" false
    (String.equal (Pattern.signature_of short) (Pattern.signature_of long));
  let patterns = Pattern.classify [ short; long; one_cag ~base:1_000_000 () ] in
  Alcotest.(check int) "two patterns" 2 (List.length patterns);
  Alcotest.(check int) "largest first" 2 (Pattern.count (List.hd patterns))

let test_signature_ignores_pids_sizes () =
  (* Same shape with different pids/ports/sizes is the same pattern. *)
  let remap (a : Activity.t) =
    let c = a.context in
    {
      a with
      Activity.context = { c with Activity.pid = c.pid + 1000; tid = c.tid + 1000 };
      message = { a.message with size = a.message.size * 2 };
    }
  in
  let logs =
    List.map
      (fun log ->
        Trace.Log.of_list ~hostname:(Trace.Log.hostname log)
          (List.map remap (Trace.Log.to_list log)))
      (H.logs_of_request ())
  in
  let engine, _ = H.correlate_raw logs in
  let other = List.hd (Core.Cag_engine.finished engine) in
  Alcotest.(check string) "pids/sizes abstracted" (Pattern.signature_of (one_cag ()))
    (Pattern.signature_of other)

(* ---- Aggregate ---- *)

let test_average_path () =
  let cags = [ one_cag ~base:0 (); one_cag ~base:20_000_000 (); one_cag ~base:40_000_000 () ] in
  match Pattern.classify cags with
  | [ p ] ->
      let avg = Aggregate.of_pattern p in
      Alcotest.(check int) "count" 3 avg.Aggregate.count;
      Alcotest.(check (float 1e-9)) "mean total (identical members)" 0.009 avg.mean_total_s;
      let pcts = Aggregate.component_percentages avg in
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 pcts in
      Alcotest.(check (float 1e-9)) "percentages sum" 1.0 total;
      Alcotest.(check int) "7 components" 7 (List.length pcts)
  | _ -> Alcotest.fail "one pattern"

let test_average_path_variance () =
  (* Construct two CAGs whose db time differs; std must be positive there. *)
  let slow_db =
    let w, a, d = H.simple_request ~base:50_000_000 () in
    let d =
      List.map
        (fun (x : Activity.t) ->
          if Activity.equal_kind x.kind Activity.Send then
            { x with Activity.timestamp = Sim_time.add x.timestamp (Sim_time.ms 2) }
          else x)
        d
    in
    [
      Trace.Log.of_list ~hostname:"web" w;
      Trace.Log.of_list ~hostname:"app" a;
      Trace.Log.of_list ~hostname:"db" d;
    ]
  in
  let engine, _ = H.correlate_raw slow_db in
  let slow = List.hd (Core.Cag_engine.finished engine) in
  match Pattern.classify [ one_cag (); slow ] with
  | [ p ] ->
      let avg = Aggregate.of_pattern p in
      let db_hop =
        List.find
          (fun h -> String.equal (Latency.component_label h.Aggregate.comp) "mysqld2mysqld")
          avg.Aggregate.hops
      in
      Alcotest.(check bool) "std positive" true (db_hop.Aggregate.std_s > 0.0)
  | _ -> Alcotest.fail "one pattern"

let test_tail_percentiles () =
  (* 9 fast paths and 1 with a 5ms-slower db hop: the db hop's max and the
     total's tail must surface it, while p50 stays fast. *)
  let fast = List.init 9 (fun i -> one_cag ~base:(i * 20_000_000) ()) in
  let slow =
    (* the db result send and everything after it slip by 5ms *)
    let shift_from idx l =
      List.mapi
        (fun i (x : Activity.t) ->
          if i >= idx then { x with Activity.timestamp = Sim_time.add x.timestamp (Sim_time.ms 5) }
          else x)
        l
    in
    let w, a, d = H.simple_request ~base:200_000_000 () in
    let logs =
      [
        Trace.Log.of_list ~hostname:"web" (shift_from 2 w);
        Trace.Log.of_list ~hostname:"app" (shift_from 2 a);
        Trace.Log.of_list ~hostname:"db" (shift_from 1 d);
      ]
    in
    let engine, _ = H.correlate_raw logs in
    List.hd (Core.Cag_engine.finished engine)
  in
  match Pattern.classify (fast @ [ slow ]) with
  | [ p ] ->
      let tails = Aggregate.hop_tails p in
      let db =
        List.find
          (fun h ->
            String.equal (Latency.component_label h.Aggregate.tail_comp) "mysqld2mysqld")
          tails
      in
      Alcotest.(check (float 1e-9)) "db p50 is the fast value" 0.001 db.Aggregate.p50_s;
      Alcotest.(check (float 1e-9)) "db max catches the straggler" 0.006 db.tail_max_s;
      Alcotest.(check bool) "monotone percentiles" true
        (db.p50_s <= db.p90_s && db.p90_s <= db.p99_s && db.p99_s <= db.tail_max_s);
      let tt = Aggregate.total_tail p in
      Alcotest.(check (float 1e-9)) "total p50" 0.009 tt.Aggregate.t_p50_s;
      Alcotest.(check (float 1e-9)) "total max" 0.014 tt.t_max_s;
      let rendered = Format.asprintf "%a" Aggregate.pp_tails p in
      Alcotest.(check bool) "pp_tails mentions the component" true
        (H.contains rendered "mysqld2mysqld")
  | _ -> Alcotest.fail "one pattern"

let test_tail_uniform () =
  let cags = List.init 4 (fun i -> one_cag ~base:(i * 20_000_000) ()) in
  match Pattern.classify cags with
  | [ p ] ->
      let tt = Aggregate.total_tail p in
      Alcotest.(check (float 1e-9)) "uniform p50=max" tt.Aggregate.t_max_s tt.t_p50_s
  | _ -> Alcotest.fail "one pattern"

(* ---- Accuracy ---- *)

let gt_for_request ?(id = 0) cag =
  let gt = Ground_truth.create () in
  let visits = Accuracy.visits_of_cag cag in
  List.iter
    (fun (v : Ground_truth.visit) ->
      Ground_truth.begin_visit gt ~id ~kind:"T" ~context:v.context ~ts:v.begin_ts;
      Ground_truth.end_visit gt ~id ~context:v.context ~ts:v.end_ts)
    visits;
  Ground_truth.complete gt ~id;
  gt

let test_accuracy_perfect () =
  let cag = one_cag () in
  let gt = gt_for_request cag in
  let v = Accuracy.check ~ground_truth:gt [ cag ] in
  Alcotest.(check (float 0.0)) "100%" 1.0 v.Accuracy.accuracy;
  Alcotest.(check int) "no fp" 0 v.false_positives;
  Alcotest.(check int) "no fn" 0 v.false_negatives

let test_accuracy_tolerance () =
  let cag = one_cag () in
  let gt = Ground_truth.create () in
  List.iter
    (fun (v : Ground_truth.visit) ->
      (* shift the oracle by 100us: within the default 500us tolerance *)
      Ground_truth.begin_visit gt ~id:0 ~kind:"T" ~context:v.context
        ~ts:(Sim_time.add v.begin_ts (Sim_time.us 100));
      Ground_truth.end_visit gt ~id:0 ~context:v.context
        ~ts:(Sim_time.add v.end_ts (Sim_time.us 100)))
    (Accuracy.visits_of_cag cag);
  Ground_truth.complete gt ~id:0;
  let v = Accuracy.check ~ground_truth:gt [ cag ] in
  Alcotest.(check (float 0.0)) "within tolerance" 1.0 v.Accuracy.accuracy;
  let strict = Accuracy.check ~tolerance:(Sim_time.us 10) ~ground_truth:gt [ cag ] in
  Alcotest.(check (float 0.0)) "strict tolerance fails" 0.0 strict.Accuracy.accuracy;
  Alcotest.(check int) "fp counted" 1 strict.false_positives;
  Alcotest.(check int) "fn counted" 1 strict.false_negatives

let test_accuracy_wrong_context () =
  let cag = one_cag () in
  let gt = Ground_truth.create () in
  List.iteri
    (fun i (v : Ground_truth.visit) ->
      let context =
        if i = 1 then { v.context with Activity.tid = 9999 } else v.context
      in
      Ground_truth.begin_visit gt ~id:0 ~kind:"T" ~context ~ts:v.begin_ts;
      Ground_truth.end_visit gt ~id:0 ~context ~ts:v.end_ts)
    (Accuracy.visits_of_cag cag);
  Ground_truth.complete gt ~id:0;
  let v = Accuracy.check ~ground_truth:gt [ cag ] in
  Alcotest.(check (float 0.0)) "tid mismatch rejected" 0.0 v.Accuracy.accuracy

let test_accuracy_no_double_match () =
  (* Two identical derived paths cannot both claim the single request. *)
  let cag = one_cag () in
  let gt = gt_for_request cag in
  let v = Accuracy.check ~ground_truth:gt [ cag; cag ] in
  Alcotest.(check int) "one correct" 1 v.Accuracy.correct;
  Alcotest.(check int) "one fp" 1 v.false_positives

let test_accuracy_empty () =
  let gt = Ground_truth.create () in
  let v = Accuracy.check ~ground_truth:gt [] in
  Alcotest.(check (float 0.0)) "vacuous 100%" 1.0 v.Accuracy.accuracy

(* ---- Analysis ---- *)

let comp src dst = { Latency.src; dst }

let test_diagnose_tier_internal () =
  let baseline =
    [ (comp "java" "java", 0.10); (comp "httpd" "httpd", 0.40); (comp "java" "mysqld", 0.50) ]
  in
  let observed =
    [ (comp "java" "java", 0.45); (comp "httpd" "httpd", 0.25); (comp "java" "mysqld", 0.30) ]
  in
  let report = Analysis.compare_profiles ~baseline ~observed in
  (match report.Analysis.suspects with
  | s :: _ ->
      Alcotest.(check string) "tier java blamed" "tier java"
        (Analysis.subject_label s.Analysis.subject)
  | [] -> Alcotest.fail "no suspect");
  (match report.deltas with
  | d :: _ ->
      Alcotest.(check string) "largest delta first" "java2java"
        (Latency.component_label d.Analysis.comp)
  | [] -> Alcotest.fail "no deltas")

let test_diagnose_interaction () =
  let baseline = [ (comp "httpd" "java", 0.05); (comp "java" "java", 0.45) ] in
  let observed = [ (comp "httpd" "java", 0.60); (comp "java" "java", 0.15) ] in
  let report = Analysis.compare_profiles ~baseline ~observed in
  match report.Analysis.suspects with
  | s :: _ ->
      Alcotest.(check string) "interaction blamed" "interaction httpd->java"
        (Analysis.subject_label s.Analysis.subject)
  | [] -> Alcotest.fail "no suspect"

let test_diagnose_network () =
  (* The paper's EJB_Network signature: interactions around java rise,
     java2java collapses. *)
  let baseline =
    [
      (comp "java" "mysqld", 0.26); (comp "mysqld" "java", 0.37); (comp "java" "java", 0.09);
      (comp "httpd" "java", 0.01); (comp "java" "httpd", 0.04);
    ]
  in
  let observed =
    [
      (comp "java" "mysqld", 0.47); (comp "mysqld" "java", 0.37); (comp "java" "java", 0.005);
      (comp "httpd" "java", 0.02); (comp "java" "httpd", 0.08);
    ]
  in
  let report = Analysis.compare_profiles ~baseline ~observed in
  let subjects =
    List.map (fun s -> Analysis.subject_label s.Analysis.subject) report.Analysis.suspects
  in
  Alcotest.(check bool) "network of java suspected" true
    (List.mem "network of tier java" subjects)

let test_diagnose_healthy () =
  let profile = [ (comp "a" "a", 0.5); (comp "a" "b", 0.5) ] in
  let report = Analysis.compare_profiles ~baseline:profile ~observed:profile in
  Alcotest.(check int) "no suspects" 0 (List.length report.Analysis.suspects)

let test_report_render () =
  let t = Report.table ~title:"Fig. X" ~columns:[ "clients"; "value" ] in
  Report.add_row t [ "100"; Report.cell_pct 0.463 ];
  Report.add_row t [ "1000"; Report.cell_float ~decimals:1 12.345 ];
  let rendered = Report.render t in
  Alcotest.(check bool) "title" true (H.contains rendered "== Fig. X ==");
  Alcotest.(check bool) "pct cell" true (H.contains rendered "46.3%");
  Alcotest.(check bool) "float cell" true (H.contains rendered "12.3");
  let csv = Report.to_csv t in
  Alcotest.(check bool) "csv header" true (H.contains csv "clients,value");
  match Report.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "width mismatch accepted"

let () =
  Alcotest.run "analysis"
    [
      ( "latency",
        [
          Alcotest.test_case "critical path chain" `Quick test_critical_path_chain;
          Alcotest.test_case "breakdown telescopes" `Quick test_breakdown_sums_to_duration;
          Alcotest.test_case "telescopes under skew" `Quick test_breakdown_sums_under_skew;
          Alcotest.test_case "percentages sum to one" `Quick test_percentages_sum_to_one;
          Alcotest.test_case "program normalization" `Quick test_normalize_programs;
          Alcotest.test_case "unfinished rejected" `Quick test_unfinished_rejected;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "isomorphic CAGs share signature" `Quick
            test_isomorphic_same_signature;
          Alcotest.test_case "route naming" `Quick test_pattern_name;
          Alcotest.test_case "shape split" `Quick test_different_shapes_different_patterns;
          Alcotest.test_case "pids and sizes abstracted" `Quick test_signature_ignores_pids_sizes;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "average path" `Quick test_average_path;
          Alcotest.test_case "variance surfaces" `Quick test_average_path_variance;
          Alcotest.test_case "tail percentiles" `Quick test_tail_percentiles;
          Alcotest.test_case "uniform tail" `Quick test_tail_uniform;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "perfect match" `Quick test_accuracy_perfect;
          Alcotest.test_case "tolerance window" `Quick test_accuracy_tolerance;
          Alcotest.test_case "wrong context rejected" `Quick test_accuracy_wrong_context;
          Alcotest.test_case "no double matching" `Quick test_accuracy_no_double_match;
          Alcotest.test_case "empty inputs" `Quick test_accuracy_empty;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "tier internal fault" `Quick test_diagnose_tier_internal;
          Alcotest.test_case "interaction fault" `Quick test_diagnose_interaction;
          Alcotest.test_case "network fault" `Quick test_diagnose_network;
          Alcotest.test_case "healthy profile" `Quick test_diagnose_healthy;
        ] );
      ( "report",
        [ Alcotest.test_case "table rendering" `Quick test_report_render ] );
    ]
