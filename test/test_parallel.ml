(* Tests for the domain-parallel machinery: the worker pool's determinism
   and failure behaviour, registry domain-safety under concurrent updates,
   the epoch cut planner, and the PR's acceptance property — sharded
   correlation is indistinguishable from serial in everything the
   pattern/report layer shows, at any [jobs]. *)

module Pool = Parallel.Pool
module R = Telemetry.Registry
module Shard = Core.Shard
module Correlator = Core.Correlator
module Pattern = Core.Pattern
module Aggregate = Core.Aggregate
module Topo = Mesh.Random_spec
module Sim_time = Simnet.Sim_time

(* ---- pool ---- *)

let test_pool_map_ordered () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  Alcotest.(check int) "size" 4 (Pool.size p);
  let out = Pool.map p ~n:257 (fun i -> i * i) in
  Alcotest.(check int) "length" 257 (Array.length out);
  Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v) out

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  Alcotest.(check int) "size clamped to 1" 1 (Pool.size p);
  let out = Pool.map p ~n:10 (fun i -> 2 * i) in
  Array.iteri (fun i v -> Alcotest.(check int) "inline slot" (2 * i) v) out

let test_pool_map_list_order () =
  Pool.with_pool ~jobs:3 @@ fun p ->
  let xs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  Alcotest.(check (list string))
    "order preserved"
    (List.map String.uppercase_ascii xs)
    (Pool.map_list p xs String.uppercase_ascii)

let test_pool_exception_propagates () =
  match Pool.with_pool ~jobs:4 (fun p -> Pool.run p ~n:8 (fun i -> if i = 5 then failwith "task 5")) with
  | () -> Alcotest.fail "task exception swallowed"
  | exception Failure m -> Alcotest.(check string) "original exception" "task 5" m

let test_pool_reentrant_runs_inline () =
  Pool.with_pool ~jobs:2 @@ fun p ->
  (* A task mapping over its own pool must not deadlock: the inner map
     falls back to inline execution, still in index order. *)
  let out =
    Pool.map p ~n:4 (fun i ->
        Array.fold_left ( + ) 0 (Pool.map p ~n:5 (fun j -> (i * 10) + j)))
  in
  Array.iteri (fun i v -> Alcotest.(check int) "nested sum" ((i * 50) + 10) v) out

let test_default_jobs_env () =
  let old = Sys.getenv_opt "PT_JOBS" in
  let restore () = Unix.putenv "PT_JOBS" (Option.value old ~default:"") in
  Fun.protect ~finally:restore @@ fun () ->
  Unix.putenv "PT_JOBS" "3";
  Alcotest.(check int) "PT_JOBS=3" 3 (Pool.default_jobs ());
  Unix.putenv "PT_JOBS" "200";
  Alcotest.(check int) "clamped to 64" 64 (Pool.default_jobs ());
  Unix.putenv "PT_JOBS" "0";
  Alcotest.(check bool) "0 falls back" true (Pool.default_jobs () >= 1);
  Unix.putenv "PT_JOBS" "many";
  Alcotest.(check bool) "garbage falls back" true (Pool.default_jobs () >= 1)

(* ---- registry domain-safety ---- *)

let counter_total snap name =
  match R.find_sample snap name with
  | Some (R.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> 0

let test_counter_concurrent_exact () =
  let reg = R.create () in
  let c = R.counter reg "t_hammer_total" in
  Pool.with_pool ~jobs:4 (fun p ->
      Pool.run p ~n:4 (fun _ ->
          for _ = 1 to 10_000 do
            R.incr c
          done));
  Alcotest.(check int) "no lost increments" 40_000 (R.counter_value c)

let test_histogram_concurrent_exact () =
  let reg = R.create () in
  let h = R.histogram reg "t_hist_seconds" in
  Pool.with_pool ~jobs:4 (fun p ->
      Pool.run p ~n:4 (fun d ->
          for i = 1 to 1_000 do
            R.observe h (float_of_int ((d * 1_000) + i))
          done));
  match R.find_sample (R.snapshot reg) "t_hist_seconds" with
  | Some (R.Hist { count; max_v; _ }) ->
      Alcotest.(check int) "no lost observations" 4_000 count;
      Alcotest.(check (float 0.0)) "max observed" 4_000.0 max_v
  | Some _ | None -> Alcotest.fail "histogram sample missing"

let test_gauge_set_max_concurrent () =
  let reg = R.create () in
  let g = R.gauge reg "t_peak" in
  Pool.with_pool ~jobs:4 (fun p ->
      Pool.run p ~n:64 (fun i -> R.set_max g (float_of_int i)));
  Alcotest.(check (float 0.0)) "high-water mark survives races" 63.0 (R.gauge_value g)

(* ---- epoch planner ---- *)

(* Run a random topology and hand back its correlator config + raw logs.
   Skews stay small so the merged feed has genuine quiescent instants;
   skew larger than the inter-request gaps collapses the plan to one
   epoch (covered separately below). *)
let build_case spec =
  let b = Topo.build spec in
  Simnet.Engine.run b.Topo.engine;
  let transform = Core.Transform.config ~entry_points:[ b.Topo.entry ] () in
  let cfg = Correlator.config ~transform ~window:(Sim_time.ms 5) () in
  (cfg, Trace.Probe.logs b.Topo.probe)

let quiet_spec = { Topo.default_spec with Topo.max_skew = Sim_time.ms 1 }

let test_plan_multi_epoch_cover () =
  let cfg, logs = build_case quiet_spec in
  let plan = Shard.plan cfg logs in
  Alcotest.(check bool)
    (Printf.sprintf "%d cut candidates" (Shard.cut_candidates plan))
    true
    (Shard.cut_candidates plan > 0);
  let ranges = Shard.epoch_ranges plan in
  Alcotest.(check bool)
    (Printf.sprintf "%d epochs" (Array.length ranges))
    true
    (Array.length ranges >= 2);
  let lo0, _ = ranges.(0) in
  Alcotest.(check int) "covers from index 0" 0 lo0;
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) "non-empty epoch" true (lo < hi);
      if i > 0 then begin
        let _, prev_hi = ranges.(i - 1) in
        Alcotest.(check int) "contiguous with predecessor" prev_hi lo
      end)
    ranges

let test_plan_degrades_to_one_epoch () =
  (* A margin longer than the whole run admits no cut: the planner must
     degrade to a single epoch, and sharded correlation (serial fallback)
     must still match serial output exactly. *)
  let cfg, logs = build_case quiet_spec in
  let margin = Sim_time.ms 60_000 in
  let plan = Shard.plan ~cut_margin:margin cfg logs in
  Alcotest.(check int) "single epoch" 1 (Array.length (Shard.epoch_ranges plan));
  let serial = Correlator.correlate ~telemetry:(R.create ()) cfg logs in
  let sharded = Shard.correlate ~telemetry:(R.create ()) ~jobs:4 ~cut_margin:margin cfg logs in
  Alcotest.(check string) "fallback identical" (Shard.digest serial) (Shard.digest sharded)

(* ---- sharded = serial ---- *)

(* Counters whose totals must be identical between the serial pipeline and
   the merged per-epoch runs: they count feed records and output structure,
   both of which the epoch cuts partition exactly. Deliberately absent:
   pt_engine_thread_reuse_blocked_total (serial carries cmap entries across
   epoch boundaries — documented in shard.mli), pt_engine_evicted_sends_total
   (GC cadence), forced fetch/discard counts (a per-epoch ranker drains its
   tail by forcing where serial's watermark advances normally), and every
   gauge/peak (per-domain maxima). *)
let invariant_counters =
  [
    "pt_correlator_activities_total";
    "pt_correlator_commits_total";
    "pt_correlator_paths_total";
    "pt_ranker_fetched_total";
    "pt_ranker_candidates_total";
    "pt_ranker_noise_discarded_total";
    "pt_engine_cags_started_total";
    "pt_engine_cags_finished_total";
    "pt_engine_send_merges_total";
    "pt_engine_end_merges_total";
    "pt_engine_receive_merges_total";
    "pt_engine_orphans_total";
  ]

let pattern_populations result =
  Pattern.classify result.Correlator.cags
  |> List.map (fun p -> (p.Pattern.name, Pattern.count p))

let pattern_breakdowns result =
  Pattern.classify result.Correlator.cags
  |> List.map (fun p ->
         Aggregate.component_percentages (Aggregate.of_pattern p)
         |> List.map (fun ((comp : Core.Latency.component), share) ->
                Printf.sprintf "%s>%s=%.9f" comp.Core.Latency.src comp.Core.Latency.dst share))

let check_shard_equals_serial ~jobs_list spec =
  let cfg, logs = build_case spec in
  let reg_s = R.create () in
  let serial = Correlator.correlate ~telemetry:reg_s cfg logs in
  let snap_s = R.snapshot reg_s in
  let tag fmt = Printf.sprintf ("seed %d: " ^^ fmt) spec.Topo.seed in
  List.iter
    (fun jobs ->
      let reg_p = R.create () in
      let sharded = Shard.correlate ~telemetry:reg_p ~jobs cfg logs in
      Alcotest.(check string)
        (tag "digest at jobs=%d" jobs)
        (Shard.digest serial) (Shard.digest sharded);
      Alcotest.(check (list (pair string int)))
        (tag "pattern populations at jobs=%d" jobs)
        (pattern_populations serial) (pattern_populations sharded);
      Alcotest.(check (list (list string)))
        (tag "per-pattern breakdowns at jobs=%d" jobs)
        (pattern_breakdowns serial) (pattern_breakdowns sharded);
      let snap_p = R.snapshot reg_p in
      List.iter
        (fun name ->
          Alcotest.(check int)
            (tag "%s at jobs=%d" name jobs)
            (counter_total snap_s name) (counter_total snap_p name))
        invariant_counters)
    jobs_list

let test_sharded_equals_serial () =
  check_shard_equals_serial ~jobs_list:[ 1; 2; 4 ] quiet_spec

let test_sharded_equals_serial_skewed () =
  (* Heavy skew shuffles the merged feed and starves the planner of cuts;
     whatever plan emerges, the output must not change. *)
  check_shard_equals_serial ~jobs_list:[ 4 ]
    { Topo.default_spec with Topo.max_skew = Sim_time.ms 50; seed = 5 }

let prop_sharded_equals_serial =
  QCheck.Test.make ~name:"random topologies: sharded = serial at jobs 2 and 4" ~count:4
    QCheck.(triple (int_range 1 500) (int_range 2 4) QCheck.bool)
    (fun (seed, tiers, small_chunks) ->
      let spec =
        {
          quiet_spec with
          Topo.seed;
          tiers;
          chunk = (if small_chunks then 700 else 4096);
        }
      in
      check_shard_equals_serial ~jobs_list:[ 2; 4 ] spec;
      true)

(* ---- percentile robustness (satellite) ---- *)

let test_percentile_drops_non_finite () =
  let arr =
    Aggregate.sorted_finite
      [ 2.0; Float.nan; 1.0; Float.infinity; 3.0; Float.neg_infinity ]
  in
  Alcotest.(check int) "non-finite dropped" 3 (Array.length arr);
  (* Before the fix, NaN sorted last and became the p99/max. *)
  Alcotest.(check (float 0.0)) "p99 is a real sample" 3.0 (Aggregate.percentile arr 0.99);
  Alcotest.(check (float 0.0)) "p50" 2.0 (Aggregate.percentile arr 0.5);
  Alcotest.(check (float 0.0)) "p0" 1.0 (Aggregate.percentile arr 0.0)

let test_percentile_degenerate_inputs () =
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "n=1 at p=%.2f" p)
        5.0
        (Aggregate.percentile [| 5.0 |] p))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check (float 0.0)) "empty is 0" 0.0 (Aggregate.percentile [||] 0.99)

(* ---- share clamping (satellite) ---- *)

let share_flags reg = counter_total (R.snapshot reg) "pt_latency_share_out_of_range_total"

let test_clamp_share_counts_out_of_range () =
  let reg = R.create () in
  Alcotest.(check (float 0.0)) "in range untouched" 0.4 (Core.Report.clamp_share ~telemetry:reg 0.4);
  Alcotest.(check int) "no flag yet" 0 (share_flags reg);
  Alcotest.(check (float 0.0)) "over clamps to 1" 1.0 (Core.Report.clamp_share ~telemetry:reg 1.5);
  Alcotest.(check (float 0.0)) "under clamps to 0" 0.0
    (Core.Report.clamp_share ~telemetry:reg (-0.2));
  Alcotest.(check (float 0.0)) "nan renders as 0" 0.0
    (Core.Report.clamp_share ~telemetry:reg Float.nan);
  Alcotest.(check int) "each clamp counted" 3 (share_flags reg);
  Alcotest.(check (float 0.0)) "0 is in range" 0.0 (Core.Report.clamp_share ~telemetry:reg 0.0);
  Alcotest.(check (float 0.0)) "1 is in range" 1.0 (Core.Report.clamp_share ~telemetry:reg 1.0);
  Alcotest.(check int) "bounds not flagged" 3 (share_flags reg)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map is index-ordered" `Quick test_pool_map_ordered;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "map_list preserves order" `Quick test_pool_map_list_order;
          Alcotest.test_case "task exception re-raised" `Quick test_pool_exception_propagates;
          Alcotest.test_case "re-entrant calls run inline" `Quick test_pool_reentrant_runs_inline;
          Alcotest.test_case "PT_JOBS honoured and clamped" `Quick test_default_jobs_env;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter exact across domains" `Quick test_counter_concurrent_exact;
          Alcotest.test_case "histogram exact across domains" `Quick
            test_histogram_concurrent_exact;
          Alcotest.test_case "gauge set_max across domains" `Quick test_gauge_set_max_concurrent;
        ] );
      ( "planner",
        [
          Alcotest.test_case "multi-epoch contiguous cover" `Quick test_plan_multi_epoch_cover;
          Alcotest.test_case "degrades to one epoch" `Quick test_plan_degrades_to_one_epoch;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "sharded = serial (jobs 1/2/4)" `Quick test_sharded_equals_serial;
          Alcotest.test_case "sharded = serial under heavy skew" `Quick
            test_sharded_equals_serial_skewed;
          QCheck_alcotest.to_alcotest prop_sharded_equals_serial;
        ] );
      ( "percentile",
        [
          Alcotest.test_case "non-finite samples dropped" `Quick test_percentile_drops_non_finite;
          Alcotest.test_case "degenerate inputs" `Quick test_percentile_degenerate_inputs;
        ] );
      ( "report",
        [
          Alcotest.test_case "clamp_share flags out-of-range" `Quick
            test_clamp_share_counts_out_of_range;
        ] );
    ]
