(* Tests for the telemetry subsystem: histogram math, registry semantics,
   exporters, and — the acceptance criteria — agreement between the mirrored
   registry counters and the legacy Ranker.stats / Cag_engine.stats records,
   both offline and through the online pipeline. *)

module H = Test_helpers.Helpers
module Hist = Telemetry.Histogram
module R = Telemetry.Registry
module Export = Telemetry.Export
module Json = Core.Json
module S = Tiersim.Scenario
module Online = Core.Online
module ST = Simnet.Sim_time

let feq = Alcotest.(check (float 1e-9))

let feq_rel name expected got =
  let tol = 1e-9 +. (abs_float expected *. 1e-9) in
  Alcotest.(check (float tol)) name expected got

(* ---- Histogram ---- *)

let test_hist_exact_stats () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 0.5; 1.5; 2.5; 10.0 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  feq "sum" 14.5 (Hist.sum h);
  feq "min" 0.5 (Hist.min_value h);
  feq "max" 10.0 (Hist.max_value h);
  feq_rel "mean" 3.625 (Hist.mean h)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  feq "sum" 0.0 (Hist.sum h);
  feq "quantile of empty" 0.0 (Hist.quantile h 0.5);
  Alcotest.(check int) "no buckets" 0 (List.length (Hist.buckets h))

let test_hist_quantile_accuracy () =
  (* With the default 16 buckets/decade the relative error of any quantile
     is bounded by one bucket ratio, 10^(1/16) - 1 ~ 15.5%. *)
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.observe h (float_of_int i /. 1000.0)
  done;
  List.iter
    (fun q ->
      let est = Hist.quantile h q in
      let rel = abs_float (est -. q) /. q in
      if rel > 0.16 then
        Alcotest.failf "q%.2f: estimate %g vs exact %g (rel %.3f)" q est q rel)
    [ 0.5; 0.9; 0.99 ];
  (* Quantiles are clamped into the observed range. *)
  let lo = Hist.quantile h 0.0001 and hi = Hist.quantile h 1.0 in
  if lo < Hist.min_value h then Alcotest.failf "quantile below min: %g" lo;
  if hi > Hist.max_value h then Alcotest.failf "quantile above max: %g" hi

let test_hist_buckets_cumulative () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 0.001; 0.01; 0.01; 0.1; 1.0; 1.0; 1.0 ];
  let buckets = Hist.buckets h in
  Alcotest.(check bool) "non-empty" true (buckets <> []);
  let rec check_monotone prev = function
    | [] -> ()
    | b :: rest ->
        if b.Hist.cumulative < prev then
          Alcotest.failf "cumulative decreased: %d after %d" b.Hist.cumulative prev;
        check_monotone b.Hist.cumulative rest
  in
  check_monotone 0 buckets;
  let last = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check int) "last cumulative = count" (Hist.count h) last.Hist.cumulative;
  let rec sorted = function
    | a :: b :: rest -> a.Hist.upper < b.Hist.upper && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "uppers strictly increasing" true (sorted buckets)

let test_hist_nonpositive_and_nan () =
  let h = Hist.create () in
  Hist.observe h 0.0;
  Hist.observe h (-5.0);
  Hist.observe h Float.nan;
  (* NaN ignored entirely; non-positive values count into the lowest bucket. *)
  Alcotest.(check int) "count" 2 (Hist.count h);
  feq "sum" (-5.0) (Hist.sum h);
  feq "min" (-5.0) (Hist.min_value h)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.observe a) [ 0.1; 0.2 ];
  List.iter (Hist.observe b) [ 0.3; 0.4; 0.5 ];
  Hist.merge_into ~dst:a b;
  Alcotest.(check int) "count" 5 (Hist.count a);
  feq_rel "sum" 1.5 (Hist.sum a);
  feq "min" 0.1 (Hist.min_value a);
  feq "max" 0.5 (Hist.max_value a)

(* ---- Registry ---- *)

let test_registry_counters () =
  let reg = R.create () in
  let c = R.counter reg ~help:"test" "pt_test_total" in
  R.incr c;
  R.add c 4;
  Alcotest.(check int) "value" 5 (R.counter_value c);
  (* Same name + labels resolves to the same cell. *)
  let c' = R.counter reg "pt_test_total" in
  R.incr c';
  Alcotest.(check int) "shared cell" 6 (R.counter_value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Telemetry.Registry.add: counters only go up") (fun () ->
      R.add c (-1))

let test_registry_labels_separate () =
  let reg = R.create () in
  let a = R.counter reg ~labels:[ ("host", "a") ] "pt_lbl_total" in
  let b = R.counter reg ~labels:[ ("host", "b") ] "pt_lbl_total" in
  R.add a 2;
  R.add b 7;
  Alcotest.(check int) "a" 2 (R.counter_value a);
  Alcotest.(check int) "b" 7 (R.counter_value b);
  (* Label order does not matter for identity. *)
  let a2 = R.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "pt_multi_total" in
  let a3 = R.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "pt_multi_total" in
  R.incr a2;
  Alcotest.(check int) "order-insensitive" 1 (R.counter_value a3)

let test_registry_kind_clash () =
  let reg = R.create () in
  ignore (R.counter reg "pt_clash" : R.counter);
  match R.gauge reg "pt_clash" with
  | (_ : R.gauge) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_registry_gauges () =
  let reg = R.create () in
  let g = R.gauge reg "pt_g" in
  R.set g 3.5;
  feq "set" 3.5 (R.gauge_value g);
  R.set_max g 2.0;
  feq "set_max keeps larger" 3.5 (R.gauge_value g);
  R.set_max g 9.0;
  feq "set_max raises" 9.0 (R.gauge_value g)

let test_registry_span () =
  let reg = R.create () in
  let x = R.time reg "pt_span_seconds" (fun () -> 41 + 1) in
  Alcotest.(check int) "returns body result" 42 x;
  match R.find_sample (R.snapshot reg) "pt_span_seconds" with
  | Some (R.Hist { count; sum; _ }) ->
      Alcotest.(check int) "one observation" 1 count;
      if sum < 0.0 then Alcotest.fail "negative elapsed time"
  | _ -> Alcotest.fail "expected histogram sample"

let test_registry_snapshot_sorted () =
  let reg = R.create () in
  R.incr (R.counter reg "pt_b_total");
  R.incr (R.counter reg "pt_a_total");
  R.set (R.gauge reg "pt_c") 1.0;
  let names = List.map (fun (f : R.family) -> f.R.name) (R.snapshot reg) in
  Alcotest.(check (list string))
    "sorted by name"
    [ "pt_a_total"; "pt_b_total"; "pt_c" ]
    names

(* ---- Exporters ---- *)

let sample_registry () =
  let reg = R.create () in
  R.add (R.counter reg ~help:"requests" ~labels:[ ("host", "a\"b") ] "pt_req_total") 3;
  R.set (R.gauge reg ~help:"queue depth" "pt_depth") 2.5;
  let h = R.histogram reg ~help:"latency" "pt_lat_seconds" in
  List.iter (R.observe h) [ 0.01; 0.02; 0.04 ];
  reg

let test_prometheus_export () =
  let text = Export.to_prometheus (R.snapshot (sample_registry ())) in
  let has needle = Alcotest.(check bool) needle true (H.contains text needle) in
  has "# TYPE pt_req_total counter";
  has "# HELP pt_req_total requests";
  has "pt_req_total{host=\"a\\\"b\"} 3";
  has "# TYPE pt_depth gauge";
  has "pt_depth 2.5";
  has "# TYPE pt_lat_seconds histogram";
  has "pt_lat_seconds_bucket{le=\"+Inf\"} 3";
  has "pt_lat_seconds_count 3";
  has "pt_lat_seconds_sum";
  (* Every non-comment line is "name[{labels}] value" with a finite value. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "malformed line: %s" line
           | Some i ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               if not (Float.is_finite (float_of_string v)) then
                 Alcotest.failf "non-finite value in: %s" line)

let test_json_export_parses () =
  let text = Export.to_json_string (R.snapshot (sample_registry ())) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "exporter output does not parse: %s" e
  | Ok json -> (
      match Json.member "pt_req_total" json with
      | None -> Alcotest.fail "missing pt_req_total family"
      | Some fam -> (
          (match Json.member "type" fam with
          | Some (Json.String "counter") -> ()
          | _ -> Alcotest.fail "type should be counter");
          match Json.member "samples" fam with
          | Some (Json.List [ sample ]) -> (
              match Json.member "value" sample with
              | Some (Json.Int 3) -> ()
              | _ -> Alcotest.fail "counter value should be Int 3")
          | _ -> Alcotest.fail "expected one sample"))

let test_json_parser_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.List [ Json.Int 1; Json.String "x"; Json.List [] ]);
        ("o", Json.Obj [ ("k", Json.Float 0.25) ]);
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Ok j' ->
      Alcotest.(check string) "round-trip" (Json.to_string j) (Json.to_string j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parser_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "should have rejected %S" s
      | Error _ -> ())
    bad;
  match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.String "A\xc3\xa9") -> ()
  | Ok j -> Alcotest.failf "unicode escape decoded wrong: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "unicode escape rejected: %s" e

(* ---- Pipeline mirroring (acceptance) ---- *)

let counter_exn snap ?labels name =
  match R.find_sample snap ?labels name with
  | Some (R.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "%s missing from registry" name

let gauge_exn snap name =
  match R.find_sample snap name with
  | Some (R.Gauge v) -> v
  | Some _ -> Alcotest.failf "%s is not a gauge" name
  | None -> Alcotest.failf "%s missing from registry" name

let check_mirrors snap (rstats : Core.Ranker.stats) (estats : Core.Cag_engine.stats) =
  let ceq name v = Alcotest.(check int) name v (counter_exn snap name) in
  ceq "pt_ranker_fetched_total" rstats.Core.Ranker.fetched;
  ceq "pt_ranker_candidates_total" rstats.Core.Ranker.candidates;
  ceq "pt_ranker_noise_discarded_total" rstats.Core.Ranker.noise_discarded;
  ceq "pt_ranker_promotions_total" rstats.Core.Ranker.promotions;
  ceq "pt_ranker_forced_fetches_total" rstats.Core.Ranker.forced_fetches;
  ceq "pt_ranker_forced_discards_total" rstats.Core.Ranker.forced_discards;
  feq "pt_ranker_peak_buffered"
    (float_of_int rstats.Core.Ranker.peak_buffered)
    (gauge_exn snap "pt_ranker_peak_buffered");
  ceq "pt_engine_cags_started_total" estats.Core.Cag_engine.cags_started;
  ceq "pt_engine_cags_finished_total" estats.Core.Cag_engine.cags_finished;
  ceq "pt_engine_send_merges_total" estats.Core.Cag_engine.send_merges;
  ceq "pt_engine_receive_merges_total" estats.Core.Cag_engine.receive_merges;
  ceq "pt_engine_orphans_total" estats.Core.Cag_engine.orphans;
  feq "pt_engine_peak_live_vertices"
    (float_of_int estats.Core.Cag_engine.peak_live_vertices)
    (gauge_exn snap "pt_engine_peak_live_vertices")

let hand_built_config () =
  Core.Correlator.config
    ~transform:(Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ] ())
    ()

let test_correlate_mirrors_stats () =
  let logs = H.logs_of_request () in
  let cfg = hand_built_config () in
  let reg = R.create () in
  let result = Core.Correlator.correlate ~telemetry:reg cfg logs in
  let snap = R.snapshot reg in
  check_mirrors snap result.Core.Correlator.ranker_stats
    result.Core.Correlator.engine_stats;
  let prepared =
    Core.Transform.apply (hand_built_config ()).Core.Correlator.transform logs
  in
  Alcotest.(check int) "pt_correlator_activities_total"
    (Trace.Log.total prepared)
    (counter_exn snap "pt_correlator_activities_total");
  Alcotest.(check int) "pt_correlator_paths_total{state=finished}"
    (List.length result.Core.Correlator.cags)
    (counter_exn snap ~labels:[ ("state", "finished") ] "pt_correlator_paths_total");
  Alcotest.(check int) "pt_correlator_paths_total{state=deformed}"
    (List.length result.Core.Correlator.deformed)
    (counter_exn snap ~labels:[ ("state", "deformed") ] "pt_correlator_paths_total");
  match R.find_sample snap ~labels:[ ("stage", "rank_correlate") ] "pt_correlator_stage_seconds" with
  | Some (R.Hist { count; _ }) -> Alcotest.(check int) "one rank stage span" 1 count
  | _ -> Alcotest.fail "missing rank_correlate stage timing"

let test_offline_online_parity () =
  let outcome = S.run { S.default with S.clients = 30; time_scale = 0.02 } in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  (* Offline. *)
  let off = R.create () in
  let off_result = Core.Correlator.correlate ~telemetry:off cfg outcome.S.logs in
  (* Online replay of the timestamp-merged stream. *)
  let on = R.create () in
  let online =
    Online.create ~config:cfg ~telemetry:on
      ~hosts:(List.map Trace.Log.hostname outcome.S.logs)
      ()
  in
  List.concat_map Trace.Log.to_list outcome.S.logs
  |> List.stable_sort Trace.Activity.compare_by_time
  |> List.iter (Online.observe online);
  Online.finish online;
  let off_snap = R.snapshot off and on_snap = R.snapshot on in
  (* Each registry mirrors its own run's legacy stats records... *)
  check_mirrors off_snap off_result.Core.Correlator.ranker_stats
    off_result.Core.Correlator.engine_stats;
  check_mirrors on_snap (Online.ranker_stats online) (Online.engine_stats online);
  (* ...and the two runs agree with each other. *)
  List.iter
    (fun name ->
      Alcotest.(check int)
        ("parity " ^ name)
        (counter_exn off_snap name) (counter_exn on_snap name))
    [
      "pt_ranker_fetched_total";
      "pt_ranker_candidates_total";
      "pt_engine_cags_started_total";
      "pt_engine_cags_finished_total";
      "pt_engine_send_merges_total";
      "pt_engine_receive_merges_total";
    ];
  Alcotest.(check int) "online paths counter = offline cags"
    (List.length off_result.Core.Correlator.cags)
    (counter_exn on_snap "pt_online_paths_total");
  (* finish is idempotent: the stats mirror must not double-count. *)
  Online.finish online;
  Alcotest.(check int) "finish idempotent"
    (counter_exn on_snap "pt_engine_cags_finished_total")
    (counter_exn (R.snapshot on) "pt_engine_cags_finished_total")

let test_tiersim_metrics_over_histogram () =
  let m = Tiersim.Metrics.create () in
  List.iteri
    (fun i rt_ms ->
      Tiersim.Metrics.record m
        ~finished_at:(ST.of_ns ((i + 1) * 1_000_000_000))
        ~rt:(ST.ms rt_ms) ~kind:"Read")
    [ 10; 20; 30; 40; 100 ];
  let s = Tiersim.Metrics.summarize_kind m ~kind:"Read" in
  Alcotest.(check int) "completed" 5 s.Tiersim.Metrics.completed;
  feq_rel "mean (exact)" 0.040 s.Tiersim.Metrics.mean_rt_s;
  feq "max (exact)" 0.100 s.Tiersim.Metrics.max_rt_s;
  let rel name expected got =
    let r = abs_float (got -. expected) /. expected in
    if r > 0.05 then Alcotest.failf "%s: %g vs %g (rel %.3f)" name got expected r
  in
  rel "p50 (~4% bucket error)" 0.030 s.Tiersim.Metrics.p50_rt_s;
  rel "p99 (~4% bucket error)" 0.100 s.Tiersim.Metrics.p99_rt_s

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact stats" `Quick test_hist_exact_stats;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "quantile accuracy" `Quick test_hist_quantile_accuracy;
          Alcotest.test_case "buckets cumulative" `Quick test_hist_buckets_cumulative;
          Alcotest.test_case "nonpositive and nan" `Quick test_hist_nonpositive_and_nan;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "labels separate" `Quick test_registry_labels_separate;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
          Alcotest.test_case "gauges" `Quick test_registry_gauges;
          Alcotest.test_case "timer span" `Quick test_registry_span;
          Alcotest.test_case "snapshot sorted" `Quick test_registry_snapshot_sorted;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "json parses" `Quick test_json_export_parses;
          Alcotest.test_case "json roundtrip" `Quick test_json_parser_roundtrip;
          Alcotest.test_case "json errors" `Quick test_json_parser_errors;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "correlate mirrors stats" `Quick
            test_correlate_mirrors_stats;
          Alcotest.test_case "offline/online parity" `Quick
            test_offline_online_parity;
          Alcotest.test_case "tiersim metrics" `Quick
            test_tiersim_metrics_over_histogram;
        ] );
    ]
