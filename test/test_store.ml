(* Tests for lib/store: segments, manifest, reduction policies, writer,
   query, compaction — including the two acceptance criteria of the
   subsystem: store round-trip reproduces identical CAGs when reduction is
   off, and request-level sampling at >=4x byte reduction preserves the
   top-3 pattern frequency ranks. *)

module H = Test_helpers.Helpers
module S = Tiersim.Scenario
module Activity = Trace.Activity
module Log = Trace.Log
module Correlator = Core.Correlator
module Pattern = Core.Pattern

let temp_dir () =
  let dir = Filename.temp_file "pt-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* One memoised mid-size three-tier run shared by the tests. *)
let outcome =
  lazy (S.run { S.default with S.clients = 150; time_scale = 0.05; seed = 11 })

let correlate_cfg () =
  let o = Lazy.force outcome in
  Correlator.config ~transform:o.S.transform ()

let collection_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         String.equal (Log.hostname x) (Log.hostname y)
         && Log.length x = Log.length y
         && List.for_all2 Activity.equal (Log.to_list x) (Log.to_list y))
       a b

(* ---- policy ---- *)

let test_policy_roundtrip () =
  List.iter
    (fun s ->
      match Store.Policy.of_string s with
      | Error e -> Alcotest.failf "%S rejected: %s" s e
      | Ok p -> Alcotest.(check string) s s (Store.Policy.to_string p))
    [
      "none";
      "causal";
      "head=100";
      "sample=0.25@7";
      "budget=1000@1";
      "drop=rlogin+sshd";
      "causal,sample=0.5@1";
      "drop=mysql,causal,head=10";
    ]

let test_policy_errors () =
  List.iter
    (fun s ->
      match Store.Policy.of_string s with
      | Ok p -> Alcotest.failf "%S accepted as %s" s (Store.Policy.to_string p)
      | Error _ -> ())
    [ "nope"; "sample=2.0"; "sample=x"; "head=-1"; "head=1,sample=0.5"; "budget=0" ]

let test_policy_defaults () =
  Alcotest.(check bool) "none is none" true (Store.Policy.is_none Store.Policy.none);
  match Store.Policy.of_string "sample=0.5" with
  | Ok { Store.Policy.sampling = Store.Policy.Probabilistic { seed; _ }; _ } ->
      Alcotest.(check int) "default seed" 1 seed
  | Ok _ | Error _ -> Alcotest.fail "sample=0.5 should parse with default seed"

(* ---- segment ---- *)

let test_segment_roundtrip () =
  with_dir @@ fun dir ->
  let collection = (Lazy.force outcome).S.logs in
  let meta = Store.Segment.write ~dir ~id:3 ~policy:"none" collection in
  Alcotest.(check int) "id" 3 meta.Store.Segment.id;
  Alcotest.(check string) "file" "seg-000003.pts" meta.file;
  Alcotest.(check int) "records" (Log.total collection) meta.records;
  Alcotest.(check (list string)) "hosts sorted"
    (List.sort String.compare (List.map Log.hostname collection))
    meta.hosts;
  let all_ts =
    List.concat_map Log.to_list collection
    |> List.map (fun a -> Simnet.Sim_time.to_ns a.Activity.timestamp)
  in
  Alcotest.(check int) "min ts" (List.fold_left min max_int all_ts) meta.min_ts_ns;
  Alcotest.(check int) "max ts" (List.fold_left max min_int all_ts) meta.max_ts_ns;
  (* Header alone (read_meta) agrees with the write-time meta. *)
  (match Store.Segment.read_meta ~path:(Filename.concat dir meta.file) with
  | Ok m -> Alcotest.(check int) "header records" meta.records m.Store.Segment.records
  | Error e -> Alcotest.fail e);
  match Store.Segment.read ~dir meta with
  | Ok loaded -> Alcotest.(check bool) "payload identical" true (collection_equal collection loaded)
  | Error e -> Alcotest.fail e

let test_segment_rejects_corruption () =
  with_dir @@ fun dir ->
  let meta = Store.Segment.write ~dir ~id:0 ~policy:"none" (H.logs_of_request ()) in
  let path = Filename.concat dir meta.Store.Segment.file in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data - 3)));
  (match Store.Segment.read ~dir meta with
  | Ok _ -> Alcotest.fail "truncated segment accepted"
  | Error _ -> ());
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "XXXX");
  match Store.Segment.read ~dir meta with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ()

(* ---- manifest ---- *)

let test_manifest_roundtrip () =
  with_dir @@ fun dir ->
  let m0 = Store.Manifest.empty in
  let meta1 = Store.Segment.write ~dir ~id:0 ~policy:"none" (H.logs_of_request ()) in
  let meta2 = Store.Segment.write ~dir ~id:1 ~policy:"causal" (H.logs_of_request ()) in
  let m = Store.Manifest.add (Store.Manifest.add m0 meta1) meta2 in
  Alcotest.(check int) "next id" 2 m.Store.Manifest.next_id;
  Store.Manifest.save m ~dir;
  (match Store.Manifest.load ~dir with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Alcotest.(check int) "segments" 2 (List.length loaded.Store.Manifest.segments);
      Alcotest.(check int) "records"
        (Store.Manifest.total_records m)
        (Store.Manifest.total_records loaded));
  (* A rebuilt manifest (from segment headers) agrees on the totals. *)
  match Store.Manifest.rebuild ~dir with
  | Error e -> Alcotest.fail e
  | Ok rebuilt ->
      Alcotest.(check int) "rebuilt records"
        (Store.Manifest.total_records m)
        (Store.Manifest.total_records rebuilt);
      Alcotest.(check int) "rebuilt next id" 2 rebuilt.Store.Manifest.next_id

let test_manifest_corrupt () =
  with_dir @@ fun dir ->
  Out_channel.with_open_bin
    (Filename.concat dir Store.Manifest.file)
    (fun oc -> Out_channel.output_string oc "{not json");
  match Store.Manifest.load ~dir with
  | Ok _ -> Alcotest.fail "corrupt manifest accepted"
  | Error _ -> ()

(* ---- writer ---- *)

let test_writer_rolls_segments () =
  with_dir @@ fun dir ->
  let collection = (Lazy.force outcome).S.logs in
  let writer = Store.Writer.create ~roll_records:500 ~dir () in
  Store.Writer.ingest writer collection;
  let stats = Store.Writer.close writer in
  Alcotest.(check bool)
    (Printf.sprintf "%d segments from %d records" stats.Store.Writer.segments
       stats.records_in)
    true
    (stats.Store.Writer.segments >= stats.records_in / 500);
  Alcotest.(check int) "nothing dropped without a policy" stats.records_in stats.records_out;
  match Store.Manifest.load ~dir with
  | Ok m -> Alcotest.(check int) "manifest agrees" stats.records_out (Store.Manifest.total_records m)
  | Error e -> Alcotest.fail e

let read_file p = In_channel.with_open_bin p In_channel.input_all

let store_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_ingest_native_unsorted_matches_sorted () =
  (* [ingest_native] must produce a byte-identical store whether its
     arenas arrive sorted or not (unsorted inputs are sorted on a copy).
     Globally unique timestamps keep the expected order total. *)
  let acts host n offset =
    List.init n (fun i ->
        H.act
          ~kind:(if i mod 2 = 0 then Activity.Send else Activity.Receive)
          ~ts:((i * 2) + offset)
          ~ctx:(H.ctx ~host ~program:"p" ~pid:7 ~tid:(100 + (i mod 3)) ())
          ~flow:(H.flow "10.0.1.1" (4000 + (i mod 5)) "10.0.2.1" 8009)
          ~size:(1 + i))
  in
  let web = acts "web" 40 0 and app = acts "app" 40 1 in
  let collection =
    [ Log.of_list ~hostname:"web" web; Log.of_list ~hostname:"app" app ]
  in
  let write_with dir feed =
    let writer = Store.Writer.create ~roll_records:16 ~dir () in
    feed writer;
    ignore (Store.Writer.close writer)
  in
  with_dir @@ fun dir1 ->
  with_dir @@ fun dir2 ->
  write_with dir1 (fun w -> Store.Writer.ingest w collection);
  write_with dir2 (fun w ->
      let unsorted =
        List.map
          (fun (host, l) ->
            let a = Trace.Arena.create ~host () in
            List.iter (Trace.Arena.append_activity a) (List.rev l);
            a)
          [ ("web", web); ("app", app) ]
      in
      Store.Writer.ingest_native w unsorted);
  let files1 = store_files dir1 and files2 = store_files dir2 in
  Alcotest.(check (list string)) "same files" (List.map fst files1) (List.map fst files2);
  List.iter2
    (fun (name, b1) (_, b2) ->
      Alcotest.(check bool) (Printf.sprintf "%s byte-identical" name) true (String.equal b1 b2))
    files1 files2;
  match Store.Query.run ~dir:dir2 Store.Query.all with
  | Error e -> Alcotest.fail e
  | Ok (loaded, _) ->
      let by_host =
        List.sort (fun a b -> String.compare (Log.hostname a) (Log.hostname b))
      in
      Alcotest.(check bool) "query returns the sorted records" true
        (collection_equal (by_host collection) (by_host loaded))

let test_query_native_matches_record_query () =
  with_dir @@ fun dir ->
  let collection = (Lazy.force outcome).S.logs in
  let writer = Store.Writer.create ~roll_records:700 ~dir () in
  Store.Writer.ingest writer collection;
  ignore (Store.Writer.close writer);
  let predicate = Store.Query.predicate ~hosts:[ "web"; "db1" ] () in
  match (Store.Query.run ~dir predicate, Store.Query.run_native ~dir predicate) with
  | Ok (records, s1), Ok (arenas, s2) ->
      Alcotest.(check bool) "same collection" true
        (collection_equal records (Trace.Arena.to_collection arenas));
      Alcotest.(check int) "same segments scanned" s1.Store.Query.segments_scanned
        s2.Store.Query.segments_scanned
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_writer_requires_correlate () =
  with_dir @@ fun dir ->
  let policy =
    match Store.Policy.of_string "causal" with Ok p -> p | Error e -> failwith e
  in
  match Store.Writer.create ~policy ~dir () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reduction without a correlator config accepted"

(* ---- acceptance: round-trip fidelity (reduction off) ---- *)

let test_roundtrip_fidelity () =
  with_dir @@ fun dir ->
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let writer = Store.Writer.create ~roll_records:1000 ~dir () in
  Store.Writer.ingest writer o.S.logs;
  ignore (Store.Writer.close writer);
  match Store.Query.run ~dir Store.Query.all with
  | Error e -> Alcotest.fail e
  | Ok (loaded, _) ->
      Alcotest.(check bool) "activities identical" true (collection_equal o.S.logs loaded);
      let direct = Correlator.correlate cfg o.S.logs in
      let from_store = Correlator.correlate cfg loaded in
      Alcotest.(check int) "same path count"
        (List.length direct.Correlator.cags)
        (List.length from_store.Correlator.cags);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "same signature" (Pattern.signature_of a)
            (Pattern.signature_of b);
          List.iter2
            (fun (va : Core.Cag.vertex) (vb : Core.Cag.vertex) ->
              Alcotest.(check bool) "same vertex activity" true
                (Activity.equal va.Core.Cag.activity vb.Core.Cag.activity))
            (Core.Cag.vertices a) (Core.Cag.vertices b))
        direct.Correlator.cags from_store.Correlator.cags;
      let verdict =
        Core.Accuracy.check ~ground_truth:o.S.ground_truth from_store.Correlator.cags
      in
      Alcotest.(check bool) "accuracy 100%" true (verdict.Core.Accuracy.accuracy >= 1.0)

(* ---- acceptance: reduction fidelity ---- *)

let top_names n patterns =
  List.filteri (fun i _ -> i < n) patterns |> List.map (fun p -> p.Pattern.name)

let test_reduction_fidelity () =
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let policy =
    match Store.Policy.of_string "causal,sample=0.25@3" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let reduced, stats = Store.Reduce.apply ~correlate:cfg ~policy o.S.logs in
  let ratio = Store.Reduce.ratio stats in
  Alcotest.(check bool)
    (Printf.sprintf "byte reduction %.1fx >= 4x" ratio)
    true (ratio >= 4.0);
  let baseline = Correlator.correlate cfg o.S.logs in
  let result = Correlator.correlate cfg reduced in
  Alcotest.(check (list string)) "top-3 pattern ranks unchanged"
    (top_names 3 (Pattern.classify baseline.Correlator.cags))
    (top_names 3 (Pattern.classify result.Correlator.cags))

let test_reduction_keeps_whole_requests () =
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let policy =
    match Store.Policy.of_string "causal,sample=0.5@2" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let reduced, stats = Store.Reduce.apply ~correlate:cfg ~policy o.S.logs in
  let result = Correlator.correlate cfg reduced in
  (* Whole causal paths survive or vanish: no orphaned halves, so the
     reduced trace correlates with zero deformed CAGs and exactly the kept
     requests as paths. *)
  Alcotest.(check int) "no deformed paths" 0 (List.length result.Correlator.deformed);
  Alcotest.(check int) "kept requests = paths" stats.Store.Reduce.requests_kept
    (List.length result.Correlator.cags)

let test_reduction_deterministic () =
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let policy =
    match Store.Policy.of_string "sample=0.3@9" with Ok p -> p | Error e -> failwith e
  in
  let r1, s1 = Store.Reduce.apply ~correlate:cfg ~policy o.S.logs in
  let r2, s2 = Store.Reduce.apply ~correlate:cfg ~policy o.S.logs in
  Alcotest.(check int) "same kept" s1.Store.Reduce.requests_kept s2.Store.Reduce.requests_kept;
  Alcotest.(check bool) "same survivors" true (collection_equal r1 r2)

let test_reduction_head_and_boundaries () =
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let apply s =
    let policy =
      match Store.Policy.of_string s with Ok p -> p | Error e -> failwith e
    in
    Store.Reduce.apply ~correlate:cfg ~policy o.S.logs
  in
  let _, head = apply "head=10" in
  Alcotest.(check int) "head keeps 10" 10 head.Store.Reduce.requests_kept;
  let _, none_kept = apply "sample=0.0@1" in
  Alcotest.(check int) "p=0 keeps none" 0 none_kept.Store.Reduce.requests_kept;
  let _, all_kept = apply "sample=1.0@1" in
  Alcotest.(check int) "p=1 keeps all" all_kept.Store.Reduce.requests_total
    all_kept.Store.Reduce.requests_kept

(* ---- query ---- *)

let store_of_run dir =
  let o = Lazy.force outcome in
  let writer = Store.Writer.create ~roll_records:1000 ~dir () in
  Store.Writer.ingest writer o.S.logs;
  ignore (Store.Writer.close writer)

let test_query_prunes_segments () =
  with_dir @@ fun dir ->
  store_of_run dir;
  let m = match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e in
  let min_ts, max_ts =
    List.fold_left
      (fun (lo, hi) (s : Store.Segment.meta) ->
        (min lo s.Store.Segment.min_ts_ns, max hi s.Store.Segment.max_ts_ns))
      (max_int, min_int) m.Store.Manifest.segments
  in
  let span = max_ts - min_ts in
  let narrow =
    Store.Query.predicate
      ~since_ns:(min_ts + (span * 45 / 100))
      ~until_ns:(min_ts + (span * 55 / 100))
      ()
  in
  match Store.Query.run ~dir narrow with
  | Error e -> Alcotest.fail e
  | Ok (logs, stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "scanned %d < total %d" stats.Store.Query.segments_scanned
           stats.segments_total)
        true
        (stats.Store.Query.segments_scanned < stats.segments_total);
      List.iter
        (fun log ->
          List.iter
            (fun a ->
              let ts = Simnet.Sim_time.to_ns a.Activity.timestamp in
              Alcotest.(check bool) "within window" true
                (ts >= min_ts + (span * 45 / 100) && ts <= min_ts + (span * 55 / 100)))
            (Log.to_list log))
        logs

let test_query_boundary_inclusive () =
  with_dir @@ fun dir ->
  (* Two segments meeting exactly at t = 200ns: the last record of the
     first and the first record of the second carry the boundary
     timestamp. Segment pruning and record filtering are both
     inclusive-inclusive, so the degenerate window [200, 200] must scan
     both segments and return the record from each side. *)
  let mk ts = H.act ~kind:Activity.Send ~ts ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:10 in
  let seg_a = [ Log.of_list ~hostname:"web" [ mk 100; mk 200 ] ] in
  let seg_b = [ Log.of_list ~hostname:"web" [ mk 200; mk 300 ] ] in
  let meta_a = Store.Segment.write ~dir ~id:0 ~policy:"none" seg_a in
  let meta_b = Store.Segment.write ~dir ~id:1 ~policy:"none" seg_b in
  Store.Manifest.save
    (Store.Manifest.add (Store.Manifest.add Store.Manifest.empty meta_a) meta_b)
    ~dir;
  match Store.Query.run ~dir (Store.Query.predicate ~since_ns:200 ~until_ns:200 ()) with
  | Error e -> Alcotest.fail e
  | Ok (logs, stats) ->
      Alcotest.(check int) "both segments scanned" 2 stats.Store.Query.segments_scanned;
      let records = List.concat_map Log.to_list logs in
      Alcotest.(check int) "one record from each side" 2 (List.length records);
      List.iter
        (fun a ->
          Alcotest.(check int) "exactly on the boundary" 200
            (Simnet.Sim_time.to_ns a.Activity.timestamp))
        records

let test_query_host_filter () =
  with_dir @@ fun dir ->
  store_of_run dir;
  match Store.Query.run ~dir (Store.Query.predicate ~hosts:[ "db1" ] ()) with
  | Error e -> Alcotest.fail e
  | Ok (logs, _) ->
      Alcotest.(check (list string)) "only db1" [ "db1" ] (List.map Log.hostname logs);
      Alcotest.(check bool) "non-empty" true (Log.total logs > 0)

(* ---- compaction ---- *)

let test_compaction_equivalence () =
  with_dir @@ fun dir ->
  store_of_run dir;
  let before =
    match Store.Query.run ~dir Store.Query.all with
    | Ok (logs, _) -> logs
    | Error e -> failwith e
  in
  let m0 = match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e in
  let stats =
    match Store.Compact.run ~min_records:10_000 ~dir () with
    | Ok s -> s
    | Error e -> failwith e
  in
  Alcotest.(check bool) "fewer segments" true
    (stats.Store.Compact.segments_after < stats.segments_before);
  let m1 = match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e in
  Alcotest.(check int) "records preserved"
    (Store.Manifest.total_records m0)
    (Store.Manifest.total_records m1);
  (* ids of merged segments never collide with survivors *)
  let ids = List.map (fun (s : Store.Segment.meta) -> s.Store.Segment.id) m1.segments in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  match Store.Query.run ~dir Store.Query.all with
  | Error e -> Alcotest.fail e
  | Ok (after, _) ->
      Alcotest.(check bool) "query result unchanged" true (collection_equal before after)

let test_compaction_retention () =
  with_dir @@ fun dir ->
  store_of_run dir;
  let m0 = match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e in
  (* Retain a window much smaller than the run: old segments must go. *)
  let stats =
    match Store.Compact.run ~min_records:1 ~retain_ns:1_000_000 ~dir () with
    | Ok s -> s
    | Error e -> failwith e
  in
  Alcotest.(check bool) "some segments retired" true (stats.Store.Compact.retired > 0);
  let m1 = match Store.Manifest.load ~dir with Ok m -> m | Error e -> failwith e in
  Alcotest.(check bool) "fewer live segments" true
    (List.length m1.Store.Manifest.segments < List.length m0.Store.Manifest.segments);
  (* Deleted segment files are gone from disk too. *)
  let live =
    List.map (fun (s : Store.Segment.meta) -> s.Store.Segment.file) m1.segments
  in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".pts" then
        Alcotest.(check bool) (Printf.sprintf "%s is live" f) true (List.mem f live))
    (Sys.readdir dir)

(* ---- writer + policy end to end ---- *)

let test_writer_with_reduction () =
  with_dir @@ fun dir ->
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let policy =
    match Store.Policy.of_string "causal,sample=0.25@3" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let writer = Store.Writer.create ~policy ~correlate:cfg ~roll_records:2000 ~dir () in
  Store.Writer.ingest writer o.S.logs;
  let stats = Store.Writer.close writer in
  Alcotest.(check bool) "records reduced" true (stats.Store.Writer.records_out < stats.records_in);
  Alcotest.(check bool) "bytes reduced" true (stats.Store.Writer.bytes_out < stats.bytes_in);
  match Store.Query.run ~dir Store.Query.all with
  | Error e -> Alcotest.fail e
  | Ok (reduced, _) ->
      (* Per-batch reduction's one caveat (see writer.mli): a request
         straddling a segment boundary is reduced as two independent
         halves, so a few deformed CAGs can survive — but only a few,
         bounded by the requests in flight at each boundary, never a
         constant fraction of the run. *)
      let result = Correlator.correlate cfg reduced in
      let finished = List.length result.Correlator.cags in
      let deformed = List.length result.Correlator.deformed in
      Alcotest.(check bool)
        (Printf.sprintf "deformed %d small vs %d finished" deformed finished)
        true
        (float_of_int deformed < 0.05 *. float_of_int (finished + deformed))

(* ---- Online tee: live correlation and durable capture share one feed ---- *)

let test_online_tee () =
  with_dir @@ fun dir ->
  let o = Lazy.force outcome in
  let cfg = correlate_cfg () in
  let writer = Store.Writer.create ~roll_records:1000 ~dir () in
  let hosts = List.map Log.hostname o.S.logs in
  let online =
    Core.Online.create ~config:cfg ~hosts
      ~on_activity:(Store.Writer.observe writer)
      ~telemetry:(Telemetry.Registry.create ())
      ()
  in
  List.concat_map Log.to_list o.S.logs
  |> List.stable_sort Activity.compare_by_time
  |> List.iter (Core.Online.observe online);
  Core.Online.finish online;
  ignore (Store.Writer.close writer);
  (* The store captured the raw feed: querying it back returns exactly the
     original collection, while the online run correlated the same feed. *)
  match Store.Query.run ~dir Store.Query.all with
  | Error e -> Alcotest.fail e
  | Ok (loaded, _) ->
      Alcotest.(check bool) "store holds the raw feed" true
        (collection_equal o.S.logs loaded);
      Alcotest.(check int) "online paths match offline"
        (List.length (Correlator.correlate cfg o.S.logs).Correlator.cags)
        (List.length (Core.Online.paths online))

let () =
  Alcotest.run "store"
    [
      ( "policy",
        [
          Alcotest.test_case "to_string/of_string roundtrip" `Quick test_policy_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_policy_errors;
          Alcotest.test_case "defaults" `Quick test_policy_defaults;
        ] );
      ( "segment",
        [
          Alcotest.test_case "roundtrip + meta" `Quick test_segment_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_segment_rejects_corruption;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "save/load/rebuild" `Quick test_manifest_roundtrip;
          Alcotest.test_case "corrupt rejected" `Quick test_manifest_corrupt;
        ] );
      ( "writer",
        [
          Alcotest.test_case "rolls segments" `Quick test_writer_rolls_segments;
          Alcotest.test_case "native ingest: unsorted equals sorted" `Quick
            test_ingest_native_unsorted_matches_sorted;
          Alcotest.test_case "native query equals record query" `Quick
            test_query_native_matches_record_query;
          Alcotest.test_case "reduction needs correlator" `Quick test_writer_requires_correlate;
          Alcotest.test_case "streaming reduction" `Quick test_writer_with_reduction;
          Alcotest.test_case "online correlation tee" `Quick test_online_tee;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "round-trip reproduces identical CAGs" `Quick
            test_roundtrip_fidelity;
          Alcotest.test_case "4x reduction keeps top-3 ranks" `Quick test_reduction_fidelity;
          Alcotest.test_case "whole requests only" `Quick test_reduction_keeps_whole_requests;
          Alcotest.test_case "seed-deterministic" `Quick test_reduction_deterministic;
          Alcotest.test_case "head and p boundaries" `Quick test_reduction_head_and_boundaries;
        ] );
      ( "query",
        [
          Alcotest.test_case "manifest prunes segments" `Quick test_query_prunes_segments;
          Alcotest.test_case "segment boundary is inclusive" `Quick
            test_query_boundary_inclusive;
          Alcotest.test_case "host filter" `Quick test_query_host_filter;
        ] );
      ( "compact",
        [
          Alcotest.test_case "merge preserves content" `Quick test_compaction_equivalence;
          Alcotest.test_case "retention deletes old segments" `Quick test_compaction_retention;
        ] );
    ]
