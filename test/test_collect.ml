(* Tests for the in-band collection plane: the PTC1 frame codec and its
   incremental decoder (arbitrary TCP segmentation, truncation,
   corruption), the byte side channel, and agent/collector micro
   simulations — delivery, acks, crash/restart resend, backpressure
   eviction — all checked against the agent's accounting identity
   observed = reduced + dropped + acked + spooled + queued. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Log = Trace.Log
module Frame = Collect.Frame
module Wire = Collect.Wire
module Agent = Collect.Agent
module Collector = Collect.Collector
module Engine = Simnet.Engine
module Node = Simnet.Node
module Tcp = Simnet.Tcp
module Address = Simnet.Address
module ST = Simnet.Sim_time
module R = Telemetry.Registry

let qtest = QCheck_alcotest.to_alcotest

(* ---- generators ---- *)

let arbitrary_activity =
  let open QCheck.Gen in
  let kind = oneofl [ Activity.Begin; Activity.End_; Activity.Send; Activity.Receive ] in
  let octet = int_range 0 255 in
  let gen =
    kind >>= fun kind ->
    int_range 0 1_000_000_000 >>= fun ts ->
    oneofl [ "web1"; "app1" ] >>= fun host ->
    oneofl [ "httpd"; "java"; "x" ] >>= fun program ->
    int_range 1 65_535 >>= fun pid ->
    int_range 1 65_535 >>= fun tid ->
    quad octet octet octet octet >>= fun (a, b, c, d) ->
    int_range 1 65_535 >>= fun sport ->
    int_range 1 65_535 >>= fun dport ->
    int_range 1 1_000_000 >>= fun size ->
    let flow =
      H.flow (Printf.sprintf "%d.%d.%d.%d" a b c d) sport
        (Printf.sprintf "%d.%d.%d.%d" d c b a) dport
    in
    return (H.act ~kind ~ts ~ctx:(H.ctx ~host ~program ~pid ~tid ()) ~flow ~size)
  in
  QCheck.make ~print:(Format.asprintf "%a" Activity.pp) gen

(* A stream of frames with plausible headers (seq/oldest ascending per
   host). Only the codec is under test, so hosts may interleave. *)
let arbitrary_frame_stream =
  let open QCheck.Gen in
  let frame i =
    list_size (int_range 0 12) (QCheck.gen arbitrary_activity) >>= fun acts ->
    oneofl [ "web1"; "app1" ] >>= fun host ->
    int_range 0 3 >>= fun back ->
    int_range 0 1_000_000_000 >>= fun wm ->
    let acts = List.map (fun (a : Activity.t) -> { a with Activity.context = { a.Activity.context with Activity.host } }) acts in
    return
      (Frame.encode ~seq:i ~oldest:(max 0 (i - back)) ~host ~watermark:(ST.of_ns wm)
         ~payload:(Frame.encode_payload ~host acts))
  in
  let gen =
    int_range 1 6 >>= fun n ->
    let rec build i acc =
      if i >= n then return (List.rev acc)
      else frame i >>= fun f -> build (i + 1) (f :: acc)
    in
    build 0 []
  in
  QCheck.make ~print:(fun fs -> Printf.sprintf "%d frames" (List.length fs)) gen

let decode_all bytes_chunks =
  let dec = Frame.Decoder.create () in
  List.iter (Frame.Decoder.feed dec) bytes_chunks;
  Frame.Decoder.drain dec

let frame_equal (a : Frame.t) (b : Frame.t) =
  a.Frame.seq = b.Frame.seq && a.Frame.oldest = b.Frame.oldest
  && String.equal a.Frame.host b.Frame.host
  && ST.equal a.Frame.watermark b.Frame.watermark
  && Frame.records a = Frame.records b
  && List.for_all2 Activity.equal (Frame.activities a) (Frame.activities b)

(* ---- codec round trip ---- *)

let test_frame_roundtrip () =
  let acts = List.concat_map Log.to_list (H.logs_of_request ()) in
  let web = List.filter (fun (a : Activity.t) -> a.Activity.context.host = "web") acts in
  let payload = Frame.encode_payload ~host:"web" web in
  let bytes = Frame.encode ~seq:7 ~oldest:3 ~host:"web" ~watermark:(ST.of_ns 123_456) ~payload in
  match decode_all [ bytes ] with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok [ f ] ->
      Alcotest.(check int) "seq" 7 f.Frame.seq;
      Alcotest.(check int) "oldest" 3 f.Frame.oldest;
      Alcotest.(check string) "host" "web" f.Frame.host;
      Alcotest.(check int) "watermark" 123_456 (ST.to_ns f.Frame.watermark);
      Alcotest.(check int) "records" (List.length web) (Frame.records f);
      let sorted = Log.to_list (Log.of_list ~hostname:"web" web) in
      Alcotest.(check bool) "activities" true
        (List.for_all2 Activity.equal sorted (Frame.activities f))
  | Ok fs -> Alcotest.failf "expected 1 frame, got %d" (List.length fs)

let test_empty_frame_roundtrip () =
  let bytes =
    Frame.encode ~seq:0 ~oldest:0 ~host:"db1" ~watermark:(ST.of_ns 5)
      ~payload:(Frame.encode_payload ~host:"db1" [])
  in
  match decode_all [ bytes ] with
  | Ok [ f ] ->
      Alcotest.(check int) "no records" 0 (Frame.records f);
      Alcotest.(check string) "host" "db1" f.Frame.host
  | Ok _ | Error _ -> Alcotest.fail "empty frame must decode"

(* ---- the QCheck chop property: segmentation cannot change the result ---- *)

let chop_at cuts s =
  (* cut points are sorted positions inside [s] *)
  let n = String.length s in
  let rec go start = function
    | [] -> if start < n then [ String.sub s start (n - start) ] else []
    | c :: rest ->
        if c <= start || c >= n then go start rest
        else String.sub s start (c - start) :: go c rest
  in
  go 0 (List.sort_uniq compare cuts)

let prop_chopped_stream_decodes_identically =
  QCheck.Test.make ~name:"PTC1 decode is invariant under arbitrary segmentation"
    ~count:200
    QCheck.(
      pair arbitrary_frame_stream (list_of_size (QCheck.Gen.int_range 0 40) small_nat))
    (fun (frames, cuts) ->
      let stream = String.concat "" frames in
      let cuts = List.map (fun c -> c mod max 1 (String.length stream)) cuts in
      match (decode_all [ stream ], decode_all (chop_at cuts stream)) with
      | Ok whole, Ok chopped ->
          List.length whole = List.length chopped
          && List.for_all2 frame_equal whole chopped
      | _ -> false)

let test_byte_by_byte_decode () =
  let acts = List.concat_map Log.to_list (H.logs_of_request ()) in
  let web = List.filter (fun (a : Activity.t) -> a.Activity.context.host = "web") acts in
  let frames =
    [
      Frame.encode ~seq:0 ~oldest:0 ~host:"web" ~watermark:(ST.of_ns 10)
        ~payload:(Frame.encode_payload ~host:"web" web);
      Frame.encode ~seq:1 ~oldest:1 ~host:"web" ~watermark:(ST.of_ns 20)
        ~payload:(Frame.encode_payload ~host:"web" []);
    ]
  in
  let stream = String.concat "" frames in
  let dec = Frame.Decoder.create () in
  let seen = ref 0 in
  String.iter
    (fun c ->
      Frame.Decoder.feed dec (String.make 1 c);
      match Frame.Decoder.drain dec with
      | Ok fs -> seen := !seen + List.length fs
      | Error e -> Alcotest.failf "byte-by-byte decode errored: %s" e)
    stream;
  Alcotest.(check int) "both frames decoded" 2 !seen;
  Alcotest.(check int) "nothing left buffered" 0 (Frame.Decoder.buffered dec)

(* ---- truncation: a prefix is never corruption, only "need more" ---- *)

let test_truncation_never_errors () =
  let acts = List.concat_map Log.to_list (H.logs_of_request ()) in
  let web = List.filter (fun (a : Activity.t) -> a.Activity.context.host = "web") acts in
  let f0 =
    Frame.encode ~seq:0 ~oldest:0 ~host:"web" ~watermark:(ST.of_ns 10)
      ~payload:(Frame.encode_payload ~host:"web" web)
  in
  let f1 =
    Frame.encode ~seq:1 ~oldest:0 ~host:"web" ~watermark:(ST.of_ns 20)
      ~payload:(Frame.encode_payload ~host:"web" web)
  in
  let stream = f0 ^ f1 in
  for len = 0 to String.length stream - 1 do
    match decode_all [ String.sub stream 0 len ] with
    | Error e -> Alcotest.failf "prefix of %d bytes errored: %s" len e
    | Ok fs ->
        let expect =
          if len >= String.length f0 then 1 else 0
        in
        if List.length fs <> expect then
          Alcotest.failf "prefix of %d bytes yielded %d frames (want %d)" len
            (List.length fs) expect
    | exception e ->
        Alcotest.failf "prefix of %d bytes raised %s" len (Printexc.to_string e)
  done

(* ---- byte flips: never an exception; errors name an offset ---- *)

let test_byte_flip_corpus () =
  let acts = List.concat_map Log.to_list (H.logs_of_request ()) in
  let web = List.filter (fun (a : Activity.t) -> a.Activity.context.host = "web") acts in
  let stream =
    Frame.encode ~seq:3 ~oldest:1 ~host:"web" ~watermark:(ST.of_ns 10)
      ~payload:(Frame.encode_payload ~host:"web" web)
  in
  for i = 0 to String.length stream - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string stream in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match decode_all [ Bytes.to_string b ] with
      | Ok _ -> () (* some flips only change header values: still a frame *)
      | Error msg ->
          if not (H.contains msg "offset") then
            Alcotest.failf "flip at %d/%d: error %S names no offset" i bit msg
      | exception e ->
          Alcotest.failf "flip at %d/%d raised %s" i bit (Printexc.to_string e)
    done
  done

let test_encode_rejects_negative_varints () =
  (* Frame's LEB128 writer raises [Invalid_argument] on negatives (it
     used to be an [assert], invisible in release builds); the negative
     watermark path reaches it directly since [encode] range-checks only
     seq/oldest itself. *)
  (match
     Frame.encode ~seq:0 ~oldest:0 ~host:"w" ~watermark:(ST.of_ns (-1))
       ~payload:(Frame.encode_payload ~host:"w" [])
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative watermark accepted");
  (match Frame.encode_ack (-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative ack accepted");
  match
    Frame.encode ~seq:(-1) ~oldest:0 ~host:"w" ~watermark:(ST.of_ns 0)
      ~payload:(Frame.encode_payload ~host:"w" [])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative seq accepted"

let test_decoder_error_is_sticky () =
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec "XXXX";
  (match Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must error");
  Frame.Decoder.feed dec
    (Frame.encode ~seq:0 ~oldest:0 ~host:"w" ~watermark:(ST.of_ns 1)
       ~payload:(Frame.encode_payload ~host:"w" []));
  match Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a corrupt stream cannot resynchronise"

(* ---- ack codec ---- *)

let prop_ack_stream_chop =
  QCheck.Test.make ~name:"PTA1 decode is invariant under segmentation" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 10) (int_bound 1_000_000))
        (list_of_size (QCheck.Gen.int_range 0 20) small_nat))
    (fun (seqs, cuts) ->
      let stream = String.concat "" (List.map Frame.encode_ack seqs) in
      let cuts = List.map (fun c -> c mod max 1 (String.length stream)) cuts in
      let dec = Frame.Ack_decoder.create () in
      List.iter (Frame.Ack_decoder.feed dec) (chop_at cuts stream);
      match Frame.Ack_decoder.drain dec with
      | Ok got -> got = seqs
      | Error _ -> false)

(* ---- micro simulation: agent -> collector over simulated TCP ---- *)

type micro = {
  engine : Engine.t;
  anode : Node.t;
  agent : Agent.t;
  collector : Collector.t;
  sink : Activity.t list ref;  (* delivered, newest first *)
}

let make_micro ?(config = Agent.default_config) ?(collector_cpu_per_frame = ST.us 50) () =
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let wire = Wire.create stack in
  let anode =
    Node.create ~engine ~hostname:"web1" ~ip:(Address.ip_of_string "10.0.0.1") ~cores:2 ()
  in
  let cnode =
    Node.create ~engine ~hostname:"collect1" ~ip:(Address.ip_of_string "10.0.0.9") ~cores:2
      ()
  in
  let sink = ref [] in
  let reg = R.create () in
  let collector =
    Collector.create ~telemetry:reg ~cpu_per_frame:collector_cpu_per_frame
      ~on_activity:(fun a -> sink := a :: !sink)
      ~wire ~node:cnode ~port:7441 ()
  in
  let agent =
    Agent.create ~telemetry:reg ~config ~wire ~node:anode
      ~collector:(Collector.endpoint collector) ()
  in
  Agent.start agent;
  { engine; anode; agent; collector; sink }

(* Feed [n] own-host records, one every [every], starting at [from]. *)
let feed_records m ~n ~every ~from =
  for i = 0 to n - 1 do
    let at = ST.add from (ST.span_scale (float_of_int i) every) in
    ignore
      (Engine.schedule_at m.engine ~time:at (fun () ->
           let ts = ST.to_ns (Node.local_time m.anode) in
           Agent.observe m.agent
             (H.act ~kind:Activity.Send ~ts ~ctx:(H.ctx ~host:"web1" ())
                ~flow:H.web_app_flow ~size:100)))
  done

let check_identity what (s : Agent.stats) =
  Alcotest.(check int)
    (what ^ ": observed = reduced + dropped + acked + spooled + queued")
    s.Agent.observed
    (s.Agent.reduced + Agent.dropped_total s + s.Agent.acked_records
   + s.Agent.spooled_records + s.Agent.queued_records)

let test_micro_delivery_and_acks () =
  let config = { Agent.default_config with Agent.batch_records = 100 } in
  let m = make_micro ~config () in
  feed_records m ~n:1000 ~every:(ST.us 500) ~from:(ST.of_ns 1_000_000);
  Engine.run m.engine;
  let s = Agent.stats m.agent in
  check_identity "faultless" s;
  Alcotest.(check int) "all observed" 1000 s.Agent.observed;
  Alcotest.(check int) "all acked" 1000 s.Agent.acked_records;
  Alcotest.(check int) "spool drained" 0 s.Agent.spooled_records;
  Alcotest.(check int) "batch drained" 0 s.Agent.queued_records;
  Alcotest.(check int) "nothing dropped" 0 (Agent.dropped_total s);
  Alcotest.(check int) "no retransmits" 0 s.Agent.retransmits;
  Alcotest.(check int) "one connection" 1 s.Agent.connections;
  Alcotest.(check int) "collector got every record" 1000
    (Collector.delivered_records m.collector);
  (* in-order delivery per host *)
  let ts = List.rev_map (fun (a : Activity.t) -> ST.to_ns a.Activity.timestamp) !(m.sink) in
  Alcotest.(check bool) "delivered in timestamp order" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 999) ts) (List.tl ts));
  match Collector.stats m.collector with
  | [ ("web1", hs) ] ->
      Alcotest.(check int) "no duplicates" 0 hs.Collector.duplicate_frames;
      Alcotest.(check int) "no skips" 0 hs.Collector.skipped_frames
  | other -> Alcotest.failf "unexpected host stats (%d hosts)" (List.length other)

let test_micro_crash_restart_resends () =
  (* Slow collector: acks lag far behind the sends, so the crash hits
     sent-but-unacked frames that must be retransmitted after restart
     and deduplicated at the collector. *)
  let config = { Agent.default_config with Agent.batch_records = 50 } in
  let m = make_micro ~config ~collector_cpu_per_frame:(ST.ms 200) () in
  (* records keep arriving across the outage: 1 every ms until t=0.5s *)
  feed_records m ~n:500 ~every:(ST.ms 1) ~from:(ST.of_ns 1_000_000);
  ignore
    (Engine.schedule_at m.engine ~time:(ST.of_ns 150_000_000) (fun () ->
         Agent.crash m.agent));
  ignore
    (Engine.schedule_at m.engine ~time:(ST.of_ns 400_000_000) (fun () ->
         Agent.restart m.agent));
  Engine.run m.engine;
  let s = Agent.stats m.agent in
  check_identity "crash/restart" s;
  Alcotest.(check int) "two connections" 2 s.Agent.connections;
  Alcotest.(check bool) "crash dropped records" true (Agent.dropped_total s > 0);
  Alcotest.(check bool) "frames were retransmitted" true (s.Agent.retransmits > 0);
  Alcotest.(check int) "spool drained after restart" 0 s.Agent.spooled_records;
  let delivered = Collector.delivered_records m.collector in
  Alcotest.(check int) "delivered exactly the acked records" s.Agent.acked_records delivered;
  Alcotest.(check bool) "delivery is a subset" true (delivered < s.Agent.observed);
  (match Collector.stats m.collector with
  | [ ("web1", hs) ] ->
      Alcotest.(check bool) "collector deduplicated retransmits" true
        (hs.Collector.duplicate_frames > 0)
  | _ -> Alcotest.fail "expected web1 stats");
  (* no record delivered twice *)
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (a : Activity.t) ->
      let key = (ST.to_ns a.Activity.timestamp, a.Activity.message.size) in
      if Hashtbl.mem seen key then Alcotest.fail "record delivered twice";
      Hashtbl.replace seen key ())
    !(m.sink)

let test_micro_drop_oldest_eviction () =
  (* Strangle the agent's NIC so unsent frames pile up in the spool and
     Drop_oldest must evict; the [oldest] header lets the collector skip
     the evicted range instead of stalling. *)
  let config =
    {
      Agent.default_config with
      Agent.batch_records = 10;
      max_spool_records = 60;
      max_inflight_frames = 2;
      overflow = Agent.Drop_oldest;
    }
  in
  let m = make_micro ~config () in
  Node.set_nic_bandwidth_bps m.anode 20_000.0;
  feed_records m ~n:600 ~every:(ST.us 500) ~from:(ST.of_ns 1_000_000);
  Engine.run m.engine;
  let s = Agent.stats m.agent in
  check_identity "drop-oldest" s;
  let evicted = List.assoc "evicted" s.Agent.dropped in
  Alcotest.(check bool) "evicted under pressure" true (evicted > 0);
  (match Collector.stats m.collector with
  | [ ("web1", hs) ] ->
      Alcotest.(check bool) "collector skipped the evicted range" true
        (hs.Collector.skipped_frames > 0)
  | _ -> Alcotest.fail "expected web1 stats");
  Alcotest.(check int) "everything shippable was acked" s.Agent.acked_records
    (Collector.delivered_records m.collector);
  (* still in order despite the gaps *)
  let ts = List.rev_map (fun (a : Activity.t) -> ST.to_ns a.Activity.timestamp) !(m.sink) in
  let rec ordered = function
    | a :: (b :: _ as rest) -> a <= b && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "delivered in order despite gaps" true (ordered ts)

let test_micro_block_overflow () =
  let config =
    {
      Agent.default_config with
      Agent.batch_records = 10;
      max_spool_records = 60;
      max_inflight_frames = 2;
      overflow = Agent.Block;
    }
  in
  let m = make_micro ~config () in
  Node.set_nic_bandwidth_bps m.anode 20_000.0;
  feed_records m ~n:600 ~every:(ST.us 500) ~from:(ST.of_ns 1_000_000);
  Engine.run m.engine;
  let s = Agent.stats m.agent in
  check_identity "block" s;
  Alcotest.(check bool) "incoming records dropped" true
    (List.assoc "buffer_full" s.Agent.dropped > 0);
  Alcotest.(check int) "no evictions in block mode" 0 (List.assoc "evicted" s.Agent.dropped);
  match Collector.stats m.collector with
  | [ ("web1", hs) ] ->
      Alcotest.(check int) "no sequence gaps in block mode" 0 hs.Collector.skipped_frames
  | _ -> Alcotest.fail "expected web1 stats"

let test_agent_local_reduction () =
  (* drop_programs reduction at the agent: the filtered program's records
     never reach the wire, and the reduced count balances the identity. *)
  let policy = Store.Policy.make ~drop_programs:[ "sshd" ] () in
  let correlate =
    Core.Correlator.config ~transform:(Core.Transform.config ~entry_points:[] ()) ()
  in
  let config =
    { Agent.default_config with Agent.policy; correlate = Some correlate }
  in
  let m = make_micro ~config () in
  for i = 0 to 99 do
    let program = if i mod 2 = 0 then "httpd" else "sshd" in
    ignore
      (Engine.schedule_at m.engine
         ~time:(ST.of_ns ((i + 1) * 1_000_000))
         (fun () ->
           let ts = ST.to_ns (Node.local_time m.anode) in
           Agent.observe m.agent
             (H.act ~kind:Activity.Send ~ts
                ~ctx:(H.ctx ~host:"web1" ~program ())
                ~flow:H.web_app_flow ~size:10)))
  done;
  Engine.run m.engine;
  let s = Agent.stats m.agent in
  check_identity "reduction" s;
  Alcotest.(check int) "observed all" 100 s.Agent.observed;
  Alcotest.(check int) "half reduced away" 50 s.Agent.reduced;
  Alcotest.(check int) "half delivered" 50 (Collector.delivered_records m.collector);
  Alcotest.(check bool) "no sshd record crossed the wire" true
    (List.for_all
       (fun (a : Activity.t) -> a.Activity.context.program <> "sshd")
       !(m.sink))

let () =
  Alcotest.run "collect"
    [
      ( "codec",
        [
          Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "empty frame" `Quick test_empty_frame_roundtrip;
          Alcotest.test_case "byte-by-byte decode" `Quick test_byte_by_byte_decode;
          Alcotest.test_case "truncation is need-more, not corruption" `Quick
            test_truncation_never_errors;
          Alcotest.test_case "byte-flip corpus" `Slow test_byte_flip_corpus;
          Alcotest.test_case "decoder error is sticky" `Quick test_decoder_error_is_sticky;
          Alcotest.test_case "negative varints rejected" `Quick
            test_encode_rejects_negative_varints;
          qtest prop_chopped_stream_decodes_identically;
          qtest prop_ack_stream_chop;
        ] );
      ( "micro",
        [
          Alcotest.test_case "delivery and acks" `Quick test_micro_delivery_and_acks;
          Alcotest.test_case "crash/restart resends from last ack" `Quick
            test_micro_crash_restart_resends;
          Alcotest.test_case "drop-oldest eviction and gap skip" `Quick
            test_micro_drop_oldest_eviction;
          Alcotest.test_case "block overflow drops incoming" `Quick
            test_micro_block_overflow;
          Alcotest.test_case "agent-local reduction" `Quick test_agent_local_reduction;
        ] );
    ]
