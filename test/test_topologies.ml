(* Property tests over random multi-tier topologies: the accuracy claim
   must hold for arbitrary synchronous-RPC call trees, not just the
   RUBiS-shaped pipeline — covering the paper's claim to handle the
   concurrent-server design patterns of Stevens' catalogue. *)

module H = Test_helpers.Helpers
module Topo = Mesh.Random_spec
module ST = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

let check_perfect ?window spec =
  let result, verdict, _ = Topo.run_and_score ?window spec in
  if verdict.Core.Accuracy.accuracy < 1.0 then
    Alcotest.failf "accuracy %.4f (%d/%d, fp %d fn %d) for seed %d" verdict.accuracy
      verdict.correct verdict.total_requests verdict.false_positives verdict.false_negatives
      spec.Topo.seed;
  Alcotest.(check int) "no false positives" 0 verdict.Core.Accuracy.false_positives;
  Alcotest.(check int) "no deformed" 0 (List.length result.Core.Correlator.deformed);
  List.iter H.check_valid result.Core.Correlator.cags;
  (result, verdict)

let test_three_tier_basic () = ignore (check_perfect Topo.default_spec)

let test_two_tiers () =
  ignore (check_perfect { Topo.default_spec with Topo.tiers = 2; seed = 5 })

let test_five_tiers_deep () =
  ignore
    (check_perfect
       { Topo.default_spec with Topo.tiers = 5; max_depth = 4; max_fanout = 3; seed = 9 })

let test_callbacks_to_earlier_tiers () =
  (* Deep trees over three tiers force 1->2->1 call-backs. *)
  let result, _ =
    check_perfect
      { Topo.default_spec with Topo.tiers = 3; max_depth = 4; max_fanout = 2; seed = 13 }
  in
  (* At least one path should visit more than 3 contexts (a call-back). *)
  let deep =
    List.exists
      (fun cag -> List.length (Core.Cag.contexts cag) > 3)
      result.Core.Correlator.cags
  in
  Alcotest.(check bool) "call-backs exercised" true deep

let test_tiny_chunks () =
  (* 512-byte syscalls shred every message; merging must reassemble all. *)
  let result, _ =
    check_perfect { Topo.default_spec with Topo.chunk = 512; seed = 21 }
  in
  let stats = result.Core.Correlator.engine_stats in
  Alcotest.(check bool) "merging exercised" true (stats.Core.Cag_engine.send_merges > 100)

let test_heavy_skew_small_window () =
  ignore
    (check_perfect ~window:(ST.ms 1)
       { Topo.default_spec with Topo.max_skew = ST.ms 400; seed = 33 })

let test_many_clients_contention () =
  ignore
    (check_perfect
       { Topo.default_spec with Topo.clients = 20; requests_per_client = 8; seed = 41 })

let prop_random_topologies_perfect =
  QCheck.Test.make ~name:"100% accuracy on random topologies" ~count:25
    QCheck.(
      quad (int_range 2 5) (* tiers *)
        (int_range 1 10) (* clients *)
        (int_range 0 300) (* skew ms *)
        (int_range 1 1000 (* seed *)))
    (fun (tiers, clients, skew_ms, seed) ->
      let spec =
        {
          Topo.default_spec with
          Topo.tiers;
          clients;
          requests_per_client = 3;
          max_skew = ST.ms skew_ms;
          seed;
        }
      in
      let result, verdict, _ = Topo.run_and_score spec in
      verdict.Core.Accuracy.accuracy = 1.0
      && verdict.false_positives = 0
      && result.Core.Correlator.deformed = []
      && result.ranker_stats.Core.Ranker.forced_discards = 0)

let prop_chunking_invariant =
  QCheck.Test.make ~name:"accuracy independent of chunk size" ~count:12
    QCheck.(pair (int_range 256 16_384) (int_range 1 500))
    (fun (chunk, seed) ->
      let spec = { Topo.default_spec with Topo.chunk; seed; clients = 3 } in
      let _, verdict, _ = Topo.run_and_score spec in
      verdict.Core.Accuracy.accuracy = 1.0)

let prop_window_invariant =
  QCheck.Test.make ~name:"accuracy independent of window size" ~count:10
    QCheck.(pair (int_range 1 10_000) (int_range 1 500))
    (fun (window_ms, seed) ->
      let spec = { Topo.default_spec with Topo.seed = seed; clients = 3 } in
      let _, verdict, _ = Topo.run_and_score ~window:(ST.ms window_ms) spec in
      verdict.Core.Accuracy.accuracy = 1.0)

let prop_online_equals_offline =
  QCheck.Test.make ~name:"online == offline on random topologies" ~count:10
    QCheck.(pair (int_range 2 4) (int_range 1 500))
    (fun (tiers, seed) ->
      let spec =
        { Topo.default_spec with Topo.tiers; seed; clients = 4; requests_per_client = 3 }
      in
      let b = Topo.build spec in
      Simnet.Engine.run b.Topo.engine;
      let logs = Trace.Probe.logs b.probe in
      let transform = Core.Transform.config ~entry_points:[ b.entry ] () in
      let cfg = Core.Correlator.config ~transform () in
      let offline = Core.Correlator.correlate cfg logs in
      let online = Core.Online.create ~config:cfg ~hosts:b.hostnames () in
      let merged =
        List.concat_map Trace.Log.to_list logs
        |> List.stable_sort Trace.Activity.compare_by_time
      in
      List.iter (Core.Online.observe online) merged;
      Core.Online.finish online;
      let sigs cags = List.map Core.Pattern.signature_of cags in
      sigs offline.Core.Correlator.cags = sigs (Core.Online.paths online))

let () =
  Alcotest.run "topologies"
    [
      ( "shapes",
        [
          Alcotest.test_case "three tiers" `Quick test_three_tier_basic;
          Alcotest.test_case "two tiers" `Quick test_two_tiers;
          Alcotest.test_case "five tiers, deep trees" `Quick test_five_tiers_deep;
          Alcotest.test_case "call-backs to earlier tiers" `Quick
            test_callbacks_to_earlier_tiers;
          Alcotest.test_case "tiny syscall chunks" `Quick test_tiny_chunks;
          Alcotest.test_case "heavy skew, small window" `Quick test_heavy_skew_small_window;
          Alcotest.test_case "client contention" `Quick test_many_clients_contention;
        ] );
      ( "properties",
        [
          qtest prop_random_topologies_perfect;
          qtest prop_chunking_invariant;
          qtest prop_window_invariant;
          qtest prop_online_equals_offline;
        ] );
    ]
