(* Tests for lib/bundle: the PTZ1 single-file container, the paths codec,
   back-link invariants, deterministic packing, corruption handling with
   named offsets, and diff-vs-diagnose culprit agreement — the acceptance
   criteria of the bundle subsystem. *)

module S = Tiersim.Scenario
module Faults = Tiersim.Faults
module Activity = Trace.Activity
module Log = Trace.Log
module Correlator = Core.Correlator
module Pattern = Core.Pattern
module Aggregate = Core.Aggregate
module Analysis = Core.Analysis
module Cag = Core.Cag
module Json = Core.Json

let temp_dir () =
  let dir = Filename.temp_file "pt-bundle" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One memoised mid-size three-tier run shared by the tests. *)
let outcome = lazy (S.run { S.default with S.clients = 120; time_scale = 0.05; seed = 11 })

let fault_outcome =
  let cache = Hashtbl.create 4 in
  fun (label, fault) ->
    match Hashtbl.find_opt cache label with
    | Some o -> o
    | None ->
        let o =
          S.run
            { S.default with S.clients = 120; time_scale = 0.05; seed = 11; faults = [ fault ] }
        in
        Hashtbl.replace cache label o;
        o

let config () =
  let o = Lazy.force outcome in
  Correlator.config ~transform:o.S.transform ()

let pack_logs ?roll_records ~path logs =
  match Bundle.Pack.pack ?roll_records ~config:(config ()) ~source:(`Logs logs) ~path () with
  | Ok summary -> summary
  | Error e -> Alcotest.failf "pack: %s" e

let reader path =
  match Bundle.Reader.open_file path with
  | Ok r -> r
  | Error e -> Alcotest.failf "open %s: %s" path e

let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let collection_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         String.equal (Log.hostname x) (Log.hostname y)
         && Log.length x = Log.length y
         && List.for_all2 Activity.equal (Log.to_list x) (Log.to_list y))
       a b

(* The control bundle most tests share, packed once. *)
let control =
  lazy
    (let dir = temp_dir () in
     at_exit (fun () -> rm_rf dir);
     let path = Filename.concat dir "control.ptz" in
     let summary = pack_logs ~path (Lazy.force outcome).S.logs in
     (path, summary))

(* ---- container framing ---- *)

let test_container_roundtrip () =
  let sections =
    [ ("config", "{}"); ("segments/000000", String.make 1000 'x'); ("paths", "payload") ]
  in
  let data = Bundle.Container.assemble ~manifest_extra:[] sections in
  let _, parsed = ok "parse" (Bundle.Container.parse ~what:"t" data) in
  Alcotest.(check int) "section count" 3 (List.length parsed);
  List.iter
    (fun (name, body) ->
      match Bundle.Container.find parsed name with
      | None -> Alcotest.failf "section %s missing" name
      | Some s ->
          Alcotest.(check string)
            name body
            (String.sub data s.Bundle.Container.pos s.Bundle.Container.len))
    sections

let test_container_deterministic () =
  let sections = [ ("b", "bbb"); ("a", "aaa") ] in
  let d1 = Bundle.Container.assemble ~manifest_extra:[] sections in
  let d2 = Bundle.Container.assemble ~manifest_extra:[] sections in
  Alcotest.(check string) "assemble is pure" d1 d2

(* ---- pack determinism ---- *)

let test_repack_identical () =
  with_dir @@ fun dir ->
  let logs = (Lazy.force outcome).S.logs in
  let p1 = Filename.concat dir "one.ptz" in
  let p2 = Filename.concat dir "two.ptz" in
  let s1 = pack_logs ~path:p1 logs in
  let s2 = pack_logs ~path:p2 logs in
  Alcotest.(check int) "same size" s1.Bundle.Pack.bytes s2.Bundle.Pack.bytes;
  Alcotest.(check bool) "byte-identical bundles" true (String.equal (read_file p1) (read_file p2))

(* ---- read round-trip fidelity ---- *)

let test_roundtrip_collection () =
  let path, summary = Lazy.force control in
  let logs = (Lazy.force outcome).S.logs in
  let r = reader path in
  let got = ok "collection" (Bundle.Reader.collection r) in
  Alcotest.(check int) "summary records" (Log.total logs) summary.Bundle.Pack.records;
  Alcotest.(check bool)
    "embedded store reproduces the records" true
    (collection_equal (Store.Query.merge [ logs ]) got)

let test_roundtrip_paths_and_profiles () =
  let path, _ = Lazy.force control in
  let r = reader path in
  let decoded = ok "paths" (Bundle.Reader.paths r) in
  let cags = List.map (fun (p : Bundle.Codec.path) -> p.Bundle.Codec.cag) decoded.Bundle.Codec.paths in
  (* The decoded graphs must regenerate the packed profiles byte for byte:
     same patterns, same counts, same §5.4 component breakdowns. *)
  let packed = ok "profiles" (Bundle.Reader.profiles r) in
  let recomputed = Bundle.Codec.profiles_of_cags cags in
  Alcotest.(check string)
    "profiles byte-identical after decode"
    (Json.to_string (Bundle.Codec.profiles_to_json packed))
    (Json.to_string (Bundle.Codec.profiles_to_json recomputed));
  (* And they must match a fresh correlation of the same records. *)
  let o = Lazy.force outcome in
  let result = Core.Shard.correlate (config ()) o.S.logs in
  let fresh = Bundle.Codec.profiles_of_cags result.Correlator.cags in
  Alcotest.(check string)
    "profiles match a fresh correlation"
    (Json.to_string (Bundle.Codec.profiles_to_json fresh))
    (Json.to_string (Bundle.Codec.profiles_to_json packed));
  let by_id =
    List.fold_left
      (fun m (c : Cag.t) -> (c.Cag.cag_id, c) :: m)
      [] result.Correlator.cags
  in
  List.iter
    (fun (c : Cag.t) ->
      match List.assoc_opt c.Cag.cag_id by_id with
      | None -> Alcotest.failf "decoded path %d not in fresh correlation" c.Cag.cag_id
      | Some fresh ->
          Alcotest.(check string)
            (Printf.sprintf "signature of %d" c.Cag.cag_id)
            (Pattern.signature_of fresh) (Pattern.signature_of c))
    cags

(* ---- back-link invariants ---- *)

let test_every_vertex_resolves () =
  let path, summary = Lazy.force control in
  Alcotest.(check int) "no unresolved links" 0 summary.Bundle.Pack.unresolved_links;
  let r = reader path in
  let decoded = ok "paths" (Bundle.Reader.paths r) in
  let hosts = decoded.Bundle.Codec.link_hosts in
  List.iter
    (fun (p : Bundle.Codec.path) ->
      let vertices = Cag.vertices p.Bundle.Codec.cag in
      Alcotest.(check int)
        (Printf.sprintf "links rows for path %d" p.Bundle.Codec.cag.Cag.cag_id)
        (List.length vertices)
        (Array.length p.Bundle.Codec.links);
      List.iteri
        (fun i (v : Cag.vertex) ->
          let links = p.Bundle.Codec.links.(i) in
          if links = [] then
            Alcotest.failf "path %d vertex %d has no backing records"
              p.Bundle.Codec.cag.Cag.cag_id v.Cag.vid;
          let resolved = ok "resolve" (Bundle.Reader.resolve_links r ~link_hosts:hosts links) in
          (* The activity that stamped the vertex (the creating record, or
             the completing chunk of a merged receive) is always among the
             backing records. *)
          let vertex_ns = Simnet.Sim_time.to_ns v.Cag.activity.Activity.timestamp in
          if
            not
              (List.exists
                 (fun (_, _, a) -> Simnet.Sim_time.to_ns a.Activity.timestamp = vertex_ns)
                 resolved)
          then
            Alcotest.failf "path %d vertex %d: no backing record carries its timestamp"
              p.Bundle.Codec.cag.Cag.cag_id v.Cag.vid)
        vertices)
    decoded.Bundle.Codec.paths

let test_walk_resolves_every_hop () =
  let path, _ = Lazy.force control in
  let r = reader path in
  let profiles = ok "profiles" (Bundle.Reader.profiles r) in
  Alcotest.(check bool) "has patterns" true (profiles <> []);
  List.iter
    (fun (p : Bundle.Codec.profile) ->
      let view = ok "walk" (Bundle.Walk.view r ~pattern:p.Bundle.Codec.name ()) in
      Alcotest.(check string) "walk lands on the pattern" p.Bundle.Codec.name view.Bundle.Walk.pattern;
      Alcotest.(check bool) "has hops" true (view.Bundle.Walk.hops <> []);
      Alcotest.(check bool)
        "begin resolves" true
        (view.Bundle.Walk.begin_records <> []);
      let share_sum =
        List.fold_left (fun acc (h : Bundle.Walk.hop) -> acc +. h.Bundle.Walk.share) 0.0
          view.Bundle.Walk.hops
      in
      Alcotest.(check bool)
        "hop shares cover the end-to-end time" true
        (Float.abs (share_sum -. 1.0) < 1e-6);
      List.iter
        (fun (h : Bundle.Walk.hop) ->
          if h.Bundle.Walk.records = [] then
            Alcotest.failf "pattern %s: hop %s resolves to no records" p.Bundle.Codec.name
              (Core.Latency.component_label h.Bundle.Walk.comp))
        view.Bundle.Walk.hops)
    profiles

(* Back-links are coordinates into the canonical merged record order, so
   they must survive store compaction: pack a many-segment store, compact
   it to one segment, repack — identical paths and patterns sections. *)
let test_links_survive_compaction () =
  with_dir @@ fun store_dir ->
  with_dir @@ fun out_dir ->
  let logs = (Lazy.force outcome).S.logs in
  let writer = Store.Writer.create ~roll_records:1024 ~dir:store_dir () in
  Store.Writer.ingest writer logs;
  let wstats = Store.Writer.close writer in
  Alcotest.(check bool) "multiple segments" true (wstats.Store.Writer.segments > 2);
  let pack_store path =
    match
      Bundle.Pack.pack ~config:(config ()) ~source:(`Store_dir store_dir) ~path ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "pack store: %s" e
  in
  let section path name =
    let data = read_file path in
    let _, sections = ok "parse" (Bundle.Container.parse ~what:path data) in
    match Bundle.Container.find sections name with
    | Some s -> String.sub data s.Bundle.Container.pos s.Bundle.Container.len
    | None -> Alcotest.failf "%s: no %s section" path name
  in
  let before = Filename.concat out_dir "before.ptz" in
  let after = Filename.concat out_dir "after.ptz" in
  let s1 = pack_store before in
  (match Store.Compact.run ~min_records:max_int ~dir:store_dir () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compact: %s" e);
  let s2 = pack_store after in
  Alcotest.(check bool) "compaction merged segments" true
    (s2.Bundle.Pack.segments < s1.Bundle.Pack.segments);
  Alcotest.(check string)
    "paths section identical across compaction" (section before "paths") (section after "paths");
  Alcotest.(check string)
    "patterns section identical across compaction" (section before "patterns")
    (section after "patterns")

(* ---- embedded query ---- *)

let test_query_matches_store () =
  with_dir @@ fun store_dir ->
  with_dir @@ fun out_dir ->
  let logs = (Lazy.force outcome).S.logs in
  let writer = Store.Writer.create ~roll_records:1024 ~dir:store_dir () in
  Store.Writer.ingest writer logs;
  ignore (Store.Writer.close writer);
  let path = Filename.concat out_dir "b.ptz" in
  (match Bundle.Pack.pack ~config:(config ()) ~source:(`Store_dir store_dir) ~path () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pack: %s" e);
  let r = reader path in
  let all = Log.to_list (List.hd logs) in
  let mid = List.nth all (List.length all / 2) in
  let mid_ns = Simnet.Sim_time.to_ns mid.Activity.timestamp in
  let predicate = Store.Query.predicate ~since_ns:mid_ns () in
  let from_bundle, bstats = ok "bundle query" (Bundle.Reader.query r predicate) in
  let from_store, sstats = ok "store query" (Store.Query.run ~dir:store_dir predicate) in
  Alcotest.(check bool)
    "bundle query equals store query" true
    (collection_equal from_store from_bundle);
  Alcotest.(check int)
    "same pruning" sstats.Store.Query.segments_scanned bstats.Store.Query.segments_scanned;
  Alcotest.(check bool)
    "pruning engaged" true
    (bstats.Store.Query.segments_scanned < bstats.Store.Query.segments_total)

(* ---- corruption: named offsets, no exceptions ---- *)

let expect_offset_error what = function
  | Ok _ -> Alcotest.failf "%s: corrupt bundle accepted" what
  | Error e ->
      let mentions_offset =
        let n = String.length e in
        let rec scan i =
          i + 6 <= n && (String.equal (String.sub e i 6) "offset" || scan (i + 1))
        in
        scan 0
      in
      if not mentions_offset then Alcotest.failf "%s: error does not name an offset: %s" what e

let test_truncated_bundle () =
  let path, _ = Lazy.force control in
  let data = read_file path in
  List.iter
    (fun len ->
      expect_offset_error
        (Printf.sprintf "truncated to %d" len)
        (Bundle.Reader.of_string (String.sub data 0 len)))
    [ 0; 3; 4; 7; 8; String.length data / 3; String.length data - 1 ]

let test_byte_flips_detected () =
  let path, _ = Lazy.force control in
  let data = read_file path in
  let _, sections = ok "parse" (Bundle.Container.parse ~what:path data) in
  (* A flip anywhere in any section body must be caught by the per-section
     checksum at open, naming the section and its offset. *)
  List.iter
    (fun (s : Bundle.Container.section) ->
      let at = s.Bundle.Container.pos + (s.Bundle.Container.len / 2) in
      let corrupted = Bytes.of_string data in
      Bytes.set corrupted at (Char.chr (Char.code (Bytes.get corrupted at) lxor 0xff));
      expect_offset_error
        (Printf.sprintf "flip in %s" s.Bundle.Container.name)
        (Bundle.Reader.of_string (Bytes.to_string corrupted)))
    sections;
  (* Bad magic. *)
  let corrupted = Bytes.of_string data in
  Bytes.set corrupted 0 'X';
  expect_offset_error "bad magic" (Bundle.Reader.of_string (Bytes.to_string corrupted))

let test_decode_region_offsets () =
  let logs = (Lazy.force outcome).S.logs in
  let _, seg = Store.Segment.encode ~id:0 ~policy:"none" logs in
  let _meta, payload_pos, payload_len =
    ok "header" (Store.Segment.parse_header_at seg ~pos:0 ~len:(String.length seg) ~what:"seg")
  in
  (* Decoding at the true offset succeeds... *)
  (match Trace.Binary_format.decode_region seg ~pos:payload_pos ~len:payload_len with
  | Ok c -> Alcotest.(check int) "records" (Log.total logs) (Log.total c)
  | Error e -> Alcotest.failf "decode_region: %s" e);
  (* ...and every failure names an absolute offset inside the region. *)
  expect_offset_error "truncated region"
    (Result.map ignore
       (Trace.Binary_format.decode_region
          (String.sub seg 0 (payload_pos + (payload_len / 2)))
          ~pos:payload_pos
          ~len:(payload_len / 2)));
  expect_offset_error "bad region bounds"
    (Result.map ignore
       (Trace.Binary_format.decode_region seg ~pos:payload_pos ~len:(payload_len + 10)))

(* ---- diff vs diagnose ---- *)

let fault_cases =
  [ ("ejb-delay", Faults.ejb_delay); ("db-lock", Faults.database_lock);
    ("ejb-network", Faults.ejb_network) ]

(* The offline diagnose selection: most frequent observed pattern the
   baseline also saw, §5.4-compared; culprit is the top suspect. *)
let diagnose_culprit baseline_cags observed_cags =
  let base = Pattern.classify baseline_cags in
  let rec pick = function
    | [] -> None
    | (o : Pattern.t) :: rest -> (
        match List.find_opt (fun b -> String.equal b.Pattern.name o.Pattern.name) base with
        | Some b -> Some (b, o)
        | None -> pick rest)
  in
  match pick (Pattern.classify observed_cags) with
  | None -> None
  | Some (b, o) -> (
      let report =
        Analysis.diagnose ~baseline:(Aggregate.of_pattern b) ~observed:(Aggregate.of_pattern o)
      in
      match report.Analysis.suspects with
      | s :: _ -> Some (Analysis.subject_label s.Analysis.subject)
      | [] -> None)

let test_diff_names_diagnose_culprit () =
  with_dir @@ fun dir ->
  let control_path, _ = Lazy.force control in
  let a = reader control_path in
  let baseline = Core.Shard.correlate (config ()) (Lazy.force outcome).S.logs in
  List.iter
    (fun (label, fault) ->
      let fo = fault_outcome (label, fault) in
      let fpath = Filename.concat dir (label ^ ".ptz") in
      ignore (pack_logs ~path:fpath fo.S.logs);
      let b = reader fpath in
      let d = ok "diff" (Bundle.Diff.diff a b) in
      let observed = Core.Shard.correlate (config ()) fo.S.logs in
      let expected = diagnose_culprit baseline.Correlator.cags observed.Correlator.cags in
      let got =
        Option.map
          (fun (s : Analysis.suspect) -> Analysis.subject_label s.Analysis.subject)
          d.Bundle.Diff.culprit
      in
      (match expected with
      | None -> Alcotest.failf "%s: diagnose found no culprit" label
      | Some _ -> ());
      Alcotest.(check (option string)) (label ^ " culprit agrees") expected got;
      Alcotest.(check bool)
        (label ^ " mix covers both runs")
        true
        (List.for_all
           (fun (m : Bundle.Diff.mix_delta) -> m.Bundle.Diff.count_a + m.Bundle.Diff.count_b > 0)
           d.Bundle.Diff.mix))
    fault_cases

let test_diff_self_is_quiet () =
  let path, _ = Lazy.force control in
  let a = reader path in
  let b = reader path in
  let d = ok "diff" (Bundle.Diff.diff a b) in
  Alcotest.(check int) "same totals" d.Bundle.Diff.total_a d.Bundle.Diff.total_b;
  List.iter
    (fun (m : Bundle.Diff.mix_delta) ->
      Alcotest.(check bool)
        "no frequency shift" true
        (Float.abs (m.Bundle.Diff.freq_b -. m.Bundle.Diff.freq_a) < 1e-12))
    d.Bundle.Diff.mix;
  List.iter
    (fun (r : Bundle.Diff.pattern_report) ->
      List.iter
        (fun (x : Analysis.delta) ->
          Alcotest.(check bool)
            "no share change" true
            (Float.abs x.Analysis.change_pp < 1e-9))
        r.Bundle.Diff.report.Analysis.deltas)
    d.Bundle.Diff.reports

(* ---- scenario + telemetry sections ---- *)

let test_config_and_telemetry_sections () =
  with_dir @@ fun dir ->
  let logs = (Lazy.force outcome).S.logs in
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg ~help:"test" "pt_test_total" in
  Telemetry.Registry.incr c;
  let scenario = Json.Obj [ ("clients", Json.Int 120) ] in
  let path = Filename.concat dir "t.ptz" in
  (match
     Bundle.Pack.pack
       ~telemetry:(Telemetry.Registry.snapshot reg)
       ~scenario ~config:(config ()) ~source:(`Logs logs) ~path ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pack: %s" e);
  let r = reader path in
  (match ok "config" (Bundle.Reader.config r) with
  | Some j -> (
      match Json.member "scenario" j with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "config section lost the scenario")
  | None -> Alcotest.fail "no config section");
  match ok "telemetry" (Bundle.Reader.telemetry r) with
  | Some families ->
      let found =
        List.exists
          (fun (f : Telemetry.Registry.family) ->
            String.equal f.Telemetry.Registry.name "pt_test_total")
          families
      in
      Alcotest.(check bool) "snapshot round-trips" true found
  | None -> Alcotest.fail "no telemetry section"

let () =
  Alcotest.run "bundle"
    [
      ( "container",
        [
          Alcotest.test_case "roundtrip" `Quick test_container_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_container_deterministic;
        ] );
      ( "pack",
        [
          Alcotest.test_case "repack is byte-identical" `Quick test_repack_identical;
          Alcotest.test_case "collection round-trip" `Quick test_roundtrip_collection;
          Alcotest.test_case "paths and profiles round-trip" `Quick
            test_roundtrip_paths_and_profiles;
          Alcotest.test_case "config and telemetry sections" `Quick
            test_config_and_telemetry_sections;
        ] );
      ( "back-links",
        [
          Alcotest.test_case "every vertex resolves" `Quick test_every_vertex_resolves;
          Alcotest.test_case "walk resolves every hop" `Quick test_walk_resolves_every_hop;
          Alcotest.test_case "links survive compaction" `Quick test_links_survive_compaction;
        ] );
      ( "query",
        [ Alcotest.test_case "matches the directory store" `Quick test_query_matches_store ] );
      ( "corruption",
        [
          Alcotest.test_case "truncation names offsets" `Quick test_truncated_bundle;
          Alcotest.test_case "byte flips are detected" `Quick test_byte_flips_detected;
          Alcotest.test_case "decode_region names offsets" `Quick test_decode_region_offsets;
        ] );
      ( "diff",
        [
          Alcotest.test_case "names the diagnose culprit" `Quick test_diff_names_diagnose_culprit;
          Alcotest.test_case "self-diff is quiet" `Quick test_diff_self_is_quiet;
        ] );
    ]
