(* Tests for the fault-tolerant online pipeline: input quarantine (feed
   never raises), straggler eviction and resync, bounded-memory
   backpressure, the reorder-slack equivalence with offline correlation,
   and the GC safeguards (horizon clamp, evicted-send deformation). *)

module H = Test_helpers.Helpers
module S = Tiersim.Scenario
module Faults = Tiersim.Faults
module Activity = Trace.Activity
module Log = Trace.Log
module Loss = Trace.Loss
module Ranker = Core.Ranker
module Online = Core.Online
module ST = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

let reason : Ranker.reject_reason Alcotest.testable =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Ranker.reject_reason_to_string r))
    ( = )

let result : Ranker.feed_result Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | Ranker.Accepted -> Format.pp_print_string fmt "Accepted"
      | Ranker.Resorted -> Format.pp_print_string fmt "Resorted"
      | Ranker.Quarantined r ->
          Format.fprintf fmt "Quarantined %s" (Ranker.reject_reason_to_string r))
    ( = )

let online_ranker ?(window = ST.ms 10) ?(skew_allowance = ST.ms 10) ?straggler_timeout
    ?max_buffered ?reorder_slack hosts =
  Ranker.create_online ~window ~skew_allowance ?straggler_timeout ?max_buffered
    ?reorder_slack
    ~has_mmap_send:(fun _ -> false)
    ~hosts ()

let web_begin ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1
let app_begin ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:1

let drain r =
  let rec loop acc =
    match Ranker.rank_step r with
    | Ranker.Candidate a -> loop (a :: acc)
    | Ranker.Need_input | Ranker.Exhausted -> List.rev acc
  in
  loop []

let ms n = n * 1_000_000

(* ---- quarantine: every reject reason, and never an exception ---- *)

let test_quarantine_unknown_host () =
  let r = online_ranker [ "web" ] in
  Alcotest.check result "unknown host quarantined"
    (Ranker.Quarantined Ranker.Unknown_host)
    (Ranker.feed r (app_begin 0));
  Alcotest.(check int) "logged" 1 (List.length (Ranker.quarantine_log r))

let test_quarantine_after_close () =
  let r = online_ranker [ "web" ] in
  Ranker.close_input r;
  Alcotest.check result "post-close feed quarantined" (Ranker.Quarantined Ranker.Closed)
    (Ranker.feed r (web_begin 0))

let test_quarantine_duplicate () =
  let r = online_ranker [ "web" ] in
  let a = web_begin 0 in
  Alcotest.check result "first copy accepted" Ranker.Accepted (Ranker.feed r a);
  Alcotest.check result "second copy quarantined" (Ranker.Quarantined Ranker.Duplicate)
    (Ranker.feed r a)

let test_quarantine_large_regression () =
  let r = online_ranker ~skew_allowance:(ST.ms 10) [ "web" ] in
  Alcotest.check result "t=50ms" Ranker.Accepted (Ranker.feed r (web_begin (ms 50)));
  Alcotest.check result "40 ms behind is beyond the allowance"
    (Ranker.Quarantined Ranker.Regression)
    (Ranker.feed r (web_begin (ms 10)))

let test_quarantine_stale_behind_commit () =
  (* web commits (pops) up to t=1ms while app's report at t=20ms keeps the
     pipeline moving; a late web record at t=0.5ms is within the skew
     allowance but behind the committed order: Stale, not Resorted. *)
  let r = online_ranker ~skew_allowance:(ST.ms 10) [ "web"; "app" ] in
  Alcotest.check result "web t=0" Ranker.Accepted (Ranker.feed r (web_begin 0));
  Alcotest.check result "web t=1ms" Ranker.Accepted (Ranker.feed r (web_begin (ms 1)));
  Alcotest.check result "app t=20ms" Ranker.Accepted (Ranker.feed r (app_begin (ms 20)));
  let popped = drain r in
  Alcotest.(check int) "web records committed" 2 (List.length popped);
  Alcotest.check result "late record behind the commit point"
    (Ranker.Quarantined Ranker.Stale)
    (Ranker.feed r (web_begin 500_000));
  Alcotest.(check (list (pair reason Alcotest.int)))
    "per-reason stats"
    [
      (Ranker.Unknown_host, 0); (Ranker.Closed, 0); (Ranker.Duplicate, 0);
      (Ranker.Regression, 0); (Ranker.Stale, 1);
    ]
    (Ranker.stats r).Ranker.quarantined

let test_resort_within_allowance () =
  (* A record 3 ms late (within the 10 ms allowance) is re-sorted into
     place: candidates still come out in timestamp order. *)
  let r = online_ranker ~skew_allowance:(ST.ms 10) [ "web" ] in
  Alcotest.check result "t=0" Ranker.Accepted (Ranker.feed r (web_begin 0));
  Alcotest.check result "t=5ms" Ranker.Accepted (Ranker.feed r (web_begin (ms 5)));
  Alcotest.check result "t=2ms resorted" Ranker.Resorted (Ranker.feed r (web_begin (ms 2)));
  Ranker.close_input r;
  let ts = List.map (fun (a : Activity.t) -> ST.to_ns a.timestamp) (drain r) in
  Alcotest.(check (list int)) "timestamp order restored" [ 0; ms 2; ms 5 ] ts;
  Alcotest.(check int) "counted" 1 (Ranker.stats r).Ranker.resorted

(* ---- straggler eviction and resync ---- *)

let test_straggler_eviction_and_resync () =
  let r = online_ranker ~straggler_timeout:(ST.ms 50) [ "web"; "app" ] in
  ignore (Ranker.feed r (app_begin 0) : Ranker.feed_result);
  for i = 0 to 20 do
    ignore (Ranker.feed r (web_begin (ms (10 * i))) : Ranker.feed_result)
  done;
  (* app last reported at t=0 while the watermark is at t=200ms: far past
     the 50 ms timeout, so it must not stall web's candidates. *)
  let popped = drain r in
  Alcotest.(check bool) "web emits despite the silent peer" true (List.length popped >= 20);
  Alcotest.(check int) "one straggler evicted" 1 (Ranker.stats r).Ranker.stragglers_evicted;
  Alcotest.(check int) "active straggler gauge" 1 (Ranker.stragglers_active r);
  (* app catches back up to within the timeout of the watermark. *)
  Alcotest.check result "catch-up accepted" Ranker.Accepted
    (Ranker.feed r (app_begin (ms 180)));
  Alcotest.(check int) "resynced" 1 (Ranker.stats r).Ranker.straggler_resyncs;
  Alcotest.(check int) "no active stragglers" 0 (Ranker.stragglers_active r)

let test_no_eviction_without_timeout () =
  let r = online_ranker [ "web"; "app" ] in
  ignore (Ranker.feed r (app_begin 0) : Ranker.feed_result);
  for i = 0 to 20 do
    ignore (Ranker.feed r (web_begin (ms (10 * i))) : Ranker.feed_result)
  done;
  let popped = drain r in
  (* Without a straggler timeout the silent stream stalls everything past
     its last report plus the allowance. *)
  Alcotest.(check bool) "stalled behind the silent stream" true (List.length popped <= 2);
  Alcotest.(check int) "nothing evicted" 0 (Ranker.stats r).Ranker.stragglers_evicted

(* ---- bounded-memory backpressure ---- *)

let test_backpressure_bounds_held_records () =
  let limit = 50 in
  let r = online_ranker ~max_buffered:limit [ "web"; "app" ] in
  (* app never reports: without backpressure every web record would sit
     buffered forever waiting for reassurance. *)
  for i = 0 to 199 do
    ignore (Ranker.feed r (web_begin (ms i)) : Ranker.feed_result);
    ignore (drain r : Activity.t list);
    Alcotest.(check bool)
      (Printf.sprintf "held <= limit after record %d" i)
      true
      (Ranker.held r <= limit)
  done;
  Alcotest.(check bool) "forced pops counted" true
    ((Ranker.stats r).Ranker.backpressure_pops > 0);
  Ranker.close_input r;
  ignore (drain r : Activity.t list);
  Alcotest.(check int) "every record still emitted" 200 (Ranker.stats r).Ranker.candidates

(* ---- reorder slack: online equals offline under bounded reordering ---- *)

let logs_of_requests n =
  let reqs = List.init n (fun k -> H.simple_request ~base:(k * ms 15) ()) in
  let pick f = List.concat_map f reqs in
  [
    Log.of_list ~hostname:"web" (pick (fun (w, _, _) -> w));
    Log.of_list ~hostname:"app" (pick (fun (_, a, _) -> a));
    Log.of_list ~hostname:"db" (pick (fun (_, _, d) -> d));
  ]

let request_config () =
  let transform = Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ] () in
  Core.Correlator.config ~transform ~window:(ST.ms 10) ()

let prop_reordered_feed_matches_offline =
  QCheck.Test.make ~count:25 ~name:"reordered feed + slack = offline multiset"
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, n) ->
      let logs = logs_of_requests n in
      let cfg = request_config () in
      let offline = Core.Correlator.correlate cfg logs in
      let max_delay = ST.ms 2 in
      let feed =
        Loss.reorder_feed ~rng:(Simnet.Rng.create ~seed) ~p:0.3 ~max_delay logs
      in
      let online =
        Online.create ~config:cfg ~hosts:[ "web"; "app"; "db" ] ~reorder_slack:max_delay ()
      in
      List.iter (Online.observe online) feed;
      Online.finish online;
      let sigs cags = List.sort compare (List.map Core.Pattern.signature_of cags) in
      List.length (Online.quarantine_log online) = 0
      && sigs (Online.paths online) = sigs offline.Core.Correlator.cags)

(* ---- never raises: adversarial feed accounting ---- *)

let prop_feed_never_raises_and_accounts =
  QCheck.Test.make ~count:50 ~name:"feed never raises; every record accounted"
    QCheck.(list_of_size Gen.(int_range 1 80) (triple (int_bound 2) (int_bound 50) (int_bound 3)))
    (fun records ->
      let r = online_ranker ~skew_allowance:(ST.ms 5) [ "web"; "app" ] in
      let accepted = ref 0 in
      let half = List.length records / 2 in
      List.iteri
        (fun i (h, ts_ms, k) ->
          if i = half then Ranker.close_input r;
          let host = List.nth [ "web"; "app"; "mars" ] h in
          let kind =
            match k with
            | 0 -> Activity.Begin
            | 1 -> Activity.Send
            | 2 -> Activity.Receive
            | _ -> Activity.End_
          in
          let a =
            H.act ~kind ~ts:(ms ts_ms) ~ctx:(H.ctx ~host ()) ~flow:H.client_web_flow ~size:1
          in
          (match Ranker.feed r a with
          | Ranker.Accepted | Ranker.Resorted -> incr accepted
          | Ranker.Quarantined _ -> ());
          ignore (Ranker.rank_step r : Ranker.step))
        records;
      ignore (drain r : Activity.t list);
      !accepted + Ranker.quarantined_total r = List.length records)

(* ---- Online: observe after finish is quarantined, not an exception ---- *)

let test_observe_after_finish () =
  let w, _, _ = H.simple_request () in
  let cfg = request_config () in
  let online = Online.create ~config:cfg ~hosts:[ "web"; "app"; "db" ] () in
  Online.finish online;
  List.iter (Online.observe online) w;
  let closed =
    List.filter (fun (r, _) -> r = Ranker.Closed) (Online.quarantine_log online)
  in
  Alcotest.(check int) "every post-close record quarantined as Closed" (List.length w)
    (List.length closed)

(* ---- GC safeguards ---- *)

let test_gc_clamp_keeps_trace_start_sends () =
  (* A request starting at t=0 with a small skew allowance: the periodic
     GC horizon (candidate ts - 2 * allowance) goes negative early in the
     trace and must clamp at the origin instead of evicting the opening
     SENDs. *)
  let logs = H.logs_of_request ~base:0 () in
  let transform = Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ] () in
  let cfg =
    Core.Correlator.config ~transform ~window:(ST.ms 10) ~skew_allowance:(ST.ms 2) ()
  in
  let r = Core.Correlator.correlate cfg logs in
  Alcotest.(check int) "one complete path" 1 (List.length r.Core.Correlator.cags);
  Alcotest.(check int) "nothing evicted" 0
    r.Core.Correlator.engine_stats.Core.Cag_engine.evicted_sends

let test_gc_eviction_flags_open_cag_deformed () =
  let engine = Core.Cag_engine.create () in
  Core.Cag_engine.step engine (web_begin 0);
  Core.Cag_engine.step engine
    (H.act ~kind:Activity.Send ~ts:(ms 1) ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1);
  (* The RECEIVE never arrives; GC past the send must count the eviction
     and flag the still-open path as deformed. *)
  let evicted = Core.Cag_engine.gc engine ~older_than:(ST.of_ns (ms 100)) in
  Alcotest.(check bool) "something evicted" true (evicted >= 1);
  Alcotest.(check int) "evicted send counted" 1
    (Core.Cag_engine.stats engine).Core.Cag_engine.evicted_sends;
  match Core.Cag_engine.unfinished engine with
  | [ cag ] -> Alcotest.(check bool) "open path deformed" true (Core.Cag.is_deformed cag)
  | l -> Alcotest.failf "expected one open path, got %d" (List.length l)

(* ---- end to end: one host permanently silent mid-run ---- *)

let test_silent_host_end_to_end () =
  let spec =
    {
      S.default with
      S.clients = 20;
      time_scale = 0.02;
      faults =
        [ Faults.host_silence ~host:"app1" ~after:(ST.span_scale 0.02 (ST.ms 300_000)) ];
    }
  in
  let outcome = S.run spec in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let hosts = List.map Log.hostname outcome.S.logs in
  let merged =
    List.concat_map Log.to_list outcome.S.logs
    |> List.stable_sort Activity.compare_by_time
  in
  let replay ?straggler_timeout () =
    let online = Online.create ~config:cfg ~hosts ?straggler_timeout () in
    List.iter (Online.observe online) merged;
    let live = List.length (Online.paths online) in
    Online.finish online;
    (online, live)
  in
  let _, live_stalled = replay () in
  let online, live = replay ~straggler_timeout:(ST.ms 500) () in
  let paths = Online.paths online in
  Alcotest.(check bool) "paths produced" true (List.length paths > 0);
  Alcotest.(check bool) "straggler evicted" true
    ((Online.ranker_stats online).Ranker.stragglers_evicted >= 1);
  Alcotest.(check bool) "keeps emitting after the silence" true (live > live_stalled);
  Alcotest.(check bool) "post-silence paths flagged deformed" true
    (List.exists Core.Cag.is_deformed paths);
  Alcotest.(check int) "clean feed, nothing quarantined" 0
    (List.length (Online.quarantine_log online))

(* ---- end to end: the in-band collection plane vs out-of-band logs ---- *)

(* One canonical string per path: the pattern signature plus the full
   rendered breakdown, so "byte-identical" means exactly that. *)
let canon cags =
  List.sort compare
    (List.map
       (fun c -> Core.Pattern.signature_of c ^ "\n" ^ Core.Cag_render.render c)
       cags)

let install_collect svc deploy =
  deploy := Some (Collect.Deploy.install ~telemetry:(Telemetry.Registry.create ()) svc)

let check_identity_of what (s : Collect.Agent.stats) =
  Alcotest.(check int)
    (what ^ ": observed = reduced + dropped + acked + spooled + queued")
    s.Collect.Agent.observed
    (s.Collect.Agent.reduced + Collect.Agent.dropped_total s
   + s.Collect.Agent.acked_records + s.Collect.Agent.spooled_records
   + s.Collect.Agent.queued_records)

let test_in_band_equals_out_of_band () =
  (* Same run, two collection paths: the agents ship every record in-band
     over the simulated network to the online correlation, while the
     scenario's out-of-band logs capture the probe output directly. A
     faultless shipping plane must not change a single byte of the
     resulting patterns or latency breakdowns. *)
  let spec = { S.default with S.clients = 20; time_scale = 0.02 } in
  let deploy = ref None in
  let outcome =
    S.run
      ~before_run:(fun svc -> install_collect svc deploy)
      ~after_run:(fun _ -> Collect.Deploy.finish (Option.get !deploy))
      spec
  in
  let d = Option.get !deploy in
  let online = Collect.Deploy.online d in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let offline = Core.Correlator.correlate cfg outcome.S.logs in
  Alcotest.(check int) "clean delivery, nothing quarantined" 0
    (List.length (Online.quarantine_log online));
  Alcotest.(check (list string))
    "patterns and breakdowns byte-identical to out-of-band"
    (canon offline.Core.Correlator.cags)
    (canon (Online.paths online));
  Alcotest.(check (list string))
    "deformed paths byte-identical to out-of-band"
    (canon offline.Core.Correlator.deformed)
    (canon (Online.deformed online));
  (* every probe record reached an agent, and every agent reconciles *)
  let total_logged = List.fold_left (fun acc l -> acc + Log.length l) 0 outcome.S.logs in
  let observed, acked =
    List.fold_left
      (fun (o, a) agent ->
        let s = Collect.Agent.stats agent in
        check_identity_of "faultless end to end" s;
        Alcotest.(check int)
          (Collect.Agent.host agent ^ ": no loss on a faultless run")
          0
          (Collect.Agent.dropped_total s);
        (o + s.Collect.Agent.observed, a + s.Collect.Agent.acked_records))
      (0, 0) (Collect.Deploy.agents d)
  in
  Alcotest.(check int) "agents observed exactly the out-of-band records" total_logged
    observed;
  Alcotest.(check int) "collector delivered exactly the acked records" acked
    (Collect.Collector.delivered_records (Collect.Deploy.collector d))

let test_agent_crash_subset_and_accounting () =
  (* app1's agent crashes mid-run and restarts two scaled minutes later:
     records observed while it is down are lost at the edge, so the
     in-band complete paths must be a strict subset of what the
     out-of-band logs support, the outage-spanning paths must surface as
     deformed, and the pt_collect_* accounting must reconcile. *)
  let scale = 0.02 in
  let spec =
    {
      S.default with
      S.clients = 20;
      time_scale = scale;
      faults =
        [
          Faults.agent_crash ~host:"app1"
            ~after:(ST.span_scale scale (ST.ms 200_000))
            ~restart_after:(Some (ST.span_scale scale (ST.ms 100_000)));
        ];
    }
  in
  let deploy = ref None in
  let outcome =
    S.run
      ~before_run:(fun svc -> install_collect svc deploy)
      ~after_run:(fun _ -> Collect.Deploy.finish (Option.get !deploy))
      spec
  in
  let d = Option.get !deploy in
  let online = Collect.Deploy.online d in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let offline = Core.Correlator.correlate cfg outcome.S.logs in
  let intact, truncated =
    List.partition (fun c -> not (Core.Cag.is_deformed c)) (Online.paths online)
  in
  let on_complete = canon intact in
  let off_complete = canon offline.Core.Correlator.cags in
  Alcotest.(check bool) "every intact in-band path exists out-of-band" true
    (List.for_all (fun p -> List.mem p off_complete) on_complete);
  Alcotest.(check bool) "the outage lost at least one path" true
    (List.length on_complete < List.length off_complete);
  (* requests whose app1 records were dropped close as truncated
     renditions (an unmatched interior SEND) and must say so *)
  Alcotest.(check bool) "outage-spanning paths flagged deformed" true
    (List.length truncated > 0);
  let app = Option.get (Collect.Deploy.agent d ~host:"app1") in
  let s = Collect.Agent.stats app in
  check_identity_of "crashed agent" s;
  Alcotest.(check bool) "records dropped at the edge" true
    (Collect.Agent.dropped_total s > 0);
  Alcotest.(check bool) "agent reconnected after restart" true
    (s.Collect.Agent.connections >= 2);
  let acked =
    List.fold_left
      (fun a agent ->
        check_identity_of "crash end to end" (Collect.Agent.stats agent);
        a + (Collect.Agent.stats agent).Collect.Agent.acked_records)
      0 (Collect.Deploy.agents d)
  in
  Alcotest.(check int) "delivered = emitted - dropped - still-buffered" acked
    (Collect.Collector.delivered_records (Collect.Deploy.collector d))

let () =
  Alcotest.run "online_faults"
    [
      ( "quarantine",
        [
          Alcotest.test_case "unknown host" `Quick test_quarantine_unknown_host;
          Alcotest.test_case "after close" `Quick test_quarantine_after_close;
          Alcotest.test_case "duplicate" `Quick test_quarantine_duplicate;
          Alcotest.test_case "large regression" `Quick test_quarantine_large_regression;
          Alcotest.test_case "stale behind commit" `Quick test_quarantine_stale_behind_commit;
          Alcotest.test_case "resort within allowance" `Quick test_resort_within_allowance;
          qtest prop_feed_never_raises_and_accounts;
        ] );
      ( "straggler",
        [
          Alcotest.test_case "eviction and resync" `Quick test_straggler_eviction_and_resync;
          Alcotest.test_case "no eviction without timeout" `Quick
            test_no_eviction_without_timeout;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "bounds held records" `Quick test_backpressure_bounds_held_records ]
      );
      ("reorder", [ qtest prop_reordered_feed_matches_offline ]);
      ( "online",
        [
          Alcotest.test_case "observe after finish" `Quick test_observe_after_finish;
          Alcotest.test_case "silent host end to end" `Slow test_silent_host_end_to_end;
        ] );
      ( "gc",
        [
          Alcotest.test_case "horizon clamped at origin" `Quick
            test_gc_clamp_keeps_trace_start_sends;
          Alcotest.test_case "eviction flags open path" `Quick
            test_gc_eviction_flags_open_cag_deformed;
        ] );
      ( "collect",
        [
          Alcotest.test_case "in-band equals out-of-band" `Slow
            test_in_band_equals_out_of_band;
          Alcotest.test_case "agent crash: subset, deformed, accounting" `Slow
            test_agent_crash_subset_and_accounting;
        ] );
    ]
