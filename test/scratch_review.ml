(* Scratch: does compaction reset len to 0 and let a regression slip through? *)
module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Ranker = Core.Ranker
module ST = Simnet.Sim_time

let ms n = n * 1_000_000
let web_begin ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1
let app_begin ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:1

let drain r =
  let rec loop n =
    match Ranker.rank_step r with
    | Ranker.Candidate _ -> loop (n + 1)
    | Ranker.Need_input | Ranker.Exhausted -> n
  in
  loop 0

let show = function
  | Ranker.Accepted -> "Accepted"
  | Ranker.Resorted -> "Resorted"
  | Ranker.Quarantined r -> "Quarantined " ^ Ranker.reject_reason_to_string r

let () =
  let r =
    Ranker.create_online ~window:(ST.ms 10) ~skew_allowance:(ST.ms 10)
      ~has_mmap_send:(fun _ -> false)
      ~hosts:[ "web"; "app" ] ()
  in
  (* Feed 200 interleaved records per host so everything gets fetched,
     popped, and the consumed prefix compacted (cursor > 64). *)
  for i = 0 to 199 do
    ignore (Ranker.feed r (web_begin (ms i)) : Ranker.feed_result);
    ignore (Ranker.feed r (app_begin (ms i)) : Ranker.feed_result);
    ignore (drain r : int)
  done;
  Printf.printf "held after drain: %d\n" (Ranker.held r);
  (* Late web record 5 ms behind web's last_ts (199 ms), within the 10 ms
     allowance, but far behind the commit point (~189 ms was popped):
     should be Quarantined Stale, never plain Accepted. *)
  let res = Ranker.feed r (web_begin (ms 194)) in
  Printf.printf "late-within-allowance result: %s\n" (show res);
  (* And one behind by MORE than the allowance: should be Regression. *)
  let res2 = Ranker.feed r (web_begin (ms 100)) in
  Printf.printf "far-behind result: %s\n" (show res2)
