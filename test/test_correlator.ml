(* Integration tests for the full Correlator pipeline over hand-built and
   synthetic multi-request logs. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Log = Trace.Log
module Correlator = Core.Correlator
module Transform = Core.Transform
module Cag = Core.Cag
module Sim_time = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

let entry = H.ep "10.0.1.1" 80

(* Raw (SEND/RECEIVE only) logs for n interleaved requests across three
   nodes, with per-node skews. Request i runs on its own web worker but
   they overlap in time. *)
let raw_multi_request ?(n = 5) ?(askew = 0) ?(dskew = 0) () =
  let per_request i =
    let base = i * 300_000 in
    let web_ctx = H.ctx ~host:"web" ~program:"httpd" ~pid:(10 + i) ~tid:(10 + i) () in
    let app_ctx = H.ctx ~host:"app" ~program:"java" ~pid:20 ~tid:(210 + i) () in
    let client_flow = H.flow "10.0.0.1" (40_000 + i) "10.0.1.1" 80 in
    let back_flow = Simnet.Address.reverse client_flow in
    let wa_flow = H.flow "10.0.1.1" (41_000 + i) "10.0.2.1" 8009 in
    let aw_flow = Simnet.Address.reverse wa_flow in
    let w t = base + t and a t = base + t + askew in
    ( [
        H.act ~kind:Activity.Receive ~ts:(w 0) ~ctx:web_ctx ~flow:client_flow ~size:400;
        H.act ~kind:Activity.Send ~ts:(w 1_000_000) ~ctx:web_ctx ~flow:wa_flow ~size:500;
        H.act ~kind:Activity.Receive ~ts:(w 5_000_000) ~ctx:web_ctx ~flow:aw_flow ~size:2000;
        H.act ~kind:Activity.Send ~ts:(w 6_000_000) ~ctx:web_ctx ~flow:back_flow ~size:2400;
      ],
      [
        H.act ~kind:Activity.Receive ~ts:(a 2_000_000) ~ctx:app_ctx ~flow:wa_flow ~size:500;
        H.act ~kind:Activity.Send ~ts:(a 4_000_000) ~ctx:app_ctx ~flow:aw_flow ~size:2000;
      ] )
  in
  let parts = List.init n per_request in
  let web = List.concat_map fst parts in
  let app = List.concat_map snd parts in
  ignore dskew;
  [ Log.of_list ~hostname:"web" web; Log.of_list ~hostname:"app" app ]

let correlate ?(window = Sim_time.ms 10) ?(drop_programs = []) logs =
  let cfg =
    Correlator.config
      ~transform:(Transform.config ~entry_points:[ entry ] ~drop_programs ())
      ~window ()
  in
  Correlator.correlate cfg logs

let test_transform_classifies () =
  let cfg = Transform.config ~entry_points:[ entry ] () in
  let begin_raw =
    H.act ~kind:Activity.Receive ~ts:0 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1
  in
  let end_raw = H.act ~kind:Activity.Send ~ts:1 ~ctx:H.web_ctx ~flow:H.web_client_flow ~size:1 in
  let inner = H.act ~kind:Activity.Send ~ts:2 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1 in
  (match Transform.classify cfg begin_raw with
  | Some a -> Alcotest.(check bool) "BEGIN" true (Activity.equal_kind a.Activity.kind Activity.Begin)
  | None -> Alcotest.fail "dropped");
  (match Transform.classify cfg end_raw with
  | Some a -> Alcotest.(check bool) "END" true (Activity.equal_kind a.Activity.kind Activity.End_)
  | None -> Alcotest.fail "dropped");
  match Transform.classify cfg inner with
  | Some a -> Alcotest.(check bool) "SEND kept" true (Activity.equal_kind a.Activity.kind Activity.Send)
  | None -> Alcotest.fail "dropped"

let test_transform_filters () =
  let cfg =
    Transform.config ~entry_points:[ entry ] ~drop_programs:[ "sshd" ] ~drop_ports:[ 22 ]
      ~keep:(fun a -> a.Activity.message.size < 1_000_000)
      ()
  in
  let sshd =
    H.act ~kind:Activity.Send ~ts:0
      ~ctx:(H.ctx ~program:"sshd" ())
      ~flow:H.web_app_flow ~size:10
  in
  let port22 =
    H.act ~kind:Activity.Send ~ts:0 ~ctx:H.web_ctx ~flow:(H.flow "1.1.1.1" 22 "2.2.2.2" 5) ~size:10
  in
  let huge = H.act ~kind:Activity.Send ~ts:0 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:2_000_000 in
  Alcotest.(check bool) "program filtered" true (Transform.classify cfg sshd = None);
  Alcotest.(check bool) "port filtered" true (Transform.classify cfg port22 = None);
  Alcotest.(check bool) "keep predicate" true (Transform.classify cfg huge = None)

let test_pipeline_single_request () =
  (* End-to-end: raw logs in TCP_TRACE shape -> one valid CAG. *)
  let logs = raw_multi_request ~n:1 () in
  let result = correlate logs in
  Alcotest.(check int) "one CAG" 1 (List.length result.Correlator.cags);
  Alcotest.(check int) "no deformed" 0 (List.length result.deformed);
  H.check_valid (List.hd result.Correlator.cags)

let test_pipeline_many_interleaved () =
  let logs = raw_multi_request ~n:50 () in
  let result = correlate logs in
  Alcotest.(check int) "fifty CAGs" 50 (List.length result.Correlator.cags);
  List.iter H.check_valid result.Correlator.cags;
  let stats = result.engine_stats in
  Alcotest.(check int) "no orphans" 0 stats.Core.Cag_engine.orphans;
  Alcotest.(check int) "no unmatched" 0 stats.unmatched_receives

let test_pipeline_under_skew () =
  (* 400ms app-node skew with a 1ms window. *)
  let logs = raw_multi_request ~n:20 ~askew:400_000_000 () in
  let result = correlate ~window:(Sim_time.ms 1) logs in
  Alcotest.(check int) "all CAGs" 20 (List.length result.Correlator.cags);
  Alcotest.(check int) "no noise discards" 0
    result.ranker_stats.Core.Ranker.noise_discarded

let test_pipeline_drop_filter () =
  (* Mixing in name-filterable noise does not change the result. *)
  let logs = raw_multi_request ~n:10 () in
  let noise_ctx = H.ctx ~host:"web" ~program:"sshd" ~pid:999 ~tid:999 () in
  let noise_flow = H.flow "10.0.1.1" 50000 "10.0.9.9" 22 in
  let with_noise =
    List.map
      (fun log ->
        if String.equal (Log.hostname log) "web" then
          Log.of_list ~hostname:"web"
            (Log.to_list log
            @ List.init 40 (fun i ->
                  H.act ~kind:Activity.Send ~ts:(i * 100_000) ~ctx:noise_ctx ~flow:noise_flow
                    ~size:10))
        else log)
      logs
  in
  let result = correlate ~drop_programs:[ "sshd" ] with_noise in
  Alcotest.(check int) "ten CAGs" 10 (List.length result.Correlator.cags);
  Alcotest.(check int) "no orphans" 0 result.engine_stats.Core.Cag_engine.orphans

let test_pipeline_loss_detectable () =
  (* Dropping activities deforms some CAGs; deformed + finished covers all
     requests whose BEGIN survived. *)
  let logs = raw_multi_request ~n:40 () in
  let rng = Simnet.Rng.create ~seed:5 in
  let lossy = Trace.Loss.drop ~rng ~p:0.05 logs in
  let result = correlate lossy in
  let finished = List.length result.Correlator.cags in
  let deformed = List.length result.deformed in
  Alcotest.(check bool) "some loss visible" true (finished < 40);
  Alcotest.(check bool) "deformed CAGs reported" true (deformed > 0);
  (* Deformed paths are the rare class - the paper's detectability claim. *)
  Alcotest.(check bool) "normal dominates" true (finished > deformed)

let test_save_load_then_correlate () =
  let dir = Filename.temp_file "ptc" "" in
  Sys.remove dir;
  let logs = raw_multi_request ~n:8 () in
  Log.save logs ~dir;
  (match Log.load ~dir with
  | Ok loaded ->
      let result = correlate loaded in
      Alcotest.(check int) "eight CAGs from disk" 8 (List.length result.Correlator.cags)
  | Error e -> Alcotest.fail e);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_streaming_callback_order () =
  let logs = raw_multi_request ~n:6 () in
  let seen = ref [] in
  let cfg =
    Correlator.config ~transform:(Transform.config ~entry_points:[ entry ] ()) ()
  in
  let result =
    Correlator.correlate_stream cfg logs ~on_path:(fun cag ->
        seen := Sim_time.to_ns (Cag.begin_ts cag) :: !seen)
  in
  Alcotest.(check int) "callback per path" 6 (List.length !seen);
  Alcotest.(check bool) "completion order by begin ts" true
    (List.rev !seen = List.sort compare !seen);
  Alcotest.(check int) "also in result" 6 (List.length result.Correlator.cags)

let test_multiple_entry_points () =
  (* Two front-end hosts (e.g. load-balanced virtual hosts): both are entry
     points and requests through either correlate. *)
  let request ~web_host ~web_ip ~port_base =
    let web_ctx = H.ctx ~host:web_host ~program:"httpd" ~pid:10 ~tid:10 () in
    let app_ctx = H.ctx ~host:"app" ~program:"java" ~pid:20 ~tid:(21 + port_base) () in
    let client_flow = H.flow "10.0.0.1" (40_000 + port_base) web_ip 80 in
    let back_flow = Simnet.Address.reverse client_flow in
    let wa_flow = H.flow web_ip (41_000 + port_base) "10.0.2.1" 8009 in
    let aw_flow = Simnet.Address.reverse wa_flow in
    ( [
        H.act ~kind:Activity.Receive ~ts:0 ~ctx:web_ctx ~flow:client_flow ~size:400;
        H.act ~kind:Activity.Send ~ts:1_000_000 ~ctx:web_ctx ~flow:wa_flow ~size:500;
        H.act ~kind:Activity.Receive ~ts:5_000_000 ~ctx:web_ctx ~flow:aw_flow ~size:2000;
        H.act ~kind:Activity.Send ~ts:6_000_000 ~ctx:web_ctx ~flow:back_flow ~size:2400;
      ],
      [
        H.act ~kind:Activity.Receive ~ts:2_000_000 ~ctx:app_ctx ~flow:wa_flow ~size:500;
        H.act ~kind:Activity.Send ~ts:4_000_000 ~ctx:app_ctx ~flow:aw_flow ~size:2000;
      ] )
  in
  let w1, a1 = request ~web_host:"webA" ~web_ip:"10.0.1.1" ~port_base:0 in
  let w2, a2 = request ~web_host:"webB" ~web_ip:"10.0.1.2" ~port_base:1 in
  let logs =
    [
      Log.of_list ~hostname:"webA" w1;
      Log.of_list ~hostname:"webB" w2;
      Log.of_list ~hostname:"app" (a1 @ a2);
    ]
  in
  let cfg =
    Correlator.config
      ~transform:
        (Transform.config
           ~entry_points:[ H.ep "10.0.1.1" 80; H.ep "10.0.1.2" 80 ]
           ())
      ()
  in
  let result = Correlator.correlate cfg logs in
  Alcotest.(check int) "both requests resolved" 2 (List.length result.Correlator.cags);
  List.iter H.check_valid result.Correlator.cags;
  let hosts =
    List.map
      (fun cag -> (Cag.root cag).Cag.activity.Activity.context.host)
      result.Correlator.cags
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "one per front host" [ "webA"; "webB" ] hosts

let test_memory_proxy_grows_with_window () =
  let logs = raw_multi_request ~n:60 () in
  let small = correlate ~window:(Sim_time.ms 1) logs in
  let big = correlate ~window:(Sim_time.sec 10) logs in
  Alcotest.(check bool) "bigger window, bigger peak" true
    (big.Correlator.peak_memory_proxy > small.Correlator.peak_memory_proxy);
  Alcotest.(check bool) "bytes estimate consistent" true
    (big.memory_bytes_estimate = big.peak_memory_proxy * 160)

let prop_interleaved_requests_all_resolve =
  QCheck.Test.make ~name:"any interleaving count/skew resolves all requests" ~count:60
    QCheck.(
      triple (int_range 1 30)
        (int_range (-200_000_000) 200_000_000)
        (int_range 1 100))
    (fun (n, askew, win_ms) ->
      let logs = raw_multi_request ~n ~askew () in
      let result = correlate ~window:(Sim_time.ms win_ms) logs in
      List.length result.Correlator.cags = n
      && result.deformed = []
      && result.engine_stats.Core.Cag_engine.orphans = 0
      && result.ranker_stats.Core.Ranker.forced_discards = 0
      && List.for_all (fun c -> Cag.validate c = Ok ()) result.Correlator.cags)

(* ---- native (arena) path equivalence ---- *)

let collection_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         String.equal (Log.hostname x) (Log.hostname y)
         && Log.length x = Log.length y
         && List.for_all2 Activity.equal (Log.to_list x) (Log.to_list y))
       a b

let test_apply_native_matches_apply () =
  let logs = raw_multi_request ~n:4 ~askew:1500 () in
  (* exercise every filter class plus a custom predicate *)
  let cfg =
    Transform.config ~entry_points:[ entry ] ~drop_programs:[ "java" ] ~drop_ports:[ 8009 ]
      ~keep:(fun a -> a.Activity.message.size <> 2400)
      ()
  in
  let legacy = Transform.apply cfg logs in
  let native =
    Trace.Arena.to_collection (Transform.apply_native cfg (Trace.Arena.of_collection logs))
  in
  Alcotest.(check bool) "filtered collections identical" true (collection_equal legacy native);
  (* and with the default keep (the memo-only fast path) *)
  let cfg = Transform.config ~entry_points:[ entry ] () in
  let legacy = Transform.apply cfg logs in
  let native =
    Trace.Arena.to_collection (Transform.apply_native cfg (Trace.Arena.of_collection logs))
  in
  Alcotest.(check bool) "classified collections identical" true (collection_equal legacy native)

let test_correlate_arena_matches_correlate () =
  let logs = raw_multi_request ~n:6 ~askew:2000 () in
  let cfg =
    Correlator.config ~transform:(Transform.config ~entry_points:[ entry ] ()) ()
  in
  let record_result = Correlator.correlate cfg logs in
  let native_result = Correlator.correlate_arena cfg (Trace.Arena.of_collection logs) in
  Alcotest.(check int) "same finished count"
    (List.length record_result.Correlator.cags)
    (List.length native_result.Correlator.cags);
  Alcotest.(check int) "same deformed count"
    (List.length record_result.Correlator.deformed)
    (List.length native_result.Correlator.deformed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same shape" (Core.Pattern.signature_of a)
        (Core.Pattern.signature_of b))
    record_result.Correlator.cags native_result.Correlator.cags

let () =
  Alcotest.run "correlator"
    [
      ( "transform",
        [
          Alcotest.test_case "BEGIN/END classification" `Quick test_transform_classifies;
          Alcotest.test_case "attribute filters" `Quick test_transform_filters;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "single request" `Quick test_pipeline_single_request;
          Alcotest.test_case "interleaved requests" `Quick test_pipeline_many_interleaved;
          Alcotest.test_case "skew with tiny window" `Quick test_pipeline_under_skew;
          Alcotest.test_case "name-filtered noise" `Quick test_pipeline_drop_filter;
          Alcotest.test_case "loss deforms but is detectable" `Quick test_pipeline_loss_detectable;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_then_correlate;
          Alcotest.test_case "streaming callbacks" `Quick test_streaming_callback_order;
          Alcotest.test_case "multiple entry points" `Quick test_multiple_entry_points;
          Alcotest.test_case "memory proxy vs window" `Quick test_memory_proxy_grows_with_window;
          Alcotest.test_case "apply_native matches apply" `Quick test_apply_native_matches_apply;
          Alcotest.test_case "correlate_arena matches correlate" `Quick
            test_correlate_arena_matches_correlate;
          qtest prop_interleaved_requests_all_resolve;
        ] );
    ]
