(* Tests for the extension modules: skew estimation, online correlation,
   drift detection. *)

module H = Test_helpers.Helpers
module S = Tiersim.Scenario
module Faults = Tiersim.Faults
module Skew = Core.Skew_estimator
module Online = Core.Online
module Drift = Core.Drift
module ST = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

let correlate outcome =
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  Core.Correlator.correlate cfg outcome.S.logs

(* ---- Skew_estimator ---- *)

let test_skew_zero () =
  let outcome = S.run { S.default with S.clients = 20; time_scale = 0.02 } in
  let result = correlate outcome in
  let est = Skew.estimate result.Core.Correlator.cags in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s offset ~0" e.Skew.host)
        true
        (abs (ST.span_ns e.Skew.offset) < ST.span_ns (ST.ms 1)))
    (Skew.offsets est)

let test_skew_recovered () =
  (* app runs +200ms, db -200ms (relative to web, the reference). *)
  let outcome =
    S.run { S.default with S.clients = 20; time_scale = 0.02; skew = ST.ms 200 }
  in
  let result = correlate outcome in
  let est = Skew.estimate ~reference:"web1" result.Core.Correlator.cags in
  let check host expected_ms =
    let off = ST.span_ns (Skew.offset_of est host) in
    let err = abs (off - (expected_ms * 1_000_000)) in
    (* residual error is bounded by half the min-delay asymmetry; give 2ms *)
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %+dms (got %+.2fms)" host expected_ms
         (float_of_int off /. 1e6))
      true
      (err < 2_000_000)
  in
  check "web1" 0;
  check "app1" 200;
  check "db1" (-200)

let test_skew_transitive () =
  (* db1 never exchanges messages with web1 directly; its offset must be
     recovered through app1. That is exactly the deployment's shape. *)
  let outcome =
    S.run { S.default with S.clients = 10; time_scale = 0.02; skew = ST.ms 100 }
  in
  let result = correlate outcome in
  let est = Skew.estimate ~reference:"web1" result.Core.Correlator.cags in
  let db = List.find (fun e -> String.equal e.Skew.host "db1") (Skew.offsets est) in
  Alcotest.(check bool) "recovered via app1" true (db.Skew.pairs_used > 0);
  Alcotest.(check bool) "value ~ -100ms" true
    (abs (ST.span_ns db.offset + 100_000_000) < 2_000_000);
  (* and there are no direct web<->db samples *)
  Alcotest.(check bool) "no direct pair" true
    (not (List.exists (fun (a, b, _) -> a = "web1" && b = "db1") (Skew.samples est)))

let test_skew_corrected_breakdown () =
  let skewed =
    S.run { S.default with S.clients = 20; time_scale = 0.02; skew = ST.ms 300 }
  in
  let clean = S.run { S.default with S.clients = 20; time_scale = 0.02 } in
  let pick_cag outcome =
    let result = correlate outcome in
    List.find
      (fun c -> List.length (Core.Cag.contexts c) = 3)
      result.Core.Correlator.cags
  in
  let skewed_result = correlate skewed in
  let est = Skew.estimate skewed_result.Core.Correlator.cags in
  let cag = pick_cag skewed in
  let raw = Core.Latency.breakdown cag in
  let corrected = Skew.corrected_breakdown est cag in
  let lookup parts label =
    List.fold_left
      (fun acc (c, s) ->
        if String.equal (Core.Latency.component_label c) label then ST.span_ns s else acc)
      0 parts
  in
  (* raw httpd2java absorbs +300ms of skew; corrected must be plausible *)
  Alcotest.(check bool) "raw absorbs skew" true (lookup raw "httpd2java" > 250_000_000);
  let corrected_h2j = lookup corrected "httpd2java" in
  Alcotest.(check bool) "corrected is sub-5ms" true
    (corrected_h2j >= 0 && corrected_h2j < 5_000_000);
  (* corrected totals still telescope to the (skew-free) duration *)
  let total = List.fold_left (fun acc (_, s) -> acc + ST.span_ns s) 0 corrected in
  Alcotest.(check bool) "total preserved" true
    (abs (total - ST.span_ns (Core.Cag.duration cag)) < 3_000_000);
  ignore clean

let test_skew_empty () =
  let est = Skew.estimate [] in
  Alcotest.(check int) "only the unknown reference" 1 (List.length (Skew.offsets est));
  Alcotest.(check int) "unknown host offset 0" 0 (ST.span_ns (Skew.offset_of est "nope"))

let prop_skew_recovery =
  QCheck.Test.make ~name:"injected skews recovered within 2ms" ~count:8
    QCheck.(pair (int_range 0 400) (int_range 1 100))
    (fun (skew_ms, seed) ->
      let outcome =
        S.run { S.default with S.clients = 10; time_scale = 0.02; seed; skew = ST.ms skew_ms }
      in
      let result = correlate outcome in
      let est = Skew.estimate ~reference:"web1" result.Core.Correlator.cags in
      let ok host expected =
        abs (ST.span_ns (Skew.offset_of est host) - expected) < 2_000_000
      in
      ok "app1" (skew_ms * 1_000_000) && ok "db1" (-skew_ms * 1_000_000))

(* ---- Ablations ---- *)

let test_ablation_rule1_essential () =
  let outcome = S.run { S.default with S.clients = 40; time_scale = 0.02 } in
  let run_with ablation =
    let cfg = Core.Correlator.config ~transform:outcome.S.transform ~ablation () in
    let result = Core.Correlator.correlate cfg outcome.S.logs in
    Core.Accuracy.check ~ground_truth:outcome.S.ground_truth result.Core.Correlator.cags
  in
  let full = run_with Core.Ranker.no_ablation in
  Alcotest.(check (float 0.0)) "full = 100%" 1.0 full.Core.Accuracy.accuracy;
  let no_rule1 =
    run_with { Core.Ranker.disable_rule1 = true; disable_promotion = false }
  in
  Alcotest.(check bool) "rule 1 is essential" true
    (no_rule1.Core.Accuracy.accuracy < 0.5)

let test_ablation_promotion_needed_for_fig6 () =
  (* The paper's Fig. 6 deadlock: with promotion disabled the ranker can
     only escape by force-discarding a live receive. *)
  let f12 = H.flow "10.0.0.1" 100 "10.0.0.2" 200 in
  let f21 = H.flow "10.0.0.2" 300 "10.0.0.1" 400 in
  let n1 =
    [
      H.act ~kind:Trace.Activity.Receive ~ts:10 ~ctx:(H.ctx ~host:"n1" ~pid:1 ~tid:1 ()) ~flow:f21 ~size:5;
      H.act ~kind:Trace.Activity.Send ~ts:11 ~ctx:(H.ctx ~host:"n1" ~pid:2 ~tid:2 ()) ~flow:f12 ~size:5;
    ]
  in
  let n2 =
    [
      H.act ~kind:Trace.Activity.Receive ~ts:10 ~ctx:(H.ctx ~host:"n2" ~pid:3 ~tid:3 ()) ~flow:f12 ~size:5;
      H.act ~kind:Trace.Activity.Send ~ts:11 ~ctx:(H.ctx ~host:"n2" ~pid:4 ~tid:4 ()) ~flow:f21 ~size:5;
    ]
  in
  let logs = [ Trace.Log.of_list ~hostname:"n1" n1; Trace.Log.of_list ~hostname:"n2" n2 ] in
  let run_with ablation =
    let engine = Core.Cag_engine.create () in
    let ranker =
      Core.Ranker.create ~window:(ST.ms 10) ~ablation
        ~has_mmap_send:(Core.Cag_engine.has_mmap_send engine)
        logs
    in
    let rec loop () =
      match Core.Ranker.rank ranker with
      | Some a ->
          Core.Cag_engine.step engine a;
          loop ()
      | None -> ()
    in
    loop ();
    Core.Ranker.stats ranker
  in
  let full = run_with Core.Ranker.no_ablation in
  Alcotest.(check int) "no forced discards with promotion" 0 full.Core.Ranker.forced_discards;
  let no_promo =
    run_with { Core.Ranker.disable_rule1 = false; disable_promotion = true }
  in
  Alcotest.(check bool) "forced discard without promotion" true
    (no_promo.Core.Ranker.forced_discards > 0)

let test_gc_bounds_mmap () =
  (* Noise responses to filtered clients leave unmatched sends behind; the
     periodic GC must keep the mmap bounded without costing accuracy. *)
  let outcome =
    S.run
      {
        S.default with
        S.clients = 30;
        time_scale = 0.05;
        noise = S.Paper_noise { db_connections = 3 };
      }
  in
  let cfg =
    Core.Correlator.config ~transform:outcome.S.transform ~window:(ST.ms 2) ()
  in
  let result = Core.Correlator.correlate cfg outcome.S.logs in
  let verdict = Core.Accuracy.check ~ground_truth:outcome.S.ground_truth result.Core.Correlator.cags in
  Alcotest.(check (float 0.0)) "accuracy intact" 1.0 verdict.Core.Accuracy.accuracy;
  (* residual entries are only what the final GC window hadn't reached *)
  Alcotest.(check bool)
    (Printf.sprintf "mmap bounded (%d left)"
       result.engine_stats.Core.Cag_engine.mmap_entries)
    true
    (result.engine_stats.Core.Cag_engine.mmap_entries < 2000)

let test_gc_never_evicts_live () =
  (* On a clean trace the GC finds nothing to evict mid-run. *)
  let engine = Core.Cag_engine.create () in
  let logs = Core.Transform.apply
      (Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ] ())
      (H.logs_of_request ()) in
  let ranker =
    Core.Ranker.create ~window:(ST.ms 10)
      ~has_mmap_send:(Core.Cag_engine.has_mmap_send engine)
      logs
  in
  let rec loop () =
    match Core.Ranker.rank ranker with
    | Some a ->
        Core.Cag_engine.step engine a;
        loop ()
    | None -> ()
  in
  loop ();
  Alcotest.(check int) "nothing stale" 0
    (Core.Cag_engine.gc engine ~older_than:ST.zero);
  Alcotest.(check int) "finished fine" 1
    (Core.Cag_engine.stats engine).Core.Cag_engine.cags_finished

(* ---- Online ---- *)

let online_replay outcome =
  (* Replay the offline logs through the online API in timestamp-merged
     order, as live feeding would deliver them. *)
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let hosts = List.map Trace.Log.hostname outcome.S.logs in
  let online = Online.create ~config:cfg ~hosts () in
  let merged =
    List.concat_map Trace.Log.to_list outcome.S.logs
    |> List.stable_sort Trace.Activity.compare_by_time
  in
  List.iter (Online.observe online) merged;
  online

let test_online_matches_offline () =
  let outcome = S.run { S.default with S.clients = 30; time_scale = 0.02 } in
  let offline = correlate outcome in
  let online = online_replay outcome in
  let before_close = List.length (Online.paths online) in
  Online.finish online;
  let online_paths = Online.paths online in
  Alcotest.(check int) "same path count"
    (List.length offline.Core.Correlator.cags)
    (List.length online_paths);
  Alcotest.(check bool) "most paths emitted before close" true
    (before_close > List.length online_paths / 2);
  (* same signatures, same order of completion *)
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same shape" (Core.Pattern.signature_of a)
        (Core.Pattern.signature_of b))
    offline.Core.Correlator.cags online_paths;
  let verdict = Core.Accuracy.check ~ground_truth:outcome.S.ground_truth online_paths in
  Alcotest.(check (float 0.0)) "online accuracy 100%" 1.0 verdict.Core.Accuracy.accuracy

let test_online_with_skew_and_noise () =
  let outcome =
    S.run
      {
        S.default with
        S.clients = 20;
        time_scale = 0.02;
        skew = ST.ms 200;
        noise = S.Paper_noise { db_connections = 2 };
      }
  in
  let online = online_replay outcome in
  Online.finish online;
  let verdict =
    Core.Accuracy.check ~ground_truth:outcome.S.ground_truth (Online.paths online)
  in
  Alcotest.(check (float 0.0)) "accuracy 100%" 1.0 verdict.Core.Accuracy.accuracy;
  Alcotest.(check bool) "noise discarded online" true
    ((Online.ranker_stats online).Core.Ranker.noise_discarded > 50)

let test_online_arena_feed_matches_offline () =
  (* The native feed — whole per-host arenas through [observe_arena] —
     must land on exactly the offline result, like the record feed does. *)
  let outcome = S.run { S.default with S.clients = 20; time_scale = 0.02 } in
  let offline = correlate outcome in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let hosts = List.map Trace.Log.hostname outcome.S.logs in
  let online = Online.create ~config:cfg ~hosts () in
  List.iter (Online.observe_arena online) (Trace.Arena.of_collection outcome.S.logs);
  Online.finish online;
  let online_paths = Online.paths online in
  Alcotest.(check int) "same path count"
    (List.length offline.Core.Correlator.cags)
    (List.length online_paths);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same shape" (Core.Pattern.signature_of a)
        (Core.Pattern.signature_of b))
    offline.Core.Correlator.cags online_paths

let test_online_arena_feed_honours_custom_keep () =
  (* A custom keep predicate forces the materialise-and-ask path; dropped
     rows must not reach the ranker, and the tee still sees every raw
     record. *)
  let w, a, d = H.simple_request () in
  let seen = ref 0 in
  let transform =
    Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ]
      ~keep:(fun (_ : Trace.Activity.t) -> false)
      ()
  in
  let cfg = Core.Correlator.config ~transform () in
  let online =
    Online.create ~config:cfg ~hosts:[ "web"; "app"; "db" ]
      ~on_activity:(fun _ -> incr seen)
      ()
  in
  let arenas =
    Trace.Arena.of_collection
      [
        Trace.Log.of_list ~hostname:"web" w;
        Trace.Log.of_list ~hostname:"app" a;
        Trace.Log.of_list ~hostname:"db" d;
      ]
  in
  List.iter (Online.observe_arena online) arenas;
  Online.finish online;
  Alcotest.(check int) "tee saw every raw record"
    (List.length w + List.length a + List.length d)
    !seen;
  Alcotest.(check int) "everything filtered" 0 (Online.pending online);
  Alcotest.(check int) "no paths" 0 (List.length (Online.paths online))

let test_online_withholds_until_watermark () =
  (* Feed only the entry BEGIN: nothing can be emitted (other nodes might
     still report earlier activities). *)
  let w, _, _ = H.simple_request () in
  let transform = Core.Transform.config ~entry_points:[ H.ep "10.0.1.1" 80 ] () in
  let cfg = Core.Correlator.config ~transform ~skew_allowance:(ST.ms 100) () in
  let online = Online.create ~config:cfg ~hosts:[ "web"; "app"; "db" ] () in
  Online.observe online (List.hd w);
  Alcotest.(check int) "withheld" 0 (List.length (Online.paths online));
  Alcotest.(check int) "pending" 1 (Online.pending online);
  Online.finish online;
  (* a lone BEGIN never finishes a path, but it is now consumed *)
  Alcotest.(check int) "consumed after close" 0 (Online.pending online);
  Alcotest.(check int) "one deformed" 1 (List.length (Online.deformed online))

let test_online_live_during_simulation () =
  (* Attach to the probe and correlate while the simulation runs. *)
  let spec = { S.default with S.clients = 15; time_scale = 0.02 } in
  let up, runtime, down = S.stage_spans ~time_scale:spec.S.time_scale in
  let cfg =
    {
      Tiersim.Service.default_config with
      Tiersim.Service.seed = spec.S.seed;
      max_threads = spec.S.max_threads;
    }
  in
  let svc = Tiersim.Service.create cfg in
  Trace.Probe.enable (Tiersim.Service.probe svc);
  let correlator_cfg =
    Core.Correlator.config ~transform:(Tiersim.Service.transform_config svc) ()
  in
  let live_count = ref 0 in
  let online =
    Online.attach ~config:correlator_cfg ~probe:(Tiersim.Service.probe svc)
      ~hosts:(Tiersim.Service.server_hostnames svc)
      ~on_path:(fun _ -> incr live_count)
      ()
  in
  let stop = ST.add (ST.add (ST.add ST.zero up) runtime) down in
  Tiersim.Client.start svc
    {
      Tiersim.Client.count = spec.S.clients;
      mix = spec.S.mix;
      ramp_up = up;
      stop_issuing_at = stop;
      only_kind = None;
    };
  Simnet.Engine.run (Tiersim.Service.engine svc);
  Alcotest.(check bool) "paths emitted during the run" true (!live_count > 0);
  Online.finish online;
  let verdict =
    Core.Accuracy.check
      ~ground_truth:(Tiersim.Service.ground_truth svc)
      (Online.paths online)
  in
  Alcotest.(check (float 0.0)) "live accuracy 100%" 1.0 verdict.Core.Accuracy.accuracy

(* ---- Drift ---- *)

let mk_profile_cag ~base ~db_extra =
  let w, a, d = H.simple_request ~base () in
  let d =
    List.map
      (fun (x : Trace.Activity.t) ->
        if Trace.Activity.equal_kind x.kind Trace.Activity.Send then
          { x with Trace.Activity.timestamp = ST.add x.timestamp db_extra }
        else x)
      d
  in
  let logs =
    [
      Trace.Log.of_list ~hostname:"web" w;
      Trace.Log.of_list ~hostname:"app" a;
      Trace.Log.of_list ~hostname:"db" d;
    ]
  in
  let engine, _ = H.correlate_raw logs in
  List.hd (Core.Cag_engine.finished engine)

let test_drift_detects_step_change () =
  let detector =
    Drift.create ~config:{ Drift.warmup = 30; window = 10; threshold = 0.10 } ()
  in
  let alerts = ref [] in
  for i = 0 to 99 do
    let db_extra = if i < 60 then ST.span_zero else ST.ms 9 in
    let cag = mk_profile_cag ~base:(i * 20_000_000) ~db_extra in
    alerts := !alerts @ Drift.observe detector cag
  done;
  (match !alerts with
  | [] -> Alcotest.fail "no alert for a 9ms db regression"
  | a :: _ ->
      Alcotest.(check string) "component" "mysqld2mysqld"
        (Core.Latency.component_label a.Drift.comp);
      Alcotest.(check bool) "share rose" true (a.observed_share > a.baseline_share);
      Alcotest.(check bool) "fired after the change" true (a.paths_seen > 60));
  (* hysteresis: the regression is sustained, so its component alerts once *)
  let db_alerts =
    List.filter
      (fun a ->
        String.equal (Core.Latency.component_label a.Drift.comp) "mysqld2mysqld")
      (Drift.alerts detector)
  in
  Alcotest.(check int) "one alert per sustained regression" 1 (List.length db_alerts)

let test_drift_quiet_on_steady_stream () =
  let detector =
    Drift.create ~config:{ Drift.warmup = 20; window = 10; threshold = 0.10 } ()
  in
  for i = 0 to 79 do
    ignore (Drift.observe detector (mk_profile_cag ~base:(i * 20_000_000) ~db_extra:ST.span_zero))
  done;
  Alcotest.(check int) "no alerts" 0 (List.length (Drift.alerts detector))

let test_drift_baseline_exposed () =
  let detector = Drift.create ~config:{ Drift.warmup = 5; window = 3; threshold = 0.2 } () in
  for i = 0 to 5 do
    ignore (Drift.observe detector (mk_profile_cag ~base:(i * 20_000_000) ~db_extra:ST.span_zero))
  done;
  match Drift.baseline_of detector ~pattern_name:"httpd>java>mysqld>java>httpd" with
  | Some profile ->
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 profile in
      Alcotest.(check (float 1e-6)) "baseline sums to 1" 1.0 total
  | None -> Alcotest.fail "baseline not learned"

let test_drift_end_to_end_with_fault_onset () =
  (* A Database_Lock fault strikes mid-run; the online pipeline plus the
     drift detector must localise it without any offline step. *)
  let up, runtime, _ = S.stage_spans ~time_scale:0.05 in
  let onset = ST.span_add up (ST.span_scale 0.5 runtime) in
  let outcome =
    S.run
      {
        S.default with
        S.clients = 60;
        time_scale = 0.05;
        faults = [ Faults.database_lock ];
        fault_onset = Some onset;
      }
  in
  let detector =
    Drift.create ~config:{ Drift.warmup = 150; window = 60; threshold = 0.08 } ()
  in
  let result = correlate outcome in
  List.iter (fun cag -> ignore (Drift.observe detector cag)) result.Core.Correlator.cags;
  let alerts = Drift.alerts detector in
  Alcotest.(check bool) "alerts raised" true (alerts <> []);
  Alcotest.(check bool) "db component implicated" true
    (List.exists
       (fun a ->
         String.equal (Core.Latency.component_label a.Drift.comp) "mysqld2mysqld"
         && a.Drift.observed_share > a.baseline_share)
       alerts)

let () =
  Alcotest.run "extensions"
    [
      ( "skew_estimator",
        [
          Alcotest.test_case "zero skew" `Quick test_skew_zero;
          Alcotest.test_case "recovers injected skews" `Quick test_skew_recovered;
          Alcotest.test_case "transitive recovery" `Quick test_skew_transitive;
          Alcotest.test_case "corrected breakdown" `Quick test_skew_corrected_breakdown;
          Alcotest.test_case "empty input" `Quick test_skew_empty;
          qtest prop_skew_recovery;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "rule 1 essential" `Quick test_ablation_rule1_essential;
          Alcotest.test_case "promotion resolves Fig. 6" `Quick
            test_ablation_promotion_needed_for_fig6;
        ] );
      ( "gc",
        [
          Alcotest.test_case "bounds the mmap under noise" `Quick test_gc_bounds_mmap;
          Alcotest.test_case "no eviction on clean traces" `Quick test_gc_never_evicts_live;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches offline exactly" `Quick test_online_matches_offline;
          Alcotest.test_case "skew and noise" `Quick test_online_with_skew_and_noise;
          Alcotest.test_case "arena feed matches offline" `Quick
            test_online_arena_feed_matches_offline;
          Alcotest.test_case "arena feed honours custom keep" `Quick
            test_online_arena_feed_honours_custom_keep;
          Alcotest.test_case "watermark withholding" `Quick
            test_online_withholds_until_watermark;
          Alcotest.test_case "live during simulation" `Quick test_online_live_during_simulation;
        ] );
      ( "drift",
        [
          Alcotest.test_case "detects step change" `Quick test_drift_detects_step_change;
          Alcotest.test_case "quiet on steady stream" `Quick test_drift_quiet_on_steady_stream;
          Alcotest.test_case "baseline exposed" `Quick test_drift_baseline_exposed;
          Alcotest.test_case "mid-run fault localised" `Quick
            test_drift_end_to_end_with_fault_onset;
        ] );
    ]
