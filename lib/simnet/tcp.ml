type syscall_kind = Syscall_send | Syscall_recv

type waiter = { k : int -> unit; max : int }

type dir_state = {
  mutable available : int;
  waiters : waiter Queue.t;
  mutable remote_closed : bool;  (* sender side has closed; EOF after drain *)
}

type side = Client_side | Server_side

type conn = {
  id : int;
  client_node : Node.t;
  server_node : Node.t;
  client_ep : Address.endpoint;
  server_ep : Address.endpoint;
  c2s : dir_state;
  s2c : dir_state;
  mutable client_closed : bool;
  mutable server_closed : bool;
}

type socket = { conn : conn; side : side }

type syscall = {
  node : Node.t;
  proc : Proc.t;
  kind : syscall_kind;
  flow : Address.flow;
  size : int;
}

type listener = { node : Node.t; accept : socket -> unit }

type stack = {
  engine : Engine.t;
  listeners : (Address.endpoint, listener) Hashtbl.t;
  mutable observers : (syscall -> unit) list;  (* registration order *)
  mutable overhead : Node.t -> Proc.t -> Sim_time.span;
  mutable syscalls : int;
  mutable next_conn_id : int;
}

let create_stack ~engine =
  {
    engine;
    listeners = Hashtbl.create 16;
    observers = [];
    overhead = (fun _ _ -> Sim_time.span_zero);
    syscalls = 0;
    next_conn_id = 0;
  }

let add_observer t f = t.observers <- t.observers @ [ f ]
let set_syscall_overhead t f = t.overhead <- f
let notify t syscall = List.iter (fun f -> f syscall) t.observers

let listen t node ~port ~accept =
  let key = Address.endpoint (Node.ip node) port in
  if Hashtbl.mem t.listeners key then
    invalid_arg (Printf.sprintf "Tcp.listen: %s:%d already bound" (Node.hostname node) port);
  Hashtbl.replace t.listeners key { node; accept }

let unlisten t node ~port = Hashtbl.remove t.listeners (Address.endpoint (Node.ip node) port)

let fresh_dir () = { available = 0; waiters = Queue.create (); remote_closed = false }

let own_node sock =
  match sock.side with Client_side -> sock.conn.client_node | Server_side -> sock.conn.server_node

let peer_node sock =
  match sock.side with Client_side -> sock.conn.server_node | Server_side -> sock.conn.client_node

let local_endpoint sock =
  match sock.side with Client_side -> sock.conn.client_ep | Server_side -> sock.conn.server_ep

let peer_endpoint sock =
  match sock.side with Client_side -> sock.conn.server_ep | Server_side -> sock.conn.client_ep

let socket_node = own_node
let out_flow sock = Address.flow ~src:(local_endpoint sock) ~dst:(peer_endpoint sock)
let flip_side = function Client_side -> Server_side | Server_side -> Client_side
let peer_socket sock = { sock with side = flip_side sock.side }

(* Direction a socket writes into / reads from. *)
let out_dir sock =
  match sock.side with Client_side -> sock.conn.c2s | Server_side -> sock.conn.s2c

let in_dir sock =
  match sock.side with Client_side -> sock.conn.s2c | Server_side -> sock.conn.c2s

(* Instrumentation overhead is CPU work on the syscall's node: the probe
   handler executes in kernel context and competes for the cores, so its
   cost inflates under load — the effect behind the paper's Figs. 12-13. *)
let after_overhead t node proc k =
  let ov = t.overhead node proc in
  if Sim_time.span_ns ov <= 0 then k () else Cpu.submit (Node.cpu node) ~work:ov k

(* Deliver [k] through the sender's egress link then the receiver's ingress
   link, modelling serialisation at both NICs plus propagation. *)
let through_links ~src_node ~dst_node ~size k =
  Link.transmit (Node.tx src_node) ~size (fun () ->
      Link.transmit (Node.rx dst_node) ~size k)

(* Serve parked readers on [sock]'s inbound direction: data first, then EOF
   once the peer has closed and the buffer drained. *)
let wake_readers sock =
  let dir = in_dir sock in
  let continue = ref true in
  while !continue && not (Queue.is_empty dir.waiters) do
    if dir.available > 0 then begin
      let w = Queue.pop dir.waiters in
      let n = min w.max dir.available in
      dir.available <- dir.available - n;
      w.k n
    end
    else if dir.remote_closed then (Queue.pop dir.waiters).k 0
    else continue := false
  done

let send t sock ~proc ~size ~k =
  if size <= 0 then invalid_arg "Tcp.send: size must be positive";
  t.syscalls <- t.syscalls + 1;
  notify t { node = own_node sock; proc; kind = Syscall_send; flow = out_flow sock; size };
  let dir = out_dir sock in
  through_links ~src_node:(own_node sock) ~dst_node:(peer_node sock) ~size (fun () ->
      dir.available <- dir.available + size;
      wake_readers (peer_socket sock));
  after_overhead t (own_node sock) proc k

(* Completion of a recv syscall of [n] bytes: log the activity, then resume
   the caller after any instrumentation overhead. *)
let complete_recv t sock ~proc ~n ~k =
  t.syscalls <- t.syscalls + 1;
  let flow = Address.flow ~src:(peer_endpoint sock) ~dst:(local_endpoint sock) in
  notify t { node = own_node sock; proc; kind = Syscall_recv; flow; size = n };
  after_overhead t (own_node sock) proc (fun () -> k n)

let recv t sock ~proc ~max ~k =
  if max <= 0 then invalid_arg "Tcp.recv: max must be positive";
  let dir = in_dir sock in
  if dir.available > 0 then begin
    let n = min max dir.available in
    dir.available <- dir.available - n;
    complete_recv t sock ~proc ~n ~k
  end
  else if dir.remote_closed then
    ignore (Engine.schedule_after t.engine ~delay:Sim_time.span_zero (fun () -> k 0))
  else
    Queue.push
      { max; k = (fun n -> if n = 0 then k 0 else complete_recv t sock ~proc ~n ~k) }
      dir.waiters

let close _t sock =
  let already =
    match sock.side with
    | Client_side ->
        let a = sock.conn.client_closed in
        sock.conn.client_closed <- true;
        a
    | Server_side ->
        let a = sock.conn.server_closed in
        sock.conn.server_closed <- true;
        a
  in
  if not already then begin
    let dir = out_dir sock in
    (* FIN travels like a tiny segment; EOF is observable only after any
       in-flight data queued before it. *)
    through_links ~src_node:(own_node sock) ~dst_node:(peer_node sock) ~size:40 (fun () ->
        dir.remote_closed <- true;
        wake_readers (peer_socket sock))
  end

let connect t ~node ~proc ~dst ~k =
  ignore proc;
  match Hashtbl.find_opt t.listeners dst with
  | None -> invalid_arg (Format.asprintf "Tcp.connect: no listener at %a" Address.pp_endpoint dst)
  | Some listener ->
      let client_ep = Address.endpoint (Node.ip node) (Node.fresh_port node) in
      let conn_id = t.next_conn_id in
      t.next_conn_id <- conn_id + 1;
      let conn =
        {
          id = conn_id;
          client_node = node;
          server_node = listener.node;
          client_ep;
          server_ep = dst;
          c2s = fresh_dir ();
          s2c = fresh_dir ();
          client_closed = false;
          server_closed = false;
        }
      in
      let syn_size = 64 in
      through_links ~src_node:node ~dst_node:listener.node ~size:syn_size (fun () ->
          listener.accept { conn; side = Server_side };
          through_links ~src_node:listener.node ~dst_node:node ~size:syn_size (fun () ->
              k { conn; side = Client_side }))

let syscall_count t = t.syscalls
let conn_id sock = sock.conn.id
let is_client_side sock = match sock.side with Client_side -> true | Server_side -> false
