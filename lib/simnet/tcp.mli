(** A reliable, in-order, connection-oriented transport with
    syscall-granularity observation points.

    This is the simulated analogue of the Linux TCP stack that the paper
    instruments: every [send] models one [tcp_sendmsg] call and every
    completed [recv] one [tcp_recvmsg] call, and registered observers see
    exactly those events — nothing else. Byte streams are not segmented by
    the transport itself; n-to-n send/recv asymmetry arises the same way it
    does in practice, from applications writing a message in several sends
    and reading into bounded buffers, with kernel-side coalescing when the
    reader lags.

    All operations are continuation-passing: the simulator is
    single-threaded and blocking is represented by parking a callback. *)

type stack
type socket

type syscall_kind = Syscall_send | Syscall_recv

type syscall = {
  node : Node.t;  (** Node on which the syscall executed. *)
  proc : Proc.t;  (** Execution entity that performed it. *)
  kind : syscall_kind;
  flow : Address.flow;  (** Direction of the bytes: sender -> receiver. *)
  size : int;  (** Bytes sent, or returned by this recv. *)
}

val create_stack : engine:Engine.t -> stack

val add_observer : stack -> (syscall -> unit) -> unit
(** Register a tracer. Observers run synchronously at the syscall's virtual
    instant, in registration order. *)

val set_syscall_overhead : stack -> (Node.t -> Proc.t -> Sim_time.span) -> unit
(** Model instrumentation overhead: each traced syscall costs the given
    span of {e CPU work} on its node before the caller continues, so the
    cost compounds under load like a real probe handler's. The hook sees
    the calling process so a tracer can exempt its own collection
    daemons. Default: zero. *)

val listen : stack -> Node.t -> port:int -> accept:(socket -> unit) -> unit
(** Bind a listener. [accept] fires (with the server-side socket) when a
    connection request arrives — the kernel-level accept; the application
    decides when to start reading.
    @raise Invalid_argument if the port is already bound on that node. *)

val unlisten : stack -> Node.t -> port:int -> unit

val connect :
  stack -> node:Node.t -> proc:Proc.t -> dst:Address.endpoint -> k:(socket -> unit) -> unit
(** Open a connection from an ephemeral port on [node] to [dst]. [k] fires
    with the client-side socket after the simulated handshake round-trip.
    @raise Invalid_argument if nothing listens at [dst]. *)

val send : stack -> socket -> proc:Proc.t -> size:int -> k:(unit -> unit) -> unit
(** One [tcp_sendmsg] syscall of [size] bytes ([size] > 0). Observers fire
    now; bytes are delivered through both NICs' links; [k] continues the
    caller after any instrumentation overhead. *)

val recv : stack -> socket -> proc:Proc.t -> max:int -> k:(int -> unit) -> unit
(** One [tcp_recvmsg] syscall reading at most [max] bytes ([max] > 0).
    Returns as soon as any bytes are available (possibly coalescing several
    sends); parks until data arrives otherwise. [k 0] signals that the peer
    closed with no data left — no activity is logged for EOF, mirroring the
    probe points. *)

val close : stack -> socket -> unit
(** Close both directions from this side. The peer's pending and future
    recvs return 0 once in-flight data has drained. Idempotent. *)

val local_endpoint : socket -> Address.endpoint
val peer_endpoint : socket -> Address.endpoint
val socket_node : socket -> Node.t

val out_flow : socket -> Address.flow
(** The flow of bytes sent from this socket: local -> peer. *)

val syscall_count : stack -> int
(** Total send+recv syscalls executed (traced or not). *)

val conn_id : socket -> int
(** Identifier shared by both sockets of a connection; unique per stack. *)

val is_client_side : socket -> bool
(** True for the socket returned by [connect], false for [accept]'s. *)
