module R = Telemetry.Registry

type t = {
  mutable clock : Sim_time.t;
  queue : (unit -> unit) Event_queue.t;
  mutable fired : int;
  (* Self-telemetry: sampled every [sample_mask]+1 events so the per-event
     cost stays at one counter increment. *)
  m_fired : R.counter;
  m_depth : R.gauge;
  m_ratio : R.gauge;
  wall_start : float;
}

let sample_mask = 0xfff

type timer = Event_queue.handle

let create () =
  {
    clock = Sim_time.zero;
    queue = Event_queue.create ();
    fired = 0;
    m_fired = R.counter R.default ~help:"Simulation events fired" "pt_sim_events_fired_total";
    m_depth =
      R.gauge R.default ~help:"Live events in the simulation queue" "pt_sim_event_queue_depth";
    m_ratio =
      R.gauge R.default ~help:"Virtual seconds simulated per wall-clock second"
        "pt_sim_virtual_wall_ratio";
    wall_start = Unix.gettimeofday ();
  }

let now t = t.clock

let sample_telemetry t =
  R.set t.m_depth (float_of_int (Event_queue.length t.queue));
  let wall = Unix.gettimeofday () -. t.wall_start in
  if wall > 0.0 then R.set t.m_ratio (Sim_time.span_to_float_s (Sim_time.diff t.clock Sim_time.zero) /. wall)

let schedule_at t ~time f =
  if Sim_time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Sim_time.pp time
         Sim_time.pp t.clock);
  Event_queue.add t.queue ~time f

let schedule_after t ~delay f =
  let delay = Sim_time.span_max delay Sim_time.span_zero in
  Event_queue.add t.queue ~time:(Sim_time.add t.clock delay) f

let cancel t timer = Event_queue.cancel t.queue timer

let step t =
  match Event_queue.pop t.queue with
  | None ->
      sample_telemetry t;
      false
  | Some (time, f) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      R.incr t.m_fired;
      if t.fired land sample_mask = 0 then sample_telemetry t;
      f ();
      true

let run t =
  while step t do
    ()
  done

let run_until t stop =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when Sim_time.(time <= stop) -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if Sim_time.(t.clock < stop) then t.clock <- stop;
  sample_telemetry t

let pending t = Event_queue.length t.queue
let events_fired t = t.fired
