type ip = int

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      (* strict decimal digits only: [int_of_string_opt] alone would also
         admit [0x1f]/[0o17]/[0b11] prefixes and [1_000] separators,
         which dotted-quad rendering never produces *)
      let octet x =
        let decimal = String.length x > 0 && String.for_all (fun c -> c >= '0' && c <= '9') x in
        match if decimal then int_of_string_opt x else None with
        | Some v when v >= 0 && v <= 255 -> v
        | Some _ | None -> invalid_arg ("Address.ip_of_string: bad octet in " ^ s)
      in
      match (octet a, octet b, octet c, octet d) with
      | a, b, c, d -> (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
  | _ -> invalid_arg ("Address.ip_of_string: " ^ s)

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)

let ip_to_int ip = ip

let ip_of_int n =
  if n < 0 || n > 0xffff_ffff then invalid_arg "Address.ip_of_int: out of range";
  n

let ip_equal = Int.equal
let ip_compare = Int.compare
let pp_ip ppf ip = Format.pp_print_string ppf (ip_to_string ip)

type endpoint = { ip : ip; port : int }

let endpoint ip port = { ip; port }
let endpoint_equal a b = a == b || (ip_equal a.ip b.ip && Int.equal a.port b.port)

let endpoint_compare a b =
  match ip_compare a.ip b.ip with 0 -> Int.compare a.port b.port | c -> c

let pp_endpoint ppf e = Format.fprintf ppf "%a:%d" pp_ip e.ip e.port

type flow = { src : endpoint; dst : endpoint }

let flow ~src ~dst = { src; dst }
let reverse f = { src = f.dst; dst = f.src }
(* flows materialised from the trace intern tables are canonical shared
   records, so the physical check settles most hot-path comparisons *)
let flow_equal a b = a == b || (endpoint_equal a.src b.src && endpoint_equal a.dst b.dst)

let flow_compare a b =
  match endpoint_compare a.src b.src with 0 -> endpoint_compare a.dst b.dst | c -> c

let flow_hash f = Hashtbl.hash (f.src.ip, f.src.port, f.dst.ip, f.dst.port)
let pp_flow ppf f = Format.fprintf ppf "%a-%a" pp_endpoint f.src pp_endpoint f.dst

module Flow_table = Hashtbl.Make (struct
  type t = flow

  let equal = flow_equal
  let hash = flow_hash
end)
