(* Compile a Spec.t onto Simnet and run it with full oracle coverage.

   Execution model, mirroring the real concurrent-server catalogue:
   every tier replica is one node running a thread-per-connection server;
   threads keep a pool of persistent connections per downstream replica
   and never pipeline two logical calls on one connection (a retry or a
   concurrent sibling always dials a separate pooled connection, so each
   logical call is its own flow). A handler records its ground-truth
   visit around exactly the interval the kernel probe can see: first
   request byte received to last response byte sent.

   The one discipline that keeps finished CAGs clean: a caller never
   responds upstream before draining every response it is owed, including
   late responses to timed-out attempts — so no activity of a request
   ever trails its END. *)

module Address = Simnet.Address
module Clock = Simnet.Clock
module Cpu = Simnet.Cpu
module Engine = Simnet.Engine
module Messaging = Simnet.Messaging
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module Tcp = Simnet.Tcp
module Activity = Trace.Activity
module Ground_truth = Trace.Ground_truth
module Faults = Tiersim.Faults
module Naming = Tiersim.Naming

type Messaging.payload += Req of { id : int; key : int }

type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable retries : int;  (* timeout-triggered duplicate attempts *)
  mutable async_jobs : int;
  served : (string, int) Hashtbl.t;  (* hostname -> requests handled *)
}

type built = {
  engine : Engine.t;
  probe : Trace.Probe.t;
  gt : Ground_truth.t;
  entries : Address.endpoint list;
  hostnames : string list;
  stats : stats;
  metrics : Tiersim.Metrics.t;
  spec : Spec.t;
}

let served built =
  Hashtbl.fold (fun h n acc -> (h, n) :: acc) built.stats.served []
  |> List.sort compare

let build (spec : Spec.t) =
  Spec.validate spec;
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let messaging = Messaging.create stack in
  let rng = Rng.create ~seed:spec.seed in
  let gt = Ground_truth.create () in
  let stats =
    { cache_hits = 0; cache_misses = 0; retries = 0; async_jobs = 0; served = Hashtbl.create 16 }
  in
  let metrics = Tiersim.Metrics.create () in
  let tiers = Array.of_list spec.tiers in
  let index_of =
    let h = Hashtbl.create 16 in
    Array.iteri (fun i (t : Spec.tier) -> Hashtbl.replace h t.name i) tiers;
    fun name -> Hashtbl.find h name
  in
  let slow_factor tier_name replica =
    List.fold_left
      (fun f -> function
        | Faults.Tier_slow { tier; factor } when String.equal tier tier_name -> f *. factor
        | Faults.Replica_slow { tier; replica = r; factor }
          when String.equal tier tier_name && r = replica -> f *. factor
        | _ -> f)
      1.0 spec.faults
  in
  let hot_key =
    List.find_map
      (function Faults.Key_skew { hot_key; share; _ } -> Some (hot_key, share) | _ -> None)
      spec.faults
  in
  let skew_of (t : Spec.tier) r =
    let mag = Sim_time.span_ns t.skew in
    if mag = 0 then Sim_time.span_zero
    else
      Sim_time.ns
        (Rng.int (Rng.split rng (Printf.sprintf "skew-%s-%d" t.name r)) (2 * mag) - mag)
  in
  let nodes =
    Array.mapi
      (fun ti (t : Spec.tier) ->
        Array.init t.replicas (fun r ->
            Node.create ~engine
              ~hostname:(Naming.replica_host ~tier:t.name ~index:r)
              ~ip:(Address.ip_of_string (Naming.mesh_tier_ip ~tier_index:ti ~replica:r))
              ~cores:t.cores
              ~clock:(Clock.create ~skew:(skew_of t r) ())
              ()))
      tiers
  in
  let port_of ti = 8000 + ti in
  let endpoint_of ti r = Address.endpoint (Node.ip nodes.(ti).(r)) (port_of ti) in
  let entry_idx = index_of spec.entry in
  let entries = List.init tiers.(entry_idx).replicas (fun r -> endpoint_of entry_idx r) in
  let hostnames =
    Array.to_list nodes |> List.concat_map (fun a -> Array.to_list (Array.map Node.hostname a))
  in
  let probe = Trace.Probe.attach ~stack ~only:hostnames () in
  Trace.Probe.enable probe;
  let compute_of ti r =
    let t = tiers.(ti) in
    Sim_time.span_scale (slow_factor t.name r) t.compute
  in
  let lb_counters = Array.make (Array.length tiers) 0 in
  let bump_served host =
    Hashtbl.replace stats.served host
      (1 + Option.value ~default:0 (Hashtbl.find_opt stats.served host))
  in
  let context node (proc : Simnet.Proc.t) =
    {
      Activity.host = Node.hostname node;
      program = proc.Simnet.Proc.program;
      pid = proc.pid;
      tid = proc.tid;
    }
  in
  (* One logical downstream call: pick a replica (key routing, shifted by
     attempt number so a retry lands on the next partition), dial a free
     pooled connection, send, arm the retry timer, and join on *every*
     response sent before continuing. *)
  let call_one ~node ~proc ~pool ~id ~key ?route_override ~retry target k =
    let tti = index_of target in
    let replicas = tiers.(tti).replicas in
    let base =
      match route_override with
      | Some n -> n mod replicas
      | None -> Spec.route ~replicas ~key
    in
    let max_attempts = match retry with None -> 1 | Some p -> 1 + p.Spec.max_retries in
    let arrived = Array.make max_attempts false in
    let sent = ref 0 and got = ref 0 and joined = ref false in
    let acquire tr k =
      let cell =
        match Hashtbl.find_opt pool (tti, tr) with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace pool (tti, tr) c;
            c
      in
      match !cell with
      | conn :: rest ->
          cell := rest;
          k conn
      | [] -> Tcp.connect stack ~node ~proc ~dst:(endpoint_of tti tr) ~k
    in
    let release tr conn =
      match Hashtbl.find_opt pool (tti, tr) with
      | Some cell -> cell := conn :: !cell
      | None -> Hashtbl.replace pool (tti, tr) (ref [ conn ])
    in
    let rec attempt i =
      let tr = (base + i) mod replicas in
      incr sent;
      if i > 0 then stats.retries <- stats.retries + 1;
      acquire tr (fun conn ->
          Messaging.send_message messaging conn ~proc ~size:spec.request_size
            ~chunk:spec.chunk
            ~payload:(Req { id; key })
            ~k:(fun () ->
              (match retry with
              | Some p when i < p.Spec.max_retries ->
                  ignore
                    (Engine.schedule_after engine ~delay:p.Spec.timeout (fun () ->
                         if not arrived.(i) then
                           ignore
                             (Engine.schedule_after engine ~delay:p.Spec.backoff
                                (fun () -> if not arrived.(i) then attempt (i + 1)))))
              | _ -> ());
              Messaging.recv_message messaging conn ~proc
                ~k:(fun (_ : Messaging.msg) ->
                  arrived.(i) <- true;
                  release tr conn;
                  incr got;
                  if !got = !sent && not !joined then begin
                    joined := true;
                    k ()
                  end)
                ())
            ())
    in
    attempt 0
  in
  let run_group ~node ~proc ~pool ~id ~key (g : Spec.call_group) k =
    match g.mode with
    | Spec.Sequential ->
        let rec loop = function
          | [] -> k ()
          | tgt :: rest ->
              call_one ~node ~proc ~pool ~id ~key ~retry:g.retry tgt (fun () -> loop rest)
        in
        loop g.targets
    | Spec.Concurrent ->
        let n = List.length g.targets in
        let done_ = ref 0 in
        List.iter
          (fun tgt ->
            call_one ~node ~proc ~pool ~id ~key ~retry:g.retry tgt (fun () ->
                incr done_;
                if !done_ = n then k ()))
          g.targets
  in
  let run_groups ~node ~proc ~pool ~id ~key groups k =
    let rec loop = function
      | [] -> k ()
      | g :: rest -> run_group ~node ~proc ~pool ~id ~key g (fun () -> loop rest)
    in
    loop groups
  in
  (* Thread-per-connection server for one tier replica. *)
  let serve ti r sock proc =
    let t = tiers.(ti) in
    let node = nodes.(ti).(r) in
    let pool : (int * int, Tcp.socket list ref) Hashtbl.t = Hashtbl.create 4 in
    let close_all () =
      Hashtbl.iter (fun _ cell -> List.iter (fun c -> Tcp.close stack c) !cell) pool;
      Tcp.close stack sock
    in
    let respond ~id size k =
      Messaging.send_message messaging sock ~proc ~size ~chunk:spec.chunk ~k ();
      ignore id
    in
    let rec next () =
      Messaging.recv_message messaging sock ~proc
        ~k:(fun (m : Messaging.msg) ->
          if m.size = 0 then close_all ()
          else
            match m.payload with
            | Some (Req { id; key }) -> begin
                bump_served (Node.hostname node);
                let ctx = context node proc in
                Ground_truth.begin_visit gt ~id ~kind:spec.name ~context:ctx
                  ~ts:(Node.local_time node);
                let finish () =
                  Ground_truth.end_visit gt ~id ~context:ctx ~ts:(Node.local_time node);
                  respond ~id t.response_size next
                in
                match t.role with
                | Spec.Service ->
                    Cpu.submit (Node.cpu node) ~work:(compute_of ti r) (fun () ->
                        run_groups ~node ~proc ~pool ~id ~key t.calls (fun () ->
                            Cpu.submit (Node.cpu node)
                              ~work:(Sim_time.span_scale 0.25 (compute_of ti r))
                              finish))
                | Spec.Cache { hit_ratio; backing; backing_retry } ->
                    Cpu.submit (Node.cpu node) ~work:(compute_of ti r) (fun () ->
                        if Spec.cache_hit ~hit_ratio ~key then begin
                          stats.cache_hits <- stats.cache_hits + 1;
                          finish ()
                        end
                        else begin
                          stats.cache_misses <- stats.cache_misses + 1;
                          call_one ~node ~proc ~pool ~id ~key ~retry:backing_retry backing
                            finish
                        end)
                | Spec.Load_balancer { backend } ->
                    Cpu.submit (Node.cpu node) ~work:(compute_of ti r) (fun () ->
                        let n = lb_counters.(ti) in
                        lb_counters.(ti) <- n + 1;
                        call_one ~node ~proc ~pool ~id ~key ~route_override:n ~retry:None
                          backend finish)
                | Spec.Queue_worker ->
                    stats.async_jobs <- stats.async_jobs + 1;
                    (* Ack first, work after: the visit covers only the
                       synchronous hop the tracer can see; the deferred
                       work makes no syscalls but delays later jobs. *)
                    Cpu.submit (Node.cpu node)
                      ~work:(Sim_time.span_scale 0.1 (compute_of ti r))
                      (fun () ->
                        Ground_truth.end_visit gt ~id ~context:ctx
                          ~ts:(Node.local_time node);
                        respond ~id t.response_size (fun () ->
                            Cpu.submit (Node.cpu node) ~work:(compute_of ti r) next))
              end
            | Some _ | None -> failwith "mesh: unexpected payload")
        ()
    in
    next ()
  in
  Array.iteri
    (fun ti (t : Spec.tier) ->
      Array.iteri
        (fun r node ->
          let main = Node.spawn node ~program:t.name in
          Tcp.listen stack node ~port:(port_of ti) ~accept:(fun sock ->
              let proc = Node.spawn_thread node ~of_:main in
              serve ti r sock proc))
        nodes.(ti))
    tiers;
  (* Closed-loop clients on one load-generator node, each pinned to an
     entry replica. [sync_start] fires them all at the same instant. *)
  let client_node =
    Node.create ~engine ~hostname:"meshclients"
      ~ip:(Address.ip_of_string Naming.mesh_clients_ip)
      ~cores:4 ()
  in
  let next_id = ref 0 in
  for c = 0 to spec.clients - 1 do
    let crng = Rng.split rng (Printf.sprintf "client-%d" c) in
    let proc = Node.spawn client_node ~program:"loadgen" in
    let entry_replica = c mod tiers.(entry_idx).replicas in
    let start =
      if spec.sync_start then Sim_time.ms 1
      else Rng.uniform_span crng ~lo:(Sim_time.ms 1) ~hi:(Sim_time.ms 50)
    in
    ignore
      (Engine.schedule_after engine ~delay:start (fun () ->
           Tcp.connect stack ~node:client_node ~proc
             ~dst:(endpoint_of entry_idx entry_replica)
             ~k:(fun sock ->
               let rec session remaining =
                 if remaining = 0 then Tcp.close stack sock
                 else begin
                   let id = !next_id in
                   incr next_id;
                   let key =
                     match hot_key with
                     | Some (hk, share) when Rng.bernoulli crng ~p:share -> hk
                     | _ -> Rng.int crng spec.keys
                   in
                   let started = Engine.now engine in
                   (* Entry requests are single-send: small HTTP-like
                      requests fit one syscall (DESIGN.md assumption #2). *)
                   Messaging.send_message messaging sock ~proc ~size:spec.request_size
                     ~chunk:(max spec.chunk spec.request_size)
                     ~payload:(Req { id; key })
                     ~k:(fun () ->
                       Messaging.recv_message messaging sock ~proc
                         ~k:(fun (m : Messaging.msg) ->
                           if m.size = 0 then ()
                           else begin
                             Ground_truth.complete gt ~id;
                             Tiersim.Metrics.record metrics
                               ~finished_at:(Engine.now engine)
                               ~rt:(Sim_time.diff (Engine.now engine) started)
                               ~kind:spec.Spec.name;
                             if Sim_time.span_ns spec.think_mean = 0 then
                               session (remaining - 1)
                             else
                               let think =
                                 Rng.exponential_span crng ~mean:spec.think_mean
                               in
                               ignore
                                 (Engine.schedule_after engine ~delay:think (fun () ->
                                      session (remaining - 1)))
                           end)
                         ())
                     ()
                 end
               in
               session spec.requests_per_client)))
  done;
  { engine; probe; gt; entries; hostnames; stats; metrics; spec }

(* ---- correlation + scoring ---- *)

type score = {
  result : Core.Correlator.result;
  verdict : Core.Accuracy.verdict;
  patterns : int;
  records : int;
  digest : string;
  sharded_identical : bool;
}

let pattern_count cags =
  List.length (List.sort_uniq String.compare (List.map Core.Pattern.signature_of cags))

let score_logs ?(window = Sim_time.ms 5) ?(jobs = 2) ~entries ~gt logs =
  let transform = Core.Transform.config ~entry_points:entries () in
  let cfg = Core.Correlator.config ~transform ~window () in
  let result = Core.Correlator.correlate cfg logs in
  (* The oracle stamps visits from application code, which on a contended
     node runs only after the recv continuation clears the CPU run queue;
     the probe stamps the same recv inside the kernel at delivery. The
     interval tolerance must dominate that scheduling lag (hundreds of
     microseconds under a thundering herd), and 2 ms is still well below
     the millisecond-scale visit spans that distinguish requests sharing
     a context. *)
  let verdict =
    Core.Accuracy.check ~tolerance:(Sim_time.ms 2) ~ground_truth:gt
      result.Core.Correlator.cags
  in
  let digest = Core.Shard.digest result in
  let sharded_identical =
    if jobs <= 1 then true
    else
      let sharded = Core.Shard.correlate ~jobs cfg logs in
      String.equal digest (Core.Shard.digest sharded)
  in
  let records =
    List.fold_left (fun n log -> n + List.length (Trace.Log.to_list log)) 0 logs
  in
  {
    result;
    verdict;
    patterns = pattern_count result.Core.Correlator.cags;
    records;
    digest;
    sharded_identical;
  }

let run ?window ?jobs spec =
  let b = build spec in
  Engine.run b.engine;
  let s = score_logs ?window ?jobs ~entries:b.entries ~gt:b.gt (Trace.Probe.logs b.probe) in
  (b, s)
