(* Adversarial scenario presets over one reference mesh.

   The reference topology is a small but fully-featured microservice
   graph — every branching pattern the RUBiS chain cannot produce:

     gw (entry) -> lb -> api x3 -> { cache -> db x2  ||  profile x2 }
                                   -> worker (async)

   gw fronts a round-robin load balancer over three api replicas; api
   fans out concurrently to a read-through cache (backed by a
   key-partitioned two-replica db) and a key-partitioned profile tier,
   then hands the request to an async queue worker. Presets perturb this
   graph with scenario faults and workload shapes; `random` leaves it
   entirely for a seeded call-tree topology ({!Random_spec}) and
   `random_mesh` for a seeded declarative DAG ({!Spec.random}). *)

module Sim_time = Simnet.Sim_time
module Faults = Tiersim.Faults

let ms = Sim_time.ms
let us = Sim_time.us

(* Healthy end-to-end latency is a few ms; retry timeouts sit well above
   the healthy tail so the control never retries, and well below the
   faulted db's service time so a cascade actually cascades. *)
let retry_policy = { Spec.max_retries = 1; timeout = ms 12; backoff = us 500 }

let base ?(api_retry = None) ?(cache_retry = None) ?(clients = 8)
    ?(requests_per_client = 5) ?(think_mean = ms 15) ?(sync_start = false)
    ?(worker_compute = ms 3) ?(faults = []) ~name ~seed () =
  {
    Spec.name;
    entry = "gw";
    tiers =
      [
        Spec.tier "gw" ~replicas:1 ~cores:2 ~compute:(us 300)
          ~calls:[ Spec.group [ "lb" ] ] ~response_size:2048;
        Spec.tier "lb"
          ~role:(Spec.Load_balancer { backend = "api" })
          ~replicas:1 ~cores:2 ~compute:(us 50) ~skew:(ms 5) ~response_size:512;
        Spec.tier "api" ~replicas:3 ~cores:2 ~compute:(us 800) ~skew:(ms 20)
          ~calls:
            [
              Spec.group ~mode:Spec.Concurrent ?retry:api_retry [ "cache"; "profile" ];
              Spec.group [ "worker" ];
            ]
          ~response_size:4096;
        Spec.tier "cache"
          ~role:
            (Spec.Cache { hit_ratio = 0.7; backing = "db"; backing_retry = cache_retry })
          ~replicas:1 ~cores:2 ~compute:(us 150) ~skew:(ms 10) ~response_size:1024;
        Spec.tier "profile" ~replicas:2 ~cores:2 ~compute:(us 400) ~skew:(ms 15)
          ~response_size:2048;
        Spec.tier "db" ~replicas:2 ~cores:1 ~compute:(ms 2) ~skew:(ms 25)
          ~response_size:8192;
        Spec.tier "worker" ~role:Spec.Queue_worker ~replicas:1 ~cores:2
          ~compute:worker_compute ~skew:(ms 8) ~response_size:256;
      ];
    clients;
    requests_per_client;
    think_mean;
    sync_start;
    keys = 100;
    request_size = 512;
    chunk = 4096;
    faults;
    seed;
  }

(* The hot key must be a guaranteed cache miss (key mod 100 >= 70) so
   every hot request reaches the db, and it lands on partition
   93 mod 2 = 1 — host db2 becomes the hotspot. *)
let hotspot_hot_key = 93

let spec_of ~seed = function
  | "control" -> Some (base ~name:"control" ~seed ())
  | "cascading_failure" ->
      Some
        (base ~name:"cascading_failure" ~seed
           ~api_retry:(Some retry_policy) ~cache_retry:(Some retry_policy)
           ~requests_per_client:4 ~think_mean:(ms 10)
           ~faults:[ Faults.tier_slow ~tier:"db" ~factor:10.0 ]
           ())
  | "hotspot_key" ->
      Some
        (base ~name:"hotspot_key" ~seed ~clients:10 ~requests_per_client:4
           ~faults:[ Faults.key_skew ~tier:"db" ~hot_key:hotspot_hot_key ~share:0.8 ]
           ())
  | "canary_slow_version" ->
      Some
        (base ~name:"canary_slow_version" ~seed ~requests_per_client:4
           ~faults:[ Faults.replica_slow ~tier:"api" ~replica:2 ~factor:6.0 ]
           ())
  | "thundering_herd" ->
      Some
        (base ~name:"thundering_herd" ~seed ~clients:32 ~requests_per_client:2
           ~think_mean:Sim_time.span_zero ~sync_start:true ~worker_compute:(ms 6) ())
  | "random_mesh" -> Some (Spec.random ~seed ())
  | _ -> None

let names =
  [
    "control";
    "cascading_failure";
    "hotspot_key";
    "canary_slow_version";
    "thundering_herd";
    "random";
    "random_mesh";
  ]

type report = {
  preset : string;
  seed : int;
  accuracy : float;
  correct : int;
  total_requests : int;
  false_positives : int;
  false_negatives : int;
  paths : int;
  patterns : int;
  records : int;
  retries : int;
  cache_hits : int;
  cache_misses : int;
  async_jobs : int;
  served : (string * int) list;
  digest : string;
  sharded_identical : bool;
  correlation_time : float;
}

let report_of_score ~preset ~seed ~stats ~served (s : Runtime.score) =
  {
    preset;
    seed;
    accuracy = s.verdict.Core.Accuracy.accuracy;
    correct = s.verdict.correct;
    total_requests = s.verdict.total_requests;
    false_positives = s.verdict.false_positives;
    false_negatives = s.verdict.false_negatives;
    paths = List.length s.result.Core.Correlator.cags;
    patterns = s.patterns;
    records = s.records;
    retries = (match stats with Some (st : Runtime.stats) -> st.retries | None -> 0);
    cache_hits = (match stats with Some st -> st.cache_hits | None -> 0);
    cache_misses = (match stats with Some st -> st.cache_misses | None -> 0);
    async_jobs = (match stats with Some st -> st.async_jobs | None -> 0);
    served;
    digest = s.digest;
    sharded_identical = s.sharded_identical;
    correlation_time = s.result.Core.Correlator.correlation_time;
  }

let default_seed = 7

let run ?window ?jobs ?(seed = default_seed) name =
  match name with
  | "random" ->
      let spec = { Random_spec.default_spec with seed; clients = 6; tiers = 4 } in
      let b = Random_spec.build spec in
      Simnet.Engine.run b.Random_spec.engine;
      let s =
        Runtime.score_logs ?window ?jobs ~entries:[ b.entry ] ~gt:b.gt
          (Trace.Probe.logs b.probe)
      in
      report_of_score ~preset:name ~seed ~stats:None ~served:[] s
  | _ -> (
      match spec_of ~seed name with
      | None ->
          Printf.ksprintf invalid_arg "Mesh.Presets.run: unknown preset %s (try: %s)"
            name (String.concat ", " names)
      | Some spec ->
          let b, s = Runtime.run ?window ?jobs spec in
          report_of_score ~preset:name ~seed ~stats:(Some b.Runtime.stats)
            ~served:(Runtime.served b) s)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>preset %s (seed %d)@,\
     accuracy %.4f (%d/%d correct, fp %d, fn %d)@,\
     paths %d, patterns %d, records %d@,\
     retries %d, cache %d hit / %d miss, async jobs %d@,\
     sharded identical: %b@]"
    r.preset r.seed r.accuracy r.correct r.total_requests r.false_positives
    r.false_negatives r.paths r.patterns r.records r.retries r.cache_hits
    r.cache_misses r.async_jobs r.sharded_identical
