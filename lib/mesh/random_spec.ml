(* Random multi-tier call-tree topologies, promoted from the test suite
   so the CLI and bench can drive them too (the `random` scenario
   preset).

   Generates an arbitrary synchronous-RPC service: K tiers on K nodes, each
   request executing a random call tree (sequential sub-calls, arbitrary
   tiers, bounded depth/fanout), with random message sizes and chunking,
   random per-node clock skews, and several concurrent closed-loop clients.
   The ground truth is recorded exactly as the real testbed records it, so
   the PreciseTracer accuracy property can be checked far beyond the
   RUBiS-shaped pipeline. Declarative DAG topologies with roles, replicas
   and retries live in {!Spec}/{!Runtime}; this module keeps the
   unconstrained call-tree space those presets do not cover. *)

module Address = Simnet.Address
module Clock = Simnet.Clock
module Cpu = Simnet.Cpu
module Engine = Simnet.Engine
module Messaging = Simnet.Messaging
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module Tcp = Simnet.Tcp
module Activity = Trace.Activity
module Ground_truth = Trace.Ground_truth

type call = {
  tier : int;
  request_size : int;
  compute_before : Sim_time.span;
  subcalls : call list;  (* executed sequentially *)
  compute_after : Sim_time.span;
  response_size : int;
}

type plan = { id : int; root : call }

type Messaging.payload += Call_payload of { id : int; call : call }

type spec = {
  tiers : int;  (* >= 2: tier 0 is the entry *)
  clients : int;
  requests_per_client : int;
  max_depth : int;
  max_fanout : int;
  max_skew : Sim_time.span;
  chunk : int;  (* send chunk size: small values force n-to-n merging *)
  seed : int;
}

let default_spec =
  {
    tiers = 3;
    clients = 4;
    requests_per_client = 5;
    max_depth = 3;
    max_fanout = 2;
    max_skew = Sim_time.ms 50;
    chunk = 4096;
    seed = 1;
  }

let gen_size rng lo hi = lo + Rng.int rng (hi - lo + 1)

(* Internal calls never target tier 0: its port is the service's entry
   endpoint, reserved for external clients (calling it would make the
   callee's receives look like new requests) - nor the caller itself
   (self-RPC would deadlock a synchronous handler). *)
let targets spec ~from_tier =
  List.filter (fun t -> t <> from_tier) (List.init (spec.tiers - 1) (fun i -> i + 1))

let rec gen_call rng spec ~depth ~from_tier =
  let candidates = targets spec ~from_tier in
  let tier = List.nth candidates (Rng.int rng (List.length candidates)) in
  let fanout =
    if depth >= spec.max_depth || targets spec ~from_tier:tier = [] then 0
    else Rng.int rng (spec.max_fanout + 1)
  in
  let subcalls =
    List.init fanout (fun _ -> gen_call rng spec ~depth:(depth + 1) ~from_tier:tier)
  in
  {
    tier;
    request_size = gen_size rng 64 2048;
    compute_before = Sim_time.us (gen_size rng 50 2000);
    subcalls;
    compute_after = Sim_time.us (gen_size rng 50 1000);
    response_size = gen_size rng 128 30_000;
  }

let gen_root rng spec =
  let fanout = 1 + Rng.int rng spec.max_fanout in
  let subcalls = List.init fanout (fun _ -> gen_call rng spec ~depth:1 ~from_tier:0) in
  {
    tier = 0;
    request_size = gen_size rng 64 1024;
    compute_before = Sim_time.us (gen_size rng 100 2000);
    subcalls;
    compute_after = Sim_time.us (gen_size rng 100 1000);
    response_size = gen_size rng 256 30_000;
  }

type built = {
  engine : Engine.t;
  probe : Trace.Probe.t;
  gt : Ground_truth.t;
  entry : Address.endpoint;
  hostnames : string list;
}

let build spec =
  assert (spec.tiers >= 2);
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let messaging = Messaging.create stack in
  let rng = Rng.create ~seed:spec.seed in
  let gt = Ground_truth.create () in
  let skew_of i =
    let magnitude = Sim_time.span_ns spec.max_skew in
    if magnitude = 0 then Sim_time.span_zero
    else Sim_time.ns (Rng.int (Rng.split rng (Printf.sprintf "skew-%d" i)) (2 * magnitude) - magnitude)
  in
  let nodes =
    Array.init spec.tiers (fun i ->
        Node.create ~engine
          ~hostname:(Printf.sprintf "tier%d" i)
          ~ip:(Address.ip_of_string (Printf.sprintf "10.9.%d.1" i))
          ~cores:2
          ~clock:(Clock.create ~skew:(skew_of i) ())
          ())
  in
  let client_node =
    Node.create ~engine ~hostname:"clients" ~ip:(Address.ip_of_string "10.9.99.1") ~cores:2 ()
  in
  let hostnames = Array.to_list (Array.map Node.hostname nodes) in
  let probe = Trace.Probe.attach ~stack ~only:hostnames () in
  Trace.Probe.enable probe;
  let port_of tier = 7000 + tier in
  let context node (proc : Simnet.Proc.t) =
    {
      Activity.host = Node.hostname node;
      program = proc.Simnet.Proc.program;
      pid = proc.pid;
      tid = proc.tid;
    }
  in
  (* Each tier: thread-per-connection server executing call subtrees.
     Threads keep one connection per downstream tier. *)
  let serve_conn tier sock proc =
    let node = nodes.(tier) in
    let conns = Hashtbl.create 4 in
    let with_conn target k =
      match Hashtbl.find_opt conns target with
      | Some c -> k c
      | None ->
          Tcp.connect stack ~node ~proc
            ~dst:(Address.endpoint (Node.ip nodes.(target)) (port_of target))
            ~k:(fun c ->
              Hashtbl.replace conns target c;
              k c)
    in
    let rec subcalls_loop id calls k =
      match calls with
      | [] -> k ()
      | call :: rest ->
          with_conn call.tier (fun c ->
              Messaging.send_message messaging c ~proc ~size:call.request_size
                ~chunk:spec.chunk
                ~payload:(Call_payload { id; call })
                ~k:(fun () ->
                  Messaging.recv_message messaging c ~proc
                    ~k:(fun (_ : Messaging.msg) -> subcalls_loop id rest k)
                    ())
                ())
    in
    let rec next () =
      Messaging.recv_message messaging sock ~proc
        ~k:(fun (m : Messaging.msg) ->
          if m.size = 0 then begin
            Hashtbl.iter (fun _ c -> Tcp.close stack c) conns;
            Tcp.close stack sock
          end
          else
            match m.payload with
            | Some (Call_payload { id; call }) ->
                let ctx = context node proc in
                Ground_truth.begin_visit gt ~id ~kind:"topo" ~context:ctx
                  ~ts:(Node.local_time node);
                Cpu.submit (Node.cpu node) ~work:call.compute_before (fun () ->
                    subcalls_loop id call.subcalls (fun () ->
                        Cpu.submit (Node.cpu node) ~work:call.compute_after (fun () ->
                            Ground_truth.end_visit gt ~id ~context:ctx
                              ~ts:(Node.local_time node);
                            Messaging.send_message messaging sock ~proc
                              ~size:call.response_size ~chunk:spec.chunk ~k:next ())))
            | Some _ | None -> failwith "topo: unexpected payload")
        ()
    in
    next ()
  in
  Array.iteri
    (fun tier node ->
      let main = Node.spawn node ~program:(Printf.sprintf "svc%d" tier) in
      Tcp.listen stack node ~port:(port_of tier) ~accept:(fun sock ->
          let proc = Node.spawn_thread node ~of_:main in
          serve_conn tier sock proc))
    nodes;
  (* Closed-loop clients issuing random call trees at the entry tier. *)
  let next_id = ref 0 in
  for c = 0 to spec.clients - 1 do
    let crng = Rng.split rng (Printf.sprintf "client-%d" c) in
    let proc = Node.spawn client_node ~program:"loadgen" in
    let start = Rng.uniform_span crng ~lo:(Sim_time.ms 1) ~hi:(Sim_time.ms 50) in
    ignore
      (Engine.schedule_after engine ~delay:start (fun () ->
           Tcp.connect stack ~node:client_node ~proc
             ~dst:(Address.endpoint (Node.ip nodes.(0)) (port_of 0))
             ~k:(fun sock ->
               let rec session remaining =
                 if remaining = 0 then Tcp.close stack sock
                 else begin
                   let id = !next_id in
                   incr next_id;
                   let root = gen_root crng spec in
                   (* Entry requests are single-send: small HTTP-like
                      requests fit one syscall (DESIGN.md assumption #2). *)
                   Messaging.send_message messaging sock ~proc ~size:root.request_size
                     ~chunk:(max spec.chunk root.request_size)
                     ~payload:(Call_payload { id; call = root })
                     ~k:(fun () ->
                       Messaging.recv_message messaging sock ~proc
                         ~k:(fun (m : Messaging.msg) ->
                           if m.size = 0 then ()
                           else begin
                             Ground_truth.complete gt ~id;
                             let think =
                               Rng.exponential_span crng ~mean:(Sim_time.ms 30)
                             in
                             ignore
                               (Engine.schedule_after engine ~delay:think (fun () ->
                                    session (remaining - 1)))
                           end)
                         ())
                     ()
                 end
               in
               session spec.requests_per_client)))
  done;
  { engine; probe; gt; entry = Address.endpoint (Node.ip nodes.(0)) (port_of 0); hostnames }

(* Run the topology, correlate, and score. *)
let run_and_score ?(window = Sim_time.ms 5) spec =
  let b = build spec in
  Engine.run b.engine;
  let transform = Core.Transform.config ~entry_points:[ b.entry ] () in
  let cfg = Core.Correlator.config ~transform ~window () in
  let result = Core.Correlator.correlate cfg (Trace.Probe.logs b.probe) in
  let verdict = Core.Accuracy.check ~ground_truth:b.gt result.Core.Correlator.cags in
  (result, verdict, b)
