(** Adversarial scenario presets over a reference microservice mesh.

    The reference graph: [gw -> lb -> api x3 -> {cache -> db x2 ||
    profile x2} -> worker (async)]. Presets:

    - [control]: the healthy graph — the faultless baseline every gate
      compares against (zero false positives required).
    - [cascading_failure]: {!Tiersim.Faults.Tier_slow} on the db plus
      retry policies on the api and cache edges — timeouts fire, retried
      duplicate flows amplify load downstream.
    - [hotspot_key]: {!Tiersim.Faults.Key_skew} — 80% of requests carry
      one guaranteed-miss key, hammering db partition [db2].
    - [canary_slow_version]: {!Tiersim.Faults.Replica_slow} — one api
      replica (the canary) runs 6x slow behind the load balancer.
    - [thundering_herd]: 32 clients fire at the same instant with zero
      think time into a slow async worker.
    - [random]: a seeded random call-tree topology ({!Random_spec}).
    - [random_mesh]: a seeded random declarative DAG ({!Spec.random}). *)

val names : string list
val default_seed : int

val spec_of : seed:int -> string -> Spec.t option
(** The declarative spec behind a preset name; [None] for unknown names
    and for [random] (which is a {!Random_spec} call-tree, not a DAG
    spec). *)

type report = {
  preset : string;
  seed : int;
  accuracy : float;
  correct : int;
  total_requests : int;
  false_positives : int;
  false_negatives : int;
  paths : int;
  patterns : int;  (** Distinct path signatures. *)
  records : int;  (** Probe activities correlated. *)
  retries : int;
  cache_hits : int;
  cache_misses : int;
  async_jobs : int;
  served : (string * int) list;  (** Per-host handled requests. *)
  digest : string;
  sharded_identical : bool;
  correlation_time : float;
}

val run :
  ?window:Simnet.Sim_time.span -> ?jobs:int -> ?seed:int -> string -> report
(** Build, simulate, correlate (serial and sharded) and score one preset
    end-to-end. @raise Invalid_argument on unknown names. *)

val pp_report : Format.formatter -> report -> unit
