(** Declarative microservice-DAG topologies.

    A spec names the tiers of a service graph — each with a role, a
    replica count, per-request compute and a clock skew — and the calls
    between them: ordered call groups whose targets are dialled either
    sequentially or concurrently, optionally under a retry policy.
    {!Runtime.build} compiles a validated spec onto [Simnet] with full
    {!Trace.Ground_truth} oracle coverage; {!Presets} ships adversarial
    scenarios over a common reference topology. *)

module Sim_time := Simnet.Sim_time

type retry = {
  max_retries : int;  (** Additional attempts after the first. *)
  timeout : Sim_time.span;  (** Per-attempt; a late response is still drained. *)
  backoff : Sim_time.span;  (** Wait between timeout and the next attempt. *)
}

type mode =
  | Sequential  (** Targets dialled one at a time, in order. *)
  | Concurrent
      (** All targets dialled back-to-back on separate connections; the
          caller proceeds when every response (including late ones from
          timed-out attempts) has been drained. *)

type call_group = { targets : string list; mode : mode; retry : retry option }

type role =
  | Service  (** Compute, run the tier's call groups, respond. *)
  | Cache of { hit_ratio : float; backing : string; backing_retry : retry option }
      (** Hit: respond directly (short-circuit). Miss: call [backing]
          first. Hit/miss is a deterministic property of the request key
          ({!cache_hit}). *)
  | Load_balancer of { backend : string }
      (** Forward the request to one [backend] replica, round-robin. *)
  | Queue_worker
      (** Async hop: acknowledge the job immediately, then burn the
          compute {e after} the ack — the caller's latency excludes the
          work, but the backlog delays later jobs. *)

type tier = {
  name : string;
  role : role;
  replicas : int;  (** Key-partitioned, except under a load balancer. *)
  cores : int;
  compute : Sim_time.span;  (** Per-request service demand. *)
  skew : Sim_time.span;  (** Per-replica clock skew drawn in [-skew, +skew]. *)
  calls : call_group list;  (** Service tiers only; executed in order. *)
  response_size : int;
}

type t = {
  name : string;
  entry : string;  (** Must be a [Service]; its endpoints are the BEGIN/END entry points. *)
  tiers : tier list;
  clients : int;
  requests_per_client : int;
  think_mean : Sim_time.span;  (** Exponential think; zero = none. *)
  sync_start : bool;  (** All clients fire at the same instant (thundering herd). *)
  keys : int;  (** Key space; multiples of 100 make {!cache_hit} exact. *)
  request_size : int;
  chunk : int;  (** Send chunk size: small values force n-to-n merging. *)
  faults : Tiersim.Faults.t list;
      (** Interpreted here: [Tier_slow], [Replica_slow] scale compute;
          [Key_skew] reshapes the client key distribution. Others are
          ignored. *)
  seed : int;
}

val tier :
  ?role:role ->
  ?replicas:int ->
  ?cores:int ->
  ?compute:Sim_time.span ->
  ?skew:Sim_time.span ->
  ?calls:call_group list ->
  ?response_size:int ->
  string ->
  tier

val group : ?mode:mode -> ?retry:retry -> string list -> call_group

val cache_hit : hit_ratio:float -> key:int -> bool
(** Deterministic per-key hit set: [key mod 100 < hit_ratio * 100]. *)

val route : replicas:int -> key:int -> int
(** Key partitioning: [key mod replicas]. *)

val edges_of : t -> (string * string) list
(** Every caller/callee tier pair, including cache backing and load
    balancer backend edges. *)

val validate : t -> unit
(** @raise Invalid_argument on unknown/self/entry targets, cyclic call
    graphs, empty groups, non-Service roles with call groups, or
    out-of-range parameters. *)

val random : ?tiers:int -> seed:int -> unit -> t
(** A random layered service DAG with replicated tiers, concurrent
    fan-out groups and a cache with hit/miss branching — the accuracy
    property's input space. [tiers] pins the tier count (else 3-6). *)
