(** Compile and run a {!Spec.t}; correlate and score the result.

    The execution discipline that keeps correlation exact: every logical
    call gets its own flow (pooled connections are never pipelined — a
    retry or a concurrent sibling dials a separate connection), and a
    handler never responds upstream before draining every response it is
    owed, including late responses to timed-out attempts, so no activity
    of a request ever trails its END. *)

type Simnet.Messaging.payload += Req of { id : int; key : int }

type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable retries : int;  (** Timeout-triggered duplicate attempts. *)
  mutable async_jobs : int;  (** Jobs acknowledged by queue workers. *)
  served : (string, int) Hashtbl.t;  (** hostname -> requests handled. *)
}

type built = {
  engine : Simnet.Engine.t;
  probe : Trace.Probe.t;
  gt : Trace.Ground_truth.t;
  entries : Simnet.Address.endpoint list;  (** Entry replica endpoints (BEGIN/END rewriting). *)
  hostnames : string list;  (** Every traced tier host. *)
  stats : stats;
  metrics : Tiersim.Metrics.t;
  spec : Spec.t;
}

val served : built -> (string * int) list
(** Per-host handled-request counts, sorted by hostname. *)

val build : Spec.t -> built
(** Validate and compile the spec. Run with [Simnet.Engine.run]. *)

type score = {
  result : Core.Correlator.result;
  verdict : Core.Accuracy.verdict;
  patterns : int;  (** Distinct path signatures. *)
  records : int;  (** Probe activities correlated. *)
  digest : string;  (** {!Core.Shard.digest} of the serial result. *)
  sharded_identical : bool;
      (** Serial and [jobs]-sharded correlation produced byte-identical
          results (trivially true when [jobs <= 1]). *)
}

val pattern_count : Core.Cag.t list -> int

val score_logs :
  ?window:Simnet.Sim_time.span ->
  ?jobs:int ->
  entries:Simnet.Address.endpoint list ->
  gt:Trace.Ground_truth.t ->
  Trace.Log.collection ->
  score
(** Correlate (serial, default 5 ms window), check accuracy against the
    oracle, and verify serial/sharded digest identity (default [jobs] 2). *)

val run :
  ?window:Simnet.Sim_time.span -> ?jobs:int -> Spec.t -> built * score
(** [build], drive the simulation to completion, then {!score_logs}. *)
