module Sim_time = Simnet.Sim_time
module Rng = Simnet.Rng
module Faults = Tiersim.Faults

type retry = { max_retries : int; timeout : Sim_time.span; backoff : Sim_time.span }
type mode = Sequential | Concurrent
type call_group = { targets : string list; mode : mode; retry : retry option }

type role =
  | Service
  | Cache of { hit_ratio : float; backing : string; backing_retry : retry option }
  | Load_balancer of { backend : string }
  | Queue_worker

type tier = {
  name : string;
  role : role;
  replicas : int;
  cores : int;
  compute : Sim_time.span;
  skew : Sim_time.span;
  calls : call_group list;
  response_size : int;
}

type t = {
  name : string;
  entry : string;
  tiers : tier list;
  clients : int;
  requests_per_client : int;
  think_mean : Sim_time.span;
  sync_start : bool;
  keys : int;
  request_size : int;
  chunk : int;
  faults : Faults.t list;
  seed : int;
}

let tier ?(role = Service) ?(replicas = 1) ?(cores = 2) ?(compute = Sim_time.us 500)
    ?(skew = Sim_time.span_zero) ?(calls = []) ?(response_size = 2048) name =
  { name; role; replicas; cores; compute; skew; calls; response_size }

let group ?(mode = Sequential) ?retry targets = { targets; mode; retry }

(* The hit set is a fixed prefix of the key space modulo 100, so hit/miss
   is a deterministic property of the key (the same key always hits or
   always misses, like a real cache in steady state) and a uniform draw
   over a key space that is a multiple of 100 hits with probability
   [hit_ratio] exactly. A preset that wants a guaranteed-miss hot key
   picks one with [key mod 100 >= hit_ratio * 100]. *)
let cache_hit ~hit_ratio ~key =
  key mod 100 < int_of_float ((hit_ratio *. 100.) +. 0.5)

(* Replicated tiers are key-partitioned: calls route by key, so a skewed
   key distribution concentrates on one partition. Load balancers ignore
   the key and round-robin instead. *)
let route ~replicas ~key = if replicas <= 1 then 0 else key mod replicas

(* ---- validation ---- *)

let edges_of (t : t) =
  List.concat_map
    (fun (tr : tier) ->
      let callees = List.concat_map (fun g -> g.targets) tr.calls in
      let role_callees =
        match tr.role with
        | Cache { backing; _ } -> [ backing ]
        | Load_balancer { backend } -> [ backend ]
        | Service | Queue_worker -> []
      in
      List.map (fun dst -> (tr.name, dst)) (callees @ role_callees))
    t.tiers

let validate (t : t) =
  let fail fmt = Printf.ksprintf invalid_arg ("Mesh.Spec: " ^^ fmt) in
  if t.tiers = [] then fail "no tiers";
  if List.length t.tiers > 60 then fail "too many tiers (max 60)";
  let names = List.map (fun (tr : tier) -> tr.name) t.tiers in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then fail "duplicate tier %s" n;
      Hashtbl.replace seen n ())
    names;
  let find n = List.find_opt (fun (tr : tier) -> tr.name = n) t.tiers in
  (match find t.entry with
  | None -> fail "entry tier %s not declared" t.entry
  | Some e -> if e.role <> Service then fail "entry tier %s must have role Service" t.entry);
  List.iter
    (fun (tr : tier) ->
      if tr.replicas < 1 || tr.replicas > 30 then fail "%s: replicas out of [1,30]" tr.name;
      if tr.cores < 1 then fail "%s: cores" tr.name;
      (match tr.role with
      | Cache { hit_ratio; _ } when hit_ratio < 0.0 || hit_ratio > 1.0 ->
          fail "%s: hit_ratio out of [0,1]" tr.name
      | (Cache _ | Load_balancer _ | Queue_worker) when tr.calls <> [] ->
          fail "%s: only Service tiers declare call groups" tr.name
      | _ -> ());
      List.iter
        (fun g -> if g.targets = [] then fail "%s: empty call group" tr.name)
        tr.calls)
    t.tiers;
  List.iter
    (fun (src, dst) ->
      if find dst = None then fail "%s calls undeclared tier %s" src dst;
      if dst = src then fail "%s calls itself (synchronous self-RPC deadlocks)" src;
      if dst = t.entry then fail "%s calls the entry tier (its port is reserved for clients)" src)
    (edges_of t);
  (* The call graph must be acyclic: tiers execute a fixed static call
     list, so a tier cycle is unbounded recursion, not a call-back. *)
  let adj = Hashtbl.create 16 in
  List.iter (fun (s, d) -> Hashtbl.add adj s d) (edges_of t);
  let state = Hashtbl.create 16 in
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some `Done -> ()
    | Some `Active -> fail "call graph has a cycle through %s" n
    | None ->
        Hashtbl.replace state n `Active;
        List.iter visit (Hashtbl.find_all adj n);
        Hashtbl.replace state n `Done
  in
  List.iter (fun (tr : tier) -> visit tr.name) t.tiers;
  if t.clients < 1 then fail "clients";
  if t.requests_per_client < 1 then fail "requests_per_client";
  if t.keys < 1 then fail "keys";
  if t.request_size < 1 || t.chunk < 1 then fail "sizes"

(* ---- random mesh generator ---- *)

(* Random declarative meshes for the accuracy property: layered DAGs
   (edges only point to higher indices, so acyclicity is structural) with
   replicated tiers, concurrent fan-out groups, a cache with hit/miss
   branching, and optionally a load balancer and an async queue worker.
   Retry policies are left to the named presets: the QCheck property
   pins accuracy at exactly 1.0 for branching alone. *)
let random ?tiers ~seed () =
  let rng = Rng.create ~seed in
  let n = match tiers with Some n -> max 3 n | None -> 3 + Rng.int rng 4 in
  let name_of i = if i = 0 then "gw" else Printf.sprintf "t%d" i in
  let pick_target rng ~above =
    (* any tier strictly after [above] *)
    above + 1 + Rng.int rng (n - above - 1)
  in
  let cache_idx = if n >= 3 then 1 + Rng.int rng (n - 2) else n in
  let roles =
    Array.init n (fun i ->
        if i = 0 then Service
        else if i = cache_idx && i < n - 1 then
          Cache
            {
              hit_ratio = 0.4 +. (0.1 *. float_of_int (Rng.int rng 5));
              backing = name_of (pick_target rng ~above:i);
              backing_retry = None;
            }
        else if i < n - 1 && Rng.bernoulli rng ~p:0.2 then
          Load_balancer { backend = name_of (pick_target rng ~above:i) }
        else if i = n - 1 && Rng.bernoulli rng ~p:0.4 then Queue_worker
        else Service)
  in
  let calls_of i =
    match roles.(i) with
    | Cache _ | Load_balancer _ | Queue_worker -> []
    | Service when i = n - 1 -> []
    | Service ->
        let avail = n - 1 - i in
        let n_groups = if i = 0 then 1 + Rng.int rng 2 else Rng.int rng 2 in
        let n_groups = if i = 0 then max 1 n_groups else n_groups in
        List.init n_groups (fun g ->
            let fanout = 1 + Rng.int rng (min 3 avail) in
            let targets =
              List.sort_uniq compare
                (List.init fanout (fun _ -> pick_target rng ~above:i))
            in
            let mode =
              if List.length targets >= 2 && Rng.bernoulli rng ~p:0.7 then Concurrent
              else Sequential
            in
            ignore g;
            { targets = List.map name_of targets; mode; retry = None })
  in
  let tiers_list =
    List.init n (fun i ->
        {
          name = name_of i;
          role = roles.(i);
          replicas = 1 + Rng.int rng 3;
          cores = 1 + Rng.int rng 2;
          compute = Sim_time.us (100 + Rng.int rng 1500);
          skew = Sim_time.ms (Rng.int rng 80);
          calls = calls_of i;
          response_size = 128 + Rng.int rng 8192;
        })
  in
  (* Guarantee the property's stress patterns are actually present: the
     entry always has at least one concurrent two-target group when the
     DAG is wide enough. *)
  let tiers_list =
    match tiers_list with
    | entry :: rest when n >= 3 ->
        let has_concurrent =
          List.exists
            (fun g -> g.mode = Concurrent && List.length g.targets >= 2)
            entry.calls
        in
        let entry =
          if has_concurrent then entry
          else
            let a = 1 + Rng.int rng (n - 1) in
            let b = 1 + Rng.int rng (n - 1) in
            let targets = List.sort_uniq compare [ a; b ] in
            let targets = if List.length targets = 2 then targets else [ 1; 2 ] in
            {
              entry with
              calls =
                { targets = List.map name_of targets; mode = Concurrent; retry = None }
                :: entry.calls;
            }
        in
        entry :: rest
    | l -> l
  in
  let spec =
    {
      name = Printf.sprintf "random_mesh-%d" seed;
      entry = "gw";
      tiers = tiers_list;
      clients = 2 + Rng.int rng 4;
      requests_per_client = 2 + Rng.int rng 3;
      think_mean = Sim_time.ms 10;
      sync_start = false;
      keys = 100;
      request_size = 256 + Rng.int rng 1024;
      chunk = 1024 * (1 + Rng.int rng 8);
      faults = [];
      seed;
    }
  in
  validate spec;
  spec
