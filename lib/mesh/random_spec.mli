(** Random multi-tier call-tree topologies (promoted from the test
    suite): arbitrary synchronous-RPC call trees over K tiers with random
    sizes, chunking, skews and concurrent closed-loop clients, recorded
    against a {!Trace.Ground_truth} oracle. The unconstrained
    counterpart of the declarative {!Spec} DAGs — used by the accuracy
    property tests, the [random] scenario preset and the bench. *)

module Sim_time := Simnet.Sim_time

type call = {
  tier : int;
  request_size : int;
  compute_before : Sim_time.span;
  subcalls : call list;  (** Executed sequentially. *)
  compute_after : Sim_time.span;
  response_size : int;
}

type plan = { id : int; root : call }

type Simnet.Messaging.payload += Call_payload of { id : int; call : call }

type spec = {
  tiers : int;  (** >= 2: tier 0 is the entry. *)
  clients : int;
  requests_per_client : int;
  max_depth : int;
  max_fanout : int;
  max_skew : Sim_time.span;
  chunk : int;  (** Send chunk size: small values force n-to-n merging. *)
  seed : int;
}

val default_spec : spec

type built = {
  engine : Simnet.Engine.t;
  probe : Trace.Probe.t;
  gt : Trace.Ground_truth.t;
  entry : Simnet.Address.endpoint;
  hostnames : string list;
}

val build : spec -> built
(** Construct the topology and its load; run with [Simnet.Engine.run]. *)

val run_and_score :
  ?window:Sim_time.span ->
  spec ->
  Core.Correlator.result * Core.Accuracy.verdict * built
(** Run the topology, correlate (default 5 ms window), and score against
    the ground truth. *)
