module B = Binary_format

let magic = "PTBT"

type entry = {
  src_ip : int;
  src_port : int;
  dst_ip : int;
  dst_port : int;
  out_rows : int;
  out_bytes : int;
  in_rows : int;
  in_bytes : int;
}

type t = entry list

let empty : t = []

let flow_id e =
  Intern.flow_id_parts ~src_ip:e.src_ip ~src_port:e.src_port ~dst_ip:e.dst_ip
    ~dst_port:e.dst_port

let entry_of_flow_id id ~out_rows ~out_bytes ~in_rows ~in_bytes =
  let src_ip, src_port, dst_ip, dst_port = Intern.flow_parts_of_id id in
  { src_ip; src_port; dst_ip; dst_port; out_rows; out_bytes; in_rows; in_bytes }

let encode (t : t) =
  let buf = Buffer.create (32 + (16 * List.length t)) in
  Buffer.add_string buf magic;
  B.put_uvarint buf (List.length t);
  List.iter
    (fun e ->
      B.put_uvarint buf e.src_ip;
      B.put_uvarint buf e.src_port;
      B.put_uvarint buf e.dst_ip;
      B.put_uvarint buf e.dst_port;
      B.put_uvarint buf e.out_rows;
      B.put_uvarint buf e.out_bytes;
      B.put_uvarint buf e.in_rows;
      B.put_uvarint buf e.in_bytes)
    t;
  Buffer.contents buf

let decode data =
  let r = { B.data; pos = 0; limit = String.length data } in
  match
    String.iteri
      (fun i ch ->
        if r.B.pos >= r.B.limit || data.[r.B.pos] <> ch then
          raise (B.Corrupt (r.B.pos, Printf.sprintf "bad magic (expected %S)" magic))
        else r.B.pos <- i + 1)
      magic;
    let count = B.get_count r "boundary entries" in
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        let src_ip = B.get_uvarint r in
        let src_port = B.get_uvarint r in
        let dst_ip = B.get_uvarint r in
        let dst_port = B.get_uvarint r in
        let out_rows = B.get_uvarint r in
        let out_bytes = B.get_uvarint r in
        let in_rows = B.get_uvarint r in
        let in_bytes = B.get_uvarint r in
        go (n - 1)
          ({ src_ip; src_port; dst_ip; dst_port; out_rows; out_bytes; in_rows; in_bytes }
          :: acc)
    in
    let entries = go count [] in
    if r.B.pos <> r.B.limit then
      raise (B.Corrupt (r.B.pos, "trailing bytes after boundary table"));
    entries
  with
  | entries -> Ok entries
  | exception B.Corrupt (off, msg) -> Error (Printf.sprintf "offset %d: %s" off msg)
