(** A compact binary encoding of activity logs.

    Kernel tracing at syscall granularity produces bulky logs (the paper's
    runs log hundreds of thousands of records); the text format spends
    most of its bytes repeating hostnames, program names and near-constant
    timestamps. This encoding keeps collection practical:

    - a string table interns hostnames and program names once;
    - timestamps are delta-encoded per log (monotone, so deltas are
      small), everything integer is LEB128 varints;
    - a magic header ([PTB1]) and record framing catch truncation and
      corruption on load.

    Typical size: 4-6x smaller than the text format on service traces
    (see the [formats] bench). Both formats describe the same
    {!Activity.t}; conversion is lossless. *)

val magic : string
(** The 4-byte file header, ["PTB1"]. *)

(** {1 Codec primitives}

    Shared with the other PT binary formats (the bundle's path table):
    unsigned LEB128 varints, zigzag-encoded signed varints,
    length-prefixed strings, and a bounds-checked reader whose [Corrupt]
    errors carry offsets absolute within [data]. *)

exception Corrupt of int * string

type reader = { data : string; mutable pos : int; limit : int }

val put_uvarint : Buffer.t -> int -> unit
val put_varint : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit

val get_uvarint : reader -> int
val get_varint : reader -> int
val get_string : reader -> string

val get_count : reader -> string -> int
(** Read a count varint, raising [Corrupt] if it exceeds the remaining
    input (each counted item takes at least one byte) — the allocation-
    bomb guard for corrupt inputs. *)

val is_binary : string -> bool
(** Whether the bytes begin with {!magic}. *)

val is_binary_file : path:string -> bool
(** Whether the file at [path] starts with {!magic}; [false] on
    unreadable or shorter-than-header files. Lets loaders auto-detect
    binary vs text traces without trusting the filename. *)

val save : Log.collection -> path:string -> unit
(** Write the whole collection into one file. *)

val load : path:string -> (Log.collection, string) result
(** Read a file written by {!save}. Errors name the offending offset. *)

val encode : Log.collection -> string
(** The raw encoded bytes (exposed for tests and benches). Equivalent to
    [encode_native (Arena.of_collection c)] — the record-list API is a
    wrapper over the native path, byte-for-byte. *)

val decode : string -> (Log.collection, string) result

(** {1 Native path}

    The arena-backed codec the pipeline runs on: table entries are
    interned into the process-wide {!Intern} tables once per file, record
    rows decode straight into {!Arena}s with no per-record allocation.
    Same bytes, same corruption guarantees (never raises, [Corrupt]
    offsets absolute within [data]) as the record-list API above. *)

val encode_native : Arena.t list -> string

val decode_native : string -> (Arena.t list, string) result
(** Rows come back in file order (the order they were encoded), not
    re-sorted; {!Arena.to_log} restores [Log] order when needed. *)

val decode_native_region : string -> pos:int -> len:int -> (Arena.t list, string) result
(** {!decode_native} for a payload embedded at [pos] (spanning [len])
    inside a larger string; error offsets stay absolute within [data],
    exactly as {!decode_region}. *)

val decode_region : string -> pos:int -> len:int -> (Log.collection, string) result
(** Decode a PTB1 payload embedded at [pos] (spanning [len] bytes) inside
    a larger string — e.g. a segment inside a bundle container — without
    copying it out. Every error offset is absolute within [data], so when
    [data] is a whole container file the offsets are container-relative.
    [decode data] is [decode_region data ~pos:0 ~len:(String.length data)]
    modulo the friendlier whole-file magic message. *)
