(** A compact binary encoding of activity logs.

    Kernel tracing at syscall granularity produces bulky logs (the paper's
    runs log hundreds of thousands of records); the text format spends
    most of its bytes repeating hostnames, program names and near-constant
    timestamps. This encoding keeps collection practical:

    - a string table interns hostnames and program names once;
    - timestamps are delta-encoded per log (monotone, so deltas are
      small), everything integer is LEB128 varints;
    - a magic header ([PTB1]) and record framing catch truncation and
      corruption on load.

    Typical size: 4-6x smaller than the text format on service traces
    (see the [formats] bench). Both formats describe the same
    {!Activity.t}; conversion is lossless. *)

val magic : string
(** The 4-byte file header, ["PTB1"]. *)

val is_binary : string -> bool
(** Whether the bytes begin with {!magic}. *)

val is_binary_file : path:string -> bool
(** Whether the file at [path] starts with {!magic}; [false] on
    unreadable or shorter-than-header files. Lets loaders auto-detect
    binary vs text traces without trusting the filename. *)

val save : Log.collection -> path:string -> unit
(** Write the whole collection into one file. *)

val load : path:string -> (Log.collection, string) result
(** Read a file written by {!save}. Errors name the offending offset. *)

val encode : Log.collection -> string
(** The raw encoded bytes (exposed for tests and benches). *)

val decode : string -> (Log.collection, string) result
