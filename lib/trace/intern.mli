(** Process-wide intern tables for the binary-native hot path.

    The text-era pipeline paid a per-record price for every hostname,
    program name, context tuple and flow: fresh strings and records on
    decode, string hashing and comparison on every correlator step. These
    tables assign each distinct attribute a small dense {e id} once per
    process, so that

    - an {!Arena} row stores four ints and a byte, nothing boxed;
    - equality of contexts/flows on hot paths is integer equality;
    - materialising an {!Activity.t} reuses one canonical record per id
      (so [==] short-circuits structural comparison downstream).

    Ids are stable for the life of the process and never recycled; the
    tables only grow. All operations are domain-safe (one global mutex;
    inserts are rare after warm-up, lookups by id are a bounds check and
    an array read). Table sizes are exported as the [pt_intern_strings],
    [pt_intern_contexts] and [pt_intern_flows] gauges. *)

(** {1 Strings — hostnames and program names} *)

val string_id : string -> int
val string_of_id : int -> string
(** @raise Invalid_argument on an id never issued. *)

(** {1 Contexts} *)

val context_id : Activity.context -> int

val context_id_parts : host:int -> program:int -> pid:int -> tid:int -> int
(** [host]/[program] are {!string_id}s — the zero-string-allocation entry
    used by the native decoder.
    @raise Invalid_argument on string ids never issued. *)

val context_of_id : int -> Activity.context
(** The canonical record for this id: one shared allocation per distinct
    context, so two materialisations of the same id are [==]. *)

val context_parts_of_id : int -> int * int * int * int
(** [(host string id, program string id, pid, tid)]. *)

val compare_context_id : int -> int -> int
(** Consistent with {!Activity.compare_context} on the denoted contexts
    (equal ids compare equal without any lookup). *)

(** {1 Flows} *)

val flow_id : Simnet.Address.flow -> int

val flow_id_parts : src_ip:int -> src_port:int -> dst_ip:int -> dst_port:int -> int
(** ips as {!Simnet.Address.ip_to_int} values.
    @raise Invalid_argument outside the ip/port ranges. *)

val flow_of_id : int -> Simnet.Address.flow
(** Canonical shared record, as {!context_of_id}. *)

val flow_parts_of_id : int -> int * int * int * int
(** [(src ip, src port, dst ip, dst port)] as ints. *)

(** {1 Introspection} *)

val counts : unit -> int * int * int
(** [(strings, contexts, flows)] currently interned. *)
