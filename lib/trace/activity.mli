(** Interaction activities — the atoms the Correlator works on.

    An activity is one observed kernel-level interaction event. SEND and
    RECEIVE come straight from the probe points on [tcp_sendmsg] /
    [tcp_recvmsg]; BEGIN and END are produced by rewriting the entry-point
    SEND/RECEIVEs of the traced service (see {!Core.Transform}). Each
    activity carries the four attributes the paper logs: activity type,
    (local) timestamp, context identifier and message identifier. *)

type kind = Begin | End_ | Send | Receive

val kind_priority : kind -> int
(** The ranker's candidate priority: BEGIN < SEND < END < RECEIVE
    (lower fires first under Rule 2). *)

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val equal_kind : kind -> kind -> bool

val kind_to_code : kind -> int
(** The PTB1 wire code (also the {!Arena} kind column): BEGIN 0, SEND 1,
    END 2, RECEIVE 3. *)

val kind_of_code : int -> kind option

type context = { host : string; program : string; pid : int; tid : int }
(** The (hostname, program name, process ID, thread ID) tuple. *)

val equal_context : context -> context -> bool
val compare_context : context -> context -> int
val hash_context : context -> int
val pp_context : Format.formatter -> context -> unit

type message = { flow : Simnet.Address.flow; size : int }
(** The (sender ip:port, receiver ip:port, message size) tuple. The flow is
    always oriented in the direction of the bytes, for both SEND and
    RECEIVE activities. *)

val equal_message : message -> message -> bool
val pp_message : Format.formatter -> message -> unit

type t = {
  kind : kind;
  timestamp : Simnet.Sim_time.t;  (** Local clock of [context.host]. *)
  context : context;
  message : message;
}

val equal : t -> t -> bool

val compare_by_time : t -> t -> int
(** Order by timestamp, breaking ties by context then kind; a total order
    used to sort per-node logs. *)

val pp : Format.formatter -> t -> unit
