(** The unresolved-boundary table of an agent-side partial correlation.

    When an agent reduces a batch locally (see [Core.Partial]), every
    flow that crosses the host boundary stays unresolved: its peer's
    records live on another machine and only the collector tree can match
    them. The boundary table summarises those flows compactly — per flow,
    how many rows and payload bytes the host observed in each direction —
    so downstream tiers can account for in-flight interactions without
    reading the reduced payload.

    Encoding rides the PTB1 codec primitives ({!Binary_format} LEB128
    varints) and is position-independent: flows are shipped as their raw
    endpoint quadruple, not as process-local {!Intern} ids.

    {v
    magic   "PTBT" (4 bytes)
    count   uvarint
    entry*  src_ip src_port dst_ip dst_port   uvarint each
            out_rows out_bytes in_rows in_bytes  uvarint each
    v} *)

type entry = {
  src_ip : int;  (** {!Simnet.Address.ip_to_int} form. *)
  src_port : int;
  dst_ip : int;
  dst_port : int;
  out_rows : int;  (** SEND rows observed on the host for this flow. *)
  out_bytes : int;
  in_rows : int;  (** RECEIVE rows observed on the host for this flow. *)
  in_bytes : int;
}

type t = entry list

val magic : string
(** ["PTBT"]. *)

val empty : t

val flow_id : entry -> int
(** Re-intern the entry's flow on the receiving side
    ({!Intern.flow_id_parts}). *)

val entry_of_flow_id :
  int -> out_rows:int -> out_bytes:int -> in_rows:int -> in_bytes:int -> entry
(** Build an entry from a process-local interned flow id
    ({!Intern.flow_parts_of_id}). *)

val encode : t -> string

val decode : string -> (t, string) result
(** Errors name the offending offset, {!Binary_format} style. *)
