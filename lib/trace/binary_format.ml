let magic = "PTB1"

(* ---- varint primitives (unsigned LEB128; signed values zigzagged) ---- *)

(* An explicit raise, not [assert]: asserts compile out under --release,
   and a negative here (e.g. a size that went negative upstream) must
   never silently emit bytes the decoder cannot reject. *)
let put_uvarint buf n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Binary_format.put_uvarint: negative value %d" n);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))
let put_varint buf n = put_uvarint buf (zigzag n)

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

(* The native encoder's writer: a growable [Bytes.t] with an inlined
   LEB128 loop. [Buffer]'s per-char bounds checks and the closure-heavy
   recursion in {!put_uvarint} cost real time at millions of varints per
   second; emitting through [unsafe_set] after one up-front [ensure] per
   field halves the encode wall time. Byte output is identical. *)
type writer = { mutable bytes : Bytes.t; mutable wpos : int }

let w_create n = { bytes = Bytes.create (max 64 n); wpos = 0 }

let w_ensure w n =
  let cap = Bytes.length w.bytes in
  if w.wpos + n > cap then begin
    let grown = Bytes.create (max (w.wpos + n) (2 * cap)) in
    Bytes.blit w.bytes 0 grown 0 w.wpos;
    w.bytes <- grown
  end

let w_uvarint w n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Binary_format.put_uvarint: negative value %d" n);
  w_ensure w 10;
  let n = ref n in
  let b = w.bytes in
  let p = ref w.wpos in
  while !n >= 0x80 do
    Bytes.unsafe_set b !p (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    incr p;
    n := !n lsr 7
  done;
  Bytes.unsafe_set b !p (Char.unsafe_chr !n);
  w.wpos <- !p + 1

(* Raw varint store into pre-ensured space: the record loop reserves one
   row's worst case up front and skips the per-field capacity check. The
   caller guarantees [n >= 0] and room for 10 bytes at [pos]. *)
let unsafe_uv bytes pos n =
  let n = ref n and p = ref pos in
  while !n >= 0x80 do
    Bytes.unsafe_set bytes !p (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    incr p;
    n := !n lsr 7
  done;
  Bytes.unsafe_set bytes !p (Char.unsafe_chr !n);
  !p + 1

let w_string w s =
  let n = String.length s in
  w_uvarint w n;
  w_ensure w n;
  Bytes.blit_string s 0 w.bytes w.wpos n;
  w.wpos <- w.wpos + n

let w_raw w s =
  let n = String.length s in
  w_ensure w n;
  Bytes.blit_string s 0 w.bytes w.wpos n;
  w.wpos <- w.wpos + n

let w_contents w = Bytes.sub_string w.bytes 0 w.wpos

(* [limit] is one past the last readable byte: decoding an embedded
   payload (a segment inside a bundle container) sets [pos]/[limit] to the
   payload's region, and every offset in a [Corrupt] error stays absolute
   within [data] — i.e. container-relative with no copying. *)
type reader = { data : string; mutable pos : int; limit : int }

exception Corrupt of int * string

let byte r =
  if r.pos >= r.limit then raise (Corrupt (r.pos, "unexpected end of input"));
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_uvarint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt (r.pos, "varint too long"));
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_varint r = unzigzag (get_uvarint r)

(* Every table entry and record occupies at least one byte, so any count
   larger than the remaining input is corrupt. Checking up front keeps a
   byte-flipped varint from driving [Array.init]/[List.init] into an
   allocation bomb before the truncation would be noticed. *)
let get_count r what =
  let n = get_uvarint r in
  if n > r.limit - r.pos then
    raise (Corrupt (r.pos, Printf.sprintf "%s count %d exceeds remaining input" what n));
  n

let get_string r =
  let n = get_uvarint r in
  if r.pos + n > r.limit then raise (Corrupt (r.pos, "string overruns input"));
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* ---- encoding ---- *)

(* Contexts and flows repeat across most records (long-lived workers,
   persistent connections), so both are interned into per-file tables
   written once; each record then carries two small table indices. The
   per-file tables are built over process-wide {!Intern} ids here — a
   hash of two ints per distinct attribute, no string hashing — and the
   traversal order (per log: hostname; per record: context host, context
   program, context, flow) is exactly the order the record-list encoder
   always used, so the bytes are unchanged. *)
let encode_native arenas =
  let buf = w_create 65_536 in
  w_raw buf magic;
  (* Each table maps a process-wide id to its dense per-file index. Global
     ids are dense and every id in an arena was already issued, so a flat
     array indexed by global id replaces hashing — the encoder's only
     per-record table work is two array reads. The first-occurrence
     interning order (per log: hostname; per record: context host,
     context program, context, flow) is unchanged: a context's strings
     are first seen exactly when the context itself first misses. *)
  let n_strings, n_contexts, n_flows = Intern.counts () in
  let local_table size =
    let map = Array.make (max 1 size) (-1) in
    let rev = ref [] in
    let next = ref 0 in
    let intern id =
      let i = map.(id) in
      if i >= 0 then i
      else begin
        let i = !next in
        map.(id) <- i;
        rev := id :: !rev;
        incr next;
        i
      end
    in
    (next, rev, intern)
  in
  let n_strings_local, rev_strings, local_string = local_table n_strings in
  let n_contexts_local, rev_contexts, local_context0 = local_table n_contexts in
  let n_flows_local, rev_flows, local_flow = local_table n_flows in
  let local_context cid =
    let before = !n_contexts_local in
    let i = local_context0 cid in
    if !n_contexts_local > before then begin
      (* first occurrence: intern its strings in the legacy order *)
      let host, program, _, _ = Intern.context_parts_of_id cid in
      ignore (local_string host);
      ignore (local_string program)
    end;
    i
  in
  (* pre-intern so the tables can be written before the records *)
  List.iter
    (fun a ->
      ignore (local_string (Arena.host_sid a));
      Arena.iter_native a (fun ~kind:_ ~ts:_ ~ctx ~flow ~size:_ ->
          ignore (local_context ctx);
          ignore (local_flow flow)))
    arenas;
  w_uvarint buf !n_strings_local;
  List.iter (fun sid -> w_string buf (Intern.string_of_id sid)) (List.rev !rev_strings);
  w_uvarint buf !n_contexts_local;
  List.iter
    (fun cid ->
      let host, program, pid, tid = Intern.context_parts_of_id cid in
      w_uvarint buf (local_string host);
      w_uvarint buf (local_string program);
      w_uvarint buf pid;
      w_uvarint buf tid)
    (List.rev !rev_contexts);
  w_uvarint buf !n_flows_local;
  List.iter
    (fun fid ->
      let src_ip, src_port, dst_ip, dst_port = Intern.flow_parts_of_id fid in
      w_uvarint buf src_ip;
      w_uvarint buf src_port;
      w_uvarint buf dst_ip;
      w_uvarint buf dst_port)
    (List.rev !rev_flows);
  w_uvarint buf (List.length arenas);
  List.iter
    (fun a ->
      w_uvarint buf (local_string (Arena.host_sid a));
      w_uvarint buf (Arena.length a);
      let prev_ts = ref 0 in
      Arena.iter_native a (fun ~kind ~ts ~ctx ~flow ~size ->
          if size < 0 then
            invalid_arg (Printf.sprintf "Binary_format.put_uvarint: negative value %d" size);
          (* worst case per row: 1 + 10 + 5 + 5 + 5 varint bytes *)
          w_ensure buf 26;
          let b = buf.bytes in
          let p = unsafe_uv b buf.wpos kind in
          let p = unsafe_uv b p (zigzag (ts - !prev_ts)) in
          prev_ts := ts;
          let p = unsafe_uv b p (local_context ctx) in
          let p = unsafe_uv b p (local_flow flow) in
          buf.wpos <- unsafe_uv b p size))
    arenas;
  w_contents buf

let encode collection = encode_native (Arena.of_collection collection)

let has_magic_at data pos =
  String.length data - pos >= 4 && String.equal (String.sub data pos 4) magic

(* The zero-copy decode: table entries are interned into the process-wide
   {!Intern} tables once each, then every record row is five varint reads
   and an {!Arena.append} — no string, context or flow allocation per
   record. All the corruption guarantees of the record-list decoder carry
   over: [Corrupt] offsets are absolute within [data], counts are checked
   against the remaining input before any allocation, and nothing
   escapes as an exception. (A corrupt input may intern a few garbage
   table entries before the error is noticed; the pollution is bounded by
   the table sizes, which [get_count] bounds by the input length.) *)
let decode_native_region data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    Error (Printf.sprintf "corrupt at offset %d: region [%d, %d) exceeds input" pos pos (pos + len))
  else if len < 4 || not (has_magic_at data pos) then
    Error (Printf.sprintf "corrupt at offset %d: no PTB1 magic" pos)
  else begin
    let r = { data; pos = pos + 4; limit = pos + len } in
    try
      let string_count = get_count r "string table" in
      let strings = Array.init string_count (fun _ -> Intern.string_id (get_string r)) in
      let lookup_string i =
        if i < 0 || i >= string_count then raise (Corrupt (r.pos, "string index out of range"));
        strings.(i)
      in
      let context_count = get_count r "context table" in
      let contexts =
        Array.init context_count (fun _ ->
            let host = lookup_string (get_uvarint r) in
            let program = lookup_string (get_uvarint r) in
            let pid = get_uvarint r in
            let tid = get_uvarint r in
            Intern.context_id_parts ~host ~program ~pid ~tid)
      in
      let flow_count = get_count r "flow table" in
      let flows =
        Array.init flow_count (fun _ ->
            let src_ip = get_uvarint r in
            let src_port = get_uvarint r in
            let dst_ip = get_uvarint r in
            let dst_port = get_uvarint r in
            (* validates ip/port ranges, raising Invalid_argument like the
               Address constructors the record-list decoder called here *)
            Intern.flow_id_parts ~src_ip ~src_port ~dst_ip ~dst_port)
      in
      let log_count = get_count r "log" in
      let arenas =
        List.init log_count (fun _ ->
            let host = lookup_string (get_uvarint r) in
            let n = get_count r "record" in
            let a = Arena.create_sid ~capacity:(max 1 n) host in
            let prev_ts = ref 0 in
            for _ = 1 to n do
              let code = get_uvarint r in
              if code < 0 || code > 3 then
                raise (Corrupt (r.pos, Printf.sprintf "bad kind code %d" code));
              let ts = !prev_ts + get_varint r in
              prev_ts := ts;
              let ctx = get_uvarint r in
              if ctx < 0 || ctx >= context_count then
                raise (Corrupt (r.pos, "context index out of range"));
              let flow = get_uvarint r in
              if flow < 0 || flow >= flow_count then
                raise (Corrupt (r.pos, "flow index out of range"));
              let size = get_uvarint r in
              Arena.append a ~kind:code ~ts ~ctx:contexts.(ctx) ~flow:flows.(flow) ~size
            done;
            a)
      in
      if r.pos <> r.limit then Error (Printf.sprintf "trailing garbage at offset %d" r.pos)
      else Ok arenas
    with
    | Corrupt (pos, msg) -> Error (Printf.sprintf "corrupt at offset %d: %s" pos msg)
    | Invalid_argument msg -> Error (Printf.sprintf "corrupt at offset %d: %s" r.pos msg)
  end

let decode_native data =
  if not (has_magic_at data 0) then Error "not a PTB1 file"
  else decode_native_region data ~pos:0 ~len:(String.length data)

let decode_region data ~pos ~len =
  Result.map Arena.to_collection (decode_native_region data ~pos ~len)

let decode data =
  if not (has_magic_at data 0) then Error "not a PTB1 file"
  else decode_region data ~pos:0 ~len:(String.length data)

let save collection ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode collection))

let is_binary data =
  String.length data >= 4 && String.equal (String.sub data 0 4) magic

let is_binary_file ~path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic 4 with
          | head -> String.equal head magic
          | exception End_of_file -> false)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      decode data)
