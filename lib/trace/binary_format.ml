module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

let magic = "PTB1"

(* ---- varint primitives (unsigned LEB128; signed values zigzagged) ---- *)

let put_uvarint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))
let put_varint buf n = put_uvarint buf (zigzag n)

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

(* [limit] is one past the last readable byte: decoding an embedded
   payload (a segment inside a bundle container) sets [pos]/[limit] to the
   payload's region, and every offset in a [Corrupt] error stays absolute
   within [data] — i.e. container-relative with no copying. *)
type reader = { data : string; mutable pos : int; limit : int }

exception Corrupt of int * string

let byte r =
  if r.pos >= r.limit then raise (Corrupt (r.pos, "unexpected end of input"));
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_uvarint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt (r.pos, "varint too long"));
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_varint r = unzigzag (get_uvarint r)

(* Every table entry and record occupies at least one byte, so any count
   larger than the remaining input is corrupt. Checking up front keeps a
   byte-flipped varint from driving [Array.init]/[List.init] into an
   allocation bomb before the truncation would be noticed. *)
let get_count r what =
  let n = get_uvarint r in
  if n > r.limit - r.pos then
    raise (Corrupt (r.pos, Printf.sprintf "%s count %d exceeds remaining input" what n));
  n

let get_string r =
  let n = get_uvarint r in
  if r.pos + n > r.limit then raise (Corrupt (r.pos, "string overruns input"));
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* ---- encoding ---- *)

let kind_code = function
  | Activity.Begin -> 0
  | Activity.Send -> 1
  | Activity.End_ -> 2
  | Activity.Receive -> 3

let kind_of_code pos = function
  | 0 -> Activity.Begin
  | 1 -> Activity.Send
  | 2 -> Activity.End_
  | 3 -> Activity.Receive
  | c -> raise (Corrupt (pos, Printf.sprintf "bad kind code %d" c))

(* Contexts and flows repeat across most records (long-lived workers,
   persistent connections), so both are interned into tables written once;
   each record then carries two small table indices. *)
let encode collection =
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf magic;
  let strings = Hashtbl.create 32 in
  let rev_strings = ref [] in
  let intern_string s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length strings in
        Hashtbl.replace strings s i;
        rev_strings := s :: !rev_strings;
        i
  in
  let contexts = Hashtbl.create 64 in
  let rev_contexts = ref [] in
  let intern_context (c : Activity.context) =
    let key = (c.Activity.host, c.program, c.pid, c.tid) in
    match Hashtbl.find_opt contexts key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length contexts in
        Hashtbl.replace contexts key i;
        rev_contexts := c :: !rev_contexts;
        i
  in
  let flows = Address.Flow_table.create 64 in
  let rev_flows = ref [] in
  let intern_flow f =
    match Address.Flow_table.find_opt flows f with
    | Some i -> i
    | None ->
        let i = Address.Flow_table.length flows in
        Address.Flow_table.replace flows f i;
        rev_flows := f :: !rev_flows;
        i
  in
  (* pre-intern so the tables can be written before the records *)
  List.iter
    (fun log ->
      ignore (intern_string (Log.hostname log));
      Log.iter log (fun a ->
          ignore (intern_string a.Activity.context.host);
          ignore (intern_string a.Activity.context.program);
          ignore (intern_context a.Activity.context);
          ignore (intern_flow a.Activity.message.flow)))
    collection;
  put_uvarint buf (Hashtbl.length strings);
  List.iter (put_string buf) (List.rev !rev_strings);
  put_uvarint buf (Hashtbl.length contexts);
  List.iter
    (fun (c : Activity.context) ->
      put_uvarint buf (intern_string c.Activity.host);
      put_uvarint buf (intern_string c.program);
      put_uvarint buf c.pid;
      put_uvarint buf c.tid)
    (List.rev !rev_contexts);
  put_uvarint buf (Address.Flow_table.length flows);
  List.iter
    (fun (f : Address.flow) ->
      put_uvarint buf (Address.ip_to_int f.src.ip);
      put_uvarint buf f.src.port;
      put_uvarint buf (Address.ip_to_int f.dst.ip);
      put_uvarint buf f.dst.port)
    (List.rev !rev_flows);
  put_uvarint buf (List.length collection);
  List.iter
    (fun log ->
      put_uvarint buf (intern_string (Log.hostname log));
      put_uvarint buf (Log.length log);
      let prev_ts = ref 0 in
      Log.iter log (fun a ->
          put_uvarint buf (kind_code a.Activity.kind);
          let ts = Sim_time.to_ns a.timestamp in
          put_varint buf (ts - !prev_ts);
          prev_ts := ts;
          put_uvarint buf (intern_context a.context);
          put_uvarint buf (intern_flow a.message.flow);
          put_uvarint buf a.message.size))
    collection;
  Buffer.contents buf

let has_magic_at data pos =
  String.length data - pos >= 4 && String.equal (String.sub data pos 4) magic

let decode_region data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    Error (Printf.sprintf "corrupt at offset %d: region [%d, %d) exceeds input" pos pos (pos + len))
  else if len < 4 || not (has_magic_at data pos) then
    Error (Printf.sprintf "corrupt at offset %d: no PTB1 magic" pos)
  else begin
    let r = { data; pos = pos + 4; limit = pos + len } in
    try
      let string_count = get_count r "string table" in
      let strings = Array.init string_count (fun _ -> get_string r) in
      let lookup_string i =
        if i < 0 || i >= string_count then raise (Corrupt (r.pos, "string index out of range"));
        strings.(i)
      in
      let context_count = get_count r "context table" in
      let contexts =
        Array.init context_count (fun _ ->
            let host = lookup_string (get_uvarint r) in
            let program = lookup_string (get_uvarint r) in
            let pid = get_uvarint r in
            let tid = get_uvarint r in
            { Activity.host; program; pid; tid })
      in
      let lookup_context i =
        if i < 0 || i >= context_count then
          raise (Corrupt (r.pos, "context index out of range"));
        contexts.(i)
      in
      let flow_count = get_count r "flow table" in
      let flows =
        Array.init flow_count (fun _ ->
            let src_ip = Address.ip_of_int (get_uvarint r) in
            let src_port = get_uvarint r in
            let dst_ip = Address.ip_of_int (get_uvarint r) in
            let dst_port = get_uvarint r in
            Address.flow
              ~src:(Address.endpoint src_ip src_port)
              ~dst:(Address.endpoint dst_ip dst_port))
      in
      let lookup_flow i =
        if i < 0 || i >= flow_count then raise (Corrupt (r.pos, "flow index out of range"));
        flows.(i)
      in
      let log_count = get_count r "log" in
      let logs =
        List.init log_count (fun _ ->
            let hostname = lookup_string (get_uvarint r) in
            let n = get_count r "record" in
            let prev_ts = ref 0 in
            let items =
              List.init n (fun _ ->
                  let kind = kind_of_code r.pos (get_uvarint r) in
                  let ts = !prev_ts + get_varint r in
                  prev_ts := ts;
                  let context = lookup_context (get_uvarint r) in
                  let flow = lookup_flow (get_uvarint r) in
                  let size = get_uvarint r in
                  {
                    Activity.kind;
                    timestamp = Sim_time.of_ns ts;
                    context;
                    message = { flow; size };
                  })
            in
            Log.of_list ~hostname items)
      in
      if r.pos <> r.limit then Error (Printf.sprintf "trailing garbage at offset %d" r.pos)
      else Ok logs
    with
    | Corrupt (pos, msg) -> Error (Printf.sprintf "corrupt at offset %d: %s" pos msg)
    | Invalid_argument msg -> Error (Printf.sprintf "corrupt at offset %d: %s" r.pos msg)
  end

let decode data =
  if not (has_magic_at data 0) then Error "not a PTB1 file"
  else decode_region data ~pos:0 ~len:(String.length data)

let save collection ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode collection))

let is_binary data =
  String.length data >= 4 && String.equal (String.sub data 0 4) magic

let is_binary_file ~path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic 4 with
          | head -> String.equal head magic
          | exception End_of_file -> false)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      decode data)
