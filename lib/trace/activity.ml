module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

type kind = Begin | End_ | Send | Receive

let kind_priority = function Begin -> 0 | Send -> 1 | End_ -> 2 | Receive -> 3

let kind_to_string = function
  | Begin -> "BEGIN"
  | End_ -> "END"
  | Send -> "SEND"
  | Receive -> "RECEIVE"

let kind_of_string = function
  | "BEGIN" -> Some Begin
  | "END" -> Some End_
  | "SEND" -> Some Send
  | "RECEIVE" -> Some Receive
  | _ -> None

(* The wire codes of the PTB1 binary format and the arena's kind column
   share this one mapping so the two can never drift. *)
let kind_to_code = function Begin -> 0 | Send -> 1 | End_ -> 2 | Receive -> 3

let kind_of_code = function
  | 0 -> Some Begin
  | 1 -> Some Send
  | 2 -> Some End_
  | 3 -> Some Receive
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let equal_kind (a : kind) b = a = b

type context = { host : string; program : string; pid : int; tid : int }

(* Records materialised from {!Intern} are canonical (one allocation per
   distinct context), so the physical check settles most comparisons on
   the hot path before any string work. *)
let equal_context a b =
  a == b
  || String.equal a.host b.host
     && String.equal a.program b.program
     && a.pid = b.pid && a.tid = b.tid

let compare_context a b =
  match String.compare a.host b.host with
  | 0 -> (
      match String.compare a.program b.program with
      | 0 -> ( match Int.compare a.pid b.pid with 0 -> Int.compare a.tid b.tid | c -> c)
      | c -> c)
  | c -> c

let hash_context c = Hashtbl.hash (c.host, c.program, c.pid, c.tid)
let pp_context ppf c = Format.fprintf ppf "%s/%s[%d/%d]" c.host c.program c.pid c.tid

type message = { flow : Address.flow; size : int }

let equal_message a b = Address.flow_equal a.flow b.flow && a.size = b.size
let pp_message ppf m = Format.fprintf ppf "%a#%d" Address.pp_flow m.flow m.size

type t = {
  kind : kind;
  timestamp : Sim_time.t;
  context : context;
  message : message;
}

let equal a b =
  equal_kind a.kind b.kind
  && Sim_time.equal a.timestamp b.timestamp
  && equal_context a.context b.context
  && equal_message a.message b.message

let compare_by_time a b =
  match Sim_time.compare a.timestamp b.timestamp with
  | 0 -> (
      match compare_context a.context b.context with
      | 0 -> Int.compare (kind_priority a.kind) (kind_priority b.kind)
      | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "@[<h>%a %a %a %a@]" Sim_time.pp t.timestamp pp_kind t.kind pp_context
    t.context pp_message t.message
