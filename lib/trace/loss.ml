module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

(* Per-log drop so each host's losses are counted into
   pt_probe_activities_dropped_total{host=...}. The RNG draw order is the
   same as a whole-collection map (logs in list order, activities in
   timestamp order), so results are bit-identical to the pre-telemetry
   implementation for a given seed. *)
let drop_where ~pred collection =
  List.map
    (fun log ->
      let before = Log.length log in
      let mapped =
        match Log.map_activities (fun a -> if pred a then None else Some a) [ log ] with
        | [ l ] -> l
        | _ -> assert false
      in
      let dropped = before - Log.length mapped in
      if dropped > 0 then
        R.add
          (R.counter R.default ~help:"Activities dropped by loss injection"
             ~labels:[ ("host", Log.hostname log) ]
             "pt_probe_activities_dropped_total")
          dropped;
      mapped)
    collection

let drop ~rng ~p collection = drop_where ~pred:(fun _ -> Rng.bernoulli rng ~p) collection

let drop_kind ~rng ~p ~kind collection =
  drop_where
    ~pred:(fun a -> Activity.equal_kind a.Activity.kind kind && Rng.bernoulli rng ~p)
    collection

let silence ~host ~after collection =
  drop_where
    ~pred:(fun a ->
      String.equal a.Activity.context.host host && Sim_time.(a.Activity.timestamp > after))
    collection

let reorder_feed ~rng ~p ~max_delay collection =
  let delayed =
    List.concat_map
      (fun log ->
        List.map
          (fun (a : Activity.t) ->
            let delay =
              if Rng.bernoulli rng ~p then
                Rng.uniform_span rng ~lo:Sim_time.span_zero ~hi:max_delay
              else Sim_time.span_zero
            in
            (Sim_time.add a.timestamp delay, a))
          (Log.to_list log))
      collection
  in
  (* Stable on the arrival key, so undelayed records keep their per-host
     order and a delayed record regresses by at most [max_delay]. *)
  List.map snd
    (List.stable_sort (fun (k1, _) (k2, _) -> Sim_time.compare k1 k2) delayed)
