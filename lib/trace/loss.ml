module Rng = Simnet.Rng
module R = Telemetry.Registry

(* Per-log drop so each host's losses are counted into
   pt_probe_activities_dropped_total{host=...}. The RNG draw order is the
   same as a whole-collection map (logs in list order, activities in
   timestamp order), so results are bit-identical to the pre-telemetry
   implementation for a given seed. *)
let drop_where ~pred collection =
  List.map
    (fun log ->
      let before = Log.length log in
      let mapped =
        match Log.map_activities (fun a -> if pred a then None else Some a) [ log ] with
        | [ l ] -> l
        | _ -> assert false
      in
      let dropped = before - Log.length mapped in
      if dropped > 0 then
        R.add
          (R.counter R.default ~help:"Activities dropped by loss injection"
             ~labels:[ ("host", Log.hostname log) ]
             "pt_probe_activities_dropped_total")
          dropped;
      mapped)
    collection

let drop ~rng ~p collection = drop_where ~pred:(fun _ -> Rng.bernoulli rng ~p) collection

let drop_kind ~rng ~p ~kind collection =
  drop_where
    ~pred:(fun a -> Activity.equal_kind a.Activity.kind kind && Rng.bernoulli rng ~p)
    collection
