(** Activity loss injection.

    The paper notes (§5.2) that network congestion could lose logged
    activities, deforming CAGs, and argues deformed CAGs are
    distinguishable from normal ones by their relative frequency. This
    module drops activities to let experiments (ext-2 in DESIGN.md) test
    that hypothesis. *)

val drop : rng:Simnet.Rng.t -> p:float -> Log.collection -> Log.collection
(** Drop each activity independently with probability [p]. *)

val drop_kind : rng:Simnet.Rng.t -> p:float -> kind:Activity.kind -> Log.collection -> Log.collection
(** Drop only activities of [kind], e.g. only RECEIVEs. *)

val silence : host:string -> after:Simnet.Sim_time.t -> Log.collection -> Log.collection
(** Drop everything [host] logged after instant [after] — a probe crash or
    network partition. The straggler scenario: the host keeps serving (its
    peers' SENDs/RECEIVEs still reference it) but its own log goes dark,
    which stalls a fault-intolerant online correlator forever. *)

val reorder_feed :
  rng:Simnet.Rng.t ->
  p:float ->
  max_delay:Simnet.Sim_time.span ->
  Log.collection ->
  Activity.t list
(** Merge the collection into one observation feed in which each record is
    independently delayed with probability [p] by up to [max_delay]: the
    bounded out-of-order arrival an online collector sees over UDP or
    per-CPU ring buffers. Per-host timestamp regressions in the result are
    bounded by [max_delay]. *)
