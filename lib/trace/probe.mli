(** The TCP_TRACE instrumentation layer.

    Attaching a probe to a {!Simnet.Tcp} stack registers an observer on the
    [tcp_sendmsg]/[tcp_recvmsg] probe points of every node. While enabled,
    each syscall is logged as a SEND/RECEIVE activity timestamped with the
    node's *local* clock, and costs [overhead] of extra latency on that
    node — the mechanism behind the paper's enable/disable comparison
    (Figs. 12-13). Each node gets its own log, as in the real deployment
    where files are collected per machine. *)

type t

val attach :
  stack:Simnet.Tcp.stack ->
  ?overhead:Simnet.Sim_time.span ->
  ?only:string list ->
  unit ->
  t
(** [overhead] is the per-traced-syscall cost while enabled; default 20 us,
    in line with reported SystemTap probe costs of the paper's era.
    [only] restricts instrumentation to the named hosts — the paper
    deploys TCP_TRACE on the three server tiers but not on the client
    machines; syscalls on other nodes are neither logged nor slowed.
    Default: every node. The probe starts {e disabled}. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val add_listener : t -> (Activity.t -> unit) -> unit
(** Invoke the callback on every activity as it is logged (after the log
    append), in registration order — the hook for live consumers such as
    {!Core.Online}. Listeners see nothing while the probe is disabled. *)

val exempt_program : t -> string -> unit
(** Processes of the named program are neither logged nor slowed on any
    node — how a tracer excludes itself. The collection plane's shipping
    daemons ([Collect.Agent]) register here so their own send/recv
    syscalls do not feed back into the trace they are shipping. *)

val logs : t -> Log.collection
(** One log per node that performed at least one traced syscall. Stable
    order (by hostname). *)

val activity_count : t -> int
