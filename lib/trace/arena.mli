(** Flat, arena-backed activity storage — the pipeline's native
    representation.

    One arena holds the records of one origin host as a struct-of-arrays:
    a kind byte plus four unboxed int columns (timestamp, {!Intern}
    context id, {!Intern} flow id, message size). The decoder fills
    arenas without allocating per record, the store writer batches and
    merges them with integer blits, and the correlator materialises
    {!Activity.t} views only where the ranking logic still wants records
    — built from the canonical interned context/flow, so even that path
    allocates two blocks, not five, and downstream equality checks
    short-circuit on [==].

    Arenas double in capacity as they fill ([pt_arena_grows_total],
    [pt_arena_peak_rows]); rows are in whatever order they were appended
    until {!sort_by_time}. *)

type t

(** {1 Construction} *)

val create : ?capacity:int -> host:string -> unit -> t
val create_sid : ?capacity:int -> int -> t
(** [create_sid sid] with [sid] an {!Intern.string_id} of the hostname. *)

val append : t -> kind:int -> ts:int -> ctx:int -> flow:int -> size:int -> unit
(** Raw row append: [kind] is an {!Activity.kind_to_code} code, [ts] in
    ns, [ctx]/[flow] interned ids. The zero-allocation hot path. *)

val append_activity : t -> Activity.t -> unit
(** Interns the record's attributes and appends. *)

val append_row : t -> t -> int -> unit
(** [append_row dst src i] copies row [i] of [src] — five integer stores,
    valid across arenas because ids are process-wide. *)

val append_range : t -> t -> lo:int -> hi:int -> unit
(** [append_range dst src ~lo ~hi] copies rows [lo, hi) of [src] in one
    blit per column — the bulk form of {!append_row} for run-at-a-time
    merges. @raise Invalid_argument on an out-of-bounds range. *)

val clear : t -> unit
(** Forget all rows, keep capacity (writer buffer reuse). *)

val copy : t -> t

(** {1 Access} *)

val host_sid : t -> int
val hostname : t -> string
val length : t -> int
val capacity : t -> int

val kind_code : t -> int -> int
val kind : t -> int -> Activity.kind
val ts : t -> int -> int
val ctx_id : t -> int -> int
val flow_id : t -> int -> int
val size : t -> int -> int
(** All row accessors raise [Invalid_argument] out of bounds. *)

val get : t -> int -> Activity.t
(** Materialise row [i] with canonical (shared) context and flow
    records. *)

val iter : t -> (Activity.t -> unit) -> unit

(** Visit each row's raw fields in order without materialising records —
    the encoder's inner loop. *)
val iter_native :
  t -> (kind:int -> ts:int -> ctx:int -> flow:int -> size:int -> unit) -> unit
val iteri_rows : t -> (int -> unit) -> unit
val fold : t -> ('a -> Activity.t -> 'a) -> 'a -> 'a

(** {1 Order} *)

val compare_rows : t -> int -> int -> int
(** Mirrors {!Activity.compare_by_time} on rows (timestamp, context, kind
    priority), breaking full ties by row index — so sorting with it is
    stable. *)

val is_sorted : t -> bool
val sort_by_time : t -> unit
(** In-place stable sort into {!compare_rows} order. *)

val time_bounds : t -> (Simnet.Sim_time.t * Simnet.Sim_time.t) option
(** [(min, max)] timestamp over all rows; [None] when empty. *)

(** {1 Conversions} *)

val of_log : Log.t -> t
val to_log : t -> Log.t
(** [to_log] sorts (like [Log.of_list]) when rows are out of order and
    appends directly when already sorted. *)

val of_collection : Log.collection -> t list
val to_collection : t list -> Log.collection
val total : t list -> int
