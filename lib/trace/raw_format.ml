module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

let to_line (a : Activity.t) =
  let f = a.message.flow in
  Printf.sprintf "%d %s %s %d %d %s %s:%d-%s:%d %d"
    (Sim_time.to_ns a.timestamp)
    a.context.host a.context.program a.context.pid a.context.tid
    (Activity.kind_to_string a.kind)
    (Address.ip_to_string f.src.ip)
    f.src.port
    (Address.ip_to_string f.dst.ip)
    f.dst.port a.message.size

let pp_line ppf a = Format.pp_print_string ppf (to_line a)

let ( let* ) r f = Result.bind r f

(* Strict decimal, optionally '-'-signed — [int_of_string_opt] alone also
   accepts [0x1f]/[0o17]/[0b11] prefixes and [1_000] separators, none of
   which {!to_line} ever emits, so they must not parse back. *)
let is_strict_decimal s =
  let digits = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  String.length digits > 0 && String.for_all (fun c -> c >= '0' && c <= '9') digits

let parse_int field s =
  match if is_strict_decimal s then int_of_string_opt s else None with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s: %S" field s)

let parse_endpoint field s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad %s (no port): %S" field s)
  | Some i -> (
      let ip_str = String.sub s 0 i in
      let port_str = String.sub s (i + 1) (String.length s - i - 1) in
      let* port = parse_int (field ^ " port") port_str in
      let* port =
        if port >= 0 && port <= 65_535 then Ok port
        else Error (Printf.sprintf "bad %s port (out of range): %S" field port_str)
      in
      match Address.ip_of_string ip_str with
      | ip -> Ok (Address.endpoint ip port)
      | exception Invalid_argument msg -> Error msg)

let parse_flow s =
  (* The separator is the '-' between "ip:port" halves; ports and dotted
     quads never contain '-', so split on the single dash. *)
  match String.index_opt s '-' with
  | None -> Error (Printf.sprintf "bad flow (no '-'): %S" s)
  | Some i ->
      let* src = parse_endpoint "sender" (String.sub s 0 i) in
      let* dst = parse_endpoint "receiver" (String.sub s (i + 1) (String.length s - i - 1)) in
      Ok (Address.flow ~src ~dst)

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ ts; host; program; pid; tid; kind; flow; size ] ->
      let* ts = parse_int "timestamp" ts in
      let* pid = parse_int "pid" pid in
      let* tid = parse_int "tid" tid in
      let* kind =
        match Activity.kind_of_string kind with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "bad kind: %S" kind)
      in
      let* flow = parse_flow flow in
      let* size = parse_int "size" size in
      Ok
        {
          Activity.kind;
          timestamp = Sim_time.of_ns ts;
          context = { host; program; pid; tid };
          message = { flow; size };
        }
  | fields -> Error (Printf.sprintf "expected 8 fields, got %d" (List.length fields))
