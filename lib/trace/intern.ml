module Address = Simnet.Address
module R = Telemetry.Registry

(* One process-wide table per attribute domain. Ids are dense, stable for
   the life of the process and never recycled, so they can be stored in
   flat arrays ({!Arena}), hashed as ints, and compared with [==]. All
   mutation is serialised on a single mutex; dune's parallel query pool
   and the sharded correlator's worker domains intern concurrently. *)

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* A growable array. Slots are written before the id is handed out (both
   under [mu]), so [get] for any previously-issued id always finds the
   entry even if a concurrent insert is growing the table. *)
type 'a vec = { mutable arr : 'a array; mutable len : int }

let vec_make dummy n = { arr = Array.make n dummy; len = 0 }

let vec_push v x =
  if v.len = Array.length v.arr then begin
    let bigger = Array.make (2 * Array.length v.arr) v.arr.(0) in
    Array.blit v.arr 0 bigger 0 v.len;
    v.arr <- bigger
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

(* ---- strings (hostnames and program names) ---- *)

let string_tbl : (string, int) Hashtbl.t = Hashtbl.create 256
let string_rev : string vec = vec_make "" 256

(* ---- contexts ---- *)

(* parts are (host string id, program string id, pid, tid); [ctx_rev]
   additionally keeps one canonical {!Activity.context} record per id so
   materialising a record allocates nothing and [==] works as a context
   fast path. *)
let ctx_tbl : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 256

let dummy_ctx = { Activity.host = ""; program = ""; pid = 0; tid = 0 }
let ctx_rev : ((int * int * int * int) * Activity.context) vec =
  vec_make ((0, 0, 0, 0), dummy_ctx) 256

(* ---- flows ---- *)

(* keyed by the two endpoints packed as [ip lsl 16 lor port] (48 bits
   each, so the pair hashes and compares as two immediate ints). *)
let flow_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256

let dummy_flow =
  Address.flow
    ~src:(Address.endpoint (Address.ip_of_int 0) 0)
    ~dst:(Address.endpoint (Address.ip_of_int 0) 0)

let flow_rev : ((int * int * int * int) * Address.flow) vec =
  vec_make ((0, 0, 0, 0), dummy_flow) 256

(* ---- telemetry (registered lazily; inserts are rare) ---- *)

let strings_gauge =
  lazy (R.gauge R.default ~help:"Interned strings in the process-wide table" "pt_intern_strings")

let contexts_gauge =
  lazy (R.gauge R.default ~help:"Interned contexts in the process-wide table" "pt_intern_contexts")

let flows_gauge =
  lazy (R.gauge R.default ~help:"Interned flows in the process-wide table" "pt_intern_flows")

(* ---- strings ---- *)

(* [*_u] variants assume [mu] is held: the hot entry points take the lock
   once for a whole multi-table operation. *)
let string_id_u s =
  match Hashtbl.find_opt string_tbl s with
  | Some i -> i
  | None ->
      let i = string_rev.len in
      vec_push string_rev s;
      Hashtbl.replace string_tbl s i;
      R.set (Lazy.force strings_gauge) (float_of_int (i + 1));
      i

let string_id s = locked (fun () -> string_id_u s)

let string_of_id i =
  locked (fun () ->
      if i < 0 || i >= string_rev.len then invalid_arg "Intern.string_of_id: unknown id";
      string_rev.arr.(i))

(* ---- contexts ---- *)

let context_id_parts_u ~host ~program ~pid ~tid =
  if host < 0 || host >= string_rev.len then invalid_arg "Intern.context_id_parts: bad host id";
  if program < 0 || program >= string_rev.len then
    invalid_arg "Intern.context_id_parts: bad program id";
  let key = (host, program, pid, tid) in
  match Hashtbl.find_opt ctx_tbl key with
  | Some i -> i
  | None ->
      let i = ctx_rev.len in
      let canonical =
        { Activity.host = string_rev.arr.(host); program = string_rev.arr.(program); pid; tid }
      in
      vec_push ctx_rev (key, canonical);
      Hashtbl.replace ctx_tbl key i;
      R.set (Lazy.force contexts_gauge) (float_of_int (i + 1));
      i

let context_id_parts ~host ~program ~pid ~tid =
  locked (fun () -> context_id_parts_u ~host ~program ~pid ~tid)

let context_id (c : Activity.context) =
  locked (fun () ->
      let host = string_id_u c.host in
      let program = string_id_u c.program in
      context_id_parts_u ~host ~program ~pid:c.pid ~tid:c.tid)

let ctx_entry i =
  locked (fun () ->
      if i < 0 || i >= ctx_rev.len then invalid_arg "Intern.context_of_id: unknown id";
      ctx_rev.arr.(i))

let context_of_id i = snd (ctx_entry i)
let context_parts_of_id i = fst (ctx_entry i)

let compare_context_id a b =
  if a = b then 0 else Activity.compare_context (context_of_id a) (context_of_id b)

(* ---- flows ---- *)

let pack_endpoint ip port = (ip lsl 16) lor (port land 0xffff)

let flow_id_parts ~src_ip ~src_port ~dst_ip ~dst_port =
  let src_ip_v = Address.ip_of_int src_ip and dst_ip_v = Address.ip_of_int dst_ip in
  if src_port < 0 || src_port > 0xffff then invalid_arg "Intern.flow_id_parts: bad src port";
  if dst_port < 0 || dst_port > 0xffff then invalid_arg "Intern.flow_id_parts: bad dst port";
  locked (fun () ->
      let key = (pack_endpoint src_ip src_port, pack_endpoint dst_ip dst_port) in
      match Hashtbl.find_opt flow_tbl key with
      | Some i -> i
      | None ->
          let i = flow_rev.len in
          let canonical =
            Address.flow
              ~src:(Address.endpoint src_ip_v src_port)
              ~dst:(Address.endpoint dst_ip_v dst_port)
          in
          vec_push flow_rev ((src_ip, src_port, dst_ip, dst_port), canonical);
          Hashtbl.replace flow_tbl key i;
          R.set (Lazy.force flows_gauge) (float_of_int (i + 1));
          i)

let flow_id (f : Address.flow) =
  flow_id_parts ~src_ip:(Address.ip_to_int f.src.ip) ~src_port:f.src.port
    ~dst_ip:(Address.ip_to_int f.dst.ip) ~dst_port:f.dst.port

let flow_entry i =
  locked (fun () ->
      if i < 0 || i >= flow_rev.len then invalid_arg "Intern.flow_of_id: unknown id";
      flow_rev.arr.(i))

let flow_of_id i = snd (flow_entry i)
let flow_parts_of_id i = fst (flow_entry i)

let counts () = locked (fun () -> (string_rev.len, ctx_rev.len, flow_rev.len))
