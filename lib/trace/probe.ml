module Tcp = Simnet.Tcp
module Node = Simnet.Node
module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

type t = {
  mutable enabled : bool;
  overhead : Sim_time.span;
  only : string list option;
  mutable exempt : string list;  (* programs never logged nor slowed *)
  node_logs : (string, Log.t) Hashtbl.t;
  mutable count : int;
  mutable listeners : (Activity.t -> unit) list;  (* registration order *)
  emitted : (string, R.counter) Hashtbl.t;
      (* per-host handles for pt_probe_activities_total, cached so the
         per-syscall cost is one hash lookup and an increment *)
}

let emitted_counter t hostname =
  match Hashtbl.find_opt t.emitted hostname with
  | Some c -> c
  | None ->
      let c =
        R.counter R.default ~help:"Activities logged by the TCP_TRACE probe"
          ~labels:[ ("host", hostname) ]
          "pt_probe_activities_total"
      in
      Hashtbl.replace t.emitted hostname c;
      c

let traced t node =
  match t.only with
  | None -> true
  | Some hosts -> List.exists (String.equal (Node.hostname node)) hosts

let log_for t node =
  let hostname = Node.hostname node in
  match Hashtbl.find_opt t.node_logs hostname with
  | Some log -> log
  | None ->
      let log = Log.create ~hostname in
      Hashtbl.replace t.node_logs hostname log;
      log

let exempted t program = List.exists (String.equal program) t.exempt

let on_syscall t (sc : Tcp.syscall) =
  if t.enabled && traced t sc.node && not (exempted t sc.proc.Simnet.Proc.program) then begin
    let kind =
      match sc.kind with Tcp.Syscall_send -> Activity.Send | Tcp.Syscall_recv -> Activity.Receive
    in
    let activity =
      {
        Activity.kind;
        timestamp = Node.local_time sc.node;
        context =
          {
            host = Node.hostname sc.node;
            program = sc.proc.Simnet.Proc.program;
            pid = sc.proc.pid;
            tid = sc.proc.tid;
          };
        message = { flow = sc.flow; size = sc.size };
      }
    in
    Log.append (log_for t sc.node) activity;
    t.count <- t.count + 1;
    R.incr (emitted_counter t activity.Activity.context.host);
    List.iter (fun f -> f activity) t.listeners
  end

let attach ~stack ?(overhead = Sim_time.us 20) ?only () =
  let t =
    {
      enabled = false;
      overhead;
      only;
      exempt = [];
      node_logs = Hashtbl.create 16;
      count = 0;
      listeners = [];
      emitted = Hashtbl.create 16;
    }
  in
  Tcp.add_observer stack (on_syscall t);
  Tcp.set_syscall_overhead stack (fun node proc ->
      if t.enabled && traced t node && not (exempted t proc.Simnet.Proc.program) then
        t.overhead
      else Sim_time.span_zero);
  t

let add_listener t f = t.listeners <- t.listeners @ [ f ]

let exempt_program t program =
  if not (exempted t program) then t.exempt <- program :: t.exempt
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let logs t =
  Hashtbl.fold (fun _ log acc -> log :: acc) t.node_logs []
  |> List.sort (fun a b -> String.compare (Log.hostname a) (Log.hostname b))

let activity_count t = t.count
