module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

(* Struct-of-arrays: one byte + four ints per record, all attribute ids
   from the process-wide {!Intern} tables. Copying rows between arenas
   (writer batching, query merging, k-way ingest merges) is plain integer
   blits — no re-interning, no allocation per record. *)
type t = {
  host : int;  (* Intern string id of the origin hostname *)
  mutable kinds : Bytes.t;  (* Activity.kind_to_code *)
  mutable ts : int array;  (* ns, local clock of [host] *)
  mutable ctx : int array;  (* Intern context ids *)
  mutable flow : int array;  (* Intern flow ids *)
  mutable size : int array;  (* message sizes in bytes *)
  mutable len : int;
}

let grows_counter =
  lazy (R.counter R.default ~help:"Arena capacity growths (doublings)" "pt_arena_grows_total")

let peak_rows_gauge =
  lazy (R.gauge R.default ~help:"Largest arena capacity allocated, in rows" "pt_arena_peak_rows")

let create_sid ?(capacity = 64) host =
  let capacity = max 1 capacity in
  {
    host;
    kinds = Bytes.create capacity;
    ts = Array.make capacity 0;
    ctx = Array.make capacity 0;
    flow = Array.make capacity 0;
    size = Array.make capacity 0;
    len = 0;
  }

let create ?capacity ~host () = create_sid ?capacity (Intern.string_id host)
let host_sid t = t.host
let hostname t = Intern.string_of_id t.host
let length t = t.len
let clear t = t.len <- 0
let capacity t = Array.length t.ts

let grow t =
  let cap = 2 * Array.length t.ts in
  let kinds = Bytes.create cap in
  Bytes.blit t.kinds 0 kinds 0 t.len;
  t.kinds <- kinds;
  let widen a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 t.len;
    b
  in
  t.ts <- widen t.ts;
  t.ctx <- widen t.ctx;
  t.flow <- widen t.flow;
  t.size <- widen t.size;
  R.incr (Lazy.force grows_counter);
  R.set_max (Lazy.force peak_rows_gauge) (float_of_int cap)

let append t ~kind ~ts ~ctx ~flow ~size =
  if t.len = Array.length t.ts then grow t;
  let i = t.len in
  Bytes.unsafe_set t.kinds i (Char.unsafe_chr kind);
  t.ts.(i) <- ts;
  t.ctx.(i) <- ctx;
  t.flow.(i) <- flow;
  t.size.(i) <- size;
  t.len <- i + 1

let append_activity t (a : Activity.t) =
  append t ~kind:(Activity.kind_to_code a.kind)
    ~ts:(Sim_time.to_ns a.timestamp)
    ~ctx:(Intern.context_id a.context)
    ~flow:(Intern.flow_id a.message.flow)
    ~size:a.message.size

let check t i = if i < 0 || i >= t.len then invalid_arg "Arena: row index out of bounds"

let kind_code t i =
  check t i;
  Char.code (Bytes.unsafe_get t.kinds i)

let kind t i =
  match Activity.kind_of_code (kind_code t i) with
  | Some k -> k
  | None -> assert false (* append only admits valid codes *)

let ts t i =
  check t i;
  t.ts.(i)

let ctx_id t i =
  check t i;
  t.ctx.(i)

let flow_id t i =
  check t i;
  t.flow.(i)

let size t i =
  check t i;
  t.size.(i)

(* Materialise one row. The context and flow records are the canonical
   interned ones — shared, so repeated rows cost two fresh blocks
   (the activity and its message), not five. *)
let get t i =
  check t i;
  {
    Activity.kind =
      (match Activity.kind_of_code (Char.code (Bytes.unsafe_get t.kinds i)) with
      | Some k -> k
      | None -> assert false);
    timestamp = Sim_time.of_ns t.ts.(i);
    context = Intern.context_of_id t.ctx.(i);
    message = { flow = Intern.flow_of_id t.flow.(i); size = t.size.(i) };
  }

let append_row dst src i =
  check src i;
  append dst
    ~kind:(Char.code (Bytes.unsafe_get src.kinds i))
    ~ts:src.ts.(i) ~ctx:src.ctx.(i) ~flow:src.flow.(i) ~size:src.size.(i)

(* Bulk row copy: the writer's ingest merge advances in whole runs, and a
   run is four [Array.blit]s and a [Bytes.blit] instead of per-row
   appends. *)
let append_range dst src ~lo ~hi =
  if lo < 0 || hi > src.len || lo > hi then invalid_arg "Arena.append_range";
  let n = hi - lo in
  if n > 0 then begin
    while dst.len + n > Array.length dst.ts do
      grow dst
    done;
    Bytes.blit src.kinds lo dst.kinds dst.len n;
    Array.blit src.ts lo dst.ts dst.len n;
    Array.blit src.ctx lo dst.ctx dst.len n;
    Array.blit src.flow lo dst.flow dst.len n;
    Array.blit src.size lo dst.size dst.len n;
    dst.len <- dst.len + n
  end

(* Row iteration without materialisation or per-field bounds checks: one
   closure call per row instead of five checked accessor calls — the
   encoder's inner loop. *)
let iter_native t f =
  for i = 0 to t.len - 1 do
    f
      ~kind:(Char.code (Bytes.unsafe_get t.kinds i))
      ~ts:(Array.unsafe_get t.ts i) ~ctx:(Array.unsafe_get t.ctx i)
      ~flow:(Array.unsafe_get t.flow i)
      ~size:(Array.unsafe_get t.size i)
  done

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let iteri_rows t f =
  for i = 0 to t.len - 1 do
    f i
  done

let fold t f acc =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

(* Row order mirroring {!Activity.compare_by_time}: timestamp, then
   context (via the canonical records, so exactly compare_context), then
   kind priority. [compare_rows] breaks remaining ties by row index so a
   permutation sort is stable, like the List.stable_sort the text path
   used. *)
let kind_priority_of_code = function 0 -> 0 | 1 -> 1 | 2 -> 2 | _ -> 3

let compare_rows t i j =
  match Int.compare t.ts.(i) t.ts.(j) with
  | 0 -> (
      match Intern.compare_context_id t.ctx.(i) t.ctx.(j) with
      | 0 -> (
          match
            Int.compare
              (kind_priority_of_code (Char.code (Bytes.unsafe_get t.kinds i)))
              (kind_priority_of_code (Char.code (Bytes.unsafe_get t.kinds j)))
          with
          | 0 -> Int.compare i j
          | c -> c)
      | c -> c)
  | c -> c

let is_sorted t =
  let ok = ref true in
  for i = 1 to t.len - 1 do
    if compare_rows t (i - 1) i > 0 then ok := false
  done;
  !ok

let sort_by_time t =
  if not (is_sorted t) then begin
    let perm = Array.init t.len Fun.id in
    Array.sort (fun i j -> compare_rows t i j) perm;
    let permute_int a =
      let b = Array.make (Array.length a) 0 in
      for i = 0 to t.len - 1 do
        b.(i) <- a.(perm.(i))
      done;
      Array.blit b 0 a 0 t.len
    in
    let kinds = Bytes.create (Bytes.length t.kinds) in
    for i = 0 to t.len - 1 do
      Bytes.unsafe_set kinds i (Bytes.unsafe_get t.kinds perm.(i))
    done;
    Bytes.blit kinds 0 t.kinds 0 t.len;
    permute_int t.ts;
    permute_int t.ctx;
    permute_int t.flow;
    permute_int t.size
  end

let time_bounds t =
  if t.len = 0 then None
  else begin
    let lo = ref t.ts.(0) and hi = ref t.ts.(0) in
    for i = 1 to t.len - 1 do
      if t.ts.(i) < !lo then lo := t.ts.(i);
      if t.ts.(i) > !hi then hi := t.ts.(i)
    done;
    Some (Sim_time.of_ns !lo, Sim_time.of_ns !hi)
  end

(* ---- conversions to and from the record-list world ---- *)

let of_log log =
  let t = create ~capacity:(max 1 (Log.length log)) ~host:(Log.hostname log) () in
  Log.iter log (append_activity t);
  t

let to_log t =
  if is_sorted t then begin
    (* already in Log order: append directly instead of re-sorting *)
    let log = Log.create ~hostname:(hostname t) in
    for i = 0 to t.len - 1 do
      Log.append log (get t i)
    done;
    log
  end
  else Log.of_list ~hostname:(hostname t) (List.rev (fold t (fun acc a -> a :: acc) []))

let of_collection c = List.map of_log c
let to_collection ts = List.map to_log ts
let total ts = List.fold_left (fun acc t -> acc + t.len) 0 ts

let copy t =
  let c = create_sid ~capacity:(max 1 t.len) t.host in
  Bytes.blit t.kinds 0 c.kinds 0 t.len;
  Array.blit t.ts 0 c.ts 0 t.len;
  Array.blit t.ctx 0 c.ctx 0 t.len;
  Array.blit t.flow 0 c.flow 0 t.len;
  Array.blit t.size 0 c.size 0 t.len;
  c.len <- t.len;
  c
