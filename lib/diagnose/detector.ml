module Cag = Core.Cag
module Pattern = Core.Pattern
module Latency = Core.Latency
module Analysis = Core.Analysis
module Json = Core.Json
module Sim_time = Simnet.Sim_time
module Registry = Telemetry.Registry

type kind =
  | Share_drift
  | Pattern_new
  | Pattern_vanished
  | Pattern_shift
  | Latency_shift
  | Throughput_drop
  | Throughput_surge

let kind_to_string = function
  | Share_drift -> "share_drift"
  | Pattern_new -> "pattern_new"
  | Pattern_vanished -> "pattern_vanished"
  | Pattern_shift -> "pattern_shift"
  | Latency_shift -> "latency_shift"
  | Throughput_drop -> "throughput_drop"
  | Throughput_surge -> "throughput_surge"

type verdict = {
  at : Sim_time.t;
  kind : kind;
  pattern : string option;
  culprit : Analysis.subject option;
  baseline_value : float;
  observed_value : float;
  reason : string;
  paths_seen : int;
}

let pp_verdict ppf v =
  Format.fprintf ppf "[%8.3fs] %-16s %s" (Sim_time.to_float_s v.at)
    (kind_to_string v.kind) v.reason

let verdict_to_json v =
  Json.Obj
    [
      ("at_s", Json.Float (Sim_time.to_float_s v.at));
      ("kind", Json.String (kind_to_string v.kind));
      ( "pattern",
        match v.pattern with Some p -> Json.String p | None -> Json.Null );
      ( "culprit",
        match v.culprit with
        | Some s -> Json.String (Analysis.subject_label s)
        | None -> Json.Null );
      ("baseline_value", Json.Float v.baseline_value);
      ("observed_value", Json.Float v.observed_value);
      ("reason", Json.String v.reason);
      ("paths_seen", Json.Int v.paths_seen);
    ]

type config = {
  warmup_paths : int;
  freeze_after : Sim_time.t option;
  window : int;
  min_window : int;
  share_threshold : float;
  rearm_factor : float;
  mix_window : int;
  mix_tolerance : float;
  mix_min_frequency : float;
  latency_factor : float;
  throughput_window_s : float;
  throughput_factor : float;
  detect_surge : bool;
}

let default_config =
  {
    warmup_paths = 400;
    freeze_after = None;
    window = 80;
    min_window = 40;
    share_threshold = 0.10;
    rearm_factor = 0.5;
    mix_window = 200;
    mix_tolerance = 0.15;
    mix_min_frequency = 0.05;
    latency_factor = 2.5;
    throughput_window_s = 5.0;
    throughput_factor = 3.0;
    detect_surge = false;
  }

(* Per-pattern sliding state: latency-share observations plus the
   hysteresis flags for each §5.4 subject this pattern has implicated. *)
type pstate = {
  p_components : Latency.component list;
  p_arity : int;
  p_shares : float array Queue.t;
  p_durations : float Queue.t;
  p_share_armed : (string, bool ref) Hashtbl.t;
  mutable p_latency_armed : bool;
}

type mix_flags = {
  mutable m_new_armed : bool;
  mutable m_vanish_armed : bool;
  mutable m_shift_armed : bool;
}

type t = {
  config : config;
  telemetry : Registry.t;
  now : (unit -> Sim_time.t) option;
  learner : Baseline.builder;
  mutable bl : Baseline.t option;
  mutable frozen_at_s : float;
  patterns : (string, pstate) Hashtbl.t;
  mix_ring : string Queue.t;
  names : (string, string) Hashtbl.t;
  mix_flags : (string, mix_flags) Hashtbl.t;
  tp_times : float Queue.t;
  mutable drop_armed : bool;
  mutable surge_armed : bool;
  mutable verdicts_rev : verdict list;
  mutable n_paths : int;
  c_paths : Registry.counter;
  c_windows : Registry.counter;
  g_baseline_patterns : Registry.gauge;
}

let create ?(config = default_config) ?baseline ?now
    ?(telemetry = Registry.default) () =
  let t =
    {
      config;
      telemetry;
      now;
      learner = Baseline.builder ~capacity:config.warmup_paths ();
      bl = None;
      frozen_at_s = neg_infinity;
      patterns = Hashtbl.create 8;
      mix_ring = Queue.create ();
      names = Hashtbl.create 8;
      mix_flags = Hashtbl.create 8;
      tp_times = Queue.create ();
      drop_armed = true;
      surge_armed = true;
      verdicts_rev = [];
      n_paths = 0;
      c_paths =
        Registry.counter telemetry
          ~help:"Finished paths consumed by the streaming detector"
          "pt_diagnose_paths_total";
      c_windows =
        Registry.counter telemetry
          ~help:"Full per-pattern windows judged against the baseline"
          "pt_diagnose_windows_total";
      g_baseline_patterns =
        Registry.gauge telemetry
          ~help:"Patterns in the baseline the detector is armed with"
          "pt_diagnose_baseline_patterns";
    }
  in
  (match baseline with
  | Some bl ->
      t.bl <- Some bl;
      Registry.set t.g_baseline_patterns
        (float_of_int (List.length bl.Baseline.patterns))
  | None -> ());
  t

let warmed t = Option.is_some t.bl
let baseline t = t.bl
let verdicts t = List.rev t.verdicts_rev
let paths_seen t = t.n_paths

let fire t ~at ~kind ?pattern ?culprit ~baseline_value ~observed_value reason =
  let v =
    {
      at;
      kind;
      pattern;
      culprit;
      baseline_value;
      observed_value;
      reason;
      paths_seen = t.n_paths;
    }
  in
  t.verdicts_rev <- v :: t.verdicts_rev;
  let comp =
    match culprit with Some s -> Analysis.subject_label s | None -> "none"
  in
  Registry.incr
    (Registry.counter t.telemetry
       ~help:"Detector verdicts fired, by kind, culprit and pattern"
       ~labels:
         [
           ("comp", comp);
           ("kind", kind_to_string kind);
           ("pattern", Option.value pattern ~default:"all");
         ]
       "pt_diagnose_alerts_total");
  v

let queue_mean q =
  let n = Queue.length q in
  if n = 0 then 0.0
  else Queue.fold (fun acc v -> acc +. v) 0.0 q /. float_of_int n

let ring_push q cap v =
  Queue.push v q;
  if Queue.length q > cap then ignore (Queue.pop q)

(* ---- warmup ---- *)

let freeze_now t at =
  let bl = Baseline.freeze t.learner in
  t.bl <- Some bl;
  t.frozen_at_s <- Sim_time.to_float_s at;
  Registry.set t.g_baseline_patterns
    (float_of_int (List.length bl.Baseline.patterns))

let learn_path t at cag =
  Baseline.learn t.learner cag;
  match t.config.freeze_after with
  | None ->
      if Baseline.seen t.learner >= t.config.warmup_paths then freeze_now t at
  | Some ft ->
      if
        Sim_time.compare at ft >= 0
        && Baseline.seen t.learner >= t.config.min_window
      then freeze_now t at

(* ---- judged stream ---- *)

let pstate_for t ~signature ~components =
  match Hashtbl.find_opt t.patterns signature with
  | Some ps -> ps
  | None ->
      let ps =
        {
          p_components = components;
          p_arity = List.length components;
          p_shares = Queue.create ();
          p_durations = Queue.create ();
          p_share_armed = Hashtbl.create 8;
          p_latency_armed = true;
        }
      in
      Hashtbl.replace t.patterns signature ps;
      ps

let mix_flags_for t signature =
  match Hashtbl.find_opt t.mix_flags signature with
  | Some f -> f
  | None ->
      let f = { m_new_armed = true; m_vanish_armed = true; m_shift_armed = true } in
      Hashtbl.replace t.mix_flags signature f;
      f

let window_profile ps =
  let acc = Array.make ps.p_arity 0.0 in
  Queue.iter (fun shares -> Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) shares)
    ps.p_shares;
  let n = float_of_int (Queue.length ps.p_shares) in
  List.mapi (fun i c -> (c, acc.(i) /. n)) ps.p_components

(* Share drift: compare the pattern's window-mean profile against its
   baseline profile and let the §5.4 rules name the culprit. Each subject
   fires once per excursion, re-arming when its severity recedes below
   [share_threshold * rearm_factor]. Returns the fired verdicts plus the
   top live suspect (for latency-shift attribution). *)
let check_share t bl at ~signature ~name ps =
  let cfg = t.config in
  if Queue.length ps.p_shares < cfg.min_window then ([], None)
  else
    match Baseline.find bl ~signature with
    | Some bp when List.length bp.Baseline.components = ps.p_arity ->
        Registry.incr t.c_windows;
        let observed = window_profile ps in
        let report =
          Analysis.compare_profiles ~baseline:(Baseline.profile bp) ~observed
        in
        let live = Hashtbl.create 8 in
        let fired =
          List.filter_map
            (fun (s : Analysis.suspect) ->
              let label = Analysis.subject_label s.subject in
              Hashtbl.replace live label s.severity;
              let armed =
                match Hashtbl.find_opt ps.p_share_armed label with
                | Some r -> r
                | None ->
                    let r = ref true in
                    Hashtbl.replace ps.p_share_armed label r;
                    r
              in
              if s.severity >= cfg.share_threshold && !armed then begin
                armed := false;
                Some
                  (fire t ~at ~kind:Share_drift ~pattern:name
                     ~culprit:s.subject ~baseline_value:0.0
                     ~observed_value:s.severity
                     (Printf.sprintf "pattern %s: %s (severity %.2f) — %s" name
                        label s.severity s.reason))
              end
              else begin
                if
                  s.severity < cfg.share_threshold *. cfg.rearm_factor
                  && not !armed
                then armed := true;
                None
              end)
            report.Analysis.suspects
        in
        (* Subjects that dropped out of the suspect list entirely have
           recovered: re-arm them. *)
        Hashtbl.iter
          (fun label armed ->
            if (not !armed) && not (Hashtbl.mem live label) then armed := true)
          ps.p_share_armed;
        let top =
          match report.Analysis.suspects with
          | s :: _ -> Some s.Analysis.subject
          | [] -> None
        in
        (fired, top)
    | _ -> ([], None)

let check_latency t bl at ~signature ~name ps ~top_suspect =
  let cfg = t.config in
  if Queue.length ps.p_durations < cfg.min_window then []
  else
    match Baseline.find bl ~signature with
    | Some bp when bp.Baseline.mean_duration_s > 0.0 ->
        let mean = queue_mean ps.p_durations in
        let ratio = mean /. bp.Baseline.mean_duration_s in
        if ratio >= cfg.latency_factor && ps.p_latency_armed then begin
          ps.p_latency_armed <- false;
          [
            fire t ~at ~kind:Latency_shift ~pattern:name ?culprit:top_suspect
              ~baseline_value:bp.Baseline.mean_duration_s ~observed_value:mean
              (Printf.sprintf
                 "pattern %s: mean latency %.1fms vs baseline %.1fms (x%.1f)"
                 name (1000.0 *. mean)
                 (1000.0 *. bp.Baseline.mean_duration_s)
                 ratio);
          ]
        end
        else begin
          if
            ratio < cfg.latency_factor *. cfg.rearm_factor
            && not ps.p_latency_armed
          then ps.p_latency_armed <- true;
          []
        end
    | _ -> []

let check_mix t bl at =
  let cfg = t.config in
  if Queue.length t.mix_ring < cfg.mix_window then []
  else begin
    let total = float_of_int (Queue.length t.mix_ring) in
    let freqs = Hashtbl.create 8 in
    Queue.iter
      (fun s ->
        Hashtbl.replace freqs s
          (1 + Option.value (Hashtbl.find_opt freqs s) ~default:0))
      t.mix_ring;
    let freq s =
      float_of_int (Option.value (Hashtbl.find_opt freqs s) ~default:0) /. total
    in
    let name_of s = Option.value (Hashtbl.find_opt t.names s) ~default:s in
    (* Baseline patterns: vanished or frequency-shifted. *)
    let from_baseline =
      List.concat_map
        (fun (bp : Baseline.pattern_profile) ->
          if bp.frequency < cfg.mix_min_frequency then []
          else begin
            let obs = freq bp.signature in
            let flags = mix_flags_for t bp.signature in
            if obs = 0.0 then
              if flags.m_vanish_armed then begin
                flags.m_vanish_armed <- false;
                [
                  fire t ~at ~kind:Pattern_vanished ~pattern:bp.name
                    ~baseline_value:bp.frequency ~observed_value:0.0
                    (Printf.sprintf
                       "pattern %s vanished (baseline frequency %.0f%%)" bp.name
                       (100.0 *. bp.frequency));
                ]
              end
              else []
            else begin
              if
                obs >= cfg.mix_min_frequency *. cfg.rearm_factor
                && not flags.m_vanish_armed
              then flags.m_vanish_armed <- true;
              let delta = Float.abs (obs -. bp.frequency) in
              if delta >= cfg.mix_tolerance && flags.m_shift_armed then begin
                flags.m_shift_armed <- false;
                [
                  fire t ~at ~kind:Pattern_shift ~pattern:bp.name
                    ~baseline_value:bp.frequency ~observed_value:obs
                    (Printf.sprintf
                       "pattern %s frequency %.0f%% vs baseline %.0f%%" bp.name
                       (100.0 *. obs) (100.0 *. bp.frequency));
                ]
              end
              else begin
                if
                  delta < cfg.mix_tolerance *. cfg.rearm_factor
                  && not flags.m_shift_armed
                then flags.m_shift_armed <- true;
                []
              end
            end
          end)
        bl.Baseline.patterns
    in
    (* Observed patterns absent from the baseline.  [freqs] is a hash
       table, so collect the candidate signatures and sort them before
       firing: alerts raised in one tick must come out in a stable order
       (hash order varies across runs and OCaml versions). *)
    let candidates =
      Hashtbl.fold
        (fun signature _ acc ->
          match Baseline.find bl ~signature with
          | Some _ -> acc
          | None -> signature :: acc)
        freqs []
      |> List.sort String.compare
    in
    let novel =
      List.filter_map
        (fun signature ->
          let obs = freq signature in
          let flags = mix_flags_for t signature in
          if obs >= cfg.mix_min_frequency && flags.m_new_armed then begin
            flags.m_new_armed <- false;
            Some
              (fire t ~at ~kind:Pattern_new ~pattern:(name_of signature)
                 ~baseline_value:0.0 ~observed_value:obs
                 (Printf.sprintf
                    "new pattern %s at %.0f%% of traffic (absent from baseline)"
                    (name_of signature) (100.0 *. obs)))
          end
          else begin
            if
              obs < cfg.mix_min_frequency *. cfg.rearm_factor
              && not flags.m_new_armed
            then flags.m_new_armed <- true;
            None
          end)
        candidates
    in
    from_baseline @ novel
  end

let check_throughput t bl at time_s =
  let cfg = t.config in
  let base = bl.Baseline.throughput_rps in
  if base <= 0.0 || time_s < t.frozen_at_s +. cfg.throughput_window_s then []
  else begin
    let rate =
      float_of_int (Queue.length t.tp_times) /. cfg.throughput_window_s
    in
    let drop_thr = base /. cfg.throughput_factor in
    let dropped =
      if rate <= drop_thr && t.drop_armed then begin
        t.drop_armed <- false;
        [
          fire t ~at ~kind:Throughput_drop ~baseline_value:base
            ~observed_value:rate
            (Printf.sprintf "throughput %.0f paths/s vs baseline %.0f paths/s"
               rate base);
        ]
      end
      else begin
        if rate >= drop_thr /. cfg.rearm_factor && not t.drop_armed then
          t.drop_armed <- true;
        []
      end
    in
    let surged =
      if not cfg.detect_surge then []
      else begin
        let surge_thr = base *. cfg.throughput_factor in
        if rate >= surge_thr && t.surge_armed then begin
          t.surge_armed <- false;
          [
            fire t ~at ~kind:Throughput_surge ~baseline_value:base
              ~observed_value:rate
              (Printf.sprintf
                 "throughput %.0f paths/s vs baseline %.0f paths/s" rate base);
          ]
        end
        else begin
          if rate <= surge_thr *. cfg.rearm_factor && not t.surge_armed then
            t.surge_armed <- true;
          []
        end
      end
    in
    dropped @ surged
  end

let judge t bl at cag =
  let cfg = t.config in
  (* A supplied baseline arms the detector before any stream time has
     passed; anchor the throughput grace window at the first judged
     path instead of the (never set) freeze instant. *)
  if t.frozen_at_s = neg_infinity then t.frozen_at_s <- Sim_time.to_float_s at;
  let signature = Pattern.signature_of cag in
  let name = Pattern.name_of cag in
  let parts = Latency.percentages (Latency.breakdown cag) in
  let components = List.map fst parts in
  Hashtbl.replace t.names signature name;
  ring_push t.mix_ring cfg.mix_window signature;
  let time_s = Sim_time.to_float_s at in
  Queue.push time_s t.tp_times;
  while
    (not (Queue.is_empty t.tp_times))
    && Queue.peek t.tp_times < time_s -. cfg.throughput_window_s
  do
    ignore (Queue.pop t.tp_times)
  done;
  let ps = pstate_for t ~signature ~components in
  if List.length components = ps.p_arity then begin
    ring_push ps.p_shares cfg.window (Array.of_list (List.map snd parts));
    ring_push ps.p_durations cfg.window
      (Sim_time.span_to_float_s (Cag.duration cag))
  end;
  let share_verdicts, top_suspect = check_share t bl at ~signature ~name ps in
  let latency_verdicts = check_latency t bl at ~signature ~name ps ~top_suspect in
  let mix_verdicts = check_mix t bl at in
  let tp_verdicts = check_throughput t bl at time_s in
  share_verdicts @ latency_verdicts @ mix_verdicts @ tp_verdicts

let observe t cag =
  if not (Cag.is_finished cag) then []
  else begin
    let at =
      match t.now with Some f -> f () | None -> Cag.end_ts cag
    in
    t.n_paths <- t.n_paths + 1;
    Registry.incr t.c_paths;
    match t.bl with
    | None ->
        learn_path t at cag;
        []
    | Some bl -> judge t bl at cag
  end
