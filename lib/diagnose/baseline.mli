(** Healthy-run profiles: what the detector compares the live stream to.

    A baseline captures, over a window of recent causal paths from a
    healthy run, (a) each pattern's latency-share profile — the paper's
    per-component latency percentages (§3.2, Fig. 15) averaged over the
    pattern's members, (b) the pattern mix — each pattern's share of all
    paths, (c) each pattern's mean end-to-end duration, and (d) the
    overall path throughput. Everything the streaming detector alarms on
    is a departure from one of these four.

    The learner is a bounded sliding window over the {e most recent}
    [capacity] paths, so freezing at the end of a load ramp yields a
    near-steady-state profile rather than one diluted by the ramp's
    lightly-loaded early paths.

    Baselines persist to JSON ({!save}/{!load}), so a profile learned on
    one healthy run can be reused to watch any number of later runs. *)

type pattern_profile = {
  signature : string;  (** Canonical pattern signature ({!Core.Pattern}). *)
  name : string;  (** Human-readable tier route. *)
  components : Core.Latency.component list;  (** Critical-path order. *)
  shares : float array;  (** Mean latency share per component, aligned. *)
  frequency : float;  (** Share of all learned paths, [0,1]. *)
  mean_duration_s : float;  (** Mean end-to-end latency, seconds. *)
  count : int;  (** Paths aggregated. *)
}

type t = {
  patterns : pattern_profile list;  (** Descending frequency. *)
  total_paths : int;
  span_s : float;  (** Stream time covered by the learned window. *)
  throughput_rps : float;  (** [total_paths / span_s]; 0 when unknowable. *)
}

val profile : pattern_profile -> (Core.Latency.component * float) list
(** The share profile as an association list, ready for
    {!Core.Analysis.compare_profiles}. *)

val find : t -> signature:string -> pattern_profile option

(** {1 Learning} *)

type builder

val builder : ?capacity:int -> unit -> builder
(** A sliding-window learner over the last [capacity] (default 400)
    finished paths. *)

val learn : builder -> Core.Cag.t -> unit
(** Feed one path; unfinished CAGs are ignored. *)

val seen : builder -> int
(** Paths currently inside the window (≤ capacity). *)

val freeze : builder -> t
(** Aggregate the window into a baseline. The builder stays usable (the
    detector never re-freezes, but tests may). *)

val of_paths : ?capacity:int -> Core.Cag.t list -> t
(** One-shot convenience over {!builder}/{!learn}/{!freeze}. *)

(** {1 Persistence} *)

val to_json : t -> Core.Json.t
val of_json : Core.Json.t -> (t, string) result

val save : t -> path:string -> (unit, string) result
val load : path:string -> (t, string) result
(** Indented-JSON file round-trip; errors name the offending field. *)
