(** Live diagnosis: a scenario run watched through the in-band feed.

    One call wires the whole tentpole together: run a {!Tiersim.Scenario}
    with its faults held back until a mid-run onset, install the in-band
    collection plane ({!Collect.Deploy.install}), feed every path the
    collector completes into a streaming {!Detector} clocked by the
    simulation engine, and grade the verdicts against the injected
    ground truth ({!Verdict.score}).

    The detector learns its baseline inline from the healthy pre-onset
    traffic (freezing at the start of the runtime session) unless one is
    supplied; paths completing after the runtime session are not judged,
    so the down-ramp and drain cannot fire throughput or latency
    alarms. *)

type result = {
  outcome : Tiersim.Scenario.outcome;
  verdicts : Detector.verdict list;
  score : Verdict.score;
  baseline : Baseline.t option;  (** The baseline the detector ran with. *)
  onset : Simnet.Sim_time.t option;
      (** The fault activation instant actually used. *)
  paths_fed : int;  (** Paths delivered to the detector. *)
}

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?config:Detector.config ->
  ?collect:Collect.Deploy.config ->
  ?baseline:Baseline.t ->
  ?onset:Simnet.Sim_time.span ->
  ?on_verdict:(Detector.verdict -> unit) ->
  Tiersim.Scenario.spec ->
  result
(** Run [spec] live. When [spec.faults] is non-empty, the faults activate
    at [onset] (default {!Tiersim.Scenario.mid_run_onset}) — overriding
    [spec.fault_onset]. [on_verdict] fires as each verdict does, at its
    simulated instant (the live CLI prints them as they happen). Without
    [baseline], the detector freezes one from the pre-onset stream at
    the end of the up-ramp. *)
