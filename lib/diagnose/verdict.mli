(** Scoring detector output against injected ground truth.

    The simulator knows which fault it injected and when
    ({!Tiersim.Faults}, [fault_onset]); the detector only sees the path
    stream. This module closes the loop: it maps each fault onto the
    {!Core.Analysis.subject} the §5.4 methodology should blame —
    [Ejb_delay] onto the app tier, [Database_lock] onto the db tier,
    [Ejb_network] onto the app tier's network or an adjacent interaction
    — and grades a verdict stream for detection, culprit correctness,
    time-to-detection and false alarms. *)

type expectation = {
  fault_name : string;  (** The paper's label for the fault. *)
  expected : string;  (** Human-readable description of the culprit. *)
  accepts : Core.Analysis.subject -> bool;
      (** Does this named culprit correctly blame the fault? *)
}

val expectation_of : Tiersim.Faults.t -> expectation option
(** [None] for faults with no performance signature of their own
    ([Host_silence], [Agent_crash] break collection, not the service). *)

type score = {
  fault : string option;  (** [None] for a faultless control run. *)
  onset_s : float option;  (** Injection instant, stream seconds. *)
  detected : bool;  (** Any verdict at or after onset. *)
  correct : bool;
      (** Fault runs: some post-onset verdict names an accepted culprit
          (or merely detects, when no expectation exists). Control runs:
          no false alarms. *)
  time_to_detection_s : float option;
      (** First correct post-onset verdict minus onset. Also observed
          into the [pt_diagnose_ttd_seconds] histogram. *)
  first_culprit : string option;
      (** Label of the first post-onset verdict that names a culprit. *)
  false_alarms : int;
      (** Verdicts strictly before onset — every verdict, on a control
          run. *)
  verdicts_total : int;
}

val score :
  ?telemetry:Telemetry.Registry.t ->
  ?fault:Tiersim.Faults.t ->
  ?onset:Simnet.Sim_time.t ->
  Detector.verdict list ->
  score
(** Grade a verdict stream. Omit [fault] (and [onset]) for a control
    run: every verdict then counts as a false alarm. *)

val pp_score : Format.formatter -> score -> unit
val score_to_json : score -> Core.Json.t
