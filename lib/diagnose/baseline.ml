module Latency = Core.Latency
module Pattern = Core.Pattern
module Cag = Core.Cag
module Json = Core.Json
module Sim_time = Simnet.Sim_time

type pattern_profile = {
  signature : string;
  name : string;
  components : Latency.component list;
  shares : float array;
  frequency : float;
  mean_duration_s : float;
  count : int;
}

type t = {
  patterns : pattern_profile list;
  total_paths : int;
  span_s : float;
  throughput_rps : float;
}

let profile p = List.mapi (fun i c -> (c, p.shares.(i))) p.components

let find t ~signature =
  List.find_opt (fun p -> String.equal p.signature signature) t.patterns

(* ---- learning ---- *)

type obs = {
  o_signature : string;
  o_name : string;
  o_components : Latency.component list;
  o_shares : float array;
  o_duration_s : float;
  o_end_s : float;
}

type builder = { capacity : int; window : obs Queue.t }

let builder ?(capacity = 400) () =
  if capacity <= 0 then invalid_arg "Baseline.builder: capacity must be positive";
  { capacity; window = Queue.create () }

let observe_of cag =
  let parts = Latency.percentages (Latency.breakdown cag) in
  {
    o_signature = Pattern.signature_of cag;
    o_name = Pattern.name_of cag;
    o_components = List.map fst parts;
    o_shares = Array.of_list (List.map snd parts);
    o_duration_s = Sim_time.span_to_float_s (Cag.duration cag);
    o_end_s = Sim_time.to_float_s (Cag.end_ts cag);
  }

let learn b cag =
  if Cag.is_finished cag then begin
    Queue.push (observe_of cag) b.window;
    if Queue.length b.window > b.capacity then ignore (Queue.pop b.window)
  end

let seen b = Queue.length b.window

type accum = {
  a_name : string;
  a_components : Latency.component list;
  mutable a_share_sum : float array;
  mutable a_duration_sum : float;
  mutable a_count : int;
}

let freeze b =
  let total = Queue.length b.window in
  let by_sig : (string, accum) Hashtbl.t = Hashtbl.create 8 in
  let min_end = ref infinity and max_end = ref neg_infinity in
  Queue.iter
    (fun o ->
      if o.o_end_s < !min_end then min_end := o.o_end_s;
      if o.o_end_s > !max_end then max_end := o.o_end_s;
      match Hashtbl.find_opt by_sig o.o_signature with
      | None ->
          Hashtbl.replace by_sig o.o_signature
            {
              a_name = o.o_name;
              a_components = o.o_components;
              a_share_sum = Array.copy o.o_shares;
              a_duration_sum = o.o_duration_s;
              a_count = 1;
            }
      | Some a when Array.length a.a_share_sum = Array.length o.o_shares ->
          Array.iteri (fun i v -> a.a_share_sum.(i) <- a.a_share_sum.(i) +. v) o.o_shares;
          a.a_duration_sum <- a.a_duration_sum +. o.o_duration_s;
          a.a_count <- a.a_count + 1
      | Some _ -> () (* same signature should imply same arity; tolerate anomalies *))
    b.window;
  let patterns =
    Hashtbl.fold
      (fun signature a acc ->
        let n = float_of_int a.a_count in
        {
          signature;
          name = a.a_name;
          components = a.a_components;
          shares = Array.map (fun s -> s /. n) a.a_share_sum;
          frequency = n /. float_of_int (max 1 total);
          mean_duration_s = a.a_duration_sum /. n;
          count = a.a_count;
        }
        :: acc)
      by_sig []
    |> List.sort (fun a b ->
           match compare b.count a.count with
           | 0 -> String.compare a.signature b.signature
           | c -> c)
  in
  let span_s = if total >= 2 then !max_end -. !min_end else 0.0 in
  {
    patterns;
    total_paths = total;
    span_s;
    throughput_rps = (if span_s > 0.0 then float_of_int total /. span_s else 0.0);
  }

let of_paths ?capacity cags =
  let b = builder ?capacity () in
  List.iter (learn b) cags;
  freeze b

(* ---- persistence ---- *)

let format_tag = "pt-baseline-1"

let to_json t =
  let component c = Json.Obj [ ("src", Json.String c.Latency.src); ("dst", Json.String c.Latency.dst) ] in
  let pattern p =
    Json.Obj
      [
        ("signature", Json.String p.signature);
        ("name", Json.String p.name);
        ("count", Json.Int p.count);
        ("frequency", Json.Float p.frequency);
        ("mean_duration_s", Json.Float p.mean_duration_s);
        ("components", Json.List (List.map component p.components));
        ("shares", Json.List (Array.to_list (Array.map (fun v -> Json.Float v) p.shares)));
      ]
  in
  Json.Obj
    [
      ("format", Json.String format_tag);
      ("total_paths", Json.Int t.total_paths);
      ("span_s", Json.Float t.span_s);
      ("throughput_rps", Json.Float t.throughput_rps);
      ("patterns", Json.List (List.map pattern t.patterns));
    ]

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "baseline: missing field %S" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "baseline: field %S is not a string" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "baseline: field %S is not an integer" name)

let as_float name = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "baseline: field %S is not a number" name)

let as_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "baseline: field %S is not a list" name)

let str_field name j = Result.bind (field name j) (as_string name)
let int_field name j = Result.bind (field name j) (as_int name)
let float_field name j = Result.bind (field name j) (as_float name)
let list_field name j = Result.bind (field name j) (as_list name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let component_of_json j =
  let* src = str_field "src" j in
  let* dst = str_field "dst" j in
  Ok { Latency.src; dst }

let pattern_of_json j =
  let* signature = str_field "signature" j in
  let* name = str_field "name" j in
  let* count = int_field "count" j in
  let* frequency = float_field "frequency" j in
  let* mean_duration_s = float_field "mean_duration_s" j in
  let* components = list_field "components" j in
  let* components = map_result component_of_json components in
  let* shares = list_field "shares" j in
  let* shares = map_result (as_float "shares") shares in
  if List.length components <> List.length shares then
    Error (Printf.sprintf "baseline: pattern %S has %d components but %d shares" name
             (List.length components) (List.length shares))
  else
    Ok
      {
        signature;
        name;
        components;
        shares = Array.of_list shares;
        frequency;
        mean_duration_s;
        count;
      }

let of_json j =
  let* tag = str_field "format" j in
  if not (String.equal tag format_tag) then
    Error (Printf.sprintf "baseline: unsupported format %S (expected %S)" tag format_tag)
  else
    let* total_paths = int_field "total_paths" j in
    let* span_s = float_field "span_s" j in
    let* throughput_rps = float_field "throughput_rps" j in
    let* patterns = list_field "patterns" j in
    let* patterns = map_result pattern_of_json patterns in
    Ok { patterns; total_paths; span_s; throughput_rps }

let save t ~path =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Json.to_string ~indent:true (to_json t) ^ "\n"));
      Ok ()

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | body ->
      let* j = Json.of_string body in
      of_json j
