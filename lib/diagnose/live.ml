module S = Tiersim.Scenario
module Service = Tiersim.Service
module Sim_time = Simnet.Sim_time
module Engine = Simnet.Engine
module Registry = Telemetry.Registry

type result = {
  outcome : S.outcome;
  verdicts : Detector.verdict list;
  score : Verdict.score;
  baseline : Baseline.t option;
  onset : Sim_time.t option;
  paths_fed : int;
}

let run ?(telemetry = Registry.default) ?config
    ?(collect = Collect.Deploy.default_config) ?baseline ?onset ?on_verdict
    (spec : S.spec) =
  let time_scale = spec.S.time_scale in
  let measure_from, measure_until = S.runtime_session ~time_scale in
  let onset_span =
    if spec.S.faults = [] then None
    else
      match (onset, spec.S.fault_onset) with
      | Some o, _ -> Some o
      | None, Some o -> Some o
      | None, None -> Some (S.mid_run_onset ~time_scale ())
  in
  let spec = { spec with S.fault_onset = onset_span } in
  let config =
    match (config, baseline) with
    | Some c, _ -> c
    | None, Some _ -> Detector.default_config
    | None, None ->
        (* Learning inline: freeze at the end of the up-ramp so the
           baseline covers only healthy steady-state traffic. *)
        { Detector.default_config with freeze_after = Some measure_from }
  in
  let detector = ref None in
  let deploy = ref None in
  let paths_fed = ref 0 in
  let before_run svc =
    let engine = Service.engine svc in
    let det =
      Detector.create ~config ?baseline
        ~now:(fun () -> Engine.now engine)
        ~telemetry ()
    in
    detector := Some det;
    let on_path cag =
      (* Judge the runtime session only: the up-ramp (once a baseline is
         armed) runs legitimately below baseline throughput, and paths
         completing during the down-ramp or drain would fire
         throughput/latency alarms just as spuriously. Warmup learning
         still consumes ramp paths. *)
      let now = Engine.now engine in
      if
        Sim_time.compare now measure_until <= 0
        && ((not (Detector.warmed det)) || Sim_time.compare now measure_from >= 0)
      then begin
        incr paths_fed;
        let fired = Detector.observe det cag in
        match on_verdict with Some f -> List.iter f fired | None -> ()
      end
    in
    deploy := Some (Collect.Deploy.install ~telemetry ~config:collect ~on_path svc)
  in
  let after_run _svc =
    match !deploy with Some d -> Collect.Deploy.finish d | None -> ()
  in
  let outcome = S.run ~before_run ~after_run spec in
  let det = Option.get !detector in
  let verdicts = Detector.verdicts det in
  let onset_t = Option.map (Sim_time.add Sim_time.zero) onset_span in
  let fault = match spec.S.faults with f :: _ -> Some f | [] -> None in
  let score = Verdict.score ~telemetry ?fault ?onset:onset_t verdicts in
  {
    outcome;
    verdicts;
    score;
    baseline = Detector.baseline det;
    onset = onset_t;
    paths_fed = !paths_fed;
  }
