(** Streaming root-cause detector over the online path feed.

    The detector consumes finished causal paths one at a time — from
    {!Core.Online}'s [on_path] hook, the in-band collection plane
    ({!Collect.Deploy.install}) or a replayed trace — and raises
    structured, timestamped {!verdict}s when the stream departs from a
    healthy {!Baseline.t}:

    - {b Share drift}: a pattern's latency-share profile shifts; the
      culprit is named in the paper's §5.4 vocabulary via
      {!Core.Analysis.compare_profiles} (tier / tier network /
      interaction). Subsumes and extends {!Core.Drift}, which only
      watches one component's share.
    - {b Pattern-mix anomalies}: a baseline pattern vanishes, a new
      pattern appears, or a pattern's frequency shifts beyond tolerance.
    - {b Latency shift}: a pattern's mean end-to-end latency grows by
      more than [latency_factor] over its baseline mean.
    - {b Throughput drop/surge}: the overall path completion rate falls
      below (or, when enabled, rises above) the baseline rate.

    Every alarm class has hysteresis: a verdict fires once per
    excursion, then re-arms only after the signal recovers below
    [rearm_factor] of its firing threshold. Each verdict increments
    [pt_diagnose_alerts_total{kind,comp,pattern}]. *)

type kind =
  | Share_drift
  | Pattern_new
  | Pattern_vanished
  | Pattern_shift
  | Latency_shift
  | Throughput_drop
  | Throughput_surge

val kind_to_string : kind -> string

type verdict = {
  at : Simnet.Sim_time.t;  (** Stream time at which the alarm fired. *)
  kind : kind;
  pattern : string option;  (** Pattern name, for per-pattern alarms. *)
  culprit : Core.Analysis.subject option;
      (** The named root cause, in §5.4 language, when one is implied. *)
  baseline_value : float;
  observed_value : float;
  reason : string;  (** One-line human-readable account. *)
  paths_seen : int;  (** Paths consumed when the alarm fired. *)
}

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_json : verdict -> Core.Json.t

type config = {
  warmup_paths : int;
      (** Baseline window capacity; also the inline-learning freeze
          point when [freeze_after] is [None]. Default 400. *)
  freeze_after : Simnet.Sim_time.t option;
      (** Freeze the inline-learned baseline at this stream instant
          instead of after [warmup_paths] paths (a live run freezes at
          the end of the up-ramp). Default [None]. *)
  window : int;  (** Per-pattern observation ring size. Default 80. *)
  min_window : int;
      (** Observations required before a pattern is judged. Default 40. *)
  share_threshold : float;
      (** Minimum {!Core.Analysis} suspect severity (share delta) that
          fires {!Share_drift}. Default 0.10. *)
  rearm_factor : float;
      (** Hysteresis: re-arm when the signal falls below threshold
          times this. Default 0.5. *)
  mix_window : int;  (** Pattern-mix ring size, paths. Default 200. *)
  mix_tolerance : float;
      (** Absolute frequency delta that fires {!Pattern_shift}.
          Default 0.15. *)
  mix_min_frequency : float;
      (** Patterns rarer than this (baseline or observed) are ignored
          by mix detection. Default 0.05. *)
  latency_factor : float;
      (** Window-mean latency over baseline mean that fires
          {!Latency_shift}. Default 2.5. *)
  throughput_window_s : float;
      (** Sliding wall of stream time over which the live rate is
          estimated. Default 5.0. *)
  throughput_factor : float;
      (** Rate below baseline/factor fires {!Throughput_drop}; above
          baseline*factor fires {!Throughput_surge}. Default 3.0. *)
  detect_surge : bool;
      (** Surges are off by default: ramps legitimately overshoot. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?baseline:Baseline.t ->
  ?now:(unit -> Simnet.Sim_time.t) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** A detector. With [?baseline] it starts armed; without, it learns one
    inline from the first [warmup_paths] paths (or until [freeze_after])
    and then arms. [?now] supplies stream time (e.g. the simulation
    clock); otherwise each path's {!Core.Cag.end_ts} is used. *)

val observe : t -> Core.Cag.t -> verdict list
(** Feed one path; returns the verdicts (usually none) this path fired,
    in a deterministic order. Unfinished CAGs are ignored. *)

val warmed : t -> bool
(** Has the detector armed (baseline available)? *)

val baseline : t -> Baseline.t option
(** The baseline in force: supplied, or frozen from the warmup. *)

val verdicts : t -> verdict list
(** All verdicts fired so far, oldest first. *)

val paths_seen : t -> int
(** Finished paths consumed (including warmup). *)
