module Analysis = Core.Analysis
module Json = Core.Json
module Sim_time = Simnet.Sim_time
module Faults = Tiersim.Faults
module Registry = Telemetry.Registry

type expectation = {
  fault_name : string;
  expected : string;
  accepts : Analysis.subject -> bool;
}

(* The simulated RUBiS deployment runs httpd/java/mysqld (§5.1); the
   faults target the app and db tiers by program name. *)
let expectation_of fault =
  match fault with
  | Faults.Ejb_delay _ ->
      Some
        {
          fault_name = Faults.name fault;
          expected = "tier java";
          accepts =
            (function Analysis.Tier t -> String.equal t "java" | _ -> false);
        }
  | Faults.Database_lock _ ->
      Some
        {
          fault_name = Faults.name fault;
          expected = "tier mysqld";
          accepts =
            (function Analysis.Tier t -> String.equal t "mysqld" | _ -> false);
        }
  | Faults.Ejb_network _ ->
      Some
        {
          fault_name = Faults.name fault;
          expected = "network of tier java (or an adjacent interaction)";
          accepts =
            (function
            | Analysis.Tier_network t -> String.equal t "java"
            | Analysis.Interaction { src; dst } ->
                String.equal src "java" || String.equal dst "java"
            | Analysis.Tier _ -> false);
        }
  | Faults.Tier_slow { tier; _ } | Faults.Replica_slow { tier; _ } ->
      (* Mesh scenario faults: the culprit is the slow tier itself,
         whatever mesh topology it sits in. *)
      Some
        {
          fault_name = Faults.name fault;
          expected = Printf.sprintf "tier %s" tier;
          accepts = (function Analysis.Tier t -> String.equal t tier | _ -> false);
        }
  | Faults.Key_skew { tier; _ } ->
      (* A hot key overloads the partition that owns it: accept the
         partitioned tier or an interaction into it. *)
      Some
        {
          fault_name = Faults.name fault;
          expected = Printf.sprintf "tier %s (or an interaction into it)" tier;
          accepts =
            (function
            | Analysis.Tier t -> String.equal t tier
            | Analysis.Interaction { dst; _ } -> String.equal dst tier
            | _ -> false);
        }
  | Faults.Host_silence _ | Faults.Agent_crash _ -> None

type score = {
  fault : string option;
  onset_s : float option;
  detected : bool;
  correct : bool;
  time_to_detection_s : float option;
  first_culprit : string option;
  false_alarms : int;
  verdicts_total : int;
}

let score ?(telemetry = Registry.default) ?fault ?onset verdicts =
  (* A fault with no recorded onset was active from the start. *)
  let onset =
    match (onset, fault) with
    | None, Some _ -> Some Sim_time.zero
    | _ -> onset
  in
  let onset_s = Option.map Sim_time.to_float_s onset in
  let after_onset (v : Detector.verdict) =
    match onset with
    | None -> false
    | Some o -> Sim_time.compare v.Detector.at o >= 0
  in
  let post = List.filter after_onset verdicts in
  let pre = List.filter (fun v -> not (after_onset v)) verdicts in
  let expectation = Option.bind fault expectation_of in
  let matching =
    match expectation with
    | None -> post
    | Some e ->
        List.filter
          (fun (v : Detector.verdict) ->
            match v.Detector.culprit with
            | Some s -> e.accepts s
            | None -> false)
          post
  in
  let time_to_detection_s =
    match (matching, onset_s) with
    | v :: _, Some o ->
        let ttd = Sim_time.to_float_s v.Detector.at -. o in
        Registry.observe
          (Registry.histogram telemetry
             ~help:"Time from fault onset to the first correct verdict"
             "pt_diagnose_ttd_seconds")
          ttd;
        Some ttd
    | _ -> None
  in
  let first_culprit =
    List.find_map
      (fun (v : Detector.verdict) ->
        Option.map Analysis.subject_label v.Detector.culprit)
      post
  in
  let detected = post <> [] in
  let false_alarms = List.length pre in
  let correct =
    match fault with
    | None -> false_alarms = 0
    | Some _ -> matching <> []
  in
  {
    fault = Option.map Faults.name fault;
    onset_s;
    detected;
    correct;
    time_to_detection_s;
    first_culprit;
    false_alarms;
    verdicts_total = List.length verdicts;
  }

let pp_score ppf s =
  let fault = Option.value s.fault ~default:"none (control)" in
  Format.fprintf ppf "@[<v>fault: %s@," fault;
  (match s.onset_s with
  | Some o -> Format.fprintf ppf "onset: %.1fs@," o
  | None -> ());
  Format.fprintf ppf "detected: %b  correct: %b@," s.detected s.correct;
  (match s.time_to_detection_s with
  | Some ttd -> Format.fprintf ppf "time to detection: %.1fs@," ttd
  | None -> ());
  (match s.first_culprit with
  | Some c -> Format.fprintf ppf "first culprit: %s@," c
  | None -> ());
  Format.fprintf ppf "false alarms: %d  verdicts: %d@]" s.false_alarms
    s.verdicts_total

let score_to_json s =
  let opt_f = function Some f -> Json.Float f | None -> Json.Null in
  let opt_s = function Some v -> Json.String v | None -> Json.Null in
  Json.Obj
    [
      ("fault", opt_s s.fault);
      ("onset_s", opt_f s.onset_s);
      ("detected", Json.Bool s.detected);
      ("correct", Json.Bool s.correct);
      ("time_to_detection_s", opt_f s.time_to_detection_s);
      ("first_culprit", opt_s s.first_culprit);
      ("false_alarms", Json.Int s.false_alarms);
      ("verdicts_total", Json.Int s.verdicts_total);
    ]
