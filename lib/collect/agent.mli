(** The per-host collection agent.

    One agent runs on each traced node, as the daemon the paper's
    successor work deploys next to TCP_TRACE. It subscribes to the probe
    ({!Trace.Probe.add_listener}), keeps only its own host's records,
    optionally applies an agent-local {!Store.Policy} reduction, cuts
    batches into PTC1 frames ({!Frame}) and ships them to the collector
    over the {e simulated} network — so shipping consumes NIC bandwidth
    and node CPU, and the tracing overhead measured by the Figs. 12-13
    methodology now includes its collection cost. The agent's own
    process ([ptagent]) must be exempted from the probe
    ({!Trace.Probe.exempt_program}) or its sends would be traced and
    shipped in turn; {!Deploy.install} does this.

    {1 Buffering, backpressure, loss}

    Records flow observe -> open batch -> encode queue -> frame spool.
    [max_spool_records] bounds the sum; past it:

    - [Drop_oldest]: the oldest {e not-yet-transmitted} spooled frames
      are evicted (reason [evicted]) to admit the new record; frames
      already sent and awaiting acknowledgement are never evicted, so a
      record the collector may have is never double-counted as dropped.
      If nothing is evictable the new record is dropped instead.
    - [Block]: the new record is dropped (reason [buffer_full]) — the
      kernel-ring semantics of a reader that cannot keep up.

    Frames stay spooled until the collector's cumulative ack covers
    them. A {!crash} closes the connection and loses the open batch and
    encode queue (reason [crash]); records observed while down are
    dropped (reason [agent_down]); the spool survives — the disk-backed
    frame store of a real agent — and {!restart} reconnects and resends
    everything after the last acknowledged frame. The collector
    deduplicates, so delivery is exactly-once per frame even though the
    wire sees retransmits. *)

type overflow = Drop_oldest | Block

type config = {
  batch_records : int;  (** Cut a frame after this many records. *)
  flush_interval : Simnet.Sim_time.span;
      (** Cut a partial batch after this long, bounding delivery lag. *)
  max_spool_records : int;  (** Bound on batch + encode queue + spool. *)
  overflow : overflow;
  policy : Store.Policy.t;  (** Agent-local reduction; {!Store.Policy.none} to ship raw. *)
  correlate : Core.Correlator.config option;
      (** Attribution config for a non-none [policy]. *)
  partial : Core.Partial.config option;
      (** Agent-local partial correlation (hierarchy level 0): prefilter,
          run coalescing and same-host matching before framing; reduced
          frames carry a {!Trace.Boundary} table listing each unresolved
          cross-host flow {e once}, in the frame where it first crossed
          the boundary (re-listing every open connection per frame would
          eat the reduction). [None] ships batches unreduced. *)
  max_inflight_frames : int;
      (** Send window: at most this many frames written to the socket
          but not yet acknowledged. Application-level flow control — the
          socket buffer is effectively unbounded, so without a window
          the agent would write its whole spool eagerly and overflow
          could never find an evictable (never-transmitted) frame. *)
  cpu_per_record : Simnet.Sim_time.span;  (** Encode/reduce CPU cost per record. *)
  cpu_per_frame : Simnet.Sim_time.span;  (** Fixed CPU cost per frame cut. *)
  send_chunk : int;  (** Bytes per send syscall. *)
  reconnect_delay : Simnet.Sim_time.span;  (** Back-off before redialling. *)
}

val default_config : config
(** batch 256, flush 50 ms, spool 65536 records, [Drop_oldest], no
    policy, window 8 frames, 1 us/record + 100 us/frame, 8 KiB chunks,
    100 ms back-off. *)

type t

val create :
  ?telemetry:Telemetry.Registry.t ->
  ?config:config ->
  wire:Wire.t ->
  node:Simnet.Node.t ->
  collector:Simnet.Address.endpoint ->
  unit ->
  t
(** An agent for [node]'s host. Does not connect until {!start}.
    @raise Invalid_argument if [policy] needs attribution and
    [correlate] is missing, or on nonsensical config values. *)

val host : t -> string

val attach : t -> Trace.Probe.t -> unit
(** Subscribe to the probe and exempt the agent's own process. *)

val start : t -> unit
(** Dial the collector (which must already be listening). *)

val observe : t -> Trace.Activity.t -> unit
(** Feed one record; records of other hosts are ignored (the probe
    listener broadcasts every host's activities). Never raises. *)

val flush : t -> unit
(** Cut the open batch now (no-op when empty or down). *)

val crash : t -> unit
(** Fault injection: kill the agent process. Idempotent while down. *)

val restart : t -> unit
(** Restart after a {!crash}: new process, reconnect, resend unacked
    spool. No-op while alive. *)

val is_up : t -> bool

type stats = {
  observed : int;  (** Own-host records accepted from the probe. *)
  reduced : int;
      (** Records removed before framing — by the agent-local policy and
          by the partial-correlation pass (prefilter + coalescing). *)
  partial_coalesced : int;  (** Rows merged into a local run head. *)
  partial_local_flows : int;  (** Flows resolved inside the host. *)
  partial_fallbacks : int;  (** Batches shipped raw (budget exceeded). *)
  boundary_entries : int;  (** Unresolved-boundary entries shipped. *)
  dropped : (string * int) list;
      (** Records lost, by reason: [agent_down], [buffer_full],
          [evicted], [crash]. Sorted by reason. *)
  frames_shipped : int;  (** Frame transmissions, including retransmits. *)
  retransmits : int;
  bytes_shipped : int;
  acked_records : int;  (** Records in frames covered by a cumulative ack. *)
  spooled_records : int;  (** Records framed but not yet acknowledged. *)
  queued_records : int;  (** Records in the open batch / encode queue. *)
  connections : int;
}

val stats : t -> stats
(** Always satisfies
    [observed = reduced + total dropped + acked_records +
     spooled_records + queued_records] — the reconciliation identity the
    acceptance tests check. *)

val dropped_total : stats -> int
