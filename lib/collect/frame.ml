module Sim_time = Simnet.Sim_time

let magic = "PTC1"
let ack_magic = "PTA1"

(* A corrupt length field must not park the decoder forever waiting for
   bytes that will never come; anything past these bounds is corruption,
   not a short read. *)
let max_host_len = 4096
let max_payload_len = 1 lsl 28
let max_boundary_len = 1 lsl 24

(* ---- encoding (same LEB128 primitives as Trace.Binary_format) ---- *)

let put_uvarint buf n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Frame.put_uvarint: negative value %d" n);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let encode_payload_arena arena = Trace.Binary_format.encode_native [ arena ]

let encode_payload ~host activities =
  encode_payload_arena (Trace.Arena.of_log (Trace.Log.of_list ~hostname:host activities))

let encode_with_boundary ~boundary ~seq ~oldest ~host ~watermark ~payload =
  if seq < 0 then invalid_arg "Frame.encode: negative seq";
  if oldest < 0 then invalid_arg "Frame.encode: negative oldest";
  if String.length host > max_host_len then invalid_arg "Frame.encode: host too long";
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf magic;
  put_uvarint buf seq;
  put_uvarint buf oldest;
  put_uvarint buf (String.length host);
  Buffer.add_string buf host;
  put_uvarint buf (Sim_time.to_ns watermark);
  put_uvarint buf (String.length payload);
  Buffer.add_string buf payload;
  (* boundary-table section; zero length when the agent did not run the
     partial-correlation pass (or resolved everything locally) *)
  (match boundary with
  | [] -> put_uvarint buf 0
  | _ ->
      let bytes = Trace.Boundary.encode boundary in
      put_uvarint buf (String.length bytes);
      Buffer.add_string buf bytes);
  Buffer.contents buf

let encode ~seq ~oldest ~host ~watermark ~payload =
  encode_with_boundary ~boundary:Trace.Boundary.empty ~seq ~oldest ~host ~watermark
    ~payload

let encode_ack seq =
  if seq < 0 then invalid_arg "Frame.encode_ack: negative seq";
  let buf = Buffer.create 12 in
  Buffer.add_string buf ack_magic;
  put_uvarint buf seq;
  Buffer.contents buf

type t = {
  seq : int;
  oldest : int;
  host : string;
  watermark : Sim_time.t;
  arena : Trace.Arena.t;  (* decoded payload rows, native representation *)
  boundary : Trace.Boundary.t;  (* unresolved cross-host flows, possibly empty *)
}

let records f = Trace.Arena.length f.arena
let activities f = List.rev (Trace.Arena.fold f.arena (fun acc a -> a :: acc) [])

(* ---- incremental decoding ----

   The stream window lives in a growable byte buffer with a consumed
   prefix; parsing runs over the window and either completes a frame
   (the window advances), runs off the end ([Need_more] — wait for the
   next feed), or hits a definitive inconsistency ([Bad] — sticky, the
   stream cannot be resynchronised). Offsets in errors are absolute
   stream positions, mirroring Binary_format's corruption reports. *)

exception Need_more
exception Bad of int * string

type window = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* end of valid data *)
  mutable base : int;  (* absolute stream offset of [start] *)
  mutable failed : string option;
}

let window_create () =
  { buf = Bytes.create 4096; start = 0; stop = 0; base = 0; failed = None }

let window_len w = w.stop - w.start

let window_feed w s =
  let n = String.length s in
  if n > 0 then begin
    if w.stop + n > Bytes.length w.buf then begin
      (* compact, then grow if still needed *)
      let live = window_len w in
      Bytes.blit w.buf w.start w.buf 0 live;
      w.start <- 0;
      w.stop <- live;
      if live + n > Bytes.length w.buf then begin
        let cap = max (live + n) (2 * Bytes.length w.buf) in
        let nb = Bytes.create cap in
        Bytes.blit w.buf 0 nb 0 live;
        w.buf <- nb
      end
    end;
    Bytes.blit_string s 0 w.buf w.stop n;
    w.stop <- w.stop + n
  end

type cursor = { w : window; mutable pos : int }

let byte c =
  if c.pos >= c.w.stop then raise Need_more;
  let b = Char.code (Bytes.get c.w.buf c.pos) in
  c.pos <- c.pos + 1;
  b

let abs_pos c = c.w.base + (c.pos - c.w.start)

let get_uvarint c =
  let rec go shift acc =
    if shift > 62 then raise (Bad (abs_pos c, "varint too long"));
    let b = byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let expect_magic c m =
  String.iter
    (fun ch ->
      let at = abs_pos c in
      if byte c <> Char.code ch then
        raise (Bad (at, Printf.sprintf "bad magic (expected %S)" m)))
    m

let get_bytes c n =
  if c.pos + n > c.w.stop then raise Need_more;
  let s = Bytes.sub_string c.w.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* Run one parse attempt: on success consume the bytes and return the
   value; on [Need_more] leave the window untouched; on [Bad] latch the
   error. *)
let attempt w parse =
  match w.failed with
  | Some e -> Error e
  | None -> (
      if window_len w = 0 then Ok None
      else
        let c = { w; pos = w.start } in
        match parse c with
        | v ->
            w.base <- w.base + (c.pos - w.start);
            w.start <- c.pos;
            Ok (Some v)
        | exception Need_more -> Ok None
        | exception Bad (off, msg) ->
            let e = Printf.sprintf "offset %d: %s" off msg in
            w.failed <- Some e;
            Error e)

let parse_frame c =
  expect_magic c magic;
  let seq = get_uvarint c in
  let oldest = get_uvarint c in
  let host_len_at = abs_pos c in
  let host_len = get_uvarint c in
  if host_len > max_host_len then
    raise (Bad (host_len_at, Printf.sprintf "host length %d exceeds limit" host_len));
  let host = get_bytes c host_len in
  let watermark = Sim_time.of_ns (get_uvarint c) in
  let plen_at = abs_pos c in
  let plen = get_uvarint c in
  if plen > max_payload_len then
    raise (Bad (plen_at, Printf.sprintf "payload length %d exceeds limit" plen));
  let payload_at = abs_pos c in
  let payload = get_bytes c plen in
  let blen_at = abs_pos c in
  let blen = get_uvarint c in
  if blen > max_boundary_len then
    raise (Bad (blen_at, Printf.sprintf "boundary length %d exceeds limit" blen));
  let boundary_at = abs_pos c in
  let boundary_bytes = get_bytes c blen in
  match Trace.Binary_format.decode_native payload with
  | Error e -> raise (Bad (payload_at, Printf.sprintf "payload: %s" e))
  | Ok arenas ->
      let arena =
        match arenas with
        | [] -> Trace.Arena.create ~host ()
        | [ a ] ->
            if not (String.equal (Trace.Arena.hostname a) host) then
              raise (Bad (payload_at, "payload hostname differs from frame header"));
            a
        | _ -> raise (Bad (payload_at, "payload holds more than one log"))
      in
      let boundary =
        if blen = 0 then Trace.Boundary.empty
        else
          match Trace.Boundary.decode boundary_bytes with
          | Ok b -> b
          | Error e -> raise (Bad (boundary_at, Printf.sprintf "boundary table: %s" e))
      in
      { seq; oldest; host; watermark; arena; boundary }

module Decoder = struct
  type frame = t
  type nonrec t = window

  let create () = window_create ()
  let feed = window_feed
  let next w : (frame option, string) result = attempt w parse_frame

  let drain w =
    let rec go acc =
      match next w with
      | Ok (Some f) -> go (f :: acc)
      | Ok None -> Ok (List.rev acc)
      | Error e -> Error e
    in
    go []

  let buffered = window_len
end

module Ack_decoder = struct
  type nonrec t = window

  let create () = window_create ()
  let feed = window_feed

  let parse_ack c =
    expect_magic c ack_magic;
    get_uvarint c

  let next w = attempt w parse_ack

  let drain w =
    let rec go acc =
      match next w with
      | Ok (Some s) -> go (s :: acc)
      | Ok None -> Ok (List.rev acc)
      | Error e -> Error e
    in
    go []
end
