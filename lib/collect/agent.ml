module Engine = Simnet.Engine
module Node = Simnet.Node
module Cpu = Simnet.Cpu
module Tcp = Simnet.Tcp
module Sim_time = Simnet.Sim_time
module Activity = Trace.Activity
module R = Telemetry.Registry

let program_name = "ptagent"

type overflow = Drop_oldest | Block

type config = {
  batch_records : int;
  flush_interval : Sim_time.span;
  max_spool_records : int;
  overflow : overflow;
  policy : Store.Policy.t;
  correlate : Core.Correlator.config option;
  partial : Core.Partial.config option;
  max_inflight_frames : int;
  cpu_per_record : Sim_time.span;
  cpu_per_frame : Sim_time.span;
  send_chunk : int;
  reconnect_delay : Sim_time.span;
}

let default_config =
  {
    batch_records = 256;
    flush_interval = Sim_time.ms 50;
    max_spool_records = 65536;
    overflow = Drop_oldest;
    policy = Store.Policy.none;
    correlate = None;
    partial = None;
    max_inflight_frames = 8;
    cpu_per_record = Sim_time.us 1;
    cpu_per_frame = Sim_time.us 100;
    send_chunk = 8192;
    reconnect_delay = Sim_time.ms 100;
  }

(* A cut batch spooled as an encoded frame body, resendable until acked. *)
type entry = {
  seq : int;
  payload : string;
  boundary : Trace.Boundary.t;  (* unresolved flows of a partially-correlated batch *)
  records : int;
  watermark : Sim_time.t;
  mutable sent : bool;  (* transmitted on the current connection *)
  mutable ever_sent : bool;  (* transmitted on any connection (retransmit marker) *)
  mutable nudged : bool;  (* already resent once to communicate an eviction gap *)
}

let drop_reasons = [ "agent_down"; "buffer_full"; "crash"; "evicted" ]

type t = {
  wire : Wire.t;
  node : Node.t;
  engine : Engine.t;
  collector : Simnet.Address.endpoint;
  cfg : config;
  hostname : string;
  mutable proc : Simnet.Proc.t;
  mutable sock : Tcp.socket option;
  mutable alive : bool;
  mutable epoch : int;
      (* bumped by crash/restart so continuations parked across the
         transition (CPU completions, socket callbacks) detect they
         belong to a dead incarnation and do nothing *)
  mutable batch : Trace.Arena.t;  (* open batch, append order = probe order *)
  encode_q : (Trace.Arena.t * int * Sim_time.t) Queue.t;
  mutable queued : int;  (* records in encode_q *)
  mutable encoding : bool;
  mutable spool : entry list;  (* oldest first; send order *)
  mutable spool_records : int;
  mutable next_seq : int;
  mutable last_acked : int;
  mutable sending : bool;
  mutable in_flight : entry option;
  mutable flush_timer : Engine.timer option;
  partial : Core.Partial.t option;
  (* Boundary flows already shipped: each unresolved cross-host flow is
     announced once, when it first enters the boundary, not re-listed in
     every later frame that touches the connection. *)
  shipped_boundary : (int * int * int * int, unit) Hashtbl.t;
  (* stats mirrors (exact per-run view; telemetry accumulates) *)
  mutable s_observed : int;
  mutable s_reduced : int;
  mutable s_partial_coalesced : int;
  mutable s_partial_local_flows : int;
  mutable s_partial_fallbacks : int;
  mutable s_boundary_entries : int;
  s_dropped : (string, int ref) Hashtbl.t;
  mutable s_frames : int;
  mutable s_retransmits : int;
  mutable s_bytes : int;
  mutable s_acked : int;
  mutable s_connections : int;
  (* telemetry handles *)
  c_observed : R.counter;
  c_reduced : R.counter;
  c_partial_coalesced : R.counter;
  c_partial_local_flows : R.counter;
  c_partial_fallbacks : R.counter;
  c_boundary_entries : R.counter;
  c_dropped : (string, R.counter) Hashtbl.t;
  c_frames : R.counter;
  c_retransmits : R.counter;
  c_bytes : R.counter;
  c_acked : R.counter;
  c_connections : R.counter;
  g_spool_peak : R.gauge;
}

let host t = t.hostname
let is_up t = t.alive
let batch_n t = Trace.Arena.length t.batch
let held t = batch_n t + t.queued + t.spool_records
let oldest_resendable t = match t.spool with e :: _ -> e.seq | [] -> t.next_seq

let drop t reason n =
  if n > 0 then begin
    (match Hashtbl.find_opt t.s_dropped reason with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.s_dropped reason (ref n));
    match Hashtbl.find_opt t.c_dropped reason with
    | Some c -> R.add c n
    | None -> ()
  end

let create ?(telemetry = R.default) ?(config = default_config) ~wire ~node ~collector () =
  if config.batch_records <= 0 then invalid_arg "Agent.create: batch_records";
  if config.max_spool_records <= 0 then invalid_arg "Agent.create: max_spool_records";
  if config.send_chunk <= 0 then invalid_arg "Agent.create: send_chunk";
  if (not (Store.Policy.is_none config.policy)) && config.correlate = None then
    invalid_arg "Agent.create: a reduction policy needs a correlate config";
  let hostname = Node.hostname node in
  let labels = [ ("host", hostname) ] in
  let counter help name = R.counter telemetry ~help ~labels name in
  let c_dropped = Hashtbl.create 8 in
  List.iter
    (fun reason ->
      Hashtbl.replace c_dropped reason
        (R.counter telemetry ~help:"Records lost at the collection agent"
           ~labels:(("host", hostname) :: [ ("reason", reason) ])
           "pt_collect_dropped_total"))
    drop_reasons;
  let s_dropped = Hashtbl.create 8 in
  List.iter (fun reason -> Hashtbl.replace s_dropped reason (ref 0)) drop_reasons;
  {
    wire;
    node;
    engine = Node.engine node;
    collector;
    cfg = config;
    hostname;
    proc = Node.spawn node ~program:program_name;
    sock = None;
    alive = true;
    epoch = 0;
    batch = Trace.Arena.create ~capacity:(max 1 config.batch_records) ~host:hostname ();
    encode_q = Queue.create ();
    queued = 0;
    encoding = false;
    spool = [];
    spool_records = 0;
    next_seq = 0;
    last_acked = -1;
    sending = false;
    in_flight = None;
    flush_timer = None;
    partial = Option.map Core.Partial.create config.partial;
    shipped_boundary = Hashtbl.create 64;
    s_observed = 0;
    s_reduced = 0;
    s_partial_coalesced = 0;
    s_partial_local_flows = 0;
    s_partial_fallbacks = 0;
    s_boundary_entries = 0;
    s_dropped;
    s_frames = 0;
    s_retransmits = 0;
    s_bytes = 0;
    s_acked = 0;
    s_connections = 0;
    c_observed = counter "Own-host records accepted from the probe" "pt_collect_observed_total";
    c_reduced = counter "Records removed by the agent-local policy" "pt_collect_reduced_total";
    c_partial_coalesced =
      counter "Rows merged into a local run head by the partial pass"
        "pt_hier_partial_coalesced_total";
    c_partial_local_flows =
      counter "Flows resolved inside the host by the partial pass"
        "pt_hier_partial_local_flows_total";
    c_partial_fallbacks =
      counter "Batches shipped raw because the partial pass exceeded its budget"
        "pt_hier_partial_fallbacks_total";
    c_boundary_entries =
      counter "Unresolved-boundary table entries shipped" "pt_hier_boundary_entries_total";
    c_dropped;
    c_frames = counter "Frame transmissions (including retransmits)" "pt_collect_frames_shipped_total";
    c_retransmits = counter "Frames retransmitted after reconnect" "pt_collect_retransmits_total";
    c_bytes = counter "Wire bytes shipped to the collector" "pt_collect_bytes_shipped_total";
    c_acked = counter "Records acknowledged by the collector" "pt_collect_acked_records_total";
    c_connections = counter "Connections dialled to the collector" "pt_collect_connections_total";
    g_spool_peak =
      R.gauge telemetry ~help:"Peak records buffered at the agent (batch + encode queue + spool)"
        ~labels "pt_collect_spool_peak_records";
  }

(* Frames written to the socket but not yet acknowledged. The send
   window bounds this: the simulated socket buffer is unbounded, so
   without application-level flow control the whole spool would be
   written eagerly and backpressure (eviction) could never engage. *)
let inflight_frames t = List.length (List.filter (fun e -> e.sent) t.spool)

let rec pump t =
  match t.sock with
  | Some sock
    when t.alive && (not t.sending) && inflight_frames t < t.cfg.max_inflight_frames -> (
      match List.find_opt (fun e -> not e.sent) t.spool with
      | None -> ()
      | Some e ->
          t.sending <- true;
          t.in_flight <- Some e;
          if e.ever_sent then begin
            t.s_retransmits <- t.s_retransmits + 1;
            R.incr t.c_retransmits
          end;
          e.sent <- true;
          e.ever_sent <- true;
          let bytes =
            Frame.encode_with_boundary ~boundary:e.boundary ~seq:e.seq
              ~oldest:(oldest_resendable t) ~host:t.hostname ~watermark:e.watermark
              ~payload:e.payload
          in
          t.s_frames <- t.s_frames + 1;
          R.incr t.c_frames;
          t.s_bytes <- t.s_bytes + String.length bytes;
          R.add t.c_bytes (String.length bytes);
          let epoch = t.epoch in
          Wire.send t.wire sock ~proc:t.proc ~chunk:t.cfg.send_chunk bytes ~k:(fun () ->
              if t.epoch = epoch then begin
                t.sending <- false;
                t.in_flight <- None;
                ensure_horizon t;
                pump t
              end))
  | _ -> ()

(* An eviction can open a sequence gap underneath a frame that was
   transmitted earlier, whose [oldest] header therefore predates the
   gap: once everything below the gap is acked, the collector would wait
   forever for the evicted seqs. Resend the stranded head once — the
   retransmit carries the fresh horizon and unblocks delivery. *)
and ensure_horizon t =
  match t.spool with
  | e :: _
    when e.sent && (not e.nudged)
         && (match t.in_flight with Some f -> not (f == e) | None -> true)
         && e.seq > t.last_acked + 1 ->
      e.nudged <- true;
      e.sent <- false;
      pump t
  | _ -> ()

let handle_ack t seq =
  if seq > t.last_acked then begin
    t.last_acked <- seq;
    let acked, kept = List.partition (fun e -> e.seq <= seq) t.spool in
    t.spool <- kept;
    List.iter
      (fun e ->
        t.spool_records <- t.spool_records - e.records;
        t.s_acked <- t.s_acked + e.records;
        R.add t.c_acked e.records)
      acked;
    ensure_horizon t;
    (* the ack freed send-window slots *)
    pump t
  end

let rec connect t =
  if t.alive && t.sock = None then begin
    let epoch = t.epoch in
    Tcp.connect (Wire.stack t.wire) ~node:t.node ~proc:t.proc ~dst:t.collector
      ~k:(fun sock ->
        if t.epoch <> epoch || not t.alive then Tcp.close (Wire.stack t.wire) sock
        else begin
          t.sock <- Some sock;
          t.s_connections <- t.s_connections + 1;
          R.incr t.c_connections;
          (* resend-from-last-ack: everything still spooled goes again *)
          List.iter (fun e -> e.sent <- false) t.spool;
          recv_loop t sock epoch (Frame.Ack_decoder.create ());
          pump t
        end)
  end

and recv_loop t sock epoch dec =
  Wire.recv t.wire sock ~proc:t.proc
    ~k:(fun data ->
      if t.epoch <> epoch then ()
      else if String.equal data "" then begin
        (* collector went away: redial after the back-off *)
        t.sock <- None;
        t.sending <- false;
        t.in_flight <- None;
        if t.alive then
          ignore
            (Engine.schedule_after t.engine ~delay:t.cfg.reconnect_delay (fun () ->
                 if t.epoch = epoch then connect t))
      end
      else begin
        Frame.Ack_decoder.feed dec data;
        (match Frame.Ack_decoder.drain dec with
        | Ok seqs -> List.iter (handle_ack t) seqs
        | Error _ ->
            (* a corrupt ack stream cannot be trusted; drop the
               connection and let the redial resynchronise *)
            Tcp.close (Wire.stack t.wire) sock);
        if t.epoch = epoch then recv_loop t sock epoch dec
      end)
    ()

let rec kick_encode t =
  if t.alive && (not t.encoding) && not (Queue.is_empty t.encode_q) then begin
    t.encoding <- true;
    let arena, n, watermark = Queue.peek t.encode_q in
    let kept =
      if Store.Policy.is_none t.cfg.policy then arena
      else
        match t.cfg.correlate with
        | None -> assert false (* rejected at create *)
        | Some correlate ->
            (* private registry: the throwaway attribution pass must not
               pollute the process self-profile with store metrics *)
            let collection, _ =
              Store.Reduce.apply ~telemetry:(R.create ()) ~jobs:1 ~correlate
                ~policy:t.cfg.policy
                [ Trace.Arena.to_log arena ]
            in
            (match Trace.Arena.of_collection collection with
            | [ a ] -> a
            | [] -> Trace.Arena.create ~host:t.hostname ()
            | _ -> assert false (* the policy reduces one log to one log *))
    in
    (* partial correlation runs after the policy step: it only removes
       what the downstream correlator would remove or merge itself *)
    let kept, boundary =
      match t.partial with
      | None -> (kept, Trace.Boundary.empty)
      | Some p ->
          let r = Core.Partial.reduce p kept in
          if r.Core.Partial.fallback then begin
            t.s_partial_fallbacks <- t.s_partial_fallbacks + 1;
            R.incr t.c_partial_fallbacks
          end
          else begin
            t.s_partial_coalesced <- t.s_partial_coalesced + r.Core.Partial.rows_coalesced;
            R.add t.c_partial_coalesced r.Core.Partial.rows_coalesced;
            t.s_partial_local_flows <- t.s_partial_local_flows + r.Core.Partial.local_flows;
            R.add t.c_partial_local_flows r.Core.Partial.local_flows
          end;
          (* Announce each boundary flow once, when it first appears —
             re-listing every open connection in every frame would eat
             the reduction the partial pass just bought. *)
          let fresh =
            List.filter
              (fun (e : Trace.Boundary.entry) ->
                let key =
                  (e.Trace.Boundary.src_ip, e.Trace.Boundary.src_port,
                   e.Trace.Boundary.dst_ip, e.Trace.Boundary.dst_port)
                in
                if Hashtbl.mem t.shipped_boundary key then false
                else begin
                  Hashtbl.replace t.shipped_boundary key ();
                  true
                end)
              r.Core.Partial.boundary
          in
          let b = List.length fresh in
          t.s_boundary_entries <- t.s_boundary_entries + b;
          R.add t.c_boundary_entries b;
          (r.Core.Partial.arena, fresh)
    in
    let kept_n = Trace.Arena.length kept in
    let payload = Frame.encode_payload_arena kept in
    let work =
      Sim_time.span_add t.cfg.cpu_per_frame
        (Sim_time.span_scale (float_of_int n) t.cfg.cpu_per_record)
    in
    let epoch = t.epoch in
    Cpu.submit (Node.cpu t.node) ~work (fun () ->
        if t.epoch = epoch then begin
          t.encoding <- false;
          ignore (Queue.pop t.encode_q);
          t.queued <- t.queued - n;
          if n > kept_n then begin
            t.s_reduced <- t.s_reduced + (n - kept_n);
            R.add t.c_reduced (n - kept_n)
          end;
          let e =
            {
              seq = t.next_seq;
              payload;
              boundary;
              records = kept_n;
              watermark;
              sent = false;
              ever_sent = false;
              nudged = false;
            }
          in
          t.next_seq <- t.next_seq + 1;
          t.spool <- t.spool @ [ e ];
          t.spool_records <- t.spool_records + kept_n;
          pump t;
          kick_encode t
        end)
  end

let cut t =
  let n = batch_n t in
  if n > 0 then begin
    (match t.flush_timer with
    | Some tm ->
        Engine.cancel t.engine tm;
        t.flush_timer <- None
    | None -> ());
    let arena = t.batch in
    (* the probe feeds in host-local time order, so the newest record is
       the last row appended *)
    let watermark = Sim_time.of_ns (Trace.Arena.ts arena (n - 1)) in
    t.batch <- Trace.Arena.create ~capacity:(max 1 t.cfg.batch_records) ~host:t.hostname ();
    Queue.push (arena, n, watermark) t.encode_q;
    t.queued <- t.queued + n;
    kick_encode t
  end

let arm_flush t =
  if t.flush_timer = None then
    t.flush_timer <-
      Some
        (Engine.schedule_after t.engine ~delay:t.cfg.flush_interval (fun () ->
             t.flush_timer <- None;
             if t.alive then cut t))

(* Admit under Drop_oldest by evicting never-transmitted frames. Send
   order equals spool order, so the unsent frames are a contiguous
   suffix behind the sent-but-unacked prefix; evicting the suffix's
   oldest member keeps every remaining range contiguous, and frames the
   collector may already hold are never double-counted as dropped. *)
let evict_for_room t =
  let rec evict_first_unsent acc = function
    | e :: rest when e.sent -> evict_first_unsent (e :: acc) rest
    | e :: rest ->
        t.spool <- List.rev_append acc rest;
        t.spool_records <- t.spool_records - e.records;
        drop t "evicted" e.records;
        true
    | [] -> false
  in
  let continue = ref true in
  while !continue && held t >= t.cfg.max_spool_records do
    if not (evict_first_unsent [] t.spool) then continue := false
  done

let observe t (a : Activity.t) =
  if String.equal a.Activity.context.host t.hostname then begin
    t.s_observed <- t.s_observed + 1;
    R.incr t.c_observed;
    if not t.alive then drop t "agent_down" 1
    else begin
      if held t >= t.cfg.max_spool_records then begin
        match t.cfg.overflow with
        | Drop_oldest -> evict_for_room t
        | Block -> ()
      end;
      if held t >= t.cfg.max_spool_records then drop t "buffer_full" 1
      else begin
        Trace.Arena.append_activity t.batch a;
        R.set_max t.g_spool_peak (float_of_int (held t));
        if batch_n t >= t.cfg.batch_records then cut t else arm_flush t
      end
    end
  end

let attach t probe =
  Trace.Probe.exempt_program probe program_name;
  Trace.Probe.add_listener probe (observe t)

let start t = connect t
let flush t = if t.alive then cut t

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.epoch <- t.epoch + 1;
    (match t.sock with Some s -> Tcp.close (Wire.stack t.wire) s | None -> ());
    t.sock <- None;
    t.sending <- false;
    t.in_flight <- None;
    t.encoding <- false;
    (match t.flush_timer with
    | Some tm ->
        Engine.cancel t.engine tm;
        t.flush_timer <- None
    | None -> ());
    (* the open batch and encode queue live in process memory: lost *)
    drop t "crash" (batch_n t + t.queued);
    Trace.Arena.clear t.batch;
    Queue.clear t.encode_q;
    t.queued <- 0
    (* the spool is the agent's disk frame store: it survives *)
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.epoch <- t.epoch + 1;
    t.proc <- Node.spawn t.node ~program:program_name;
    connect t
  end

type stats = {
  observed : int;
  reduced : int;
  partial_coalesced : int;
  partial_local_flows : int;
  partial_fallbacks : int;
  boundary_entries : int;
  dropped : (string * int) list;
  frames_shipped : int;
  retransmits : int;
  bytes_shipped : int;
  acked_records : int;
  spooled_records : int;
  queued_records : int;
  connections : int;
}

let stats t =
  {
    observed = t.s_observed;
    reduced = t.s_reduced;
    partial_coalesced = t.s_partial_coalesced;
    partial_local_flows = t.s_partial_local_flows;
    partial_fallbacks = t.s_partial_fallbacks;
    boundary_entries = t.s_boundary_entries;
    dropped =
      Hashtbl.fold (fun reason r acc -> (reason, !r) :: acc) t.s_dropped []
      |> List.sort compare;
    frames_shipped = t.s_frames;
    retransmits = t.s_retransmits;
    bytes_shipped = t.s_bytes;
    acked_records = t.s_acked;
    spooled_records = t.spool_records;
    queued_records = batch_n t + t.queued;
    connections = t.s_connections;
  }

let dropped_total s = List.fold_left (fun acc (_, n) -> acc + n) 0 s.dropped
