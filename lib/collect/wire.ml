module Tcp = Simnet.Tcp

(* Per-direction byte fifo: contents pushed by the sender, popped by the
   receiver in the amounts Tcp.recv reports. Tcp is reliable and
   in-order, so the fifo and the simulated stream stay in lockstep. *)
type fifo = { mutable buf : Bytes.t; mutable start : int; mutable stop : int }

let fifo_create () = { buf = Bytes.create 4096; start = 0; stop = 0 }

let fifo_push f s =
  let n = String.length s in
  if f.stop + n > Bytes.length f.buf then begin
    let live = f.stop - f.start in
    Bytes.blit f.buf f.start f.buf 0 live;
    f.start <- 0;
    f.stop <- live;
    if live + n > Bytes.length f.buf then begin
      let nb = Bytes.create (max (live + n) (2 * Bytes.length f.buf)) in
      Bytes.blit f.buf 0 nb 0 live;
      f.buf <- nb
    end
  end;
  Bytes.blit_string s 0 f.buf f.stop n;
  f.stop <- f.stop + n

let fifo_pop f n =
  assert (n <= f.stop - f.start);
  let s = Bytes.sub_string f.buf f.start n in
  f.start <- f.start + n;
  s

type t = {
  stack : Tcp.stack;
  streams : (int * bool, fifo) Hashtbl.t;  (* (conn, client-to-server?) *)
}

let create stack = { stack; streams = Hashtbl.create 64 }
let stack t = t.stack

let channel t sock ~sending =
  let c2s = if sending then Tcp.is_client_side sock else not (Tcp.is_client_side sock) in
  let key = (Tcp.conn_id sock, c2s) in
  match Hashtbl.find_opt t.streams key with
  | Some f -> f
  | None ->
      let f = fifo_create () in
      Hashtbl.replace t.streams key f;
      f

let send t sock ~proc ?(chunk = 8192) bytes ~k =
  if chunk <= 0 then invalid_arg "Wire.send: chunk must be positive";
  let len = String.length bytes in
  if len = 0 then k ()
  else begin
    fifo_push (channel t sock ~sending:true) bytes;
    let rec loop remaining =
      if remaining <= 0 then k ()
      else
        let n = min chunk remaining in
        Tcp.send t.stack sock ~proc ~size:n ~k:(fun () -> loop (remaining - n))
    in
    loop len
  end

let recv t sock ~proc ?(max = 8192) ~k () =
  if max <= 0 then invalid_arg "Wire.recv: max must be positive";
  Tcp.recv t.stack sock ~proc ~max ~k:(fun n ->
      if n = 0 then k "" else k (fifo_pop (channel t sock ~sending:false) n))
