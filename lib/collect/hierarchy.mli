(** The hierarchical collection plane: agents -> shard collectors -> root.

    {!Deploy} funnels every agent of one deployment into one collector
    and one online correlator — fine for three hosts, hopeless for a
    cluster. This plane is the scale-out shape (§6 outlook, realised over
    the {!Tiersim.Scenario} cluster preset):

    - {e level 0} — per-host agents run the bounded partial-correlation
      pass ({!Core.Partial}): prefilter, run coalescing and same-host
      flow resolution before framing. Frames ship reduced rows plus a
      {!Trace.Boundary} table of unresolved cross-host flows.
    - {e level 1} — each replica gets its own collector node (inside the
      replica's engine), but collectors feed {e shard} correlators: shard
      [k] owns the replicas [i] with [i mod shards = k] and runs one
      {!Core.Online} over their partial feeds only. Entry connections
      never cross replicas, so every causal path completes inside its
      shard.
    - {e level 2} — the root ingests each shard's finished paths as one
      PTH1 message ({!Core.Hierarchy.encode_paths}) and splices them into
      the canonical global sequence. No component ever sees the full raw
      feed; the root sees no raw records at all.

    Usage: [create] the plane from the cluster spec, pass {!install} as
    [Scenario.run_cluster]'s [before_replica] hook, then {!finish} after
    the cluster run for the merged result and the per-level feed-volume
    accounting. *)

type config = {
  shards : int;  (** Level-1 shard count; capped at the replica count. *)
  agent : Agent.config;
      (** Per-host agent knobs. Its [partial] field is overridden by the
          plane (see [coalesce]/[max_flows]); set the rest freely. *)
  coalesce : bool;  (** Run-coalescing in the partial pass. *)
  max_flows : int;  (** Partial-pass flow budget (raw fallback past it). *)
  port : int;  (** Every replica's collector listens on this port. *)
  window : Simnet.Sim_time.span option;  (** Shard correlator window. *)
  straggler_timeout : Simnet.Sim_time.span option;
  max_buffered : int option;
}

val default_config : config
(** 4 shards, default agent config, coalescing on, 4096-flow budget,
    port 7441, correlator defaults. *)

type t

val create : ?telemetry:Telemetry.Registry.t -> ?config:config -> Tiersim.Scenario.cluster -> t
(** Build the shard correlators up front from the cluster spec alone
    (entry partition and hostnames come from the
    {!Tiersim.Service.replica_entry_endpoint} addressing scheme).
    @raise Invalid_argument on a non-positive shard count. *)

val install : t -> int -> Tiersim.Service.t -> unit
(** The [before_replica] hook: create replica [i]'s collector node
    ([collect<i+1>], inside the replica's own engine), point it at shard
    [i mod shards], and start partial-correlating agents on the
    replica's three server nodes. Wires [Agent_crash] faults exactly
    like {!Deploy.install}. *)

val shard_of_replica : t -> int -> int

val shard_online : t -> int -> Core.Online.t
(** Shard [k]'s correlator (for inspection; owned by the plane). *)

val collector : t -> int -> Collector.t option
(** Replica [i]'s collector, once {!install} ran for it. *)

val agents : t -> Agent.t list
(** Every installed agent, replica order. *)

type shard_report = {
  shard_id : int;
  shard_replicas : int list;
  paths_finished : int;
  paths_deformed : int;
  ingest_records : int;  (** Reduced rows delivered into this shard. *)
  shard_boundary_entries : int;
  output_bytes : int;  (** The shard's PTH1 message to the root. *)
}

type report = {
  finished : Core.Cag.t list;  (** Canonical global sequence (root splice). *)
  deformed : Core.Cag.t list;
  digest : string;
      (** {!Core.Hierarchy.digest} of the splice — compare against
          [Core.Hierarchy.digest_result] of a monolithic run over the
          same feed. *)
  shard_reports : shard_report list;
  agent_observed : int;
  agent_reduced : int;
  partial_coalesced : int;
  partial_local_flows : int;
  partial_fallbacks : int;
  boundary_entries : int;  (** Shipped by agents, summed over replicas. *)
  agent_bytes_shipped : int;  (** Level 0 -> 1 wire bytes, all replicas. *)
  delivered_records : int;  (** Level-1 ingest, all shards. *)
  root_ingest_bytes : int;  (** Level 1 -> 2: sum of PTH1 message sizes. *)
}

val finish : t -> report
(** Drain every shard ({!Core.Online.finish}), encode each shard's paths,
    decode them at the root (the root genuinely ingests only PTH1 bytes),
    splice, digest, and assemble the accounting. Idempotent — the first
    call's report is cached. *)
