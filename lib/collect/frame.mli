(** The PTC1 collection wire format.

    Agents ship activity batches to the collector as sequence-numbered
    frames over a TCP byte stream. Each frame is self-delimiting:

    {v
    magic     "PTC1"  (4 bytes)
    seq       uvarint  frame sequence number, per host, starting at 0
    oldest    uvarint  lowest seq the agent can still (re)transmit; every
                       missing seq below it was dropped at the agent and
                       will never arrive, so the collector may skip it
    host      uvarint length + bytes
    watermark uvarint  host-local clock (ns) of the newest record observed
                       when the batch was cut
    plen      uvarint  payload length in bytes
    payload   PTB1 bytes ({!Trace.Binary_format}) holding exactly one log
              for [host] (possibly empty)
    blen      uvarint  boundary-table length in bytes (0 when absent)
    boundary  PTBT bytes ({!Trace.Boundary}) — the unresolved cross-host
              flows of a partially-correlated batch
    v}

    [oldest] is stamped at {e transmission} time, not encode time, so a
    retransmitted frame always carries the agent's current drop horizon.
    The reverse direction carries cumulative acknowledgements:

    {v
    magic "PTA1" (4 bytes)
    seq   uvarint  every frame with seq <= this has been delivered
    v}

    Both directions decode incrementally: the decoders accept bytes in
    arbitrary chunks (TCP coalescing splits frames anywhere, including
    mid-varint) and distinguish "need more bytes" from corruption. *)

type t = {
  seq : int;
  oldest : int;
  host : string;
  watermark : Simnet.Sim_time.t;  (** Host-local clock of the batch cut. *)
  arena : Trace.Arena.t;
      (** Decoded payload rows in file order — the native representation;
          records are materialised only where a consumer wants them. *)
  boundary : Trace.Boundary.t;
      (** Unresolved cross-host flows when the agent ran its partial
          correlation pass; empty otherwise. *)
}

val records : t -> int
(** Row count of the payload. *)

val activities : t -> Trace.Activity.t list
(** The payload materialised as records, in payload order (tests and
    record-level consumers; the hot path iterates [arena] directly). *)

val magic : string
(** ["PTC1"]. *)

val ack_magic : string
(** ["PTA1"]. *)

val encode_payload_arena : Trace.Arena.t -> string
(** The PTB1 payload bytes for one batch (what an agent spools) —
    {!Trace.Binary_format.encode_native} over the single host arena. *)

val encode_payload : host:string -> Trace.Activity.t list -> string
(** Record-list convenience over {!encode_payload_arena} (sorts into
    {!Trace.Log} order first, like the store does). *)

val encode :
  seq:int -> oldest:int -> host:string -> watermark:Simnet.Sim_time.t -> payload:string ->
  string
(** Wrap a spooled payload into one wire frame with an empty boundary
    table. [oldest] is the agent's current resend horizon.
    @raise Invalid_argument on negative [seq]/[oldest]. *)

val encode_with_boundary :
  boundary:Trace.Boundary.t ->
  seq:int -> oldest:int -> host:string -> watermark:Simnet.Sim_time.t -> payload:string ->
  string
(** {!encode} with the batch's unresolved-boundary table attached (the
    partially-correlating agent's transmit path). *)

val encode_ack : int -> string
(** One cumulative-ack mini-frame. *)

(** Incremental frame decoder. Feed it raw stream bytes as they arrive;
    [next] yields completed frames. Errors are sticky: a corrupt stream
    cannot be resynchronised and every later [next] returns the same
    error. *)
module Decoder : sig
  type frame := t
  type t

  val create : unit -> t

  val feed : t -> string -> unit

  val next : t -> (frame option, string) result
  (** [Ok None] means a frame is incomplete — feed more bytes. Errors
      name the absolute stream offset of the corruption. *)

  val drain : t -> (frame list, string) result
  (** Every complete frame currently buffered (frames decoded before the
      corruption point are lost when an error is returned). *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by a completed frame. *)
end

(** Incremental decoder for the acknowledgement direction. *)
module Ack_decoder : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit
  val next : t -> (int option, string) result
  val drain : t -> (int list, string) result
end
