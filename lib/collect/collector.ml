module Engine = Simnet.Engine
module Node = Simnet.Node
module Cpu = Simnet.Cpu
module Tcp = Simnet.Tcp
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address
module R = Telemetry.Registry

type host_state = {
  mutable expected : int;  (* next seq to deliver, in order *)
  pending : (int, Frame.t) Hashtbl.t;  (* arrived out of order *)
  mutable watermark : Sim_time.t;
  mutable delivered_frames : int;
  mutable delivered_records : int;
  mutable duplicate_frames : int;
  mutable skipped_frames : int;
  c_frames : R.counter;
  c_records : R.counter;
  c_duplicates : R.counter;
  c_skipped : R.counter;
  g_watermark : R.gauge;
}

(* Nameable default so [deliver] can skip materialising records when only
   the arena sink (or nobody) is listening. *)
let default_on_activity (_ : Trace.Activity.t) = ()

type t = {
  wire : Wire.t;
  node : Node.t;
  engine : Engine.t;
  port : int;
  recv_chunk : int;
  cpu_per_frame : Sim_time.span;
  cpu_per_record : Sim_time.span;
  on_activity : Trace.Activity.t -> unit;
  on_arena : Trace.Arena.t -> unit;
  hosts : (string, host_state) Hashtbl.t;
  mutable decode_errors : int;
  mutable boundary_entries : int;
  telemetry : R.t;
  h_lag : Telemetry.Histogram.t;
  c_decode_errors : R.counter;
  c_boundary_entries : R.counter;
}

let host_state t hostname =
  match Hashtbl.find_opt t.hosts hostname with
  | Some s -> s
  | None ->
      let labels = [ ("host", hostname) ] in
      let counter help name = R.counter t.telemetry ~help ~labels name in
      let s =
        {
          expected = 0;
          pending = Hashtbl.create 16;
          watermark = Sim_time.zero;
          delivered_frames = 0;
          delivered_records = 0;
          duplicate_frames = 0;
          skipped_frames = 0;
          c_frames = counter "Frames delivered in order to the sink" "pt_collect_delivered_frames_total";
          c_records = counter "Records delivered to the sink" "pt_collect_delivered_records_total";
          c_duplicates = counter "Duplicate frames discarded (retransmits)" "pt_collect_duplicate_frames_total";
          c_skipped = counter "Frame seqs skipped as permanent agent-side losses" "pt_collect_skipped_frames_total";
          g_watermark =
            R.gauge t.telemetry ~help:"Newest delivered host-local watermark (seconds)"
              ~labels "pt_collect_watermark_seconds";
        }
      in
      Hashtbl.replace t.hosts hostname s;
      s

let deliver t s (f : Frame.t) =
  s.delivered_frames <- s.delivered_frames + 1;
  R.incr s.c_frames;
  let arena = f.Frame.arena in
  let n = Trace.Arena.length arena in
  s.delivered_records <- s.delivered_records + n;
  R.add s.c_records n;
  (match f.Frame.boundary with
  | [] -> ()
  | b ->
      let nb = List.length b in
      t.boundary_entries <- t.boundary_entries + nb;
      R.add t.c_boundary_entries nb);
  if Sim_time.(f.Frame.watermark > s.watermark) then begin
    s.watermark <- f.Frame.watermark;
    R.set s.g_watermark (Sim_time.to_float_s f.Frame.watermark)
  end;
  let now = Engine.now t.engine in
  for i = 0 to n - 1 do
    (* delivery lag vs the probe's stamp; clamped at zero because the
       stamp is a skewed host-local clock *)
    let ts = Sim_time.of_ns (Trace.Arena.ts arena i) in
    let lag = Sim_time.span_to_float_s (Sim_time.diff now ts) in
    Telemetry.Histogram.observe t.h_lag (Float.max 0. lag)
  done;
  (* Records are materialised only when someone asked for them; the
     native sink receives the frame's arena as-is. *)
  if t.on_activity != default_on_activity then Trace.Arena.iter arena t.on_activity;
  t.on_arena arena

let handle_frame t (f : Frame.t) =
  let s = host_state t f.Frame.host in
  (* [oldest] is the agent's resend horizon: anything missing below it
     was evicted at the agent and will never arrive *)
  if f.Frame.oldest > s.expected then begin
    (* The horizon jumped past a gap.  Frames stashed in [pending] below
       the new horizon DID arrive — deliver them in seq order before
       advancing, and count only the genuinely-missing seqs as skipped. *)
    for seq = s.expected to f.Frame.oldest - 1 do
      match Hashtbl.find_opt s.pending seq with
      | Some g ->
          Hashtbl.remove s.pending seq;
          deliver t s g
      | None ->
          s.skipped_frames <- s.skipped_frames + 1;
          R.incr s.c_skipped
    done;
    s.expected <- f.Frame.oldest
  end;
  if f.Frame.seq < s.expected || Hashtbl.mem s.pending f.Frame.seq then begin
    s.duplicate_frames <- s.duplicate_frames + 1;
    R.incr s.c_duplicates
  end
  else Hashtbl.replace s.pending f.Frame.seq f;
  (* flush even on a duplicate: a retransmit's fresh [oldest] may have
     advanced [expected] past a gap that stashed frames were waiting on *)
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt s.pending s.expected with
    | Some g ->
        Hashtbl.remove s.pending s.expected;
        s.expected <- s.expected + 1;
        deliver t s g
    | None -> continue := false
  done;
  s

let serve t sock =
  let proc = Node.spawn t.node ~program:"ptcollect" in
  let dec = Frame.Decoder.create () in
  (* cumulative acks, per connection: re-acking on a fresh connection
     tells a restarted agent where to resume *)
  let last_acked = Hashtbl.create 4 in
  let ack_host hostname (s : host_state) k =
    let cum = s.expected - 1 in
    let prev = Option.value (Hashtbl.find_opt last_acked hostname) ~default:(-1) in
    if cum > prev then begin
      Hashtbl.replace last_acked hostname cum;
      Wire.send t.wire sock ~proc (Frame.encode_ack cum) ~k
    end
    else k ()
  in
  let rec loop () =
    Wire.recv t.wire sock ~proc ~max:t.recv_chunk
      ~k:(fun data ->
        if String.equal data "" then Tcp.close (Wire.stack t.wire) sock
        else begin
          Frame.Decoder.feed dec data;
          match Frame.Decoder.drain dec with
          | Error _ ->
              t.decode_errors <- t.decode_errors + 1;
              R.incr t.c_decode_errors;
              Tcp.close (Wire.stack t.wire) sock
          | Ok [] -> loop ()
          | Ok frames ->
              let work =
                List.fold_left
                  (fun acc (f : Frame.t) ->
                    Sim_time.span_add acc
                      (Sim_time.span_add t.cpu_per_frame
                         (Sim_time.span_scale
                            (float_of_int (Frame.records f))
                            t.cpu_per_record)))
                  Sim_time.span_zero frames
              in
              Cpu.submit (Node.cpu t.node) ~work (fun () ->
                  let touched = Hashtbl.create 4 in
                  List.iter
                    (fun (f : Frame.t) ->
                      let s = handle_frame t f in
                      Hashtbl.replace touched f.Frame.host s)
                    frames;
                  (* one cumulative ack per touched host, then read on *)
                  let rec ack_all = function
                    | [] -> loop ()
                    | (hostname, s) :: rest ->
                        ack_host hostname s (fun () -> ack_all rest)
                  in
                  ack_all (Hashtbl.fold (fun h s acc -> (h, s) :: acc) touched []))
        end)
      ()
  in
  loop ()

let create ?(telemetry = R.default) ?(recv_chunk = 8192) ?(cpu_per_frame = Sim_time.us 50)
    ?(cpu_per_record = Sim_time.ns 500) ?(on_activity = default_on_activity)
    ?(on_arena = fun _ -> ()) ~wire ~node ~port () =
  if recv_chunk <= 0 then invalid_arg "Collector.create: recv_chunk";
  let t =
    {
      wire;
      node;
      engine = Node.engine node;
      port;
      recv_chunk;
      cpu_per_frame;
      cpu_per_record;
      on_activity;
      on_arena;
      hosts = Hashtbl.create 8;
      decode_errors = 0;
      boundary_entries = 0;
      telemetry;
      h_lag =
        R.histogram telemetry
          ~help:"Record delivery lag at the collector vs the probe timestamp"
          "pt_collect_delivery_lag_seconds";
      c_decode_errors =
        R.counter telemetry ~help:"Connections dropped on a corrupt frame stream"
          "pt_collect_decode_errors_total";
      c_boundary_entries =
        R.counter telemetry
          ~help:"Unresolved-boundary entries delivered alongside reduced frames"
          "pt_collect_boundary_entries_total";
    }
  in
  Tcp.listen (Wire.stack wire) node ~port ~accept:(fun sock -> serve t sock);
  t

let endpoint t = Address.endpoint (Node.ip t.node) t.port

type host_stats = {
  delivered_frames : int;
  delivered_records : int;
  duplicate_frames : int;
  skipped_frames : int;
  watermark : Sim_time.t;
  next_seq : int;
}

let stats t =
  Hashtbl.fold
    (fun hostname (s : host_state) acc ->
      ( hostname,
        {
          delivered_frames = s.delivered_frames;
          delivered_records = s.delivered_records;
          duplicate_frames = s.duplicate_frames;
          skipped_frames = s.skipped_frames;
          watermark = s.watermark;
          next_seq = s.expected;
        } )
      :: acc)
    t.hosts []
  |> List.sort compare

let delivered_records t =
  Hashtbl.fold (fun _ (s : host_state) acc -> acc + s.delivered_records) t.hosts 0

let decode_errors t = t.decode_errors
let boundary_entries t = t.boundary_entries
