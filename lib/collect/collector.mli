(** The central collection endpoint.

    One collector node accepts agent connections, incrementally decodes
    PTC1 frames out of the byte stream (tolerating arbitrary TCP
    segmentation), reorders each host's frames by sequence number,
    deduplicates retransmits, advances per-host watermarks and hands the
    contained activities — in per-host order — to a sink, typically
    {!Core.Online.observe}. It acknowledges cumulatively, so agents can
    trim their spools and resume from the last ack after a crash.

    A frame's [oldest] header is the agent's resend horizon: sequence
    numbers below it that were never received are permanent losses
    (agent-side eviction), so the collector skips them instead of
    stalling the host's in-order delivery. *)

type t

val create :
  ?telemetry:Telemetry.Registry.t ->
  ?recv_chunk:int ->
  ?cpu_per_frame:Simnet.Sim_time.span ->
  ?cpu_per_record:Simnet.Sim_time.span ->
  ?on_activity:(Trace.Activity.t -> unit) ->
  ?on_arena:(Trace.Arena.t -> unit) ->
  wire:Wire.t ->
  node:Simnet.Node.t ->
  port:int ->
  unit ->
  t
(** Listen on [node]:[port]. Each delivered frame costs
    [cpu_per_frame + records * cpu_per_record] of collector CPU before
    its activities reach the sinks (defaults 50 us + 500 ns).
    [on_arena] receives each delivered frame's payload in the native
    representation (the zero-materialisation path — feed it to
    {!Core.Online.observe_arena} or {!Store.Writer.ingest_native});
    [on_activity], when supplied, receives the same rows materialised as
    records. [recv_chunk] is the recv-syscall buffer (default 8192). *)

val endpoint : t -> Simnet.Address.endpoint

type host_stats = {
  delivered_frames : int;
  delivered_records : int;
  duplicate_frames : int;  (** Retransmits discarded by dedup. *)
  skipped_frames : int;  (** Sequence numbers skipped as permanent agent-side losses. *)
  watermark : Simnet.Sim_time.t;  (** Newest host-local watermark delivered. *)
  next_seq : int;  (** Next frame expected from this host. *)
}

val stats : t -> (string * host_stats) list
(** Per-host delivery state, sorted by hostname. *)

val delivered_records : t -> int
(** Total records handed to the sink, all hosts. *)

val decode_errors : t -> int
(** Connections dropped on a corrupt frame stream. *)

val boundary_entries : t -> int
(** Unresolved-boundary entries ({!Trace.Boundary}) delivered alongside
    partially-correlated frames, all hosts — the level-0 reduction's
    cross-host residue this collector's shard must still resolve. *)
