(** Wire the collection plane into a {!Tiersim.Service} deployment.

    [install] adds a collector node ([collect1], off the traced set) to
    the service's network, starts one {!Agent} per traced server node
    (web, app, db), exempts the agents' processes from the probe, and
    feeds the collector's in-order delivery into a {!Core.Online}
    correlation — so a single simulated run covers workload, tracing,
    shipping and online correlation, all sharing one virtual clock and
    competing for the same NICs and CPUs.

    [Tiersim.Faults.Agent_crash] entries in the service's fault list are
    translated into scheduled {!Agent.crash} / {!Agent.restart} calls.

    Call {!finish} after the simulation drains to close the online run
    (resolving any still-open windows). *)

type config = {
  batch_records : int;
  flush_interval : Simnet.Sim_time.span;
  max_spool_records : int;
  overflow : Agent.overflow;
  policy : Store.Policy.t;  (** Agent-local reduction applied before shipping. *)
  port : int;  (** Collector listen port. *)
  window : Simnet.Sim_time.span option;  (** Correlation window (None: default). *)
  straggler_timeout : Simnet.Sim_time.span option;
  max_buffered : int option;
}

val default_config : config
(** Agent defaults, no policy, port 7441, no straggler/backpressure
    limits. *)

type t

val install :
  ?telemetry:Telemetry.Registry.t ->
  ?config:config ->
  ?writer:Store.Writer.t ->
  ?on_path:(Core.Cag.t -> unit) ->
  Tiersim.Service.t ->
  t
(** Must run before the simulation starts (the agents dial during the
    run's first instants). [writer] tees every delivered record into a
    trace store via {!Core.Online}'s [on_activity] hook. [on_path] fires
    as each causal path completes out of the in-band feed, at the
    simulated instant the collector's delivered records support it — the
    hook a live diagnosis plane ([Diagnose.Live]) consumes. *)

val online : t -> Core.Online.t
val collector : t -> Collector.t
val agents : t -> Agent.t list
val agent : t -> host:string -> Agent.t option

val finish : t -> unit
(** Close the online correlation, resolving every window the delivered
    records can support (a drained simulation has already flushed and
    acked everything a live agent held). Idempotent. *)
