module Engine = Simnet.Engine
module Node = Simnet.Node
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address
module Service = Tiersim.Service
module Faults = Tiersim.Faults
module R = Telemetry.Registry

type config = {
  batch_records : int;
  flush_interval : Sim_time.span;
  max_spool_records : int;
  overflow : Agent.overflow;
  policy : Store.Policy.t;
  port : int;
  window : Sim_time.span option;
  straggler_timeout : Sim_time.span option;
  max_buffered : int option;
}

let default_config =
  {
    batch_records = Agent.default_config.Agent.batch_records;
    flush_interval = Agent.default_config.Agent.flush_interval;
    max_spool_records = Agent.default_config.Agent.max_spool_records;
    overflow = Agent.default_config.Agent.overflow;
    policy = Store.Policy.none;
    port = 7441;
    window = None;
    straggler_timeout = None;
    max_buffered = None;
  }

type t = {
  online : Core.Online.t;
  collector : Collector.t;
  agents : Agent.t list;
  mutable finished : bool;
}

let install ?(telemetry = R.default) ?(config = default_config) ?writer ?on_path svc =
  let engine = Service.engine svc in
  let stack = Service.stack svc in
  let wire = Wire.create stack in
  let correlate =
    match config.window with
    | Some window -> Core.Correlator.config ~transform:(Service.transform_config svc) ~window ()
    | None -> Core.Correlator.config ~transform:(Service.transform_config svc) ()
  in
  let online =
    Core.Online.create ~config:correlate ~hosts:(Service.server_hostnames svc)
      ?straggler_timeout:config.straggler_timeout ?max_buffered:config.max_buffered
      ?on_path ~telemetry ()
  in
  (* The collector is an extra, untraced machine on the same network.
     Delivery stays in the native representation end to end: each frame's
     arena is teed row-by-row into the store writer (raw, pre-transform,
     exactly like the old record tee) and fed to the online correlator. *)
  let on_arena =
    match writer with
    | None -> Core.Online.observe_arena online
    | Some w ->
        fun arena ->
          let host = Trace.Arena.host_sid arena in
          for i = 0 to Trace.Arena.length arena - 1 do
            Store.Writer.observe_row w ~host
              ~kind:(Trace.Arena.kind_code arena i)
              ~ts:(Trace.Arena.ts arena i)
              ~ctx:(Trace.Arena.ctx_id arena i)
              ~flow:(Trace.Arena.flow_id arena i)
              ~size:(Trace.Arena.size arena i)
          done;
          Core.Online.observe_arena online arena
  in
  let collector_node =
    Node.create ~engine ~hostname:"collect1" ~ip:(Address.ip_of_string "10.0.9.1") ~cores:2
      ()
  in
  let collector =
    Collector.create ~telemetry ~on_arena ~wire ~node:collector_node ~port:config.port ()
  in
  let agent_config =
    {
      Agent.default_config with
      Agent.batch_records = config.batch_records;
      flush_interval = config.flush_interval;
      max_spool_records = config.max_spool_records;
      overflow = config.overflow;
      policy = config.policy;
      correlate = (if Store.Policy.is_none config.policy then None else Some correlate);
    }
  in
  let probe = Service.probe svc in
  let agents =
    List.map
      (fun node ->
        let a =
          Agent.create ~telemetry ~config:agent_config ~wire ~node
            ~collector:(Collector.endpoint collector) ()
        in
        Agent.attach a probe;
        Agent.start a;
        a)
      [ Service.web_node svc; Service.app_node svc; Service.db_node svc ]
  in
  let find_agent host =
    List.find_opt (fun a -> String.equal (Agent.host a) host) agents
  in
  List.iter
    (function
      | Faults.Agent_crash { host; after; restart_after } -> (
          match find_agent host with
          | None -> ()
          | Some a ->
              ignore (Engine.schedule_after engine ~delay:after (fun () -> Agent.crash a));
              Option.iter
                (fun back ->
                  ignore
                    (Engine.schedule_after engine
                       ~delay:(Sim_time.span_add after back)
                       (fun () -> Agent.restart a)))
                restart_after)
      | Faults.Ejb_delay _ | Faults.Database_lock _ | Faults.Ejb_network _
      | Faults.Host_silence _ | Faults.Tier_slow _ | Faults.Replica_slow _
      | Faults.Key_skew _ -> ())
    (Service.config svc).Service.faults;
  { online; collector; agents; finished = false }

let online t = t.online
let collector t = t.collector
let agents t = t.agents
let agent t ~host = List.find_opt (fun a -> String.equal (Agent.host a) host) t.agents

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Core.Online.finish t.online
  end
