(** Byte transport for the collection plane.

    {!Simnet.Tcp} models syscalls and link occupancy but carries sizes,
    not bytes; actual contents travel in a side channel keyed by
    (connection, direction), exactly as {!Simnet.Messaging} ships its
    typed payloads. [send] pushes the bytes and issues chunked
    [tcp_sendmsg] syscalls for their length — so shipping a frame
    consumes real simulated bandwidth and, on traced nodes, probe
    overhead (unless the sending process is exempted); [recv] performs
    one [tcp_recvmsg] and hands back exactly the bytes it covered,
    preserving whatever coalescing or splitting the stream produced. *)

type t

val create : Simnet.Tcp.stack -> t
val stack : t -> Simnet.Tcp.stack

val send :
  t ->
  Simnet.Tcp.socket ->
  proc:Simnet.Proc.t ->
  ?chunk:int ->
  string ->
  k:(unit -> unit) ->
  unit
(** Ship the bytes as [ceil (len / chunk)] send syscalls (default chunk
    8192); [k] fires after the last one is accepted. Empty strings send
    nothing. *)

val recv :
  t ->
  Simnet.Tcp.socket ->
  proc:Simnet.Proc.t ->
  ?max:int ->
  k:(string -> unit) ->
  unit ->
  unit
(** One recv syscall of at most [max] bytes (default 8192). [k ""]
    signals that the peer closed and the stream is drained. *)
