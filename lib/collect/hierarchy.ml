module Engine = Simnet.Engine
module Node = Simnet.Node
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address
module Service = Tiersim.Service
module Scenario = Tiersim.Scenario
module Faults = Tiersim.Faults
module R = Telemetry.Registry

type config = {
  shards : int;
  agent : Agent.config;
  coalesce : bool;
  max_flows : int;
  port : int;
  window : Sim_time.span option;
  straggler_timeout : Sim_time.span option;
  max_buffered : int option;
}

let default_config =
  {
    shards = 4;
    agent = Agent.default_config;
    coalesce = true;
    max_flows = 4096;
    port = 7441;
    window = None;
    straggler_timeout = None;
    max_buffered = None;
  }

type shard = {
  shard_id : int;
  members : int list;  (* replica indices, ascending *)
  online : Core.Online.t;
  mutable ingest_records : int;
  mutable shard_collectors : Collector.t list;  (* of member replicas, newest first *)
}

type plane = { replica : int; plane_collector : Collector.t; plane_agents : Agent.t list }

type t = {
  config : config;
  replicas : int;
  shard_count : int;
  shards : shard array;
  mutable planes : plane list;  (* newest first *)
  telemetry : R.t;
  mutable report : report option;
}

and shard_report = {
  shard_id : int;
  shard_replicas : int list;
  paths_finished : int;
  paths_deformed : int;
  ingest_records : int;
  shard_boundary_entries : int;
  output_bytes : int;
}

and report = {
  finished : Core.Cag.t list;
  deformed : Core.Cag.t list;
  digest : string;
  shard_reports : shard_report list;
  agent_observed : int;
  agent_reduced : int;
  partial_coalesced : int;
  partial_local_flows : int;
  partial_fallbacks : int;
  boundary_entries : int;
  agent_bytes_shipped : int;
  delivered_records : int;
  root_ingest_bytes : int;
}

let create ?(telemetry = R.default) ?(config = default_config) (cluster : Scenario.cluster)
    =
  if config.shards <= 0 then invalid_arg "Hierarchy.create: shards";
  if cluster.Scenario.replicas <= 0 then invalid_arg "Hierarchy.create: replicas";
  let replicas = cluster.Scenario.replicas in
  let shard_count = min config.shards replicas in
  let shards =
    Array.init shard_count (fun k ->
        let members =
          List.filter (fun i -> i mod shard_count = k) (List.init replicas Fun.id)
        in
        (* The shard's transform is the cluster transform restricted to
           its own partition of the entry connections; rows of a member
           replica never reference another replica's endpoints, so the
           shard decides exactly like a monolithic correlator would. *)
        let base = Service.replica_transform_config ~replica:k in
        let transform =
          {
            base with
            Core.Transform.entry_points =
              List.map (fun i -> Service.replica_entry_endpoint ~replica:i) members;
          }
        in
        let correlate =
          match config.window with
          | Some window -> Core.Correlator.config ~transform ~window ()
          | None -> Core.Correlator.config ~transform ()
        in
        let hosts =
          List.concat_map (fun i -> Service.replica_server_hostnames ~replica:i) members
        in
        let online =
          Core.Online.create ~config:correlate ~hosts
            ?straggler_timeout:config.straggler_timeout
            ?max_buffered:config.max_buffered ~telemetry ()
        in
        { shard_id = k; members; online; ingest_records = 0; shard_collectors = [] })
  in
  { config; replicas; shard_count; shards; planes = []; telemetry; report = None }

let shard_of_replica t i = i mod t.shard_count
let shard_online t k = t.shards.(k).online

let collector t i =
  List.find_map
    (fun p -> if p.replica = i then Some p.plane_collector else None)
    t.planes

let agents t =
  List.concat_map (fun p -> p.plane_agents) (List.rev t.planes)

let install t i svc =
  if i < 0 || i >= t.replicas then invalid_arg "Hierarchy.install: replica index";
  if List.exists (fun p -> p.replica = i) t.planes then
    invalid_arg "Hierarchy.install: replica already installed";
  let engine = Service.engine svc in
  let sh = t.shards.(shard_of_replica t i) in
  let wire = Wire.create (Service.stack svc) in
  (* One collector machine per replica, inside the replica's own engine —
     the level-1 fan-in point that forwards to the shard correlator. *)
  let collector_node =
    Node.create ~engine
      ~hostname:(Printf.sprintf "collect%d" (i + 1))
      ~ip:(Address.ip_of_string (Printf.sprintf "10.%d.9.1" i))
      ~cores:2 ()
  in
  let on_arena arena =
    sh.ingest_records <- sh.ingest_records + Trace.Arena.length arena;
    Core.Online.observe_arena sh.online arena
  in
  let coll =
    Collector.create ~telemetry:t.telemetry ~on_arena ~wire ~node:collector_node
      ~port:t.config.port ()
  in
  sh.shard_collectors <- coll :: sh.shard_collectors;
  let agent_config =
    {
      t.config.agent with
      Agent.partial =
        Some
          (Core.Partial.config
             ~transform:(Service.transform_config svc)
             ~coalesce:t.config.coalesce ~max_flows:t.config.max_flows ());
    }
  in
  let probe = Service.probe svc in
  let installed =
    List.map
      (fun node ->
        let a =
          Agent.create ~telemetry:t.telemetry ~config:agent_config ~wire ~node
            ~collector:(Collector.endpoint coll) ()
        in
        Agent.attach a probe;
        Agent.start a;
        a)
      [ Service.web_node svc; Service.app_node svc; Service.db_node svc ]
  in
  let find_agent host =
    List.find_opt (fun a -> String.equal (Agent.host a) host) installed
  in
  List.iter
    (function
      | Faults.Agent_crash { host; after; restart_after } -> (
          match find_agent host with
          | None -> ()
          | Some a ->
              ignore (Engine.schedule_after engine ~delay:after (fun () -> Agent.crash a));
              Option.iter
                (fun back ->
                  ignore
                    (Engine.schedule_after engine
                       ~delay:(Sim_time.span_add after back)
                       (fun () -> Agent.restart a)))
                restart_after)
      | Faults.Ejb_delay _ | Faults.Database_lock _ | Faults.Ejb_network _
      | Faults.Host_silence _ | Faults.Tier_slow _ | Faults.Replica_slow _
      | Faults.Key_skew _ -> ())
    (Service.config svc).Service.faults;
  t.planes <- { replica = i; plane_collector = coll; plane_agents = installed } :: t.planes

let finish t =
  match t.report with
  | Some r -> r
  | None ->
      let c_shard_paths =
        R.counter t.telemetry ~help:"Causal paths completed per shard"
          "pt_hier_shard_paths_total"
      in
      let c_root_bytes =
        R.counter t.telemetry ~help:"PTH1 bytes ingested by the hierarchy root"
          "pt_hier_root_ingest_bytes_total"
      in
      let c_root_paths =
        R.counter t.telemetry ~help:"Causal paths in the root's global sequence"
          "pt_hier_root_paths_total"
      in
      (* Drain every shard, then ship each shard's paths to the root as
         one PTH1 message. The root decodes the bytes — it never touches
         the shard correlators' in-memory graphs. *)
      let per_shard =
        Array.to_list
          (Array.map
             (fun sh ->
               Core.Online.finish sh.online;
               let fin = Core.Online.paths sh.online in
               let dfm = Core.Online.deformed sh.online in
               let message = Core.Hierarchy.encode_paths (fin @ dfm) in
               let decoded =
                 match Core.Hierarchy.decode_paths message with
                 | Ok cags -> cags
                 | Error e ->
                     failwith
                       (Printf.sprintf "Hierarchy.finish: shard %d PTH1 corrupt: %s"
                          sh.shard_id e)
               in
               let dec_fin, dec_dfm = List.partition Core.Cag.is_finished decoded in
               let boundary =
                 List.fold_left
                   (fun acc c -> acc + Collector.boundary_entries c)
                   0 sh.shard_collectors
               in
               let report =
                 {
                   shard_id = sh.shard_id;
                   shard_replicas = sh.members;
                   paths_finished = List.length fin;
                   paths_deformed = List.length dfm;
                   ingest_records = sh.ingest_records;
                   shard_boundary_entries = boundary;
                   output_bytes = String.length message;
                 }
               in
               R.add c_shard_paths (List.length fin + List.length dfm);
               R.add c_root_bytes (String.length message);
               (report, dec_fin, dec_dfm))
             t.shards)
      in
      let shard_reports = List.map (fun (r, _, _) -> r) per_shard in
      let finished = Core.Hierarchy.splice (List.map (fun (_, f, _) -> f) per_shard) in
      let deformed =
        Core.Hierarchy.canonicalize ~first_id:(List.length finished)
          (List.concat_map (fun (_, _, d) -> d) per_shard)
      in
      R.add c_root_paths (List.length finished + List.length deformed);
      let digest = Core.Hierarchy.digest ~finished ~deformed in
      let sum f = List.fold_left (fun acc p -> acc + f p) 0 t.planes in
      let agent_sum f =
        sum (fun p ->
            List.fold_left (fun acc a -> acc + f (Agent.stats a)) 0 p.plane_agents)
      in
      let report =
        {
          finished;
          deformed;
          digest;
          shard_reports;
          agent_observed = agent_sum (fun s -> s.Agent.observed);
          agent_reduced = agent_sum (fun s -> s.Agent.reduced);
          partial_coalesced = agent_sum (fun s -> s.Agent.partial_coalesced);
          partial_local_flows = agent_sum (fun s -> s.Agent.partial_local_flows);
          partial_fallbacks = agent_sum (fun s -> s.Agent.partial_fallbacks);
          boundary_entries = agent_sum (fun s -> s.Agent.boundary_entries);
          agent_bytes_shipped = agent_sum (fun s -> s.Agent.bytes_shipped);
          delivered_records =
            Array.fold_left (fun acc (sh : shard) -> acc + sh.ingest_records) 0 t.shards;
          root_ingest_bytes =
            List.fold_left (fun acc r -> acc + r.output_bytes) 0 shard_reports;
        }
      in
      t.report <- Some report;
      report
