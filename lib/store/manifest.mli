(** The store-level index.

    [MANIFEST.json] lists every live segment's {!Segment.meta}, so
    time-range and host-predicate queries can prune cold segments without
    opening them, and `store stat` can describe a store without decoding
    anything. The manifest is rewritten atomically (temp file + rename)
    on every mutation; segment headers duplicate the same metadata, so a
    lost manifest can be rebuilt with {!rebuild}. *)

type t = {
  next_id : int;  (** Next segment id to assign. *)
  segments : Segment.meta list;  (** Sorted by id. *)
}

val empty : t
val file : string
(** ["MANIFEST.json"]. *)

val exists : dir:string -> bool
(** Whether [dir] looks like a store (has a manifest). *)

val add : t -> Segment.meta -> t
(** Record a written segment; bumps [next_id] past its id. *)

val remove : t -> ids:int list -> t
(** Forget the named segments (files are the caller's to delete). *)

val total_records : t -> int
val total_bytes : t -> int
(** Payload bytes across live segments. *)

val to_json : t -> Core.Json.t
val of_json : Core.Json.t -> (t, string) result
(** The [MANIFEST.json] object form, exposed so a manifest can live
    embedded in a bundle container as well as in a store directory. *)

val save : t -> dir:string -> unit
val load : dir:string -> (t, string) result
(** Errors on a missing or malformed manifest. *)

val rebuild : dir:string -> (t, string) result
(** Reconstruct a manifest by reading the header of every [*.pts] file in
    [dir] (does not save it). *)
