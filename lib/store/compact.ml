module R = Telemetry.Registry

type stats = {
  segments_before : int;
  segments_after : int;
  retired : int;
  merged : int;
  merge_segments : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "%d -> %d segments (%d retired, %d merged into %d)" s.segments_before
    s.segments_after s.retired s.merged s.merge_segments

let remove_file dir (m : Segment.meta) =
  try Sys.remove (Filename.concat dir m.Segment.file) with Sys_error _ -> ()

(* Runs of >= 2 consecutive (in time order) segments all under the
   threshold; big segments break runs. Returns only the runs to merge —
   everything else stays in the manifest untouched. *)
let merge_runs ~min_records segments =
  let runs = ref [] and current = ref [] in
  let close_run () =
    (match !current with [] | [ _ ] -> () | many -> runs := List.rev many :: !runs);
    current := []
  in
  List.iter
    (fun (m : Segment.meta) ->
      if m.Segment.records < min_records then current := m :: !current else close_run ())
    segments;
  close_run ();
  List.rev !runs

let join_policies (sources : Segment.meta list) =
  List.map (fun (m : Segment.meta) -> m.Segment.policy) sources
  |> List.sort_uniq String.compare
  |> String.concat "|"

let run ?(telemetry = R.default) ?(min_records = 8192) ?retain_ns ~dir () =
  match Manifest.load ~dir with
  | Error e -> Error e
  | Ok manifest -> (
      let segments_before = List.length manifest.Manifest.segments in
      (* Retention: keep segments overlapping the trailing window. *)
      let live, retired_segments =
        match retain_ns with
        | None -> (manifest.Manifest.segments, [])
        | Some retain ->
            let newest =
              List.fold_left
                (fun acc (m : Segment.meta) -> max acc m.Segment.max_ts_ns)
                min_int manifest.Manifest.segments
            in
            let cutoff = newest - retain in
            List.partition
              (fun (m : Segment.meta) -> m.Segment.max_ts_ns >= cutoff)
              manifest.Manifest.segments
      in
      let by_time =
        List.sort
          (fun (a : Segment.meta) (b : Segment.meta) ->
            compare (a.Segment.min_ts_ns, a.id) (b.Segment.min_ts_ns, b.id))
          live
      in
      let runs = merge_runs ~min_records by_time in
      let manifest =
        Manifest.remove manifest
          ~ids:(List.map (fun (m : Segment.meta) -> m.Segment.id) retired_segments)
      in
      let rec merge_all manifest written = function
        | [] -> Ok (manifest, written)
        | sources :: rest -> (
            let rec read_all acc = function
              | [] -> Ok (List.rev acc)
              | (m : Segment.meta) :: tl -> (
                  match Segment.read_native ~dir m with
                  | Ok c -> read_all (c :: acc) tl
                  | Error e -> Error e)
            in
            match read_all [] sources with
            | Error e -> Error e
            | Ok collections ->
                let merged_collection = Query.merge_native collections in
                let raw_records =
                  List.fold_left
                    (fun acc (m : Segment.meta) -> acc + m.Segment.raw_records)
                    0 sources
                in
                let raw_bytes =
                  List.fold_left
                    (fun acc (m : Segment.meta) -> acc + m.Segment.raw_bytes)
                    0 sources
                in
                let meta =
                  Segment.write_native ~dir ~id:manifest.Manifest.next_id
                    ~policy:(join_policies sources) ~raw_records ~raw_bytes
                    merged_collection
                in
                let manifest =
                  Manifest.add
                    (Manifest.remove manifest
                       ~ids:(List.map (fun (m : Segment.meta) -> m.Segment.id) sources))
                    meta
                in
                List.iter (remove_file dir) sources;
                merge_all manifest (written + 1) rest)
      in
      match merge_all manifest 0 runs with
      | Error e -> Error e
      | Ok (manifest, merge_segments) ->
          List.iter (remove_file dir) retired_segments;
          Manifest.save manifest ~dir;
          let merged = List.fold_left (fun acc run -> acc + List.length run) 0 runs in
          let stats =
            {
              segments_before;
              segments_after = List.length manifest.Manifest.segments;
              retired = List.length retired_segments;
              merged;
              merge_segments;
            }
          in
          R.add
            (R.counter telemetry ~help:"Segments deleted by retention"
               "pt_store_compact_retired_total")
            stats.retired;
          R.add
            (R.counter telemetry ~help:"Small segments folded into merge results"
               "pt_store_compact_merged_total")
            stats.merged;
          Ok stats)
