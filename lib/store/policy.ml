type sampling =
  | Keep_all
  | Head of int
  | Probabilistic of { p : float; seed : int }
  | Adaptive of { budget_bytes_per_s : float; seed : int }

type t = {
  drop_programs : string list;
  drop_non_causal : bool;
  sampling : sampling;
}

let none = { drop_programs = []; drop_non_causal = false; sampling = Keep_all }

let is_none t =
  t.drop_programs = [] && (not t.drop_non_causal) && t.sampling = Keep_all

let make ?(drop_programs = []) ?(drop_non_causal = false) ?(sampling = Keep_all) () =
  { drop_programs; drop_non_causal; sampling }

(* %.12g prints probabilities and budgets with enough digits to round-trip
   any value a user would type, without trailing zero noise. *)
let float_to_string f = Printf.sprintf "%.12g" f

let to_string t =
  if is_none t then "none"
  else begin
    let terms = ref [] in
    (match t.sampling with
    | Keep_all -> ()
    | Head n -> terms := Printf.sprintf "head=%d" n :: !terms
    | Probabilistic { p; seed } ->
        terms := Printf.sprintf "sample=%s@%d" (float_to_string p) seed :: !terms
    | Adaptive { budget_bytes_per_s; seed } ->
        terms :=
          Printf.sprintf "budget=%s@%d" (float_to_string budget_bytes_per_s) seed :: !terms);
    if t.drop_non_causal then terms := "causal" :: !terms;
    if t.drop_programs <> [] then
      terms := ("drop=" ^ String.concat "+" t.drop_programs) :: !terms;
    String.concat "," !terms
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)

let parse_seeded ~what s =
  (* "V" or "V@SEED" *)
  let value, seed_s =
    match String.index_opt s '@' with
    | None -> (s, "1")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match (float_of_string_opt value, int_of_string_opt seed_s) with
  | None, _ -> Error (Printf.sprintf "bad %s value %S" what value)
  | _, None -> Error (Printf.sprintf "bad %s seed %S" what seed_s)
  | Some v, Some seed -> Ok (v, seed)

let of_string s =
  let terms = String.split_on_char ',' s |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok acc
    | "" :: rest -> go acc rest
    | "none" :: rest -> go acc rest
    | "causal" :: rest -> go { acc with drop_non_causal = true } rest
    | term :: rest -> (
        match String.index_opt term '=' with
        | None -> Error (Printf.sprintf "unknown policy term %S" term)
        | Some i -> (
            let key = String.sub term 0 i in
            let value = String.sub term (i + 1) (String.length term - i - 1) in
            let with_sampling sampling =
              if acc.sampling <> Keep_all then
                Error "at most one sampling term (head/sample/budget)"
              else go { acc with sampling } rest
            in
            match key with
            | "drop" ->
                let programs =
                  String.split_on_char '+' value |> List.filter (fun p -> p <> "")
                in
                go { acc with drop_programs = acc.drop_programs @ programs } rest
            | "head" -> (
                match int_of_string_opt value with
                | Some n when n >= 0 -> with_sampling (Head n)
                | _ -> Error (Printf.sprintf "bad head count %S" value))
            | "sample" -> (
                match parse_seeded ~what:"sample" value with
                | Error e -> Error e
                | Ok (p, seed) ->
                    if p < 0.0 || p > 1.0 then
                      Error (Printf.sprintf "sample probability %g outside [0,1]" p)
                    else with_sampling (Probabilistic { p; seed }))
            | "budget" -> (
                match parse_seeded ~what:"budget" value with
                | Error e -> Error e
                | Ok (b, seed) ->
                    if b <= 0.0 then Error "budget must be positive"
                    else with_sampling (Adaptive { budget_bytes_per_s = b; seed }))
            | _ -> Error (Printf.sprintf "unknown policy term %S" term)))
  in
  go none terms
