(** One on-disk store segment.

    A segment is an append-once file holding a slice of the trace in the
    existing {!Trace.Binary_format} ([PTB1]) encoding, prefixed by a
    small self-describing index header:

    {v
    "PTS1"  4-byte segment magic
    u32be   header length H
    H bytes header JSON (the meta record below)
    ...     PTB1 payload
    v}

    The header duplicates what the store {!Manifest} records, so a
    manifest can be rebuilt from the segment files alone and a segment
    can be sanity-checked without decoding its (much larger) payload. *)

type meta = {
  id : int;  (** Unique within a store; assigned by the manifest. *)
  file : string;  (** Basename inside the store directory. *)
  min_ts_ns : int;  (** Earliest activity timestamp (local clocks). *)
  max_ts_ns : int;  (** Latest activity timestamp. *)
  hosts : string list;  (** Sorted hostnames present. *)
  records : int;  (** Activities in the payload. *)
  bytes : int;  (** Payload size in bytes. *)
  raw_records : int;  (** Activities in the batch before reduction. *)
  raw_bytes : int;  (** Encoded size of the batch before reduction. *)
  policy : string;  (** Reduction provenance ({!Policy.to_string}). *)
}

val magic : string
(** ["PTS1"]. *)

val filename : int -> string
(** Canonical basename for segment [id], e.g. ["seg-000042.pts"]. *)

val overlaps : meta -> since_ns:int option -> until_ns:int option -> bool
(** Whether the segment's time range intersects the (inclusive) bounds. *)

val meta_to_json : meta -> Core.Json.t
val meta_of_json : Core.Json.t -> (meta, string) result

val write :
  dir:string ->
  id:int ->
  policy:string ->
  ?raw_records:int ->
  ?raw_bytes:int ->
  Trace.Log.collection ->
  meta
(** Encode and write the collection as segment [id] in [dir]; returns the
    meta describing what was written. [raw_records]/[raw_bytes] record
    the batch's pre-reduction size and default to the written values
    (i.e. no reduction).
    @raise Invalid_argument on an empty collection (the caller should
    simply not emit a segment). Raises [Sys_error] on I/O failure. *)

val encode :
  id:int ->
  policy:string ->
  ?raw_records:int ->
  ?raw_bytes:int ->
  Trace.Log.collection ->
  meta * string
(** The in-memory form of {!write}: the meta plus the exact bytes {!write}
    would put on disk. Used by the bundle packer to embed segments without
    a staging directory. *)

val read : dir:string -> meta -> (Trace.Log.collection, string) result
(** Decode the payload of a segment; verifies magic, header/manifest
    consistency (id and record count) and payload integrity. *)

val read_embedded :
  data:string -> pos:int -> len:int -> what:string -> meta -> (Trace.Log.collection, string) result
(** Like {!read}, but over a segment embedded at [pos] (spanning [len]
    bytes) inside a larger string — a section of a bundle container —
    with no copying. [what] names the container in error messages; all
    error offsets are absolute within [data], i.e. container-relative. *)

(** {1 Native path}

    The arena-backed codec the store runs on. [encode] / [read] above are
    wrappers over these (byte-identical output), kept for the import/
    export surfaces that still speak record lists. *)

val encode_native :
  id:int ->
  policy:string ->
  ?raw_records:int ->
  ?raw_bytes:int ->
  Trace.Arena.t list ->
  meta * string

val write_native :
  dir:string ->
  id:int ->
  policy:string ->
  ?raw_records:int ->
  ?raw_bytes:int ->
  Trace.Arena.t list ->
  meta

val read_native : dir:string -> meta -> (Trace.Arena.t list, string) result
(** Decode the payload straight into arenas — no per-record allocation.
    Rows come back in payload order (the writer sorts before encoding). *)

val read_embedded_native :
  data:string -> pos:int -> len:int -> what:string -> meta -> (Trace.Arena.t list, string) result

val parse_header_at :
  string -> pos:int -> len:int -> what:string -> (meta * int * int, string) result
(** Parse only the index header of an embedded segment: returns the meta
    and the payload's (offset, length) region within the input string. *)

val read_meta : path:string -> (meta, string) result
(** Read only the index header — O(header) regardless of payload size. *)
