module Json = Core.Json

type t = { next_id : int; segments : Segment.meta list }

let empty = { next_id = 0; segments = [] }
let file = "MANIFEST.json"
let path ~dir = Filename.concat dir file
let exists ~dir = Sys.file_exists (path ~dir)

let sort_segments = List.sort (fun (a : Segment.meta) b -> compare a.Segment.id b.id)

let add t meta =
  {
    next_id = max t.next_id (meta.Segment.id + 1);
    segments = sort_segments (meta :: t.segments);
  }

let remove t ~ids =
  { t with segments = List.filter (fun (m : Segment.meta) -> not (List.mem m.Segment.id ids)) t.segments }

let total_records t =
  List.fold_left (fun acc (m : Segment.meta) -> acc + m.Segment.records) 0 t.segments

let total_bytes t =
  List.fold_left (fun acc (m : Segment.meta) -> acc + m.Segment.bytes) 0 t.segments

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("next_id", Json.Int t.next_id);
      ("segments", Json.List (List.map Segment.meta_to_json t.segments));
    ]

let save t ~dir =
  let tmp = path ~dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true (to_json t) ^ "\n"));
  Sys.rename tmp (path ~dir)

let of_json j =
  match (Json.member "next_id" j, Json.member "segments" j) with
  | Some (Json.Int next_id), Some (Json.List items) ->
      let rec metas acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match Segment.meta_of_json item with
            | Ok m -> metas (m :: acc) rest
            | Error e -> Error e)
      in
      Result.map
        (fun segments -> { next_id; segments = sort_segments segments })
        (metas [] items)
  | _ -> Error "manifest: missing next_id or segments"

let load ~dir =
  let p = path ~dir in
  match open_in_bin p with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let data = really_input_string ic (in_channel_length ic) in
          match Json.of_string data with
          | Error e -> Error (Printf.sprintf "%s: %s" p e)
          | Ok j -> (
              match of_json j with
              | Error e -> Error (Printf.sprintf "%s: %s" p e)
              | Ok t -> Ok t))

let rebuild ~dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          match acc with
          | Error _ as e -> e
          | Ok t ->
              if Filename.check_suffix entry ".pts" then
                match Segment.read_meta ~path:(Filename.concat dir entry) with
                | Ok meta -> Ok (add t meta)
                | Error e -> Error e
              else Ok t)
        (Ok empty) entries
