module Activity = Trace.Activity
module Log = Trace.Log
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address
module Rng = Simnet.Rng
module Cag = Core.Cag
module R = Telemetry.Registry

type stats = {
  activities_before : int;
  activities_after : int;
  bytes_before : int;
  bytes_after : int;
  requests_total : int;
  requests_kept : int;
  non_causal : int;
  effective_p : float;
}

let ratio s =
  if s.bytes_after = 0 then Float.infinity
  else float_of_int s.bytes_before /. float_of_int s.bytes_after

let sampled_share s =
  if s.requests_total = 0 then 1.0
  else float_of_int s.requests_kept /. float_of_int s.requests_total

let pp_stats ppf s =
  Format.fprintf ppf
    "%d -> %d activities, %d -> %d bytes (%.1fx); %d/%d requests kept (p=%.3f), %d non-causal"
    s.activities_before s.activities_after s.bytes_before s.bytes_after (ratio s)
    s.requests_kept s.requests_total s.effective_p s.non_causal

(* Exact attribution key: a raw activity and the CAG vertex built from it
   share timestamp, context and flow (the engine may rewrite kind and
   size, never these). Flattened to immediates so the polymorphic hash is
   cheap and structural. *)
let key_of (a : Activity.t) =
  let c = a.Activity.context in
  let f = a.Activity.message.flow in
  ( Sim_time.to_ns a.timestamp,
    c.Activity.host,
    c.program,
    c.pid,
    c.tid,
    Address.ip_to_int f.src.ip,
    f.src.port,
    Address.ip_to_int f.dst.ip,
    f.dst.port )

type attribution = {
  exact : ((int * string * string * int * int * int * int * int * int), int) Hashtbl.t;
  intervals : (Activity.context, (int * int * int) list) Hashtbl.t;
      (* context -> (request index, lo_ns, hi_ns), sorted by lo. *)
}

let attribute requests =
  let exact = Hashtbl.create 4096 in
  let by_ctx : (Activity.context * int, int ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun idx cag ->
      List.iter
        (fun (v : Cag.vertex) ->
          let a = v.Cag.activity in
          Hashtbl.replace exact (key_of a) idx;
          let ts = Sim_time.to_ns a.timestamp in
          match Hashtbl.find_opt by_ctx (a.context, idx) with
          | Some (lo, hi) ->
              if ts < !lo then lo := ts;
              if ts > !hi then hi := ts
          | None -> Hashtbl.replace by_ctx (a.context, idx) (ref ts, ref ts))
        (Cag.vertices cag))
    requests;
  let intervals = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (ctx, idx) (lo, hi) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt intervals ctx) in
      Hashtbl.replace intervals ctx ((idx, !lo, !hi) :: prev))
    by_ctx;
  Hashtbl.iter
    (fun ctx spans ->
      Hashtbl.replace intervals ctx
        (List.sort (fun (_, lo1, _) (_, lo2, _) -> compare lo1 lo2) spans))
    intervals;
  { exact; intervals }

let request_of attribution (a : Activity.t) =
  match Hashtbl.find_opt attribution.exact (key_of a) with
  | Some idx -> Some idx
  | None -> (
      match Hashtbl.find_opt attribution.intervals a.Activity.context with
      | None -> None
      | Some spans ->
          let ts = Sim_time.to_ns a.timestamp in
          List.find_map
            (fun (idx, lo, hi) -> if ts >= lo && ts <= hi then Some idx else None)
            spans)

let time_span_s collection =
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun log ->
      Log.iter log (fun a ->
          let ts = Sim_time.to_ns a.Activity.timestamp in
          if ts < !lo then lo := ts;
          if ts > !hi then hi := ts))
    collection;
  if !hi <= !lo then 0.0 else float_of_int (!hi - !lo) /. 1e9

(* Fill [keep] (one slot per request, BEGIN-time order) according to the
   sampling mode; returns the per-request keep probability used. *)
let keep_mask ~sampling ~causal_activities ~bytes_before ~activities_before ~span_s keep =
  let probabilistic ~p ~seed =
    let rng = Rng.create ~seed in
    Array.iteri (fun i _ -> keep.(i) <- Rng.bernoulli rng ~p) keep;
    p
  in
  match sampling with
  | Policy.Keep_all -> 1.0
  | Policy.Head limit ->
      Array.iteri (fun i _ -> keep.(i) <- i < limit) keep;
      1.0
  | Policy.Probabilistic { p; seed } -> probabilistic ~p ~seed
  | Policy.Adaptive { budget_bytes_per_s; seed } ->
      let bytes_per_activity =
        if activities_before = 0 then 0.0
        else float_of_int bytes_before /. float_of_int activities_before
      in
      let causal_bytes = bytes_per_activity *. float_of_int causal_activities in
      let target = budget_bytes_per_s *. span_s in
      let p =
        if causal_bytes <= 0.0 || span_s <= 0.0 then 1.0
        else Float.min 1.0 (target /. causal_bytes)
      in
      probabilistic ~p ~seed

let record_telemetry telemetry stats =
  let counter help name = R.counter telemetry ~help name in
  R.add (counter "Raw bytes entering reduction" "pt_store_reduce_bytes_before_total")
    stats.bytes_before;
  R.add (counter "Bytes surviving reduction" "pt_store_reduce_bytes_after_total")
    stats.bytes_after;
  R.add (counter "Requests seen by reduction" "pt_store_reduce_requests_seen_total")
    stats.requests_total;
  R.add (counter "Requests kept by sampling" "pt_store_reduce_requests_kept_total")
    stats.requests_kept;
  R.add
    (counter "Activities removed by reduction" "pt_store_reduce_activities_dropped_total")
    (stats.activities_before - stats.activities_after);
  R.set
    (R.gauge telemetry ~help:"Per-request keep probability of the last reduction"
       "pt_store_reduce_effective_p")
    stats.effective_p

let apply ?(telemetry = R.default) ?pool ?jobs ~correlate ~policy collection =
  let activities_before = Log.total collection in
  let bytes_before = String.length (Trace.Binary_format.encode collection) in
  if Policy.is_none policy || activities_before = 0 then begin
    let stats =
      {
        activities_before;
        activities_after = activities_before;
        bytes_before;
        bytes_after = bytes_before;
        requests_total = 0;
        requests_kept = 0;
        non_causal = 0;
        effective_p = 1.0;
      }
    in
    record_telemetry telemetry stats;
    (collection, stats)
  end
  else begin
    let filtered =
      if policy.Policy.drop_programs = [] then collection
      else
        Log.map_activities
          (fun a ->
            if List.mem a.Activity.context.program policy.Policy.drop_programs then None
            else Some a)
          collection
    in
    (* Throwaway correlation purely for attribution: a private registry
       keeps it out of the pipeline's own self-profile. *)
    let result = Core.Correlator.correlate ~telemetry:(R.create ()) correlate filtered in
    let requests =
      List.sort
        (fun a b ->
          match Sim_time.compare (Cag.begin_ts a) (Cag.begin_ts b) with
          | 0 -> compare a.Cag.cag_id b.Cag.cag_id
          | c -> c)
        (result.Core.Correlator.cags @ result.Core.Correlator.deformed)
      |> Array.of_list
    in
    let attribution = attribute requests in
    (* The attribution tables are read-only from here on, so worker
       domains can look activities up concurrently. Both passes below
       (attribution counting, then the keep/drop filter) go per-log
       through the pool; results are keyed by log index, so the reduced
       collection is identical at any [jobs]. *)
    let logs = Array.of_list filtered in
    let nlogs = Array.length logs in
    let run_passes pool_opt =
      let pmap f =
        match pool_opt with
        | Some p -> Parallel.Pool.map p ~n:nlogs f
        | None -> Array.init nlogs f
      in
      let counts =
        pmap (fun i ->
            let causal = ref 0 and non = ref 0 in
            Log.iter logs.(i) (fun a ->
                match request_of attribution a with
                | Some _ -> incr causal
                | None -> incr non);
            (!causal, !non))
      in
      let causal_activities = Array.fold_left (fun acc (c, _) -> acc + c) 0 counts in
      let non_causal = Array.fold_left (fun acc (_, n) -> acc + n) 0 counts in
      let keep = Array.make (Array.length requests) true in
      let effective_p =
        keep_mask ~sampling:policy.Policy.sampling ~causal_activities ~bytes_before
          ~activities_before ~span_s:(time_span_s filtered) keep
      in
      let reduced =
        pmap (fun i ->
            Log.map_activities
              (fun a ->
                match request_of attribution a with
                | Some idx -> if keep.(idx) then Some a else None
                | None -> if policy.Policy.drop_non_causal then None else Some a)
              [ logs.(i) ])
        |> Array.to_list |> List.concat
        |> List.filter (fun log -> Log.length log > 0)
      in
      (non_causal, keep, effective_p, reduced)
    in
    let jobs =
      match (pool, jobs) with
      | Some p, _ -> Parallel.Pool.size p
      | None, Some j -> max 1 j
      | None, None -> Parallel.Pool.default_jobs ()
    in
    let non_causal, keep, effective_p, reduced =
      if jobs <= 1 || nlogs <= 1 then run_passes None
      else
        match pool with
        | Some p -> run_passes (Some p)
        | None -> Parallel.Pool.with_pool ~jobs (fun p -> run_passes (Some p))
    in
    let bytes_after = String.length (Trace.Binary_format.encode reduced) in
    let stats =
      {
        activities_before;
        activities_after = Log.total reduced;
        bytes_before;
        bytes_after;
        requests_total = Array.length requests;
        requests_kept =
          Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 keep;
        non_causal;
        effective_p;
      }
    in
    record_telemetry telemetry stats;
    (reduced, stats)
  end
