(** Online log-reduction policies (the *Decreasing log data* strategy).

    Kernel-granularity tracing is bulky; the follow-up work to the paper
    (Sang et al., "Decreasing log data of multi-tier services for
    effective request tracing") reduces logs online while keeping the
    pattern-frequency signal the Correlator and Analysis layers consume.
    A policy describes that reduction declaratively so it can be applied
    by {!Reduce}, carried in a {!Writer}, and recorded verbatim as
    segment provenance in the {!Manifest}.

    The three composable levers, in application order:

    + {e program filter} — drop activities of the named programs before
      anything else (chatter known to be irrelevant by name);
    + {e causality filter} — drop activities that belong to no request
      causal path (noise the name filter cannot catch);
    + {e request-level sampling} — keep a subset of whole requests. All
      activities of a kept request survive together, so no SEND is ever
      separated from its RECEIVE (sampling at activity granularity would
      orphan halves and deform every CAG it touched). *)

type sampling =
  | Keep_all  (** No sampling. *)
  | Head of int  (** Keep only the first [n] requests by BEGIN time. *)
  | Probabilistic of { p : float; seed : int }
      (** Keep each request independently with probability [p];
          deterministic for a given [seed]. *)
  | Adaptive of { budget_bytes_per_s : float; seed : int }
      (** Pick the sampling probability that fits the causal traffic into
          [budget_bytes_per_s] of encoded store bytes over the batch's
          time span, then sample probabilistically. *)

type t = {
  drop_programs : string list;  (** Programs removed outright. *)
  drop_non_causal : bool;
      (** Remove activities outside every request causal path. *)
  sampling : sampling;
}

val none : t
(** Keep everything — ingest becomes a plain (but segmented) copy. *)

val is_none : t -> bool

val make :
  ?drop_programs:string list -> ?drop_non_causal:bool -> ?sampling:sampling -> unit -> t
(** Defaults are {!none}'s fields. *)

val to_string : t -> string
(** Canonical compact form, e.g. ["causal,sample=0.25@7"]; ["none"] for
    {!none}. Round-trips through {!of_string}; used as the provenance
    string stored in segment headers. *)

val of_string : string -> (t, string) result
(** Parse the CLI / provenance syntax: comma-separated terms among
    [none], [causal], [drop=prog1+prog2+...], [head=N], [sample=P[@SEED]]
    and [budget=BYTES_PER_S[@SEED]] (seed defaults to 1). At most one
    sampling term. *)

val pp : Format.formatter -> t -> unit
