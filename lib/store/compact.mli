(** Store maintenance: retention and small-segment merging.

    A long-lived store accumulates small segments (frequent flushes, thin
    reduced batches). Compaction (1) applies retention — segments whose
    entire time range has fallen out of the retention window are deleted
    — and (2) merges adjacent runs of small segments into one, keeping
    every surviving record byte-for-byte and the manifest's query answers
    unchanged. Merged segments carry the union of their sources'
    reduction provenance. *)

type stats = {
  segments_before : int;
  segments_after : int;
  retired : int;  (** Segments deleted by retention. *)
  merged : int;  (** Source segments folded into merge results. *)
  merge_segments : int;  (** Merge result segments written. *)
}

val pp_stats : Format.formatter -> stats -> unit

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?min_records:int ->
  ?retain_ns:int ->
  dir:string ->
  unit ->
  (stats, string) result
(** Compact the store at [dir]. [min_records] (default 8192) is the
    "small segment" threshold: adjacent (by time) runs of at least two
    segments each under the threshold are merged. [retain_ns], when
    given, keeps only segments overlapping the last [retain_ns]
    nanoseconds before the store's latest timestamp. Counts are recorded
    under [pt_store_compact_*]. *)
