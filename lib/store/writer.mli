(** The streaming store writer: capture goes straight to disk.

    A writer buffers activities per host and rolls a new segment every
    [roll_records] activities, applying its reduction {!Policy} to each
    batch before encoding — so an {!Core.Online} run (or a
    {!Trace.Probe} listener) streams reduced segments to disk while the
    service is still running. {!observe} has exactly the probe-listener
    shape: [Trace.Probe.add_listener probe (Writer.observe w)] or
    [Core.Online.create ~on_activity:(Writer.observe w)].

    Because reduction is per batch, a request that straddles a segment
    boundary is seen by two independent reduction passes; its unfinished
    halves are attributed to deformed paths and sampled like any other
    request (never split mid-message, since message endpoints land in the
    same batch up to the roll granularity). Batch boundaries are the one
    fidelity caveat of streaming reduction — see docs/STORE.md. *)

type t

type stats = {
  segments : int;  (** Segments written. *)
  records_in : int;  (** Activities observed. *)
  records_out : int;  (** Activities written after reduction. *)
  bytes_in : int;  (** Encoded size of raw batches. *)
  bytes_out : int;  (** Payload bytes written. *)
  requests_seen : int;
  requests_kept : int;
}

val pp_stats : Format.formatter -> stats -> unit

val create :
  ?telemetry:Telemetry.Registry.t ->
  ?policy:Policy.t ->
  ?correlate:Core.Correlator.config ->
  ?roll_records:int ->
  dir:string ->
  unit ->
  t
(** Open (creating [dir] if needed) a writer appending to the store at
    [dir]; an existing manifest is extended, so successive runs can feed
    one store. Defaults: {!Policy.none}, roll every 65536 activities.
    @raise Invalid_argument if [policy] needs request attribution (any
    non-[none] policy) and [correlate] is missing.
    @raise Failure if an existing manifest cannot be parsed. *)

val observe : t -> Trace.Activity.t -> unit
(** Buffer one activity (probe-listener compatible); rolls a segment when
    the batch threshold is reached. *)

val observe_row : t -> host:int -> kind:int -> ts:int -> ctx:int -> flow:int -> size:int -> unit
(** The native form of {!observe}: [host] is an {!Trace.Intern.string_id},
    [kind] an {!Trace.Activity.kind_to_code} code, [ctx]/[flow] interned
    ids. One arena append, no allocation — the ingest hot path. *)

val ingest : t -> Trace.Log.collection -> unit
(** Feed a whole collection through {!observe}, interleaving the per-host
    logs in global timestamp order — the same segment time-partitioning a
    live feed would produce. Equivalent to
    [ingest_native t (Trace.Arena.of_collection c)]. *)

val ingest_native : t -> Trace.Arena.t list -> unit
(** {!ingest} without leaving the native representation: a k-way merge of
    the (sorted) arenas through {!observe_row}. Inputs are not mutated;
    an unsorted arena is sorted on a copy. *)

val flush : t -> unit
(** Force the current batch out as a segment (no-op when empty). *)

val close : t -> stats
(** Flush and return the run's totals. The manifest is saved after every
    segment, so a crash loses at most the open batch. *)

val stats : t -> stats
