(** Request-level log reduction.

    Applies a {!Policy} to a raw activity collection. The key property —
    what makes this "request-level" rather than record-level — is that
    sampling decisions are taken per {e request}: the collection is first
    correlated (a throwaway pass over a private telemetry registry, so
    pipeline self-profiles are not polluted), every raw activity is
    attributed to the causal path it belongs to, and then whole paths are
    kept or dropped together. A SEND therefore never loses its RECEIVE,
    and surviving requests re-correlate into exactly the CAGs the full
    log would have produced — only the {e mix} of requests thins out,
    which preserves pattern-frequency shares in expectation.

    Attribution is exact for activities that became CAG vertices (matched
    by timestamp, context and flow) and falls back to per-request context
    intervals for syscall chunks the engine merged into a grown vertex.
    Activities attributed to no request (unfilterable noise such as
    direct-to-database clients, plus name-filtered chatter) are the
    "non-request-causal" population that [drop_non_causal] removes. *)

type stats = {
  activities_before : int;
  activities_after : int;
  bytes_before : int;  (** {!Trace.Binary_format} encoded size, input. *)
  bytes_after : int;  (** Encoded size of the reduced collection. *)
  requests_total : int;  (** Causal paths found (finished + deformed). *)
  requests_kept : int;
  non_causal : int;  (** Activities attributed to no request. *)
  effective_p : float;
      (** The per-request keep probability actually used: the configured
          [p] for probabilistic sampling, the budget-derived one for
          adaptive, 1.0 otherwise. *)
}

val ratio : stats -> float
(** [bytes_before / bytes_after]; infinite when everything was dropped. *)

val sampled_share : stats -> float
(** [requests_kept / requests_total] (1.0 when no requests were found). *)

val pp_stats : Format.formatter -> stats -> unit

val apply :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  correlate:Core.Correlator.config ->
  policy:Policy.t ->
  Trace.Log.collection ->
  Trace.Log.collection * stats
(** Reduce one batch. [correlate] supplies the entry points and window
    used to attribute activities to requests (its [transform] filters
    affect attribution only, never which activities survive — use the
    policy's [drop_programs] to actually delete by name). A {!Policy.none}
    policy returns the collection unchanged without correlating.

    Reduction telemetry (bytes before/after, requests seen/kept, dropped
    activities) is recorded into [telemetry] (default
    {!Telemetry.Registry.default}) under [pt_store_reduce_*].

    The attribution pass (counting causal activities, then keeping or
    dropping whole requests) runs per host-log across [pool] (or a
    transient pool of [jobs] domains; default
    {!Parallel.Pool.default_jobs}). The attribution tables are read-only
    during both passes and results merge in log order, so the reduced
    collection is identical at any [jobs]. *)
