module Activity = Trace.Activity
module Log = Trace.Log
module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

type predicate = {
  since_ns : int option;
  until_ns : int option;
  hosts : string list option;
}

let all = { since_ns = None; until_ns = None; hosts = None }
let predicate ?since_ns ?until_ns ?hosts () = { since_ns; until_ns; hosts }

type stats = {
  segments_total : int;
  segments_scanned : int;
  records_scanned : int;
  records_returned : int;
  seconds : float;
}

let pp_stats ppf s =
  Format.fprintf ppf "%d/%d segments scanned, %d/%d records returned in %.4f s"
    s.segments_scanned s.segments_total s.records_returned s.records_scanned s.seconds

let host_wanted predicate host =
  match predicate.hosts with None -> true | Some hs -> List.mem host hs

let select manifest predicate =
  List.filter
    (fun (m : Segment.meta) ->
      Segment.overlaps m ~since_ns:predicate.since_ns ~until_ns:predicate.until_ns
      && List.exists (host_wanted predicate) m.Segment.hosts)
    manifest.Manifest.segments

let merge collections =
  let by_host = Hashtbl.create 16 in
  List.iter
    (fun collection ->
      List.iter
        (fun log ->
          let host = Log.hostname log in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_host host) in
          Hashtbl.replace by_host host (List.rev_append (List.rev (Log.to_list log)) prev))
        collection)
    collections;
  Hashtbl.fold (fun host acts acc -> (host, acts) :: acc) by_host []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (hostname, acts) -> Log.of_list ~hostname (List.rev acts))

(* The native merge: logs of one hostname across segments concatenate by
   integer row blits into one arena per host, stable-sorted once at the
   end — same result order as the record-list [merge] above. *)
let merge_native (collections : Trace.Arena.t list list) =
  let by_host : (int, Trace.Arena.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun arenas ->
      List.iter
        (fun src ->
          let acc =
            match Hashtbl.find_opt by_host (Trace.Arena.host_sid src) with
            | Some acc -> acc
            | None ->
                let acc =
                  Trace.Arena.create_sid
                    ~capacity:(max 64 (Trace.Arena.length src))
                    (Trace.Arena.host_sid src)
                in
                Hashtbl.replace by_host (Trace.Arena.host_sid src) acc;
                acc
          in
          for i = 0 to Trace.Arena.length src - 1 do
            Trace.Arena.append_row acc src i
          done)
        arenas)
    collections;
  let arenas = Hashtbl.fold (fun _ a acc -> a :: acc) by_host [] in
  List.iter Trace.Arena.sort_by_time arenas;
  List.sort
    (fun a b -> String.compare (Trace.Arena.hostname a) (Trace.Arena.hostname b))
    arenas

let record_matches predicate (a : Activity.t) =
  let ts = Sim_time.to_ns a.timestamp in
  (match predicate.since_ns with Some s -> ts >= s | None -> true)
  && match predicate.until_ns with Some u -> ts <= u | None -> true

let ts_matches predicate ts =
  (match predicate.since_ns with Some s -> ts >= s | None -> true)
  && match predicate.until_ns with Some u -> ts <= u | None -> true

let record_query_telemetry telemetry stats =
  Telemetry.Histogram.observe
    (R.histogram telemetry ~help:"Store query wall time, seconds" "pt_store_query_seconds")
    stats.seconds;
  R.add
    (R.counter telemetry ~help:"Segments decoded by store queries"
       "pt_store_query_segments_scanned_total")
    stats.segments_scanned;
  R.add
    (R.counter telemetry ~help:"Segments skipped via the manifest index"
       "pt_store_query_segments_pruned_total")
    (stats.segments_total - stats.segments_scanned);
  R.add
    (R.counter telemetry ~help:"Records returned by store queries"
       "pt_store_query_records_returned_total")
    stats.records_returned

(* Decode the selected segments (in parallel when there are several and
   more than one worker), surfacing the first error in manifest order so
   a failing query reports the same segment at any [jobs]. *)
let decode_selected ?pool ?jobs ~read metas =
  let n = Array.length metas in
  let jobs =
    match (pool, jobs) with
    | Some p, _ -> Parallel.Pool.size p
    | None, Some j -> max 1 j
    | None, None -> Parallel.Pool.default_jobs ()
  in
  let decoded =
    if n <= 1 || jobs <= 1 then Array.map (fun m -> read m) metas
    else
      let scan p = Parallel.Pool.map p ~n (fun i -> read metas.(i)) in
      match pool with Some p -> scan p | None -> Parallel.Pool.with_pool ~jobs scan
  in
  let rec collect acc i =
    if i >= n then Ok (List.rev acc)
    else
      match decoded.(i) with
      | Ok collection -> collect (collection :: acc) (i + 1)
      | Error e -> Error e
  in
  collect [] 0

let run_native_with ?(telemetry = R.default) ?pool ?jobs ~read manifest predicate =
  let t0 = Unix.gettimeofday () in
  let selected = select manifest predicate in
  match decode_selected ?pool ?jobs ~read (Array.of_list selected) with
  | Error e -> Error e
  | Ok collections ->
      let records_scanned =
        List.fold_left (fun acc c -> acc + Trace.Arena.total c) 0 collections
      in
      let result =
        merge_native collections
        |> List.filter_map (fun arena ->
               if not (host_wanted predicate (Trace.Arena.hostname arena)) then None
               else begin
                 let kept =
                   Trace.Arena.create_sid
                     ~capacity:(max 1 (Trace.Arena.length arena))
                     (Trace.Arena.host_sid arena)
                 in
                 for i = 0 to Trace.Arena.length arena - 1 do
                   if ts_matches predicate (Trace.Arena.ts arena i) then
                     Trace.Arena.append_row kept arena i
                 done;
                 if Trace.Arena.length kept = 0 then None else Some kept
               end)
      in
      let seconds = Unix.gettimeofday () -. t0 in
      let stats =
        {
          segments_total = List.length manifest.Manifest.segments;
          segments_scanned = List.length selected;
          records_scanned;
          records_returned = Trace.Arena.total result;
          seconds;
        }
      in
      record_query_telemetry telemetry stats;
      Ok (result, stats)

let run_with ?(telemetry = R.default) ?pool ?jobs ~read manifest predicate =
  let t0 = Unix.gettimeofday () in
  let selected = select manifest predicate in
  match decode_selected ?pool ?jobs ~read (Array.of_list selected) with
  | Error e -> Error e
  | Ok collections ->
      let records_scanned = List.fold_left (fun acc c -> acc + Log.total c) 0 collections in
      let result =
        merge collections
        |> List.filter (fun log -> host_wanted predicate (Log.hostname log))
        |> Log.map_activities (fun a -> if record_matches predicate a then Some a else None)
        |> List.filter (fun log -> Log.length log > 0)
      in
      let seconds = Unix.gettimeofday () -. t0 in
      let stats =
        {
          segments_total = List.length manifest.Manifest.segments;
          segments_scanned = List.length selected;
          records_scanned;
          records_returned = Log.total result;
          seconds;
        }
      in
      record_query_telemetry telemetry stats;
      Ok (result, stats)

let run_native ?telemetry ?pool ?jobs ~dir predicate =
  match Manifest.load ~dir with
  | Error e -> Error e
  | Ok manifest ->
      run_native_with ?telemetry ?pool ?jobs
        ~read:(fun m -> Segment.read_native ~dir m)
        manifest predicate

let run ?telemetry ?pool ?jobs ~dir predicate =
  Result.map
    (fun (arenas, stats) -> (Trace.Arena.to_collection arenas, stats))
    (run_native ?telemetry ?pool ?jobs ~dir predicate)
