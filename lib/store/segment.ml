module Json = Core.Json
module Log = Trace.Log
module Sim_time = Simnet.Sim_time

type meta = {
  id : int;
  file : string;
  min_ts_ns : int;
  max_ts_ns : int;
  hosts : string list;
  records : int;
  bytes : int;
  raw_records : int;
  raw_bytes : int;
  policy : string;
}

let magic = "PTS1"
let filename id = Printf.sprintf "seg-%06d.pts" id

let overlaps meta ~since_ns ~until_ns =
  (match until_ns with Some u -> meta.min_ts_ns <= u | None -> true)
  && match since_ns with Some s -> meta.max_ts_ns >= s | None -> true

let meta_to_json m =
  Json.Obj
    [
      ("id", Json.Int m.id);
      ("file", Json.String m.file);
      ("min_ts_ns", Json.Int m.min_ts_ns);
      ("max_ts_ns", Json.Int m.max_ts_ns);
      ("hosts", Json.List (List.map (fun h -> Json.String h) m.hosts));
      ("records", Json.Int m.records);
      ("bytes", Json.Int m.bytes);
      ("raw_records", Json.Int m.raw_records);
      ("raw_bytes", Json.Int m.raw_bytes);
      ("policy", Json.String m.policy);
    ]

let int_field j name =
  match Json.member name j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "segment meta: missing int field %S" name)

let string_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "segment meta: missing string field %S" name)

let ( let* ) = Result.bind

let meta_of_json j =
  let* id = int_field j "id" in
  let* file = string_field j "file" in
  let* min_ts_ns = int_field j "min_ts_ns" in
  let* max_ts_ns = int_field j "max_ts_ns" in
  let* hosts =
    match Json.member "hosts" j with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.String h -> Ok (h :: acc)
            | _ -> Error "segment meta: non-string host")
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "segment meta: missing list field \"hosts\""
  in
  let* records = int_field j "records" in
  let* bytes = int_field j "bytes" in
  let* raw_records = int_field j "raw_records" in
  let* raw_bytes = int_field j "raw_bytes" in
  let* policy = string_field j "policy" in
  Ok { id; file; min_ts_ns; max_ts_ns; hosts; records; bytes; raw_records; raw_bytes; policy }

let time_bounds arenas =
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun arena ->
      match Trace.Arena.time_bounds arena with
      | None -> ()
      | Some (a, b) ->
          let a = Sim_time.to_ns a and b = Sim_time.to_ns b in
          if a < !lo then lo := a;
          if b > !hi then hi := b)
    arenas;
  (!lo, !hi)

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let read_u32be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode_native ~id ~policy ?raw_records ?raw_bytes arenas =
  let records = Trace.Arena.total arenas in
  if records = 0 then invalid_arg "Segment.encode: empty collection";
  let payload = Trace.Binary_format.encode_native arenas in
  let raw_records = Option.value ~default:records raw_records in
  let raw_bytes = Option.value ~default:(String.length payload) raw_bytes in
  let min_ts_ns, max_ts_ns = time_bounds arenas in
  let meta =
    {
      id;
      file = filename id;
      min_ts_ns;
      max_ts_ns;
      hosts = List.map Trace.Arena.hostname arenas |> List.sort_uniq String.compare;
      records;
      bytes = String.length payload;
      raw_records;
      raw_bytes;
      policy;
    }
  in
  let header = Json.to_string (meta_to_json meta) in
  let buf = Buffer.create (String.length payload + String.length header + 8) in
  Buffer.add_string buf magic;
  Buffer.add_string buf (u32be (String.length header));
  Buffer.add_string buf header;
  Buffer.add_string buf payload;
  (meta, Buffer.contents buf)

let encode ~id ~policy ?raw_records ?raw_bytes collection =
  encode_native ~id ~policy ?raw_records ?raw_bytes (Trace.Arena.of_collection collection)

let write_data ~dir (meta, data) =
  let oc = open_out_bin (Filename.concat dir meta.file) in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
  meta

let write ~dir ~id ~policy ?raw_records ?raw_bytes collection =
  write_data ~dir (encode ~id ~policy ?raw_records ?raw_bytes collection)

let write_native ~dir ~id ~policy ?raw_records ?raw_bytes arenas =
  write_data ~dir (encode_native ~id ~policy ?raw_records ?raw_bytes arenas)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

(* [pos]/[len] delimit the segment inside [data] (a whole file: pos 0;
   an embedded section of a bundle: the section's body). Offsets in
   errors are absolute within [data], so they are container-relative.
   On success, returns the meta plus the payload's [pos, len) region. *)
let parse_header_at data ~pos ~len ~what =
  if pos < 0 || len < 0 || pos + len > String.length data then
    Error (Printf.sprintf "%s: segment region [%d, %d) exceeds input" what pos (pos + len))
  else if len < 8 || not (String.equal (String.sub data pos 4) magic) then
    Error (Printf.sprintf "%s: not a PTS1 segment at offset %d" what pos)
  else begin
    let header_len = read_u32be data (pos + 4) in
    if 8 + header_len > len then
      Error (Printf.sprintf "%s: truncated segment header at offset %d" what (pos + 4))
    else
      match Json.of_string (String.sub data (pos + 8) header_len) with
      | Error e -> Error (Printf.sprintf "%s: bad segment header at offset %d: %s" what (pos + 8) e)
      | Ok j -> (
          match meta_of_json j with
          | Error e -> Error (Printf.sprintf "%s: at offset %d: %s" what (pos + 8) e)
          | Ok meta ->
              let skip = 8 + header_len in
              Ok (meta, pos + skip, len - skip))
  end

let parse_header data ~path =
  Result.map
    (fun (meta, payload_at, _) -> (meta, payload_at))
    (parse_header_at data ~pos:0 ~len:(String.length data) ~what:path)

let read_meta ~path =
  match read_file path with
  | Error e -> Error e
  | Ok data -> Result.map fst (parse_header data ~path)

let read_embedded_native ~data ~pos ~len ~what meta =
  match parse_header_at data ~pos ~len ~what with
  | Error e -> Error e
  | Ok (header_meta, payload_at, payload_len) ->
      if header_meta.id <> meta.id || header_meta.records <> meta.records then
        Error
          (Printf.sprintf
             "%s: header (id %d, %d records) disagrees with manifest (id %d, %d records)" what
             header_meta.id header_meta.records meta.id meta.records)
      else begin
        match Trace.Binary_format.decode_native_region data ~pos:payload_at ~len:payload_len with
        | Error e -> Error (Printf.sprintf "%s: %s" what e)
        | Ok arenas ->
            let n = Trace.Arena.total arenas in
            if n <> meta.records then
              Error
                (Printf.sprintf "%s: payload holds %d records, header declares %d" what n
                   meta.records)
            else Ok arenas
      end

let read_embedded ~data ~pos ~len ~what meta =
  Result.map Trace.Arena.to_collection (read_embedded_native ~data ~pos ~len ~what meta)

let read_native ~dir meta =
  let path = Filename.concat dir meta.file in
  match read_file path with
  | Error e -> Error e
  | Ok data -> read_embedded_native ~data ~pos:0 ~len:(String.length data) ~what:path meta

let read ~dir meta = Result.map Trace.Arena.to_collection (read_native ~dir meta)
