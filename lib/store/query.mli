(** Reading a store back: time-range and host-predicate queries.

    Selection happens in two stages. First the {!Manifest} prunes: only
    segments whose index header overlaps the predicate are opened at all,
    so a query over a narrow time window of a long run decodes a small
    fraction of the store. Then the surviving segments are decoded and
    filtered record by record, and per-host logs from different segments
    are merged back into one sorted collection. *)

type predicate = {
  since_ns : int option;  (** Inclusive lower timestamp bound. *)
  until_ns : int option;  (** Inclusive upper timestamp bound. *)
  hosts : string list option;  (** Restrict to these hostnames. *)
}

val all : predicate

val predicate :
  ?since_ns:int -> ?until_ns:int -> ?hosts:string list -> unit -> predicate

type stats = {
  segments_total : int;
  segments_scanned : int;  (** Segments actually decoded. *)
  records_scanned : int;  (** Records in the decoded segments. *)
  records_returned : int;
  seconds : float;  (** Wall time of the whole query. *)
}

val pp_stats : Format.formatter -> stats -> unit

val select : Manifest.t -> predicate -> Segment.meta list
(** The manifest-level pruning alone (exposed for tests and [stat]). *)

val merge : Trace.Log.collection list -> Trace.Log.collection
(** Merge collections: logs of the same hostname are combined and
    re-sorted; result ordered by hostname. *)

val run_with :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  read:(Segment.meta -> (Trace.Log.collection, string) result) ->
  Manifest.t ->
  predicate ->
  (Trace.Log.collection * stats, string) result
(** The query engine over an abstract segment source: [read] resolves a
    selected meta to its decoded collection (from a directory, or from
    sections embedded in a bundle container — see [Bundle.Reader]). All
    pruning, parallel decode, merge and record filtering is shared; the
    semantics and determinism guarantees of {!run} apply. *)

val merge_native : Trace.Arena.t list list -> Trace.Arena.t list
(** {!merge} in the native representation: per-host concatenation is an
    integer row blit, with one stable sort per host at the end. *)

val run_native_with :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  read:(Segment.meta -> (Trace.Arena.t list, string) result) ->
  Manifest.t ->
  predicate ->
  (Trace.Arena.t list * stats, string) result
(** {!run_with} without leaving the native representation: segments decode
    straight into arenas, merge/filter are integer row copies. Same
    pruning, ordering and determinism guarantees. *)

val run_native :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  dir:string ->
  predicate ->
  (Trace.Arena.t list * stats, string) result
(** {!run} in the native representation; {!run} itself is this plus a
    record-list materialisation. *)

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  dir:string ->
  predicate ->
  (Trace.Log.collection * stats, string) result
(** Execute a query against the store at [dir]. Query wall time and
    scan/return counts are recorded into [telemetry] under
    [pt_store_query_*].

    Surviving segments are decoded in parallel across [pool] (or a
    transient pool of [jobs] domains; default {!Parallel.Pool.default_jobs}).
    Decoding is per-segment and the results are merged in manifest order,
    so output — including which segment a failing query blames — is
    identical at any [jobs]. [jobs <= 1] or a single segment decodes
    inline with no domains spawned. *)
