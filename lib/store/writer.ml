module Activity = Trace.Activity
module Log = Trace.Log
module R = Telemetry.Registry

type stats = {
  segments : int;
  records_in : int;
  records_out : int;
  bytes_in : int;
  bytes_out : int;
  requests_seen : int;
  requests_kept : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d segments; %d -> %d records, %d -> %d bytes; %d/%d requests kept" s.segments
    s.records_in s.records_out s.bytes_in s.bytes_out s.requests_kept s.requests_seen

type t = {
  dir : string;
  policy : Policy.t;
  policy_str : string;
  correlate : Core.Correlator.config option;
  roll_records : int;
  telemetry : R.t;
  buffers : (string, Activity.t list ref) Hashtbl.t;
  mutable pending : int;
  mutable manifest : Manifest.t;
  mutable stats : stats;
  m_segments : R.counter;
  m_records_in : R.counter;
  m_records_out : R.counter;
  m_bytes_out : R.counter;
  m_flush : Telemetry.Histogram.t;
}

let zero_stats =
  {
    segments = 0;
    records_in = 0;
    records_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    requests_seen = 0;
    requests_kept = 0;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let create ?(telemetry = R.default) ?(policy = Policy.none) ?correlate
    ?(roll_records = 65536) ~dir () =
  if (not (Policy.is_none policy)) && Option.is_none correlate then
    invalid_arg "Writer.create: a reduction policy needs a ~correlate config";
  if roll_records <= 0 then invalid_arg "Writer.create: roll_records must be positive";
  mkdir_p dir;
  let manifest =
    if Manifest.exists ~dir then
      match Manifest.load ~dir with Ok m -> m | Error e -> failwith e
    else Manifest.empty
  in
  {
    dir;
    policy;
    policy_str = Policy.to_string policy;
    correlate;
    roll_records;
    telemetry;
    buffers = Hashtbl.create 16;
    pending = 0;
    manifest;
    stats = zero_stats;
    m_segments =
      R.counter telemetry ~help:"Segments written by the store writer"
        "pt_store_segments_written_total";
    m_records_in =
      R.counter telemetry ~help:"Activities ingested by the store writer"
        "pt_store_records_ingested_total";
    m_records_out =
      R.counter telemetry ~help:"Activities written to segments after reduction"
        "pt_store_records_written_total";
    m_bytes_out =
      R.counter telemetry ~help:"Segment payload bytes written"
        "pt_store_bytes_written_total";
    m_flush =
      R.histogram telemetry ~help:"Store segment flush wall time, seconds"
        "pt_store_flush_seconds";
  }

let stats t = t.stats

let take_batch t =
  let collection =
    Hashtbl.fold (fun host acts acc -> (host, !acts) :: acc) t.buffers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (hostname, acts) -> Log.of_list ~hostname (List.rev acts))
  in
  Hashtbl.reset t.buffers;
  t.pending <- 0;
  collection

let flush t =
  if t.pending > 0 then begin
    let t0 = Unix.gettimeofday () in
    let batch = take_batch t in
    let reduced, raw_records, raw_bytes, requests_seen, requests_kept =
      if Policy.is_none t.policy then (batch, Log.total batch, -1, 0, 0)
      else
        let correlate = Option.get t.correlate in
        let reduced, r =
          Reduce.apply ~telemetry:t.telemetry ~correlate ~policy:t.policy batch
        in
        ( reduced,
          r.Reduce.activities_before,
          r.Reduce.bytes_before,
          r.Reduce.requests_total,
          r.Reduce.requests_kept )
    in
    let records_out = Log.total reduced in
    let meta =
      if records_out = 0 then None
      else begin
        let id = t.manifest.Manifest.next_id in
        let meta =
          if raw_bytes < 0 then
            (* No reduction: raw size is the written size. *)
            Segment.write ~dir:t.dir ~id ~policy:t.policy_str reduced
          else
            Segment.write ~dir:t.dir ~id ~policy:t.policy_str ~raw_records ~raw_bytes
              reduced
        in
        t.manifest <- Manifest.add t.manifest meta;
        Manifest.save t.manifest ~dir:t.dir;
        Some meta
      end
    in
    let bytes_out = match meta with Some m -> m.Segment.bytes | None -> 0 in
    let bytes_in = if raw_bytes < 0 then bytes_out else raw_bytes in
    t.stats <-
      {
        segments = (t.stats.segments + match meta with Some _ -> 1 | None -> 0);
        records_in = t.stats.records_in + raw_records;
        records_out = t.stats.records_out + records_out;
        bytes_in = t.stats.bytes_in + bytes_in;
        bytes_out = t.stats.bytes_out + bytes_out;
        requests_seen = t.stats.requests_seen + requests_seen;
        requests_kept = t.stats.requests_kept + requests_kept;
      };
    (match meta with Some _ -> R.incr t.m_segments | None -> ());
    R.add t.m_records_in raw_records;
    R.add t.m_records_out records_out;
    R.add t.m_bytes_out bytes_out;
    Telemetry.Histogram.observe t.m_flush (Unix.gettimeofday () -. t0)
  end

let observe t (a : Activity.t) =
  let host = a.Activity.context.host in
  (match Hashtbl.find_opt t.buffers host with
  | Some acts -> acts := a :: !acts
  | None -> Hashtbl.replace t.buffers host (ref [ a ]));
  t.pending <- t.pending + 1;
  if t.pending >= t.roll_records then flush t

let ingest t collection =
  List.concat_map Log.to_list collection
  |> List.stable_sort Activity.compare_by_time
  |> List.iter (observe t)

let close t =
  flush t;
  Manifest.save t.manifest ~dir:t.dir;
  t.stats
