module Activity = Trace.Activity
module Arena = Trace.Arena
module Intern = Trace.Intern
module Log = Trace.Log
module R = Telemetry.Registry

type stats = {
  segments : int;
  records_in : int;
  records_out : int;
  bytes_in : int;
  bytes_out : int;
  requests_seen : int;
  requests_kept : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d segments; %d -> %d records, %d -> %d bytes; %d/%d requests kept" s.segments
    s.records_in s.records_out s.bytes_in s.bytes_out s.requests_kept s.requests_seen

type t = {
  dir : string;
  policy : Policy.t;
  policy_str : string;
  correlate : Core.Correlator.config option;
  roll_records : int;
  telemetry : R.t;
  buffers : (int, Arena.t) Hashtbl.t;  (* host string id -> batch arena *)
  mutable pending : int;
  mutable manifest : Manifest.t;
  mutable stats : stats;
  m_segments : R.counter;
  m_records_in : R.counter;
  m_records_out : R.counter;
  m_bytes_out : R.counter;
  m_flush : Telemetry.Histogram.t;
}

let zero_stats =
  {
    segments = 0;
    records_in = 0;
    records_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    requests_seen = 0;
    requests_kept = 0;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let create ?(telemetry = R.default) ?(policy = Policy.none) ?correlate
    ?(roll_records = 65536) ~dir () =
  if (not (Policy.is_none policy)) && Option.is_none correlate then
    invalid_arg "Writer.create: a reduction policy needs a ~correlate config";
  if roll_records <= 0 then invalid_arg "Writer.create: roll_records must be positive";
  mkdir_p dir;
  let manifest =
    if Manifest.exists ~dir then
      match Manifest.load ~dir with Ok m -> m | Error e -> failwith e
    else Manifest.empty
  in
  {
    dir;
    policy;
    policy_str = Policy.to_string policy;
    correlate;
    roll_records;
    telemetry;
    buffers = Hashtbl.create 16;
    pending = 0;
    manifest;
    stats = zero_stats;
    m_segments =
      R.counter telemetry ~help:"Segments written by the store writer"
        "pt_store_segments_written_total";
    m_records_in =
      R.counter telemetry ~help:"Activities ingested by the store writer"
        "pt_store_records_ingested_total";
    m_records_out =
      R.counter telemetry ~help:"Activities written to segments after reduction"
        "pt_store_records_written_total";
    m_bytes_out =
      R.counter telemetry ~help:"Segment payload bytes written"
        "pt_store_bytes_written_total";
    m_flush =
      R.histogram telemetry ~help:"Store segment flush wall time, seconds"
        "pt_store_flush_seconds";
  }

let stats t = t.stats

(* Per-host batch arenas, handed out sorted by hostname and each put into
   Log order (timestamp, context, kind) — the order Log.of_list gave the
   text-era batches, so segment bytes are unchanged. *)
let take_batch t =
  let arenas =
    Hashtbl.fold (fun _ arena acc -> arena :: acc) t.buffers []
    |> List.sort (fun a b -> String.compare (Arena.hostname a) (Arena.hostname b))
  in
  List.iter Arena.sort_by_time arenas;
  Hashtbl.reset t.buffers;
  t.pending <- 0;
  arenas

let flush t =
  if t.pending > 0 then begin
    let t0 = Unix.gettimeofday () in
    let batch = take_batch t in
    (* The unreduced path stays native end to end; reduction needs request
       attribution over record lists, so only that path materialises. *)
    let write_native, reduced, raw_records, raw_bytes, requests_seen, requests_kept =
      if Policy.is_none t.policy then (Some batch, [], Arena.total batch, -1, 0, 0)
      else
        let correlate = Option.get t.correlate in
        let reduced, r =
          Reduce.apply ~telemetry:t.telemetry ~correlate ~policy:t.policy
            (Arena.to_collection batch)
        in
        ( None,
          reduced,
          r.Reduce.activities_before,
          r.Reduce.bytes_before,
          r.Reduce.requests_total,
          r.Reduce.requests_kept )
    in
    let records_out =
      match write_native with Some batch -> Arena.total batch | None -> Log.total reduced
    in
    let meta =
      if records_out = 0 then None
      else begin
        let id = t.manifest.Manifest.next_id in
        let meta =
          match write_native with
          | Some batch -> Segment.write_native ~dir:t.dir ~id ~policy:t.policy_str batch
          | None ->
              Segment.write ~dir:t.dir ~id ~policy:t.policy_str ~raw_records ~raw_bytes
                reduced
        in
        t.manifest <- Manifest.add t.manifest meta;
        Manifest.save t.manifest ~dir:t.dir;
        Some meta
      end
    in
    let bytes_out = match meta with Some m -> m.Segment.bytes | None -> 0 in
    let bytes_in = if raw_bytes < 0 then bytes_out else raw_bytes in
    t.stats <-
      {
        segments = (t.stats.segments + match meta with Some _ -> 1 | None -> 0);
        records_in = t.stats.records_in + raw_records;
        records_out = t.stats.records_out + records_out;
        bytes_in = t.stats.bytes_in + bytes_in;
        bytes_out = t.stats.bytes_out + bytes_out;
        requests_seen = t.stats.requests_seen + requests_seen;
        requests_kept = t.stats.requests_kept + requests_kept;
      };
    (match meta with Some _ -> R.incr t.m_segments | None -> ());
    R.add t.m_records_in raw_records;
    R.add t.m_records_out records_out;
    R.add t.m_bytes_out bytes_out;
    Telemetry.Histogram.observe t.m_flush (Unix.gettimeofday () -. t0)
  end

let buffer_for t host =
  match Hashtbl.find_opt t.buffers host with
  | Some arena -> arena
  | None ->
      let arena = Arena.create_sid ~capacity:256 host in
      Hashtbl.replace t.buffers host arena;
      arena

(* The native ingest row: five ints in, one arena append, no allocation. *)
let observe_row t ~host ~kind ~ts ~ctx ~flow ~size =
  Arena.append (buffer_for t host) ~kind ~ts ~ctx ~flow ~size;
  t.pending <- t.pending + 1;
  if t.pending >= t.roll_records then flush t

let observe t (a : Activity.t) =
  Arena.append_activity (buffer_for t (Intern.string_id a.Activity.context.host)) a;
  t.pending <- t.pending + 1;
  if t.pending >= t.roll_records then flush t

(* Interleave the per-host arenas in global (timestamp, context, kind)
   order — the same segment time-partitioning a live feed would produce,
   and exactly the order the text-era ingest got from stable-sorting the
   concatenated lists (ties across inputs resolve by input position). A
   linear scan over the heads is plenty: inputs are per-host, and the
   comparisons are on ints. *)
let ingest_native t arenas =
  let arenas =
    List.filter_map
      (fun a ->
        if Arena.length a = 0 then None
        else if Arena.is_sorted a then Some a
        else begin
          let c = Arena.copy a in
          Arena.sort_by_time c;
          Some c
        end)
      arenas
    |> Array.of_list
  in
  let n = Array.length arenas in
  let cursor = Array.make n 0 in
  let len = Array.map Arena.length arenas in
  (* Ties on timestamp are rare, so the scan compares only the head
     timestamps and falls back to the full (context, kind, input index)
     ordering on an exact tie. *)
  let tie_break i j =
    let a = arenas.(i) and b = arenas.(j) in
    let ai = cursor.(i) and bj = cursor.(j) in
    match Intern.compare_context_id (Arena.ctx_id a ai) (Arena.ctx_id b bj) with
    | 0 -> (
        match
          Int.compare
            (Activity.kind_priority (Arena.kind a ai))
            (Activity.kind_priority (Arena.kind b bj))
        with
        | 0 -> Int.compare i j
        | c -> c)
    | c -> c
  in
  (* One destination batch arena per input (inputs are per-host), looked
     up once and refreshed after each flush swaps the buffers out — not a
     hash probe per record. *)
  let dests = Array.map (fun a -> buffer_for t (Arena.host_sid a)) arenas in
  (* Head timestamps live in a plain int array so the scan is array reads
     and compares; each advance refreshes one slot. *)
  let head_ts =
    Array.init n (fun i -> if len.(i) > 0 then Arena.ts arenas.(i) 0 else max_int)
  in
  (* First index in [lo+1, cap) of [a] whose timestamp reaches [bound]:
     exponential probe then binary search, assuming ts.(lo) < bound. *)
  let gallop_hi a ~lo ~cap bound =
    let prev = ref lo and step = ref 1 in
    let probe = ref (lo + 1) in
    while !probe < cap && Arena.ts a !probe < bound do
      prev := !probe;
      step := !step * 2;
      probe := lo + !step
    done;
    let l = ref (!prev + 1) and r = ref (min !probe cap) in
    while !l < !r do
      let m = (!l + !r) / 2 in
      if Arena.ts a m < bound then l := m + 1 else r := m
    done;
    !l
  in
  let remaining = ref 0 in
  Array.iter (fun l -> remaining := !remaining + l) len;
  while !remaining > 0 do
    (* Best head, plus the runner-up timestamp bounding its run. *)
    let best = ref (-1) and best_ts = ref max_int and next_ts = ref max_int in
    for i = 0 to n - 1 do
      if cursor.(i) < len.(i) then begin
        let ts = head_ts.(i) in
        if !best < 0 then begin
          best := i;
          best_ts := ts
        end
        else if ts < !best_ts then begin
          next_ts := !best_ts;
          best := i;
          best_ts := ts
        end
        else if ts = !best_ts && tie_break i !best < 0 then begin
          next_ts := !best_ts;
          best := i
        end
        else if ts < !next_ts then next_ts := ts
      end
    done;
    let i = !best in
    let a = arenas.(i) in
    let lo = cursor.(i) in
    (* The whole strictly-smaller run moves in one blit: the merge is
       stable per input, so a run is a contiguous slice and only its cut
       points (roll boundary, or a cross-arena timestamp tie needing the
       full tie-break) are decided row by row. *)
    let room = t.roll_records - t.pending in
    let cap = if room < len.(i) - lo then lo + room else len.(i) in
    let hi =
      if !best_ts = !next_ts then lo + 1
      else if !next_ts = max_int then cap
      else gallop_hi a ~lo ~cap !next_ts
    in
    let hi = max hi (lo + 1) in
    Arena.append_range dests.(i) a ~lo ~hi;
    cursor.(i) <- hi;
    head_ts.(i) <- (if hi < len.(i) then Arena.ts a hi else max_int);
    remaining := !remaining - (hi - lo);
    t.pending <- t.pending + (hi - lo);
    if t.pending >= t.roll_records then begin
      flush t;
      Array.iteri (fun j a -> dests.(j) <- buffer_for t (Arena.host_sid a)) arenas
    end
  done

let ingest t collection = ingest_native t (Arena.of_collection collection)

let close t =
  flush t;
  Manifest.save t.manifest ~dir:t.dir;
  t.stats
