(** A fixed pool of worker domains with deterministic fork/join.

    The pool runs index-range jobs: [run pool ~n f] evaluates [f i] for
    every [i] in [0 .. n-1], distributing indices over the pool's domains
    (the calling domain participates too), and returns only when all [n]
    tasks have completed. Task results are keyed by index, never by
    scheduling order, so a [map] is deterministic regardless of how the
    domains interleave — the property the sharded correlator and the
    store scanners rely on.

    The pool is {e not} re-entrant: a task that calls back into its own
    pool (or a second [run] racing a first) is executed inline on the
    calling domain instead — correct, just serial. A pool of [jobs = 1]
    spawns no domains at all and runs everything inline. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (clamped to at least
    one job). The pool lives until {!shutdown}. *)

val size : t -> int
(** The parallelism degree [jobs] the pool was created with. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Running jobs finish first. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] even on exceptions. *)

val run : t -> n:int -> (int -> unit) -> unit
(** Evaluate [f i] for [i = 0 .. n-1] across the pool and wait for all of
    them. If any task raises, the first exception (by completion order)
    is re-raised in the caller after the join — remaining tasks still
    run, so the pool stays consistent. *)

val map : t -> n:int -> (int -> 'a) -> 'a array
(** [map pool ~n f] is [| f 0; f 1; ...; f (n-1) |], computed across the
    pool. The result array is in index order — deterministic no matter
    how the domains interleave. *)

val map_list : t -> 'a list -> ('a -> 'b) -> 'b list
(** [map] over a list, preserving order. *)

val default_jobs : unit -> int
(** The parallelism degree used when the caller does not choose one: the
    [PT_JOBS] environment variable if set to a positive integer, else
    [Domain.recommended_domain_count ()]. Clamped to [1 .. 64]. *)

val shared : unit -> t
(** A process-wide pool of {!default_jobs} domains, created on first use
    and never shut down (worker domains die with the process). Callers
    that take an optional [?pool] argument default to this. *)
