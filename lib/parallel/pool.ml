type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;  (* next index to claim *)
  completed : int Atomic.t;  (* tasks finished (ran or failed) *)
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;  (* bumped per published job *)
  mutable failure : exn option;  (* first exception of the current job *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  busy : bool Atomic.t;  (* re-entrancy guard: a job is in flight *)
}

(* Claim indices until the range is exhausted, recording the first
   failure. Runs without the lock held. *)
let work_on t (job : job) =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try job.f i
       with e ->
         Mutex.lock t.lock;
         if t.failure = None then t.failure <- Some e;
         Mutex.unlock t.lock);
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.n then begin
        Mutex.lock t.lock;
        Condition.broadcast t.work_done;
        Mutex.unlock t.lock
      end;
      claim ()
    end
  in
  claim ()

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stop) && (t.generation = !seen || t.job = None) do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      work_on t job;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      failure = None;
      stop = false;
      domains = [];
      busy = Atomic.make false;
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_inline ~n f =
  for i = 0 to n - 1 do
    f i
  done

let run t ~n f =
  if n <= 0 then ()
  else if t.jobs = 1 || n = 1 || not (Atomic.compare_and_set t.busy false true) then
    (* Single-domain pool, trivial range, or a task re-entering its own
       pool mid-job: degrade to inline execution. *)
    run_inline ~n f
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () ->
        let job = { f; n; next = Atomic.make 0; completed = Atomic.make 0 } in
        Mutex.lock t.lock;
        t.job <- Some job;
        t.failure <- None;
        t.generation <- t.generation + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.lock;
        (* The caller pulls indices alongside the workers. *)
        work_on t job;
        Mutex.lock t.lock;
        while Atomic.get job.completed < job.n do
          Condition.wait t.work_done t.lock
        done;
        t.job <- None;
        let failure = t.failure in
        t.failure <- None;
        Mutex.unlock t.lock;
        match failure with None -> () | Some e -> raise e)

let map t ~n f =
  let out = Array.make n None in
  run t ~n (fun i -> out.(i) <- Some (f i));
  Array.map
    (function Some v -> v | None -> invalid_arg "Pool.map: task did not complete")
    out

let map_list t xs f =
  let arr = Array.of_list xs in
  map t ~n:(Array.length arr) (fun i -> f arr.(i)) |> Array.to_list

let default_jobs () =
  let from_env =
    match Sys.getenv_opt "PT_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)
    | None -> None
  in
  let n =
    match from_env with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  max 1 (min 64 n)

let shared_pool = ref None
let shared_lock = Mutex.create ()

let shared () =
  Mutex.lock shared_lock;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
        let t = create ~jobs:(default_jobs ()) in
        shared_pool := Some t;
        t
  in
  Mutex.unlock shared_lock;
  t
