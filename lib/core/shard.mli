(** Domain-parallel offline correlation.

    The offline pipeline is embarrassingly parallel between requests that
    do not overlap in time: if the merged activity feed can be cut at an
    instant where no request is open — every entry flow that saw a BEGIN
    has seen its END (tracked as a flow set, since a chunked response
    emits several ENDs), and every message flow's sent bytes are fully
    received — then
    the two sides share no CAG, no mmap entry and no cmap ancestry, and
    correlating them in separate {!Ranker}/{!Cag_engine} instances gives
    exactly the per-epoch restriction of the serial run.

    {!correlate} finds such request-quiescent cuts (the same quiescence
    the ranker's watermark machinery waits for, computed in one sweep
    over the time-merged feed), correlates each epoch in a worker domain
    of a {!Parallel.Pool}, and merges the per-epoch results back in epoch
    order, re-keying CAG ids by each epoch's running [cags_started]
    offset — so patterns, per-pattern breakdowns and path ids are
    identical to the serial pipeline's. Requests that never close (lost
    ENDs) or flows that never balance (a silent host's unreceived sends)
    block all later cuts, so degraded feeds gracefully collapse toward
    one big epoch: still correct, just less parallel.

    What is {e not} identical to serial: wall-clock fields
    ([correlation_time], the memory proxies, [peak_*] stats are
    per-domain maxima), GC-cadence-dependent [evicted_sends], and the
    engine's [thread_reuse_blocked] count — serial carries finished-CAG
    cmap entries across epoch boundaries and counts the suppressed
    context edges; a fresh per-epoch engine has nothing to suppress.
    Neither changes any emitted path. *)

type plan

val plan :
  ?cut_margin:Simnet.Sim_time.span ->
  ?target_epochs:int ->
  Correlator.config ->
  Trace.Log.collection ->
  plan
(** Apply the transform and compute the epoch boundaries for a
    collection. [cut_margin] (default: the config's window) is the
    minimum quiescent gap cut at — at least the window, so the serial
    ranker could not have fetched across the cut either.
    [target_epochs] (default 64) coalesces adjacent candidate cuts so
    scheduling overhead stays bounded on long traces. *)

val epoch_ranges : plan -> (int * int) array
(** The chosen [lo, hi) index ranges over the time-merged feed. *)

val cut_candidates : plan -> int
(** How many quiescent boundaries the sweep found (before coalescing). *)

val correlate :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  ?cut_margin:Simnet.Sim_time.span ->
  Correlator.config ->
  Trace.Log.collection ->
  Correlator.result
(** Sharded offline correlation. [jobs] defaults to the pool's size, or
    {!Parallel.Pool.default_jobs} when no pool is given; [jobs <= 1], or
    a plan with a single epoch, falls back to the serial
    {!Correlator.correlate} path byte-for-byte. Reports the usual
    [pt_correlator_*]/[pt_ranker_*]/[pt_engine_*] metrics (counter
    totals match the serial run, see above) plus [pt_parallel_*]
    planning and per-epoch figures. *)

val correlate_arena :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  ?cut_margin:Simnet.Sim_time.span ->
  Correlator.config ->
  Trace.Arena.t list ->
  Correlator.result
(** {!correlate} fed from the native representation: the transform runs
    as {!Transform.apply_native} over the packed rows (filtering on
    interned ids, materialising only survivors), then the planning and
    per-epoch machinery is shared with the record path — so the digest
    equals both the serial and the record-path sharded run's. [jobs <= 1]
    falls back to {!Correlator.correlate_arena}. *)

val digest : Correlator.result -> string
(** A canonical hex digest of everything the pattern/report layer shows:
    finished/deformed counts, each pattern's signature, name, population
    and member path ids, per-pattern component percentage breakdowns and
    total-latency tail percentiles. Serial and sharded runs of the same
    input produce equal digests; wall-clock and memory fields are
    excluded on purpose. *)
