(** Component activity graphs (CAGs) — §3.2 of the paper.

    A CAG is the causal path of one request: a rooted directed acyclic
    graph whose vertices are activities and whose edges are either
    {e adjacent context relations} (x happened right before y in the same
    execution entity) or {e message relations} (x sent the message y
    received). Every vertex has at most two parents, and only a RECEIVE
    vertex may have two — one of each relation kind ({!validate} checks
    this structural invariant).

    Vertices are added in correlation order, which respects causality, so
    the vertex list is always a topological order. *)

type edge_kind = Context_edge | Message_edge

val pp_edge_kind : Format.formatter -> edge_kind -> unit

type vertex = private {
  vid : int;  (** Unique per correlator run; increasing in causal order. *)
  mutable activity : Trace.Activity.t;
      (** For merged SENDs/ENDs the size accumulates the whole logical
          message; for a matched RECEIVE it is the full message size and
          the timestamp is the completing chunk's. *)
  mutable parents : (edge_kind * vertex) list;
  mutable children : (edge_kind * vertex) list;
  mutable cag : t option;  (** [None] while the vertex is an orphan. *)
  mutable unreceived : int;
      (** SEND bookkeeping: bytes not yet covered by RECEIVE activities. *)
  mutable rev_sources : Trace.Activity.t list;
      (** Provenance, newest first: every input activity folded into this
          vertex (the creating one plus each merged syscall) — see
          {!sources}. The back-link table of trace bundles is built from
          this. *)
  mutable rev_pending_sources : Trace.Activity.t list;
      (** Engine bookkeeping on SEND vertices: partial RECEIVE chunks of
          the in-flight message, transferred to the RECEIVE vertex when
          the message completes. *)
}

and t = private {
  mutable cag_id : int;
  root : vertex;
  mutable rev_vertices : vertex list;
  mutable vertex_count : int;
  mutable finished : bool;
  mutable deformed : bool;
      (** The pipeline observed this path under degraded conditions (a
          straggler host was evicted, or a GC evicted one of its SENDs):
          the path may be missing activities. Orthogonal to [finished]. *)
}

module Builder : sig
  (** Mutating operations, reserved for the correlation engine. *)

  val fresh_vertex : Trace.Activity.t -> vertex
  (** An orphan vertex (no CAG, no edges). *)

  val create : cag_id:int -> vertex -> t
  (** A new unfinished CAG rooted at the given vertex (normally a BEGIN). *)

  val adopt : t -> vertex -> unit
  (** Append an orphan vertex to the CAG.
      @raise Invalid_argument if it already belongs to a CAG. *)

  val add_edge : edge_kind -> parent:vertex -> child:vertex -> unit
  (** @raise Invalid_argument if it would break the two-parent invariant. *)

  val grow_send : vertex -> int -> unit
  (** Merge a further SEND syscall's bytes into a SEND (or END) vertex. *)

  val consume : vertex -> int -> int
  (** [consume v n] subtracts [n] received bytes from [v.unreceived] and
      returns the new value (negative means a crossed message boundary). *)

  val set_full_size : vertex -> int -> unit
  (** Rewrite a RECEIVE vertex's size to the full logical message size. *)

  val refresh_receive : vertex -> timestamp:Simnet.Sim_time.t -> size:int -> unit
  (** Extend a RECEIVE vertex to a later completion of the same (grown)
      message: bump its timestamp and full size. *)

  val add_source : vertex -> Trace.Activity.t -> unit
  (** Record one more input activity as folded into this vertex (a merged
      SEND/END syscall, a RECEIVE chunk). *)

  val stash_pending_source : vertex -> Trace.Activity.t -> unit
  (** On a SEND vertex: remember a partial RECEIVE chunk of the in-flight
      message until a later chunk completes it. *)

  val take_pending_sources : vertex -> Trace.Activity.t list
  (** Drain the stashed chunks (in observation order), clearing the stash. *)

  val add_earlier_sources : vertex -> Trace.Activity.t list -> unit
  (** Record chunks observed {e before} the vertex's creating activity
      (they sort first in {!sources}). *)

  val finish : t -> unit

  val mark_deformed : t -> unit
  (** Flag the path as possibly incomplete (degraded-feed conditions); it
      is still emitted, so downstream consumers can weigh it. *)

  val renumber : t -> cag_id:int -> unit
  (** Rewrite the CAG's id. Used by the sharded correlator when merging
      per-epoch engines, whose local ids all start at zero, back into the
      single global id sequence the serial run would have assigned. *)
end

val sources : vertex -> Trace.Activity.t list
(** The input activities this vertex stands for, in observation order: the
    creating activity, then every syscall merged into it (multi-part
    SENDs/ENDs, the RECEIVE chunks of a message received piecewise).
    Always non-empty. These are post-{!Transform} activities; they differ
    from the raw stored records only in kind at entry points, which is how
    bundle back-links resolve them to exact raw records. *)

val root : t -> vertex
val is_finished : t -> bool

val is_deformed : t -> bool
(** True when the pipeline flagged this path as possibly incomplete — see
    {!Builder.mark_deformed}. Deformed-but-finished paths are counted
    separately by {!Online} so degraded feeds surface in telemetry rather
    than silently skewing profiles. *)

val vertices : t -> vertex list
(** In insertion (= topological, = causal) order. *)

val size : t -> int

val begin_ts : t -> Simnet.Sim_time.t
(** Root timestamp (the entry node's local clock). *)

val end_ts : t -> Simnet.Sim_time.t
(** Timestamp of the last vertex added (the END for finished CAGs). *)

val duration : t -> Simnet.Sim_time.span
(** [end_ts - begin_ts]. Both stamps come from the entry node's clock for
    finished CAGs, so the value is skew-free. *)

val edges : t -> (vertex * edge_kind * vertex) list
(** Every (parent, kind, child), in child insertion order. *)

val validate : t -> (unit, string) result
(** Check the paper's structural invariants: single root; every non-root
    vertex reachable from it; at most two parents; two parents only on a
    RECEIVE, one per relation kind; parents precede children (acyclicity);
    finished CAGs start with BEGIN and end with END. *)

val contexts : t -> Trace.Activity.context list
(** Distinct contexts in first-touch order. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of vertices and their parent edges. *)

val to_dot : t -> string
(** Graphviz rendering: red solid arrows for context relations, blue
    dashed for message relations — the paper's Fig. 1 conventions. *)
