module Activity = Trace.Activity
module Log = Trace.Log
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address
module Pool = Parallel.Pool
module R = Telemetry.Registry

type plan = {
  hosts : string list;  (* hostname order of the prepared collection *)
  feed : (int * Activity.t) array;  (* (host index, activity), time-merged *)
  epochs : (int * int) array;  (* chosen [lo, hi) ranges over [feed] *)
  cut_candidates : int;
  prepared : Log.collection;
}

let epoch_ranges p = p.epochs
let cut_candidates p = p.cut_candidates

(* K-way merge of the per-host logs by [compare_by_time], ties broken by
   host index — deterministic, and it preserves each host's log order, so
   slicing the feed and re-bucketing by host yields contiguous, correctly
   ordered per-host sub-logs. *)
let merge_feed (prepared : Log.collection) =
  let streams = Array.of_list (List.map (fun l -> Array.of_list (Log.to_list l)) prepared) in
  let pos = Array.map (fun _ -> 0) streams in
  let n = Array.fold_left (fun acc s -> acc + Array.length s) 0 streams in
  if n = 0 then [||]
  else begin
  let seed =
    let found = ref None in
    Array.iteri (fun h s -> if !found = None && Array.length s > 0 then found := Some (h, s.(0))) streams;
    Option.get !found
  in
  let feed = Array.make n seed in
  for out = 0 to n - 1 do
    let best = ref (-1) in
    Array.iteri
      (fun h s ->
        if pos.(h) < Array.length s then
          match !best with
          | -1 -> best := h
          | b when Activity.compare_by_time s.(pos.(h)) streams.(b).(pos.(b)) < 0 ->
              best := h
          | _ -> ())
      streams;
    let h = !best in
    feed.(out) <- (h, streams.(h).(pos.(h)));
    pos.(h) <- pos.(h) + 1
  done;
  feed
  end

let flow_key (f : Address.flow) =
  ( Address.ip_to_int f.Address.src.Address.ip,
    f.Address.src.Address.port,
    Address.ip_to_int f.Address.dst.Address.ip,
    f.Address.dst.Address.port )

(* One sweep over the merged feed: a boundary after index [i] is a valid
   cut when no request is open, every flow is byte-balanced (every SEND
   chunk fully received — which also brackets skew-displaced activities),
   and the gap to the next activity is at least [margin].

   "No request open" tracks the set of open entry flows, not a BEGIN/END
   count: a chunked response emits one BEGIN but several END activities
   (the engine folds trailing chunks into the END vertex), so a counter
   would drift negative and block every later cut. A flow opens at its
   BEGIN and closes at its first END; trailing END chunks are no-ops.
   Closing at the first chunk is safe because a cut also needs a
   [margin]-wide silent gap, and the chunks of one response sit closer
   together than the correlation window the margin defaults to — the same
   temporal-proximity assumption the sliding-window ranker itself makes.
   A flow whose END is lost (probe death) stays open forever and blocks
   all later cuts: degraded feeds shard less instead of sharding wrong. *)
let find_cuts ~margin feed =
  let n = Array.length feed in
  let open_entry = Hashtbl.create 64 in
  let open_requests = ref 0 in
  let balances = Hashtbl.create 1024 in
  let unbalanced = ref 0 in
  let adjust flow delta =
    let key = flow_key flow in
    let cur = Option.value ~default:0 (Hashtbl.find_opt balances key) in
    let next = cur + delta in
    if cur = 0 && next <> 0 then incr unbalanced
    else if cur <> 0 && next = 0 then decr unbalanced;
    Hashtbl.replace balances key next
  in
  let cuts = ref [] in
  for i = 0 to n - 1 do
    let _, (a : Activity.t) = feed.(i) in
    (* BEGIN is the client's receive (flow client->entry), END the reply
       send (flow entry->client): swap END's flow so both key on the
       (client, entry) orientation. *)
    (match a.Activity.kind with
    | Activity.Begin ->
        let key = flow_key a.message.flow in
        if not (Hashtbl.mem open_entry key) then begin
          Hashtbl.replace open_entry key ();
          incr open_requests
        end
    | Activity.End_ ->
        let f = a.Activity.message.Activity.flow in
        let key = flow_key { Address.src = f.Address.dst; dst = f.Address.src } in
        if Hashtbl.mem open_entry key then begin
          Hashtbl.remove open_entry key;
          decr open_requests
        end
    | Activity.Send -> adjust a.message.flow a.message.size
    | Activity.Receive -> adjust a.message.flow (-a.message.size));
    if !open_requests = 0 && !unbalanced = 0 && i + 1 < n then begin
      let _, (b : Activity.t) = feed.(i + 1) in
      let gap = Sim_time.diff b.Activity.timestamp a.Activity.timestamp in
      if Sim_time.compare_span gap margin >= 0 then cuts := i :: !cuts
    end
  done;
  List.rev !cuts

(* Coalesce candidate cuts down to roughly [target_epochs] ranges of
   similar record counts, so tiny epochs do not drown the win in
   per-epoch ranker/engine setup. *)
let choose_epochs ~target_epochs ~n cuts =
  let chunk = max 1 (n / max 1 target_epochs) in
  let boundaries =
    List.filter
      (let last = ref 0 in
       fun i ->
         if i + 1 - !last >= chunk then begin
           last := i + 1;
           true
         end
         else false)
      cuts
  in
  let rec ranges lo = function
    | [] -> if lo < n || n = 0 then [ (lo, n) ] else []
    | b :: rest -> (lo, b + 1) :: ranges (b + 1) rest
  in
  Array.of_list (ranges 0 boundaries)

let make_plan ~margin ~target_epochs prepared =
  let feed = merge_feed prepared in
  let cuts = find_cuts ~margin feed in
  let epochs = choose_epochs ~target_epochs ~n:(Array.length feed) cuts in
  {
    hosts = List.map Log.hostname prepared;
    feed;
    epochs;
    cut_candidates = List.length cuts;
    prepared;
  }

let plan ?cut_margin ?(target_epochs = 64) (cfg : Correlator.config) collection =
  let margin = Option.value cut_margin ~default:cfg.Correlator.window in
  make_plan ~margin ~target_epochs (Transform.apply cfg.Correlator.transform collection)

(* Every epoch keeps the full host list (possibly with empty logs), so
   ranker stream indexing matches the serial run's. *)
let epoch_collection p (lo, hi) =
  let buckets = Array.make (List.length p.hosts) [] in
  for i = hi - 1 downto lo do
    let h, a = p.feed.(i) in
    buckets.(h) <- a :: buckets.(h)
  done;
  List.mapi (fun h hostname -> Log.of_list ~hostname buckets.(h)) p.hosts

let merge_ranker (a : Ranker.stats) (b : Ranker.stats) : Ranker.stats =
  let merge_quarantined qa qb =
    List.fold_left
      (fun acc (reason, n) ->
        let prev = Option.value ~default:0 (List.assoc_opt reason acc) in
        (reason, prev + n) :: List.remove_assoc reason acc)
      qa qb
  in
  {
    fetched = a.fetched + b.fetched;
    candidates = a.candidates + b.candidates;
    noise_discarded = a.noise_discarded + b.noise_discarded;
    promotions = a.promotions + b.promotions;
    forced_fetches = a.forced_fetches + b.forced_fetches;
    forced_discards = a.forced_discards + b.forced_discards;
    peak_buffered = max a.peak_buffered b.peak_buffered;
    resorted = a.resorted + b.resorted;
    quarantined = merge_quarantined a.quarantined b.quarantined;
    stragglers_evicted = a.stragglers_evicted + b.stragglers_evicted;
    straggler_resyncs = a.straggler_resyncs + b.straggler_resyncs;
    backpressure_pops = a.backpressure_pops + b.backpressure_pops;
  }

let merge_engine (a : Cag_engine.stats) (b : Cag_engine.stats) : Cag_engine.stats =
  {
    cags_started = a.cags_started + b.cags_started;
    cags_finished = a.cags_finished + b.cags_finished;
    send_merges = a.send_merges + b.send_merges;
    end_merges = a.end_merges + b.end_merges;
    receive_merges = a.receive_merges + b.receive_merges;
    partial_receives = a.partial_receives + b.partial_receives;
    unmatched_receives = a.unmatched_receives + b.unmatched_receives;
    thread_reuse_blocked = a.thread_reuse_blocked + b.thread_reuse_blocked;
    orphans = a.orphans + b.orphans;
    crossed_boundaries = a.crossed_boundaries + b.crossed_boundaries;
    mmap_entries = a.mmap_entries + b.mmap_entries;
    live_vertices = a.live_vertices + b.live_vertices;
    peak_live_vertices = max a.peak_live_vertices b.peak_live_vertices;
    evicted_sends = a.evicted_sends + b.evicted_sends;
  }

(* Re-key every epoch's CAG ids by the running [cags_started] offset.
   Serial ids are assigned in BEGIN correlation order, and all of epoch
   k's BEGINs are correlated before any of epoch k+1's, so the re-keyed
   ids equal the serial ones. *)
let merge_results ~started (results : Correlator.result array) : Correlator.result =
  let offset = ref 0 in
  Array.iter
    (fun (r : Correlator.result) ->
      let shift (c : Cag.t) = Cag.Builder.renumber c ~cag_id:(!offset + c.Cag.cag_id) in
      List.iter shift r.Correlator.cags;
      List.iter shift r.Correlator.deformed;
      offset := !offset + r.Correlator.engine_stats.Cag_engine.cags_started)
    results;
  let parts = Array.to_list results in
  let concat f = List.concat_map f parts in
  let fold f init get = List.fold_left (fun acc r -> f acc (get r)) init parts in
  match parts with
  | [] -> invalid_arg "Shard.merge_results: no epochs"
  | first :: rest ->
      {
        Correlator.cags = concat (fun r -> r.Correlator.cags);
        deformed = concat (fun r -> r.Correlator.deformed);
        ranker_stats =
          List.fold_left
            (fun acc r -> merge_ranker acc r.Correlator.ranker_stats)
            first.Correlator.ranker_stats rest;
        engine_stats =
          List.fold_left
            (fun acc r -> merge_engine acc r.Correlator.engine_stats)
            first.Correlator.engine_stats rest;
        correlation_time = Unix.gettimeofday () -. started;
        peak_memory_proxy = fold max 0 (fun r -> r.Correlator.peak_memory_proxy);
        memory_bytes_estimate = fold max 0 (fun r -> r.Correlator.memory_bytes_estimate);
      }

let resolve_jobs jobs pool =
  match (jobs, pool) with
  | Some j, _ -> max 1 j
  | None, Some p -> Pool.size p
  | None, None -> Pool.default_jobs ()

(* The sharded pipeline after the transform: plan, correlate each epoch in
   a worker domain, merge. Shared by the record-path and native-path
   front-ends, which differ only in how [prepared] was produced. *)
let correlate_sharded ~telemetry ~started ?pool ~jobs ?cut_margin (cfg : Correlator.config)
    prepared =
  begin
    let margin = Option.value cut_margin ~default:cfg.Correlator.window in
    let p =
      R.time telemetry ~labels:[ ("stage", "plan") ] "pt_parallel_stage_seconds" (fun () ->
          make_plan ~margin ~target_epochs:(jobs * 4) prepared)
    in
    R.set
      (R.gauge telemetry ~help:"Worker domains of the last sharded correlation"
         "pt_parallel_jobs")
      (float_of_int jobs);
    R.add
      (R.counter telemetry ~help:"Epochs correlated by the sharded correlator"
         "pt_parallel_epochs_total")
      (Array.length p.epochs);
    R.add
      (R.counter telemetry ~help:"Request-quiescent cut points found before coalescing"
         "pt_parallel_cut_points_total")
      p.cut_candidates;
    if Array.length p.epochs <= 1 then
      (* Nothing to shard (one epoch): identical to the serial path. *)
      Correlator.correlate_prepared ~telemetry ~started cfg prepared ~on_path:(fun _ -> ())
    else begin
      let epoch_records =
        R.histogram telemetry ~help:"Records per sharded-correlation epoch"
          "pt_parallel_epoch_records"
      in
      let run_epoch i =
        let sub = epoch_collection p p.epochs.(i) in
        Telemetry.Histogram.observe epoch_records (float_of_int (Log.total sub));
        Correlator.correlate_prepared ~telemetry cfg sub ~on_path:(fun _ -> ())
      in
      let results =
        R.time telemetry ~labels:[ ("stage", "correlate") ] "pt_parallel_stage_seconds"
          (fun () ->
            match pool with
            | Some pl -> Pool.map pl ~n:(Array.length p.epochs) run_epoch
            | None ->
                Pool.with_pool ~jobs (fun pl -> Pool.map pl ~n:(Array.length p.epochs) run_epoch))
      in
      R.time telemetry ~labels:[ ("stage", "merge") ] "pt_parallel_stage_seconds" (fun () ->
          merge_results ~started results)
    end
  end

let correlate ?(telemetry = R.default) ?pool ?jobs ?cut_margin (cfg : Correlator.config)
    collection =
  let jobs = resolve_jobs jobs pool in
  if jobs <= 1 then Correlator.correlate ~telemetry cfg collection
  else begin
    let started = Unix.gettimeofday () in
    let prepared =
      R.time telemetry ~labels:[ ("stage", "transform") ] "pt_correlator_stage_seconds"
        (fun () -> Transform.apply cfg.Correlator.transform collection)
    in
    correlate_sharded ~telemetry ~started ?pool ~jobs ?cut_margin cfg prepared
  end

let correlate_arena ?(telemetry = R.default) ?pool ?jobs ?cut_margin
    (cfg : Correlator.config) arenas =
  let jobs = resolve_jobs jobs pool in
  if jobs <= 1 then Correlator.correlate_arena ~telemetry cfg arenas
  else begin
    let started = Unix.gettimeofday () in
    let prepared =
      R.time telemetry ~labels:[ ("stage", "transform") ] "pt_correlator_stage_seconds"
        (fun () -> Trace.Arena.to_collection (Transform.apply_native cfg.Correlator.transform arenas))
    in
    correlate_sharded ~telemetry ~started ?pool ~jobs ?cut_margin cfg prepared
  end

(* The digest preimage lives in {!Hierarchy.render} now, shared with the
   hierarchical root's identity check; the bytes are unchanged. Ids are
   digested as stored — for the sharded-vs-serial comparison they must
   match without any canonical re-keying. *)
let digest (result : Correlator.result) =
  Digest.to_hex
    (Digest.string
       (Hierarchy.render ~finished:result.Correlator.cags
          ~deformed:result.Correlator.deformed))
