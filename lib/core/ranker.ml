module Activity = Trace.Activity
module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

type stream = {
  host : string;
  mutable items : Activity.t array;
  mutable len : int;
  mutable cursor : int;
  mutable closed : bool;
  mutable last_ts : Sim_time.t;
  mutable last_fed : Activity.t option;
  mutable last_popped : Sim_time.t;
      (* Highest timestamp committed (popped) from this stream; late
         arrivals below it can no longer be ordered and are quarantined. *)
  mutable lagging : bool;
      (* Evicted as a straggler: [safe_to_pop]/[noise_decidable] stop
         waiting on this stream until its feed catches the watermark. *)
}

type reject_reason = Unknown_host | Closed | Duplicate | Regression | Stale

let reject_reason_to_string = function
  | Unknown_host -> "unknown_host"
  | Closed -> "closed"
  | Duplicate -> "duplicate"
  | Regression -> "regression"
  | Stale -> "stale"

let reason_index = function
  | Unknown_host -> 0
  | Closed -> 1
  | Duplicate -> 2
  | Regression -> 3
  | Stale -> 4

let all_reject_reasons = [ Unknown_host; Closed; Duplicate; Regression; Stale ]

type feed_result = Accepted | Resorted | Quarantined of reject_reason

type stats = {
  fetched : int;
  candidates : int;
  noise_discarded : int;
  promotions : int;
  forced_fetches : int;
  forced_discards : int;
  peak_buffered : int;
  resorted : int;
  quarantined : (reject_reason * int) list;
  stragglers_evicted : int;
  straggler_resyncs : int;
  backpressure_pops : int;
}

type ablation = { disable_rule1 : bool; disable_promotion : bool }

let no_ablation = { disable_rule1 = false; disable_promotion = false }

(* Most recent quarantined records kept for inspection; counts are exact,
   the log is a ring. *)
let quarantine_cap = 256

type t = {
  window : Sim_time.span;
  skew_allowance : Sim_time.span;
  ablation : ablation;
  straggler_timeout : Sim_time.span option;
  max_buffered : int option;
  reorder_slack : Sim_time.span;
  streams : stream array;  (* one per node log *)
  host_index : (string, int) Hashtbl.t;  (* host -> index in [streams] *)
  queues : Activity.t Deque.t array;  (* parallel to [streams] *)
  buffered_sends : (int * int) Address.Flow_table.t;
      (* flow -> (buffered SEND count, home queue index): every SEND of a
         flow originates on one node, so lookups and promotion searches can
         target exactly that queue. *)
  has_mmap_send : Address.flow -> bool;
  quarantine_log : (reject_reason * Activity.t) Deque.t;
  quarantine_counts : int array;  (* indexed by [reason_index] *)
  mutable watermark : Sim_time.t;  (* max feed timestamp across streams *)
  mutable buffered : int;
  mutable backlog : int;  (* fed but not yet fetched into a queue *)
  mutable fetched : int;
  mutable candidates : int;
  mutable noise_discarded : int;
  mutable promotions : int;
  mutable forced_fetches : int;
  mutable forced_discards : int;
  mutable peak_buffered : int;
  mutable resorted : int;
  mutable stragglers_evicted : int;
  mutable straggler_resyncs : int;
  mutable backpressure_pops : int;
  mutable force_step : Sim_time.span;
      (* Current deferred-noise fetch increment; doubles while consecutive
         force-fetches fail to surface a candidate, resets on success. *)
}

let make ~window ~skew_allowance ~ablation ~straggler_timeout ~max_buffered ~reorder_slack
    ~has_mmap_send streams =
  if Sim_time.span_ns window <= 0 then invalid_arg "Ranker.create: window must be positive";
  let host_index = Hashtbl.create (Array.length streams) in
  Array.iteri (fun i s -> Hashtbl.replace host_index s.host i) streams;
  (* A slack beyond the skew allowance is unusable: [feed] quarantines
     regressions larger than the allowance, so no later record can arrive
     below [last_ts - skew_allowance] anyway. *)
  let reorder_slack =
    if Sim_time.compare_span reorder_slack skew_allowance > 0 then skew_allowance
    else reorder_slack
  in
  {
    window;
    skew_allowance;
    ablation;
    straggler_timeout;
    max_buffered;
    reorder_slack;
    streams;
    host_index;
    queues = Array.map (fun (_ : stream) -> Deque.create ()) streams;
    buffered_sends = Address.Flow_table.create 256;
    has_mmap_send;
    quarantine_log = Deque.create ();
    quarantine_counts = Array.make 5 0;
    watermark = Sim_time.zero;
    buffered = 0;
    backlog = 0;
    fetched = 0;
    candidates = 0;
    noise_discarded = 0;
    promotions = 0;
    forced_fetches = 0;
    forced_discards = 0;
    peak_buffered = 0;
    resorted = 0;
    stragglers_evicted = 0;
    straggler_resyncs = 0;
    backpressure_pops = 0;
    force_step = window;
  }

let create ~window ?(skew_allowance = Sim_time.sec 1) ?(ablation = no_ablation)
    ~has_mmap_send collection =
  let streams =
    Array.of_list
      (List.map
         (fun log ->
           let items = Array.of_list (Trace.Log.to_list log) in
           {
             host = Trace.Log.hostname log;
             items;
             len = Array.length items;
             cursor = 0;
             closed = true;
             last_ts =
               (match Array.length items with
               | 0 -> Sim_time.zero
               | n -> items.(n - 1).Activity.timestamp);
             last_fed = None;
             last_popped = Sim_time.zero;
             lagging = false;
           })
         collection)
  in
  make ~window ~skew_allowance ~ablation ~straggler_timeout:None ~max_buffered:None
    ~reorder_slack:(Sim_time.ms 0) ~has_mmap_send streams

let create_online ~window ?(skew_allowance = Sim_time.sec 1) ?(ablation = no_ablation)
    ?straggler_timeout ?max_buffered ?(reorder_slack = Sim_time.ms 0) ~has_mmap_send ~hosts ()
    =
  let streams =
    Array.of_list
      (List.map
         (fun host ->
           {
             host;
             items = [||];
             len = 0;
             cursor = 0;
             closed = false;
             last_ts = Sim_time.zero;
             last_fed = None;
             last_popped = Sim_time.zero;
             lagging = false;
           })
         hosts)
  in
  make ~window ~skew_allowance ~ablation ~straggler_timeout ~max_buffered ~reorder_slack
    ~has_mmap_send streams

let quarantine t reason a =
  t.quarantine_counts.(reason_index reason) <- t.quarantine_counts.(reason_index reason) + 1;
  if Deque.length t.quarantine_log >= quarantine_cap then ignore (Deque.pop_front t.quarantine_log);
  Deque.push_back t.quarantine_log (reason, a);
  Quarantined reason

let close_input t = Array.iter (fun s -> s.closed <- true) t.streams

let buffered_send_count t flow =
  match Address.Flow_table.find_opt t.buffered_sends flow with
  | Some (n, _) -> n
  | None -> 0

let count_send t i (a : Activity.t) delta =
  match a.kind with
  | Activity.Send ->
      let flow = a.message.flow in
      let n = buffered_send_count t flow in
      let n' = n + delta in
      if n' <= 0 then Address.Flow_table.remove t.buffered_sends flow
      else Address.Flow_table.replace t.buffered_sends flow (n', i)
  | Activity.Begin | Activity.End_ | Activity.Receive -> ()

let note_buffered t =
  t.fetched <- t.fetched + 1;
  if t.buffered > t.peak_buffered then t.peak_buffered <- t.buffered

let push t i a =
  Deque.push_back t.queues.(i) a;
  count_send t i a 1;
  t.buffered <- t.buffered + 1;
  note_buffered t

(* Place a late record among the already-fetched items of its stream. *)
let insert_fetched t i pos a =
  Deque.insert t.queues.(i) pos a;
  count_send t i a 1;
  t.buffered <- t.buffered + 1;
  note_buffered t

(* Insert [a] into [stream.items] at [pos], growing the array if needed. *)
let insert_item stream pos a =
  if stream.len = Array.length stream.items then begin
    let ncap = max 64 (2 * Array.length stream.items) in
    let nitems = Array.make ncap a in
    Array.blit stream.items 0 nitems 0 stream.len;
    stream.items <- nitems
  end;
  for j = stream.len downto pos + 1 do
    stream.items.(j) <- stream.items.(j - 1)
  done;
  stream.items.(pos) <- a;
  stream.len <- stream.len + 1

let feed t (a : Activity.t) =
  let host = a.Activity.context.host in
  match Hashtbl.find_opt t.host_index host with
  | None -> quarantine t Unknown_host a
  | Some i ->
      let stream = t.streams.(i) in
      if stream.closed then quarantine t Closed a
      else if
        match stream.last_fed with Some prev -> Activity.equal prev a | None -> false
      then quarantine t Duplicate a
      else if stream.len > 0 && Sim_time.(a.timestamp < stream.last_ts) then begin
        (* A timestamp regression. Within the skew allowance the record is
           merely late — re-sort it into place; beyond it, or behind what
           this stream already committed, it is unusable. *)
        let late_by = Sim_time.diff stream.last_ts a.timestamp in
        if Sim_time.compare_span late_by t.skew_allowance > 0 then quarantine t Regression a
        else if Sim_time.(a.timestamp < stream.last_popped) then quarantine t Stale a
        else begin
          (match
             Deque.find_index t.queues.(i) (fun (x : Activity.t) ->
                 Sim_time.(a.timestamp < x.timestamp))
           with
          | Some pos -> insert_fetched t i pos a
          | None ->
              (* Behind no fetched item: keep the unfetched region sorted.
                 Regressions are small, so scan from the tail. *)
              let pos = ref stream.len in
              while
                !pos > stream.cursor
                && Sim_time.(a.timestamp < stream.items.(!pos - 1).Activity.timestamp)
              do
                decr pos
              done;
              insert_item stream !pos a;
              t.backlog <- t.backlog + 1);
          stream.last_fed <- Some a;
          t.resorted <- t.resorted + 1;
          Resorted
        end
      end
      else begin
        insert_item stream stream.len a;
        t.backlog <- t.backlog + 1;
        stream.last_ts <- a.timestamp;
        stream.last_fed <- Some a;
        if Sim_time.(t.watermark < a.timestamp) then t.watermark <- a.timestamp;
        (if stream.lagging then
           let caught_up =
             match t.straggler_timeout with
             | Some limit ->
                 Sim_time.compare_span (Sim_time.diff t.watermark a.timestamp) limit <= 0
             | None -> true
           in
           if caught_up then begin
             (* Reintegrate: the stream rejoins the wait set and the next
                [refill] performs the resync fetch of its backlog. *)
             stream.lagging <- false;
             t.straggler_resyncs <- t.straggler_resyncs + 1
           end);
        Accepted
      end

(* Pull every stream item with timestamp <= deadline into its queue. *)
let fetch_until t deadline =
  Array.iteri
    (fun i s ->
      while s.cursor < s.len && Sim_time.(s.items.(s.cursor).Activity.timestamp <= deadline) do
        push t i s.items.(s.cursor);
        s.cursor <- s.cursor + 1;
        t.backlog <- t.backlog - 1
      done;
      (* Reclaim the consumed prefix so a long-lived online stream holds
         only its unfetched backlog, not everything ever fed. *)
      if s.cursor > 64 && 2 * s.cursor >= s.len then begin
        let remaining = s.len - s.cursor in
        Array.blit s.items s.cursor s.items 0 remaining;
        s.len <- remaining;
        s.cursor <- 0
      end)
    t.streams

let pop t i =
  let a = Deque.pop_front t.queues.(i) in
  count_send t i a (-1);
  t.buffered <- t.buffered - 1;
  let s = t.streams.(i) in
  if Sim_time.(s.last_popped < a.Activity.timestamp) then s.last_popped <- a.Activity.timestamp;
  a

(* Minimum local timestamp among queue heads and unfetched stream fronts:
   the sliding window's left edge. *)
let window_min t =
  let mins = ref None in
  let consider ts = match !mins with None -> mins := Some ts | Some m -> mins := Some (Sim_time.min m ts) in
  Array.iter
    (fun q ->
      match Deque.peek_front q with
      | Some a -> consider a.Activity.timestamp
      | None -> ())
    t.queues;
  Array.iter
    (fun s -> if s.cursor < s.len then consider s.items.(s.cursor).Activity.timestamp)
    t.streams;
  !mins

let refill t =
  match window_min t with
  | None -> ()
  | Some m -> fetch_until t (Sim_time.add m t.window)

(* Indices of non-empty queues, with their head activities. *)
let heads t =
  let acc = ref [] in
  for i = Array.length t.queues - 1 downto 0 do
    match Deque.peek_front t.queues.(i) with
    | Some a -> acc := (i, a) :: !acc
    | None -> ()
  done;
  !acc

let head_receive_matching_mmap t hs =
  let eligible =
    List.filter
      (fun (_, (a : Activity.t)) ->
        Activity.equal_kind a.kind Activity.Receive && t.has_mmap_send a.message.flow)
      hs
  in
  match eligible with
  | [] -> None
  | hs ->
      (* Deterministic choice: earliest local timestamp, then queue index. *)
      Some
        (List.fold_left
           (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
             if Sim_time.(a.timestamp < best.timestamp) then c else b)
           (List.hd hs) (List.tl hs))

let lowest_priority_non_receive hs =
  let non_receive =
    List.filter (fun (_, (a : Activity.t)) -> not (Activity.equal_kind a.kind Activity.Receive)) hs
  in
  match non_receive with
  | [] -> None
  | hs ->
      Some
        (List.fold_left
           (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
             let pa = Activity.kind_priority a.kind and pb = Activity.kind_priority best.kind in
             if pa < pb || (pa = pb && Sim_time.(a.timestamp < best.timestamp)) then c else b)
           (List.hd hs) (List.tl hs))

(* Concurrency disturbance: every head is a RECEIVE, but some head's
   matching SEND sits deeper in a queue. Promote the buried SEND to its
   queue's front so Rule 2 can emit it next round — but never across an
   earlier activity of the SEND's own execution entity, which would break
   adjacent-context order (the paper's swap only ever jumps another
   CPU's activities). *)
let try_promote t hs =
  let matching_send flow (x : Activity.t) =
    Activity.equal_kind x.kind Activity.Send && Address.flow_equal x.message.flow flow
  in
  let promotable q i =
    let send_ctx = (Deque.get q i).Activity.context in
    let rec clear j =
      j >= i || ((not (Activity.equal_context (Deque.get q j).Activity.context send_ctx)) && clear (j + 1))
    in
    clear 0
  in
  let promote_for (_, (r : Activity.t)) =
    let flow = r.message.flow in
    match Address.Flow_table.find_opt t.buffered_sends flow with
    | Some (n, qi) when n > 0 -> (
        let q = t.queues.(qi) in
        match Deque.find_index q (matching_send flow) with
        | Some i when i > 0 && promotable q i ->
            Deque.promote q i;
            t.promotions <- t.promotions + 1;
            true
        | Some _ | None -> false)
    | Some _ | None -> false
  in
  List.exists promote_for hs

(* Deferred noise check: before declaring the earliest suspect RECEIVE
   noise, make sure its matching SEND is not merely outside the fetched
   region — pull input up to [skew_allowance] past the suspect first. *)
let try_force_fetch t hs =
  let earliest =
    List.fold_left
      (fun (best : Activity.t) (_, (a : Activity.t)) ->
        if Sim_time.(a.timestamp < best.timestamp) then a else best)
      (snd (List.hd hs))
      (List.tl hs)
  in
  let target = Sim_time.add earliest.timestamp t.skew_allowance in
  let next_fetchable =
    Array.fold_left
      (fun acc s ->
        if s.cursor < s.len then
          let ts = s.items.(s.cursor).Activity.timestamp in
          match acc with None -> Some ts | Some m -> Some (Sim_time.min m ts)
        else acc)
      None t.streams
  in
  match next_fetchable with
  | Some ts when Sim_time.(ts <= target) ->
      (* Fetch an escalating slice: window-sized at first (cheap when the
         missing SEND is just past the window edge), doubling while the
         search keeps failing so a noise-heavy trace costs O(log allowance)
         extensions per suspect rather than O(allowance / window). *)
      fetch_until t (Sim_time.min target (Sim_time.add ts t.force_step));
      let doubled = Sim_time.span_add t.force_step t.force_step in
      if Sim_time.compare_span doubled t.skew_allowance <= 0 then t.force_step <- doubled
      else t.force_step <- t.skew_allowance;
      t.forced_fetches <- t.forced_fetches + 1;
      true
  | Some _ | None -> false

type step = Candidate of Activity.t | Need_input | Exhausted

(* An open stream that would block the pipeline but has fallen further
   than [straggler_timeout] behind the global feed watermark is evicted
   from the wait set — it is presumed silent (crashed probe, partitioned
   host), and a silent host must not stall everyone else forever. Returns
   whether the stream may be skipped. *)
let straggler_skippable t s =
  s.lagging
  ||
  match t.straggler_timeout with
  | Some limit when Sim_time.compare_span (Sim_time.diff t.watermark s.last_ts) limit > 0 ->
      s.lagging <- true;
      t.stragglers_evicted <- t.stragglers_evicted + 1;
      true
  | Some _ | None -> false

(* Popping candidate [a] commits to its position in the causal order; with
   live input this is only safe once every still-open stream that has
   nothing buffered has reported past [a.ts + skew_allowance] - no future
   activity can then belong before [a]. Closed streams and streams with
   buffered or fetched-but-unranked data behave exactly as offline. With a
   non-zero [reorder_slack], every open stream must additionally have
   reported past [a.ts + slack]: a record delayed by up to the slack could
   otherwise still arrive and re-sort ahead of [a]. *)
let safe_to_pop t (a : Activity.t) =
  let horizon = Sim_time.add a.Activity.timestamp t.skew_allowance in
  let slack_floor =
    if Sim_time.span_ns t.reorder_slack > 0 then
      Some (Sim_time.add a.Activity.timestamp t.reorder_slack)
    else None
  in
  let ok = ref true in
  Array.iteri
    (fun i s ->
      if not s.closed then begin
        let blocking =
          (Deque.is_empty t.queues.(i) && s.cursor >= s.len && Sim_time.(s.last_ts < horizon))
          || (match slack_floor with Some f -> Sim_time.(s.last_ts < f) | None -> false)
        in
        if blocking && not (straggler_skippable t s) then ok := false
      end)
    t.streams;
  !ok

let fully_consumed t =
  Array.for_all (fun s -> s.closed && s.cursor >= s.len) t.streams

(* Declaring [suspect] noise requires knowing nothing relevant is still on
   the wire: every open stream must have reported past the allowance. *)
let noise_decidable t (suspect : Activity.t) =
  let target = Sim_time.add suspect.Activity.timestamp t.skew_allowance in
  let ok = ref true in
  Array.iter
    (fun s ->
      if (not s.closed) && Sim_time.(s.last_ts < target) && not (straggler_skippable t s) then
        ok := false)
    t.streams;
  !ok

let held t = t.buffered + t.backlog

let over_budget t =
  match t.max_buffered with Some limit -> held t > limit | None -> false

let rec rank_step t =
  refill t;
  match heads t with
  | [] -> if fully_consumed t then Exhausted else Need_input
  | hs -> (
      (* Backpressure: past [max_buffered] held records, stop waiting for
         reassuring input and force-resolve the oldest window instead. *)
      let force = over_budget t in
      let emit i =
        t.candidates <- t.candidates + 1;
        t.force_step <- t.window;
        Candidate (pop t i)
      in
      let emit_or_wait i a =
        if safe_to_pop t a then emit i
        else if force then begin
          t.backpressure_pops <- t.backpressure_pops + 1;
          emit i
        end
        else Need_input
      in
      match (if t.ablation.disable_rule1 then None else head_receive_matching_mmap t hs) with
      | Some (i, a) -> emit_or_wait i a
      | None -> (
          match lowest_priority_non_receive hs with
          | Some (i, a) -> emit_or_wait i a
          | None ->
              (* Every head is an unmatched RECEIVE. *)
              if (not t.ablation.disable_promotion) && try_promote t hs then rank_step t
              else if try_force_fetch t hs then rank_step t
              else begin
                (* is_noise: no matching SEND in mmap nor anywhere in the
                   buffer, with the input fetched well past the suspect.
                   Heads whose matching SEND is buffered but unpromotable
                   are not noise; discarding one of those (only possible
                   under adversarial interleavings) is counted separately
                   and asserted zero in tests. *)
                let no_buffered_send (_, (a : Activity.t)) =
                  buffered_send_count t a.message.flow = 0
                in
                let pool, forced =
                  match List.filter no_buffered_send hs with
                  | [] -> (hs, true)
                  | noise_heads -> (noise_heads, false)
                in
                let i, suspect =
                  List.fold_left
                    (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
                      if Sim_time.(a.timestamp < best.timestamp) then c else b)
                    (List.hd pool) (List.tl pool)
                in
                let decidable = noise_decidable t suspect in
                if (not decidable) && not force then Need_input
                else begin
                  if not decidable then t.backpressure_pops <- t.backpressure_pops + 1;
                  ignore (pop t i);
                  t.noise_discarded <- t.noise_discarded + 1;
                  if forced then t.forced_discards <- t.forced_discards + 1;
                  rank_step t
                end
              end))

let rank t =
  match rank_step t with Candidate a -> Some a | Need_input | Exhausted -> None

let buffered t = t.buffered

let stragglers_active t =
  Array.fold_left (fun n s -> if s.lagging && not s.closed then n + 1 else n) 0 t.streams

let quarantine_log t = Deque.to_list t.quarantine_log

let quarantined_total t = Array.fold_left ( + ) 0 t.quarantine_counts

let stats t =
  {
    fetched = t.fetched;
    candidates = t.candidates;
    noise_discarded = t.noise_discarded;
    promotions = t.promotions;
    forced_fetches = t.forced_fetches;
    forced_discards = t.forced_discards;
    peak_buffered = t.peak_buffered;
    resorted = t.resorted;
    quarantined =
      List.map (fun r -> (r, t.quarantine_counts.(reason_index r))) all_reject_reasons;
    stragglers_evicted = t.stragglers_evicted;
    straggler_resyncs = t.straggler_resyncs;
    backpressure_pops = t.backpressure_pops;
  }
