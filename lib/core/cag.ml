module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time

type edge_kind = Context_edge | Message_edge

let pp_edge_kind ppf = function
  | Context_edge -> Format.pp_print_string ppf "ctx"
  | Message_edge -> Format.pp_print_string ppf "msg"

type vertex = {
  vid : int;
  mutable activity : Activity.t;
  mutable parents : (edge_kind * vertex) list;
  mutable children : (edge_kind * vertex) list;
  mutable cag : t option;
  mutable unreceived : int;
  mutable rev_sources : Activity.t list;
  mutable rev_pending_sources : Activity.t list;
}

and t = {
  mutable cag_id : int;
  root : vertex;
  mutable rev_vertices : vertex list;
  mutable vertex_count : int;
  mutable finished : bool;
  mutable deformed : bool;
}

module Builder = struct
  (* Atomic: the sharded correlator builds CAGs from several domains at
     once. Per-engine operations remain sequential, so vids still grow
     monotonically along every single CAG (what [validate] checks). *)
  let next_vid = Atomic.make 0

  let fresh_vertex activity =
    let vid = Atomic.fetch_and_add next_vid 1 in
    {
      vid;
      activity;
      parents = [];
      children = [];
      cag = None;
      unreceived = (match activity.Activity.kind with Send -> activity.message.size | _ -> 0);
      rev_sources = [ activity ];
      rev_pending_sources = [];
    }

  let create ~cag_id root =
    let t =
      {
        cag_id;
        root;
        rev_vertices = [ root ];
        vertex_count = 1;
        finished = false;
        deformed = false;
      }
    in
    root.cag <- Some t;
    t

  let adopt t v =
    (match v.cag with
    | Some _ -> invalid_arg "Cag.Builder.adopt: vertex already in a CAG"
    | None -> ());
    v.cag <- Some t;
    t.rev_vertices <- v :: t.rev_vertices;
    t.vertex_count <- t.vertex_count + 1

  let add_edge kind ~parent ~child =
    let violation msg = invalid_arg ("Cag.Builder.add_edge: " ^ msg) in
    (match (kind, child.parents, child.activity.Activity.kind) with
    | _, [], _ -> ()
    | Message_edge, [ (Context_edge, _) ], Activity.Receive -> ()
    | Context_edge, [ (Message_edge, _) ], Activity.Receive -> ()
    | _, [ _ ], _ -> violation "second parent only allowed on a RECEIVE, one per kind"
    | _, _ :: _ :: _, _ -> violation "vertex already has two parents");
    child.parents <- (kind, parent) :: child.parents;
    parent.children <- parent.children @ [ (kind, child) ]

  let grow_send v extra =
    let a = v.activity in
    v.activity <- { a with Activity.message = { a.message with size = a.message.size + extra } };
    v.unreceived <- v.unreceived + extra

  let consume v n =
    v.unreceived <- v.unreceived - n;
    v.unreceived

  let set_full_size v size =
    let a = v.activity in
    v.activity <- { a with Activity.message = { a.message with size } }

  let refresh_receive v ~timestamp ~size =
    let a = v.activity in
    v.activity <- { a with Activity.timestamp; message = { a.message with size } }

  let add_source v a = v.rev_sources <- a :: v.rev_sources

  let stash_pending_source v a = v.rev_pending_sources <- a :: v.rev_pending_sources

  let take_pending_sources v =
    let chunks = List.rev v.rev_pending_sources in
    v.rev_pending_sources <- [];
    chunks

  (* Prepend chunks observed before the vertex's creating activity, e.g.
     the partial RECEIVEs preceding the completing one. *)
  let add_earlier_sources v chunks = v.rev_sources <- v.rev_sources @ List.rev chunks

  let finish t = t.finished <- true
  let mark_deformed t = t.deformed <- true
  let renumber t ~cag_id = t.cag_id <- cag_id
end

let sources v = List.rev v.rev_sources
let root t = t.root
let is_finished t = t.finished
let is_deformed t = t.deformed
let vertices t = List.rev t.rev_vertices
let size t = t.vertex_count
let begin_ts t = t.root.activity.Activity.timestamp

let end_ts t =
  match t.rev_vertices with
  | last :: _ -> last.activity.Activity.timestamp
  | [] -> assert false

let duration t = Sim_time.diff (end_ts t) (begin_ts t)

let edges t =
  List.concat_map
    (fun child -> List.map (fun (kind, parent) -> (parent, kind, child)) (List.rev child.parents))
    (vertices t)

let contexts t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun v ->
      let c = v.activity.Activity.context in
      let key = (c.Activity.host, c.program, c.pid, c.tid) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some c
      end)
    (vertices t)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let vs = vertices t in
  let* () =
    match vs with
    | v :: _ when v == t.root -> Ok ()
    | _ -> fail "CAG %d: first vertex is not the root" t.cag_id
  in
  let* () =
    if t.finished then
      match (t.root.activity.Activity.kind, (List.hd t.rev_vertices).activity.Activity.kind) with
      | Activity.Begin, Activity.End_ -> Ok ()
      | k1, k2 ->
          fail "CAG %d: finished but spans %s..%s" t.cag_id (Activity.kind_to_string k1)
            (Activity.kind_to_string k2)
    else Ok ()
  in
  let check_vertex acc v =
    let* () = acc in
    let* () =
      match v.parents with
      | [] ->
          if v == t.root then Ok () else fail "CAG %d: vertex %d is parentless" t.cag_id v.vid
      | [ _ ] -> Ok ()
      | [ (k1, _); (k2, _) ] ->
          if not (Activity.equal_kind v.activity.Activity.kind Activity.Receive) then
            fail "CAG %d: non-RECEIVE vertex %d has two parents" t.cag_id v.vid
          else if k1 = k2 then
            fail "CAG %d: vertex %d has two parents of the same relation" t.cag_id v.vid
          else Ok ()
      | _ -> fail "CAG %d: vertex %d has more than two parents" t.cag_id v.vid
    in
    let check_parent acc (_, p) =
      let* () = acc in
      if p.vid >= v.vid then
        fail "CAG %d: edge %d -> %d violates causal order" t.cag_id p.vid v.vid
      else
        match p.cag with
        | Some c when c == t -> Ok ()
        | Some _ | None -> fail "CAG %d: parent %d of %d is outside the CAG" t.cag_id p.vid v.vid
    in
    List.fold_left check_parent (Ok ()) v.parents
  in
  let* () = List.fold_left check_vertex (Ok ()) vs in
  (* Reachability from the root. *)
  let reached = Hashtbl.create 16 in
  let rec visit v =
    if not (Hashtbl.mem reached v.vid) then begin
      Hashtbl.replace reached v.vid ();
      List.iter (fun (_, c) -> visit c) v.children
    end
  in
  visit t.root;
  List.fold_left
    (fun acc v ->
      let* () = acc in
      if Hashtbl.mem reached v.vid then Ok ()
      else fail "CAG %d: vertex %d unreachable from root" t.cag_id v.vid)
    (Ok ()) vs

let pp ppf t =
  Format.fprintf ppf "@[<v>CAG %d (%s, %d vertices)" t.cag_id
    (if t.finished then "finished" else "open")
    t.vertex_count;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,  [%d] %a" v.vid Activity.pp v.activity;
      List.iter
        (fun (k, p) -> Format.fprintf ppf "@,        <-%a- [%d]" pp_edge_kind k p.vid)
        (List.rev v.parents))
    (vertices t);
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph cag_%d {\n  rankdir=LR;\n" t.cag_id);
  List.iter
    (fun v ->
      let a = v.activity in
      Buffer.add_string buf
        (Printf.sprintf "  v%d [label=\"%s\\n%s[%d/%d]\\n%d ns\"];\n" v.vid
           (Activity.kind_to_string a.Activity.kind)
           a.context.program a.context.pid a.context.tid
           (Sim_time.to_ns a.timestamp)))
    (vertices t);
  List.iter
    (fun (p, kind, c) ->
      let style =
        match kind with
        | Context_edge -> "color=red"
        | Message_edge -> "color=blue, style=dashed"
      in
      Buffer.add_string buf (Printf.sprintf "  v%d -> v%d [%s];\n" p.vid c.vid style))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
