(** Agent-local partial correlation (hierarchy level 0).

    A million-user cluster cannot ship every syscall record to one
    correlator; the companion papers shrink the feed at the source. This
    pass runs {e inside the agent}, on one batch of one host's rows, and
    applies exactly the reductions that are invisible to the downstream
    correlator:

    - {b transform prefilter} — rows the {!Transform} would drop anyway
      (noise programs, filtered ports) are dropped here, before they cost
      wire bytes. Kinds are {e not} rewritten: the downstream transform
      is idempotent on ids, so it re-derives the same classification.
    - {b local run coalescing} — consecutive same-context syscalls on the
      same flow that {!Cag_engine} would merge into one vertex anyway
      (multi-chunk SENDs of one logical message, multi-part responses)
      collapse into a single row carrying the first chunk's timestamp and
      the summed size — mirroring [Cag.Builder.grow_send] exactly.
      RECEIVE rows are never touched: a receive's completion timestamp
      depends on the matching send's total size, which only the
      downstream engine knows.
    - {b same-host matching} — flows whose both directions appear in the
      host's own stream (loopback tiers) are resolved locally; only flows
      that cross the host boundary enter the {!Trace.Boundary} table that
      ships alongside the reduced batch.

    The pass is bounded-memory: its flow table is capped at
    [max_flows]; a batch that exceeds the budget (or a transform with a
    custom [keep] predicate, which cannot be evaluated natively) is
    shipped raw, flagged [fallback]. *)

type config = {
  transform : Transform.config;
      (** The service transform the downstream correlator will apply;
          used to prefilter (never to rewrite). *)
  coalesce : bool;  (** Merge local SEND/END runs (default [true]). *)
  max_flows : int;
      (** Flow-table budget per batch; exceeding it falls back to raw
          shipping (default [4096]). *)
}

val config : transform:Transform.config -> ?coalesce:bool -> ?max_flows:int -> unit -> config

type t

val create : config -> t
(** One per agent: holds the memoised per-id transform decisions. *)

type result = {
  arena : Trace.Arena.t;
      (** The reduced batch (the input arena itself on [fallback]). *)
  boundary : Trace.Boundary.t;
      (** Unresolved cross-host flows, sorted by endpoint quadruple. *)
  rows_in : int;
  rows_dropped : int;  (** Removed by the transform prefilter. *)
  rows_coalesced : int;  (** Merged into a preceding run head. *)
  local_flows : int;  (** Flows fully resolved inside the host. *)
  fallback : bool;  (** Batch shipped raw (budget or custom [keep]). *)
}

val reduce : t -> Trace.Arena.t -> result
(** Reduce one batch. Identity contract: feeding [result.arena] (plus
    every other host's reduced batches) to the monolithic correlator
    yields byte-identical patterns, breakdowns and path counts to feeding
    the raw batches, because every reduction replicates a merge or drop
    the downstream pipeline performs itself. *)
