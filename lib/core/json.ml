(* The emitter moved into lib/telemetry (the exporters there need it below
   core in the dependency order); this re-export keeps every existing
   [Core.Json] call site working, constructors included. *)
include Telemetry.Json
