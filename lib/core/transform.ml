module Activity = Trace.Activity
module Address = Simnet.Address

type config = {
  entry_points : Address.endpoint list;
  drop_programs : string list;
  drop_ports : int list;
  keep : Activity.t -> bool;
}

(* A nameable default so the native path can detect "no custom predicate"
   physically and skip materialising records just to call it. *)
let default_keep (_ : Activity.t) = true

let config ~entry_points ?(drop_programs = []) ?(drop_ports = []) ?(keep = default_keep) () =
  { entry_points; drop_programs; drop_ports; keep }

let is_entry cfg ep = List.exists (Address.endpoint_equal ep) cfg.entry_points

let filtered_out cfg (a : Activity.t) =
  List.exists (String.equal a.context.program) cfg.drop_programs
  || List.exists
       (fun p -> a.message.flow.src.port = p || a.message.flow.dst.port = p)
       cfg.drop_ports
  || not (cfg.keep a)

let classify cfg (a : Activity.t) =
  if filtered_out cfg a then None
  else
    let kind =
      match a.kind with
      | Activity.Receive when is_entry cfg a.message.flow.dst -> Activity.Begin
      | Activity.Send when is_entry cfg a.message.flow.src -> Activity.End_
      | k -> k
    in
    Some { a with kind }

let apply cfg collection = Trace.Log.map_activities (classify cfg) collection

(* ---- native path ---- *)

module Arena = Trace.Arena
module Intern = Trace.Intern

(* Classification depends only on the context (program drop) and the flow
   (port drop, entry rewrite) — both interned ids — so decisions are
   computed once per distinct id and every further row with the same ids
   is two int-keyed memo hits. *)
type memo = {
  cfg : config;
  ctx_drop : (int, bool) Hashtbl.t;  (* context id -> dropped by program *)
  flow_fate : (int, int) Hashtbl.t;  (* flow id -> fate bits below *)
}

let fate_drop = 1 (* flow touches a dropped port *)
let fate_begin = 2 (* dst is an entry point: RECEIVE -> BEGIN *)
let fate_end = 4 (* src is an entry point: SEND -> END *)

let memo cfg = { cfg; ctx_drop = Hashtbl.create 64; flow_fate = Hashtbl.create 256 }

let ctx_dropped m ctx =
  match Hashtbl.find_opt m.ctx_drop ctx with
  | Some b -> b
  | None ->
      let c = Intern.context_of_id ctx in
      let b = List.exists (String.equal c.Activity.program) m.cfg.drop_programs in
      Hashtbl.add m.ctx_drop ctx b;
      b

let flow_fate m flow =
  match Hashtbl.find_opt m.flow_fate flow with
  | Some f -> f
  | None ->
      let fl = Intern.flow_of_id flow in
      let f =
        if
          List.exists
            (fun p -> fl.Address.src.port = p || fl.Address.dst.port = p)
            m.cfg.drop_ports
        then fate_drop
        else
          (if is_entry m.cfg fl.Address.dst then fate_begin else 0)
          lor if is_entry m.cfg fl.Address.src then fate_end else 0
      in
      Hashtbl.add m.flow_fate flow f;
      f

let has_custom_keep cfg = cfg.keep != default_keep

(* The rewritten kind code of row [i], or [-1] when the row is filtered
   out. Does not consult [cfg.keep]; callers with a custom predicate
   materialise the row and apply it themselves. *)
let classify_row m arena i =
  if ctx_dropped m (Arena.ctx_id arena i) then -1
  else begin
    let fate = flow_fate m (Arena.flow_id arena i) in
    if fate land fate_drop <> 0 then -1
    else begin
      let k = Arena.kind_code arena i in
      if fate land fate_begin <> 0 && k = Activity.kind_to_code Activity.Receive then
        Activity.kind_to_code Activity.Begin
      else if fate land fate_end <> 0 && k = Activity.kind_to_code Activity.Send then
        Activity.kind_to_code Activity.End_
      else k
    end
  end

let apply_native cfg arenas =
  let m = memo cfg in
  let custom = has_custom_keep cfg in
  List.map
    (fun a ->
      let out = Arena.create_sid ~capacity:(max 1 (Arena.length a)) (Arena.host_sid a) in
      for i = 0 to Arena.length a - 1 do
        let k = classify_row m a i in
        if k >= 0 && ((not custom) || cfg.keep (Arena.get a i)) then
          Arena.append out ~kind:k ~ts:(Arena.ts a i) ~ctx:(Arena.ctx_id a i)
            ~flow:(Arena.flow_id a i) ~size:(Arena.size a i)
      done;
      out)
    arenas
