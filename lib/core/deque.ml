(* Ring buffer over a growable array. *)
type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

let create () = { buf = [||]; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let index t i = (t.head + i) mod Array.length t.buf

let grow t seed =
  let cap = Array.length t.buf in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nbuf = Array.make ncap seed in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.(index t i)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push_back t v =
  if t.len = Array.length t.buf then grow t v;
  t.buf.(index t t.len) <- v;
  t.len <- t.len + 1

let push_front t v =
  if t.len = Array.length t.buf then grow t v;
  t.head <- (t.head + Array.length t.buf - 1) mod Array.length t.buf;
  t.buf.(t.head) <- v;
  t.len <- t.len + 1

let peek_front t = if t.len = 0 then None else Some t.buf.(t.head)

let pop_front t =
  if t.len = 0 then invalid_arg "Deque.pop_front: empty";
  let v = t.buf.(t.head) in
  t.head <- index t 1;
  t.len <- t.len - 1;
  v

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.get: out of bounds";
  t.buf.(index t i)

let promote t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.promote: out of bounds";
  let v = t.buf.(index t i) in
  (* Shift [0..i-1] back by one, preserving their relative order. *)
  for j = i downto 1 do
    t.buf.(index t j) <- t.buf.(index t (j - 1))
  done;
  t.buf.(t.head) <- v

let insert t i v =
  if i < 0 || i > t.len then invalid_arg "Deque.insert: out of bounds";
  if t.len = Array.length t.buf then grow t v;
  t.len <- t.len + 1;
  (* Shift [i..len-2] back by one, then drop [v] into the hole. *)
  for j = t.len - 1 downto i + 1 do
    t.buf.(index t j) <- t.buf.(index t (j - 1))
  done;
  t.buf.(index t i) <- v

let find_index t p =
  let rec loop i = if i >= t.len then None else if p (get t i) then Some i else loop (i + 1) in
  loop 0

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get t i :: acc) in
  loop (t.len - 1) []
