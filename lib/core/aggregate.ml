module Sim_time = Simnet.Sim_time

type hop_stat = { comp : Latency.component; mean_s : float; std_s : float }

type t = {
  pattern_name : string;
  count : int;
  hops : hop_stat list;
  mean_total_s : float;
}

let of_pattern ?normalize (pattern : Pattern.t) =
  let members = List.filter Cag.is_finished pattern.Pattern.cags in
  if members = [] then invalid_arg "Aggregate.of_pattern: no finished CAGs";
  let paths = List.map (Latency.critical_path ?normalize) members in
  let n = List.length paths in
  let hop_count = List.length (List.hd paths) in
  let () =
    List.iter
      (fun p ->
        if List.length p <> hop_count then
          invalid_arg "Aggregate.of_pattern: members are not isomorphic")
      paths
  in
  let matrix = List.map Array.of_list paths in
  let hops =
    List.init hop_count (fun i ->
        let samples =
          List.map
            (fun row -> Sim_time.span_to_float_s row.(i).Latency.span)
            matrix
        in
        let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
        let var =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
          /. float_of_int n
        in
        {
          comp = (List.hd matrix).(i).Latency.comp;
          mean_s = mean;
          std_s = sqrt var;
        })
  in
  let mean_total_s =
    List.fold_left (fun acc cag -> acc +. Sim_time.span_to_float_s (Cag.duration cag)) 0.0 members
    /. float_of_int n
  in
  { pattern_name = pattern.Pattern.name; count = n; hops; mean_total_s }

let component_latencies t =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun h ->
      let key = Latency.component_label h.comp in
      match Hashtbl.find_opt table key with
      | Some total -> Hashtbl.replace table key (total +. h.mean_s)
      | None ->
          order := h.comp :: !order;
          Hashtbl.replace table key h.mean_s)
    t.hops;
  List.rev_map (fun c -> (c, Hashtbl.find table (Latency.component_label c))) !order

let component_percentages t =
  let parts = component_latencies t in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
  if total = 0.0 then List.map (fun (c, _) -> (c, 0.0)) parts
  else List.map (fun (c, s) -> (c, s /. total)) parts

let pp ppf t =
  Format.fprintf ppf "@[<v>average path %s (n=%d, mean total %.3f ms)" t.pattern_name t.count
    (t.mean_total_s *. 1e3);
  List.iter
    (fun (c, pct) ->
      Format.fprintf ppf "@,  %-18s %5.1f%%" (Latency.component_label c)
        (Report.clamp_share pct *. 100.0))
    (component_percentages t);
  Format.fprintf ppf "@]"

type hop_tail = {
  tail_comp : Latency.component;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  tail_max_s : float;
}

(* Nearest-rank estimator over the sorted samples: the value at index
   round(p * (n - 1)) — i.e. linear rank interpolation rounded to the
   nearest member, so every percentile is an actual observed sample. For
   n = 1 every p yields the single sample; an empty array yields 0.
   Callers must pass finite samples only ([sorted_finite]): NaN compares
   greater than everything under [Float.compare], so a single NaN sample
   would otherwise sort last and silently masquerade as the p99/max. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))))

(* Drop non-finite samples (NaN, +/-inf) and sort ascending. *)
let sorted_finite samples =
  let finite = Array.of_list (List.filter Float.is_finite samples) in
  Array.sort Float.compare finite;
  finite

let finished_paths ?normalize (pattern : Pattern.t) =
  let members = List.filter Cag.is_finished pattern.Pattern.cags in
  if members = [] then invalid_arg "Aggregate: no finished CAGs";
  (members, List.map (Latency.critical_path ?normalize) members)

let hop_tails ?normalize pattern =
  let _, paths = finished_paths ?normalize pattern in
  let matrix = List.map Array.of_list paths in
  let hop_count = Array.length (List.hd matrix) in
  List.init hop_count (fun i ->
      let samples =
        List.map (fun row -> Sim_time.span_to_float_s row.(i).Latency.span) matrix
        |> sorted_finite
      in
      {
        tail_comp = (List.hd matrix).(i).Latency.comp;
        p50_s = percentile samples 0.50;
        p90_s = percentile samples 0.90;
        p99_s = percentile samples 0.99;
        tail_max_s = (if Array.length samples = 0 then 0.0 else samples.(Array.length samples - 1));
      })

type total_tail = { t_p50_s : float; t_p90_s : float; t_p99_s : float; t_max_s : float }

let total_tail pattern =
  let members, _ = finished_paths pattern in
  let samples =
    List.map (fun cag -> Sim_time.span_to_float_s (Cag.duration cag)) members |> sorted_finite
  in
  {
    t_p50_s = percentile samples 0.50;
    t_p90_s = percentile samples 0.90;
    t_p99_s = percentile samples 0.99;
    t_max_s = (if Array.length samples = 0 then 0.0 else samples.(Array.length samples - 1));
  }

let pp_tails ppf pattern =
  let tt = total_tail pattern in
  Format.fprintf ppf "@[<v>tail of %s (n=%d): total p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms"
    pattern.Pattern.name
    (List.length (List.filter Cag.is_finished pattern.Pattern.cags))
    (tt.t_p50_s *. 1e3) (tt.t_p90_s *. 1e3) (tt.t_p99_s *. 1e3) (tt.t_max_s *. 1e3);
  List.iter
    (fun h ->
      Format.fprintf ppf "@,  %-18s p50 %7.3fms  p90 %7.3fms  p99 %7.3fms"
        (Latency.component_label h.tail_comp)
        (h.p50_s *. 1e3) (h.p90_s *. 1e3) (h.p99_s *. 1e3))
    (hop_tails pattern);
  Format.fprintf ppf "@]"
