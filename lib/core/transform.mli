(** Raw-activity preprocessing: BEGIN/END recognition and attribute
    filtering (§3.1 and §4.3 of the paper).

    TCP_TRACE only emits SEND and RECEIVE. PreciseTracer distinguishes
    BEGIN and END by the service's entry communication channels: a RECEIVE
    whose destination is an entry endpoint (e.g. the web server's port 80)
    marks the start of a request; a SEND from that endpoint on the same
    connection marks its end.

    Attribute filters implement the first line of noise defence: dropping
    activities by program name, IP or port before they reach the ranker. *)

type config = {
  entry_points : Simnet.Address.endpoint list;
      (** The service's front-tier listening endpoints. *)
  drop_programs : string list;
      (** Program names filtered out (e.g. ["rlogin"; "sshd"; "mysql"]). *)
  drop_ports : int list;
      (** Ports filtered out: any activity whose flow touches one. *)
  keep : Trace.Activity.t -> bool;
      (** Final custom predicate; defaults to keeping everything. *)
}

val config :
  entry_points:Simnet.Address.endpoint list ->
  ?drop_programs:string list ->
  ?drop_ports:int list ->
  ?keep:(Trace.Activity.t -> bool) ->
  unit ->
  config

val classify : config -> Trace.Activity.t -> Trace.Activity.t option
(** [None] if filtered out; otherwise the activity with its kind rewritten
    to BEGIN/END when it crosses an entry point. *)

val apply : config -> Trace.Log.collection -> Trace.Log.collection

(** {1 Native path}

    Classification depends only on interned context and flow ids, so the
    arena path memoises one decision per distinct id instead of matching
    strings and endpoints per record. *)

type memo
(** Per-run decision cache; create one per feed with {!memo}. *)

val memo : config -> memo

val classify_row : memo -> Trace.Arena.t -> int -> int
(** The rewritten {!Trace.Activity.kind_to_code} of row [i], or [-1] when
    the row is filtered out. Ignores [config.keep] — see
    {!has_custom_keep}. *)

val has_custom_keep : config -> bool
(** Whether [keep] was overridden from the default; if so, native callers
    must materialise surviving rows and apply it. *)

val apply_native : config -> Trace.Arena.t list -> Trace.Arena.t list
(** {!apply} in the native representation (same per-record semantics,
    including a custom [keep]); host arenas are preserved even when every
    row is dropped, like {!apply} keeps empty logs. *)
