(** A mutable double-ended queue with random access and promotion.

    The ranker keeps one of these per node. Besides the usual deque
    operations it supports [promote], which moves an inner element to the
    front — the generalisation of the paper's head-swap that resolves
    concurrency disturbances (its Fig. 6 swaps positions 0 and 1; a
    matching SEND can sit deeper when several requests collide). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit
val peek_front : 'a t -> 'a option

val pop_front : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val get : 'a t -> int -> 'a
(** [get t i] is the i-th element from the front (0-based).
    @raise Invalid_argument when out of bounds. *)

val promote : 'a t -> int -> unit
(** [promote t i] moves the element at index [i] to the front, shifting
    elements [0..i-1] back one slot; order among them is preserved.
    [promote t 1] is the paper's head swap. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert t i x] places [x] at index [i] from the front, shifting
    elements [i..] back one slot; [insert t 0] is {!push_front} and
    [insert t (length t)] is {!push_back}. Used by the ranker to re-sort a
    late-but-tolerable record into its host's fetched queue.
    @raise Invalid_argument when out of bounds. *)

val find_index : 'a t -> ('a -> bool) -> int option
(** Index of the first element satisfying the predicate. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
