(** Human-readable rendering of a telemetry snapshot through {!Report},
    so self-profiles print in the same boxed-table style as the benches
    (and round-trip through the same CSV escaping). *)

val tables : Telemetry.Registry.family list -> Report.table list
(** Up to three tables — counters, gauges, histograms — omitting kinds
    with no samples. Labels render as [k=v] pairs, comma-separated. *)

val render : Telemetry.Registry.family list -> string

val print : Telemetry.Registry.family list -> unit
