module Activity = Trace.Activity
module Arena = Trace.Arena
module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

(* Nameable default so the arena path can detect "nobody is listening"
   physically and skip materialising filtered-out rows just to tee them. *)
let default_on_activity (_ : Trace.Activity.t) = ()

type t = {
  transform : Transform.config;
  tmemo : Transform.memo;  (* per-id transform decisions for {!observe_arena} *)
  on_activity : Trace.Activity.t -> unit;
  ranker : Ranker.t;
  engine : Cag_engine.t;
  telemetry : R.t;
  skew_allowance : Sim_time.span;
  mutable accepted : int;
  mutable resolved : int;
  mutable watermark : Sim_time.t;  (* latest fed local timestamp, any host *)
  mutable finished : bool;
  mutable seen_evictions : int;  (* ranker counts already mirrored *)
  mutable seen_resyncs : int;
  m_observed : R.counter;
  m_paths : R.counter;
  m_deformed_paths : R.counter;
  m_pending : R.gauge;
  m_lag : Telemetry.Histogram.t;
  m_quarantined : Ranker.reject_reason -> R.counter;
  m_evictions : R.counter;
  m_resyncs : R.counter;
  m_stragglers : R.gauge;
  m_peak_memory : R.gauge;
}

(* Mirror the ranker's straggler counters incrementally (they advance
   inside [rank_step], outside our sight) and refresh the live gauges. *)
let sync_degraded t =
  let s = Ranker.stats t.ranker in
  if s.Ranker.stragglers_evicted > t.seen_evictions then begin
    R.add t.m_evictions (s.Ranker.stragglers_evicted - t.seen_evictions);
    t.seen_evictions <- s.Ranker.stragglers_evicted
  end;
  if s.Ranker.straggler_resyncs > t.seen_resyncs then begin
    R.add t.m_resyncs (s.Ranker.straggler_resyncs - t.seen_resyncs);
    t.seen_resyncs <- s.Ranker.straggler_resyncs
  end;
  R.set t.m_stragglers (float_of_int (Ranker.stragglers_active t.ranker));
  let held =
    Ranker.held t.ranker + Cag_engine.live_vertices t.engine + Cag_engine.mmap_entries t.engine
  in
  R.set_max t.m_peak_memory (float_of_int held)

let drain t =
  let rec loop () =
    match Ranker.rank_step t.ranker with
    | Ranker.Candidate a ->
        t.resolved <- t.resolved + 1;
        Cag_engine.step t.engine a;
        (* Periodically evict unmatched sends that can no longer match,
           with the horizon clamped at the trace origin (matchable SENDs
           at trace start must survive early GC rounds). *)
        if t.resolved land 0xfff = 0 then begin
          let horizon =
            Sim_time.max Sim_time.zero
              (Sim_time.add a.Activity.timestamp
                 (Sim_time.span_scale (-2.0) t.skew_allowance))
          in
          ignore (Cag_engine.gc t.engine ~older_than:horizon)
        end;
        loop ()
    | Ranker.Need_input | Ranker.Exhausted -> ()
  in
  loop ()

let pending t =
  let s = Ranker.stats t.ranker in
  t.accepted - s.Ranker.candidates - s.Ranker.noise_discarded

let create ~config ~hosts ?straggler_timeout ?max_buffered ?reorder_slack
    ?(on_path = fun _ -> ()) ?(on_activity = default_on_activity) ?(telemetry = R.default) () =
  let holder = ref None in
  let engine =
    Cag_engine.create
      ~on_finished:(fun cag ->
        (match !holder with
        | Some t ->
            R.incr t.m_paths;
            (* A path completing while some stream is evicted as a
               straggler may be missing that stream's activities: flag it
               deformed so consumers can weigh it. *)
            if Ranker.stragglers_active t.ranker > 0 || Cag.is_deformed cag then begin
              Cag.Builder.mark_deformed cag;
              R.incr t.m_deformed_paths
            end;
            (* Completion lag: how far the feed watermark has run past the
               path's END when the path pops out — the "bounded lag" the
               online mode promises. *)
            let lag = Sim_time.span_to_float_s (Sim_time.diff t.watermark (Cag.end_ts cag)) in
            Telemetry.Histogram.observe t.m_lag (Float.max 0.0 lag)
        | None -> ());
        on_path cag)
      ()
  in
  let ranker =
    Ranker.create_online ~window:config.Correlator.window
      ~skew_allowance:config.Correlator.skew_allowance
      ~ablation:config.Correlator.ablation ?straggler_timeout ?max_buffered ?reorder_slack
      ~has_mmap_send:(Cag_engine.has_mmap_send engine)
      ~hosts ()
  in
  let t =
    {
      transform = config.Correlator.transform;
      tmemo = Transform.memo config.Correlator.transform;
      on_activity;
      ranker;
      engine;
      telemetry;
      skew_allowance = config.Correlator.skew_allowance;
      accepted = 0;
      resolved = 0;
      watermark = Sim_time.zero;
      finished = false;
      seen_evictions = 0;
      seen_resyncs = 0;
      m_observed =
        R.counter telemetry ~help:"Activities accepted by the online correlator"
          "pt_online_observed_total";
      m_paths =
        R.counter telemetry ~help:"Causal paths completed online" "pt_online_paths_total";
      m_deformed_paths =
        R.counter telemetry
          ~help:"Paths completed under degraded conditions and flagged deformed"
          "pt_online_deformed_paths_total";
      m_pending =
        R.gauge telemetry ~help:"Activities accepted but not yet resolved" "pt_online_pending";
      m_lag =
        R.histogram telemetry
          ~help:"Feed-watermark lead over a completing path's END, virtual seconds"
          "pt_online_path_lag_seconds";
      m_quarantined =
        (fun reason ->
          R.counter telemetry ~help:"Malformed records quarantined instead of raising"
            ~labels:[ ("reason", Ranker.reject_reason_to_string reason) ]
            "pt_online_quarantined_total");
      m_evictions =
        R.counter telemetry ~help:"Streams evicted as stragglers"
          "pt_online_stragglers_evicted_total";
      m_resyncs =
        R.counter telemetry ~help:"Straggler streams reintegrated after catching up"
          "pt_online_straggler_resyncs_total";
      m_stragglers =
        R.gauge telemetry ~help:"Streams currently evicted as stragglers"
          "pt_online_stragglers_active";
      m_peak_memory =
        R.gauge telemetry
          ~help:"Peak simultaneously-held records online (ranker + engine)"
          "pt_online_peak_memory_records";
    }
  in
  holder := Some t;
  (* Pre-register every quarantine reason so the family is exposed (at
     zero) even on clean feeds. *)
  List.iter (fun r -> ignore (t.m_quarantined r : R.counter)) Ranker.all_reject_reasons;
  t

let feed_classified t activity =
  match Ranker.feed t.ranker activity with
  | Ranker.Quarantined reason ->
      (* Never raises — not even after [finish] or on garbage input;
         the record is counted and kept for inspection instead. *)
      R.incr (t.m_quarantined reason)
  | Ranker.Accepted | Ranker.Resorted ->
      t.accepted <- t.accepted + 1;
      R.incr t.m_observed;
      if Sim_time.(activity.Activity.timestamp > t.watermark) then
        t.watermark <- activity.Activity.timestamp;
      drain t;
      sync_degraded t;
      R.set t.m_pending (float_of_int (pending t))

let observe t raw =
  t.on_activity raw;
  match Transform.classify t.transform raw with
  | None -> ()
  | Some activity -> feed_classified t activity

(* Row [i] as an activity record carrying the transform's rewritten kind.
   The canonical interned context/flow are shared, so a kept row costs two
   blocks (three when the kind was rewritten). *)
let materialize_row arena i k =
  let a = Arena.get arena i in
  if Activity.kind_to_code a.Activity.kind = k then a
  else
    match Activity.kind_of_code k with
    | Some kind -> { a with Activity.kind }
    | None -> a (* unreachable: classify_row only returns valid codes *)

let observe_arena t arena =
  let custom = Transform.has_custom_keep t.transform in
  (* Filtered-out rows only need materialising when a tee listener or a
     custom keep predicate wants the raw record. *)
  let raw_all = custom || t.on_activity != default_on_activity in
  for i = 0 to Arena.length arena - 1 do
    let k = Transform.classify_row t.tmemo arena i in
    if raw_all then begin
      let raw = Arena.get arena i in
      t.on_activity raw;
      if k >= 0 && ((not custom) || t.transform.Transform.keep raw) then
        feed_classified t (materialize_row arena i k)
    end
    else if k >= 0 then feed_classified t (materialize_row arena i k)
  done

let finish t =
  Ranker.close_input t.ranker;
  drain t;
  sync_degraded t;
  R.set t.m_pending (float_of_int (pending t));
  if not t.finished then begin
    t.finished <- true;
    Pipeline_metrics.add_ranker_stats t.telemetry (Ranker.stats t.ranker);
    Pipeline_metrics.add_engine_stats t.telemetry (Cag_engine.stats t.engine)
  end

let paths t = Cag_engine.finished t.engine
let deformed t = Cag_engine.unfinished t.engine
let ranker_stats t = Ranker.stats t.ranker
let engine_stats t = Cag_engine.stats t.engine
let quarantine_log t = Ranker.quarantine_log t.ranker
let stragglers_active t = Ranker.stragglers_active t.ranker

let attach ~config ~probe ~hosts ?straggler_timeout ?max_buffered ?reorder_slack ?on_path
    ?on_activity ?telemetry () =
  let t =
    create ~config ~hosts ?straggler_timeout ?max_buffered ?reorder_slack ?on_path
      ?on_activity ?telemetry ()
  in
  Trace.Probe.add_listener probe (observe t);
  t
