module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

type t = {
  transform : Transform.config;
  on_activity : Trace.Activity.t -> unit;
  ranker : Ranker.t;
  engine : Cag_engine.t;
  telemetry : R.t;
  mutable accepted : int;
  mutable resolved : int;
  mutable watermark : Sim_time.t;  (* latest fed local timestamp, any host *)
  mutable finished : bool;
  m_observed : R.counter;
  m_paths : R.counter;
  m_pending : R.gauge;
  m_lag : Telemetry.Histogram.t;
}

let drain t =
  let rec loop () =
    match Ranker.rank_step t.ranker with
    | Ranker.Candidate a ->
        t.resolved <- t.resolved + 1;
        Cag_engine.step t.engine a;
        loop ()
    | Ranker.Need_input | Ranker.Exhausted -> ()
  in
  loop ()

let pending t =
  let s = Ranker.stats t.ranker in
  t.accepted - s.Ranker.candidates - s.Ranker.noise_discarded

let create ~config ~hosts ?(on_path = fun _ -> ()) ?(on_activity = fun _ -> ())
    ?(telemetry = R.default) () =
  let holder = ref None in
  let engine =
    Cag_engine.create
      ~on_finished:(fun cag ->
        (match !holder with
        | Some t ->
            R.incr t.m_paths;
            (* Completion lag: how far the feed watermark has run past the
               path's END when the path pops out — the "bounded lag" the
               online mode promises. *)
            let lag = Sim_time.span_to_float_s (Sim_time.diff t.watermark (Cag.end_ts cag)) in
            Telemetry.Histogram.observe t.m_lag (Float.max 0.0 lag)
        | None -> ());
        on_path cag)
      ()
  in
  let ranker =
    Ranker.create_online ~window:config.Correlator.window
      ~skew_allowance:config.Correlator.skew_allowance
      ~ablation:config.Correlator.ablation
      ~has_mmap_send:(Cag_engine.has_mmap_send engine)
      ~hosts ()
  in
  let t =
    {
      transform = config.Correlator.transform;
      on_activity;
      ranker;
      engine;
      telemetry;
      accepted = 0;
      resolved = 0;
      watermark = Sim_time.zero;
      finished = false;
      m_observed =
        R.counter telemetry ~help:"Activities accepted by the online correlator"
          "pt_online_observed_total";
      m_paths =
        R.counter telemetry ~help:"Causal paths completed online" "pt_online_paths_total";
      m_pending =
        R.gauge telemetry ~help:"Activities accepted but not yet resolved" "pt_online_pending";
      m_lag =
        R.histogram telemetry
          ~help:"Feed-watermark lead over a completing path's END, virtual seconds"
          "pt_online_path_lag_seconds";
    }
  in
  holder := Some t;
  t

let observe t raw =
  t.on_activity raw;
  match Transform.classify t.transform raw with
  | None -> ()
  | Some activity ->
      Ranker.feed t.ranker activity;
      t.accepted <- t.accepted + 1;
      R.incr t.m_observed;
      if Sim_time.(activity.Activity.timestamp > t.watermark) then
        t.watermark <- activity.Activity.timestamp;
      drain t;
      R.set t.m_pending (float_of_int (pending t))

let finish t =
  Ranker.close_input t.ranker;
  drain t;
  R.set t.m_pending (float_of_int (pending t));
  if not t.finished then begin
    t.finished <- true;
    Pipeline_metrics.add_ranker_stats t.telemetry (Ranker.stats t.ranker);
    Pipeline_metrics.add_engine_stats t.telemetry (Cag_engine.stats t.engine)
  end

let paths t = Cag_engine.finished t.engine
let deformed t = Cag_engine.unfinished t.engine
let ranker_stats t = Ranker.stats t.ranker
let engine_stats t = Cag_engine.stats t.engine

let attach ~config ~probe ~hosts ?on_path ?on_activity ?telemetry () =
  let t = create ~config ~hosts ?on_path ?on_activity ?telemetry () in
  Trace.Probe.add_listener probe (observe t);
  t
