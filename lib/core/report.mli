(** Plain-text tables and CSV output for experiment results.

    Every figure-reproduction bench prints its series through this module,
    so the output stays uniform and machine-extractable. *)

type table

val table : title:string -> columns:string list -> table

val add_row : table -> string list -> unit
(** @raise Invalid_argument on a width mismatch with [columns]. *)

val render : table -> string
(** Aligned, boxed-with-dashes plain text. *)

val print : table -> unit
(** [render] to stdout, followed by a blank line. *)

val to_csv : table -> string
(** RFC 4180-style: cells containing commas, double quotes, or CR/LF are
    wrapped in double quotes with embedded quotes doubled, so telemetry
    and bench tables round-trip through CSV parsers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string
(** [cell_pct 0.463] is ["46.3%"]. *)

val clamp_share : ?telemetry:Telemetry.Registry.t -> float -> float
(** Clamp a latency {e share} to [0,1] for display. Skew-pushed negative
    hop spans can drive {!Latency.percentages} outside the unit interval;
    the correlator output stays faithful, so presentation clamps here —
    and every clamp (or NaN, rendered as 0) bumps
    [pt_latency_share_out_of_range_total] in [telemetry] (default
    registry) so the skew is flagged instead of silently prettified. *)

val cell_share : ?telemetry:Telemetry.Registry.t -> float -> string
(** [cell_pct] of [clamp_share]: the cell to use for any share of a
    latency profile. *)

val cell_span : Simnet.Sim_time.span -> string
