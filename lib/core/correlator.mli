(** PreciseTracer's Correlator: the full pipeline from raw per-node logs
    to causal paths.

    [correlate] composes the three steps of §4: (1) per-node logs sorted by
    local timestamps (guaranteed by {!Trace.Log}), (2) the {!Ranker}
    choosing candidates through the sliding time window, and (3) the
    {!Cag_engine} assembling candidates into CAGs — after the
    {!Transform} pass has rewritten entry-point activities into
    BEGIN/END and dropped name-filterable noise. *)

type config = {
  transform : Transform.config;
  window : Simnet.Sim_time.span;  (** Sliding-window size. *)
  skew_allowance : Simnet.Sim_time.span;
      (** Upper bound assumed on cross-node clock skew; see {!Ranker}. *)
  ablation : Ranker.ablation;  (** For the mechanism-ablation benches. *)
}

val config :
  transform:Transform.config ->
  ?window:Simnet.Sim_time.span ->
  ?skew_allowance:Simnet.Sim_time.span ->
  ?ablation:Ranker.ablation ->
  unit ->
  config
(** Defaults: 10 ms window (the paper's §5.3.1 setting), 1 s allowance. *)

type result = {
  cags : Cag.t list;  (** Finished CAGs, in completion order. *)
  deformed : Cag.t list;  (** Unfinished CAGs (loss or truncated input). *)
  ranker_stats : Ranker.stats;
  engine_stats : Cag_engine.stats;
  correlation_time : float;  (** Wall-clock seconds spent correlating. *)
  peak_memory_proxy : int;
      (** Peak simultaneously-held records: buffered activities plus live
          CAG vertices plus mmap entries — the quantity the paper's Fig. 11
          tracks as Correlator memory. *)
  memory_bytes_estimate : int;
      (** [peak_memory_proxy] scaled by a per-record footprint estimate. *)
}

val correlate : ?telemetry:Telemetry.Registry.t -> config -> Trace.Log.collection -> result
(** Run the offline pipeline to completion. The run also reports itself
    into [telemetry] (default {!Telemetry.Registry.default}): per-stage
    wall time, activities in, commits, window occupancy, the path counts,
    and the full {!Ranker.stats}/{!Cag_engine.stats} mirror (see
    docs/TELEMETRY.md for the catalogue). *)

val correlate_stream :
  ?telemetry:Telemetry.Registry.t ->
  config ->
  Trace.Log.collection ->
  on_path:(Cag.t -> unit) ->
  result
(** Same, invoking [on_path] as each causal path completes — the paper's
    intended online use. *)

val correlate_arena :
  ?telemetry:Telemetry.Registry.t -> config -> Trace.Arena.t list -> result
(** {!correlate} fed from the native representation: the {!Transform}
    pass runs as {!Transform.apply_native} (one memoised decision per
    interned context/flow id) and records are materialised exactly once,
    for the ranker. Decoded segments and collector batches take this
    entry without round-tripping through {!Trace.Log}. *)

val correlate_arena_stream :
  ?telemetry:Telemetry.Registry.t ->
  config ->
  Trace.Arena.t list ->
  on_path:(Cag.t -> unit) ->
  result
(** {!correlate_arena} invoking [on_path] as each path completes. *)

val correlate_prepared :
  ?telemetry:Telemetry.Registry.t ->
  ?started:float ->
  config ->
  Trace.Log.collection ->
  on_path:(Cag.t -> unit) ->
  result
(** The rank/step/gc loop alone, over a collection the {!Transform} pass
    has already been applied to. This is what {!Shard} runs per epoch in
    a worker domain; [started] (a [Unix.gettimeofday] stamp) backdates
    [correlation_time] so callers can account setup they did themselves. *)
