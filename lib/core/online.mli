(** Online correlation: causal paths while the service runs.

    The paper runs its experiments offline but positions PreciseTracer's
    "low overhead and tolerance of noise" as making it "a promising
    tracing tool for using on production systems". This module provides
    that mode: activities are pushed in as each node's tracer reports
    them (e.g. via {!Trace.Probe.add_listener}), and completed causal
    paths pop out with bounded lag.

    Candidates are only committed once every node's feed watermark has
    passed their timestamp plus the skew allowance (see
    {!Ranker.rank_step}), so the online run produces {e exactly} the same
    CAGs as an offline run over the final logs — a property the test
    suite asserts. The price is latency: a path completes at most
    [skew_allowance] (plus feeding lag) after its END activity.

    {1 Degraded feeds}

    Production feeds are imperfect, and the pipeline degrades gracefully
    rather than deadlocking or raising (see {!Ranker} for the underlying
    mechanisms):

    - a host that falls silent for longer than [straggler_timeout] is
      evicted from the commit wait set, so paths keep completing; paths
      finishing while a straggler is evicted are flagged deformed
      ({!Cag.is_deformed}) and counted in
      [pt_online_deformed_paths_total];
    - malformed records (unknown host, fed after {!finish}, duplicates,
      timestamp regressions beyond the skew allowance, too-late records)
      are quarantined and counted in
      [pt_online_quarantined_total{reason=...}] — {!observe} never
      raises; regressions within the allowance are re-sorted into place;
    - [max_buffered] bounds held records: past it the ranker
      force-resolves the oldest window instead of waiting, and the
      [pt_online_peak_memory_records] gauge mirrors the peak footprint
      (ranker held records + engine live vertices + mmap entries), the
      online analogue of the offline Fig. 11 memory proxy. *)

type t

val create :
  config:Correlator.config ->
  hosts:string list ->
  ?straggler_timeout:Simnet.Sim_time.span ->
  ?max_buffered:int ->
  ?reorder_slack:Simnet.Sim_time.span ->
  ?on_path:(Cag.t -> unit) ->
  ?on_activity:(Trace.Activity.t -> unit) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** [hosts] are the traced nodes (each will feed one stream). [on_path]
    fires as each causal path completes. [on_activity] fires on every
    {e raw} observed activity before the BEGIN/END transform or any
    filtering — the tee point for a capture-to-disk consumer such as a
    store writer ([Store.Writer.observe]), so correlation and durable
    capture share one feed. [straggler_timeout], [max_buffered] and
    [reorder_slack] configure the degraded-feed behaviour described
    above (all off by default). The run reports itself into
    [telemetry] (default {!Telemetry.Registry.default}): live pending
    depth ([pt_online_pending]), accepted activities, completed paths, the
    path-completion lag against the feed watermark
    ([pt_online_path_lag_seconds]), the degraded-feed counters, and — on
    {!finish} — the same {!Ranker.stats}/{!Cag_engine.stats} mirror an
    offline {!Correlator.correlate} run records, so online and offline
    runs are comparable through one snapshot. *)

val observe : t -> Trace.Activity.t -> unit
(** Push one raw activity (SEND/RECEIVE, as the probe reports them). The
    BEGIN/END transform and noise filters of the configuration are applied
    here; progress is drained eagerly. Never raises: out-of-contract
    records (including any fed after {!finish}) are quarantined and
    counted instead. *)

val observe_arena : t -> Trace.Arena.t -> unit
(** {!observe} over every row of an arena, in row order — the native feed
    for collector batches and decoded segments. Transform decisions are
    memoised per interned context/flow id, and records are materialised
    only for rows that survive the filters (unless an [on_activity] tee
    or a custom [keep] needs the raw record). Same quarantine-not-raise
    contract as {!observe}. *)

val finish : t -> unit
(** Declare the input complete and drain everything that remains.
    Idempotent; further {!observe} calls are quarantined as [closed]. *)

val paths : t -> Cag.t list
(** Completed paths so far, in completion order. *)

val deformed : t -> Cag.t list
(** Unfinished CAGs; meaningful after {!finish}. (Finished-but-flagged
    paths are found via {!Cag.is_deformed} on {!paths}.) *)

val pending : t -> int
(** Activities accepted but not yet resolved into a candidate. *)

val stragglers_active : t -> int
(** Streams currently evicted as stragglers. *)

val quarantine_log : t -> (Ranker.reject_reason * Trace.Activity.t) list
(** Most recent quarantined records (bounded ring). *)

val ranker_stats : t -> Ranker.stats
val engine_stats : t -> Cag_engine.stats

val attach :
  config:Correlator.config ->
  probe:Trace.Probe.t ->
  hosts:string list ->
  ?straggler_timeout:Simnet.Sim_time.span ->
  ?max_buffered:int ->
  ?reorder_slack:Simnet.Sim_time.span ->
  ?on_path:(Cag.t -> unit) ->
  ?on_activity:(Trace.Activity.t -> unit) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** Convenience: create and register on a probe, correlating live while a
    simulation (or deployment) runs. Call {!finish} when the run ends. *)
