(** Online correlation: causal paths while the service runs.

    The paper runs its experiments offline but positions PreciseTracer's
    "low overhead and tolerance of noise" as making it "a promising
    tracing tool for using on production systems". This module provides
    that mode: activities are pushed in as each node's tracer reports
    them (e.g. via {!Trace.Probe.add_listener}), and completed causal
    paths pop out with bounded lag.

    Candidates are only committed once every node's feed watermark has
    passed their timestamp plus the skew allowance (see
    {!Ranker.rank_step}), so the online run produces {e exactly} the same
    CAGs as an offline run over the final logs — a property the test
    suite asserts. The price is latency: a path completes at most
    [skew_allowance] (plus feeding lag) after its END activity. *)

type t

val create :
  config:Correlator.config ->
  hosts:string list ->
  ?on_path:(Cag.t -> unit) ->
  ?on_activity:(Trace.Activity.t -> unit) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** [hosts] are the traced nodes (each will feed one stream). [on_path]
    fires as each causal path completes. [on_activity] fires on every
    {e raw} observed activity before the BEGIN/END transform or any
    filtering — the tee point for a capture-to-disk consumer such as a
    store writer ([Store.Writer.observe]), so correlation and durable
    capture share one feed. The run reports itself into
    [telemetry] (default {!Telemetry.Registry.default}): live pending
    depth ([pt_online_pending]), accepted activities, completed paths, the
    path-completion lag against the feed watermark
    ([pt_online_path_lag_seconds]), and — on {!finish} — the same
    {!Ranker.stats}/{!Cag_engine.stats} mirror an offline
    {!Correlator.correlate} run records, so online and offline runs are
    comparable through one snapshot. *)

val observe : t -> Trace.Activity.t -> unit
(** Push one raw activity (SEND/RECEIVE, as the probe reports them). The
    BEGIN/END transform and noise filters of the configuration are applied
    here; progress is drained eagerly. Activities of one host must arrive
    in non-decreasing local-timestamp order. *)

val finish : t -> unit
(** Declare the input complete and drain everything that remains. *)

val paths : t -> Cag.t list
(** Completed paths so far, in completion order. *)

val deformed : t -> Cag.t list
(** Unfinished CAGs; meaningful after {!finish}. *)

val pending : t -> int
(** Activities accepted but not yet resolved into a candidate. *)

val ranker_stats : t -> Ranker.stats
val engine_stats : t -> Cag_engine.stats

val attach :
  config:Correlator.config ->
  probe:Trace.Probe.t ->
  hosts:string list ->
  ?on_path:(Cag.t -> unit) ->
  ?on_activity:(Trace.Activity.t -> unit) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** Convenience: create and register on a probe, correlating live while a
    simulation (or deployment) runs. Call {!finish} when the run ends. *)
