module Activity = Trace.Activity
module Ground_truth = Trace.Ground_truth
module Sim_time = Simnet.Sim_time

type verdict = {
  accuracy : float;
  correct : int;
  total_requests : int;
  false_positives : int;
  false_negatives : int;
  mismatches : (int * string) list;
}

let visits_of_cag cag =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun (v : Cag.vertex) ->
      let a = v.Cag.activity in
      let c = a.Activity.context in
      let key = (c.Activity.host, c.program, c.pid, c.tid) in
      match Hashtbl.find_opt table key with
      | Some visit ->
          Hashtbl.replace table key
            {
              visit with
              Ground_truth.begin_ts = Sim_time.min visit.Ground_truth.begin_ts a.timestamp;
              end_ts = Sim_time.max visit.Ground_truth.end_ts a.timestamp;
            }
      | None ->
          order := key :: !order;
          Hashtbl.replace table key
            { Ground_truth.context = c; begin_ts = a.timestamp; end_ts = a.timestamp })
    (Cag.vertices cag);
  List.rev_map (fun key -> Hashtbl.find table key) !order

let within tol a b =
  let d = Sim_time.span_ns (Sim_time.diff a b) in
  abs d <= Sim_time.span_ns tol

(* Visits are per-context merged intervals, so both a derived path and an
   oracle request hold at most one visit per context: matching is a
   context-keyed bijection, not a positional walk. The distinction
   matters once requests branch — concurrent sibling subcalls reach the
   CAG in correlation order (local clocks through the ranker) while the
   oracle records them in arrival order, and under skew the two disagree
   without either being wrong. Context identity plus per-context interval
   agreement is exactly the paper's consistency criterion; first-touch
   order was only ever a proxy for it on sequential chains. *)
let visits_match tol (derived : Ground_truth.visit list) (truth : Ground_truth.visit list) =
  List.length derived = List.length truth
  &&
  let key (c : Activity.context) = (c.Activity.host, c.program, c.pid, c.tid) in
  let by_context = Hashtbl.create 8 in
  List.iter
    (fun (t : Ground_truth.visit) -> Hashtbl.replace by_context (key t.context) t)
    truth;
  Hashtbl.length by_context = List.length truth
  && List.for_all
       (fun (d : Ground_truth.visit) ->
         match Hashtbl.find_opt by_context (key d.context) with
         | Some (t : Ground_truth.visit) ->
             Hashtbl.remove by_context (key d.context);
             within tol d.begin_ts t.begin_ts && within tol d.end_ts t.end_ts
         | None -> false)
       derived

let check_visits ?(tolerance = Sim_time.us 500) ~requests visits_list =
  let total_requests = List.length requests in
  (* Index requests by their entry context; within a context they are
     sequential, so a timestamp window resolves the candidate. *)
  let by_entry : (string * string * int * int, (Ground_truth.request * bool ref) list ref) Hashtbl.t
      =
    Hashtbl.create 256
  in
  let context_key (c : Activity.context) = (c.Activity.host, c.program, c.pid, c.tid) in
  List.iter
    (fun (r : Ground_truth.request) ->
      match r.visits with
      | [] -> ()
      | first :: _ ->
          let key = context_key first.context in
          let cell =
            match Hashtbl.find_opt by_entry key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_entry key l;
                l
          in
          cell := (r, ref false) :: !cell)
    requests;
  let correct = ref 0 and false_positives = ref 0 in
  List.iter
    (fun derived ->
      match derived with
      | [] -> incr false_positives
      | (first : Ground_truth.visit) :: _ -> (
          let key = context_key first.Ground_truth.context in
          let candidates =
            match Hashtbl.find_opt by_entry key with Some l -> !l | None -> []
          in
          let matching =
            List.find_opt
              (fun ((r : Ground_truth.request), used) ->
                (not !used) && visits_match tolerance derived r.visits)
              candidates
          in
          match matching with
          | Some (_, used) ->
              used := true;
              incr correct
          | None -> incr false_positives))
    visits_list;
  let unmatched =
    Hashtbl.fold
      (fun _ cell acc ->
        List.fold_left
          (fun acc ((r : Ground_truth.request), used) -> if !used then acc else r :: acc)
          acc !cell)
      by_entry []
  in
  let mismatches =
    List.filteri (fun i _ -> i < 10) unmatched
    |> List.map (fun (r : Ground_truth.request) ->
           (r.Ground_truth.id, Printf.sprintf "request %s not matched by any path" r.kind))
  in
  {
    accuracy =
      (if total_requests = 0 then 1.0 else float_of_int !correct /. float_of_int total_requests);
    correct = !correct;
    total_requests;
    false_positives = !false_positives;
    false_negatives = List.length unmatched;
    mismatches;
  }

let check ?tolerance ~ground_truth cags =
  check_visits ?tolerance
    ~requests:(Ground_truth.requests ground_truth)
    (List.map visits_of_cag cags)

let pp_verdict ppf v =
  Format.fprintf ppf "accuracy %.2f%% (%d/%d correct, %d false positive, %d false negative)"
    (v.accuracy *. 100.0) v.correct v.total_requests v.false_positives v.false_negatives
