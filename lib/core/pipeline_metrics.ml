module R = Telemetry.Registry

let add_ranker_stats reg (s : Ranker.stats) =
  let c name help v = R.add (R.counter reg ~help name) v in
  c "pt_ranker_fetched_total" "Activities pulled into the ranker buffer" s.fetched;
  c "pt_ranker_candidates_total" "Candidates emitted by the ranker" s.candidates;
  c "pt_ranker_noise_discarded_total" "RECEIVEs discarded as noise" s.noise_discarded;
  c "pt_ranker_promotions_total" "Concurrency-disturbance head swaps" s.promotions;
  c "pt_ranker_forced_fetches_total" "Window extensions for deferred noise checks"
    s.forced_fetches;
  c "pt_ranker_forced_discards_total" "Discards of receives with unpromotable buffered sends"
    s.forced_discards;
  c "pt_ranker_resorted_total" "Late records re-sorted into place within the skew allowance"
    s.resorted;
  c "pt_ranker_stragglers_evicted_total" "Streams marked lagging past the straggler timeout"
    s.stragglers_evicted;
  c "pt_ranker_straggler_resyncs_total" "Lagging streams reintegrated after catching up"
    s.straggler_resyncs;
  c "pt_ranker_backpressure_pops_total" "Oldest-window force-resolutions under max_buffered"
    s.backpressure_pops;
  List.iter
    (fun (reason, n) ->
      R.add
        (R.counter reg ~help:"Malformed records quarantined by the ranker"
           ~labels:[ ("reason", Ranker.reject_reason_to_string reason) ]
           "pt_ranker_quarantined_total")
        n)
    s.quarantined;
  R.set_max
    (R.gauge reg ~help:"High-water mark of buffered activities" "pt_ranker_peak_buffered")
    (float_of_int s.peak_buffered)

let add_engine_stats reg (s : Cag_engine.stats) =
  let c name help v = R.add (R.counter reg ~help name) v in
  c "pt_engine_cags_started_total" "CAGs begun (BEGIN correlated)" s.cags_started;
  c "pt_engine_cags_finished_total" "CAGs completed (END correlated)" s.cags_finished;
  c "pt_engine_send_merges_total" "SEND syscalls folded into an earlier SEND vertex"
    s.send_merges;
  c "pt_engine_end_merges_total" "END syscalls folded into an earlier END vertex" s.end_merges;
  c "pt_engine_receive_merges_total" "RECEIVE completions folded into an existing vertex"
    s.receive_merges;
  c "pt_engine_partial_receives_total" "RECEIVEs leaving a SEND partly unmatched"
    s.partial_receives;
  c "pt_engine_unmatched_receives_total" "RECEIVEs with no mmap entry" s.unmatched_receives;
  c "pt_engine_thread_reuse_blocked_total" "Context edges suppressed across CAGs"
    s.thread_reuse_blocked;
  c "pt_engine_orphans_total" "Vertices correlated outside any CAG" s.orphans;
  c "pt_engine_crossed_boundaries_total" "RECEIVEs spanning two logical messages"
    s.crossed_boundaries;
  c "pt_engine_evicted_sends_total" "Open-CAG SEND vertices evicted by GC (CAG flagged deformed)"
    s.evicted_sends;
  R.set (R.gauge reg ~help:"Outstanding SEND vertices in the mmap" "pt_engine_mmap_entries")
    (float_of_int s.mmap_entries);
  R.set
    (R.gauge reg ~help:"Vertices of unfinished CAGs plus orphans" "pt_engine_live_vertices")
    (float_of_int s.live_vertices);
  R.set_max
    (R.gauge reg ~help:"High-water mark of live vertices" "pt_engine_peak_live_vertices")
    (float_of_int s.peak_live_vertices)
