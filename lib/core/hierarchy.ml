module B = Trace.Binary_format
module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time
module Address = Simnet.Address

(* ---- Canonical order and splice. ---- *)

let compare_paths (a : Cag.t) (b : Cag.t) =
  let ra = (Cag.root a).Cag.activity in
  let rb = (Cag.root b).Cag.activity in
  let c = Sim_time.compare ra.Activity.timestamp rb.Activity.timestamp in
  if c <> 0 then c
  else
    let c = Activity.compare_context ra.Activity.context rb.Activity.context in
    if c <> 0 then c
    else
      let c = Sim_time.compare (Cag.end_ts a) (Cag.end_ts b) in
      if c <> 0 then c
      else
        let c = Int.compare (Cag.size a) (Cag.size b) in
        if c <> 0 then c
        else String.compare (Pattern.signature_of a) (Pattern.signature_of b)

let canonicalize ?(first_id = 0) cags =
  let sorted = List.sort compare_paths cags in
  List.iteri (fun i c -> Cag.Builder.renumber c ~cag_id:(first_id + i)) sorted;
  sorted

let splice shards = canonicalize (List.concat shards)

(* ---- Identity digest (the byte format Shard.digest always used). ---- *)

let render ~finished ~deformed =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "finished=%d deformed=%d\n" (List.length finished)
       (List.length deformed));
  let patterns = Pattern.classify finished in
  List.iter
    (fun (pat : Pattern.t) ->
      Buffer.add_string buf
        (Printf.sprintf "pattern %s n=%d sig=%s\n" pat.Pattern.name (Pattern.count pat)
           pat.Pattern.signature);
      List.iter
        (fun (c : Cag.t) -> Buffer.add_string buf (Printf.sprintf " id=%d" c.Cag.cag_id))
        pat.Pattern.cags;
      Buffer.add_char buf '\n';
      if List.exists Cag.is_finished pat.Pattern.cags then begin
        let agg = Aggregate.of_pattern pat in
        List.iter
          (fun (c, pct) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s %.9f\n" (Latency.component_label c) pct))
          (Aggregate.component_percentages agg);
        let tt = Aggregate.total_tail pat in
        Buffer.add_string buf
          (Printf.sprintf "  tail %.9f %.9f %.9f %.9f\n" tt.Aggregate.t_p50_s
             tt.Aggregate.t_p90_s tt.Aggregate.t_p99_s tt.Aggregate.t_max_s)
      end)
    patterns;
  Buffer.contents buf

let digest ~finished ~deformed =
  let finished = canonicalize finished in
  let deformed = canonicalize ~first_id:(List.length finished) deformed in
  Digest.to_hex (Digest.string (render ~finished ~deformed))

let digest_result (result : Correlator.result) =
  digest ~finished:result.Correlator.cags ~deformed:result.Correlator.deformed

(* ---- PTH1: the shard-to-root message. ---- *)

let magic = "PTH1"

(* Per-vertex parent sets a valid CAG can have ([Cag.validate]): at most
   two parents, never two of the same relation. The order is edge
   addition order, which the decoder replays. *)
let parent_spec (parents : (Cag.edge_kind * Cag.vertex) list) =
  match parents with
  | [] -> 4
  | [ (Cag.Context_edge, _) ] -> 0
  | [ (Cag.Message_edge, _) ] -> 1
  | [ (Cag.Context_edge, _); (Cag.Message_edge, _) ] -> 2
  | [ (Cag.Message_edge, _); (Cag.Context_edge, _) ] -> 3
  | _ -> invalid_arg "Hierarchy.encode_paths: vertex parents violate the CAG invariant"

let spec_kinds = function
  | 0 -> Some [ Cag.Context_edge ]
  | 1 -> Some [ Cag.Message_edge ]
  | 2 -> Some [ Cag.Context_edge; Cag.Message_edge ]
  | 3 -> Some [ Cag.Message_edge; Cag.Context_edge ]
  | 4 -> Some []
  | _ -> None

let encode_paths cags =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* Interning tables in first-use order: strings (hosts, programs),
     contexts, flows. A vertex then costs two small table indices
     instead of repeating its context and endpoint quadruple. *)
  let strings = Hashtbl.create 16 in
  let rev_strings = ref [] in
  let sid s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length strings in
        Hashtbl.add strings s i;
        rev_strings := s :: !rev_strings;
        i
  in
  let ctxs = Hashtbl.create 64 in
  let rev_ctxs = ref [] in
  let ctx_id (c : Activity.context) =
    let key = (sid c.Activity.host, sid c.Activity.program, c.Activity.pid, c.Activity.tid) in
    match Hashtbl.find_opt ctxs key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ctxs in
        Hashtbl.add ctxs key i;
        rev_ctxs := key :: !rev_ctxs;
        i
  in
  let flows = Hashtbl.create 64 in
  let rev_flows = ref [] in
  let flow_id (f : Address.flow) =
    let key =
      ( Address.ip_to_int f.Address.src.Address.ip,
        f.Address.src.Address.port,
        Address.ip_to_int f.Address.dst.Address.ip,
        f.Address.dst.Address.port )
    in
    match Hashtbl.find_opt flows key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length flows in
        Hashtbl.add flows key i;
        rev_flows := key :: !rev_flows;
        i
  in
  List.iter
    (fun c ->
      List.iter
        (fun (v : Cag.vertex) ->
          let a = v.Cag.activity in
          ignore (ctx_id a.Activity.context);
          ignore (flow_id a.Activity.message.Activity.flow))
        (Cag.vertices c))
    cags;
  B.put_uvarint buf (Hashtbl.length strings);
  List.iter (fun s -> B.put_string buf s) (List.rev !rev_strings);
  B.put_uvarint buf (Hashtbl.length ctxs);
  List.iter
    (fun (host, program, pid, tid) ->
      B.put_uvarint buf host;
      B.put_uvarint buf program;
      B.put_uvarint buf pid;
      B.put_uvarint buf tid)
    (List.rev !rev_ctxs);
  B.put_uvarint buf (Hashtbl.length flows);
  List.iter
    (fun (src_ip, src_port, dst_ip, dst_port) ->
      B.put_uvarint buf src_ip;
      B.put_uvarint buf src_port;
      B.put_uvarint buf dst_ip;
      B.put_uvarint buf dst_port)
    (List.rev !rev_flows);
  B.put_uvarint buf (List.length cags);
  List.iter
    (fun c ->
      let vs = Cag.vertices c in
      B.put_uvarint buf c.Cag.cag_id;
      let flags =
        (if Cag.is_finished c then 1 else 0) lor if Cag.is_deformed c then 2 else 0
      in
      Buffer.add_char buf (Char.chr flags);
      B.put_uvarint buf (List.length vs);
      let idx = Hashtbl.create 16 in
      let prev_ts = ref 0 in
      List.iteri
        (fun i (v : Cag.vertex) ->
          Hashtbl.replace idx v.Cag.vid i;
          let a = v.Cag.activity in
          let parents = List.rev v.Cag.parents in
          Buffer.add_char buf
            (Char.chr
               (Activity.kind_to_code a.Activity.kind lor (parent_spec parents lsl 2)));
          (* Parents precede their children in vertex order, so each is a
             small positive back-reference. *)
          List.iter
            (fun (_, (p : Cag.vertex)) -> B.put_uvarint buf (i - Hashtbl.find idx p.Cag.vid))
            parents;
          (* Timestamps are deltas along the path (the first is absolute);
             signed, because local clocks can run behind under skew and
             vertex order is causal, not clock, order. *)
          let ts = Sim_time.to_ns a.Activity.timestamp in
          B.put_varint buf (ts - !prev_ts);
          prev_ts := ts;
          B.put_uvarint buf (ctx_id a.Activity.context);
          B.put_uvarint buf (flow_id a.Activity.message.Activity.flow);
          B.put_uvarint buf a.Activity.message.Activity.size)
        vs)
    cags;
  Buffer.contents buf

let get_byte r what =
  if r.B.pos >= r.B.limit then raise (B.Corrupt (r.B.pos, "truncated " ^ what));
  let b = Char.code r.B.data.[r.B.pos] in
  r.B.pos <- r.B.pos + 1;
  b

let decode_paths data =
  let r = { B.data; pos = 0; limit = String.length data } in
  match
    String.iteri
      (fun i ch ->
        if r.B.pos >= r.B.limit || data.[r.B.pos] <> ch then
          raise (B.Corrupt (r.B.pos, Printf.sprintf "bad magic (expected %S)" magic))
        else r.B.pos <- i + 1)
      magic;
    let nstrings = B.get_count r "string table" in
    let table =
      let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (B.get_string r :: acc) in
      Array.of_list (go nstrings [])
    in
    let str i =
      if i < 0 || i >= nstrings then raise (B.Corrupt (r.B.pos, "string id out of range"));
      table.(i)
    in
    let nctx = B.get_count r "context table" in
    let contexts =
      let read_ctx () =
        let host = str (B.get_uvarint r) in
        let program = str (B.get_uvarint r) in
        let pid = B.get_uvarint r in
        let tid = B.get_uvarint r in
        { Activity.host; program; pid; tid }
      in
      let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (read_ctx () :: acc) in
      Array.of_list (go nctx [])
    in
    let nflows = B.get_count r "flow table" in
    let flow_table =
      let ip what =
        let v = B.get_uvarint r in
        if v < 0 || v > 0xFFFF_FFFF then raise (B.Corrupt (r.B.pos, "bad " ^ what));
        Address.ip_of_int v
      in
      let read_flow () =
        let src_ip = ip "source ip" in
        let src_port = B.get_uvarint r in
        let dst_ip = ip "destination ip" in
        let dst_port = B.get_uvarint r in
        Address.flow
          ~src:(Address.endpoint src_ip src_port)
          ~dst:(Address.endpoint dst_ip dst_port)
      in
      let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (read_flow () :: acc) in
      Array.of_list (go nflows [])
    in
    let read_cag () =
      let cag_id = B.get_uvarint r in
      let flags = get_byte r "path flags" in
      if flags land lnot 3 <> 0 then raise (B.Corrupt (r.B.pos, "bad path flags"));
      let nv = B.get_count r "vertices" in
      if nv = 0 then raise (B.Corrupt (r.B.pos, "path with no vertices"));
      let verts = Array.make nv None in
      let cag = ref None in
      let prev_ts = ref 0 in
      for i = 0 to nv - 1 do
        let packed = get_byte r "vertex header" in
        let kind =
          match Activity.kind_of_code (packed land 3) with
          | Some k -> k
          | None -> raise (B.Corrupt (r.B.pos - 1, "bad activity kind"))
        in
        let parent_kinds =
          match spec_kinds (packed lsr 2) with
          | Some ks -> ks
          | None -> raise (B.Corrupt (r.B.pos - 1, "bad parent spec"))
        in
        let parents =
          List.map
            (fun k ->
              let delta = B.get_uvarint r in
              if delta < 1 || delta > i then
                raise (B.Corrupt (r.B.pos, "parent reference out of range"));
              (k, Option.get verts.(i - delta)))
            parent_kinds
        in
        let ts = !prev_ts + B.get_varint r in
        prev_ts := ts;
        let ctx =
          let j = B.get_uvarint r in
          if j < 0 || j >= nctx then raise (B.Corrupt (r.B.pos, "context id out of range"));
          contexts.(j)
        in
        let flow =
          let j = B.get_uvarint r in
          if j < 0 || j >= nflows then raise (B.Corrupt (r.B.pos, "flow id out of range"));
          flow_table.(j)
        in
        let size = B.get_uvarint r in
        let v =
          Cag.Builder.fresh_vertex
            {
              Activity.kind;
              timestamp = Sim_time.of_ns ts;
              context = ctx;
              message = { Activity.flow; size };
            }
        in
        verts.(i) <- Some v;
        (match !cag with
        | None ->
            if parents <> [] then raise (B.Corrupt (r.B.pos, "root vertex with a parent"));
            cag := Some (Cag.Builder.create ~cag_id v)
        | Some c ->
            Cag.Builder.adopt c v;
            List.iter
              (fun (k, p) ->
                match Cag.Builder.add_edge k ~parent:p ~child:v with
                | () -> ()
                | exception Invalid_argument msg -> raise (B.Corrupt (r.B.pos, msg)))
              parents)
      done;
      let c = Option.get !cag in
      if flags land 1 <> 0 then Cag.Builder.finish c;
      if flags land 2 <> 0 then Cag.Builder.mark_deformed c;
      c
    in
    let ncags = B.get_count r "paths" in
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (read_cag () :: acc) in
    let cags = go ncags [] in
    if r.B.pos <> r.B.limit then raise (B.Corrupt (r.B.pos, "trailing bytes after paths"));
    cags
  with
  | cags -> Ok cags
  | exception B.Corrupt (off, msg) -> Error (Printf.sprintf "offset %d: %s" off msg)
