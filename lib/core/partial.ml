module Activity = Trace.Activity
module Arena = Trace.Arena
module Boundary = Trace.Boundary

type config = { transform : Transform.config; coalesce : bool; max_flows : int }

let config ~transform ?(coalesce = true) ?(max_flows = 4096) () =
  if max_flows <= 0 then invalid_arg "Partial.config: max_flows";
  { transform; coalesce; max_flows }

type t = { config : config; memo : Transform.memo; unsafe_keep : bool }

let create config =
  {
    config;
    memo = Transform.memo config.transform;
    unsafe_keep = Transform.has_custom_keep config.transform;
  }

type result = {
  arena : Arena.t;
  boundary : Boundary.t;
  rows_in : int;
  rows_dropped : int;
  rows_coalesced : int;
  local_flows : int;
  fallback : bool;
}

(* Output rows buffered mutably so a run head can keep growing until its
   run breaks; appended into a fresh arena at the end. *)
type orow = { kind : int; ts : int; ctx : int; flow : int; mutable size : int }

type dirs = {
  mutable out_rows : int;
  mutable out_bytes : int;
  mutable in_rows : int;
  mutable in_bytes : int;
}

let code_send = Activity.kind_to_code Activity.Send
let code_end = Activity.kind_to_code Activity.End_
let code_receive = Activity.kind_to_code Activity.Receive

let raw_result arena ~rows_in ~rows_dropped =
  {
    arena;
    boundary = Boundary.empty;
    rows_in;
    rows_dropped;
    rows_coalesced = 0;
    local_flows = 0;
    fallback = true;
  }

exception Over_budget

let reduce t arena =
  let n = Arena.length arena in
  if t.unsafe_keep then raw_result arena ~rows_in:n ~rows_dropped:0
  else begin
    let flows : (int, dirs) Hashtbl.t = Hashtbl.create 64 in
    let last : (int, orow * int) Hashtbl.t = Hashtbl.create 64 in
    let rev_out = ref [] in
    let kept = ref 0 in
    let dropped = ref 0 in
    let coalesced = ref 0 in
    let dirs_of flow =
      match Hashtbl.find_opt flows flow with
      | Some d -> d
      | None ->
          if Hashtbl.length flows >= t.config.max_flows then raise Over_budget;
          let d = { out_rows = 0; out_bytes = 0; in_rows = 0; in_bytes = 0 } in
          Hashtbl.replace flows flow d;
          d
    in
    match
      for i = 0 to n - 1 do
        let code = Transform.classify_row t.memo arena i in
        if code < 0 then incr dropped
        else begin
          let kind = Arena.kind_code arena i in
          let ts = Arena.ts arena i in
          let ctx = Arena.ctx_id arena i in
          let flow = Arena.flow_id arena i in
          let size = Arena.size arena i in
          (* Directional accounting on the raw kind: what the host's
             syscalls actually moved over each flow. *)
          if kind = code_send then begin
            let d = dirs_of flow in
            d.out_rows <- d.out_rows + 1;
            d.out_bytes <- d.out_bytes + size
          end
          else if kind = code_receive then begin
            let d = dirs_of flow in
            d.in_rows <- d.in_rows + 1;
            d.in_bytes <- d.in_bytes + size
          end;
          (* A row merges into the previous kept row of its context when
             the downstream engine would merge them into one vertex: both
             classify to SEND (or both to END) on the same flow. Any
             other kept row of the context breaks the run — conservative
             where the engine is cleverer (partial receives), which only
             leaves merges for the engine to do itself. *)
          let merged =
            t.config.coalesce
            && (code = code_send || code = code_end)
            &&
            match Hashtbl.find_opt last ctx with
            | Some (prev, prev_code) when prev_code = code && prev.flow = flow ->
                prev.size <- prev.size + size;
                incr coalesced;
                true
            | Some _ | None -> false
          in
          if not merged then begin
            let o = { kind; ts; ctx; flow; size } in
            rev_out := o :: !rev_out;
            incr kept;
            Hashtbl.replace last ctx (o, code)
          end
        end
      done
    with
    | () ->
        let out = Arena.create_sid ~capacity:(max 16 !kept) (Arena.host_sid arena) in
        List.iter
          (fun o -> Arena.append out ~kind:o.kind ~ts:o.ts ~ctx:o.ctx ~flow:o.flow ~size:o.size)
          (List.rev !rev_out);
        let local = ref 0 in
        let boundary =
          Hashtbl.fold
            (fun flow d acc ->
              if d.out_rows > 0 && d.in_rows > 0 then begin
                (* Both directions observed here: the interaction never
                   leaves the host, nothing for upper tiers to resolve. *)
                incr local;
                acc
              end
              else
                Boundary.entry_of_flow_id flow ~out_rows:d.out_rows
                  ~out_bytes:d.out_bytes ~in_rows:d.in_rows ~in_bytes:d.in_bytes
                :: acc)
            flows []
          |> List.sort compare
        in
        {
          arena = out;
          boundary;
          rows_in = n;
          rows_dropped = !dropped;
          rows_coalesced = !coalesced;
          local_flows = !local;
          fallback = false;
        }
    | exception Over_budget -> raw_result arena ~rows_in:n ~rows_dropped:0
  end
