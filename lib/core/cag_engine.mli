(** The engine: constructing CAGs from ranked candidates (§4.2, Fig. 3).

    The engine owns the two index maps of the paper:

    - [mmap] maps a message identifier (the connection 4-tuple, oriented
      sender->receiver) to the outstanding unmatched SEND vertices of that
      flow, in FIFO order;
    - [cmap] maps a context identifier to the latest activity vertex
      observed in that execution entity.

    Candidates are handled by activity type, following the paper's
    pseudo-code, with the clarifications listed in DESIGN.md: consecutive
    SENDs merge only when they continue the {e same flow}; multi-part
    responses merge consecutive ENDs likewise; a RECEIVE joins its CAG
    only once the accumulated received bytes cover the (merged) SEND — the
    n-to-n matching of the paper's Fig. 4; and the two-parent rule for
    RECEIVE applies the thread-reuse check: the context edge is added only
    when both parents already lie in the same CAG. *)

type stats = {
  cags_started : int;
  cags_finished : int;
  send_merges : int;  (** SEND syscalls folded into an earlier SEND vertex. *)
  end_merges : int;  (** END syscalls folded into an earlier END vertex. *)
  receive_merges : int;
      (** RECEIVE completions folded into an existing RECEIVE vertex whose
          SEND grew after first being fully matched (Rule 1 can deliver a
          receive ahead of the sender's continuation syscalls). *)
  partial_receives : int;  (** RECEIVEs that left a SEND partly unmatched. *)
  unmatched_receives : int;  (** RECEIVEs with no mmap entry (noise slipping
                                 past the ranker, or loss). *)
  thread_reuse_blocked : int;
      (** Context edges suppressed because the parents lay in different
          CAGs (recycled thread serving a new request). *)
  orphans : int;  (** Vertices correlated outside any CAG. *)
  crossed_boundaries : int;
      (** RECEIVEs spanning two logical messages; impossible under the
          request/response discipline, counted defensively. *)
  mmap_entries : int;  (** Outstanding SEND vertices right now. *)
  live_vertices : int;  (** Vertices of unfinished CAGs plus orphans. *)
  peak_live_vertices : int;
  evicted_sends : int;
      (** SEND vertices still attached to a CAG when {!gc} evicted them.
          Their owning open CAG is flagged deformed (it would otherwise
          stay unfinished and uncounted forever). *)
}

type t

val create : ?on_finished:(Cag.t -> unit) -> unit -> t
(** [on_finished] fires as each CAG completes (its END correlated). *)

val has_mmap_send : t -> Simnet.Address.flow -> bool
(** Rule 1's probe; wire this into {!Ranker.create}. *)

val step : t -> Trace.Activity.t -> unit
(** Correlate one candidate. Candidates must arrive in ranker order. *)

val step_ids : t -> ctx:int -> flow:int -> Trace.Activity.t -> unit
(** {!step} for callers that already hold the record's {!Trace.Intern}
    context and flow ids (an arena-driven feed): no intern lookups on the
    hot path. [flow] is ignored for BEGIN/END candidates (pass [-1]).
    Both maps are keyed on these ids, so [step a] is just
    [step_ids ~ctx:(context_id a.context) ~flow:... a]. *)

val finished : t -> Cag.t list
(** Completed CAGs, in completion order. *)

val unfinished : t -> Cag.t list
(** CAGs begun but not yet (or never) completed — deformed paths under
    activity loss. *)

val stats : t -> stats

val live_vertices : t -> int
val mmap_entries : t -> int
(** Cheap accessors for per-step memory sampling (see {!Correlator}). *)

val gc : t -> older_than:Simnet.Sim_time.t -> int
(** Evict [mmap] entries whose SEND timestamp precedes [older_than] and
    returns how many were dropped. Unmatched sends accumulate on long
    traces (responses to noise clients whose receives were filtered
    out); by the ranker's contract, a receive arriving more than the
    skew allowance after its send is noise anyway, so evicting past
    [current time - allowance] never costs a correlation. Orphan sends
    evicted this way also leave the live-vertex count. *)
