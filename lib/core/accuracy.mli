(** Path accuracy against the ground truth (§5.2).

    The paper validates PreciseTracer by tagging RUBiS requests with
    globally unique IDs and logging, per tier, the servicing interval and
    execution entity; a derived causal path is {e correct} when all those
    attributes are consistent with exactly one logged request. Here the
    oracle comes from {!Trace.Ground_truth} and consistency means: the
    same set of contexts — matched as a context-keyed bijection, since
    concurrent sibling subcalls reach the CAG in correlation order,
    which under clock skew legitimately differs from the oracle's
    arrival order — with
    per-context intervals matching within a tolerance (the app-level
    oracle and the kernel-level probe stamp the "same" instant a few
    syscall-overheads apart — the paper's modified RUBiS had the same
    skewlet).

    {v path accuracy = correct paths / all logged requests v} *)

type verdict = {
  accuracy : float;  (** correct / ground-truth requests. *)
  correct : int;
  total_requests : int;  (** Completed ground-truth requests. *)
  false_positives : int;  (** Derived paths matching no request. *)
  false_negatives : int;  (** Requests matched by no derived path. *)
  mismatches : (int * string) list;
      (** Up to 10 unmatched request ids with a reason, for debugging. *)
}

val visits_of_cag : Cag.t -> Trace.Ground_truth.visit list
(** Per-context (first ts, last ts) intervals, in first-touch order —
    the derived counterpart of the oracle's records. *)

val check :
  ?tolerance:Simnet.Sim_time.span ->
  ground_truth:Trace.Ground_truth.t ->
  Cag.t list ->
  verdict
(** Match each derived path against at most one request (greedy in path
    order; requests are consumed once matched). Default tolerance:
    500 us. *)

val check_visits :
  ?tolerance:Simnet.Sim_time.span ->
  requests:Trace.Ground_truth.request list ->
  Trace.Ground_truth.visit list list ->
  verdict
(** The underlying matcher, usable by any tracer that can express its
    paths as visit lists (e.g. the {!Nesting} baseline). *)

val pp_verdict : Format.formatter -> verdict -> unit
