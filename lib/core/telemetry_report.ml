module R = Telemetry.Registry

let labels_cell labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let tables families =
  let counters = Report.table ~title:"telemetry: counters" ~columns:[ "metric"; "labels"; "value" ] in
  let gauges = Report.table ~title:"telemetry: gauges" ~columns:[ "metric"; "labels"; "value" ] in
  let hists =
    Report.table ~title:"telemetry: histograms"
      ~columns:[ "metric"; "labels"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
  in
  let counted = ref 0 and gauged = ref 0 and histed = ref 0 in
  List.iter
    (fun (f : R.family) ->
      List.iter
        (fun (s : R.sample) ->
          match s.value with
          | R.Counter c ->
              incr counted;
              Report.add_row counters [ f.name; labels_cell s.labels; Report.cell_int c ]
          | R.Gauge g ->
              incr gauged;
              Report.add_row gauges
                [ f.name; labels_cell s.labels; Report.cell_float ~decimals:3 g ]
          | R.Hist h ->
              incr histed;
              Report.add_row hists
                [
                  f.name;
                  labels_cell s.labels;
                  Report.cell_int h.count;
                  Report.cell_float ~decimals:6 (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count);
                  Report.cell_float ~decimals:6 h.p50;
                  Report.cell_float ~decimals:6 h.p90;
                  Report.cell_float ~decimals:6 h.p99;
                  Report.cell_float ~decimals:6 h.max_v;
                ])
        f.samples)
    families;
  List.filter_map
    (fun (n, t) -> if !n > 0 then Some t else None)
    [ (counted, counters); (gauged, gauges); (histed, hists) ]

let render families = String.concat "\n" (List.map Report.render (tables families))

let print families = List.iter Report.print (tables families)
