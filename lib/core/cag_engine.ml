module Activity = Trace.Activity
module Address = Simnet.Address
module Intern = Trace.Intern
module Sim_time = Simnet.Sim_time

type stats = {
  cags_started : int;
  cags_finished : int;
  send_merges : int;
  end_merges : int;
  receive_merges : int;
  partial_receives : int;
  unmatched_receives : int;
  thread_reuse_blocked : int;
  orphans : int;
  crossed_boundaries : int;
  mmap_entries : int;
  live_vertices : int;
  peak_live_vertices : int;
  evicted_sends : int;
}

(* Both indexes are keyed on process-wide {!Intern} ids: one int hash per
   lookup, no string hashing or structural context comparison on the
   correlation hot path. *)
type t = {
  mmap : (int, Cag.vertex Deque.t) Hashtbl.t;  (* flow id -> outstanding SENDs *)
  cmap : (int, Cag.vertex) Hashtbl.t;  (* context id -> latest vertex *)
  on_finished : Cag.t -> unit;
  mutable rev_finished : Cag.t list;
  mutable open_cags : Cag.t list;  (* unfinished, most recent first *)
  mutable next_cag_id : int;
  mutable cags_started : int;
  mutable cags_finished : int;
  mutable send_merges : int;
  mutable end_merges : int;
  mutable receive_merges : int;
  mutable partial_receives : int;
  mutable unmatched_receives : int;
  mutable thread_reuse_blocked : int;
  mutable orphans : int;
  mutable crossed_boundaries : int;
  mutable mmap_count : int;
  mutable live_vertices : int;
  mutable peak_live : int;
  mutable evicted_sends : int;
}

let create ?(on_finished = fun _ -> ()) () =
  {
    mmap = Hashtbl.create 1024;
    cmap = Hashtbl.create 256;
    on_finished;
    rev_finished = [];
    open_cags = [];
    next_cag_id = 0;
    cags_started = 0;
    cags_finished = 0;
    send_merges = 0;
    end_merges = 0;
    receive_merges = 0;
    partial_receives = 0;
    unmatched_receives = 0;
    thread_reuse_blocked = 0;
    orphans = 0;
    crossed_boundaries = 0;
    mmap_count = 0;
    live_vertices = 0;
    peak_live = 0;
    evicted_sends = 0;
  }

let has_mmap_send t flow =
  match Hashtbl.find_opt t.mmap (Intern.flow_id flow) with
  | Some q -> not (Deque.is_empty q)
  | None -> false

let mmap_deque t flow =
  match Hashtbl.find_opt t.mmap flow with
  | Some q -> q
  | None ->
      let q = Deque.create () in
      Hashtbl.replace t.mmap flow q;
      q

let mmap_push t flow vertex =
  Deque.push_back (mmap_deque t flow) vertex;
  t.mmap_count <- t.mmap_count + 1

(* Re-register a SEND whose earlier bytes were already fully consumed but
   which just grew by a merged syscall. It logically precedes any newer
   outstanding SEND on the flow, hence the front. *)
let mmap_push_front t flow vertex =
  Deque.push_front (mmap_deque t flow) vertex;
  t.mmap_count <- t.mmap_count + 1

let mmap_front t flow =
  match Hashtbl.find_opt t.mmap flow with
  | Some q -> Deque.peek_front q
  | None -> None

let mmap_pop t flow =
  match Hashtbl.find_opt t.mmap flow with
  | Some q when not (Deque.is_empty q) ->
      ignore (Deque.pop_front q);
      t.mmap_count <- t.mmap_count - 1;
      if Deque.is_empty q then Hashtbl.remove t.mmap flow
  | Some _ | None -> ()

let bump_live t n =
  t.live_vertices <- t.live_vertices + n;
  if t.live_vertices > t.peak_live then t.peak_live <- t.live_vertices

(* The CAG a vertex belongs to, unless that CAG has already been output:
   attaching new activities to a finished CAG would corrupt emitted
   results (DESIGN.md clarification on recycled entities after discarded
   noise). *)
let open_cag_of (v : Cag.vertex) =
  match v.Cag.cag with Some cag when not (Cag.is_finished cag) -> Some cag | _ -> None

let same_open_cag a b =
  match (open_cag_of a, open_cag_of b) with
  | Some ca, Some cb -> ca == cb
  | _ -> false

let cmap_parent t ctx = Hashtbl.find_opt t.cmap ctx
let cmap_set t ctx v = Hashtbl.replace t.cmap ctx v

(* Attach [v] under [parent]'s open CAG (if any) with a context edge. *)
let attach_context t ~parent v =
  match open_cag_of parent with
  | Some cag ->
      Cag.Builder.adopt cag v;
      Cag.Builder.add_edge Cag.Context_edge ~parent ~child:v
  | None -> t.orphans <- t.orphans + 1

let handle_begin t ctx (a : Activity.t) =
  let root = Cag.Builder.fresh_vertex a in
  let cag = Cag.Builder.create ~cag_id:t.next_cag_id root in
  t.next_cag_id <- t.next_cag_id + 1;
  t.cags_started <- t.cags_started + 1;
  t.open_cags <- cag :: t.open_cags;
  bump_live t 1;
  cmap_set t ctx root

let finish_cag t cag =
  (* A SEND whose bytes were never fully matched by a RECEIVE means the
     receiving side of the interaction is missing from the input (log
     loss, an agent outage): the path still closes at its END, but it is
     a truncated rendition of the real request and must say so. *)
  if
    List.exists
      (fun (v : Cag.vertex) ->
        Activity.equal_kind v.Cag.activity.Activity.kind Activity.Send
        && v.Cag.unreceived > 0)
      (Cag.vertices cag)
  then Cag.Builder.mark_deformed cag;
  Cag.Builder.finish cag;
  t.cags_finished <- t.cags_finished + 1;
  t.rev_finished <- cag :: t.rev_finished;
  t.open_cags <- List.filter (fun c -> c != cag) t.open_cags;
  t.live_vertices <- t.live_vertices - Cag.size cag;
  t.on_finished cag

let handle_end t ctx (a : Activity.t) =
  match cmap_parent t ctx with
  | Some parent
    when Activity.equal_kind parent.Cag.activity.Activity.kind Activity.End_
         && Address.flow_equal parent.Cag.activity.Activity.message.flow a.message.flow ->
      (* A multi-part response: fold this syscall into the END vertex. *)
      Cag.Builder.grow_send parent a.message.size;
      Cag.Builder.add_source parent a;
      t.end_merges <- t.end_merges + 1
  | Some parent ->
      let v = Cag.Builder.fresh_vertex a in
      bump_live t 1;
      (match open_cag_of parent with
      | Some cag ->
          Cag.Builder.adopt cag v;
          Cag.Builder.add_edge Cag.Context_edge ~parent ~child:v;
          cmap_set t ctx v;
          finish_cag t cag
      | None ->
          t.orphans <- t.orphans + 1;
          cmap_set t ctx v)
  | None ->
      let v = Cag.Builder.fresh_vertex a in
      bump_live t 1;
      t.orphans <- t.orphans + 1;
      cmap_set t ctx v

let handle_send t ctx flow (a : Activity.t) =
  match cmap_parent t ctx with
  | Some parent
    when Activity.equal_kind parent.Cag.activity.Activity.kind Activity.Send
         && Address.flow_equal parent.Cag.activity.Activity.message.flow a.message.flow ->
      (* Consecutive sends of one logical message: accumulate size. If the
         earlier bytes were already fully matched (a fast receiver drained
         them before this syscall was ranked — possible because Rule 1
         outranks Rule 2), the vertex left the mmap and must re-enter it. *)
      let was_drained = parent.Cag.unreceived = 0 in
      Cag.Builder.grow_send parent a.message.size;
      Cag.Builder.add_source parent a;
      if was_drained then mmap_push_front t flow parent;
      t.send_merges <- t.send_merges + 1
  | Some parent ->
      let v = Cag.Builder.fresh_vertex a in
      bump_live t 1;
      attach_context t ~parent v;
      cmap_set t ctx v;
      mmap_push t flow v
  | None ->
      (* First activity seen in this context (e.g. an untraced peer): the
         SEND still enters the mmap so its RECEIVEs correlate. *)
      let v = Cag.Builder.fresh_vertex a in
      bump_live t 1;
      t.orphans <- t.orphans + 1;
      cmap_set t ctx v;
      mmap_push t flow v

(* The existing RECEIVE vertex of [sender]'s message in context [a.context],
   if the message was completed once already and has since grown. *)
let existing_receive_of t ctx sender (a : Activity.t) =
  let is_that_child (kind, (c : Cag.vertex)) =
    kind = Cag.Message_edge
    && Activity.equal_kind c.Cag.activity.Activity.kind Activity.Receive
    && Activity.equal_context c.Cag.activity.Activity.context a.context
  in
  match List.find_opt is_that_child sender.Cag.children with
  | Some (_, child) -> (
      (* Only reuse it while it is still the context's latest activity;
         otherwise fall back to a fresh vertex. *)
      match cmap_parent t ctx with Some v when v == child -> Some child | _ -> None)
  | None -> None

let handle_receive t ctx flow (a : Activity.t) =
  match mmap_front t flow with
  | None -> t.unmatched_receives <- t.unmatched_receives + 1
  | Some sender ->
      let remaining = Cag.Builder.consume sender a.message.size in
      if remaining > 0 then begin
        (* No vertex yet: park the chunk on the sender so the completing
           RECEIVE vertex can claim the whole message's provenance. *)
        Cag.Builder.stash_pending_source sender a;
        t.partial_receives <- t.partial_receives + 1
      end
      else begin
        if remaining < 0 then t.crossed_boundaries <- t.crossed_boundaries + 1;
        mmap_pop t flow;
        let full_size = sender.Cag.activity.Activity.message.size in
        let chunks = Cag.Builder.take_pending_sources sender in
        match existing_receive_of t ctx sender a with
        | Some v ->
            (* The message completed before (its SEND grew afterwards):
               extend the same RECEIVE vertex to the new completion. *)
            Cag.Builder.refresh_receive v ~timestamp:a.timestamp ~size:full_size;
            List.iter (Cag.Builder.add_source v) chunks;
            Cag.Builder.add_source v a;
            t.receive_merges <- t.receive_merges + 1
        | None ->
            let v = Cag.Builder.fresh_vertex a in
            bump_live t 1;
            (* The completing chunk created the vertex; earlier chunks of
               the same message precede it in observation order. *)
            Cag.Builder.add_earlier_sources v chunks;
            Cag.Builder.set_full_size v full_size;
            (match open_cag_of sender with
            | Some cag ->
                Cag.Builder.adopt cag v;
                Cag.Builder.add_edge Cag.Message_edge ~parent:sender ~child:v;
                (* Thread-reuse check (pseudo-code lines 29-32): the adjacent
                   context edge is added only if both parents share the CAG. *)
                (match cmap_parent t ctx with
                | Some parent_cntx when same_open_cag parent_cntx sender ->
                    Cag.Builder.add_edge Cag.Context_edge ~parent:parent_cntx ~child:v
                | Some _ -> t.thread_reuse_blocked <- t.thread_reuse_blocked + 1
                | None -> ())
            | None -> t.orphans <- t.orphans + 1);
            cmap_set t ctx v
      end

(* [step_ids] is the native entry: callers that already hold the row's
   interned ids (an arena-driven feed) pay no intern lookup at all. *)
let step_ids t ~ctx ~flow (a : Activity.t) =
  match a.kind with
  | Activity.Begin -> handle_begin t ctx a
  | Activity.End_ -> handle_end t ctx a
  | Activity.Send -> handle_send t ctx flow a
  | Activity.Receive -> handle_receive t ctx flow a

let step t (a : Activity.t) =
  let ctx = Intern.context_id a.context in
  let flow =
    match a.kind with
    | Activity.Send | Activity.Receive -> Intern.flow_id a.message.flow
    | Activity.Begin | Activity.End_ -> -1
  in
  step_ids t ~ctx ~flow a

let live_vertices t = t.live_vertices
let mmap_entries t = t.mmap_count

let gc t ~older_than =
  let evicted = ref 0 in
  let stale_flows = ref [] in
  Hashtbl.iter
    (fun flow q ->
      (* Entries are FIFO per flow, so stale ones sit at the front. *)
      let continue = ref true in
      while !continue do
        match Deque.peek_front q with
        | Some (v : Cag.vertex)
          when Sim_time.(v.Cag.activity.Activity.timestamp < older_than) ->
            ignore (Deque.pop_front q);
            t.mmap_count <- t.mmap_count - 1;
            incr evicted;
            (match v.Cag.cag with
            | None -> t.live_vertices <- t.live_vertices - 1
            | Some _ -> (
                t.evicted_sends <- t.evicted_sends + 1;
                (* The owning CAG can no longer match this SEND's receives:
                   if it is still open it will stay unfinished, so flag it
                   deformed rather than silently losing it. *)
                match open_cag_of v with
                | Some cag -> Cag.Builder.mark_deformed cag
                | None -> ()))
        | Some _ | None -> continue := false
      done;
      if Deque.is_empty q then stale_flows := flow :: !stale_flows)
    t.mmap;
  List.iter (Hashtbl.remove t.mmap) !stale_flows;
  !evicted
let finished t = List.rev t.rev_finished
let unfinished t = List.rev t.open_cags

let stats t =
  {
    cags_started = t.cags_started;
    cags_finished = t.cags_finished;
    send_merges = t.send_merges;
    end_merges = t.end_merges;
    receive_merges = t.receive_merges;
    partial_receives = t.partial_receives;
    unmatched_receives = t.unmatched_receives;
    thread_reuse_blocked = t.thread_reuse_blocked;
    orphans = t.orphans;
    crossed_boundaries = t.crossed_boundaries;
    mmap_entries = t.mmap_count;
    live_vertices = t.live_vertices;
    peak_live_vertices = t.peak_live;
    evicted_sends = t.evicted_sends;
  }
