(** A minimal JSON emitter and parser (no external dependency).

    The implementation lives in {!Telemetry.Json} — the telemetry
    exporters sit below [core] in the dependency order and need it — and
    is re-exported here, type equalities and constructors included, so
    [Core.Json.Obj], [Core.Json.to_string] and friends keep working. *)

include module type of struct
  include Telemetry.Json
end
