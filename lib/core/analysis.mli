(** Performance debugging from latency-percentage profiles (§5.4).

    The paper's methodology: compute the average causal path of the most
    frequent pattern under a healthy baseline and under the suspect
    condition, compare per-component latency percentages, and reason from
    the components whose share changed dramatically:

    - a tier's internal share ([T2T]) rising points at tier [T] itself
      (the EJB_Delay and Database_Lock cases);
    - an interaction share ([A2B], with [A <> B]) rising points at the
      boundary: [B]'s admission path (accept queue, thread pool) or the
      network between them (the MaxThreads case);
    - several interactions adjacent to one tier rising together while
      that tier's internal share collapses points at the tier's network
      (the EJB_Network case). *)

type delta = {
  comp : Latency.component;
  baseline_pct : float;  (** Share in the baseline profile, [0,1]. *)
  observed_pct : float;
  change_pp : float;  (** observed - baseline, in percentage points /100. *)
}

(** What a suspect names — the methodology's three conclusions, as a
    structured value so downstream consumers (the streaming detector, the
    verdict scorer, JSON exports) can match on it instead of parsing a
    label. *)
type subject =
  | Tier of string  (** The tier itself: its internal share rose. *)
  | Tier_network of string
      (** The tier's network: surrounding interactions rose together while
          the tier's internal share collapsed. *)
  | Interaction of { src : string; dst : string }
      (** The [src]->[dst] boundary: admission at [dst] (accept queue,
          thread pool) or the network between them. *)

val subject_label : subject -> string
(** ["tier java"], ["network of tier java"], ["interaction httpd->java"]. *)

val compare_subject : subject -> subject -> int
val equal_subject : subject -> subject -> bool

type suspect = {
  subject : subject;  (** Tier or interaction under suspicion. *)
  reason : string;  (** One-sentence justification citing the deltas. *)
  severity : float;  (** Magnitude of the supporting change, [0,1]. *)
}

type report = { deltas : delta list; suspects : suspect list }

val compare_profiles :
  baseline:(Latency.component * float) list ->
  observed:(Latency.component * float) list ->
  report
(** [deltas] covers the union of components, sorted by decreasing
    |change|; [suspects] is ranked by severity. Components absent from one
    profile count as 0 there. *)

val diagnose :
  baseline:Aggregate.t -> observed:Aggregate.t -> report
(** Convenience wrapper over {!Aggregate.component_percentages}. *)

val pp_report : Format.formatter -> report -> unit
