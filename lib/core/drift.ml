type config = { warmup : int; window : int; threshold : float }

let default_config = { warmup = 200; window = 100; threshold = 0.10 }

type alert = {
  pattern_name : string;
  comp : Latency.component;
  baseline_share : float;
  observed_share : float;
  paths_seen : int;
}

let pp_alert ppf a =
  Format.fprintf ppf "[%s] %s share %.0f%% -> %.0f%% (path #%d)" a.pattern_name
    (Latency.component_label a.comp)
    (100.0 *. a.baseline_share) (100.0 *. a.observed_share) a.paths_seen

(* Per-pattern monitoring state. Share vectors are aligned positionally:
   isomorphic CAGs produce the same component list. *)
type pattern_state = {
  name : string;
  mutable components : Latency.component list;  (* set by the first path *)
  mutable seen : int;
  mutable baseline_sum : float array;  (* during warmup *)
  mutable baseline : float array option;  (* frozen after warmup *)
  ring : float array array;  (* recent share vectors, [window] slots *)
  mutable ring_filled : int;
  mutable armed : bool array;  (* hysteresis per component *)
}

type t = {
  config : config;
  patterns : (string, pattern_state) Hashtbl.t;
  mutable rev_alerts : alert list;
  telemetry : Telemetry.Registry.t;
}

let create ?(config = default_config) ?(telemetry = Telemetry.Registry.default) () =
  if config.warmup <= 0 || config.window <= 0 then invalid_arg "Drift.create: bad config";
  { config; patterns = Hashtbl.create 8; rev_alerts = []; telemetry }

(* Alerts share the diagnose plane's counter so dashboards see legacy
   drift alarms and detector verdicts in one family (docs/TELEMETRY.md). *)
let count_alert t alert =
  Telemetry.Registry.incr
    (Telemetry.Registry.counter t.telemetry
       ~help:"Diagnose-plane alerts by culprit, pattern and detector kind"
       ~labels:
         [
           ("comp", Latency.component_label alert.comp);
           ("kind", "drift");
           ("pattern", alert.pattern_name);
         ]
       "pt_diagnose_alerts_total")

let shares cag =
  let parts = Latency.percentages (Latency.breakdown cag) in
  (List.map fst parts, Array.of_list (List.map snd parts))

let state_for t cag =
  let signature = Pattern.signature_of cag in
  match Hashtbl.find_opt t.patterns signature with
  | Some st -> st
  | None ->
      let components, vector = shares cag in
      let n = Array.length vector in
      let st =
        {
          name = Pattern.name_of cag;
          components;
          seen = 0;
          baseline_sum = Array.make n 0.0;
          baseline = None;
          ring = Array.init t.config.window (fun _ -> Array.make n 0.0);
          ring_filled = 0;
          armed = Array.make n true;
        }
      in
      Hashtbl.replace t.patterns signature st;
      st

let window_mean st ~window i =
  let n = min st.ring_filled window in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. st.ring.(k).(i)
  done;
  !total /. float_of_int n

let observe t cag =
  if not (Cag.is_finished cag) then []
  else begin
    let st = state_for t cag in
    let _, vector = shares cag in
    if Array.length vector <> Array.length st.baseline_sum then []
      (* same signature should imply same arity; tolerate anomalies *)
    else begin
      st.seen <- st.seen + 1;
      match st.baseline with
      | None ->
          Array.iteri (fun i v -> st.baseline_sum.(i) <- st.baseline_sum.(i) +. v) vector;
          if st.seen >= t.config.warmup then
            st.baseline <-
              Some (Array.map (fun s -> s /. float_of_int st.seen) st.baseline_sum);
          []
      | Some baseline ->
          (* push into the ring (most recent first) *)
          let slot = Array.length st.ring - 1 in
          let last = st.ring.(slot) in
          Array.blit st.ring 0 st.ring 1 slot;
          Array.blit vector 0 last 0 (Array.length vector);
          st.ring.(0) <- last;
          if st.ring_filled < t.config.window then st.ring_filled <- st.ring_filled + 1;
          if st.ring_filled < t.config.window then []
          else begin
            let fired = ref [] in
            List.iteri
              (fun i comp ->
                let observed = window_mean st ~window:t.config.window i in
                let delta = Float.abs (observed -. baseline.(i)) in
                if st.armed.(i) && delta > t.config.threshold then begin
                  st.armed.(i) <- false;
                  let alert =
                    {
                      pattern_name = st.name;
                      comp;
                      baseline_share = baseline.(i);
                      observed_share = observed;
                      paths_seen = st.seen;
                    }
                  in
                  t.rev_alerts <- alert :: t.rev_alerts;
                  count_alert t alert;
                  fired := alert :: !fired
                end
                else if (not st.armed.(i)) && delta < t.config.threshold /. 2.0 then
                  st.armed.(i) <- true)
              st.components;
            List.rev !fired
          end
    end
  end

let alerts t = List.rev t.rev_alerts

let baseline_of t ~pattern_name =
  Hashtbl.fold
    (fun _ st acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          if not (String.equal st.name pattern_name) then None
          else
            match st.baseline with
            | Some b -> Some (List.mapi (fun i c -> (c, b.(i))) st.components)
            | None -> None))
    t.patterns None
