(** Average causal paths (§3.2): aggregating isomorphic CAGs.

    For a causal path pattern, the paper averages its n isomorphic CAGs
    into one {e average causal path} and reads component latencies off it.
    Members of a pattern have positionally identical critical paths, so
    hops aggregate index-wise. *)

type hop_stat = {
  comp : Latency.component;
  mean_s : float;  (** Mean hop latency, seconds. *)
  std_s : float;  (** Population standard deviation, seconds. *)
}

type t = {
  pattern_name : string;
  count : int;  (** CAGs aggregated. *)
  hops : hop_stat list;  (** In causal order along the path. *)
  mean_total_s : float;  (** Mean end-to-end latency, seconds. *)
}

val of_pattern : ?normalize:(string -> string) -> Pattern.t -> t
(** Aggregate a pattern's finished members.
    @raise Invalid_argument on an empty pattern. *)

val component_latencies : t -> (Latency.component * float) list
(** Mean latency per component (hops summed by label), seconds, in
    first-appearance order. *)

val component_percentages : t -> (Latency.component * float) list
(** Same, as shares of the mean total (the paper's Figs. 15/17 y-axis). *)

val pp : Format.formatter -> t -> unit

(** {1 Tail latency}

    Means hide stragglers; per-hop percentiles over a pattern's members
    show where the tail lives (a lock held occasionally, a queue that
    only sometimes forms). *)

type hop_tail = {
  tail_comp : Latency.component;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  tail_max_s : float;
}

val hop_tails : ?normalize:(string -> string) -> Pattern.t -> hop_tail list
(** Per-hop latency percentiles, in causal order along the path.
    @raise Invalid_argument on an empty pattern. *)

val percentile : float array -> float -> float
(** [percentile sorted p] is the {e nearest-rank} estimate over an
    ascending-sorted array of finite samples: the element at index
    [round (p * (n - 1))] — always an actually observed sample, never an
    interpolation. [n = 1] yields the single sample for every [p]; an
    empty array yields 0. The input must contain finite floats only
    (see {!sorted_finite}): NaN compares greater than any float under
    [Float.compare], so NaN samples would sort last and silently inflate
    the upper percentiles. *)

val sorted_finite : float list -> float array
(** Drop non-finite samples (NaN, infinities) and sort ascending — the
    required preprocessing for {!percentile}. *)

type total_tail = { t_p50_s : float; t_p90_s : float; t_p99_s : float; t_max_s : float }

val total_tail : Pattern.t -> total_tail
(** End-to-end duration percentiles over the pattern's finished members. *)

val pp_tails : Format.formatter -> Pattern.t -> unit
