(** Live performance-regression detection over a stream of causal paths.

    The paper closes by promising "the mathematical foundation for
    automatic performance debugging"; this module is a first practical
    step, suitable for the online mode: for each causal-path pattern it
    learns a baseline latency-percentage profile from the first paths it
    sees, then watches a sliding window of recent paths and raises an
    alert when some component's share drifts from its baseline by more
    than a threshold. Alerts carry the same component language as
    {!Analysis}, so an alert is directly actionable ("java2java's share
    rose 31% -> 64%": look at the app tier).

    Hysteresis: a component alerts once when it crosses the threshold and
    re-arms only after falling back below half of it, so a sustained
    regression produces one alert, not one per path.

    The streaming performance-debugging plane ([lib/diagnose], see
    docs/DIAGNOSE.md) subsumes and extends this module: its [Detector]
    runs the full {!Analysis} methodology (tier / interaction / tier-
    network suspects) over the same per-pattern share windows, adds
    pattern-mix and throughput/latency anomaly detection, and scores
    itself against injected-fault ground truth. This module stays as the
    minimal dependency-free alarm inside [lib/core]; both report into the
    same [pt_diagnose_alerts_total] telemetry family. *)

type config = {
  warmup : int;  (** Paths used to learn a pattern's baseline profile. *)
  window : int;  (** Recent paths in the moving profile. *)
  threshold : float;  (** Alert when |share - baseline| exceeds this, in [0,1]. *)
}

val default_config : config
(** warmup 200, window 100, threshold 0.10 (ten percentage points). *)

type alert = {
  pattern_name : string;
  comp : Latency.component;
  baseline_share : float;
  observed_share : float;
  paths_seen : int;  (** Total paths of that pattern when the alert fired. *)
}

val pp_alert : Format.formatter -> alert -> unit

type t

val create : ?config:config -> ?telemetry:Telemetry.Registry.t -> unit -> t
(** Alerts are counted into
    [pt_diagnose_alerts_total{comp,pattern,kind="drift"}] on [telemetry]
    (default {!Telemetry.Registry.default}). *)

val observe : t -> Cag.t -> alert list
(** Feed one completed path; returns the alerts this path triggered
    (usually none). Unfinished CAGs are ignored. *)

val alerts : t -> alert list
(** Every alert raised so far, in order. *)

val baseline_of : t -> pattern_name:string -> (Latency.component * float) list option
(** The learned baseline profile for a pattern, once warm. *)
