(** The ranker: choosing candidate activities for CAG composition (§4.1).

    Activities logged on different nodes are fetched into per-node queues
    whenever their local timestamps fall inside a sliding time window. The
    ranker only ever compares the {e head} activities of the queues and
    picks the next candidate by the paper's two rules:

    - {b Rule 1}: a head RECEIVE whose matching SEND is already in the
      engine's [mmap] is the candidate — its message parent has been
      delivered, so it can be correlated immediately.
    - {b Rule 2}: otherwise the head with the lowest type priority
      (BEGIN < SEND < END < RECEIVE) is the candidate, which guarantees a
      SEND always precedes its matched RECEIVE.

    Two disturbances are handled (§4.3): {e concurrency disturbance}, where
    every head is a RECEIVE blocking the others' matched SENDs deeper in
    the queues — resolved by promoting a buffered matching SEND to its
    queue's front (the paper's head swap, generalised to any depth); and
    {e noise}, a RECEIVE with no matching SEND in the [mmap] {e or} the
    buffer — discarded, but only after fetching ahead up to
    [skew_allowance] so that clock skew between nodes can never
    misclassify live traffic as noise (DESIGN.md clarification #3). *)

type t

type reject_reason =
  | Unknown_host  (** No stream exists for the record's host. *)
  | Closed  (** Fed after {!close_input}. *)
  | Duplicate  (** Identical to the previous record of its stream. *)
  | Regression  (** Timestamp behind the stream by more than the skew allowance. *)
  | Stale
      (** Late within the allowance, but behind what its stream already
          committed to the engine — too late to re-sort. *)

val reject_reason_to_string : reject_reason -> string
(** Stable lower-snake label, used as the [reason] metric label. *)

val all_reject_reasons : reject_reason list

type feed_result =
  | Accepted
  | Resorted  (** A tolerable regression, re-sorted into place. *)
  | Quarantined of reject_reason

type stats = {
  fetched : int;  (** Activities pulled into the buffer. *)
  candidates : int;  (** Activities returned by [rank]. *)
  noise_discarded : int;  (** RECEIVEs dropped by the [is_noise] check. *)
  promotions : int;  (** Concurrency-disturbance head swaps. *)
  forced_fetches : int;  (** Window extensions for deferred noise checks. *)
  forced_discards : int;
      (** Discards of a RECEIVE whose matching SEND was buffered but
          unpromotable — expected to be zero; a non-zero value flags an
          interleaving outside the algorithm's assumptions. *)
  peak_buffered : int;  (** High-water mark of buffered activities. *)
  resorted : int;  (** Late records re-sorted into place. *)
  quarantined : (reject_reason * int) list;  (** Per-reason reject counts. *)
  stragglers_evicted : int;  (** Streams marked lagging past the timeout. *)
  straggler_resyncs : int;  (** Lagging streams reintegrated on catch-up. *)
  backpressure_pops : int;
      (** Candidates force-resolved (or noise force-discarded) because
          held records exceeded [max_buffered]. *)
}

type ablation = { disable_rule1 : bool; disable_promotion : bool }
(** Switch off individual mechanisms to measure what they buy (the
    ablation benches of DESIGN.md). Without Rule 1, matched receives wait
    behind the priority order; without promotion, concurrency disturbances
    must resolve through forced discards — both degrade accuracy, which is
    the point. *)

val no_ablation : ablation

val create :
  window:Simnet.Sim_time.span ->
  ?skew_allowance:Simnet.Sim_time.span ->
  ?ablation:ablation ->
  has_mmap_send:(Simnet.Address.flow -> bool) ->
  Trace.Log.collection ->
  t
(** [window] is the sliding-window size (any positive span; accuracy is
    independent of it, cost is not). [skew_allowance] bounds how far ahead
    of a suspect RECEIVE the ranker will look before declaring it noise;
    it must exceed the largest cross-node clock skew (default 1 s, twice
    the paper's largest evaluated skew). [has_mmap_send] is wired to the
    engine's message-relation index. *)

val rank : t -> Trace.Activity.t option
(** The next candidate, or [None] when all input is consumed. (For rankers
    with open input, [None] can also mean "need more input" — use
    {!rank_step} to distinguish.) *)

(** {1 Live operation}

    A ranker can also be driven online, as traces stream in from the
    cluster: create it with the node list, [feed] activities as the probe
    reports them, and pull candidates with {!rank_step}. Candidates are
    withheld until enough input has arrived that no later-fed activity
    could precede them (each stream's feed watermark must pass the
    candidate's timestamp plus the skew allowance), so online results
    match the offline run on the same trace exactly.

    {2 Degraded feeds}

    Live input is imperfect, and the ranker degrades gracefully rather
    than stalling or raising:

    - {b Straggler eviction} ([straggler_timeout]): an open stream that
      falls further than the timeout behind the global feed watermark is
      evicted from the wait set, so a silent host cannot stall everyone
      else forever. If it later catches back up to within the timeout it
      is reintegrated (a resync), and its backlog is fetched normally.
    - {b Input quarantine}: {!feed} never raises. Malformed records —
      unknown host, post-close, duplicates, large timestamp regressions,
      too-late records — are counted per {!reject_reason} and kept in a
      bounded inspection log; regressions within the skew allowance are
      re-sorted into place instead.
    - {b Backpressure} ([max_buffered]): when held records (buffered plus
      unfetched backlog) exceed the bound, {!rank_step} force-resolves the
      oldest window instead of waiting for reassuring input, so memory
      stays bounded even when safety cannot be established.
    - {b Reorder slack} ([reorder_slack], default zero): with a non-zero
      slack every candidate additionally waits until all open streams have
      reported past [candidate.ts + slack], which restores exact
      offline equality when each stream's feed may be reordered by up to
      the slack (clamped to the skew allowance). *)

val create_online :
  window:Simnet.Sim_time.span ->
  ?skew_allowance:Simnet.Sim_time.span ->
  ?ablation:ablation ->
  ?straggler_timeout:Simnet.Sim_time.span ->
  ?max_buffered:int ->
  ?reorder_slack:Simnet.Sim_time.span ->
  has_mmap_send:(Simnet.Address.flow -> bool) ->
  hosts:string list ->
  unit ->
  t

val feed : t -> Trace.Activity.t -> feed_result
(** Append one activity to its host's stream. Never raises: malformed
    records are {!Quarantined} (counted per reason, logged in a bounded
    ring), and regressions within the skew allowance are {!Resorted} into
    place. *)

val close_input : t -> unit
(** No more activities will be fed; pending candidates become decidable. *)

type step =
  | Candidate of Trace.Activity.t
  | Need_input  (** Undecidable until more input is fed (or input closed). *)
  | Exhausted  (** All input consumed. *)

val rank_step : t -> step

val buffered : t -> int
(** Activities currently held in the ranker's queues. *)

val held : t -> int
(** Buffered activities plus the unfetched backlog — everything the
    ranker currently holds; the quantity bounded by [max_buffered] and
    the online peak-memory proxy. *)

val stragglers_active : t -> int
(** Open streams currently evicted as stragglers. *)

val quarantine_log : t -> (reject_reason * Trace.Activity.t) list
(** The most recent quarantined records (bounded ring; counts in
    {!stats} are exact even when the ring has wrapped). *)

val quarantined_total : t -> int

val stats : t -> stats
