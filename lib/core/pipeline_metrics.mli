(** The bridge between the pipeline's typed per-run stats records and the
    telemetry registry.

    {!Ranker.stats} and {!Cag_engine.stats} remain the typed views each
    run returns; these functions mirror a finished run's values into a
    registry so offline and online runs report through one mechanism. The
    mirrors {e add} counter fields (registry counters are cumulative
    across the runs of a process, which is what a process self-profile
    wants) and high-water-mark gauge fields via [set_max]; call each at
    most once per run. The metric names are catalogued in
    docs/TELEMETRY.md. *)

val add_ranker_stats : Telemetry.Registry.t -> Ranker.stats -> unit
val add_engine_stats : Telemetry.Registry.t -> Cag_engine.stats -> unit
