type table = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let table ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Report.add_row: %d cells for %d columns in %S" (List.length row)
         (List.length t.columns) t.title);
  t.rev_rows <- row :: t.rev_rows

let rows t = List.rev t.rev_rows

let render t =
  let all = t.columns :: rows t in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.mapi (fun i _ -> width i) t.columns in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    let s = String.concat "  " (List.map2 pad row widths) in
    let rec rstrip i = if i > 0 && s.[i - 1] = ' ' then rstrip (i - 1) else i in
    String.sub s 0 (rstrip (String.length s))
  in
  let sep = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) (rows t);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.columns :: List.map line (rows t)) ^ "\n"

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct f = Printf.sprintf "%.1f%%" (f *. 100.0)
let cell_span s = Format.asprintf "%a" Simnet.Sim_time.pp_span s

(* Latency shares can legitimately leave [0,1] when clock skew pushes a
   hop's span negative (Latency.percentages stays faithful to the data).
   Presentation clamps — and counts, so a skewed profile is visible in
   telemetry rather than silently rendered as a sane-looking percent. *)
let clamp_share ?(telemetry = Telemetry.Registry.default) f =
  if Float.is_nan f then begin
    Telemetry.Registry.incr
      (Telemetry.Registry.counter telemetry
         ~help:"Latency shares outside [0,1] clamped at the presentation layer"
         "pt_latency_share_out_of_range_total");
    0.0
  end
  else if f < 0.0 || f > 1.0 then begin
    Telemetry.Registry.incr
      (Telemetry.Registry.counter telemetry
         ~help:"Latency shares outside [0,1] clamped at the presentation layer"
         "pt_latency_share_out_of_range_total");
    Float.max 0.0 (Float.min 1.0 f)
  end
  else f

let cell_share ?telemetry f = cell_pct (clamp_share ?telemetry f)
