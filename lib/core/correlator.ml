module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry

type config = {
  transform : Transform.config;
  window : Sim_time.span;
  skew_allowance : Sim_time.span;
  ablation : Ranker.ablation;
}

let config ~transform ?(window = Sim_time.ms 10) ?(skew_allowance = Sim_time.sec 1)
    ?(ablation = Ranker.no_ablation) () =
  { transform; window; skew_allowance; ablation }

type result = {
  cags : Cag.t list;
  deformed : Cag.t list;
  ranker_stats : Ranker.stats;
  engine_stats : Cag_engine.stats;
  correlation_time : float;
  peak_memory_proxy : int;
  memory_bytes_estimate : int;
}

(* Rough per-record footprint: an activity record plus its share of queue,
   index-map and vertex overhead, in bytes. Used only to scale the memory
   proxy into familiar units. *)
let bytes_per_record = 160

(* The rank/step/gc loop over an already-transformed collection — shared
   between the serial pipeline and the sharded correlator, which runs it
   once per epoch in a worker domain. *)
let correlate_prepared ?(telemetry = R.default) ?started cfg prepared ~on_path =
  let t0 = match started with Some t -> t | None -> Unix.gettimeofday () in
  let activities_in =
    R.counter telemetry ~help:"Activities entering the correlator after transform"
      "pt_correlator_activities_total"
  in
  let commits =
    R.counter telemetry ~help:"Candidates committed to the CAG engine"
      "pt_correlator_commits_total"
  in
  let occupancy =
    R.histogram telemetry
      ~help:"Ranker window occupancy (buffered activities), sampled per candidate"
      "pt_correlator_window_occupancy"
  in
  R.add activities_in (Trace.Log.total prepared);
  let engine = Cag_engine.create ~on_finished:on_path () in
  let ranker =
    Ranker.create ~window:cfg.window ~skew_allowance:cfg.skew_allowance
      ~ablation:cfg.ablation
      ~has_mmap_send:(Cag_engine.has_mmap_send engine)
      prepared
  in
  let peak = ref 0 in
  let steps = ref 0 in
  let rec loop () =
    match Ranker.rank ranker with
    | None -> ()
    | Some activity ->
        Cag_engine.step engine activity;
        incr steps;
        R.incr commits;
        Telemetry.Histogram.observe occupancy (float_of_int (Ranker.buffered ranker));
        (* Periodically evict unmatched sends that can no longer match:
           anything older than twice the skew allowance behind the
           correlation frontier. *)
        if !steps land 0xfff = 0 then begin
          (* Clamp at the trace origin: early activities would otherwise
             yield a negative horizon, and a SEND stamped exactly at time
             zero must never be evicted while still matchable. *)
          let horizon =
            Sim_time.max Sim_time.zero
              (Sim_time.add activity.Trace.Activity.timestamp
                 (Sim_time.span_scale (-2.0) cfg.skew_allowance))
          in
          ignore (Cag_engine.gc engine ~older_than:horizon)
        end;
        let held =
          Ranker.buffered ranker + Cag_engine.live_vertices engine
          + Cag_engine.mmap_entries engine
        in
        if held > !peak then peak := held;
        loop ()
  in
  R.time telemetry ~labels:[ ("stage", "rank_correlate") ] "pt_correlator_stage_seconds" loop;
  let correlation_time = Unix.gettimeofday () -. t0 in
  let cags = Cag_engine.finished engine in
  let deformed = Cag_engine.unfinished engine in
  let ranker_stats = Ranker.stats ranker in
  let engine_stats = Cag_engine.stats engine in
  Pipeline_metrics.add_ranker_stats telemetry ranker_stats;
  Pipeline_metrics.add_engine_stats telemetry engine_stats;
  R.add
    (R.counter telemetry ~help:"Causal paths produced"
       ~labels:[ ("state", "finished") ]
       "pt_correlator_paths_total")
    (List.length cags);
  R.add
    (R.counter telemetry ~help:"Causal paths produced"
       ~labels:[ ("state", "deformed") ]
       "pt_correlator_paths_total")
    (List.length deformed);
  R.set_max
    (R.gauge telemetry ~help:"Peak simultaneously-held records (Fig. 11 memory proxy)"
       "pt_correlator_peak_memory_records")
    (float_of_int !peak);
  {
    cags;
    deformed;
    ranker_stats;
    engine_stats;
    correlation_time;
    peak_memory_proxy = !peak;
    memory_bytes_estimate = !peak * bytes_per_record;
  }

let correlate_stream ?(telemetry = R.default) cfg collection ~on_path =
  let started = Unix.gettimeofday () in
  let prepared =
    R.time telemetry ~labels:[ ("stage", "transform") ] "pt_correlator_stage_seconds" (fun () ->
        Transform.apply cfg.transform collection)
  in
  correlate_prepared ~telemetry ~started cfg prepared ~on_path

let correlate ?telemetry cfg collection =
  correlate_stream ?telemetry cfg collection ~on_path:(fun _ -> ())

(* Native entry: transform in the arena representation (memoised per
   interned id), then materialise once for the ranker. The transformed
   arenas preserve append order, so [to_collection] appends straight into
   sorted logs without a re-sort. *)
let correlate_arena_stream ?(telemetry = R.default) cfg arenas ~on_path =
  let started = Unix.gettimeofday () in
  let prepared =
    R.time telemetry ~labels:[ ("stage", "transform") ] "pt_correlator_stage_seconds" (fun () ->
        Trace.Arena.to_collection (Transform.apply_native cfg.transform arenas))
  in
  correlate_prepared ~telemetry ~started cfg prepared ~on_path

let correlate_arena ?telemetry cfg arenas =
  correlate_arena_stream ?telemetry cfg arenas ~on_path:(fun _ -> ())
